// Command sfpctl runs SFP's control-plane placement over an SFC dataset
// (as produced by sfcgen) and prints the placement plan and its metrics.
//
// Usage:
//
//	sfpctl -algo appro -chains chains.json
//	sfpctl -algo ip -time-limit 30s -chains chains.json
//	sfpctl -algo greedy -no-consolidate -chains chains.json
//
// With -state-dir the run goes through the durable controller instead of
// the bare solver: every mutating transition is written to a write-ahead
// journal in that directory before it touches the data plane. A first run
// provisions the dataset; a later run against the same directory recovers
// the committed state from the journal, reconciles the (rebuilt) switch
// back to it, and reports the drift it repaired — the crash-recovery path.
//
//	sfpctl -state-dir /var/lib/sfp -algo greedy -chains chains.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"sfp/internal/core"
	"sfp/internal/model"
	"sfp/internal/pipeline"
	"sfp/internal/placement"
	"sfp/internal/traffic"
	"sfp/internal/vswitch"
)

func main() {
	var (
		algo      = flag.String("algo", "appro", "placement algorithm: ip | appro | greedy")
		chainsF   = flag.String("chains", "", "SFC dataset JSON (required)")
		stages    = flag.Int("stages", 8, "physical pipeline stages (S)")
		blocks    = flag.Int("blocks", 20, "memory blocks per stage (B)")
		entries   = flag.Int("entries", 1000, "entries per block (E)")
		capGbps   = flag.Float64("capacity", 400, "backplane capacity Gbps (C)")
		recirc    = flag.Int("recirc", 2, "allowed recirculation times (R)")
		noConsol  = flag.Bool("no-consolidate", false, "disable same-type NF consolidation (Eq. 25 memory)")
		timeLimit = flag.Duration("time-limit", 60*time.Second, "IP solver time limit")
		seed      = flag.Int64("seed", 1, "randomized-rounding seed")
		solverW   = flag.Int("solver-workers", 1, "solver workers: branch-and-bound for ip, concurrent recirculation trials for appro (0 = GOMAXPROCS; 1 = serial reference; same result for a fixed seed at any count)")
		stateDir  = flag.String("state-dir", "", "durable-controller mode: journal every transition to this directory; recover+reconcile on start if it holds prior state")
	)
	flag.Parse()
	if *chainsF == "" {
		fmt.Fprintln(os.Stderr, "sfpctl: -chains is required")
		flag.Usage()
		os.Exit(2)
	}

	raw, err := os.ReadFile(*chainsF)
	if err != nil {
		fatal(err)
	}
	var chains []*model.Chain
	if err := json.Unmarshal(raw, &chains); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *chainsF, err))
	}
	in := &model.Instance{
		Switch: model.SwitchConfig{
			Stages: *stages, BlocksPerStage: *blocks,
			EntriesPerBlock: *entries, CapacityGbps: *capGbps,
		},
		NumTypes: maxType(chains),
		Recirc:   *recirc,
		Chains:   chains,
	}
	if err := in.Validate(); err != nil {
		fatal(err)
	}

	if *stateDir != "" {
		runDurable(*stateDir, *algo, chains, *stages, *blocks, *entries, *capGbps,
			*recirc, !*noConsol, *timeLimit, *seed)
		return
	}

	workers := *solverW
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	build := model.BuildOptions{Consolidate: !*noConsol}
	var res *placement.Result
	switch *algo {
	case "ip":
		res, err = placement.SolveIP(in, placement.IPOptions{Build: build, TimeLimit: *timeLimit, Workers: workers})
	case "appro":
		res, err = placement.SolveApprox(in, placement.ApproxOptions{Build: build, Seed: *seed, Workers: workers})
	case "greedy":
		res, err = placement.SolveGreedy(in, placement.GreedyOptions{Consolidate: !*noConsol})
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		fatal(err)
	}
	if res.Assignment == nil {
		fatal(fmt.Errorf("no assignment produced (%s)", res.Status))
	}

	fmt.Printf("algorithm:    %s (%s, %.2fs)\n", *algo, res.Status, res.Elapsed.Seconds())
	fmt.Printf("objective:    %.1f (Eq. 1)\n", res.Objective)
	m := res.Metrics
	fmt.Printf("throughput:   %.1f Gbps offloaded, %.1f Gbps backplane load (C=%.0f)\n",
		m.ThroughputGbps, m.BackplaneGbps, *capGbps)
	fmt.Printf("deployed:     %d / %d chains\n", m.Deployed, len(chains))
	fmt.Printf("blocks/stage: %v (util %.1f of %d)\n", m.BlocksPerStage, m.BlockUtil, *blocks)
	fmt.Printf("entries:      %d used, %.1f%% of allocated blocks\n", m.EntriesUsed, 100*m.EntryUtil)

	fmt.Println("\nphysical NF layout (type@stage):")
	for i := range res.Assignment.X {
		for s, on := range res.Assignment.X[i] {
			if on {
				fmt.Printf("  type %-2d @ stage %d\n", i+1, s)
			}
		}
	}
	fmt.Println("\nchain placements (virtual stage = pass*S + stage):")
	for l, c := range chains {
		if !res.Assignment.Deployed(l) {
			fmt.Printf("  chain %-3d NOT deployed (T=%.1f Gbps)\n", c.ID, c.BandwidthGbps)
			continue
		}
		fmt.Printf("  chain %-3d T=%.1f Gbps passes=%d stages=%v\n",
			c.ID, c.BandwidthGbps, res.Assignment.Passes(l, *stages), res.Assignment.Stages[l])
	}
}

// runDurable drives the dataset through the journaled controller: first
// run provisions, later runs against the same state directory recover the
// committed intent from the write-ahead journal and reconcile the switch
// back to it.
func runDurable(dir, algo string, chains []*model.Chain, stages, blocks, entries int,
	capGbps float64, recirc int, consolidate bool, timeLimit time.Duration, seed int64) {
	var algoE core.Algorithm
	switch algo {
	case "ip":
		algoE = core.AlgoIP
	case "appro":
		algoE = core.AlgoApprox
	case "greedy":
		algoE = core.AlgoGreedy
	default:
		fatal(fmt.Errorf("unknown algorithm %q", algo))
	}
	cfg := pipeline.DefaultConfig()
	cfg.Stages, cfg.BlocksPerStage, cfg.EntriesPerBlock, cfg.CapacityGbps = stages, blocks, entries, capGbps
	if cfg.MaxPasses < recirc+1 {
		cfg.MaxPasses = recirc + 1
	}
	opts := core.Options{
		Pipeline: cfg, Consolidate: consolidate, Recirc: recirc, Algorithm: algoE,
		SolverTimeLimit: timeLimit, Seed: seed,
		Logf: func(f string, a ...any) { fmt.Fprintf(os.Stderr, "sfpctl: "+f+"\n", a...) },
	}
	c, err := core.Recover(dir, opts)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	if c.Provisioned() {
		fmt.Printf("recovered:    committed state from %s\n", dir)
		rep, err := c.Reconcile()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("reconcile:    %d orphans removed, %d re-installed, %d/%d physical installed/removed, %d grown\n",
			len(rep.OrphansRemoved), len(rep.Reinstalled),
			len(rep.PhysicalInstalled), len(rep.PhysicalRemoved), rep.PhysicalGrown)
	} else {
		rng := rand.New(rand.NewSource(seed))
		sfcs := make([]*vswitch.SFC, 0, len(chains))
		for _, ch := range chains {
			sfcs = append(sfcs, traffic.ToSFC(rng, ch, 0))
		}
		m, err := c.Provision(sfcs)
		if err != nil {
			fatal(err)
		}
		info := c.LastProvision()
		fmt.Printf("provisioned:  %d / %d chains deployed via %s (journal: %s)\n",
			m.Deployed, len(chains), info.Used, dir)
	}
	m, err := c.Metrics()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("throughput:   %.1f Gbps offloaded, %.1f Gbps backplane load (C=%.0f)\n",
		m.ThroughputGbps, m.BackplaneGbps, capGbps)
	fmt.Printf("deployed:     %d chains placed, %d tenant allocations on switch\n",
		m.Deployed, c.VSwitch().Tenants())
}

func maxType(chains []*model.Chain) int {
	m := 1
	for _, c := range chains {
		for _, b := range c.NFs {
			if b.Type > m {
				m = b.Type
			}
		}
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sfpctl:", err)
	os.Exit(1)
}
