// Command sfpctl runs SFP's control-plane placement over an SFC dataset
// (as produced by sfcgen) and prints the placement plan and its metrics.
//
// Usage:
//
//	sfpctl -algo appro -chains chains.json
//	sfpctl -algo ip -time-limit 30s -chains chains.json
//	sfpctl -algo greedy -no-consolidate -chains chains.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sfp/internal/model"
	"sfp/internal/placement"
)

func main() {
	var (
		algo      = flag.String("algo", "appro", "placement algorithm: ip | appro | greedy")
		chainsF   = flag.String("chains", "", "SFC dataset JSON (required)")
		stages    = flag.Int("stages", 8, "physical pipeline stages (S)")
		blocks    = flag.Int("blocks", 20, "memory blocks per stage (B)")
		entries   = flag.Int("entries", 1000, "entries per block (E)")
		capGbps   = flag.Float64("capacity", 400, "backplane capacity Gbps (C)")
		recirc    = flag.Int("recirc", 2, "allowed recirculation times (R)")
		noConsol  = flag.Bool("no-consolidate", false, "disable same-type NF consolidation (Eq. 25 memory)")
		timeLimit = flag.Duration("time-limit", 60*time.Second, "IP solver time limit")
		seed      = flag.Int64("seed", 1, "randomized-rounding seed")
		solverW   = flag.Int("solver-workers", 1, "solver workers: branch-and-bound for ip, concurrent recirculation trials for appro (0 = GOMAXPROCS; 1 = serial reference; same result for a fixed seed at any count)")
	)
	flag.Parse()
	if *chainsF == "" {
		fmt.Fprintln(os.Stderr, "sfpctl: -chains is required")
		flag.Usage()
		os.Exit(2)
	}

	raw, err := os.ReadFile(*chainsF)
	if err != nil {
		fatal(err)
	}
	var chains []*model.Chain
	if err := json.Unmarshal(raw, &chains); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *chainsF, err))
	}
	in := &model.Instance{
		Switch: model.SwitchConfig{
			Stages: *stages, BlocksPerStage: *blocks,
			EntriesPerBlock: *entries, CapacityGbps: *capGbps,
		},
		NumTypes: maxType(chains),
		Recirc:   *recirc,
		Chains:   chains,
	}
	if err := in.Validate(); err != nil {
		fatal(err)
	}

	workers := *solverW
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	build := model.BuildOptions{Consolidate: !*noConsol}
	var res *placement.Result
	switch *algo {
	case "ip":
		res, err = placement.SolveIP(in, placement.IPOptions{Build: build, TimeLimit: *timeLimit, Workers: workers})
	case "appro":
		res, err = placement.SolveApprox(in, placement.ApproxOptions{Build: build, Seed: *seed, Workers: workers})
	case "greedy":
		res, err = placement.SolveGreedy(in, placement.GreedyOptions{Consolidate: !*noConsol})
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		fatal(err)
	}
	if res.Assignment == nil {
		fatal(fmt.Errorf("no assignment produced (%s)", res.Status))
	}

	fmt.Printf("algorithm:    %s (%s, %.2fs)\n", *algo, res.Status, res.Elapsed.Seconds())
	fmt.Printf("objective:    %.1f (Eq. 1)\n", res.Objective)
	m := res.Metrics
	fmt.Printf("throughput:   %.1f Gbps offloaded, %.1f Gbps backplane load (C=%.0f)\n",
		m.ThroughputGbps, m.BackplaneGbps, *capGbps)
	fmt.Printf("deployed:     %d / %d chains\n", m.Deployed, len(chains))
	fmt.Printf("blocks/stage: %v (util %.1f of %d)\n", m.BlocksPerStage, m.BlockUtil, *blocks)
	fmt.Printf("entries:      %d used, %.1f%% of allocated blocks\n", m.EntriesUsed, 100*m.EntryUtil)

	fmt.Println("\nphysical NF layout (type@stage):")
	for i := range res.Assignment.X {
		for s, on := range res.Assignment.X[i] {
			if on {
				fmt.Printf("  type %-2d @ stage %d\n", i+1, s)
			}
		}
	}
	fmt.Println("\nchain placements (virtual stage = pass*S + stage):")
	for l, c := range chains {
		if !res.Assignment.Deployed(l) {
			fmt.Printf("  chain %-3d NOT deployed (T=%.1f Gbps)\n", c.ID, c.BandwidthGbps)
			continue
		}
		fmt.Printf("  chain %-3d T=%.1f Gbps passes=%d stages=%v\n",
			c.ID, c.BandwidthGbps, res.Assignment.Passes(l, *stages), res.Assignment.Stages[l])
	}
}

func maxType(chains []*model.Chain) int {
	m := 1
	for _, c := range chains {
		for _, b := range c.NFs {
			if b.Type > m {
				m = b.Type
			}
		}
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sfpctl:", err)
	os.Exit(1)
}
