// Command sfcgen generates synthetic SFC candidate datasets in JSON, per
// the paper's dataset description (§VI-A): random NF chains over the
// catalogue, per-NF rule counts uniform in [100, 2100], and long-tail
// bandwidth demands.
//
// Usage:
//
//	sfcgen -n 50 -seed 1 -mean-len 5 -o chains.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sfp/internal/nf"
	"sfp/internal/traffic"
)

func main() {
	var (
		n       = flag.Int("n", 50, "number of SFC candidates")
		seed    = flag.Int64("seed", 1, "RNG seed")
		types   = flag.Int("types", nf.TypeCount, "number of NF types (I)")
		meanLen = flag.Int("mean-len", 5, "average chain length")
		ruleMin = flag.Int("rule-min", 100, "minimum rules per NF")
		ruleMax = flag.Int("rule-max", 2100, "maximum rules per NF")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	chains := traffic.GenChains(rng, *n, traffic.ChainParams{
		NumTypes: *types, MeanLen: *meanLen, RuleMin: *ruleMin, RuleMax: *ruleMax,
	})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfcgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(chains); err != nil {
		fmt.Fprintln(os.Stderr, "sfcgen:", err)
		os.Exit(1)
	}
}
