// Command sfpd runs the switch-side SFP daemon: a simulated programmable
// switch data plane fronted by the p4rt control API over TCP. Controllers
// (cmd/sfpctl-driven scripts, the examples/controller program, or any
// p4rt.Client) install physical NFs and tenant SFCs against it.
//
// Usage:
//
//	sfpd -listen :9559 -stages 8 -blocks 20 -entries 1000 -capacity 400 \
//	     -read-timeout 30s -max-conns 256
//
// On SIGINT/SIGTERM the daemon drains: the listener stops accepting,
// in-flight requests finish and deliver their responses, then it exits
// (force-closing after -drain-timeout).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sfp/internal/p4rt"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9559", "TCP listen address")
		stages  = flag.Int("stages", 8, "physical pipeline stages")
		blocks  = flag.Int("blocks", 20, "memory blocks per stage")
		entries = flag.Int("entries", 1000, "entries per block")
		capGbps = flag.Float64("capacity", 400, "backplane capacity Gbps")
		passes  = flag.Int("max-passes", 4, "maximum recirculation passes")

		readTimeout = flag.Duration("read-timeout", 30*time.Second,
			"per-frame read deadline; idle or dribbling connections are dropped (0 disables)")
		maxConns = flag.Int("max-conns", 256,
			"maximum concurrent control connections; excess accepts are shed (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second,
			"how long to let in-flight requests finish on shutdown before force-closing")
	)
	flag.Parse()

	cfg := pipeline.DefaultConfig()
	cfg.Stages = *stages
	cfg.BlocksPerStage = *blocks
	cfg.EntriesPerBlock = *entries
	cfg.CapacityGbps = *capGbps
	cfg.MaxPasses = *passes

	v := vswitch.New(pipeline.New(cfg))
	srv := p4rt.NewServerOptions(&p4rt.VSwitchTarget{V: v}, p4rt.ServerOptions{
		ReadTimeout: *readTimeout,
		MaxConns:    *maxConns,
	})
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfpd:", err)
		os.Exit(1)
	}
	fmt.Printf("sfpd: serving %d-stage switch (B=%d E=%d C=%.0fGbps) on %s\n",
		*stages, *blocks, *entries, *capGbps, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("sfpd: draining in-flight requests")
	if err := srv.Shutdown(*drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "sfpd: forced close after drain timeout:", err)
	}
	srv.Close()
	fmt.Println("sfpd: shut down")
}
