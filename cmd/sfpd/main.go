// Command sfpd runs the switch-side SFP daemon: a simulated programmable
// switch data plane fronted by the p4rt control API over TCP. Controllers
// (cmd/sfpctl-driven scripts, the examples/controller program, or any
// p4rt.Client) install physical NFs and tenant SFCs against it.
//
// Usage:
//
//	sfpd -listen :9559 -stages 8 -blocks 20 -entries 1000 -capacity 400 \
//	     -read-timeout 30s -max-conns 256
//
// On SIGINT/SIGTERM the daemon drains: the listener stops accepting,
// in-flight requests finish and deliver their responses, then it exits
// (force-closing after -drain-timeout).
//
// With -state-dir the daemon is warm-restartable: on graceful shutdown it
// writes the full switch state (physical NFs and tenant allocations, the
// same dump the dump_state RPC serves) as an atomic snapshot into that
// directory, and on start it restores any snapshot found there. After a
// hard crash the snapshot may lag the switch the controller remembers —
// that is exactly the drift the controller's recover+reconcile path
// (sfpctl -state-dir) repairs through the dump_state read-back.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sfp/internal/p4rt"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
	"sfp/internal/wal"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9559", "TCP listen address")
		stages  = flag.Int("stages", 8, "physical pipeline stages")
		blocks  = flag.Int("blocks", 20, "memory blocks per stage")
		entries = flag.Int("entries", 1000, "entries per block")
		capGbps = flag.Float64("capacity", 400, "backplane capacity Gbps")
		passes  = flag.Int("max-passes", 4, "maximum recirculation passes")

		readTimeout = flag.Duration("read-timeout", 30*time.Second,
			"per-frame read deadline; idle or dribbling connections are dropped (0 disables)")
		maxConns = flag.Int("max-conns", 256,
			"maximum concurrent control connections; excess accepts are shed (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second,
			"how long to let in-flight requests finish on shutdown before force-closing")
		stateDir = flag.String("state-dir", "",
			"warm-restart directory: restore switch state from its snapshot on start, save a new snapshot on graceful shutdown")
	)
	flag.Parse()

	cfg := pipeline.DefaultConfig()
	cfg.Stages = *stages
	cfg.BlocksPerStage = *blocks
	cfg.EntriesPerBlock = *entries
	cfg.CapacityGbps = *capGbps
	cfg.MaxPasses = *passes

	v := vswitch.New(pipeline.New(cfg))
	var stateLog *wal.Log
	if *stateDir != "" {
		log, rec, err := wal.Open(*stateDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfpd:", err)
			os.Exit(1)
		}
		stateLog = log
		if rec.Snapshot != nil {
			var d p4rt.StateDump
			if err := json.Unmarshal(rec.Snapshot, &d); err != nil {
				fmt.Fprintln(os.Stderr, "sfpd: decoding state snapshot:", err)
				os.Exit(1)
			}
			st, err := d.ToState()
			if err != nil {
				fmt.Fprintln(os.Stderr, "sfpd: state snapshot:", err)
				os.Exit(1)
			}
			if err := v.Restore(st); err != nil {
				fmt.Fprintln(os.Stderr, "sfpd: restoring switch state:", err)
				os.Exit(1)
			}
			fmt.Printf("sfpd: restored %d physical NFs, %d tenant allocations from %s\n",
				len(st.Physical), len(st.Tenants), *stateDir)
		}
	}
	srv := p4rt.NewServerOptions(&p4rt.VSwitchTarget{V: v}, p4rt.ServerOptions{
		ReadTimeout: *readTimeout,
		MaxConns:    *maxConns,
	})
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfpd:", err)
		os.Exit(1)
	}
	fmt.Printf("sfpd: serving %d-stage switch (B=%d E=%d C=%.0fGbps) on %s\n",
		*stages, *blocks, *entries, *capGbps, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("sfpd: draining in-flight requests")
	if err := srv.Shutdown(*drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "sfpd: forced close after drain timeout:", err)
	}
	srv.Close()
	if stateLog != nil {
		// All in-flight mutations have drained; snapshot the final state
		// atomically (tmp + rename + dir fsync via the wal rotation).
		b, err := json.Marshal(p4rt.FromState(v.ExportState()))
		if err == nil {
			err = stateLog.Rotate(b)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfpd: saving state snapshot:", err)
		} else {
			fmt.Printf("sfpd: saved switch state to %s\n", *stateDir)
		}
		stateLog.Close()
	}
	fmt.Println("sfpd: shut down")
}
