// Command sfpp4gen places an SFC dataset with the SFP controller and emits
// the P4-16 program corresponding to the resulting physical pipeline — the
// artifact a real deployment would compile for the switch.
//
// Usage:
//
//	sfcgen -n 10 -o chains.json
//	sfpp4gen -chains chains.json -o pipeline.p4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sfp/internal/core"
	"sfp/internal/model"
	"sfp/internal/p4gen"
	"sfp/internal/pipeline"
	"sfp/internal/traffic"
	"sfp/internal/vswitch"
)

func main() {
	var (
		chainsF = flag.String("chains", "", "SFC dataset JSON (required)")
		algo    = flag.String("algo", "greedy", "placement algorithm: ip | appro | greedy")
		name    = flag.String("name", "sfp_pipeline", "program name")
		ruleCap = flag.Int("rule-cap", 20, "materialized rules per NF (placement uses full counts)")
		seed    = flag.Int64("seed", 1, "RNG seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if *chainsF == "" {
		fmt.Fprintln(os.Stderr, "sfpp4gen: -chains is required")
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*chainsF)
	if err != nil {
		fatal(err)
	}
	var chains []*model.Chain
	if err := json.Unmarshal(raw, &chains); err != nil {
		fatal(err)
	}

	algoMap := map[string]core.Algorithm{"ip": core.AlgoIP, "appro": core.AlgoApprox, "greedy": core.AlgoGreedy}
	algorithm, ok := algoMap[*algo]
	if !ok {
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	ctl := core.New(core.Options{
		Pipeline:  pipeline.DefaultConfig(),
		Algorithm: algorithm, Consolidate: true, Recirc: 2, Seed: *seed,
	})
	rng := rand.New(rand.NewSource(*seed))
	sfcs := make([]*vswitch.SFC, 0, len(chains))
	for _, c := range chains {
		sfcs = append(sfcs, traffic.ToSFC(rng, c, *ruleCap))
	}
	m, err := ctl.Provision(sfcs)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sfpp4gen: placed %d/%d chains, %.0f Gbps offloaded\n",
		m.Deployed, len(chains), m.ThroughputGbps)

	src := p4gen.Emit(ctl.VSwitch(), p4gen.Options{ProgramName: *name})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := fmt.Fprint(w, src); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sfpp4gen:", err)
	os.Exit(1)
}
