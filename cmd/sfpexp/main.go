// Command sfpexp regenerates the paper's evaluation figures (Figs. 4–11).
// Each figure prints as a tab-separated table with notes describing the
// configuration and the shape the paper reports.
//
// Usage:
//
//	sfpexp -fig all                # every figure at quick scale
//	sfpexp -fig 6,10 -scale paper  # selected figures at paper scale
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"sfp/internal/experiments"
)

func main() {
	var (
		figs    = flag.String("fig", "all", "comma-separated figure numbers (4..11), 'savings', or 'all'")
		scale   = flag.String("scale", "quick", "experiment scale: quick | paper")
		workers = flag.Int("workers", 1, "traffic-engine workers for the data-plane figures (0 = GOMAXPROCS; 1 = sequential reference)")
		solverW = flag.Int("solver-workers", 1, "control-plane solver workers for the placement figures (0 = GOMAXPROCS; 1 = serial reference; same results for fixed seeds at any count)")
		batch   = flag.Int("batch", 8, "ArriveMany chunk size for the churn experiment")
	)
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "sfpexp: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	sc.SolverWorkers = *solverW
	if sc.SolverWorkers == 0 {
		sc.SolverWorkers = runtime.GOMAXPROCS(0)
	}

	want := map[string]bool{}
	if *figs == "all" {
		for f := 4; f <= 11; f++ {
			want[fmt.Sprint(f)] = true
		}
		want["savings"] = true
		want["latency-load"] = true
	} else {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	runners := []struct {
		fig string
		run func() (*experiments.Table, error)
	}{
		{"4", func() (*experiments.Table, error) { return experiments.Fig4Workers(0, *workers) }},
		{"5", func() (*experiments.Table, error) { return experiments.Fig5Workers(0, *workers) }},
		{"6", func() (*experiments.Table, error) { return experiments.Fig6(sc) }},
		{"7", func() (*experiments.Table, error) { return experiments.Fig7(sc) }},
		{"8", func() (*experiments.Table, error) { return experiments.Fig8(sc) }},
		{"9", func() (*experiments.Table, error) { return experiments.Fig9(sc) }},
		{"10", func() (*experiments.Table, error) { return experiments.Fig10(sc) }},
		{"11", func() (*experiments.Table, error) { return experiments.Fig11(sc) }},
		{"savings", func() (*experiments.Table, error) { return experiments.OffloadSavings(sc) }},
		{"latency-load", func() (*experiments.Table, error) { return experiments.LatencyUnderLoad() }},
		// Not part of "all": a throughput measurement, not a paper figure.
		{"churn", func() (*experiments.Table, error) { return experiments.Churn(sc, *batch) }},
		// Not part of "all": the replay pps-vs-workers curve (also gated in
		// scripts/check.sh bench as BENCH_dataplane.json).
		{"scaling", func() (*experiments.Table, error) { return experiments.DataplaneScaling(0, nil) }},
		// Not part of "all": replan latency vs live-tenant count (also gated
		// in scripts/check.sh bench as BENCH_replan.json).
		{"replanscale", func() (*experiments.Table, error) { return experiments.ReplanScale(sc) }},
		// Not part of "all": decomposition vs time-capped exact IP at
		// provisioning scale (also gated in scripts/check.sh bench as
		// BENCH_fullsolve.json).
		{"fullsolve", func() (*experiments.Table, error) { return experiments.FullSolve(sc) }},
		// Not part of "all": steady-state churn acceptance/utilization vs
		// offered load (the 100k-tenant variant is gated in scripts/check.sh
		// bench as BENCH_lifecycle.json).
		{"lifecycle", func() (*experiments.Table, error) { return experiments.Lifecycle(sc) }},
	}
	ran := false
	for _, r := range runners {
		if !want[r.fig] {
			continue
		}
		ran = true
		tbl, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfpexp: fig %s: %v\n", r.fig, err)
			os.Exit(1)
		}
		if _, err := tbl.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sfpexp:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "sfpexp: no figures matched %q (valid: 4..11, savings, latency-load, churn, scaling, replanscale, fullsolve, lifecycle)\n", *figs)
		os.Exit(2)
	}
}
