// Command sfpload drives a remote SFP switch daemon (cmd/sfpd) end to end:
// it installs a physical layout and a tenant SFC over the p4rt API, then
// injects a stream of VLAN-tagged packets and reports throughput-model and
// latency statistics, including per-size breakdowns of the Fig. 4/5 sweep.
//
// Usage:
//
//	sfpd -listen 127.0.0.1:9559 &
//	sfpload -addr 127.0.0.1:9559 -tenant 7 -packets 5000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"sfp/internal/lifecycle"
	"sfp/internal/nf"
	"sfp/internal/p4rt"
	"sfp/internal/packet"
	"sfp/internal/pipeline"
	"sfp/internal/traffic"
	"sfp/internal/vswitch"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9559", "sfpd address")
		tenant   = flag.Uint("tenant", 7, "tenant / VLAN ID")
		n        = flag.Int("packets", 5000, "packets per size")
		setup    = flag.Bool("setup", true, "install physical NFs and the demo SFC first")
		seed     = flag.Int64("seed", 1, "flow RNG seed")
		timeout  = flag.Duration("timeout", 5*time.Second, "dial timeout")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel injection connections (1 reproduces the sequential numbers bit-for-bit)")
		pipeln   = flag.Bool("pipeline", false, "pipeline injections asynchronously on each connection (fills the client's in-flight window instead of one synchronous RPC per packet)")
		arrivals = flag.Int("arrivals", 0, "provisioning mode: drive this many tenant arrivals (then departures) through the southbound API and report arrivals/sec instead of injecting traffic")
		batch    = flag.Int("batch", 0, "sub-ops per MsgBatch frame in provisioning mode, pipelined on one connection (0 = one synchronous RPC per op)")
		churnN   = flag.Int("lifecycle", 0, "lifecycle churn mode: fill the switch to this many live tenants with the seeded lifecycle workload, then churn it (batched allocates/deallocates) and report acceptance and batch latency")
		ticks    = flag.Int("ticks", 20, "churn ticks in lifecycle mode")
	)
	flag.Parse()

	cli, err := p4rt.Dial(*addr, *timeout)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		fatal(fmt.Errorf("ping: %w", err))
	}

	if *churnN > 0 {
		if err := lifecycleChurn(cli, *churnN, *ticks, *seed); err != nil {
			fatal(err)
		}
		return
	}

	vip := packet.IPv4Addr(20, 0, 0, 1)
	if *setup {
		for stage, typ := range []nf.Type{nf.Firewall, nf.TrafficClassifier, nf.LoadBalancer, nf.Router} {
			if err := cli.InstallPhysical(stage, typ, 1000); err != nil {
				fmt.Fprintf(os.Stderr, "sfpload: install %v@%d: %v (continuing)\n", typ, stage, err)
			}
		}
		sfc := demoSFC(uint32(*tenant), vip)
		if _, _, err := cli.Allocate(sfc); err != nil {
			fmt.Fprintf(os.Stderr, "sfpload: allocate: %v (continuing)\n", err)
		}
	}

	if *arrivals > 0 {
		if err := provision(cli, uint32(*tenant), vip, *arrivals, *batch); err != nil {
			fatal(err)
		}
		return
	}

	// One connection per injection worker; worker 0 reuses the setup client.
	if *workers < 1 {
		*workers = 1
	}
	conns := []*p4rt.Client{cli}
	for w := 1; w < *workers; w++ {
		c, err := p4rt.Dial(*addr, *timeout)
		if err != nil {
			fatal(fmt.Errorf("worker %d dial: %w", w, err))
		}
		defer c.Close()
		conns = append(conns, c)
	}

	rng := rand.New(rand.NewSource(*seed))
	gen := traffic.NewFlowGen(rng, uint32(*tenant), vip, 128)
	fmt.Printf("%-9s %-10s %-10s %-10s %-8s %-8s\n", "bytes", "p50_ns", "p99_ns", "mean_ns", "passes", "drops")
	for _, size := range traffic.PacketSizes {
		// Pre-generate the wire frames so RNG draw order (and therefore the
		// workload) is independent of the worker count.
		frames := make([][]byte, *n)
		for i := 0; i < *n; i++ {
			p := gen.Next(size)
			// Tag the tenant in the VLAN header so the wire carries it.
			p.HasVLAN = true
			p.VLAN.VID = uint16(*tenant) & 0x0fff
			p.VLAN.EtherType = packet.EtherTypeIPv4
			p.Eth.EtherType = packet.EtherTypeVLAN
			frames[i] = packet.Deparse(p)
		}
		lats, passes, drops, err := inject(conns, frames, *pipeln)
		if err != nil {
			fatal(err)
		}
		sort.Float64s(lats)
		fmt.Printf("%-9d %-10.0f %-10.0f %-10.0f %-8d %-8d\n",
			size, pct(lats, 0.50), pct(lats, 0.99), meanOf(lats), passes, drops)
	}

	st, err := cli.Stats()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nswitch: %d tenants, %d entries, %d processed, %d recirculated, line rate %.1f Mpps at 64B\n",
		st.Tenants, st.EntriesUsed, st.Processed, st.Recirculated,
		pipeline.LineRatePPS(100, 64)/1e6)
}

func demoSFC(tenant uint32, vip uint32) *vswitch.SFC {
	return &vswitch.SFC{
		Tenant: tenant, BandwidthGbps: 50,
		NFs: []*nf.Config{
			{Type: nf.Firewall, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
				Action:  "permit",
			}}},
			{Type: nf.TrafficClassifier, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Between(0, 65535)},
				Action:  "set_class", Params: []uint64{2},
			}}},
			{Type: nf.LoadBalancer, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Eq(uint64(vip)), pipeline.Eq(80)},
				Action:  "dnat", Params: []uint64{uint64(packet.IPv4Addr(10, 8, 0, 1)), 0},
			}}},
			{Type: nf.Router, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Prefix(uint64(packet.IPv4Addr(10, 0, 0, 0)), 8)},
				Action:  "fwd", Params: []uint64{3},
			}}},
		},
	}
}

// lifecycleChurn replays the same seeded tenant-churn workload the
// in-process engine (internal/lifecycle) uses, but against a live sfpd
// over the southbound API: every physical NF type is pre-installed, the
// switch fills to target live tenants, and each churn tick issues one
// batched deallocate frame (the tick's expired TTLs) and one batched
// allocate frame (the tick's Poisson arrivals). The switch's own folding
// decides admission, so acceptance reflects the remote switch's capacity,
// not the local model's.
func lifecycleChurn(cli *p4rt.Client, target, ticks int, seed int64) error {
	layout, err := cli.Layout()
	if err != nil {
		return fmt.Errorf("layout: %w", err)
	}
	stages := len(layout)
	if stages == 0 {
		return fmt.Errorf("remote switch reports zero stages")
	}

	cfg := lifecycle.Smoke()
	cfg.Seed = seed
	cfg.TargetLive = target
	cfg = cfg.WithDefaults()
	// The latency-SLO admission check uses the remote stage count with the
	// default latency constants (the same model sfpd simulates).
	latCfg := pipeline.DefaultConfig()
	latCfg.Stages = stages

	// Every NF type must exist physically before tenants can fold onto
	// it; spread the catalogue round-robin across the stages. Capacity is
	// sized for the worst-case rules the target population can install.
	perType := target*cfg.RuleMax*cfg.ChainLenMax/nf.TypeCount + 100
	for i := 0; i < nf.TypeCount; i++ {
		typ := nf.Type(1 + i)
		if err := cli.InstallPhysical(i%stages, typ, perType); err != nil {
			fmt.Fprintf(os.Stderr, "sfpload: install %v@%d: %v (continuing)\n", typ, i%stages, err)
		}
	}

	gen := lifecycle.NewGen(cfg)
	var heap expiries
	now := 0.0
	live, offered, accepted := 0, 0, 0
	var batchMs []float64

	// alloc offers one batch and schedules TTLs for the accepted part.
	alloc := func(ts []*lifecycle.Tenant) (int, error) {
		ops := make([]p4rt.BatchOp, 0, len(ts))
		kept := make([]*lifecycle.Tenant, 0, len(ts))
		for _, t := range ts {
			if lifecycle.MinLatencyNs(latCfg, len(t.SFC.NFs)) > t.SLONs {
				continue // SLO rejection, never offered southbound
			}
			ops = append(ops, p4rt.OpAllocate(t.SFC))
			kept = append(kept, t)
		}
		if len(ops) == 0 {
			return 0, nil
		}
		start := time.Now()
		results, err := cli.Batch(ops)
		if err != nil {
			return 0, fmt.Errorf("allocate batch: %w", err)
		}
		batchMs = append(batchMs, float64(time.Since(start).Microseconds())/1000)
		placed := 0
		for i, res := range results {
			if !res.OK {
				continue
			}
			placed++
			heap.push(expiry{at: now + kept[i].TTL, tenant: kept[i].SFC.Tenant})
		}
		return placed, nil
	}

	for live < target {
		n := cfg.FillBatch
		if left := target - live; n > left {
			n = left
		}
		placed, err := alloc(gen.Batch(n))
		if err != nil {
			return err
		}
		if placed == 0 {
			fmt.Printf("fill saturated at %d live (target %d)\n", live, target)
			break
		}
		live += placed
	}
	fmt.Printf("filled to %d live tenants\n", live)

	rate := float64(target) / cfg.MeanTTL
	start := time.Now()
	for tick := 0; tick < ticks; tick++ {
		now += cfg.Tick
		var ops []p4rt.BatchOp
		for len(heap) > 0 && heap[0].at <= now {
			ops = append(ops, p4rt.OpDeallocate(heap.pop().tenant))
		}
		if len(ops) > 0 {
			t0 := time.Now()
			if _, err := cli.Batch(ops); err != nil {
				return fmt.Errorf("deallocate batch: %w", err)
			}
			batchMs = append(batchMs, float64(time.Since(t0).Microseconds())/1000)
			live -= len(ops)
		}
		batch := gen.Batch(gen.Poisson(rate * cfg.Tick))
		placed, err := alloc(batch)
		if err != nil {
			return err
		}
		live += placed
		offered += len(batch)
		accepted += placed
	}
	elapsed := time.Since(start).Seconds()

	sort.Float64s(batchMs)
	ratio := 1.0
	if offered > 0 {
		ratio = float64(accepted) / float64(offered)
	}
	fmt.Printf("lifecycle churn: %d ticks in %.3fs, %d live at end\n", ticks, elapsed, live)
	fmt.Printf("  offered %d, accepted %d (ratio %.3f)\n", offered, accepted, ratio)
	fmt.Printf("  southbound batch latency p50 %.2fms p99 %.2fms\n", pct(batchMs, 0.50), pct(batchMs, 0.99))
	st, err := cli.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("  switch: %d tenants, %d entries used\n", st.Tenants, st.EntriesUsed)
	return nil
}

// expiries is a minimal binary min-heap of scheduled departures (ordered
// by expiry time, tenant ID as the deterministic tie-break).
type expiries []expiry

type expiry struct {
	at     float64
	tenant uint32
}

func (h expiries) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].tenant < h[j].tenant
}

func (h *expiries) push(e expiry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *expiries) pop() expiry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.less(l, s) {
			s = l
		}
		if r < n && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		(*h)[i], (*h)[s] = (*h)[s], (*h)[i]
		i = s
	}
	return top
}

// provision measures southbound provisioning throughput: n tenant
// arrivals (each the demo 4-NF chain at 1 Gbps) followed by n departures.
// With batch == 0 every op is one synchronous RPC — the serial baseline.
// With batch > 0 ops are coalesced into MsgBatch frames of that size and
// pipelined on the one connection via GoBatch/Flush.
func provision(cli *p4rt.Client, base uint32, vip uint32, n, batch int) error {
	specs := make([]*vswitch.SFC, n)
	for i := range specs {
		specs[i] = demoSFC(base+1+uint32(i), vip)
		specs[i].BandwidthGbps = 1 // many small tenants, not one big one
	}
	start := time.Now()
	if batch <= 0 {
		for _, sfc := range specs {
			if _, _, err := cli.Allocate(sfc); err != nil {
				return fmt.Errorf("allocate tenant %d: %w", sfc.Tenant, err)
			}
		}
		for _, sfc := range specs {
			if err := cli.Deallocate(sfc.Tenant); err != nil {
				return fmt.Errorf("deallocate tenant %d: %w", sfc.Tenant, err)
			}
		}
	} else {
		for lo := 0; lo < n; lo += batch {
			hi := min(lo+batch, n)
			ops := make([]p4rt.BatchOp, 0, hi-lo)
			for _, sfc := range specs[lo:hi] {
				ops = append(ops, p4rt.OpAllocate(sfc))
			}
			cli.GoBatch(ops, nil)
		}
		if err := cli.Flush(); err != nil {
			return fmt.Errorf("allocate batch: %w", err)
		}
		for lo := 0; lo < n; lo += batch {
			hi := min(lo+batch, n)
			ops := make([]p4rt.BatchOp, 0, hi-lo)
			for _, sfc := range specs[lo:hi] {
				ops = append(ops, p4rt.OpDeallocate(sfc.Tenant))
			}
			cli.GoBatch(ops, nil)
		}
		if err := cli.Flush(); err != nil {
			return fmt.Errorf("deallocate batch: %w", err)
		}
	}
	elapsed := time.Since(start).Seconds()
	mode := "serial (1 op/RPC)"
	if batch > 0 {
		mode = fmt.Sprintf("batched (%d ops/frame, pipelined)", batch)
	}
	fmt.Printf("provisioning %s: %d arrivals + %d departures in %.3fs\n", mode, n, n, elapsed)
	fmt.Printf("  %.0f arrivals/s, %.0f southbound ops/s\n",
		float64(n)/elapsed, float64(2*n)/elapsed)
	return nil
}

// inject replays the frames across the worker connections (contiguous
// chunks, original timestamps) and merges the per-packet results in frame
// order. With one connection this is exactly the classic sequential loop.
// With pipelined set, each connection issues injections asynchronously via
// GoInject, keeping the client's in-flight window full instead of paying a
// synchronous round trip per packet; per-packet results still land at their
// frame index, so the merged output is identical (the remote chain's
// per-packet outcome depends only on the packet and its timestamp).
func inject(conns []*p4rt.Client, frames [][]byte, pipelined bool) (lats []float64, passes, drops int, err error) {
	type outcome struct {
		lat     float64
		passes  int
		dropped bool
	}
	results := make([]outcome, len(frames))
	errs := make([]error, len(conns))
	var errMu sync.Mutex
	var wg sync.WaitGroup
	for w := range conns {
		lo, hi := len(frames)*w/len(conns), len(frames)*(w+1)/len(conns)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			if pipelined {
				for i := lo; i < hi; i++ {
					i := i
					conns[w].GoInject(frames[i], float64(i)*1000, func(res p4rt.InjectResult, err error) {
						if err != nil {
							errMu.Lock()
							if errs[w] == nil {
								errs[w] = err
							}
							errMu.Unlock()
							return
						}
						results[i] = outcome{lat: res.LatencyNs, passes: res.Passes, dropped: res.Dropped}
					})
				}
				if err := conns[w].Flush(); err != nil {
					errMu.Lock()
					if errs[w] == nil {
						errs[w] = err
					}
					errMu.Unlock()
				}
				return
			}
			for i := lo; i < hi; i++ {
				res, err := conns[w].Inject(frames[i], float64(i)*1000)
				if err != nil {
					errs[w] = err
					return
				}
				results[i] = outcome{lat: res.LatencyNs, passes: res.Passes, dropped: res.Dropped}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, 0, 0, e
		}
	}
	lats = make([]float64, 0, len(frames))
	for _, r := range results {
		if r.dropped {
			drops++
			continue
		}
		lats = append(lats, r.lat)
		if r.passes > passes {
			passes = r.passes
		}
	}
	return lats, passes, drops, nil
}

func pct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sfpload:", err)
	os.Exit(1)
}
