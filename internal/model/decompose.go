package model

// Lagrangian-decomposition support: the coupling rows of the placement
// program (per-stage memory, Eq. 11/25, and the shared backplane, Eq. 12)
// are the only constraints that tie chains together — everything else
// (once/fate/order/consistency, Eqs. 5–9) is local to one chain, and the
// physical layout contributes no memory of its own (rules are charged where
// they are placed; Eq. 4 is satisfiable by fill-in on stage 0, see
// placement.SolveGreedy). Pricing those rows with multipliers therefore
// separates the program into independent per-chain subproblems. This file
// defines the resource units in which the relaxed rows are expressed.
//
// Under the non-consolidated model (Eq. 25) every box owns its blocks
// outright: a box with F rules charges ceil(F/E) blocks against the B
// blocks of its stage, additively across boxes, so per-block pricing is
// exact — the Lagrangian bound relaxes nothing beyond the coupling itself.
//
// Under consolidation (Eq. 11) boxes of one type share block ceilings,
// which is not additive per box. The decomposition prices the valid
// surrogate row
//
//	Σ_i rules_is ≤ B·E            (per physical stage s)
//
// which every consolidated-feasible placement satisfies (from
// Σ_i ceil(rules_is/E) ≤ B and ceil(r/E) ≥ r/E), so weak duality still
// yields a true upper bound; the primal-repair pass re-checks the exact
// block ceilings when it commits chains.

// BoxLoad returns one box's demand against the relaxed per-stage capacity
// row, in the units StageCapacity uses: whole blocks under the
// non-consolidated model, raw rule entries under consolidation.
func BoxLoad(b ChainNF, sw SwitchConfig, consolidate bool) float64 {
	if consolidate {
		return float64(b.Rules)
	}
	return float64(ceilDiv(b.Rules, sw.EntriesPerBlock))
}

// StageCapacity returns the per-stage capacity of the relaxed memory row in
// BoxLoad's units: B blocks (exact, Eq. 25) or B·E entries (the Eq. 11
// surrogate).
func StageCapacity(sw SwitchConfig, consolidate bool) float64 {
	if consolidate {
		return float64(sw.BlocksPerStage * sw.EntriesPerBlock)
	}
	return float64(sw.BlocksPerStage)
}

// ChainProfit returns the chain's Eq. 1 objective contribution when
// deployed: T_l · J_l.
func ChainProfit(c *Chain) float64 {
	return c.BandwidthGbps * float64(c.Len())
}
