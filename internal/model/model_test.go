package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sfp/internal/ilp"
)

const eps = 1e-6

func solveIP(t *testing.T, in *Instance, opts BuildOptions) (*Assignment, float64) {
	t.Helper()
	enc, err := Build(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ilp.Solve(&ilp.Problem{LP: enc.Prob, IntVars: enc.IntVars}, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ilp.Optimal {
		t.Fatalf("IP status = %v", res.Status)
	}
	a := enc.Decode(res.X)
	if err := Verify(in, a, opts.Consolidate); err != nil {
		t.Fatalf("decoded optimal solution fails Verify: %v", err)
	}
	return a, res.Objective
}

func smallSwitch(stages, blocks, entries int, cap float64) SwitchConfig {
	return SwitchConfig{Stages: stages, BlocksPerStage: blocks, EntriesPerBlock: entries, CapacityGbps: cap}
}

func TestValidate(t *testing.T) {
	in := &Instance{Switch: DefaultSwitchConfig(), NumTypes: 2, Recirc: 1, Chains: []*Chain{
		{ID: 1, NFs: []ChainNF{{Type: 1, Rules: 10}}, BandwidthGbps: 5},
	}}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Instance{
		{Switch: DefaultSwitchConfig(), NumTypes: 0, Chains: nil},
		{Switch: DefaultSwitchConfig(), NumTypes: 2, Recirc: -1},
		{Switch: DefaultSwitchConfig(), NumTypes: 1, Chains: []*Chain{{ID: 1, NFs: []ChainNF{{Type: 2, Rules: 1}}, BandwidthGbps: 1}}},
		{Switch: DefaultSwitchConfig(), NumTypes: 1, Chains: []*Chain{{ID: 1, NFs: nil, BandwidthGbps: 1}}},
		{Switch: DefaultSwitchConfig(), NumTypes: 1, Chains: []*Chain{{ID: 1, NFs: []ChainNF{{Type: 1, Rules: 1}}, BandwidthGbps: 0}}},
		{Switch: DefaultSwitchConfig(), NumTypes: 1, Chains: []*Chain{
			{ID: 1, NFs: []ChainNF{{Type: 1, Rules: 1}}, BandwidthGbps: 1},
			{ID: 1, NFs: []ChainNF{{Type: 1, Rules: 1}}, BandwidthGbps: 1},
		}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestSingleChainPlacement(t *testing.T) {
	in := &Instance{
		Switch:   smallSwitch(3, 4, 100, 100),
		NumTypes: 3,
		Recirc:   0,
		Chains: []*Chain{
			{ID: 1, NFs: []ChainNF{{1, 50}, {2, 50}, {3, 50}}, BandwidthGbps: 10},
		},
	}
	a, obj := solveIP(t, in, BuildOptions{Consolidate: true})
	if !a.Deployed(0) {
		t.Fatal("chain not deployed")
	}
	if math.Abs(obj-10*3) > eps {
		t.Errorf("objective = %v, want 30", obj)
	}
	m := ComputeMetrics(in, a, true)
	if m.ThroughputGbps != 10 || m.Deployed != 1 || m.MaxPasses != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestRecirculationRequired(t *testing.T) {
	// J=3 chain on a 2-stage switch: undeployable at R=0, 2 passes at R=1.
	chain := &Chain{ID: 1, NFs: []ChainNF{{1, 10}, {2, 10}, {3, 10}}, BandwidthGbps: 10}
	base := Instance{Switch: smallSwitch(2, 4, 100, 100), NumTypes: 3, Chains: []*Chain{chain}}

	in0 := base
	in0.Recirc = 0
	a0, obj0 := solveIP(t, &in0, BuildOptions{Consolidate: true})
	if a0.Deployed(0) || obj0 > eps {
		t.Errorf("R=0: chain deployed (obj %v), impossible on 2 stages", obj0)
	}

	in1 := base
	in1.Recirc = 1
	a1, obj1 := solveIP(t, &in1, BuildOptions{Consolidate: true})
	if !a1.Deployed(0) {
		t.Fatal("R=1: chain not deployed")
	}
	if math.Abs(obj1-30) > eps {
		t.Errorf("R=1 objective = %v, want 30", obj1)
	}
	if p := a1.Passes(0, 2); p != 2 {
		t.Errorf("passes = %d, want 2", p)
	}
	m := ComputeMetrics(&in1, a1, true)
	if math.Abs(m.BackplaneGbps-20) > eps {
		t.Errorf("backplane = %v, want 2×10", m.BackplaneGbps)
	}
}

func TestCapacityLimitsRecirculatedChains(t *testing.T) {
	// Two J=3 chains on 2 stages, R=1: each needs 2 passes → 2×T backplane.
	// C=45 fits only one chain (2×20=40; both would be 80).
	chains := []*Chain{
		{ID: 1, NFs: []ChainNF{{1, 10}, {2, 10}, {3, 10}}, BandwidthGbps: 20},
		{ID: 2, NFs: []ChainNF{{1, 10}, {2, 10}, {3, 10}}, BandwidthGbps: 20},
	}
	in := &Instance{Switch: smallSwitch(2, 10, 100, 45), NumTypes: 3, Recirc: 1, Chains: chains}
	a, obj := solveIP(t, in, BuildOptions{Consolidate: true})
	deployed := 0
	for l := range chains {
		if a.Deployed(l) {
			deployed++
		}
	}
	if deployed != 1 {
		t.Errorf("deployed = %d, want 1 (capacity)", deployed)
	}
	if math.Abs(obj-60) > eps {
		t.Errorf("objective = %v, want 60", obj)
	}
}

func TestMemoryLimits(t *testing.T) {
	// One stage-per-type layout; block budget of 1 per stage and chains of
	// 80-rule NFs (1 block each): only one chain fits per stage.
	chains := []*Chain{
		{ID: 1, NFs: []ChainNF{{1, 80}}, BandwidthGbps: 10},
		{ID: 2, NFs: []ChainNF{{1, 80}}, BandwidthGbps: 8},
	}
	in := &Instance{Switch: smallSwitch(1, 1, 100, 1000), NumTypes: 1, Recirc: 0, Chains: chains}
	// Consolidated: 160 rules → ceil(160/100) = 2 blocks > 1 → only one
	// chain fits; the optimizer keeps the higher-bandwidth one.
	a, obj := solveIP(t, in, BuildOptions{Consolidate: true})
	if !a.Deployed(0) || a.Deployed(1) {
		t.Errorf("want chain 1 only; got deployed=(%v,%v)", a.Deployed(0), a.Deployed(1))
	}
	if math.Abs(obj-10) > eps {
		t.Errorf("objective = %v, want 10", obj)
	}
}

func TestConsolidationBeatsFragmentation(t *testing.T) {
	// Four same-type 30-rule NFs, E=100, B=1, S=1. Consolidated: 120 rules
	// → 2 blocks... use B=2: consolidated fits all four (ceil(120/100)=2);
	// non-consolidated needs 4 blocks (one ceil per NF) and fits only 2.
	mk := func() *Instance {
		var chains []*Chain
		for i := 0; i < 4; i++ {
			chains = append(chains, &Chain{ID: i + 1, NFs: []ChainNF{{1, 30}}, BandwidthGbps: 10})
		}
		return &Instance{Switch: smallSwitch(1, 2, 100, 1000), NumTypes: 1, Recirc: 0, Chains: chains}
	}
	_, objCons := solveIP(t, mk(), BuildOptions{Consolidate: true})
	_, objFrag := solveIP(t, mk(), BuildOptions{Consolidate: false})
	if math.Abs(objCons-40) > eps {
		t.Errorf("consolidated objective = %v, want 40", objCons)
	}
	if math.Abs(objFrag-20) > eps {
		t.Errorf("fragmented objective = %v, want 20", objFrag)
	}
}

func TestOrderConstraint(t *testing.T) {
	// Chain [1,2] and chain [2,1] on 2 stages, R=0. Physical layout can
	// serve only one ordering; whichever, exactly one chain deploys if both
	// demand full-stage memory. Give them equal resources and check the
	// higher-value chain wins.
	chains := []*Chain{
		{ID: 1, NFs: []ChainNF{{1, 10}, {2, 10}}, BandwidthGbps: 5},
		{ID: 2, NFs: []ChainNF{{2, 10}, {1, 10}}, BandwidthGbps: 50},
	}
	in := &Instance{Switch: smallSwitch(2, 1, 10, 1000), NumTypes: 2, Recirc: 0, Chains: chains}
	a, _ := solveIP(t, in, BuildOptions{Consolidate: true})
	if !a.Deployed(1) {
		t.Error("high-value chain 2 not deployed")
	}
	// Chain 2's order requires type 2 before type 1 physically; with B=1
	// and 10-rule NFs (1 block each... E=10 → 1 block), chain 1 would need
	// type1 before type2 — both can't hold with one block per stage unless
	// stages host both types? B=1 forbids two tables per stage, so chain 1
	// must be rejected.
	if a.Deployed(0) {
		t.Error("conflicting-order chain 1 deployed despite B=1")
	}
}

// TestExactVsAggregatedConsistency: both formulations must reach the same
// optimal objective (they share integer solutions).
func TestExactVsAggregatedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4; trial++ {
		in := randomInstance(rng, 3, 2+rng.Intn(3))
		_, objAgg := solveIP(t, in, BuildOptions{Consolidate: true, ExactConsistency: false})
		_, objExact := solveIP(t, in, BuildOptions{Consolidate: true, ExactConsistency: true})
		if math.Abs(objAgg-objExact) > 1e-4 {
			t.Errorf("trial %d: aggregated %v != exact %v", trial, objAgg, objExact)
		}
	}
}

// randomInstance builds a small random instance for property tests.
func randomInstance(rng *rand.Rand, maxTypes, numChains int) *Instance {
	I := 2 + rng.Intn(maxTypes-1)
	in := &Instance{
		Switch:   smallSwitch(2+rng.Intn(2), 2+rng.Intn(3), 100, 50+float64(rng.Intn(100))),
		NumTypes: I,
		Recirc:   rng.Intn(2),
	}
	for c := 0; c < numChains; c++ {
		J := 1 + rng.Intn(3)
		ch := &Chain{ID: c + 1, BandwidthGbps: 1 + float64(rng.Intn(30))}
		for j := 0; j < J; j++ {
			ch.NFs = append(ch.NFs, ChainNF{Type: 1 + rng.Intn(I), Rules: 20 + rng.Intn(150)})
		}
		in.Chains = append(in.Chains, ch)
	}
	return in
}

// TestIPMatchesBruteForce compares the IP optimum with exhaustive
// enumeration on tiny instances.
func TestIPMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 3, 1+rng.Intn(2))
		enc, err := Build(in, BuildOptions{Consolidate: true})
		if err != nil {
			return false
		}
		res, err := ilp.Solve(&ilp.Problem{LP: enc.Prob, IntVars: enc.IntVars}, ilp.Options{})
		if err != nil || res.Status != ilp.Optimal {
			return false
		}
		want := bruteForce(in, true)
		return math.Abs(res.Objective-want) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// bruteForce enumerates all physical layouts and chain placements of a tiny
// instance and returns the best Verify-feasible objective.
func bruteForce(in *Instance, consolidate bool) float64 {
	S, K, I := in.Switch.Stages, in.K(), in.NumTypes
	best := 0.0

	// Enumerate X over I×S bits.
	totalX := 1 << (I * S)
	for mask := 0; mask < totalX; mask++ {
		a := NewAssignment(in)
		for i := 0; i < I; i++ {
			for s := 0; s < S; s++ {
				a.X[i][s] = mask&(1<<(i*S+s)) != 0
			}
		}
		// Quick Eq. 4 check to prune.
		ok := true
		for i := 0; i < I && ok; i++ {
			any := false
			for s := 0; s < S; s++ {
				any = any || a.X[i][s]
			}
			ok = any
		}
		if !ok {
			continue
		}
		// Enumerate per-chain placements recursively.
		var rec func(l int)
		rec = func(l int) {
			if l == len(in.Chains) {
				if err := Verify(in, a, consolidate); err == nil {
					m := ComputeMetrics(in, a, consolidate)
					if m.Objective > best {
						best = m.Objective
					}
				}
				return
			}
			J := in.Chains[l].Len()
			// Option: not deployed.
			for j := range a.Stages[l] {
				a.Stages[l][j] = -1
			}
			rec(l + 1)
			// Option: all increasing stage tuples.
			stages := make([]int, J)
			var choose func(j, from int)
			choose = func(j, from int) {
				if j == J {
					copy(a.Stages[l], stages)
					rec(l + 1)
					return
				}
				for k := from; k < K; k++ {
					stages[j] = k
					choose(j+1, k+1)
				}
			}
			choose(0, 0)
			for j := range a.Stages[l] {
				a.Stages[l][j] = -1
			}
		}
		rec(0)
	}
	return best
}

func TestPinAndExcludeChain(t *testing.T) {
	in := &Instance{
		Switch:   smallSwitch(2, 4, 100, 100),
		NumTypes: 2,
		Recirc:   1,
		Chains: []*Chain{
			{ID: 1, NFs: []ChainNF{{1, 10}, {2, 10}}, BandwidthGbps: 10},
			{ID: 2, NFs: []ChainNF{{1, 10}}, BandwidthGbps: 5},
		},
	}
	enc, err := Build(in, BuildOptions{Consolidate: true})
	if err != nil {
		t.Fatal(err)
	}
	// Pin chain 0 to stages (1, 2) — second box on pass 1 stage 0.
	if err := enc.PinChain(0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	enc.ExcludeChain(1)
	res, err := ilp.Solve(&ilp.Problem{LP: enc.Prob, IntVars: enc.IntVars}, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ilp.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	a := enc.Decode(res.X)
	if a.Stages[0][0] != 1 || a.Stages[0][1] != 2 {
		t.Errorf("pinned stages = %v, want [1 2]", a.Stages[0])
	}
	if a.Deployed(1) {
		t.Error("excluded chain deployed")
	}
	// Pinning to an invalid stage errors.
	enc2, _ := Build(in, BuildOptions{Consolidate: true})
	if err := enc2.PinChain(0, []int{3, 1}); err == nil {
		t.Error("invalid pin accepted")
	}
	if err := enc2.PinChain(0, []int{1}); err == nil {
		t.Error("short pin accepted")
	}
}

func TestPinPhysical(t *testing.T) {
	in := &Instance{
		Switch:   smallSwitch(2, 4, 100, 100),
		NumTypes: 2,
		Recirc:   0,
		Chains: []*Chain{
			{ID: 1, NFs: []ChainNF{{2, 10}, {1, 10}}, BandwidthGbps: 10},
		},
	}
	enc, err := Build(in, BuildOptions{Consolidate: true})
	if err != nil {
		t.Fatal(err)
	}
	// Force type1@stage0, type2@stage1 — the chain needs [2,1] order, which
	// this layout cannot serve without recirculation (R=0) → undeployed.
	X := [][]bool{{true, false}, {false, true}}
	enc.PinPhysical(X)
	res, err := ilp.Solve(&ilp.Problem{LP: enc.Prob, IntVars: enc.IntVars}, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := enc.Decode(res.X)
	if a.Deployed(0) {
		t.Error("chain deployed despite incompatible pinned layout")
	}
	if res.Objective > eps {
		t.Errorf("objective = %v, want 0", res.Objective)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	in := &Instance{
		Switch:   smallSwitch(2, 2, 100, 30),
		NumTypes: 2,
		Recirc:   1,
		Chains: []*Chain{
			{ID: 1, NFs: []ChainNF{{1, 50}, {2, 50}}, BandwidthGbps: 10},
		},
	}
	good := NewAssignment(in)
	good.X[0][0], good.X[1][1] = true, true
	good.Stages[0] = []int{0, 1}
	if err := Verify(in, good, true); err != nil {
		t.Fatalf("good assignment rejected: %v", err)
	}

	// Eq. 4 violation.
	a := good.Clone()
	a.X[1][1] = false
	if err := Verify(in, a, true); err == nil {
		t.Error("missing physical type accepted")
	}

	// Order violation.
	a = good.Clone()
	a.Stages[0] = []int{1, 0}
	if err := Verify(in, a, true); err == nil {
		t.Error("order violation accepted")
	}

	// Consistency violation (box on stage without its type).
	a = good.Clone()
	a.Stages[0] = []int{1, 2}
	if err := Verify(in, a, true); err == nil {
		t.Error("consistency violation accepted (type1 on stage1)")
	}

	// Partial deployment.
	a = good.Clone()
	a.Stages[0] = []int{0, -1}
	if err := Verify(in, a, true); err == nil {
		t.Error("partial deployment accepted")
	}

	// Capacity violation: 2-pass chain at T=20 > C... rebuild with tight C.
	in2 := *in
	in2.Switch.CapacityGbps = 15
	a = good.Clone()
	a.Stages[0] = []int{0, 2} // second box on pass 1 → 2 passes → 20 > 15
	a.X[1][0] = true
	if err := Verify(&in2, a, true); err == nil {
		t.Error("capacity violation accepted")
	}

	// Memory violation: B=1 and two 50-rule boxes of different types on
	// the same stage → 2 blocks.
	in3 := *in
	in3.Switch.BlocksPerStage = 1
	in3.Chains = []*Chain{
		{ID: 1, NFs: []ChainNF{{1, 50}}, BandwidthGbps: 5},
		{ID: 2, NFs: []ChainNF{{2, 50}}, BandwidthGbps: 5},
	}
	a3 := NewAssignment(&in3)
	a3.X[0][0], a3.X[1][0] = true, true
	a3.Stages[0] = []int{0}
	a3.Stages[1] = []int{0}
	if err := Verify(&in3, a3, true); err == nil {
		t.Error("memory violation accepted")
	}
}

func TestMetricsEntryUtil(t *testing.T) {
	// Two 30-rule same-type NFs on one stage, E=100: consolidated 1 block,
	// entry util 0.6; fragmented 2 blocks, 0.3.
	in := &Instance{
		Switch:   smallSwitch(1, 4, 100, 100),
		NumTypes: 1,
		Recirc:   1,
		Chains: []*Chain{
			{ID: 1, NFs: []ChainNF{{1, 30}}, BandwidthGbps: 5},
			{ID: 2, NFs: []ChainNF{{1, 30}}, BandwidthGbps: 5},
		},
	}
	a := NewAssignment(in)
	a.X[0][0] = true
	a.Stages[0] = []int{0}
	a.Stages[1] = []int{0}
	mc := ComputeMetrics(in, a, true)
	mf := ComputeMetrics(in, a, false)
	if math.Abs(mc.EntryUtil-0.6) > eps {
		t.Errorf("consolidated entry util = %v, want 0.6", mc.EntryUtil)
	}
	if math.Abs(mf.EntryUtil-0.3) > eps {
		t.Errorf("fragmented entry util = %v, want 0.3", mf.EntryUtil)
	}
	if mc.BlockUtil != 1 || mf.BlockUtil != 2 {
		t.Errorf("block util = %v / %v, want 1 / 2", mc.BlockUtil, mf.BlockUtil)
	}
}
