package model

import (
	"fmt"
	"math"
	"sort"

	"sfp/internal/lp"
)

// BuildOptions selects formulation variants.
type BuildOptions struct {
	// Consolidate selects the paper's Eq. (11) memory constraint (same-type
	// NFs across SFCs share blocks via the per-(type,stage) ceil). False
	// selects Eq. (25): the per-logical-NF ceil that exposes internal
	// fragmentation — the paper's "SFP without consolidation" baseline.
	Consolidate bool
	// ExactConsistency emits one z ≤ x row per z variable (Eq. 9 verbatim).
	// When false, the rows are aggregated per (type, stage) as
	// Σ z ≤ n·x, which has the same integer solutions but a weaker LP
	// relaxation and far fewer rows (see DESIGN.md §4).
	ExactConsistency bool
}

// auxEps is the tiny negative objective carried by the block (Y) and pass
// (P) counters: they are lower-bounded counters the real objective ignores,
// so without it the LP leaves them floating at arbitrary values and
// branch-and-bound dives chase them forever. The perturbation pins them to
// their minima; its total magnitude (≤1e-7·(I·S·B + L·R)) is far below any
// bandwidth difference the experiments resolve. Build and BuildResidual
// share it so the two formulations price identically.
const auxEps = 1e-7

// Encoded is a built placement program plus the variable maps needed to
// decode solutions.
type Encoded struct {
	Prob *lp.Problem
	// IntVars lists every integral variable (x, z, block and pass
	// counters), ready for ilp.Problem.
	IntVars []int

	inst *Instance
	opts BuildOptions

	K    int
	xIdx [][]int   // [i-1][s] -> var
	zIdx [][][]int // [l][j][k] -> var or -1 (outside the feasibility window)
	pIdx []int     // [l] -> pass-count variable P_l = R_l+1
	yIdx [][]int   // [i-1][s] -> block-count var Y_is (consolidation only)
}

// Build encodes the instance per §V-A. Variable pruning (DESIGN.md §4):
// z_ijkl exists only for i = f_jl and k inside the box's order-feasible
// window; x is indexed by physical stage so Eq. (10) holds structurally.
func Build(in *Instance, opts BuildOptions) (*Encoded, error) {
	buildCalls.Add(1)
	if err := in.Validate(); err != nil {
		return nil, err
	}
	S, K := in.Switch.Stages, in.K()
	I, L := in.NumTypes, len(in.Chains)
	e := &Encoded{inst: in, opts: opts, K: K}

	// ---- Variable layout ----
	nVars := 0
	newVar := func() int { v := nVars; nVars++; return v }

	e.xIdx = make([][]int, I)
	for i := 0; i < I; i++ {
		e.xIdx[i] = make([]int, S)
		for s := 0; s < S; s++ {
			e.xIdx[i][s] = newVar()
		}
	}
	e.zIdx = make([][][]int, L)
	for l, c := range in.Chains {
		J := c.Len()
		e.zIdx[l] = make([][]int, J)
		for j := 0; j < J; j++ {
			e.zIdx[l][j] = make([]int, K)
			for k := 0; k < K; k++ {
				// Order-feasibility window: box j needs j predecessors
				// before it and J-1-j successors after it.
				if k < j || k > K-1-(J-1-j) {
					e.zIdx[l][j][k] = -1
					continue
				}
				e.zIdx[l][j][k] = newVar()
			}
		}
	}
	e.pIdx = make([]int, L)
	for l := range in.Chains {
		e.pIdx[l] = newVar()
	}
	if opts.Consolidate {
		e.yIdx = make([][]int, I)
		for i := 0; i < I; i++ {
			e.yIdx[i] = make([]int, S)
			for s := 0; s < S; s++ {
				e.yIdx[i][s] = newVar()
			}
		}
	}

	p := lp.NewProblem(nVars)
	e.Prob = p

	// Bounds and integrality. x, z ∈ {0,1} (Eqs. 2, 3); P_l ∈ [0, R+1];
	// Y_is ∈ [0, B].
	for i := 0; i < I; i++ {
		for s := 0; s < S; s++ {
			p.SetBounds(e.xIdx[i][s], 0, 1)
			e.IntVars = append(e.IntVars, e.xIdx[i][s])
		}
	}
	for l := range in.Chains {
		for j := range e.zIdx[l] {
			for k := 0; k < K; k++ {
				if v := e.zIdx[l][j][k]; v >= 0 {
					p.SetBounds(v, 0, 1)
					e.IntVars = append(e.IntVars, v)
				}
			}
		}
		p.SetBounds(e.pIdx[l], 0, float64(in.Recirc+1))
		e.IntVars = append(e.IntVars, e.pIdx[l])
	}
	if opts.Consolidate {
		for i := 0; i < I; i++ {
			for s := 0; s < S; s++ {
				p.SetBounds(e.yIdx[i][s], 0, float64(in.Switch.BlocksPerStage))
				e.IntVars = append(e.IntVars, e.yIdx[i][s])
			}
		}
	}

	// Objective (Eq. 1): Σ_l d_l·T_l·J_l with d_l = Σ_k z_{l,0,k}.
	for l, c := range in.Chains {
		w := c.BandwidthGbps * float64(c.Len())
		for k := 0; k < K; k++ {
			if v := e.zIdx[l][0][k]; v >= 0 {
				p.SetObjective(v, w)
			}
		}
	}
	for l := range in.Chains {
		p.SetObjective(e.pIdx[l], -auxEps)
	}
	if opts.Consolidate {
		for i := 0; i < I; i++ {
			for s := 0; s < S; s++ {
				p.SetObjective(e.yIdx[i][s], -auxEps)
			}
		}
	}

	// Eq. (4): every type has at least one physical instance.
	for i := 0; i < I; i++ {
		coeffs := make([]lp.Coef, S)
		for s := 0; s < S; s++ {
			coeffs[s] = lp.Coef{Var: e.xIdx[i][s], Val: 1}
		}
		p.AddRow(lp.Row{Coeffs: coeffs, Op: lp.GE, RHS: 1, Name: fmt.Sprintf("type%d-exists", i+1)})
	}

	// Eq. (5): each box lands on at most one virtual stage, and Eq. (7):
	// all boxes of a chain share deployment fate.
	for l, c := range in.Chains {
		J := c.Len()
		for j := 0; j < J; j++ {
			var coeffs []lp.Coef
			for k := 0; k < K; k++ {
				if v := e.zIdx[l][j][k]; v >= 0 {
					coeffs = append(coeffs, lp.Coef{Var: v, Val: 1})
				}
			}
			p.AddRow(lp.Row{Coeffs: coeffs, Op: lp.LE, RHS: 1, Name: fmt.Sprintf("c%d-box%d-once", c.ID, j)})
		}
		for j := 0; j+1 < J; j++ {
			var coeffs []lp.Coef
			for k := 0; k < K; k++ {
				if v := e.zIdx[l][j][k]; v >= 0 {
					coeffs = append(coeffs, lp.Coef{Var: v, Val: 1})
				}
				if v := e.zIdx[l][j+1][k]; v >= 0 {
					coeffs = append(coeffs, lp.Coef{Var: v, Val: -1})
				}
			}
			p.AddRow(lp.Row{Coeffs: coeffs, Op: lp.EQ, RHS: 0, Name: fmt.Sprintf("c%d-fate%d", c.ID, j)})
		}
	}

	// Eq. (8): strict order via stage expressions g_jl = Σ_k (k+1)·z.
	// g_{j+1} - g_j ≥ d_l, written with d_l = Σ_k z_{j+1,k}.
	for l, c := range in.Chains {
		J := c.Len()
		for j := 0; j+1 < J; j++ {
			var coeffs []lp.Coef
			for k := 0; k < K; k++ {
				if v := e.zIdx[l][j][k]; v >= 0 {
					coeffs = append(coeffs, lp.Coef{Var: v, Val: -float64(k + 1)})
				}
				if v := e.zIdx[l][j+1][k]; v >= 0 {
					coeffs = append(coeffs, lp.Coef{Var: v, Val: float64(k+1) - 1})
				}
			}
			p.AddRow(lp.Row{Coeffs: coeffs, Op: lp.GE, RHS: 0, Name: fmt.Sprintf("c%d-order%d", c.ID, j)})
		}
	}

	// Eq. (9): logical boxes land only where a physical NF of the type
	// exists. Exact: one row per z variable. Aggregated: one row per
	// (type, physical stage) with big-M = variable count (IP-equivalent).
	if opts.ExactConsistency {
		for l, c := range in.Chains {
			for j, b := range c.NFs {
				for k := 0; k < K; k++ {
					v := e.zIdx[l][j][k]
					if v < 0 {
						continue
					}
					x := e.xIdx[b.Type-1][k%S]
					p.AddRow(lp.Row{
						Coeffs: []lp.Coef{{Var: v, Val: 1}, {Var: x, Val: -1}},
						Op:     lp.LE, RHS: 0,
						Name: fmt.Sprintf("c%d-b%d-k%d-consist", c.ID, j, k),
					})
				}
			}
		}
	} else {
		type is struct{ i, s int }
		agg := map[is][]lp.Coef{}
		for l, c := range in.Chains {
			for j, b := range c.NFs {
				for k := 0; k < K; k++ {
					if v := e.zIdx[l][j][k]; v >= 0 {
						key := is{b.Type - 1, k % S}
						agg[key] = append(agg[key], lp.Coef{Var: v, Val: 1})
					}
				}
			}
		}
		// Emit in sorted key order: map iteration order is randomized per
		// process, and row order steers simplex pivot order — which picks
		// among tied optimal vertices. A fixed order keeps solves (and the
		// rounded placements downstream) reproducible across runs.
		keys := make([]is, 0, len(agg))
		for key := range agg {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].i != keys[b].i {
				return keys[a].i < keys[b].i
			}
			return keys[a].s < keys[b].s
		})
		for _, key := range keys {
			coeffs := agg[key]
			n := float64(len(coeffs))
			coeffs = append(coeffs, lp.Coef{Var: e.xIdx[key.i][key.s], Val: -n})
			p.AddRow(lp.Row{Coeffs: coeffs, Op: lp.LE, RHS: 0,
				Name: fmt.Sprintf("agg-consist-i%d-s%d", key.i+1, key.s)})
		}
	}

	// Memory. Consolidated (Eq. 11): per (type, stage), block counter
	// Y_is ≥ Σ z·F / E (integrality lifts it to the ceil); per stage,
	// Σ_i Y_is ≤ B. Without consolidation (Eq. 25): each box consumes
	// ceil(F_jl/E) whole blocks wherever placed.
	E := float64(in.Switch.EntriesPerBlock)
	if opts.Consolidate {
		for i := 0; i < I; i++ {
			for s := 0; s < S; s++ {
				coeffs := []lp.Coef{{Var: e.yIdx[i][s], Val: -E}}
				for l, c := range in.Chains {
					for j, b := range c.NFs {
						if b.Type-1 != i {
							continue
						}
						for k := s; k < K; k += S {
							if v := e.zIdx[l][j][k]; v >= 0 {
								coeffs = append(coeffs, lp.Coef{Var: v, Val: float64(b.Rules)})
							}
						}
					}
				}
				if len(coeffs) == 1 {
					continue // no z can land here; Y_is free at 0
				}
				p.AddRow(lp.Row{Coeffs: coeffs, Op: lp.LE, RHS: 0,
					Name: fmt.Sprintf("mem-i%d-s%d", i+1, s)})
			}
		}
		for s := 0; s < S; s++ {
			coeffs := make([]lp.Coef, I)
			for i := 0; i < I; i++ {
				coeffs[i] = lp.Coef{Var: e.yIdx[i][s], Val: 1}
			}
			p.AddRow(lp.Row{Coeffs: coeffs, Op: lp.LE, RHS: float64(in.Switch.BlocksPerStage),
				Name: fmt.Sprintf("blocks-s%d", s)})
		}
	} else {
		for s := 0; s < S; s++ {
			var coeffs []lp.Coef
			for l, c := range in.Chains {
				for j, b := range c.NFs {
					blocks := math.Ceil(float64(b.Rules) / E)
					for k := s; k < K; k += S {
						if v := e.zIdx[l][j][k]; v >= 0 {
							coeffs = append(coeffs, lp.Coef{Var: v, Val: blocks})
						}
					}
				}
			}
			if len(coeffs) == 0 {
				continue
			}
			p.AddRow(lp.Row{Coeffs: coeffs, Op: lp.LE, RHS: float64(in.Switch.BlocksPerStage),
				Name: fmt.Sprintf("blocks-s%d", s)})
		}
	}

	// Capacity (Eq. 12): pass counters P_l ≥ s_l/S (integrality lifts to
	// the ceil), Σ_l T_l·P_l ≤ C.
	for l, c := range in.Chains {
		J := c.Len()
		coeffs := []lp.Coef{{Var: e.pIdx[l], Val: -float64(S)}}
		for k := 0; k < K; k++ {
			if v := e.zIdx[l][J-1][k]; v >= 0 {
				coeffs = append(coeffs, lp.Coef{Var: v, Val: float64(k + 1)})
			}
		}
		p.AddRow(lp.Row{Coeffs: coeffs, Op: lp.LE, RHS: 0, Name: fmt.Sprintf("c%d-passes", c.ID)})
	}
	capCoeffs := make([]lp.Coef, L)
	for l, c := range in.Chains {
		capCoeffs[l] = lp.Coef{Var: e.pIdx[l], Val: c.BandwidthGbps}
	}
	if L > 0 {
		p.AddRow(lp.Row{Coeffs: capCoeffs, Op: lp.LE, RHS: in.Switch.CapacityGbps, Name: "backplane"})
	}

	return e, nil
}

// PinChain forces chain l to keep an existing placement (used by runtime
// update to hold surviving tenants in place): each box's z variable at its
// current stage is fixed to 1 and the chain's other z variables to 0.
// stages must be the chain's current virtual stages.
func (e *Encoded) PinChain(l int, stages []int) error {
	J := len(e.zIdx[l])
	if len(stages) != J {
		return fmt.Errorf("model: pin chain %d: %d stages for %d boxes", l, len(stages), J)
	}
	for j := 0; j < J; j++ {
		want := stages[j]
		if want < 0 || want >= e.K || e.zIdx[l][j][want] < 0 {
			return fmt.Errorf("model: pin chain %d box %d: stage %d invalid", l, j, want)
		}
		for k := 0; k < e.K; k++ {
			v := e.zIdx[l][j][k]
			if v < 0 {
				continue
			}
			if k == want {
				e.Prob.SetBounds(v, 1, 1)
			} else {
				e.Prob.SetBounds(v, 0, 0)
			}
		}
	}
	return nil
}

// ExcludeChain forbids deploying chain l (used by the rounding algorithm's
// strip step and by runtime update for departed tenants).
func (e *Encoded) ExcludeChain(l int) {
	for j := range e.zIdx[l] {
		for k := 0; k < e.K; k++ {
			if v := e.zIdx[l][j][k]; v >= 0 {
				e.Prob.SetBounds(v, 0, 0)
			}
		}
	}
}

// PinPhysical forces the physical layout to the given X (runtime update
// does not move physical NFs without a full reconfiguration).
func (e *Encoded) PinPhysical(X [][]bool) {
	for i := range e.xIdx {
		for s := range e.xIdx[i] {
			if X[i][s] {
				e.Prob.SetBounds(e.xIdx[i][s], 1, 1)
			} else {
				e.Prob.SetBounds(e.xIdx[i][s], 0, 0)
			}
		}
	}
}

// Decode converts a solver point into an Assignment, snapping binaries at
// the 0.5 threshold. Fractional points (from the LP relaxation) should go
// through placement.Round instead; Decode is for integral solutions.
func (e *Encoded) Decode(x []float64) *Assignment {
	a := NewAssignment(e.inst)
	for i := range e.xIdx {
		for s := range e.xIdx[i] {
			a.X[i][s] = x[e.xIdx[i][s]] > 0.5
		}
	}
	for l := range e.zIdx {
		for j := range e.zIdx[l] {
			for k := 0; k < e.K; k++ {
				if v := e.zIdx[l][j][k]; v >= 0 && x[v] > 0.5 {
					a.Stages[l][j] = k
				}
			}
		}
	}
	return a
}

// ZValue reads a z variable's relaxed value from a solver point (the
// rounding algorithm samples from these).
func (e *Encoded) ZValue(x []float64, l, j, k int) float64 {
	v := e.zIdx[l][j][k]
	if v < 0 {
		return 0
	}
	return x[v]
}

// XValue reads an x variable's relaxed value.
func (e *Encoded) XValue(x []float64, i, s int) float64 {
	return x[e.xIdx[i-1][s]]
}

// Instance returns the encoded instance.
func (e *Encoded) Instance() *Instance { return e.inst }

// XVars returns the physical-placement variable indices in (type, stage)
// order. Branching on these first collapses the symmetric families of
// logical placements that share a physical layout.
func (e *Encoded) XVars() []int {
	var out []int
	for i := range e.xIdx {
		out = append(out, e.xIdx[i]...)
	}
	return out
}

// AuxVars returns the ceiling-defined auxiliary integers (pass counters P_l
// and, under consolidation, block counters Y_is). Their integral value is
// implied by the decision variables — the smallest integer above their
// defining expression — so branch and bound should complete them by
// rounding up rather than branching on them (ilp.Options.CeilVars).
func (e *Encoded) AuxVars() []int {
	out := append([]int(nil), e.pIdx...)
	if e.yIdx != nil {
		for i := range e.yIdx {
			out = append(out, e.yIdx[i]...)
		}
	}
	return out
}

// Options returns the build options.
func (e *Encoded) Options() BuildOptions { return e.opts }

// EncodeAssignment converts a concrete assignment into a solver point over
// this encoding's variables — the warm-start vector for branch and bound.
// The assignment must be Verify-feasible for the same consolidation mode.
func (e *Encoded) EncodeAssignment(a *Assignment) ([]float64, error) {
	x := make([]float64, e.Prob.NumVars())
	S := e.inst.Switch.Stages
	for i := range e.xIdx {
		for s := range e.xIdx[i] {
			if a.X[i][s] {
				x[e.xIdx[i][s]] = 1
			}
		}
	}
	rulesAt := make(map[[2]int]int) // (type-1, stage) -> rules
	for l, c := range e.inst.Chains {
		if !a.Deployed(l) {
			continue
		}
		for j, k := range a.Stages[l] {
			v := e.zIdx[l][j][k]
			if v < 0 {
				return nil, fmt.Errorf("model: assignment stage %d outside window for chain %d box %d", k, c.ID, j)
			}
			x[v] = 1
			rulesAt[[2]int{c.NFs[j].Type - 1, k % S}] += c.NFs[j].Rules
		}
		x[e.pIdx[l]] = float64(a.Passes(l, S))
	}
	if e.yIdx != nil {
		E := e.inst.Switch.EntriesPerBlock
		for key, rules := range rulesAt {
			x[e.yIdx[key[0]][key[1]]] = float64((rules + E - 1) / E)
		}
	}
	return x, nil
}

// ZWindow reports the feasible virtual-stage window for chain l's box j.
func (e *Encoded) ZWindow(l, j int) (lo, hi int) {
	J := len(e.zIdx[l])
	return j, e.K - 1 - (J - 1 - j)
}
