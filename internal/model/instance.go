// Package model encodes SFP's joint physical/logical NF placement problem
// (§V-A of the paper) as an integer program over the internal/lp and
// internal/ilp solvers, and provides the independent combinatorial verifier
// and resource metrics the rounding algorithm and the experiments rely on.
//
// Symbols follow Table I of the paper: I NF types, chains l ∈ [0, L) with
// J_l boxes of type f_jl and F_jl rules each, bandwidth T_l, a switch of S
// stages with B blocks of E entries per stage and backplane capacity C, and
// a virtual pipeline of K = S·(R+1) stages unrolled over R recirculations.
package model

import (
	"fmt"
)

// SwitchConfig fixes the switch resources the placement must respect.
type SwitchConfig struct {
	// Stages is S, the physical stage count.
	Stages int
	// BlocksPerStage is B.
	BlocksPerStage int
	// EntriesPerBlock is E/b — how many rule entries one block holds.
	EntriesPerBlock int
	// CapacityGbps is C, the backplane bandwidth shared by inbound and
	// recirculated traffic.
	CapacityGbps float64
}

// DefaultSwitchConfig returns the evaluation configuration of §VI-C:
// 8 stages × 20 blocks × 1000 entries, 400 Gbps backplane.
func DefaultSwitchConfig() SwitchConfig {
	return SwitchConfig{Stages: 8, BlocksPerStage: 20, EntriesPerBlock: 1000, CapacityGbps: 400}
}

// ChainNF is one box of an SFC: its type f_jl and rule count F_jl.
type ChainNF struct {
	Type  int // 1-based NF type index
	Rules int // configured entries
}

// Chain is one SFC candidate.
type Chain struct {
	// ID is the tenant/chain identifier (unique within an instance).
	ID int
	// NFs is the ordered box list.
	NFs []ChainNF
	// BandwidthGbps is T_l.
	BandwidthGbps float64
}

// Len returns J_l.
func (c *Chain) Len() int { return len(c.NFs) }

// RuleSum returns Σ_j F_jl, the chain's total rule demand.
func (c *Chain) RuleSum() int {
	n := 0
	for _, b := range c.NFs {
		n += b.Rules
	}
	return n
}

// Instance is one placement problem.
type Instance struct {
	Switch SwitchConfig
	// NumTypes is I.
	NumTypes int
	// Chains are the SFC candidates.
	Chains []*Chain
	// Recirc is R, the allowed recirculation count; the virtual pipeline
	// has K = S·(R+1) stages.
	Recirc int
}

// K returns the virtual pipeline length S·(R+1).
func (in *Instance) K() int { return in.Switch.Stages * (in.Recirc + 1) }

// Validate sanity-checks the instance.
func (in *Instance) Validate() error {
	if in.Switch.Stages <= 0 || in.Switch.BlocksPerStage <= 0 || in.Switch.EntriesPerBlock <= 0 {
		return fmt.Errorf("model: non-positive switch resources: %+v", in.Switch)
	}
	if in.NumTypes <= 0 {
		return fmt.Errorf("model: NumTypes = %d", in.NumTypes)
	}
	if in.Recirc < 0 {
		return fmt.Errorf("model: negative recirculation %d", in.Recirc)
	}
	seen := map[int]bool{}
	for _, c := range in.Chains {
		if seen[c.ID] {
			return fmt.Errorf("model: duplicate chain ID %d", c.ID)
		}
		seen[c.ID] = true
		if len(c.NFs) == 0 {
			return fmt.Errorf("model: chain %d empty", c.ID)
		}
		if c.BandwidthGbps <= 0 {
			return fmt.Errorf("model: chain %d bandwidth %v", c.ID, c.BandwidthGbps)
		}
		for j, b := range c.NFs {
			if b.Type < 1 || b.Type > in.NumTypes {
				return fmt.Errorf("model: chain %d box %d type %d outside [1,%d]", c.ID, j, b.Type, in.NumTypes)
			}
			if b.Rules <= 0 {
				return fmt.Errorf("model: chain %d box %d has %d rules", c.ID, j, b.Rules)
			}
		}
	}
	return nil
}

// Assignment is a concrete placement: which physical NFs exist and where
// each chain's boxes land on the virtual pipeline.
type Assignment struct {
	// X[i-1][s] reports a physical NF of type i on physical stage s.
	X [][]bool
	// Stages[l][j] is the 0-based virtual stage of chain l's box j, or -1
	// when the chain is not deployed (all boxes of a chain share fate).
	Stages [][]int
}

// NewAssignment returns an all-empty assignment shaped for the instance.
func NewAssignment(in *Instance) *Assignment {
	a := &Assignment{
		X:      make([][]bool, in.NumTypes),
		Stages: make([][]int, len(in.Chains)),
	}
	for i := range a.X {
		a.X[i] = make([]bool, in.Switch.Stages)
	}
	for l, c := range in.Chains {
		a.Stages[l] = make([]int, c.Len())
		for j := range a.Stages[l] {
			a.Stages[l][j] = -1
		}
	}
	return a
}

// Deployed reports whether chain l is placed.
func (a *Assignment) Deployed(l int) bool {
	return len(a.Stages[l]) > 0 && a.Stages[l][0] >= 0
}

// Passes returns R_l+1 for chain l under stage count S (0 if undeployed).
func (a *Assignment) Passes(l, S int) int {
	if !a.Deployed(l) {
		return 0
	}
	last := a.Stages[l][len(a.Stages[l])-1]
	return last/S + 1
}

// Clone deep-copies the assignment (runtime update keeps survivors pinned
// while re-solving for arrivals).
func (a *Assignment) Clone() *Assignment {
	b := &Assignment{
		X:      make([][]bool, len(a.X)),
		Stages: make([][]int, len(a.Stages)),
	}
	for i := range a.X {
		b.X[i] = append([]bool(nil), a.X[i]...)
	}
	for l := range a.Stages {
		b.Stages[l] = append([]int(nil), a.Stages[l]...)
	}
	return b
}
