package model

import (
	"sync/atomic"

	"sfp/internal/lp"
)

// buildCalls counts Build invocations process-wide, so tests can assert
// that hot paths (the recirculation sweep) encode once instead of per trial.
var buildCalls atomic.Int64

// BuildCalls returns the number of Build invocations so far.
func BuildCalls() int64 { return buildCalls.Load() }

// RestrictRecirc tightens q — a Clone of e.Prob — to a recirculation budget
// r smaller than the one e was built with: every z variable in a slot at or
// beyond stage budget S·(r+1) is fixed to zero, and each chain's pass
// counter P_l is capped at r+1. Because the fate rows (Eq. 7) force every
// box of a deployed chain to carry equal mass and the order rows (Eq. 8)
// keep boxes in slot order, zeroing the tail slots leaves exactly the
// feasible set of a fresh encode at budget r — so the sweep in
// placement.SolveApprox encodes once at the full budget and patches bounds
// per trial instead of rebuilding the model R+1 times.
func (e *Encoded) RestrictRecirc(q *lp.Problem, r int) {
	kMax := e.inst.Switch.Stages * (r + 1)
	if kMax > e.K {
		kMax = e.K
	}
	for l := range e.zIdx {
		for j := range e.zIdx[l] {
			for k := kMax; k < e.K; k++ {
				if v := e.zIdx[l][j][k]; v >= 0 {
					q.SetBounds(v, 0, 0)
				}
			}
		}
		lo, _ := q.Bounds(e.pIdx[l])
		q.SetBounds(e.pIdx[l], lo, float64(r+1))
	}
}
