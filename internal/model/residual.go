package model

import (
	"fmt"
	"sync/atomic"

	"sfp/internal/lp"
)

// residualBuilds counts BuildResidual invocations process-wide, so tests can
// assert that the incremental replan path builds its program once and then
// patches it, instead of re-encoding per replan (the residual counterpart of
// BuildCalls).
var residualBuilds atomic.Int64

// ResidualBuilds returns the number of BuildResidual invocations so far.
func ResidualBuilds() int64 { return residualBuilds.Load() }

// chainState tracks what role an in-model chain block currently plays.
type chainState int

const (
	// chainWaiting blocks carry free variables the next solve optimizes.
	chainWaiting chainState = iota
	// chainPinned blocks were admitted by a previous solve of this program;
	// their variables are fixed to the admitted placement, so they keep
	// consuming resources in the shared rows without re-deciding anything.
	chainPinned
	// chainDead blocks departed (or were withdrawn) while in the model;
	// their variables are fixed to zero, releasing their resources.
	chainDead
)

// chainBlock is one in-model chain's variable block.
type chainBlock struct {
	c      *Chain
	z      [][]int // [j][k] -> var, or -1 outside the window / off the layout
	p      int     // pass-counter variable
	state  chainState
	stages []int // admitted placement, when state == chainPinned
}

// Residual is the pinned-tenant-eliminated replan program (runtime update,
// §V-E). Where the full Build + PinChain + PinPhysical path carries every
// tenant as fixed-bound variables, the residual formulation never creates
// them: pinned survivors are folded into the constraint right-hand sides
// (consumed stage memory, per-stage blocks, backplane bandwidth), the fixed
// physical layout eliminates the x variables entirely (a z slot exists only
// where the layout already has the box's NF type, which is exactly the
// Eq. 9 consistency feasible set under pinned x), and variables exist only
// for the waiting chains. The program is retained across replans and
// patched in place:
//
//   - Append adds an arriving chain's block (new variables + chain-local
//     rows, shared resource rows extended),
//   - ReleaseFolded gives a folded survivor's consumption back to the RHS
//     when it departs,
//   - Kill zeroes an in-model chain's block on departure/withdrawal,
//   - PinTo fixes an admitted chain's block to its placement.
//
// Equivalence to the full model (proved by the crosscheck tests): for every
// feasible point of one formulation there is a feasible point of the other
// with the same chain placements, and the Eq. 1 objectives differ by the
// constant ObjOffset (the pinned survivors' contribution). The folding of
// per-cell block counters uses ceil(pinnedRules/E) — the exact value the
// full model's Y takes at any optimum, since Y carries a negative auxEps
// objective and appears only in ≤ rows with nonnegative coefficients.
//
// A Residual is NOT safe for concurrent mutation; the solver may clone its
// Prob freely during a solve, but Append/ExtendRow-style patching must only
// happen between solves (see lp.Problem.AddVars).
type Residual struct {
	sw       SwitchConfig
	numTypes int
	recirc   int
	opts     BuildOptions
	layout   [][]bool
	K        int

	// Prob is the patched linear program. Solve it via ilp with IntVars and
	// AuxVars; DecodeStages maps the solution back to chain placements.
	Prob *lp.Problem

	intVars []int
	auxVars []int

	// pinnedRules[i][s] is the folded survivors' rule total per
	// (type, physical stage) cell (consolidated mode).
	pinnedRules [][]int
	// yIdx/memRow are the per-cell block counter and Eq. 11 row, or -1
	// while the cell is folded (no waiting candidate can land there, so the
	// counter is the constant ceil(pinnedRules/E) charged to blocksRow).
	yIdx   [][]int
	memRow [][]int
	// blocksRow is the per-stage Σ_i Y ≤ B row (consolidated); stageRow is
	// the per-stage Eq. 25 row (non-consolidated).
	blocksRow []int
	stageRow  []int
	// capRow is the backplane row; its RHS is C minus the folded load.
	capRow int

	chains map[int]*chainBlock

	waiting, pinned, dead int
	objOffset             float64
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// BuildResidual encodes the replan subproblem: in holds every known chain
// (the same snapshot the full path would Build), live maps chain ID to the
// virtual stages of pinned survivors, and layout is the fixed physical
// placement. Chains present in live are folded into the RHS; all others
// become waiting variable blocks. Every NF type must have a physical
// instance in layout (Eq. 4 under pinned x) — the same invariant Verify
// enforces on the state the Updater maintains.
func BuildResidual(in *Instance, live map[int][]int, layout [][]bool, opts BuildOptions) (*Residual, error) {
	residualBuilds.Add(1)
	if err := in.Validate(); err != nil {
		return nil, err
	}
	S := in.Switch.Stages
	r := &Residual{
		sw:       in.Switch,
		numTypes: in.NumTypes,
		recirc:   in.Recirc,
		opts:     opts,
		K:        in.K(),
		layout:   make([][]bool, in.NumTypes),
		chains:   make(map[int]*chainBlock),
	}
	if len(layout) != in.NumTypes {
		return nil, fmt.Errorf("model: residual layout has %d types, instance %d", len(layout), in.NumTypes)
	}
	for i := range layout {
		if len(layout[i]) != S {
			return nil, fmt.Errorf("model: residual layout type %d has %d stages, switch %d", i+1, len(layout[i]), S)
		}
		r.layout[i] = append([]bool(nil), layout[i]...)
		found := false
		for s := 0; s < S; s++ {
			found = found || layout[i][s]
		}
		if !found {
			return nil, fmt.Errorf("model: residual layout misses type %d (Eq. 4)", i+1)
		}
	}

	r.pinnedRules = make([][]int, in.NumTypes)
	r.yIdx = make([][]int, in.NumTypes)
	r.memRow = make([][]int, in.NumTypes)
	for i := 0; i < in.NumTypes; i++ {
		r.pinnedRules[i] = make([]int, S)
		r.yIdx[i] = make([]int, S)
		r.memRow[i] = make([]int, S)
		for s := 0; s < S; s++ {
			r.yIdx[i][s], r.memRow[i][s] = -1, -1
		}
	}

	// Fold the pinned survivors into per-cell rule totals, the per-stage
	// block loads (non-consolidated), and the backplane load.
	stageBlocks := make([]int, S) // Eq. 25 folded blocks per stage
	capLoad := 0.0
	for _, c := range in.Chains {
		st, ok := live[c.ID]
		if !ok {
			continue
		}
		if len(st) != c.Len() {
			return nil, fmt.Errorf("model: residual pin chain %d: %d stages for %d boxes", c.ID, len(st), c.Len())
		}
		for j, k := range st {
			i := c.NFs[j].Type - 1
			if k < 0 || k >= r.K || !r.layout[i][k%S] {
				return nil, fmt.Errorf("model: residual pin chain %d box %d: stage %d invalid", c.ID, j, k)
			}
			r.pinnedRules[i][k%S] += c.NFs[j].Rules
			stageBlocks[k%S] += ceilDiv(c.NFs[j].Rules, in.Switch.EntriesPerBlock)
		}
		capLoad += float64(st[c.Len()-1]/S+1) * c.BandwidthGbps
		r.objOffset += c.BandwidthGbps * float64(c.Len())
	}

	// Shared resource rows exist from the start — with empty coefficient
	// lists when no waiting chain touches them yet — so Append never has to
	// create them (only mem rows appear lazily, per un-folded cell).
	p := lp.NewProblem(0)
	r.Prob = p
	B := float64(in.Switch.BlocksPerStage)
	if opts.Consolidate {
		r.blocksRow = make([]int, S)
		for s := 0; s < S; s++ {
			rhs := B
			for i := 0; i < in.NumTypes; i++ {
				rhs -= float64(ceilDiv(r.pinnedRules[i][s], in.Switch.EntriesPerBlock))
			}
			r.blocksRow[s] = p.AddRow(lp.Row{Op: lp.LE, RHS: rhs, Name: fmt.Sprintf("rblocks-s%d", s)})
		}
	} else {
		r.stageRow = make([]int, S)
		for s := 0; s < S; s++ {
			r.stageRow[s] = p.AddRow(lp.Row{Op: lp.LE, RHS: B - float64(stageBlocks[s]),
				Name: fmt.Sprintf("rstage-s%d", s)})
		}
	}
	r.capRow = p.AddRow(lp.Row{Op: lp.LE, RHS: in.Switch.CapacityGbps - capLoad, Name: "rbackplane"})

	for _, c := range in.Chains {
		if _, ok := live[c.ID]; ok {
			continue
		}
		r.appendChain(c)
	}
	return r, nil
}

// appendChain emits one waiting chain's variable block and rows. Build and
// Append share it, so an appended chain's structure is identical to one
// present at build time.
func (r *Residual) appendChain(c *Chain) {
	p := r.Prob
	S, K, J := r.sw.Stages, r.K, c.Len()
	cb := &chainBlock{c: c, z: make([][]int, J)}

	for j := 0; j < J; j++ {
		cb.z[j] = make([]int, K)
		i := c.NFs[j].Type - 1
		for k := 0; k < K; k++ {
			cb.z[j][k] = -1
			// Order-feasibility window (as in Build) AND the fixed layout:
			// with x pinned, Eq. 9 admits z only where the type is deployed.
			if k < j || k > K-1-(J-1-j) || !r.layout[i][k%S] {
				continue
			}
			v := p.AddVars(1)
			p.SetBounds(v, 0, 1)
			if j == 0 {
				// Objective (Eq. 1): d_l·T_l·J_l with d_l = Σ_k z_{l,0,k}.
				p.SetObjective(v, c.BandwidthGbps*float64(J))
			}
			r.intVars = append(r.intVars, v)
			cb.z[j][k] = v
		}
	}
	cb.p = p.AddVars(1)
	p.SetBounds(cb.p, 0, float64(r.recirc+1))
	p.SetObjective(cb.p, -auxEps)
	r.intVars = append(r.intVars, cb.p)
	r.auxVars = append(r.auxVars, cb.p)

	// Memory coupling into the shared rows.
	E := r.sw.EntriesPerBlock
	if r.opts.Consolidate {
		type cell struct{ i, s int }
		perCell := map[cell][]lp.Coef{}
		var order []cell // deterministic (box, stage) first-touch order
		for j := 0; j < J; j++ {
			i := c.NFs[j].Type - 1
			f := float64(c.NFs[j].Rules)
			for k := 0; k < K; k++ {
				if v := cb.z[j][k]; v >= 0 {
					key := cell{i, k % S}
					if _, ok := perCell[key]; !ok {
						order = append(order, key)
					}
					perCell[key] = append(perCell[key], lp.Coef{Var: v, Val: f})
				}
			}
		}
		for _, key := range order {
			i, s := key.i, key.s
			if r.yIdx[i][s] < 0 {
				// First candidate for this cell: un-fold it. The block
				// counter Y reappears as a variable, and the constant
				// ceil(pinnedRules/E) it replaced moves from the blocks-row
				// RHS back into the row as Y's coefficient — the row's
				// feasible set is unchanged at the old optimum (Y's minimum
				// under the new mem row is exactly the old constant).
				y := p.AddVars(1)
				p.SetBounds(y, 0, float64(r.sw.BlocksPerStage))
				p.SetObjective(y, -auxEps)
				r.intVars = append(r.intVars, y)
				r.auxVars = append(r.auxVars, y)
				r.yIdx[i][s] = y
				charge := float64(ceilDiv(r.pinnedRules[i][s], E))
				p.SetRHS(r.blocksRow[s], p.RHS(r.blocksRow[s])+charge)
				p.ExtendRow(r.blocksRow[s], lp.Coef{Var: y, Val: 1})
				r.memRow[i][s] = p.AddRow(lp.Row{
					Coeffs: append([]lp.Coef{{Var: y, Val: -float64(E)}}, perCell[key]...),
					Op:     lp.LE, RHS: -float64(r.pinnedRules[i][s]),
					Name: fmt.Sprintf("rmem-i%d-s%d", i+1, s),
				})
			} else {
				p.ExtendRow(r.memRow[i][s], perCell[key]...)
			}
		}
	} else {
		perStage := make([][]lp.Coef, S)
		for j := 0; j < J; j++ {
			blocks := float64(ceilDiv(c.NFs[j].Rules, E))
			for k := 0; k < K; k++ {
				if v := cb.z[j][k]; v >= 0 {
					perStage[k%S] = append(perStage[k%S], lp.Coef{Var: v, Val: blocks})
				}
			}
		}
		for s := 0; s < S; s++ {
			if len(perStage[s]) > 0 {
				p.ExtendRow(r.stageRow[s], perStage[s]...)
			}
		}
	}

	// Chain-local rows, mirroring Build: Eq. 5 (once), Eq. 7 (fate), Eq. 8
	// (order), and the pass-counter definition of Eq. 12. Rows with no
	// coefficients are trivially satisfied and skipped — in particular a box
	// with no layout-feasible slot leaves its once row empty, and the fate
	// rows then force the whole chain undeployed, exactly as the full
	// model's consistency rows do under the pinned layout.
	for j := 0; j < J; j++ {
		var coeffs []lp.Coef
		for k := 0; k < K; k++ {
			if v := cb.z[j][k]; v >= 0 {
				coeffs = append(coeffs, lp.Coef{Var: v, Val: 1})
			}
		}
		if len(coeffs) > 0 {
			p.AddRow(lp.Row{Coeffs: coeffs, Op: lp.LE, RHS: 1, Name: fmt.Sprintf("rc%d-box%d-once", c.ID, j)})
		}
	}
	for j := 0; j+1 < J; j++ {
		var fate, ord []lp.Coef
		for k := 0; k < K; k++ {
			if v := cb.z[j][k]; v >= 0 {
				fate = append(fate, lp.Coef{Var: v, Val: 1})
				ord = append(ord, lp.Coef{Var: v, Val: -float64(k + 1)})
			}
			if v := cb.z[j+1][k]; v >= 0 {
				fate = append(fate, lp.Coef{Var: v, Val: -1})
				ord = append(ord, lp.Coef{Var: v, Val: float64(k+1) - 1})
			}
		}
		if len(fate) > 0 {
			p.AddRow(lp.Row{Coeffs: fate, Op: lp.EQ, RHS: 0, Name: fmt.Sprintf("rc%d-fate%d", c.ID, j)})
		}
		if len(ord) > 0 {
			p.AddRow(lp.Row{Coeffs: ord, Op: lp.GE, RHS: 0, Name: fmt.Sprintf("rc%d-order%d", c.ID, j)})
		}
	}
	passes := []lp.Coef{{Var: cb.p, Val: -float64(S)}}
	for k := 0; k < K; k++ {
		if v := cb.z[J-1][k]; v >= 0 {
			passes = append(passes, lp.Coef{Var: v, Val: float64(k + 1)})
		}
	}
	p.AddRow(lp.Row{Coeffs: passes, Op: lp.LE, RHS: 0, Name: fmt.Sprintf("rc%d-passes", c.ID)})
	p.ExtendRow(r.capRow, lp.Coef{Var: cb.p, Val: c.BandwidthGbps})

	r.chains[c.ID] = cb
	r.waiting++
}

// Append patches an arriving chain into the retained program and reports
// how many variables and rows were added (so a retained warm basis can be
// grown with lp.Basis.Extend). The chain ID must not already be in-model.
func (r *Residual) Append(c *Chain) (addedVars, addedRows int, err error) {
	if _, ok := r.chains[c.ID]; ok {
		return 0, 0, fmt.Errorf("model: residual chain %d already in-model", c.ID)
	}
	for j, b := range c.NFs {
		if b.Type < 1 || b.Type > r.numTypes {
			return 0, 0, fmt.Errorf("model: residual chain %d box %d type %d outside [1,%d]", c.ID, j, b.Type, r.numTypes)
		}
	}
	v0, r0 := r.Prob.NumVars(), r.Prob.NumRows()
	r.appendChain(c)
	return r.Prob.NumVars() - v0, r.Prob.NumRows() - r0, nil
}

// Has reports whether the chain is carried in-model (waiting, pinned, or
// dead). Folded survivors are not in-model; their departure goes through
// ReleaseFolded instead of Kill.
func (r *Residual) Has(id int) bool { _, ok := r.chains[id]; return ok }

// Kill zeroes an in-model chain's block: its z and pass variables are fixed
// to 0, releasing everything it consumed in the shared rows. Used when a
// waiting candidate is withdrawn or a pinned (admitted-in-model) chain
// departs.
func (r *Residual) Kill(id int) error {
	cb, ok := r.chains[id]
	if !ok {
		return fmt.Errorf("model: residual chain %d not in-model", id)
	}
	if cb.state == chainDead {
		return nil
	}
	for j := range cb.z {
		for k := 0; k < r.K; k++ {
			if v := cb.z[j][k]; v >= 0 {
				r.Prob.SetBounds(v, 0, 0)
			}
		}
	}
	r.Prob.SetBounds(cb.p, 0, 0)
	if cb.state == chainPinned {
		r.pinned--
		r.objOffset -= cb.c.BandwidthGbps * float64(cb.c.Len())
	} else {
		r.waiting--
	}
	cb.state, cb.stages = chainDead, nil
	r.dead++
	return nil
}

// PinTo fixes an admitted in-model chain to its placement: the solved-for z
// variables become constants, so subsequent solves of the same program keep
// its resource consumption without re-deciding it.
func (r *Residual) PinTo(id int, stages []int) error {
	cb, ok := r.chains[id]
	if !ok {
		return fmt.Errorf("model: residual chain %d not in-model", id)
	}
	if cb.state == chainDead {
		return fmt.Errorf("model: residual chain %d is dead", id)
	}
	J := cb.c.Len()
	if len(stages) != J {
		return fmt.Errorf("model: residual pin chain %d: %d stages for %d boxes", id, len(stages), J)
	}
	for j := 0; j < J; j++ {
		want := stages[j]
		if want < 0 || want >= r.K || cb.z[j][want] < 0 {
			return fmt.Errorf("model: residual pin chain %d box %d: stage %d invalid", id, j, want)
		}
	}
	for j := 0; j < J; j++ {
		for k := 0; k < r.K; k++ {
			v := cb.z[j][k]
			if v < 0 {
				continue
			}
			if k == stages[j] {
				r.Prob.SetBounds(v, 1, 1)
			} else {
				r.Prob.SetBounds(v, 0, 0)
			}
		}
	}
	pass := float64(stages[J-1]/r.sw.Stages + 1)
	r.Prob.SetBounds(cb.p, pass, pass)
	if cb.state == chainWaiting {
		r.waiting--
		r.pinned++
		r.objOffset += cb.c.BandwidthGbps * float64(J)
	}
	cb.state = chainPinned
	cb.stages = append([]int(nil), stages...)
	return nil
}

// ReleaseFolded gives a folded survivor's consumption back to the RHS when
// it departs: per-cell pinned rules shrink (and with them the folded block
// charge or the mem-row RHS), the per-stage block load shrinks
// (non-consolidated), and the backplane regains the chain's bandwidth.
func (r *Residual) ReleaseFolded(c *Chain, stages []int) error {
	if _, ok := r.chains[c.ID]; ok {
		return fmt.Errorf("model: residual chain %d is in-model; use Kill", c.ID)
	}
	if len(stages) != c.Len() {
		return fmt.Errorf("model: residual release chain %d: %d stages for %d boxes", c.ID, len(stages), c.Len())
	}
	E := r.sw.EntriesPerBlock
	for j, k := range stages {
		i := c.NFs[j].Type - 1
		if k < 0 || k >= r.K {
			return fmt.Errorf("model: residual release chain %d box %d: stage %d invalid", c.ID, j, k)
		}
		s := k % r.sw.Stages
		if r.opts.Consolidate {
			old := r.pinnedRules[i][s]
			if old < c.NFs[j].Rules {
				return fmt.Errorf("model: residual release chain %d box %d: %d rules folded at cell (%d,%d), releasing %d",
					c.ID, j, old, i+1, s, c.NFs[j].Rules)
			}
			r.pinnedRules[i][s] = old - c.NFs[j].Rules
			if r.memRow[i][s] >= 0 {
				r.Prob.SetRHS(r.memRow[i][s], -float64(r.pinnedRules[i][s]))
			} else {
				give := float64(ceilDiv(old, E) - ceilDiv(r.pinnedRules[i][s], E))
				r.Prob.SetRHS(r.blocksRow[s], r.Prob.RHS(r.blocksRow[s])+give)
			}
		} else {
			give := float64(ceilDiv(c.NFs[j].Rules, E))
			r.Prob.SetRHS(r.stageRow[s], r.Prob.RHS(r.stageRow[s])+give)
		}
	}
	pass := float64(stages[c.Len()-1]/r.sw.Stages + 1)
	r.Prob.SetRHS(r.capRow, r.Prob.RHS(r.capRow)+pass*c.BandwidthGbps)
	r.objOffset -= c.BandwidthGbps * float64(c.Len())
	return nil
}

// IntVars returns every integral variable of the program (z, pass and block
// counters), for ilp.Problem.
func (r *Residual) IntVars() []int { return r.intVars }

// AuxVars returns the ceiling-defined auxiliary integers (pass counters and,
// under consolidation, block counters) for ilp.Options.CeilVars.
func (r *Residual) AuxVars() []int { return r.auxVars }

// ObjOffset is the pinned chains' Eq. 1 contribution: the full model's
// objective equals the residual objective plus this constant (modulo the
// auxEps perturbation terms).
func (r *Residual) ObjOffset() float64 { return r.objOffset }

// Loads reports the in-model block census: free waiting candidates, pinned
// admitted blocks, and dead (departed) blocks. The Updater's compaction
// policy rebuilds the program when dead+pinned ballast outweighs the
// waiting set.
func (r *Residual) Loads() (waiting, pinned, dead int) {
	return r.waiting, r.pinned, r.dead
}

// DecodeStages maps an integral solution back to chain placements: chain ID
// to virtual stages, for every in-model chain the solution deploys (pinned
// blocks decode to their pinned placement; dead blocks never appear).
// Binaries snap at the 0.5 threshold, as in Encoded.Decode.
func (r *Residual) DecodeStages(x []float64) map[int][]int {
	out := make(map[int][]int)
	for id, cb := range r.chains {
		switch cb.state {
		case chainDead:
			continue
		case chainPinned:
			out[id] = append([]int(nil), cb.stages...)
			continue
		}
		J := cb.c.Len()
		st := make([]int, J)
		full := true
		for j := 0; j < J; j++ {
			st[j] = -1
			for k := 0; k < r.K; k++ {
				if v := cb.z[j][k]; v >= 0 && x[v] > 0.5 {
					st[j] = k
					break
				}
			}
			full = full && st[j] >= 0
		}
		if full {
			out[id] = st
		}
	}
	return out
}

// EncodeAssignment converts concrete placements of in-model chains into a
// point over the program's variables — the cross-feasibility vector the
// equivalence tests check with Prob.Feasible. stages maps chain ID to
// virtual stages for every chain to deploy; in-model chains absent from the
// map stay undeployed (their variables at 0). Pass counters take the exact
// pass count and block counters the per-cell ceil, as in the full model's
// EncodeAssignment.
func (r *Residual) EncodeAssignment(stages map[int][]int) ([]float64, error) {
	x := make([]float64, r.Prob.NumVars())
	S := r.sw.Stages
	placedRules := make([][]int, r.numTypes)
	for i := range placedRules {
		placedRules[i] = make([]int, S)
	}
	for id, st := range stages {
		cb, ok := r.chains[id]
		if !ok {
			return nil, fmt.Errorf("model: residual encode: chain %d not in-model", id)
		}
		J := cb.c.Len()
		if len(st) != J {
			return nil, fmt.Errorf("model: residual encode chain %d: %d stages for %d boxes", id, len(st), J)
		}
		for j, k := range st {
			if k < 0 || k >= r.K || cb.z[j][k] < 0 {
				return nil, fmt.Errorf("model: residual encode chain %d box %d: stage %d outside window/layout", id, j, k)
			}
			x[cb.z[j][k]] = 1
			placedRules[cb.c.NFs[j].Type-1][k%S] += cb.c.NFs[j].Rules
		}
		x[cb.p] = float64(st[J-1]/S + 1)
	}
	if r.opts.Consolidate {
		E := r.sw.EntriesPerBlock
		for i := 0; i < r.numTypes; i++ {
			for s := 0; s < S; s++ {
				if y := r.yIdx[i][s]; y >= 0 {
					x[y] = float64(ceilDiv(r.pinnedRules[i][s]+placedRules[i][s], E))
				}
			}
		}
	}
	return x, nil
}
