package model

import (
	"fmt"
)

// Verify checks an assignment against the full integer-program constraints
// combinatorially — this is Algorithm 1's Verify_vars step, independent of
// the LP encoding so that encoding bugs cannot self-certify.
func Verify(in *Instance, a *Assignment, consolidate bool) error {
	S, K := in.Switch.Stages, in.K()

	// Shape.
	if len(a.X) != in.NumTypes || len(a.Stages) != len(in.Chains) {
		return fmt.Errorf("model: assignment shape mismatch")
	}

	// Eq. (4): every type has a physical instance.
	for i := 0; i < in.NumTypes; i++ {
		found := false
		for s := 0; s < S; s++ {
			if a.X[i][s] {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("model: type %d has no physical NF (Eq. 4)", i+1)
		}
	}

	for l, c := range in.Chains {
		st := a.Stages[l]
		if len(st) != c.Len() {
			return fmt.Errorf("model: chain %d stage list length %d != %d", c.ID, len(st), c.Len())
		}
		deployed := st[0] >= 0
		prev := -1
		for j, k := range st {
			if (k >= 0) != deployed {
				return fmt.Errorf("model: chain %d partial deployment (Eq. 7)", c.ID)
			}
			if !deployed {
				continue
			}
			if k >= K {
				return fmt.Errorf("model: chain %d box %d at stage %d ≥ K=%d", c.ID, j, k, K)
			}
			if k <= prev {
				return fmt.Errorf("model: chain %d order violated at box %d (Eq. 8)", c.ID, j)
			}
			prev = k
			if !a.X[c.NFs[j].Type-1][k%S] {
				return fmt.Errorf("model: chain %d box %d (type %d) on stage %d without physical NF (Eq. 9)",
					c.ID, j, c.NFs[j].Type, k%S)
			}
		}
	}

	// Memory (Eq. 11 or 25).
	E := in.Switch.EntriesPerBlock
	for s := 0; s < S; s++ {
		blocks := 0
		if consolidate {
			// Per type: one ceil over the type's total rules on this stage.
			perType := make([]int, in.NumTypes)
			for l, c := range in.Chains {
				if !a.Deployed(l) {
					continue
				}
				for j, b := range c.NFs {
					if a.Stages[l][j]%S == s {
						perType[b.Type-1] += b.Rules
					}
				}
			}
			for _, rules := range perType {
				blocks += (rules + E - 1) / E
			}
		} else {
			for l, c := range in.Chains {
				if !a.Deployed(l) {
					continue
				}
				for j, b := range c.NFs {
					if a.Stages[l][j]%S == s {
						blocks += (b.Rules + E - 1) / E
					}
				}
			}
		}
		if blocks > in.Switch.BlocksPerStage {
			return fmt.Errorf("model: stage %d uses %d blocks > B=%d (memory)", s, blocks, in.Switch.BlocksPerStage)
		}
	}

	// Capacity (Eq. 12).
	load := 0.0
	for l, c := range in.Chains {
		load += float64(a.Passes(l, S)) * c.BandwidthGbps
	}
	if load > in.Switch.CapacityGbps*(1+1e-9) {
		return fmt.Errorf("model: backplane load %.3f > C=%.3f (Eq. 12)", load, in.Switch.CapacityGbps)
	}
	return nil
}

// Metrics summarizes an assignment's quality and resource usage — the
// quantities plotted in Figs. 6, 7, 10 and 11.
type Metrics struct {
	// Objective is Eq. (1): Σ deployed T_l·J_l.
	Objective float64
	// ThroughputGbps is Σ deployed T_l (the figures' "throughput" axis).
	ThroughputGbps float64
	// BackplaneGbps is Σ (R_l+1)·T_l, the Eq. (12) load.
	BackplaneGbps float64
	// Deployed counts placed chains.
	Deployed int
	// BlocksPerStage is memory-block usage per physical stage.
	BlocksPerStage []int
	// BlockUtil is mean blocks used per stage (Fig. 6a axis, 0..B).
	BlockUtil float64
	// EntriesUsed is total installed rule entries.
	EntriesUsed int
	// EntryUtil is entries used over entries reserved in allocated blocks
	// (Fig. 6b axis, 0..1): consolidation raises it by removing internal
	// fragmentation.
	EntryUtil float64
	// MaxPasses is the largest R_l+1 over deployed chains.
	MaxPasses int
}

// ComputeMetrics evaluates an assignment. consolidate must match the
// formulation the assignment was produced under, since it changes how many
// blocks the same placement occupies.
func ComputeMetrics(in *Instance, a *Assignment, consolidate bool) Metrics {
	S := in.Switch.Stages
	E := in.Switch.EntriesPerBlock
	m := Metrics{BlocksPerStage: make([]int, S)}

	for l, c := range in.Chains {
		if !a.Deployed(l) {
			continue
		}
		m.Deployed++
		m.Objective += c.BandwidthGbps * float64(c.Len())
		m.ThroughputGbps += c.BandwidthGbps
		passes := a.Passes(l, S)
		m.BackplaneGbps += float64(passes) * c.BandwidthGbps
		if passes > m.MaxPasses {
			m.MaxPasses = passes
		}
		m.EntriesUsed += c.RuleSum()
	}

	for s := 0; s < S; s++ {
		if consolidate {
			perType := make([]int, in.NumTypes)
			for l, c := range in.Chains {
				if !a.Deployed(l) {
					continue
				}
				for j, b := range c.NFs {
					if a.Stages[l][j]%S == s {
						perType[b.Type-1] += b.Rules
					}
				}
			}
			for _, rules := range perType {
				m.BlocksPerStage[s] += (rules + E - 1) / E
			}
		} else {
			for l, c := range in.Chains {
				if !a.Deployed(l) {
					continue
				}
				for j, b := range c.NFs {
					if a.Stages[l][j]%S == s {
						m.BlocksPerStage[s] += (b.Rules + E - 1) / E
					}
				}
			}
		}
	}
	totalBlocks := 0
	for _, b := range m.BlocksPerStage {
		totalBlocks += b
	}
	if S > 0 {
		m.BlockUtil = float64(totalBlocks) / float64(S)
	}
	if totalBlocks > 0 {
		m.EntryUtil = float64(m.EntriesUsed) / float64(totalBlocks*E)
	}
	return m
}
