package model

import (
	"math"
	"math/rand"
	"testing"

	"sfp/internal/ilp"
)

// solveResidual solves the residual program to optimality and returns the
// decoded placements plus the raw solver objective.
func solveResidual(t *testing.T, r *Residual) (map[int][]int, float64) {
	t.Helper()
	res, err := ilp.Solve(&ilp.Problem{LP: r.Prob, IntVars: r.IntVars()}, ilp.Options{CeilVars: r.AuxVars()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ilp.Optimal {
		t.Fatalf("residual IP status = %v", res.Status)
	}
	return r.DecodeStages(res.X), res.Objective
}

// residualScenario solves a random instance cold, takes the deployed chains
// as pinned survivors and the solved X as the fixed layout, then injects
// fresh arrivals as the waiting set. Returns the grown instance, the live
// map, and the layout.
func residualScenario(t *testing.T, rng *rand.Rand, consolidate bool) (*Instance, map[int][]int, [][]bool) {
	t.Helper()
	in := randomInstance(rng, 3, 4)
	a0, _ := solveIP(t, in, BuildOptions{Consolidate: consolidate})
	live := make(map[int][]int)
	for l, c := range in.Chains {
		if a0.Deployed(l) {
			live[c.ID] = append([]int(nil), a0.Stages[l]...)
		}
	}
	layout := make([][]bool, in.NumTypes)
	for i := range layout {
		layout[i] = append([]bool(nil), a0.X[i]...)
	}
	// Fresh arrivals compete for whatever the survivors left.
	for n := 0; n < 3; n++ {
		J := 1 + rng.Intn(3)
		ch := &Chain{ID: 1000 + n, BandwidthGbps: 1 + float64(rng.Intn(20))}
		for j := 0; j < J; j++ {
			ch.NFs = append(ch.NFs, ChainNF{Type: 1 + rng.Intn(in.NumTypes), Rules: 20 + rng.Intn(120)})
		}
		in.Chains = append(in.Chains, ch)
	}
	return in, live, layout
}

// assembleResidual merges pinned survivors and residual-placed chains into
// a full Assignment over the instance.
func assembleResidual(in *Instance, layout [][]bool, live, placed map[int][]int) *Assignment {
	a := NewAssignment(in)
	for i := range layout {
		copy(a.X[i], layout[i])
	}
	for l, c := range in.Chains {
		if st, ok := live[c.ID]; ok {
			copy(a.Stages[l], st)
		} else if st, ok := placed[c.ID]; ok {
			copy(a.Stages[l], st)
		}
	}
	return a
}

// TestResidualMatchesPinnedFull is the tentpole equivalence proof: the
// pinned-tenant-eliminated residual program and the full Build + PinPhysical
// + PinChain reference must reach the same optimum over randomized replan
// scenarios, and each optimum must encode feasibly into the *other*
// formulation (bidirectional crosscheck).
func TestResidualMatchesPinnedFull(t *testing.T) {
	for _, consolidate := range []bool{true, false} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(400 + seed))
			opts := BuildOptions{Consolidate: consolidate}
			in, live, layout := residualScenario(t, rng, consolidate)

			// Reference: full model, survivors pinned, layout fixed.
			enc, err := Build(in, opts)
			if err != nil {
				t.Fatal(err)
			}
			enc.PinPhysical(layout)
			for l, c := range in.Chains {
				if st, ok := live[c.ID]; ok {
					if err := enc.PinChain(l, st); err != nil {
						t.Fatal(err)
					}
				}
			}
			fullRes, err := ilp.Solve(&ilp.Problem{LP: enc.Prob, IntVars: enc.IntVars},
				ilp.Options{PriorityVars: enc.XVars(), CeilVars: enc.AuxVars()})
			if err != nil {
				t.Fatal(err)
			}
			if fullRes.Status != ilp.Optimal {
				t.Fatalf("consolidate=%v seed=%d: full IP status = %v", consolidate, seed, fullRes.Status)
			}
			aFull := enc.Decode(fullRes.X)
			if err := Verify(in, aFull, consolidate); err != nil {
				t.Fatalf("consolidate=%v seed=%d: full assignment: %v", consolidate, seed, err)
			}
			mFull := ComputeMetrics(in, aFull, consolidate)

			// Residual subproblem over the same snapshot.
			resid, err := BuildResidual(in, live, layout, opts)
			if err != nil {
				t.Fatal(err)
			}
			placed, residObj := solveResidual(t, resid)
			aRes := assembleResidual(in, layout, live, placed)
			if err := Verify(in, aRes, consolidate); err != nil {
				t.Fatalf("consolidate=%v seed=%d: residual assignment: %v", consolidate, seed, err)
			}
			mRes := ComputeMetrics(in, aRes, consolidate)

			// Same optimum (Eq. 1 is placement-determined; auxEps noise is
			// orders of magnitude below the 1e-6 tolerance).
			if math.Abs(mRes.Objective-mFull.Objective) > 1e-6 {
				t.Errorf("consolidate=%v seed=%d: residual objective %v, full %v",
					consolidate, seed, mRes.Objective, mFull.Objective)
			}
			// The solver's residual objective plus the folded survivors'
			// constant must also reproduce Eq. 1.
			if got := residObj + resid.ObjOffset(); math.Abs(got-mRes.Objective) > 1e-3 {
				t.Errorf("consolidate=%v seed=%d: residObj+offset = %v, metrics objective %v",
					consolidate, seed, got, mRes.Objective)
			}

			// Crosscheck 1: the residual optimum is a feasible point of the
			// pinned full model, and decodes back bit-identically.
			xFull, err := enc.EncodeAssignment(aRes)
			if err != nil {
				t.Fatalf("consolidate=%v seed=%d: encode residual into full: %v", consolidate, seed, err)
			}
			if !enc.Prob.Feasible(xFull, 1e-6) {
				t.Errorf("consolidate=%v seed=%d: residual optimum infeasible in full model", consolidate, seed)
			}
			back := enc.Decode(xFull)
			for l := range in.Chains {
				for j := range back.Stages[l] {
					if back.Stages[l][j] != aRes.Stages[l][j] {
						t.Fatalf("consolidate=%v seed=%d: decode roundtrip moved chain %d box %d",
							consolidate, seed, in.Chains[l].ID, j)
					}
				}
			}

			// Crosscheck 2: the full optimum's waiting placements are a
			// feasible point of the residual program.
			fullPlaced := make(map[int][]int)
			for l, c := range in.Chains {
				if _, pinned := live[c.ID]; !pinned && aFull.Deployed(l) {
					fullPlaced[c.ID] = append([]int(nil), aFull.Stages[l]...)
				}
			}
			xRes, err := resid.EncodeAssignment(fullPlaced)
			if err != nil {
				t.Fatalf("consolidate=%v seed=%d: encode full into residual: %v", consolidate, seed, err)
			}
			if !resid.Prob.Feasible(xRes, 1e-6) {
				t.Errorf("consolidate=%v seed=%d: full optimum infeasible in residual model", consolidate, seed)
			}
		}
	}
}

// TestResidualDeltaMatchesFresh churns one retained residual program through
// Append / Kill / PinTo / ReleaseFolded and checks after every step that it
// solves to the same optimum as a from-scratch BuildResidual over the
// equivalent snapshot — the delta patches never drift from the semantics.
func TestResidualDeltaMatchesFresh(t *testing.T) {
	for _, consolidate := range []bool{true, false} {
		rng := rand.New(rand.NewSource(77))
		opts := BuildOptions{Consolidate: consolidate}
		in, live, layout := residualScenario(t, rng, consolidate)

		patched, err := BuildResidual(in, live, layout, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Shadow state: the instance and live map a fresh build would see.
		chains := make(map[int]*Chain)
		for _, c := range in.Chains {
			chains[c.ID] = c
		}
		nextID := 2000

		check := func(step string) {
			t.Helper()
			snap := &Instance{Switch: in.Switch, NumTypes: in.NumTypes, Recirc: in.Recirc}
			for _, c := range in.Chains { // stable order: original, then arrivals by ID
				if _, ok := chains[c.ID]; ok {
					snap.Chains = append(snap.Chains, c)
				}
			}
			for id := 2000; id < nextID; id++ {
				if c, ok := chains[id]; ok {
					snap.Chains = append(snap.Chains, c)
				}
			}
			fresh, err := BuildResidual(snap, live, layout, opts)
			if err != nil {
				t.Fatalf("%s: fresh build: %v", step, err)
			}
			_, freshObj := solveResidual(t, fresh)
			_, patchObj := solveResidual(t, patched)
			got := patchObj + patched.ObjOffset()
			want := freshObj + fresh.ObjOffset()
			if math.Abs(got-want) > 1e-3 {
				t.Fatalf("%s (consolidate=%v): patched optimum %v, fresh %v", step, consolidate, got, want)
			}
		}

		check("initial")

		// Arrival: patch via Append.
		arr := &Chain{ID: nextID, BandwidthGbps: 8, NFs: []ChainNF{
			{Type: 1 + rng.Intn(in.NumTypes), Rules: 60},
			{Type: 1 + rng.Intn(in.NumTypes), Rules: 40},
		}}
		nextID++
		if _, _, err := patched.Append(arr); err != nil {
			t.Fatal(err)
		}
		chains[arr.ID] = arr
		check("append")

		// Admit: solve, pin every placed waiting chain in both worlds.
		placed, _ := solveResidual(t, patched)
		for id, st := range placed {
			if _, already := live[id]; already {
				continue
			}
			if err := patched.PinTo(id, st); err != nil {
				t.Fatalf("pin %d: %v", id, err)
			}
			live[id] = append([]int(nil), st...)
		}
		check("pin")

		// Departure of a folded survivor (present before the residual was
		// built, so not in-model): RHS release.
		for id, st := range live {
			if patched.Has(id) {
				continue
			}
			if err := patched.ReleaseFolded(chains[id], st); err != nil {
				t.Fatalf("release %d: %v", id, err)
			}
			delete(live, id)
			delete(chains, id)
			break
		}
		check("release-folded")

		// Departure of an in-model chain (pinned or waiting): Kill.
		for id := range patched.chains {
			if err := patched.Kill(id); err != nil {
				t.Fatal(err)
			}
			delete(live, id)
			delete(chains, id)
			break
		}
		check("kill")
	}
}

// TestResidualEdgeCases covers the degenerate replan states: an empty
// waiting set builds a variable-free program, an all-departed state regrows
// from an empty live map, and a layout missing an NF type is rejected
// (Eq. 4 cannot hold).
func TestResidualEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in, live, layout := residualScenario(t, rng, true)

	// Everyone lives: nothing to optimize.
	allLive := make(map[int][]int, len(in.Chains))
	full := &Instance{Switch: in.Switch, NumTypes: in.NumTypes, Recirc: in.Recirc}
	for _, c := range in.Chains {
		if st, ok := live[c.ID]; ok {
			allLive[c.ID] = st
			full.Chains = append(full.Chains, c)
		}
	}
	r, err := BuildResidual(full, allLive, layout, BuildOptions{Consolidate: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Prob.NumVars() != 0 {
		t.Errorf("empty waiting set produced %d variables", r.Prob.NumVars())
	}
	if w, p, d := r.Loads(); w != 0 || p != 0 || d != 0 {
		t.Errorf("empty waiting set loads = %d/%d/%d", w, p, d)
	}

	// All departed: empty live map, waiting chains only.
	r2, err := BuildResidual(in, map[int][]int{}, layout, BuildOptions{Consolidate: true})
	if err != nil {
		t.Fatal(err)
	}
	if r2.ObjOffset() != 0 {
		t.Errorf("all-departed objOffset = %v", r2.ObjOffset())
	}
	placed, _ := solveResidual(t, r2)
	a := assembleResidual(in, layout, map[int][]int{}, placed)
	if err := Verify(in, a, true); err != nil {
		t.Errorf("all-departed assignment: %v", err)
	}

	// A layout hole (type with no instance) violates Eq. 4 at build time.
	bad := make([][]bool, len(layout))
	for i := range layout {
		bad[i] = append([]bool(nil), layout[i]...)
	}
	for s := range bad[0] {
		bad[0][s] = false
	}
	if _, err := BuildResidual(in, live, bad, BuildOptions{Consolidate: true}); err == nil {
		t.Error("layout missing type 1 accepted")
	}
}
