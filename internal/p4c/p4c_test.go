package p4c

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sfp/internal/nf"
	"sfp/internal/pipeline"
)

func cfg(stages, blocks, entries int) Config {
	return Config{Stages: stages, BlocksPerStage: blocks, EntriesPerBlock: entries}
}

func TestClassify(t *testing.T) {
	writerDst := &TableDecl{Name: "lb", Writes: []pipeline.FieldID{pipeline.FieldIPv4Dst}}
	readerDst := &TableDecl{Name: "rt", Reads: []pipeline.FieldID{pipeline.FieldIPv4Dst}}
	if k := Classify(writerDst, readerDst); k != DepMatch {
		t.Errorf("writer→reader = %v, want match", k)
	}
	writer2 := &TableDecl{Name: "nat", Writes: []pipeline.FieldID{pipeline.FieldIPv4Dst}}
	if k := Classify(writerDst, writer2); k != DepAction {
		t.Errorf("writer→writer = %v, want action", k)
	}
	ctrl := &TableDecl{Name: "x", After: []string{"lb"}}
	if k := Classify(writerDst, ctrl); k != DepControl {
		t.Errorf("control dep = %v", k)
	}
	indep := &TableDecl{Name: "mon", Reads: []pipeline.FieldID{pipeline.FieldIPv4Src}}
	if k := Classify(writerDst, indep); k != DepNone {
		t.Errorf("independent = %v, want none", k)
	}
}

func TestCompileDependentChain(t *testing.T) {
	// Classifier writes class_id, rate limiter reads it: distinct stages.
	prog, err := ChainProgram([]nf.Type{nf.TrafficClassifier, nf.RateLimiter}, nil)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := Compile(prog, cfg(4, 4, 100))
	if err != nil {
		t.Fatal(err)
	}
	cls := layout.StageOf["traffic_classifier_1"]
	rl := layout.StageOf["rate_limiter_1"]
	if rl <= cls {
		t.Errorf("rate limiter at stage %d, classifier at %d: dependency violated", rl, cls)
	}
}

func TestCompilePacksIndependentTables(t *testing.T) {
	// Firewall and monitor are independent: same stage when blocks allow.
	prog, err := ChainProgram([]nf.Type{nf.Firewall, nf.Monitor}, []int{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	layout, err := Compile(prog, cfg(4, 4, 100))
	if err != nil {
		t.Fatal(err)
	}
	if layout.StageOf["firewall_1"] != layout.StageOf["monitor_1"] {
		t.Errorf("independent tables not packed: %v", layout.StageOf)
	}
	if layout.StagesUsed != 1 {
		t.Errorf("stages used = %d, want 1", layout.StagesUsed)
	}
}

func TestCompileBlockPressureSplits(t *testing.T) {
	// Same independent pair, but one block per stage forces a split.
	prog, _ := ChainProgram([]nf.Type{nf.Firewall, nf.Monitor}, []int{100, 100})
	layout, err := Compile(prog, cfg(4, 1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if layout.StageOf["firewall_1"] == layout.StageOf["monitor_1"] {
		t.Error("tables share a stage beyond the block budget")
	}
}

func TestCompileLBThenRouter(t *testing.T) {
	// The paper's Fig. 2 chain: FW → TC → LB → Router. LB writes the dst
	// address the router matches, so the router must come later.
	prog, err := ChainProgram([]nf.Type{nf.Firewall, nf.TrafficClassifier, nf.LoadBalancer, nf.Router}, nil)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := Compile(prog, cfg(12, 8, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if layout.StageOf["router_1"] <= layout.StageOf["load_balancer_1"] {
		t.Error("router not after load balancer")
	}
	if got, want := CriticalPath(prog), 2; got != want {
		t.Errorf("critical path = %d, want %d (LB→Router)", got, want)
	}
}

func TestCompileDoesNotFit(t *testing.T) {
	// A 3-deep dependency chain cannot compile into 2 stages.
	prog := &Program{Tables: []TableDecl{
		{Name: "a", Writes: []pipeline.FieldID{pipeline.FieldClassID}},
		{Name: "b", Reads: []pipeline.FieldID{pipeline.FieldClassID}, Writes: []pipeline.FieldID{pipeline.FieldL4Hash}},
		{Name: "c", Reads: []pipeline.FieldID{pipeline.FieldL4Hash}},
	}}
	if _, err := Compile(prog, cfg(2, 4, 100)); err == nil {
		t.Error("3-deep chain compiled into 2 stages")
	}
	if _, err := Compile(prog, cfg(3, 4, 100)); err != nil {
		t.Errorf("3-deep chain failed in 3 stages: %v", err)
	}
}

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(&Program{Tables: []TableDecl{{Name: ""}}}, cfg(2, 2, 10)); err == nil {
		t.Error("unnamed table accepted")
	}
	if _, err := Compile(&Program{Tables: []TableDecl{{Name: "a"}, {Name: "a"}}}, cfg(2, 2, 10)); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := Compile(&Program{Tables: []TableDecl{{Name: "a", After: []string{"zzz"}}}}, cfg(2, 2, 10)); err == nil {
		t.Error("unknown dependency accepted")
	}
	if _, err := Compile(&Program{}, Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

// Property: compiled layouts always respect dependencies and block budgets.
func TestCompileProperties(t *testing.T) {
	all := nf.AllTypes()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		types := make([]nf.Type, n)
		entries := make([]int, n)
		for i := range types {
			types[i] = all[rng.Intn(len(all))]
			entries[i] = 10 + rng.Intn(300)
		}
		prog, err := ChainProgram(types, entries)
		if err != nil {
			return false
		}
		target := cfg(2+rng.Intn(11), 1+rng.Intn(6), 100)
		layout, err := Compile(prog, target)
		if err != nil {
			return true // not fitting is legal
		}
		// Dependencies respected.
		for i := range prog.Tables {
			for j := 0; j < i; j++ {
				if Classify(&prog.Tables[j], &prog.Tables[i]) != DepNone {
					if layout.StageOf[prog.Tables[i].Name] <= layout.StageOf[prog.Tables[j].Name] {
						return false
					}
				}
			}
		}
		// Block budget respected.
		for _, b := range layout.BlocksPerStage {
			if b > target.BlocksPerStage {
				return false
			}
		}
		// StagesUsed ≥ critical path.
		return layout.StagesUsed >= CriticalPath(prog)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStageSummary(t *testing.T) {
	prog, _ := ChainProgram([]nf.Type{nf.Firewall, nf.Monitor}, []int{50, 50})
	layout, err := Compile(prog, cfg(4, 4, 100))
	if err != nil {
		t.Fatal(err)
	}
	lines := StageSummary(layout)
	if len(lines) != 1 {
		t.Errorf("summary = %v", lines)
	}
}
