// Package p4c is a miniature match-action program compiler in the spirit
// of Jose et al. (NSDI'15), the paper's citation [26]: it analyzes
// read/write dependencies between match-action tables and assigns tables to
// physical pipeline stages — dependent tables to strictly later stages,
// independent tables packed into the same stage when the memory budget
// allows (§II-B, "Applying P4 Programs to Switch Pipelines").
//
// SFP uses it to lay whole NFs (one big table each) onto stages and to
// sanity-check that a control-plane placement is realizable as a program.
package p4c

import (
	"fmt"
	"sort"

	"sfp/internal/nf"
	"sfp/internal/pipeline"
)

// TableDecl declares one match-action table of a program.
type TableDecl struct {
	Name string
	// Reads are the fields the table matches on or its actions read.
	Reads []pipeline.FieldID
	// Writes are the fields its actions may modify.
	Writes []pipeline.FieldID
	// Entries is the table's reserved capacity, for block accounting.
	Entries int
	// After lists explicit control-flow predecessors (table names that
	// must execute earlier regardless of field dependencies), e.g. the
	// paper's gateway-table if-else structure.
	After []string
}

// Program is an ordered set of table declarations. Declaration order is
// the program's control order: dependencies are only considered from
// earlier to later declarations, as in a straight-line control flow.
type Program struct {
	Tables []TableDecl
}

// DepKind classifies a dependency between two tables.
type DepKind int

// Dependency kinds, in decreasing strictness.
const (
	// DepNone: the tables may share a stage.
	DepNone DepKind = iota
	// DepMatch: successor matches a field the predecessor writes — the
	// successor must be in a strictly later stage.
	DepMatch
	// DepAction: both write the same field — strictly later stage (the
	// last write must win).
	DepAction
	// DepControl: explicit control dependency — strictly later stage.
	DepControl
)

// String names the dependency kind.
func (k DepKind) String() string {
	switch k {
	case DepNone:
		return "none"
	case DepMatch:
		return "match"
	case DepAction:
		return "action"
	case DepControl:
		return "control"
	}
	return fmt.Sprintf("dep(%d)", int(k))
}

// Classify returns the strongest dependency from pred to succ.
func Classify(pred, succ *TableDecl) DepKind {
	for _, name := range succ.After {
		if name == pred.Name {
			return DepControl
		}
	}
	wset := map[pipeline.FieldID]bool{}
	for _, f := range pred.Writes {
		wset[f] = true
	}
	for _, f := range succ.Reads {
		if wset[f] {
			return DepMatch
		}
	}
	for _, f := range succ.Writes {
		if wset[f] {
			return DepAction
		}
	}
	return DepNone
}

// Layout is a compiled stage assignment.
type Layout struct {
	// StageOf maps table name to its 0-based physical stage.
	StageOf map[string]int
	// StagesUsed is the number of stages the program occupies.
	StagesUsed int
	// BlocksPerStage is the block usage the layout implies.
	BlocksPerStage []int
}

// Config bounds the target pipeline.
type Config struct {
	Stages          int
	BlocksPerStage  int
	EntriesPerBlock int
}

// Compile assigns tables to stages: each table goes to the earliest stage
// that is (a) strictly after every predecessor it depends on, and (b) has
// block budget left. Tables are processed in declaration order, which the
// caller guarantees is a valid topological order of the control flow.
func Compile(prog *Program, cfg Config) (*Layout, error) {
	if cfg.Stages <= 0 || cfg.BlocksPerStage <= 0 || cfg.EntriesPerBlock <= 0 {
		return nil, fmt.Errorf("p4c: invalid target config %+v", cfg)
	}
	seen := map[string]bool{}
	for _, t := range prog.Tables {
		if t.Name == "" {
			return nil, fmt.Errorf("p4c: unnamed table")
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("p4c: duplicate table %q", t.Name)
		}
		seen[t.Name] = true
	}
	for _, t := range prog.Tables {
		for _, a := range t.After {
			if !seen[a] {
				return nil, fmt.Errorf("p4c: table %q depends on unknown table %q", t.Name, a)
			}
		}
	}

	layout := &Layout{
		StageOf:        make(map[string]int, len(prog.Tables)),
		BlocksPerStage: make([]int, cfg.Stages),
	}
	blocksOf := func(entries int) int {
		if entries <= 0 {
			return 0
		}
		return (entries + cfg.EntriesPerBlock - 1) / cfg.EntriesPerBlock
	}
	for i := range prog.Tables {
		t := &prog.Tables[i]
		// Earliest legal stage from dependencies on earlier declarations.
		minStage := 0
		for j := 0; j < i; j++ {
			pred := &prog.Tables[j]
			if Classify(pred, t) != DepNone {
				if s := layout.StageOf[pred.Name] + 1; s > minStage {
					minStage = s
				}
			}
		}
		need := blocksOf(t.Entries)
		placed := false
		for s := minStage; s < cfg.Stages; s++ {
			if layout.BlocksPerStage[s]+need <= cfg.BlocksPerStage {
				layout.StageOf[t.Name] = s
				layout.BlocksPerStage[s] += need
				if s+1 > layout.StagesUsed {
					layout.StagesUsed = s + 1
				}
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("p4c: table %q does not fit (needs stage ≥ %d, %d blocks)", t.Name, minStage, need)
		}
	}
	return layout, nil
}

// NFReads returns the fields an NF type's table matches or reads.
func NFReads(t nf.Type) []pipeline.FieldID {
	spec := nf.ForType(t)
	reads := []pipeline.FieldID{pipeline.FieldTenantID, pipeline.FieldPass}
	for _, k := range spec.Keys {
		reads = append(reads, k.Field)
	}
	return reads
}

// NFWrites returns the fields an NF type's actions modify, from the NF
// library's action semantics.
func NFWrites(t nf.Type) []pipeline.FieldID {
	switch t {
	case nf.Firewall, nf.DDoSMitigator, nf.RateLimiter:
		return nil // drop decisions only; no header/metadata fields matched downstream
	case nf.LoadBalancer:
		return []pipeline.FieldID{pipeline.FieldIPv4Dst, pipeline.FieldDstPort, pipeline.FieldL4Hash}
	case nf.TrafficClassifier:
		return []pipeline.FieldID{pipeline.FieldClassID}
	case nf.Router:
		return []pipeline.FieldID{pipeline.FieldIngressPort} // egress decision; TTL not matched by our NFs
	case nf.NAT:
		return []pipeline.FieldID{pipeline.FieldIPv4Src, pipeline.FieldSrcPort}
	case nf.VPNGateway:
		return []pipeline.FieldID{pipeline.FieldClassID}
	case nf.Monitor, nf.CacheIndex:
		return nil
	}
	return nil
}

// ChainProgram builds the single-tenant straight-line program of an SFC:
// one table per NF in chain order, with reads/writes from the NF library.
func ChainProgram(types []nf.Type, entries []int) (*Program, error) {
	if len(entries) != 0 && len(entries) != len(types) {
		return nil, fmt.Errorf("p4c: %d entry counts for %d NFs", len(entries), len(types))
	}
	prog := &Program{}
	counts := map[nf.Type]int{}
	for i, t := range types {
		if !t.Valid() {
			return nil, fmt.Errorf("p4c: invalid NF type %d", int(t))
		}
		counts[t]++
		name := fmt.Sprintf("%s_%d", t, counts[t])
		e := 0
		if len(entries) > 0 {
			e = entries[i]
		}
		prog.Tables = append(prog.Tables, TableDecl{
			Name:    name,
			Reads:   NFReads(t),
			Writes:  NFWrites(t),
			Entries: e,
		})
	}
	return prog, nil
}

// CriticalPath returns the longest dependency chain length in the program —
// the minimum number of stages any compiler needs for it.
func CriticalPath(prog *Program) int {
	depth := make([]int, len(prog.Tables))
	longest := 0
	for i := range prog.Tables {
		depth[i] = 1
		for j := 0; j < i; j++ {
			if Classify(&prog.Tables[j], &prog.Tables[i]) != DepNone && depth[j]+1 > depth[i] {
				depth[i] = depth[j] + 1
			}
		}
		if depth[i] > longest {
			longest = depth[i]
		}
	}
	return longest
}

// StageSummary renders a layout by stage for human inspection.
func StageSummary(l *Layout) []string {
	byStage := make([][]string, l.StagesUsed)
	for name, s := range l.StageOf {
		byStage[s] = append(byStage[s], name)
	}
	out := make([]string, l.StagesUsed)
	for s, names := range byStage {
		sort.Strings(names)
		out[s] = fmt.Sprintf("stage %d: %v (%d blocks)", s, names, l.BlocksPerStage[s])
	}
	return out
}
