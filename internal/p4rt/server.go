package p4rt

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"sfp/internal/nf"
)

// frame limits protect the server from hostile or corrupt peers.
const maxFrame = 16 << 20

// writeFrame emits a 4-byte big-endian length followed by the JSON body.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > maxFrame {
		return fmt.Errorf("p4rt: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-delimited frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("p4rt: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// Target is the switch-side surface the server drives. vswitch.VSwitch
// satisfies it; tests may substitute fakes.
type Target interface {
	InstallPhysical(stage int, t nf.Type, capacity int) error
	Allocate(sfc *SFCSpec) ([]PlacementSpec, int, error)
	AllocateAt(sfc *SFCSpec, placements []PlacementSpec) (int, error)
	Deallocate(tenant uint32) error
	Layout() [][]string
	Stats() Stats
	Inject(wire []byte, nowNs float64) (InjectResult, error)
}

// Server serves the control API over TCP.
type Server struct {
	target Target

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer wraps a target.
func NewServer(target Target) *Server {
	return &Server{target: target, conns: make(map[net.Conn]struct{})}
}

// Listen binds the address and serves until Close. It returns the bound
// address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		body, err := readFrame(r)
		if err != nil {
			return
		}
		var req Request
		resp := Response{OK: true}
		if err := json.Unmarshal(body, &req); err != nil {
			resp = Response{Error: "bad request: " + err.Error()}
		} else {
			resp = s.dispatch(&req)
		}
		out, err := marshal(resp)
		if err != nil {
			return
		}
		if err := writeFrame(w, out); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch serializes all target access: the data-plane structures are not
// concurrent-safe, matching a single switch driver thread.
var dispatchMu sync.Mutex

func (s *Server) dispatch(req *Request) Response {
	dispatchMu.Lock()
	defer dispatchMu.Unlock()
	switch req.Type {
	case MsgPing:
		return Response{OK: true}
	case MsgInstallPhysical:
		t, err := nf.ParseType(req.NFType)
		if err != nil {
			return errResp(err)
		}
		if err := s.target.InstallPhysical(req.Stage, t, req.Capacity); err != nil {
			return errResp(err)
		}
		return Response{OK: true}
	case MsgAllocate:
		if req.SFC == nil {
			return errResp(errors.New("allocate: missing sfc"))
		}
		placements, passes, err := s.target.Allocate(req.SFC)
		if err != nil {
			return errResp(err)
		}
		return Response{OK: true, Placements: placements, Passes: passes}
	case MsgAllocateAt:
		if req.SFC == nil {
			return errResp(errors.New("allocate_at: missing sfc"))
		}
		passes, err := s.target.AllocateAt(req.SFC, req.Placements)
		if err != nil {
			return errResp(err)
		}
		return Response{OK: true, Placements: req.Placements, Passes: passes}
	case MsgDeallocate:
		if err := s.target.Deallocate(req.Tenant); err != nil {
			return errResp(err)
		}
		return Response{OK: true}
	case MsgLayout:
		return Response{OK: true, Layout: s.target.Layout()}
	case MsgStats:
		st := s.target.Stats()
		return Response{OK: true, Stats: &st}
	case MsgInject:
		res, err := s.target.Inject(req.Wire, req.NowNs)
		if err != nil {
			return errResp(err)
		}
		return Response{OK: true, Inject: &res}
	}
	return errResp(fmt.Errorf("unknown message type %q", req.Type))
}

func errResp(err error) Response { return Response{Error: err.Error()} }

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}
