package p4rt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sfp/internal/nf"
)

// frame limits protect the server from hostile or corrupt peers.
const maxFrame = 16 << 20

// writeFrame emits a 4-byte big-endian length followed by the JSON body.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > maxFrame {
		return fmt.Errorf("p4rt: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-delimited frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("p4rt: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// Target is the switch-side surface the server drives. vswitch.VSwitch
// satisfies it; tests may substitute fakes.
type Target interface {
	InstallPhysical(stage int, t nf.Type, capacity int) error
	Allocate(sfc *SFCSpec) ([]PlacementSpec, int, error)
	AllocateAt(sfc *SFCSpec, placements []PlacementSpec) (int, error)
	Deallocate(tenant uint32) error
	Layout() [][]string
	Stats() Stats
	Inject(wire []byte, nowNs float64) (InjectResult, error)
}

// PhysicalRemover is an optional Target extension: undo an
// install_physical sub-op during batch rollback. A batch containing
// install_physical ops is rejected up front unless the target supports it.
type PhysicalRemover interface {
	RemovePhysical(stage int, t nf.Type) error
}

// TenantSnapshotter is an optional Target extension: capture a live
// tenant's state so a batched deallocate can be undone. The returned
// restore closure re-installs the tenant exactly as snapshotted; keeping
// it opaque lets targets capture native state directly instead of paying
// wire-form conversions on every deallocate sub-op (the undo is thrown
// away whenever the batch succeeds, which is the common case). A batch
// containing deallocate ops is rejected up front unless the target
// supports it.
type TenantSnapshotter interface {
	TenantSnapshot(tenant uint32) (restore func() error, err error)
}

// StateDumper is an optional Target extension: read back the switch's
// full installed configuration for controller-side reconciliation.
// Targets without it reject MsgDumpState.
type StateDumper interface {
	DumpState() (*StateDump, error)
}

// BatchAllocItem pairs one allocate_at sub-op's chain with its placements.
type BatchAllocItem struct {
	SFC        *SFCSpec
	Placements []PlacementSpec
}

// BatchAllocator is an optional Target extension: realize a run of
// consecutive allocate_at sub-ops in one pass over the data plane
// (all-or-nothing, returning per-item pass counts). Without it the server
// falls back to per-op AllocateAt calls with individual undo entries.
type BatchAllocator interface {
	AllocateBatch(items []BatchAllocItem) ([]int, error)
}

// ServerOptions tunes server robustness. The zero value keeps historic
// behavior (no read timeout, unlimited connections, default dedup window).
type ServerOptions struct {
	// ReadTimeout is the per-frame read deadline: a connection that stays
	// idle (or dribbles a partial frame) longer than this is closed, so
	// hostile or dead peers cannot pin goroutines forever. 0 = none.
	ReadTimeout time.Duration
	// MaxConns caps concurrently served connections; excess accepts are
	// closed immediately. 0 = unlimited.
	MaxConns int
	// DedupWindow is how many recent mutating responses are cached per
	// client for request-ID replay detection. 0 = 128.
	DedupWindow int
	// MaxClients bounds how many client identities the dedup cache
	// tracks (oldest evicted first). 0 = 64.
	MaxClients int
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.DedupWindow <= 0 {
		o.DedupWindow = 128
	}
	if o.MaxClients <= 0 {
		o.MaxClients = 64
	}
	return o
}

// Server serves the control API over TCP.
type Server struct {
	target Target
	opts   ServerOptions

	// dispatchMu serializes all target access: the data-plane structures
	// are not concurrent-safe, matching a single switch driver thread.
	// Per-server, so two Servers in one process do not contend.
	dispatchMu sync.Mutex
	dedup      dedupCache

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
	draining bool
}

// NewServer wraps a target with default options.
func NewServer(target Target) *Server {
	return NewServerOptions(target, ServerOptions{})
}

// NewServerOptions wraps a target with explicit robustness options.
func NewServerOptions(target Target, opts ServerOptions) *Server {
	opts = opts.withDefaults()
	return &Server{
		target: target,
		opts:   opts,
		conns:  make(map[net.Conn]struct{}),
		dedup:  newDedupCache(opts.DedupWindow, opts.MaxClients),
	}
}

// Listen binds the address and serves until Close. It returns the bound
// address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.Serve(ln)
	return ln.Addr().String(), nil
}

// Serve accepts connections from an existing listener until Close. It
// lets callers interpose their own listener (e.g. faultnet wrappers).
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.opts.MaxConns > 0 && len(s.conns) >= s.opts.MaxConns {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var out []byte // response encode buffer, reused across frames
	for {
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		body, err := readFrame(r)
		if err != nil {
			return
		}
		var req Request
		resp := Response{OK: true}
		// Hand-rolled single-pass codec on both sides of the dispatch:
		// reflection-driven JSON is the dominant per-op cost on large
		// batch frames.
		if err := req.UnmarshalJSON(body); err != nil {
			resp = Response{Error: "bad request: " + err.Error()}
		} else {
			resp = s.dispatch(&req)
			resp.ID = req.ID
		}
		out = resp.appendJSON(out[:0])
		if err := writeFrame(w, out); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		s.mu.Lock()
		stop := s.draining || s.closed
		s.mu.Unlock()
		if stop {
			return
		}
	}
}

// mutating reports whether an RPC changes switch state. Only these go
// through the dedup window: a replayed read just re-executes.
func mutating(t MsgType) bool {
	switch t {
	case MsgInstallPhysical, MsgAllocate, MsgAllocateAt, MsgDeallocate, MsgBatch:
		return true
	}
	return false
}

func (s *Server) dispatch(req *Request) Response {
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	dedupable := mutating(req.Type) && req.Client != 0 && req.ID != 0
	if dedupable {
		if resp, ok := s.dedup.lookup(req.Client, req.ID); ok {
			return resp
		}
	}
	resp := s.execute(req)
	// Cache everything except transient failures (the target did not
	// execute those, so the retry must really re-run).
	if dedupable && !resp.Transient {
		s.dedup.store(req.Client, req.ID, resp)
	}
	return resp
}

func (s *Server) execute(req *Request) Response {
	switch req.Type {
	case MsgPing:
		return Response{OK: true}
	case MsgInstallPhysical:
		t, err := nf.ParseType(req.NFType)
		if err != nil {
			return errResp(err)
		}
		if err := s.target.InstallPhysical(req.Stage, t, req.Capacity); err != nil {
			return errResp(err)
		}
		return Response{OK: true}
	case MsgAllocate:
		if req.SFC == nil {
			return errResp(errors.New("allocate: missing sfc"))
		}
		placements, passes, err := s.target.Allocate(req.SFC)
		if err != nil {
			return errResp(err)
		}
		return Response{OK: true, Placements: placements, Passes: passes}
	case MsgAllocateAt:
		if req.SFC == nil {
			return errResp(errors.New("allocate_at: missing sfc"))
		}
		passes, err := s.target.AllocateAt(req.SFC, req.Placements)
		if err != nil {
			return errResp(err)
		}
		return Response{OK: true, Placements: req.Placements, Passes: passes}
	case MsgDeallocate:
		if err := s.target.Deallocate(req.Tenant); err != nil {
			return errResp(err)
		}
		return Response{OK: true}
	case MsgLayout:
		return Response{OK: true, Layout: s.target.Layout()}
	case MsgStats:
		st := s.target.Stats()
		return Response{OK: true, Stats: &st}
	case MsgDumpState:
		dumper, ok := s.target.(StateDumper)
		if !ok {
			return errResp(errors.New("dump_state: target does not support state read-back"))
		}
		st, err := dumper.DumpState()
		if err != nil {
			return errResp(err)
		}
		return Response{OK: true, State: st}
	case MsgInject:
		res, err := s.target.Inject(req.Wire, req.NowNs)
		if err != nil {
			return errResp(err)
		}
		return Response{OK: true, Inject: &res}
	case MsgBatch:
		return s.executeBatch(req)
	}
	return errResp(fmt.Errorf("unknown message type %q", req.Type))
}

// executeBatch runs an ordered list of mutating sub-ops all-or-nothing:
// each applied op records an undo closure, and the first failure unwinds
// them in reverse so the switch is left exactly as before the batch. It
// runs under dispatch's single lock acquisition, so the whole batch is one
// atomic step in the target's serialized history. The response is cached
// in the dedup window as a unit, making a retried batch a no-op replay.
//
// The failure response is Transient (retry-safe) only when the failing
// sub-op reported ErrUnavailable AND the rollback fully succeeded — a
// half-unwound switch must never invite a blind retry.
func (s *Server) executeBatch(req *Request) Response {
	if len(req.Ops) == 0 {
		return errResp(errors.New("batch: no sub-ops"))
	}
	// Capability pre-check before touching the target: every op type in
	// the batch must be undoable, or the batch is rejected wholesale.
	remover, _ := s.target.(PhysicalRemover)
	snapper, _ := s.target.(TenantSnapshotter)
	for i := range req.Ops {
		switch req.Ops[i].Type {
		case MsgInstallPhysical:
			if remover == nil {
				return errResp(fmt.Errorf("batch: op %d: target cannot roll back install_physical", i))
			}
		case MsgAllocate, MsgAllocateAt:
			// Undone by Deallocate, which every Target has.
		case MsgDeallocate:
			if snapper == nil {
				return errResp(fmt.Errorf("batch: op %d: target cannot roll back deallocate", i))
			}
		default:
			return errResp(fmt.Errorf("batch: op %d: type %q not batchable", i, req.Ops[i].Type))
		}
	}

	batcher, _ := s.target.(BatchAllocator)
	results := make([]BatchResult, 0, len(req.Ops))
	var undo []func() error

	fail := func(i int, err error) Response {
		clean := true
		for k := len(undo) - 1; k >= 0; k-- {
			if uerr := undo[k](); uerr != nil {
				clean = false
			}
		}
		resp := errResp(fmt.Errorf("batch: op %d (%s): %w", i, req.Ops[i].Type, err))
		if !clean {
			resp.Transient = false
			resp.Error += " (rollback incomplete)"
		}
		return resp
	}

	i := 0
	for i < len(req.Ops) {
		// A run of consecutive allocate_at ops goes through the target's
		// batch-apply fast path when available: one pass, one undo scope.
		if batcher != nil && req.Ops[i].Type == MsgAllocateAt {
			j := i
			for j < len(req.Ops) && req.Ops[j].Type == MsgAllocateAt && req.Ops[j].SFC != nil {
				j++
			}
			if j-i > 1 {
				items := make([]BatchAllocItem, j-i)
				for k := i; k < j; k++ {
					items[k-i] = BatchAllocItem{SFC: req.Ops[k].SFC, Placements: req.Ops[k].Placements}
				}
				passes, err := batcher.AllocateBatch(items)
				if err != nil {
					return fail(i, err)
				}
				for k := i; k < j; k++ {
					tenant := req.Ops[k].SFC.Tenant
					undo = append(undo, func() error { return s.target.Deallocate(tenant) })
					// The caller supplied the placements; echoing them back
					// would just bloat the response frame.
					results = append(results, BatchResult{OK: true, Passes: passes[k-i]})
				}
				i = j
				continue
			}
		}
		res, u, err := s.executeOp(&req.Ops[i], snapper)
		if err != nil {
			return fail(i, err)
		}
		results = append(results, res)
		if u != nil {
			undo = append(undo, u)
		}
		i++
	}
	return Response{OK: true, Results: results}
}

// executeOp applies one batch sub-op and returns its result plus the
// closure that undoes it (nil for ops needing no undo).
func (s *Server) executeOp(op *BatchOp, snapper TenantSnapshotter) (BatchResult, func() error, error) {
	switch op.Type {
	case MsgInstallPhysical:
		t, err := nf.ParseType(op.NFType)
		if err != nil {
			return BatchResult{}, nil, err
		}
		if err := s.target.InstallPhysical(op.Stage, t, op.Capacity); err != nil {
			return BatchResult{}, nil, err
		}
		stage := op.Stage
		remover := s.target.(PhysicalRemover) // pre-checked in executeBatch
		return BatchResult{OK: true}, func() error { return remover.RemovePhysical(stage, t) }, nil
	case MsgAllocate:
		if op.SFC == nil {
			return BatchResult{}, nil, errors.New("missing sfc")
		}
		pls, passes, err := s.target.Allocate(op.SFC)
		if err != nil {
			return BatchResult{}, nil, err
		}
		tenant := op.SFC.Tenant
		return BatchResult{OK: true, Placements: pls, Passes: passes},
			func() error { return s.target.Deallocate(tenant) }, nil
	case MsgAllocateAt:
		if op.SFC == nil {
			return BatchResult{}, nil, errors.New("missing sfc")
		}
		passes, err := s.target.AllocateAt(op.SFC, op.Placements)
		if err != nil {
			return BatchResult{}, nil, err
		}
		tenant := op.SFC.Tenant
		return BatchResult{OK: true, Passes: passes},
			func() error { return s.target.Deallocate(tenant) }, nil
	case MsgDeallocate:
		// Snapshot before removing so the undo can restore the tenant at
		// its exact placements.
		restore, err := snapper.TenantSnapshot(op.Tenant)
		if err != nil {
			return BatchResult{}, nil, err
		}
		if err := s.target.Deallocate(op.Tenant); err != nil {
			return BatchResult{}, nil, err
		}
		return BatchResult{OK: true}, restore, nil
	}
	return BatchResult{}, nil, fmt.Errorf("type %q not batchable", op.Type)
}

func errResp(err error) Response {
	return Response{Error: err.Error(), Transient: errors.Is(err, ErrUnavailable)}
}

// Shutdown gracefully drains the server: the listener stops accepting,
// idle connections are unblocked and closed, and connections that are
// mid-request finish executing and deliver their response before closing.
// If the drain exceeds the timeout, remaining connections are force-closed.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	s.draining = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Unblock connections waiting in readFrame: their read fails
	// immediately and the serve loop exits. A connection mid-dispatch is
	// unaffected — the response write uses the (unset) write deadline.
	for _, c := range conns {
		c.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		return nil
	case <-time.After(timeout):
		return s.Close()
	}
}

// Close stops the listener and all connections immediately.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// dedupCache remembers recent mutating responses per client so a retried
// request (same client, same ID — e.g. reissued after a lost response) is
// answered from cache instead of re-executed. Bounded both per client
// (ring of recent IDs) and across clients (oldest identity evicted).
type dedupCache struct {
	window     int
	maxClients int
	clients    map[uint64]*clientWindow
	order      []uint64 // client insertion order for eviction
}

type clientWindow struct {
	resps map[uint64]Response
	ring  []uint64
	next  int
}

func newDedupCache(window, maxClients int) dedupCache {
	return dedupCache{
		window:     window,
		maxClients: maxClients,
		clients:    make(map[uint64]*clientWindow),
	}
}

// lookup is called under dispatchMu.
func (d *dedupCache) lookup(client, id uint64) (Response, bool) {
	cw := d.clients[client]
	if cw == nil {
		return Response{}, false
	}
	resp, ok := cw.resps[id]
	return resp, ok
}

// store is called under dispatchMu.
func (d *dedupCache) store(client, id uint64, resp Response) {
	cw := d.clients[client]
	if cw == nil {
		if len(d.clients) >= d.maxClients {
			evict := d.order[0]
			d.order = d.order[1:]
			delete(d.clients, evict)
		}
		cw = &clientWindow{resps: make(map[uint64]Response), ring: make([]uint64, d.window)}
		d.clients[client] = cw
		d.order = append(d.order, client)
	}
	if old := cw.ring[cw.next]; old != 0 {
		delete(cw.resps, old)
	}
	cw.ring[cw.next] = id
	cw.next = (cw.next + 1) % len(cw.ring)
	cw.resps[id] = resp
}
