package p4rt_test

// Fault-injection integration suite: drives provision→churn→update
// through the hardened p4rt client against a switch daemon whose
// transport (or target) injects deterministic, seed-driven faults, and
// asserts the control plane converges to a consistent switch state —
// every tenant is either fully installed (and later removable) or left
// no trace. See internal/faultnet for the fault model.

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"sfp/internal/faultnet"
	"sfp/internal/nf"
	"sfp/internal/p4rt"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

// chainSFC is a two-NF (firewall→router) tenant chain.
func chainSFC(tenant uint32) *vswitch.SFC {
	return &vswitch.SFC{
		Tenant:        tenant,
		BandwidthGbps: 10,
		NFs: []*nf.Config{
			{Type: nf.Firewall, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
				Action:  "permit",
			}}},
			{Type: nf.Router, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Prefix(0, 0)},
				Action:  "fwd", Params: []uint64{7},
			}}},
		},
	}
}

// chainPlacements is the single-pass placement for chainSFC.
func chainPlacements() []vswitch.Placement {
	return []vswitch.Placement{
		{NFIndex: 0, Type: nf.Firewall, Stage: 0, Pass: 0},
		{NFIndex: 1, Type: nf.Router, Stage: 1, Pass: 0},
	}
}

// tallyTarget counts executed mutating RPCs (they run under the server's
// dispatch lock, but Stats/Layout readers race, so guard with a mutex).
type tallyTarget struct {
	p4rt.Target
	mu       sync.Mutex
	allocAts int
}

func (c *tallyTarget) AllocateAt(sfc *p4rt.SFCSpec, pls []p4rt.PlacementSpec) (int, error) {
	c.mu.Lock()
	c.allocAts++
	c.mu.Unlock()
	return c.Target.AllocateAt(sfc, pls)
}

func (c *tallyTarget) AllocAts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allocAts
}

// startFaultySwitch serves target through a fault-injecting listener.
func startFaultySwitch(t *testing.T, target p4rt.Target, sched *faultnet.Schedule) string {
	t.Helper()
	srv := p4rt.NewServerOptions(target, p4rt.ServerOptions{ReadTimeout: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if sched != nil {
		srv.Serve(faultnet.NewListener(ln, sched))
	} else {
		srv.Serve(ln)
	}
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// hardenedClient dials with fast, deterministic retry settings.
func hardenedClient(t *testing.T, addr string, dialSched *faultnet.Schedule) *p4rt.Client {
	t.Helper()
	opts := p4rt.ClientOptions{
		DialTimeout: time.Second,
		CallTimeout: 150 * time.Millisecond,
		MaxAttempts: 6,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        1,
	}
	if dialSched != nil {
		opts.Dialer = faultnet.Dialer(dialSched, time.Second)
	}
	c, err := p4rt.DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestRetriedAllocateAtExactlyOnce is the acceptance criterion for the
// dedup window: the switch executes the install, the connection dies
// before the response arrives, the client retries — and the tenant is
// installed exactly once.
func TestRetriedAllocateAtExactlyOnce(t *testing.T) {
	// Response writes are one buffered flush each: write 0 and 1 answer
	// the two InstallPhysical calls, write 2 answers the AllocateAt.
	// Truncating it loses the response after the target executed.
	sched := faultnet.NewSchedule(faultnet.Fault{
		Conn: 0, Op: faultnet.OpWrite, Index: 2, Kind: faultnet.Truncate, Bytes: 3,
	})
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	tally := &tallyTarget{Target: &p4rt.VSwitchTarget{V: v}}
	addr := startFaultySwitch(t, tally, sched)
	c := hardenedClient(t, addr, nil)

	if err := c.InstallPhysical(0, nf.Firewall, 200); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallPhysical(1, nf.Router, 200); err != nil {
		t.Fatal(err)
	}
	passes, err := c.AllocateAt(chainSFC(1), chainPlacements())
	if err != nil {
		t.Fatalf("retried AllocateAt failed: %v", err)
	}
	if passes != 1 {
		t.Errorf("passes = %d, want 1", passes)
	}
	if sched.Fired() != 1 {
		t.Fatalf("fault did not fire (fired=%d); test exercised nothing", sched.Fired())
	}
	// Exactly one execution despite the retry: the replay was answered
	// from the dedup window.
	if got := tally.AllocAts(); got != 1 {
		t.Errorf("target executed AllocateAt %d times, want exactly 1", got)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenants != 1 || st.EntriesUsed != 2 {
		t.Errorf("stats = %+v, want 1 tenant / 2 entries (single install)", st)
	}
}

// faultCase is one deterministic schedule for the convergence sweep.
type faultCase struct {
	name   string
	server *faultnet.Schedule // injected on accepted conns
	client *faultnet.Schedule // injected on dialed conns
	flaky  []int              // fallible target calls to fail transiently
}

// TestFaultScheduleConvergence drives the same provision→churn→update
// sequence through every fault schedule and asserts the switch converges
// to a consistent state: expected tenants present with exactly their
// entries, and a full teardown reaches zero — no orphaned rules.
func TestFaultScheduleConvergence(t *testing.T) {
	stall := 400 * time.Millisecond
	cases := []faultCase{
		{name: "clean"},
		{name: "reset-first-response", server: faultnet.NewSchedule(
			faultnet.Fault{Conn: 0, Op: faultnet.OpWrite, Index: 0, Kind: faultnet.Reset})},
		{name: "reset-mid-request", server: faultnet.NewSchedule(
			faultnet.Fault{Conn: 0, Op: faultnet.OpRead, Index: 3, Kind: faultnet.Reset})},
		{name: "truncate-alloc-response", server: faultnet.NewSchedule(
			faultnet.Fault{Conn: 0, Op: faultnet.OpWrite, Index: 3, Kind: faultnet.Truncate, Bytes: 2})},
		{name: "stall-request-read", server: faultnet.NewSchedule(
			faultnet.Fault{Conn: 0, Op: faultnet.OpRead, Index: 4, Kind: faultnet.Stall, Delay: stall})},
		{name: "double-reset-across-conns", server: faultnet.NewSchedule(
			faultnet.Fault{Conn: 0, Op: faultnet.OpWrite, Index: 2, Kind: faultnet.Reset},
			faultnet.Fault{Conn: 1, Op: faultnet.OpWrite, Index: 0, Kind: faultnet.Reset})},
		{name: "client-truncated-request", client: faultnet.NewSchedule(
			faultnet.Fault{Conn: 0, Op: faultnet.OpWrite, Index: 4, Kind: faultnet.Truncate, Bytes: 1})},
		{name: "client-read-stall", client: faultnet.NewSchedule(
			faultnet.Fault{Conn: 0, Op: faultnet.OpRead, Index: 2, Kind: faultnet.Stall, Delay: stall})},
		{name: "transient-target-errors", flaky: []int{1, 3}},
	}
	for seed := int64(1); seed <= 4; seed++ {
		cases = append(cases, faultCase{
			name:   "random-" + string(rune('0'+seed)),
			server: faultnet.Random(seed, 3, 4, 12, stall),
		})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
			var target p4rt.Target = &p4rt.VSwitchTarget{V: v}
			if len(tc.flaky) > 0 {
				target = faultnet.NewFlakyTarget(target, tc.flaky...)
			}
			addr := startFaultySwitch(t, target, tc.server)
			c := hardenedClient(t, addr, tc.client)

			// Provision: physical layout, then three tenants.
			if err := c.InstallPhysical(0, nf.Firewall, 200); err != nil {
				t.Fatalf("install firewall: %v", err)
			}
			if err := c.InstallPhysical(1, nf.Router, 200); err != nil {
				t.Fatalf("install router: %v", err)
			}
			expected := map[uint32]bool{}
			install := func(tenant uint32) {
				if _, err := c.AllocateAt(chainSFC(tenant), chainPlacements()); err != nil {
					// Roll back: whatever the switch may hold for this
					// tenant must go; "unknown tenant" means nothing did.
					if derr := c.Deallocate(tenant); derr != nil &&
						!strings.Contains(derr.Error(), "unknown tenant") {
						t.Fatalf("rollback of tenant %d failed: %v (install error: %v)", tenant, derr, err)
					}
					return
				}
				expected[tenant] = true
			}
			for tenant := uint32(1); tenant <= 3; tenant++ {
				install(tenant)
			}
			// Churn: one departure…
			if expected[2] {
				if err := c.Deallocate(2); err != nil {
					t.Fatalf("departure of tenant 2: %v", err)
				}
				delete(expected, 2)
			}
			// …and a runtime-update arrival.
			install(4)

			// Converge check 1: the switch holds exactly the expected
			// tenants, each with exactly its two rules.
			st, err := c.Stats()
			if err != nil {
				t.Fatalf("stats: %v", err)
			}
			if st.Tenants != len(expected) {
				t.Errorf("switch tenants = %d, controller expects %d", st.Tenants, len(expected))
			}
			if want := 2 * len(expected); st.EntriesUsed != want {
				t.Errorf("entries used = %d, want %d (2 per tenant, no orphans)", st.EntriesUsed, want)
			}
			layout, err := c.Layout()
			if err != nil {
				t.Fatalf("layout: %v", err)
			}
			if len(layout[0]) != 1 || layout[0][0] != "firewall" || len(layout[1]) != 1 || layout[1][0] != "router" {
				t.Errorf("layout = %v, want [firewall] [router]", layout[:2])
			}

			// Converge check 2: full teardown reaches zero — every rule
			// on the switch was owned by a tenant the controller knows.
			for tenant := range expected {
				if err := c.Deallocate(tenant); err != nil {
					t.Errorf("teardown of tenant %d: %v", tenant, err)
				}
			}
			st, err = c.Stats()
			if err != nil {
				t.Fatalf("final stats: %v", err)
			}
			if st.Tenants != 0 || st.EntriesUsed != 0 {
				t.Errorf("after teardown: %d tenants, %d entries — orphaned rules", st.Tenants, st.EntriesUsed)
			}
		})
	}
}

// TestTransientTargetErrorRetried pins down the ErrUnavailable path in
// isolation: the target refuses the first fallible call, the server
// marks the response transient, and the client's retry succeeds without
// surfacing an error.
func TestTransientTargetErrorRetried(t *testing.T) {
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	flaky := faultnet.NewFlakyTarget(&p4rt.VSwitchTarget{V: v}, 0)
	addr := startFaultySwitch(t, flaky, nil)
	c := hardenedClient(t, addr, nil)
	if err := c.InstallPhysical(0, nf.Firewall, 100); err != nil {
		t.Fatalf("transient error not retried: %v", err)
	}
	if flaky.Calls() != 2 {
		t.Errorf("target calls = %d, want 2 (one refused, one executed)", flaky.Calls())
	}
	// A non-transient application error is NOT retried.
	err := c.InstallPhysical(0, nf.Firewall, 100) // duplicate install
	if err == nil {
		t.Fatal("duplicate install accepted")
	}
	if !errors.Is(err, p4rt.ErrUnavailable) && flaky.Calls() != 3 {
		t.Errorf("hard error retried: %d calls, want 3", flaky.Calls())
	}
}
