package p4rt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"sfp/internal/nf"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

// --- readFrame / writeFrame edge cases -------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	for _, body := range [][]byte{[]byte(`{"type":"ping"}`), {}, bytes.Repeat([]byte("x"), 70000)} {
		buf.Reset()
		if err := writeFrame(&buf, body); err != nil {
			t.Fatal(err)
		}
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("round trip lost data: %d bytes in, %d out", len(body), len(got))
		}
	}
}

func TestReadFrameTruncatedHeader(t *testing.T) {
	_, err := readFrame(bytes.NewReader([]byte{0, 0}))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want unexpected EOF", err)
	}
	_, err = readFrame(bytes.NewReader(nil))
	if !errors.Is(err, io.EOF) {
		t.Errorf("empty stream err = %v, want EOF", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 10)
	buf.Write(hdr[:])
	buf.WriteString("only4")
	if _, err := readFrame(&buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want unexpected EOF", err)
	}
}

func TestReadFrameOversizeHeader(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	buf.Write(hdr[:])
	_, err := readFrame(&buf)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("err = %v, want frame-limit error", err)
	}
	// The oversize body was never allocated or consumed.
	if buf.Len() != 0 {
		t.Errorf("reader consumed %d stray bytes", buf.Len())
	}
}

func TestReadFrameZeroLength(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	body, err := readFrame(&buf)
	if err != nil || len(body) != 0 {
		t.Errorf("zero-length frame = (%v, %v), want empty ok", body, err)
	}
}

func TestWriteFrameOversizeBody(t *testing.T) {
	err := writeFrame(io.Discard, make([]byte, maxFrame+1))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("err = %v, want frame-limit error", err)
	}
}

// --- client hardening regressions ------------------------------------------

// scriptedServer accepts connections and hands each to the next handler.
type scriptedServer struct {
	ln       net.Listener
	handlers []func(net.Conn)
	wg       sync.WaitGroup
}

func newScriptedServer(t *testing.T, handlers ...func(net.Conn)) *scriptedServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptedServer{ln: ln, handlers: handlers}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for _, h := range handlers {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func(h func(net.Conn)) {
				defer s.wg.Done()
				h(conn)
			}(h)
		}
	}()
	t.Cleanup(func() { ln.Close(); s.wg.Wait() })
	return s
}

// readRequest decodes one framed request from the conn.
func readRequest(t *testing.T, r *bufio.Reader) *Request {
	t.Helper()
	body, err := readFrame(r)
	if err != nil {
		t.Errorf("scripted server read: %v", err)
		return &Request{}
	}
	var req Request
	json.Unmarshal(body, &req)
	return &req
}

// writeResponse frames one response onto the conn.
func writeResponse(conn net.Conn, resp Response) {
	body, _ := marshal(resp)
	var buf bytes.Buffer
	writeFrame(&buf, body)
	conn.Write(buf.Bytes())
}

// TestClientAbandonsConnAfterPartialResponse is the stale-stream
// regression: a response that times out mid-frame must poison the
// connection. A client that reused it would read the leftover bytes of
// the old response as the answer to its next, different call.
func TestClientAbandonsConnAfterPartialResponse(t *testing.T) {
	release := make(chan struct{})
	srv := newScriptedServer(t,
		func(conn net.Conn) {
			// First conn: read the request, send only a partial frame
			// (header promises 100 bytes, 10 arrive), then hold the conn
			// open until the test ends.
			r := bufio.NewReader(conn)
			readRequest(t, r)
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], 100)
			conn.Write(hdr[:])
			conn.Write([]byte("0123456789"))
			<-release
			conn.Close()
		},
		func(conn net.Conn) {
			// Second conn: behave. Any request arriving here proves the
			// client abandoned the first conn.
			defer conn.Close()
			r := bufio.NewReader(conn)
			req := readRequest(t, r)
			writeResponse(conn, Response{OK: true, ID: req.ID})
		},
	)
	defer close(release)

	c, err := DialOptions(srv.ln.Addr().String(), ClientOptions{
		CallTimeout: 100 * time.Millisecond,
		MaxAttempts: 1, // isolate the broken-state behavior from retry
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err == nil {
		t.Fatal("ping with partial response succeeded")
	}
	// The second call must reconnect, not read the stale bytes.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after poisoned conn: %v", err)
	}
}

// TestClientDetectsDesync checks the request-ID echo: a response carrying
// the wrong ID (a stale or reordered frame) is rejected instead of being
// delivered as this call's result.
func TestClientDetectsDesync(t *testing.T) {
	srv := newScriptedServer(t, func(conn net.Conn) {
		defer conn.Close()
		r := bufio.NewReader(conn)
		req := readRequest(t, r)
		writeResponse(conn, Response{OK: true, ID: req.ID + 7})
	})
	c, err := DialOptions(srv.ln.Addr().String(), ClientOptions{
		CallTimeout: time.Second,
		MaxAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Ping()
	if err == nil || !strings.Contains(err.Error(), "desynchronized") {
		t.Fatalf("err = %v, want desync detection", err)
	}
}

// TestClientRetriesAcrossReconnect: a server that kills the first
// connection before responding must not fail a retryable RPC.
func TestClientRetriesAcrossReconnect(t *testing.T) {
	srv := newScriptedServer(t,
		func(conn net.Conn) {
			r := bufio.NewReader(conn)
			readRequest(t, r)
			conn.Close() // reset before response
		},
		func(conn net.Conn) {
			defer conn.Close()
			r := bufio.NewReader(conn)
			req := readRequest(t, r)
			writeResponse(conn, Response{OK: true, ID: req.ID})
		},
	)
	c, err := DialOptions(srv.ln.Addr().String(), ClientOptions{
		CallTimeout: time.Second,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("retryable ping failed across reconnect: %v", err)
	}
}

// --- server robustness ------------------------------------------------------

// TestPerServerDispatchLock: two servers in one process must not
// serialize against each other (the old package-level dispatchMu did).
func TestPerServerDispatchLock(t *testing.T) {
	s1 := NewServer(&VSwitchTarget{V: vswitch.New(pipeline.New(pipeline.DefaultConfig()))})
	s2 := NewServer(&VSwitchTarget{V: vswitch.New(pipeline.New(pipeline.DefaultConfig()))})
	s1.dispatchMu.Lock()
	defer s1.dispatchMu.Unlock()
	done := make(chan Response, 1)
	go func() { done <- s2.dispatch(&Request{Type: MsgPing}) }()
	select {
	case resp := <-done:
		if !resp.OK {
			t.Errorf("ping on s2 failed: %v", resp.Error)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("s2.dispatch blocked on s1's dispatch lock")
	}
}

func TestServerReadTimeoutDropsIdleConn(t *testing.T) {
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	srv := NewServerOptions(&VSwitchTarget{V: v}, ServerOptions{ReadTimeout: 50 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing: the server must hang up on its own.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil || !errors.Is(err, io.EOF) {
		t.Errorf("idle conn read = %v, want server-side EOF", err)
	}
	// An active client is unaffected: each frame refreshes the deadline.
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
		time.Sleep(30 * time.Millisecond)
	}
}

func TestServerMaxConns(t *testing.T) {
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	srv := NewServerOptions(&VSwitchTarget{V: v}, ServerOptions{MaxConns: 1})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c1, err := DialOptions(addr, ClientOptions{MaxAttempts: 1, CallTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	// A second connection is shed immediately.
	c2, err := DialOptions(addr, ClientOptions{MaxAttempts: 1, CallTimeout: 300 * time.Millisecond})
	if err == nil {
		defer c2.Close()
		if err := c2.Ping(); err == nil {
			t.Error("second conn served beyond MaxConns=1")
		}
	}
	// The first client still works.
	if err := c1.Ping(); err != nil {
		t.Errorf("first conn broken by shedding: %v", err)
	}
}

// slowTarget delays mutating calls so Shutdown has something in flight.
type slowTarget struct {
	Target
	delay time.Duration
}

func (s *slowTarget) InstallPhysical(stage int, t nf.Type, capacity int) error {
	time.Sleep(s.delay)
	return s.Target.InstallPhysical(stage, t, capacity)
}

func TestShutdownDrainsInFlight(t *testing.T) {
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	srv := NewServer(&slowTarget{Target: &VSwitchTarget{V: v}, delay: 200 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialOptions(addr, ClientOptions{MaxAttempts: 1, CallTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	result := make(chan error, 1)
	go func() { result <- c.InstallPhysical(0, nf.Firewall, 100) }()
	time.Sleep(50 * time.Millisecond) // let the request reach the target
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The in-flight install completed and its response was delivered.
	if err := <-result; err != nil {
		t.Fatalf("in-flight request dropped by shutdown: %v", err)
	}
	if got := v.Layout()[0]; len(got) != 1 {
		t.Errorf("install did not land: layout %v", got)
	}
	// New connections are refused after drain.
	if _, err := DialOptions(addr, ClientOptions{MaxAttempts: 1, CallTimeout: 200 * time.Millisecond}); err == nil {
		t.Error("dial succeeded after shutdown")
	}
}

// TestConcurrentClientsStress hammers one server with many clients
// running mixed read and mutating RPCs concurrently (run under -race:
// it exercises the dispatch lock, the dedup window, and the connection
// bookkeeping simultaneously).
func TestConcurrentClientsStress(t *testing.T) {
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	srv := NewServerOptions(&VSwitchTarget{V: v}, ServerOptions{ReadTimeout: 5 * time.Second, MaxConns: 64})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	boot, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer boot.Close()
	if err := boot.InstallPhysical(0, nf.Firewall, 5000); err != nil {
		t.Fatal(err)
	}

	const workers, rounds = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				tenant := uint32(1000 + w*rounds + r)
				sfc := &vswitch.SFC{Tenant: tenant, BandwidthGbps: 0.1, NFs: []*nf.Config{
					{Type: nf.Firewall, Rules: []nf.ConfigRule{{
						Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
						Action:  "permit",
					}}},
				}}
				if _, _, err := c.Allocate(sfc); err != nil {
					errs <- err
					return
				}
				if err := c.Ping(); err != nil {
					errs <- err
					return
				}
				if _, err := c.Stats(); err != nil {
					errs <- err
					return
				}
				if _, err := c.Layout(); err != nil {
					errs <- err
					return
				}
				if err := c.Deallocate(tenant); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, err := boot.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenants != 0 || st.EntriesUsed != 0 {
		t.Errorf("after stress: %d tenants, %d entries, want 0/0", st.Tenants, st.EntriesUsed)
	}
}

// --- dedup window -----------------------------------------------------------

// countingTarget counts executed mutating calls per RPC.
type countingTarget struct {
	Target
	mu       sync.Mutex
	installs int
	allocAts int
	deallocs int
}

func (c *countingTarget) InstallPhysical(stage int, t nf.Type, capacity int) error {
	c.mu.Lock()
	c.installs++
	c.mu.Unlock()
	return c.Target.InstallPhysical(stage, t, capacity)
}

func (c *countingTarget) AllocateAt(sfc *SFCSpec, pls []PlacementSpec) (int, error) {
	c.mu.Lock()
	c.allocAts++
	c.mu.Unlock()
	return c.Target.AllocateAt(sfc, pls)
}

func (c *countingTarget) Deallocate(tenant uint32) error {
	c.mu.Lock()
	c.deallocs++
	c.mu.Unlock()
	return c.Target.Deallocate(tenant)
}

func (c *countingTarget) counts() (int, int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.installs, c.allocAts, c.deallocs
}

func TestDedupWindowReplaySuppressed(t *testing.T) {
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	ct := &countingTarget{Target: &VSwitchTarget{V: v}}
	srv := NewServer(ct)
	req := &Request{Type: MsgInstallPhysical, Stage: 0, NFType: "firewall", Capacity: 100, Client: 42, ID: 1}
	first := srv.dispatch(req)
	if !first.OK {
		t.Fatal(first.Error)
	}
	replay := srv.dispatch(req)
	if !replay.OK {
		t.Fatalf("replayed install re-executed and failed: %v", replay.Error)
	}
	if installs, _, _ := ct.counts(); installs != 1 {
		t.Errorf("target executed %d times, want 1", installs)
	}
	// A different request ID really executes (and errors: duplicate).
	req2 := &Request{Type: MsgInstallPhysical, Stage: 0, NFType: "firewall", Capacity: 100, Client: 42, ID: 2}
	if resp := srv.dispatch(req2); resp.OK {
		t.Error("fresh duplicate install unexpectedly succeeded")
	}
	// Legacy requests (no client/ID) bypass the window entirely.
	legacy := &Request{Type: MsgDeallocate, Tenant: 7}
	srv.dispatch(legacy)
	srv.dispatch(legacy)
	if _, _, deallocs := ct.counts(); deallocs != 2 {
		t.Errorf("legacy requests deduped: %d executions, want 2", deallocs)
	}
}

func TestDedupWindowEviction(t *testing.T) {
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	ct := &countingTarget{Target: &VSwitchTarget{V: v}}
	srv := NewServerOptions(ct, ServerOptions{DedupWindow: 2})
	// Three distinct mutating requests from one client overflow a
	// window of two; the first becomes replayable-as-fresh again.
	for id := uint64(1); id <= 3; id++ {
		srv.dispatch(&Request{Type: MsgDeallocate, Tenant: uint32(id), Client: 9, ID: id})
	}
	srv.dispatch(&Request{Type: MsgDeallocate, Tenant: 1, Client: 9, ID: 1}) // evicted → re-executes
	srv.dispatch(&Request{Type: MsgDeallocate, Tenant: 3, Client: 9, ID: 3}) // cached → suppressed
	if _, _, deallocs := ct.counts(); deallocs != 4 {
		t.Errorf("deallocate executions = %d, want 4 (3 fresh + 1 evicted replay)", deallocs)
	}
}
