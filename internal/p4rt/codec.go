package p4rt

// Hand-rolled wire codecs for the protocol envelope and the hot payload
// structs. Provisioning frames are JSON-bound on both ends: with
// reflection-driven encoding/json the scanner pre-pass, field-name
// matching over many small match/rule objects, and the compaction pass
// over nested custom marshalers dominate the controller↔switch CPU
// budget. These codecs keep the frames JSON — readable, debuggable with
// standard tooling, and decodable by json.Unmarshal — but encode and
// decode Request/Response (and everything nested in them) without
// reflection, in one pass. The bulky SFC subtree and placements use
// compact positional arrays:
//
//	SFCSpec       [tenant, bandwidthGbps, [NFSpec...]]
//	NFSpec        ["type", [RuleSpec...]]
//	RuleSpec      [priority, [MatchSpec...], "action", [params...]]
//	MatchSpec     [value, mask, prefixLen, lo, hi]
//	PlacementSpec [nfIndex, "type", stage, pass]
//
// Everything else stays keyed objects with the same field names as the
// struct tags, zero values omitted, so the envelope remains
// self-describing and extensible.

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// --- encoding ---------------------------------------------------------------

// appendJSONString quotes s, falling back to the stdlib for strings that
// need escaping (type names and actions are plain identifiers, so the
// fast path is the norm).
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x7f {
			q, _ := json.Marshal(s)
			return append(b, q...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// fieldSep writes the separator before a field: '{' for the first one,
// ',' after.
func fieldSep(b []byte, first *bool) []byte {
	if *first {
		*first = false
		return append(b, '{')
	}
	return append(b, ',')
}

func appendKey(b []byte, first *bool, key string) []byte {
	b = fieldSep(b, first)
	b = append(b, '"')
	b = append(b, key...)
	return append(b, '"', ':')
}

func appendMatch(b []byte, m *MatchSpec) []byte {
	b = append(b, '[')
	b = strconv.AppendUint(b, m.Value, 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, m.Mask, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(m.PrefixLen), 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, m.Lo, 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, m.Hi, 10)
	return append(b, ']')
}

func appendRule(b []byte, r *RuleSpec) []byte {
	b = append(b, '[')
	b = strconv.AppendInt(b, int64(r.Priority), 10)
	b = append(b, ',', '[')
	for i := range r.Matches {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendMatch(b, &r.Matches[i])
	}
	b = append(b, ']', ',')
	b = appendJSONString(b, r.Action)
	b = append(b, ',', '[')
	for i, p := range r.Params {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendUint(b, p, 10)
	}
	return append(b, ']', ']')
}

func appendSFCSpec(b []byte, s *SFCSpec) []byte {
	b = append(b, '[')
	b = strconv.AppendUint(b, uint64(s.Tenant), 10)
	b = append(b, ',')
	b = strconv.AppendFloat(b, s.BandwidthGbps, 'g', -1, 64)
	b = append(b, ',', '[')
	for i := range s.NFs {
		if i > 0 {
			b = append(b, ',')
		}
		n := &s.NFs[i]
		b = append(b, '[')
		b = appendJSONString(b, n.Type)
		b = append(b, ',', '[')
		for j := range n.Rules {
			if j > 0 {
				b = append(b, ',')
			}
			b = appendRule(b, &n.Rules[j])
		}
		b = append(b, ']', ']')
	}
	return append(b, ']', ']')
}

func appendPlacement(b []byte, p *PlacementSpec) []byte {
	b = append(b, '[')
	b = strconv.AppendInt(b, int64(p.NFIndex), 10)
	b = append(b, ',')
	b = appendJSONString(b, p.Type)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(p.Stage), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(p.Pass), 10)
	return append(b, ']')
}

func appendPlacements(b []byte, pls []PlacementSpec) []byte {
	b = append(b, '[')
	for i := range pls {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendPlacement(b, &pls[i])
	}
	return append(b, ']')
}

func appendBatchOp(b []byte, op *BatchOp) []byte {
	first := true
	b = appendKey(b, &first, "type")
	b = appendJSONString(b, string(op.Type))
	if op.Stage != 0 {
		b = appendKey(b, &first, "stage")
		b = strconv.AppendInt(b, int64(op.Stage), 10)
	}
	if op.NFType != "" {
		b = appendKey(b, &first, "nf_type")
		b = appendJSONString(b, op.NFType)
	}
	if op.Capacity != 0 {
		b = appendKey(b, &first, "capacity")
		b = strconv.AppendInt(b, int64(op.Capacity), 10)
	}
	if op.SFC != nil {
		b = appendKey(b, &first, "sfc")
		b = appendSFCSpec(b, op.SFC)
	}
	if op.Tenant != 0 {
		b = appendKey(b, &first, "tenant")
		b = strconv.AppendUint(b, uint64(op.Tenant), 10)
	}
	if len(op.Placements) != 0 {
		b = appendKey(b, &first, "placements")
		b = appendPlacements(b, op.Placements)
	}
	return append(b, '}')
}

// appendJSON serializes the request without reflection. It is the wire
// encoder: the client writes its output directly into the frame buffer.
func (r *Request) appendJSON(b []byte) []byte {
	first := true
	b = appendKey(b, &first, "type")
	b = appendJSONString(b, string(r.Type))
	if r.ID != 0 {
		b = appendKey(b, &first, "id")
		b = strconv.AppendUint(b, r.ID, 10)
	}
	if r.Client != 0 {
		b = appendKey(b, &first, "client")
		b = strconv.AppendUint(b, r.Client, 10)
	}
	if r.Stage != 0 {
		b = appendKey(b, &first, "stage")
		b = strconv.AppendInt(b, int64(r.Stage), 10)
	}
	if r.NFType != "" {
		b = appendKey(b, &first, "nf_type")
		b = appendJSONString(b, r.NFType)
	}
	if r.Capacity != 0 {
		b = appendKey(b, &first, "capacity")
		b = strconv.AppendInt(b, int64(r.Capacity), 10)
	}
	if r.SFC != nil {
		b = appendKey(b, &first, "sfc")
		b = appendSFCSpec(b, r.SFC)
	}
	if r.Tenant != 0 {
		b = appendKey(b, &first, "tenant")
		b = strconv.AppendUint(b, uint64(r.Tenant), 10)
	}
	if len(r.Placements) != 0 {
		b = appendKey(b, &first, "placements")
		b = appendPlacements(b, r.Placements)
	}
	if len(r.Wire) != 0 {
		b = appendKey(b, &first, "wire")
		b = append(b, '"')
		b = base64.StdEncoding.AppendEncode(b, r.Wire)
		b = append(b, '"')
	}
	if r.NowNs != 0 {
		b = appendKey(b, &first, "now_ns")
		b = strconv.AppendFloat(b, r.NowNs, 'g', -1, 64)
	}
	if len(r.Ops) != 0 {
		b = appendKey(b, &first, "ops")
		b = append(b, '[')
		for i := range r.Ops {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendBatchOp(b, &r.Ops[i])
		}
		b = append(b, ']')
	}
	if first {
		b = append(b, '{')
	}
	return append(b, '}')
}

func appendBatchResult(b []byte, r *BatchResult) []byte {
	first := true
	b = appendKey(b, &first, "ok")
	b = strconv.AppendBool(b, r.OK)
	if r.Error != "" {
		b = appendKey(b, &first, "error")
		b = appendJSONString(b, r.Error)
	}
	if len(r.Placements) != 0 {
		b = appendKey(b, &first, "placements")
		b = appendPlacements(b, r.Placements)
	}
	if r.Passes != 0 {
		b = appendKey(b, &first, "passes")
		b = strconv.AppendInt(b, int64(r.Passes), 10)
	}
	return append(b, '}')
}

// appendJSON serializes the response without reflection (server wire
// encoder).
func (r *Response) appendJSON(b []byte) []byte {
	first := true
	b = appendKey(b, &first, "ok")
	b = strconv.AppendBool(b, r.OK)
	if r.Error != "" {
		b = appendKey(b, &first, "error")
		b = appendJSONString(b, r.Error)
	}
	if r.ID != 0 {
		b = appendKey(b, &first, "id")
		b = strconv.AppendUint(b, r.ID, 10)
	}
	if r.Transient {
		b = appendKey(b, &first, "transient")
		b = strconv.AppendBool(b, true)
	}
	if len(r.Placements) != 0 {
		b = appendKey(b, &first, "placements")
		b = appendPlacements(b, r.Placements)
	}
	if r.Passes != 0 {
		b = appendKey(b, &first, "passes")
		b = strconv.AppendInt(b, int64(r.Passes), 10)
	}
	if len(r.Layout) != 0 {
		b = appendKey(b, &first, "layout")
		b = append(b, '[')
		for i, stage := range r.Layout {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, '[')
			for j, name := range stage {
				if j > 0 {
					b = append(b, ',')
				}
				b = appendJSONString(b, name)
			}
			b = append(b, ']')
		}
		b = append(b, ']')
	}
	if st := r.Stats; st != nil {
		b = appendKey(b, &first, "stats")
		b = append(b, `{"stages":`...)
		b = strconv.AppendInt(b, int64(st.Stages), 10)
		b = append(b, `,"blocks_used":`...)
		b = strconv.AppendInt(b, int64(st.BlocksUsed), 10)
		b = append(b, `,"entries_used":`...)
		b = strconv.AppendInt(b, int64(st.EntriesUsed), 10)
		b = append(b, `,"bandwidth_gbps":`...)
		b = strconv.AppendFloat(b, st.BandwidthGbps, 'g', -1, 64)
		b = append(b, `,"tenants":`...)
		b = strconv.AppendInt(b, int64(st.Tenants), 10)
		b = append(b, `,"processed":`...)
		b = strconv.AppendUint(b, st.Processed, 10)
		b = append(b, `,"recirculated":`...)
		b = strconv.AppendUint(b, st.Recirculated, 10)
		b = append(b, '}')
	}
	if in := r.Inject; in != nil {
		b = appendKey(b, &first, "inject")
		b = append(b, `{"latency_ns":`...)
		b = strconv.AppendFloat(b, in.LatencyNs, 'g', -1, 64)
		b = append(b, `,"passes":`...)
		b = strconv.AppendInt(b, int64(in.Passes), 10)
		b = append(b, `,"dropped":`...)
		b = strconv.AppendBool(b, in.Dropped)
		b = append(b, `,"egress_port":`...)
		b = strconv.AppendUint(b, uint64(in.EgressPort), 10)
		b = append(b, `,"tables_applied":`...)
		b = strconv.AppendInt(b, int64(in.TablesApplied), 10)
		if len(in.Wire) != 0 {
			b = append(b, `,"wire":"`...)
			b = base64.StdEncoding.AppendEncode(b, in.Wire)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	if len(r.Results) != 0 {
		b = appendKey(b, &first, "results")
		b = append(b, '[')
		for i := range r.Results {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendBatchResult(b, &r.Results[i])
		}
		b = append(b, ']')
	}
	if r.State != nil {
		b = appendKey(b, &first, "state")
		b = appendStateDump(b, r.State)
	}
	return append(b, '}')
}

// appendStateDump encodes a state dump: the envelope stays a keyed object,
// while the bulky entries use the codec's compact positional arrays:
//
//	PhysicalDump [stage, "type", capacity, used]
//	TenantDump   [SFCSpec, [PlacementSpec...], passes]
func appendStateDump(b []byte, d *StateDump) []byte {
	first := true
	if len(d.Physical) != 0 {
		b = appendKey(b, &first, "physical")
		b = append(b, '[')
		for i := range d.Physical {
			if i > 0 {
				b = append(b, ',')
			}
			p := &d.Physical[i]
			b = append(b, '[')
			b = strconv.AppendInt(b, int64(p.Stage), 10)
			b = append(b, ',')
			b = appendJSONString(b, p.Type)
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(p.Capacity), 10)
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(p.Used), 10)
			b = append(b, ']')
		}
		b = append(b, ']')
	}
	if len(d.Tenants) != 0 {
		b = appendKey(b, &first, "tenants")
		b = append(b, '[')
		for i := range d.Tenants {
			if i > 0 {
				b = append(b, ',')
			}
			t := &d.Tenants[i]
			b = append(b, '[')
			b = appendSFCSpec(b, t.SFC)
			b = append(b, ',')
			b = appendPlacements(b, t.Placements)
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(t.Passes), 10)
			b = append(b, ']')
		}
		b = append(b, ']')
	}
	if first {
		b = append(b, '{')
	}
	return append(b, '}')
}

// MarshalJSON keeps Request compatible with encoding/json callers.
func (r *Request) MarshalJSON() ([]byte, error) { return r.appendJSON(nil), nil }

// MarshalJSON keeps Response compatible with encoding/json callers.
func (r *Response) MarshalJSON() ([]byte, error) { return r.appendJSON(nil), nil }

// MarshalJSON implements json.Marshaler with the compact array form.
func (s *SFCSpec) MarshalJSON() ([]byte, error) { return appendSFCSpec(nil, s), nil }

// MarshalJSON implements json.Marshaler with the compact array form.
func (p PlacementSpec) MarshalJSON() ([]byte, error) { return appendPlacement(nil, &p), nil }

// --- decoding ---------------------------------------------------------------

// jscan is a minimal cursor over one JSON value's raw bytes.
type jscan struct {
	b []byte
	i int
	// depth tracks skipValue nesting so hostile deeply-nested input fails
	// cleanly instead of overflowing the goroutine stack.
	depth int
}

func (p *jscan) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *jscan) expect(c byte) error {
	p.ws()
	if p.i >= len(p.b) || p.b[p.i] != c {
		return fmt.Errorf("p4rt: wire: expected %q at offset %d", c, p.i)
	}
	p.i++
	return nil
}

// sep reports whether an array or object continues (','), consuming the
// separator, or ends (the close byte), consuming it.
func (p *jscan) sep(close byte) (more bool, err error) {
	p.ws()
	if p.i >= len(p.b) {
		return false, fmt.Errorf("p4rt: wire: unterminated value")
	}
	switch p.b[p.i] {
	case ',':
		p.i++
		return true, nil
	case close:
		p.i++
		return false, nil
	}
	return false, fmt.Errorf("p4rt: wire: expected ',' or %q at offset %d", close, p.i)
}

// numTok scans one JSON number token.
func (p *jscan) numTok() ([]byte, error) {
	p.ws()
	start := p.i
scan:
	for p.i < len(p.b) {
		switch c := p.b[p.i]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			p.i++
		default:
			break scan
		}
	}
	if p.i == start {
		return nil, fmt.Errorf("p4rt: wire: expected number at offset %d", start)
	}
	return p.b[start:p.i], nil
}

func (p *jscan) uint() (uint64, error) {
	tok, err := p.numTok()
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(string(tok), 10, 64)
}

func (p *jscan) int() (int, error) {
	tok, err := p.numTok()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(string(tok), 10, 64)
	return int(v), err
}

func (p *jscan) float() (float64, error) {
	tok, err := p.numTok()
	if err != nil {
		return 0, err
	}
	return strconv.ParseFloat(string(tok), 64)
}

func (p *jscan) bool() (bool, error) {
	p.ws()
	if bytes.HasPrefix(p.b[p.i:], []byte("true")) {
		p.i += 4
		return true, nil
	}
	if bytes.HasPrefix(p.b[p.i:], []byte("false")) {
		p.i += 5
		return false, nil
	}
	return false, fmt.Errorf("p4rt: wire: expected bool at offset %d", p.i)
}

// null consumes a JSON null if present.
func (p *jscan) null() bool {
	p.ws()
	if bytes.HasPrefix(p.b[p.i:], []byte("null")) {
		p.i += 4
		return true
	}
	return false
}

func (p *jscan) str() (string, error) {
	p.ws()
	if p.i >= len(p.b) || p.b[p.i] != '"' {
		return "", fmt.Errorf("p4rt: wire: expected string at offset %d", p.i)
	}
	// Fast path: no escapes.
	for j := p.i + 1; j < len(p.b); j++ {
		switch p.b[j] {
		case '\\':
			// Escaped string: delegate to the stdlib for the full value.
			var s string
			dec := json.NewDecoder(bytes.NewReader(p.b[p.i:]))
			if err := dec.Decode(&s); err != nil {
				return "", err
			}
			p.i += int(dec.InputOffset())
			return s, nil
		case '"':
			s := string(p.b[p.i+1 : j])
			p.i = j + 1
			// Canonicalize invalid UTF-8 to U+FFFD like encoding/json's
			// unquote does: the encoder sanitizes on output, so keeping
			// raw invalid bytes here would make decode/encode diverge.
			if !utf8.ValidString(s) {
				s = strings.ToValidUTF8(s, "�")
			}
			return s, nil
		}
	}
	return "", fmt.Errorf("p4rt: wire: unterminated string at offset %d", p.i)
}

// maxSkipDepth bounds skipValue's recursion over unknown fields. Known
// payload shapes have small fixed depth; anything deeper is a hostile
// frame (e.g. "[[[[[...") that would otherwise overflow the stack long
// before the 16 MB frame limit stops it.
const maxSkipDepth = 64

// skipValue consumes any JSON value (unknown envelope fields).
func (p *jscan) skipValue() error {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxSkipDepth {
		return fmt.Errorf("p4rt: wire: value nested deeper than %d at offset %d", maxSkipDepth, p.i)
	}
	p.ws()
	if p.i >= len(p.b) {
		return fmt.Errorf("p4rt: wire: missing value")
	}
	switch p.b[p.i] {
	case '"':
		_, err := p.str()
		return err
	case '{':
		p.i++
		p.ws()
		if p.i < len(p.b) && p.b[p.i] == '}' {
			p.i++
			return nil
		}
		for {
			if _, err := p.str(); err != nil {
				return err
			}
			if err := p.expect(':'); err != nil {
				return err
			}
			if err := p.skipValue(); err != nil {
				return err
			}
			more, err := p.sep('}')
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
		}
	case '[':
		p.i++
		p.ws()
		if p.i < len(p.b) && p.b[p.i] == ']' {
			p.i++
			return nil
		}
		for {
			if err := p.skipValue(); err != nil {
				return err
			}
			more, err := p.sep(']')
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
		}
	case 't', 'f':
		_, err := p.bool()
		return err
	case 'n':
		if p.null() {
			return nil
		}
		return fmt.Errorf("p4rt: wire: bad literal at offset %d", p.i)
	default:
		_, err := p.numTok()
		return err
	}
}

// object walks an object's key/value pairs, handing each value to field.
func (p *jscan) object(field func(key string) error) error {
	if err := p.expect('{'); err != nil {
		return err
	}
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == '}' {
		p.i++
		return nil
	}
	for {
		key, err := p.str()
		if err != nil {
			return err
		}
		if err := p.expect(':'); err != nil {
			return err
		}
		if err := field(key); err != nil {
			return err
		}
		more, err := p.sep('}')
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

func (p *jscan) base64() ([]byte, error) {
	s, err := p.str()
	if err != nil {
		return nil, err
	}
	if s == "" {
		return nil, nil
	}
	return base64.StdEncoding.DecodeString(s)
}

func (p *jscan) match(m *MatchSpec) error {
	if err := p.expect('['); err != nil {
		return err
	}
	var err error
	if m.Value, err = p.uint(); err != nil {
		return err
	}
	if err = p.expect(','); err != nil {
		return err
	}
	if m.Mask, err = p.uint(); err != nil {
		return err
	}
	if err = p.expect(','); err != nil {
		return err
	}
	if m.PrefixLen, err = p.int(); err != nil {
		return err
	}
	if err = p.expect(','); err != nil {
		return err
	}
	if m.Lo, err = p.uint(); err != nil {
		return err
	}
	if err = p.expect(','); err != nil {
		return err
	}
	if m.Hi, err = p.uint(); err != nil {
		return err
	}
	return p.expect(']')
}

func (p *jscan) rule(r *RuleSpec) error {
	if err := p.expect('['); err != nil {
		return err
	}
	var err error
	if r.Priority, err = p.int(); err != nil {
		return err
	}
	if err = p.expect(','); err != nil {
		return err
	}
	if err = p.expect('['); err != nil {
		return err
	}
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == ']' {
		p.i++
	} else {
		for {
			var m MatchSpec
			if err = p.match(&m); err != nil {
				return err
			}
			r.Matches = append(r.Matches, m)
			more, err := p.sep(']')
			if err != nil {
				return err
			}
			if !more {
				break
			}
		}
	}
	if err = p.expect(','); err != nil {
		return err
	}
	if r.Action, err = p.str(); err != nil {
		return err
	}
	if err = p.expect(','); err != nil {
		return err
	}
	if err = p.expect('['); err != nil {
		return err
	}
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == ']' {
		p.i++
	} else {
		for {
			v, err := p.uint()
			if err != nil {
				return err
			}
			r.Params = append(r.Params, v)
			more, err := p.sep(']')
			if err != nil {
				return err
			}
			if !more {
				break
			}
		}
	}
	return p.expect(']')
}

func (p *jscan) sfcSpec(s *SFCSpec) error {
	if err := p.expect('['); err != nil {
		return err
	}
	tenant, err := p.uint()
	if err != nil {
		return err
	}
	s.Tenant = uint32(tenant)
	if err = p.expect(','); err != nil {
		return err
	}
	if s.BandwidthGbps, err = p.float(); err != nil {
		return err
	}
	if err = p.expect(','); err != nil {
		return err
	}
	if err = p.expect('['); err != nil {
		return err
	}
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == ']' {
		p.i++
	} else {
		for {
			var n NFSpec
			if err = p.expect('['); err != nil {
				return err
			}
			if n.Type, err = p.str(); err != nil {
				return err
			}
			if err = p.expect(','); err != nil {
				return err
			}
			if err = p.expect('['); err != nil {
				return err
			}
			p.ws()
			if p.i < len(p.b) && p.b[p.i] == ']' {
				p.i++
			} else {
				for {
					var r RuleSpec
					if err = p.rule(&r); err != nil {
						return err
					}
					n.Rules = append(n.Rules, r)
					more, err := p.sep(']')
					if err != nil {
						return err
					}
					if !more {
						break
					}
				}
			}
			if err = p.expect(']'); err != nil {
				return err
			}
			s.NFs = append(s.NFs, n)
			more, err := p.sep(']')
			if err != nil {
				return err
			}
			if !more {
				break
			}
		}
	}
	return p.expect(']')
}

func (p *jscan) placement(pl *PlacementSpec) error {
	if err := p.expect('['); err != nil {
		return err
	}
	var err error
	if pl.NFIndex, err = p.int(); err != nil {
		return err
	}
	if err = p.expect(','); err != nil {
		return err
	}
	if pl.Type, err = p.str(); err != nil {
		return err
	}
	if err = p.expect(','); err != nil {
		return err
	}
	if pl.Stage, err = p.int(); err != nil {
		return err
	}
	if err = p.expect(','); err != nil {
		return err
	}
	if pl.Pass, err = p.int(); err != nil {
		return err
	}
	return p.expect(']')
}

func (p *jscan) placements() ([]PlacementSpec, error) {
	if err := p.expect('['); err != nil {
		return nil, err
	}
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == ']' {
		p.i++
		return nil, nil
	}
	var out []PlacementSpec
	for {
		var pl PlacementSpec
		if err := p.placement(&pl); err != nil {
			return nil, err
		}
		out = append(out, pl)
		more, err := p.sep(']')
		if err != nil {
			return nil, err
		}
		if !more {
			return out, nil
		}
	}
}

func (p *jscan) batchOp(op *BatchOp) error {
	return p.object(func(key string) error {
		var err error
		switch key {
		case "type":
			s, err := p.str()
			op.Type = MsgType(s)
			return err
		case "stage":
			op.Stage, err = p.int()
			return err
		case "nf_type":
			op.NFType, err = p.str()
			return err
		case "capacity":
			op.Capacity, err = p.int()
			return err
		case "sfc":
			if p.null() {
				return nil
			}
			op.SFC = &SFCSpec{}
			return p.sfcSpec(op.SFC)
		case "tenant":
			v, err := p.uint()
			op.Tenant = uint32(v)
			return err
		case "placements":
			op.Placements, err = p.placements()
			return err
		}
		return p.skipValue()
	})
}

// UnmarshalJSON implements json.Unmarshaler without reflection (server
// wire decoder).
func (r *Request) UnmarshalJSON(b []byte) error {
	*r = Request{}
	p := &jscan{b: b}
	return p.object(func(key string) error {
		var err error
		switch key {
		case "type":
			s, err := p.str()
			r.Type = MsgType(s)
			return err
		case "id":
			r.ID, err = p.uint()
			return err
		case "client":
			r.Client, err = p.uint()
			return err
		case "stage":
			r.Stage, err = p.int()
			return err
		case "nf_type":
			r.NFType, err = p.str()
			return err
		case "capacity":
			r.Capacity, err = p.int()
			return err
		case "sfc":
			if p.null() {
				return nil
			}
			r.SFC = &SFCSpec{}
			return p.sfcSpec(r.SFC)
		case "tenant":
			v, err := p.uint()
			r.Tenant = uint32(v)
			return err
		case "placements":
			r.Placements, err = p.placements()
			return err
		case "wire":
			r.Wire, err = p.base64()
			return err
		case "now_ns":
			r.NowNs, err = p.float()
			return err
		case "ops":
			if err := p.expect('['); err != nil {
				return err
			}
			p.ws()
			if p.i < len(p.b) && p.b[p.i] == ']' {
				p.i++
				return nil
			}
			for {
				var op BatchOp
				if err := p.batchOp(&op); err != nil {
					return err
				}
				r.Ops = append(r.Ops, op)
				more, err := p.sep(']')
				if err != nil {
					return err
				}
				if !more {
					return nil
				}
			}
		}
		return p.skipValue()
	})
}

func (p *jscan) batchResult(r *BatchResult) error {
	return p.object(func(key string) error {
		var err error
		switch key {
		case "ok":
			r.OK, err = p.bool()
			return err
		case "error":
			r.Error, err = p.str()
			return err
		case "placements":
			r.Placements, err = p.placements()
			return err
		case "passes":
			r.Passes, err = p.int()
			return err
		}
		return p.skipValue()
	})
}

func (p *jscan) stats(st *Stats) error {
	return p.object(func(key string) error {
		var err error
		switch key {
		case "stages":
			st.Stages, err = p.int()
		case "blocks_used":
			st.BlocksUsed, err = p.int()
		case "entries_used":
			st.EntriesUsed, err = p.int()
		case "bandwidth_gbps":
			st.BandwidthGbps, err = p.float()
		case "tenants":
			st.Tenants, err = p.int()
		case "processed":
			st.Processed, err = p.uint()
		case "recirculated":
			st.Recirculated, err = p.uint()
		default:
			err = p.skipValue()
		}
		return err
	})
}

func (p *jscan) inject(in *InjectResult) error {
	return p.object(func(key string) error {
		var err error
		switch key {
		case "latency_ns":
			in.LatencyNs, err = p.float()
		case "passes":
			in.Passes, err = p.int()
		case "dropped":
			in.Dropped, err = p.bool()
		case "egress_port":
			v, verr := p.uint()
			in.EgressPort = uint16(v)
			err = verr
		case "tables_applied":
			in.TablesApplied, err = p.int()
		case "wire":
			in.Wire, err = p.base64()
		default:
			err = p.skipValue()
		}
		return err
	})
}

func (p *jscan) stateDump(d *StateDump) error {
	return p.object(func(key string) error {
		switch key {
		case "physical":
			if err := p.expect('['); err != nil {
				return err
			}
			p.ws()
			if p.i < len(p.b) && p.b[p.i] == ']' {
				p.i++
				return nil
			}
			for {
				var ph PhysicalDump
				if err := p.expect('['); err != nil {
					return err
				}
				var err error
				if ph.Stage, err = p.int(); err != nil {
					return err
				}
				if err = p.expect(','); err != nil {
					return err
				}
				if ph.Type, err = p.str(); err != nil {
					return err
				}
				if err = p.expect(','); err != nil {
					return err
				}
				if ph.Capacity, err = p.int(); err != nil {
					return err
				}
				if err = p.expect(','); err != nil {
					return err
				}
				if ph.Used, err = p.int(); err != nil {
					return err
				}
				if err = p.expect(']'); err != nil {
					return err
				}
				d.Physical = append(d.Physical, ph)
				more, err := p.sep(']')
				if err != nil {
					return err
				}
				if !more {
					return nil
				}
			}
		case "tenants":
			if err := p.expect('['); err != nil {
				return err
			}
			p.ws()
			if p.i < len(p.b) && p.b[p.i] == ']' {
				p.i++
				return nil
			}
			for {
				var td TenantDump
				if err := p.expect('['); err != nil {
					return err
				}
				td.SFC = &SFCSpec{}
				if err := p.sfcSpec(td.SFC); err != nil {
					return err
				}
				if err := p.expect(','); err != nil {
					return err
				}
				var err error
				if td.Placements, err = p.placements(); err != nil {
					return err
				}
				if err = p.expect(','); err != nil {
					return err
				}
				if td.Passes, err = p.int(); err != nil {
					return err
				}
				if err = p.expect(']'); err != nil {
					return err
				}
				d.Tenants = append(d.Tenants, td)
				more, err := p.sep(']')
				if err != nil {
					return err
				}
				if !more {
					return nil
				}
			}
		}
		return p.skipValue()
	})
}

// UnmarshalJSON implements json.Unmarshaler without reflection (client
// wire decoder).
func (r *Response) UnmarshalJSON(b []byte) error {
	*r = Response{}
	p := &jscan{b: b}
	return p.object(func(key string) error {
		var err error
		switch key {
		case "ok":
			r.OK, err = p.bool()
			return err
		case "error":
			r.Error, err = p.str()
			return err
		case "id":
			r.ID, err = p.uint()
			return err
		case "transient":
			r.Transient, err = p.bool()
			return err
		case "placements":
			r.Placements, err = p.placements()
			return err
		case "passes":
			r.Passes, err = p.int()
			return err
		case "layout":
			if err := p.expect('['); err != nil {
				return err
			}
			p.ws()
			if p.i < len(p.b) && p.b[p.i] == ']' {
				p.i++
				return nil
			}
			for {
				if err := p.expect('['); err != nil {
					return err
				}
				stage := []string{} // empty stages stay non-nil, like stdlib
				p.ws()
				if p.i < len(p.b) && p.b[p.i] == ']' {
					p.i++
				} else {
					for {
						s, err := p.str()
						if err != nil {
							return err
						}
						stage = append(stage, s)
						more, err := p.sep(']')
						if err != nil {
							return err
						}
						if !more {
							break
						}
					}
				}
				r.Layout = append(r.Layout, stage)
				more, err := p.sep(']')
				if err != nil {
					return err
				}
				if !more {
					return nil
				}
			}
		case "stats":
			if p.null() {
				return nil
			}
			r.Stats = &Stats{}
			return p.stats(r.Stats)
		case "inject":
			if p.null() {
				return nil
			}
			r.Inject = &InjectResult{}
			return p.inject(r.Inject)
		case "state":
			if p.null() {
				return nil
			}
			r.State = &StateDump{}
			return p.stateDump(r.State)
		case "results":
			if err := p.expect('['); err != nil {
				return err
			}
			p.ws()
			if p.i < len(p.b) && p.b[p.i] == ']' {
				p.i++
				return nil
			}
			for {
				var res BatchResult
				if err := p.batchResult(&res); err != nil {
					return err
				}
				r.Results = append(r.Results, res)
				more, err := p.sep(']')
				if err != nil {
					return err
				}
				if !more {
					return nil
				}
			}
		}
		return p.skipValue()
	})
}

// UnmarshalJSON implements json.Unmarshaler for the compact array form.
func (s *SFCSpec) UnmarshalJSON(b []byte) error {
	*s = SFCSpec{}
	p := &jscan{b: b}
	if err := p.sfcSpec(s); err != nil {
		return err
	}
	p.ws()
	return nil
}

// UnmarshalJSON implements json.Unmarshaler for the compact array form.
func (pl *PlacementSpec) UnmarshalJSON(b []byte) error {
	*pl = PlacementSpec{}
	p := &jscan{b: b}
	return p.placement(pl)
}
