package p4rt

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sfp/internal/nf"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

// transientInstallTarget fails the first n InstallPhysical calls with a
// retry-safe (ErrUnavailable-wrapping) error.
type transientInstallTarget struct {
	Target
	mu    sync.Mutex
	fails int
}

func (t *transientInstallTarget) InstallPhysical(stage int, typ nf.Type, capacity int) error {
	t.mu.Lock()
	shouldFail := t.fails > 0
	if shouldFail {
		t.fails--
	}
	t.mu.Unlock()
	if shouldFail {
		return fmt.Errorf("injected: %w", ErrUnavailable)
	}
	return t.Target.InstallPhysical(stage, typ, capacity)
}

// TestBackoffDoesNotBlockOtherCalls is the regression test for the old
// lock-the-world client: a call sleeping in retry backoff must not stall
// unrelated callers on the same client.
func TestBackoffDoesNotBlockOtherCalls(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 3
	v := vswitch.New(pipeline.New(cfg))
	tgt := &transientInstallTarget{Target: &VSwitchTarget{V: v}, fails: 2}
	srv := NewServer(tgt)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialOptions(addr, ClientOptions{
		MaxAttempts: 4,
		BackoffBase: 300 * time.Millisecond,
		BackoffMax:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	installDone := make(chan error, 1)
	go func() { installDone <- c.InstallPhysical(0, nf.Firewall, 100) }()

	// Give the install time to hit its first transient failure and enter
	// the ~300ms backoff sleep, then ping through the same client.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping during backoff: %v", err)
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Errorf("ping took %v while another call backed off — client still lock-the-world", d)
	}
	if err := <-installDone; err != nil {
		t.Fatalf("install never recovered: %v", err)
	}
}

// TestGoFlushPipelinesRequests drives the async API: many requests in
// flight on one connection, collected by Flush.
func TestGoFlushPipelinesRequests(t *testing.T) {
	c, v, cleanup := startServer(t)
	defer cleanup()
	if err := c.InstallPhysical(0, nf.Firewall, 1000); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallPhysical(1, nf.Router, 1000); err != nil {
		t.Fatal(err)
	}
	pls := batchPlacements()
	for tenant := uint32(1); tenant <= 20; tenant++ {
		c.Go(&Request{Type: MsgAllocateAt, SFC: FromSFC(wireSFC(tenant)), Placements: fromPlacements(pls)}, nil)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if v.Tenants() != 20 {
		t.Errorf("tenants = %d, want 20", v.Tenants())
	}

	// An async failure (duplicate tenant) surfaces on the next Flush…
	c.Go(&Request{Type: MsgAllocateAt, SFC: FromSFC(wireSFC(1)), Placements: fromPlacements(pls)}, nil)
	if err := c.Flush(); err == nil {
		t.Error("Flush swallowed an async error")
	}
	// …and is cleared afterwards.
	if err := c.Flush(); err != nil {
		t.Errorf("Flush did not clear the collected error: %v", err)
	}
}

// TestGoBatchCallback checks the async batch entry point with an explicit
// completion callback.
func TestGoBatchCallback(t *testing.T) {
	c, v, cleanup := startServer(t)
	defer cleanup()
	pls := batchPlacements()
	got := make(chan []BatchResult, 1)
	c.GoBatch([]BatchOp{
		OpInstallPhysical(0, nf.Firewall, 100),
		OpInstallPhysical(1, nf.Router, 100),
		OpAllocateAt(wireSFC(9), pls),
	}, func(results []BatchResult, err error) {
		if err != nil {
			t.Errorf("batch: %v", err)
		}
		got <- results
	})
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	results := <-got
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if v.Allocations(9) == nil {
		t.Error("tenant 9 not installed")
	}
}

// TestPipeliningSharesOneConnection: concurrent synchronous callers ride
// one TCP connection instead of serializing on a client-wide lock.
func TestPipeliningSharesOneConnection(t *testing.T) {
	c, _, cleanup := startServer(t)
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Ping(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c.mu.Lock()
	cs := c.cs
	c.mu.Unlock()
	if cs == nil || cs.isBroken() {
		t.Error("connection was replaced or poisoned by concurrent pings")
	}
}
