package p4rt

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/vswitch"
)

// Client is the controller-side handle to a remote switch.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a switch daemon.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one synchronous RPC.
func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := marshal(req)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(c.w, body); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	raw, err := readFrame(c.r)
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return &resp, errors.New(resp.Error)
	}
	return &resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Type: MsgPing})
	return err
}

// InstallPhysical pre-installs a physical NF on the remote switch.
func (c *Client) InstallPhysical(stage int, t nf.Type, capacity int) error {
	_, err := c.call(&Request{Type: MsgInstallPhysical, Stage: stage, NFType: t.String(), Capacity: capacity})
	return err
}

// Allocate installs a tenant SFC using the switch's first-fit folding and
// returns the landing placements and pass count.
func (c *Client) Allocate(sfc *vswitch.SFC) ([]vswitch.Placement, int, error) {
	resp, err := c.call(&Request{Type: MsgAllocate, SFC: FromSFC(sfc)})
	if err != nil {
		return nil, 0, err
	}
	pls, err := toPlacements(resp.Placements)
	return pls, resp.Passes, err
}

// AllocateAt installs a tenant SFC at control-plane-chosen placements.
func (c *Client) AllocateAt(sfc *vswitch.SFC, placements []vswitch.Placement) (int, error) {
	resp, err := c.call(&Request{
		Type: MsgAllocateAt, SFC: FromSFC(sfc), Placements: fromPlacements(placements),
	})
	if err != nil {
		return 0, err
	}
	return resp.Passes, nil
}

// Deallocate removes a tenant's rules.
func (c *Client) Deallocate(tenant uint32) error {
	_, err := c.call(&Request{Type: MsgDeallocate, Tenant: tenant})
	return err
}

// Layout reads the per-stage physical NF names.
func (c *Client) Layout() ([][]string, error) {
	resp, err := c.call(&Request{Type: MsgLayout})
	if err != nil {
		return nil, err
	}
	return resp.Layout, nil
}

// Stats reads switch resource counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.call(&Request{Type: MsgStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, fmt.Errorf("p4rt: stats missing from response")
	}
	return *resp.Stats, nil
}

// Inject sends one wire-format packet through the remote pipeline at the
// given simulated timestamp and returns the processing outcome.
func (c *Client) Inject(wire []byte, nowNs float64) (InjectResult, error) {
	resp, err := c.call(&Request{Type: MsgInject, Wire: wire, NowNs: nowNs})
	if err != nil {
		return InjectResult{}, err
	}
	if resp.Inject == nil {
		return InjectResult{}, fmt.Errorf("p4rt: inject result missing")
	}
	return *resp.Inject, nil
}

// VSwitchTarget adapts a vswitch.VSwitch to the server Target interface.
type VSwitchTarget struct {
	V *vswitch.VSwitch
}

// InstallPhysical implements Target.
func (t *VSwitchTarget) InstallPhysical(stage int, typ nf.Type, capacity int) error {
	_, err := t.V.InstallPhysicalNF(stage, typ, capacity)
	return err
}

// Allocate implements Target.
func (t *VSwitchTarget) Allocate(spec *SFCSpec) ([]PlacementSpec, int, error) {
	sfc, err := spec.ToSFC()
	if err != nil {
		return nil, 0, err
	}
	alloc, err := t.V.Allocate(sfc)
	if err != nil {
		return nil, 0, err
	}
	return fromPlacements(alloc.Placements), alloc.Passes, nil
}

// AllocateAt implements Target.
func (t *VSwitchTarget) AllocateAt(spec *SFCSpec, placements []PlacementSpec) (int, error) {
	sfc, err := spec.ToSFC()
	if err != nil {
		return 0, err
	}
	pls, err := toPlacements(placements)
	if err != nil {
		return 0, err
	}
	alloc, err := t.V.AllocateAt(sfc, pls)
	if err != nil {
		return 0, err
	}
	return alloc.Passes, nil
}

// Deallocate implements Target.
func (t *VSwitchTarget) Deallocate(tenant uint32) error {
	return t.V.Deallocate(tenant)
}

// Layout implements Target.
func (t *VSwitchTarget) Layout() [][]string {
	raw := t.V.Layout()
	out := make([][]string, len(raw))
	for s, types := range raw {
		for _, typ := range types {
			out[s] = append(out[s], typ.String())
		}
	}
	return out
}

// Inject implements Target: parse the wire bytes, run the pipeline, and
// deparse the egress packet.
func (t *VSwitchTarget) Inject(wire []byte, nowNs float64) (InjectResult, error) {
	p, err := packet.Parse(wire, false)
	if err != nil {
		return InjectResult{}, err
	}
	res := t.V.Process(p, nowNs)
	out := InjectResult{
		LatencyNs:     res.LatencyNs,
		Passes:        res.Passes,
		Dropped:       res.Dropped,
		EgressPort:    res.EgressPort,
		TablesApplied: res.TablesApplied,
	}
	if !res.Dropped {
		out.Wire = packet.Deparse(p)
	}
	return out, nil
}

// Stats implements Target.
func (t *VSwitchTarget) Stats() Stats {
	return Stats{
		Stages:        t.V.Pipe.Cfg.Stages,
		BlocksUsed:    t.V.Pipe.BlocksUsed(),
		EntriesUsed:   t.V.Pipe.EntriesUsed(),
		BandwidthGbps: t.V.BandwidthUsed(),
		Tenants:       t.V.Tenants(),
		Processed:     t.V.Pipe.Processed,
		Recirculated:  t.V.Pipe.Recirculated,
	}
}
