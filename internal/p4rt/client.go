package p4rt

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/vswitch"
)

// ClientOptions tunes the client's robustness behavior. The zero value
// gives a hardened client with sane defaults (see withDefaults).
type ClientOptions struct {
	// DialTimeout bounds each (re)connect attempt. Default 2s.
	DialTimeout time.Duration
	// CallTimeout is the per-RPC deadline applied to the connection for
	// the whole write+read round trip. Default 5s; negative disables.
	CallTimeout time.Duration
	// MaxAttempts is the total number of tries for a retryable RPC
	// (first attempt included). Default 4; 1 disables retry.
	MaxAttempts int
	// BackoffBase and BackoffMax bound the exponential backoff between
	// retries: attempt n sleeps jitter(min(BackoffBase·2ⁿ⁻¹, BackoffMax)).
	// Defaults 10ms and 1s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the deterministic backoff jitter. Default 1.
	Seed int64
	// Dialer overrides how connections are made (fault injection,
	// testing). Default net.DialTimeout("tcp", addr, DialTimeout).
	Dialer func(addr string) (net.Conn, error)
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout == 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 10 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ErrBroken reports that the previous RPC left the connection in an
// unknown framing state and the client could not re-establish a clean one.
var ErrBroken = errors.New("p4rt: connection broken")

// Client is the controller-side handle to a remote switch. It treats the
// device channel as unreliable: every call carries a deadline and a
// monotonically increasing request ID; any mid-frame error poisons the
// connection (it is never reused — a stale half-read stream could serve
// the previous call's response to the next one), and retryable RPCs
// transparently reconnect with bounded exponential backoff. Mutating RPCs
// are made retry-safe by the server's (client, request-ID) dedup window.
type Client struct {
	addr string
	opts ClientOptions

	mu       sync.Mutex
	conn     net.Conn
	r        *bufio.Reader
	w        *bufio.Writer
	broken   bool   // current conn is poisoned; redial before next use
	closed   bool   // Close was called; no redials
	clientID uint64 // random identity for the server dedup window
	nextID   uint64 // monotonically increasing request ID
	rng      *rand.Rand
}

// Dial connects to a switch daemon with default hardening options.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialOptions(addr, ClientOptions{DialTimeout: timeout})
}

// DialOptions connects to a switch daemon with explicit options.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	c := &Client{
		addr:     addr,
		opts:     opts,
		clientID: randomClientID(),
		nextID:   1,
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
	if err := c.reconnect(); err != nil {
		return nil, err
	}
	return c, nil
}

// randomClientID draws a non-zero 64-bit identity. Uniqueness across
// processes matters (the server dedups on it); determinism does not.
func randomClientID() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// Close releases the connection. The client cannot be used afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// reconnect (mu held) discards any poisoned connection and dials fresh.
func (c *Client) reconnect() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	var (
		conn net.Conn
		err  error
	)
	if c.opts.Dialer != nil {
		conn, err = c.opts.Dialer(c.addr)
	} else {
		conn, err = net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	}
	if err != nil {
		return err
	}
	c.conn = conn
	c.r = bufio.NewReader(conn)
	c.w = bufio.NewWriter(conn)
	c.broken = false
	return nil
}

// backoff (mu held) sleeps the bounded-exponential, seeded-jitter delay
// before retry attempt n (n ≥ 1).
func (c *Client) backoff(n int) {
	d := c.opts.BackoffBase << uint(n-1)
	if d <= 0 || d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	// Jitter in [d/2, d]: deterministic under Seed, avoids thundering herds.
	half := int64(d / 2)
	if half > 0 {
		d = time.Duration(half + c.rng.Int63n(half+1))
	}
	time.Sleep(d)
}

// retryable reports whether an RPC may be reissued after a transport
// failure. Ping/Layout/Stats are read-only; InstallPhysical, Allocate,
// AllocateAt, and Deallocate mutate but are covered by the server's
// request-ID dedup window, so a replay of an executed install is a no-op.
// Inject is neither (it perturbs data-plane counters and has no dedup).
func retryable(t MsgType) bool {
	switch t {
	case MsgPing, MsgLayout, MsgStats,
		MsgInstallPhysical, MsgAllocate, MsgAllocateAt, MsgDeallocate:
		return true
	}
	return false
}

// call performs one synchronous RPC with deadline, desync detection, and
// (for retryable types) reconnect + retry. Application-level errors from
// the switch are returned as-is and never retried, except those the
// server marks Transient (the target did not execute the request).
func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrBroken
	}
	req.Client = c.clientID
	req.ID = c.nextID
	c.nextID++
	body, err := marshal(req)
	if err != nil {
		return nil, err
	}
	attempts := 1
	if retryable(req.Type) {
		attempts = c.opts.MaxAttempts
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.backoff(attempt - 1)
		}
		if c.conn == nil || c.broken {
			if err := c.reconnect(); err != nil {
				lastErr = err
				continue
			}
		}
		resp, err := c.roundTrip(req.ID, body)
		if err != nil {
			// Any mid-frame failure leaves the stream in an unknown
			// state: poison the connection so it is never reused.
			c.broken = true
			lastErr = err
			continue
		}
		if !resp.OK {
			if resp.Transient && attempt < attempts {
				lastErr = errors.New(resp.Error)
				continue
			}
			return resp, errors.New(resp.Error)
		}
		return resp, nil
	}
	if attempts == 1 {
		return nil, lastErr
	}
	return nil, fmt.Errorf("p4rt: %s failed after %d attempts: %w", req.Type, attempts, lastErr)
}

// roundTrip (mu held) writes one framed request and reads its response
// under the per-call deadline, verifying the echoed request ID.
func (c *Client) roundTrip(id uint64, body []byte) (*Response, error) {
	if c.opts.CallTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.CallTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(c.w, body); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	raw, err := readFrame(c.r)
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, err
	}
	if resp.ID != id {
		return nil, fmt.Errorf("p4rt: desynchronized stream: response ID %d for request %d", resp.ID, id)
	}
	return &resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Type: MsgPing})
	return err
}

// InstallPhysical pre-installs a physical NF on the remote switch.
func (c *Client) InstallPhysical(stage int, t nf.Type, capacity int) error {
	_, err := c.call(&Request{Type: MsgInstallPhysical, Stage: stage, NFType: t.String(), Capacity: capacity})
	return err
}

// Allocate installs a tenant SFC using the switch's first-fit folding and
// returns the landing placements and pass count.
func (c *Client) Allocate(sfc *vswitch.SFC) ([]vswitch.Placement, int, error) {
	resp, err := c.call(&Request{Type: MsgAllocate, SFC: FromSFC(sfc)})
	if err != nil {
		return nil, 0, err
	}
	pls, err := toPlacements(resp.Placements)
	return pls, resp.Passes, err
}

// AllocateAt installs a tenant SFC at control-plane-chosen placements.
func (c *Client) AllocateAt(sfc *vswitch.SFC, placements []vswitch.Placement) (int, error) {
	resp, err := c.call(&Request{
		Type: MsgAllocateAt, SFC: FromSFC(sfc), Placements: fromPlacements(placements),
	})
	if err != nil {
		return 0, err
	}
	return resp.Passes, nil
}

// Deallocate removes a tenant's rules.
func (c *Client) Deallocate(tenant uint32) error {
	_, err := c.call(&Request{Type: MsgDeallocate, Tenant: tenant})
	return err
}

// Layout reads the per-stage physical NF names.
func (c *Client) Layout() ([][]string, error) {
	resp, err := c.call(&Request{Type: MsgLayout})
	if err != nil {
		return nil, err
	}
	return resp.Layout, nil
}

// Stats reads switch resource counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.call(&Request{Type: MsgStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, fmt.Errorf("p4rt: stats missing from response")
	}
	return *resp.Stats, nil
}

// Inject sends one wire-format packet through the remote pipeline at the
// given simulated timestamp and returns the processing outcome.
func (c *Client) Inject(wire []byte, nowNs float64) (InjectResult, error) {
	resp, err := c.call(&Request{Type: MsgInject, Wire: wire, NowNs: nowNs})
	if err != nil {
		return InjectResult{}, err
	}
	if resp.Inject == nil {
		return InjectResult{}, fmt.Errorf("p4rt: inject result missing")
	}
	return *resp.Inject, nil
}

// VSwitchTarget adapts a vswitch.VSwitch to the server Target interface.
type VSwitchTarget struct {
	V *vswitch.VSwitch
}

// InstallPhysical implements Target.
func (t *VSwitchTarget) InstallPhysical(stage int, typ nf.Type, capacity int) error {
	_, err := t.V.InstallPhysicalNF(stage, typ, capacity)
	return err
}

// Allocate implements Target.
func (t *VSwitchTarget) Allocate(spec *SFCSpec) ([]PlacementSpec, int, error) {
	sfc, err := spec.ToSFC()
	if err != nil {
		return nil, 0, err
	}
	alloc, err := t.V.Allocate(sfc)
	if err != nil {
		return nil, 0, err
	}
	return fromPlacements(alloc.Placements), alloc.Passes, nil
}

// AllocateAt implements Target.
func (t *VSwitchTarget) AllocateAt(spec *SFCSpec, placements []PlacementSpec) (int, error) {
	sfc, err := spec.ToSFC()
	if err != nil {
		return 0, err
	}
	pls, err := toPlacements(placements)
	if err != nil {
		return 0, err
	}
	alloc, err := t.V.AllocateAt(sfc, pls)
	if err != nil {
		return 0, err
	}
	return alloc.Passes, nil
}

// Deallocate implements Target.
func (t *VSwitchTarget) Deallocate(tenant uint32) error {
	return t.V.Deallocate(tenant)
}

// Layout implements Target.
func (t *VSwitchTarget) Layout() [][]string {
	raw := t.V.Layout()
	out := make([][]string, len(raw))
	for s, types := range raw {
		for _, typ := range types {
			out[s] = append(out[s], typ.String())
		}
	}
	return out
}

// Inject implements Target: parse the wire bytes, run the pipeline, and
// deparse the egress packet.
func (t *VSwitchTarget) Inject(wire []byte, nowNs float64) (InjectResult, error) {
	p, err := packet.Parse(wire, false)
	if err != nil {
		return InjectResult{}, err
	}
	res := t.V.Process(p, nowNs)
	out := InjectResult{
		LatencyNs:     res.LatencyNs,
		Passes:        res.Passes,
		Dropped:       res.Dropped,
		EgressPort:    res.EgressPort,
		TablesApplied: res.TablesApplied,
	}
	if !res.Dropped {
		out.Wire = packet.Deparse(p)
	}
	return out, nil
}

// Stats implements Target.
func (t *VSwitchTarget) Stats() Stats {
	return Stats{
		Stages:        t.V.Pipe.Cfg.Stages,
		BlocksUsed:    t.V.Pipe.BlocksUsed(),
		EntriesUsed:   t.V.Pipe.EntriesUsed(),
		BandwidthGbps: t.V.BandwidthUsed(),
		Tenants:       t.V.Tenants(),
		Processed:     t.V.Pipe.Processed(),
		Recirculated:  t.V.Pipe.Recirculated(),
	}
}
