package p4rt

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/vswitch"
)

// ClientOptions tunes the client's robustness behavior. The zero value
// gives a hardened client with sane defaults (see withDefaults).
type ClientOptions struct {
	// DialTimeout bounds each (re)connect attempt. Default 2s.
	DialTimeout time.Duration
	// CallTimeout is the per-RPC deadline applied to the connection for
	// the whole write+read round trip. Default 5s; negative disables.
	CallTimeout time.Duration
	// MaxAttempts is the total number of tries for a retryable RPC
	// (first attempt included). Default 4; 1 disables retry.
	MaxAttempts int
	// BackoffBase and BackoffMax bound the exponential backoff between
	// retries: attempt n sleeps jitter(min(BackoffBase·2ⁿ⁻¹, BackoffMax)).
	// Defaults 10ms and 1s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the deterministic backoff jitter. Default 1.
	Seed int64
	// MaxInFlight bounds how many RPCs (sync and async combined) may be
	// outstanding at once; excess callers block until a slot frees.
	// Default 64.
	MaxInFlight int
	// Dialer overrides how connections are made (fault injection,
	// testing). Default net.DialTimeout("tcp", addr, DialTimeout).
	Dialer func(addr string) (net.Conn, error)
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout == 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 10 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	return o
}

// ErrBroken reports that the previous RPC left the connection in an
// unknown framing state and the client could not re-establish a clean one.
var ErrBroken = errors.New("p4rt: connection broken")

// Client is the controller-side handle to a remote switch. It treats the
// device channel as unreliable: every call carries a deadline and a
// monotonically increasing request ID; any mid-frame error poisons the
// connection (it is never reused — a stale half-read stream could serve
// the previous call's response to the next one), and retryable RPCs
// transparently reconnect with bounded exponential backoff. Mutating RPCs
// are made retry-safe by the server's (client, request-ID) dedup window.
//
// Calls are pipelined: a caller writes its frame and parks on a channel
// while a per-connection reader goroutine matches responses to waiters by
// the echoed request ID, so many RPCs (from many goroutines, or via
// Go/Flush from one) share a single connection with their round trips in
// flight simultaneously. Retry backoff sleeps hold no locks, so one flaky
// call never stalls unrelated callers.
type Client struct {
	addr     string
	opts     ClientOptions
	clientID uint64 // random identity for the server dedup window

	mu     sync.Mutex // guards cs, closed, nextID
	cs     *connState
	closed bool   // Close was called; no redials
	nextID uint64 // monotonically increasing request ID

	// dialMu serializes (re)dials so a burst of callers hitting a broken
	// conn produces one new connection, not one each. Never held together
	// with mu.
	dialMu sync.Mutex

	rngMu sync.Mutex
	rng   *rand.Rand

	// window is the bounded in-flight semaphore (MaxInFlight slots).
	window chan struct{}

	// bufs pools marshal buffers: one frame assembly per call, reused.
	bufs sync.Pool

	asyncWG sync.WaitGroup
	asyncMu sync.Mutex
	asyncErr error
}

// callResult is what a reader (or a failure) delivers to a parked caller.
type callResult struct {
	resp *Response
	err  error
}

// connState is one live connection plus its in-flight bookkeeping. It is
// owned by the Client but survives independently once poisoned: late
// readers and timed-out callers resolve against it without racing the
// Client's replacement connection.
type connState struct {
	conn net.Conn

	mu      sync.Mutex
	pending map[uint64]chan callResult
	broken  bool
	err     error
}

// enqueue registers a waiter for a request ID. It fails fast when the
// connection is already poisoned.
func (cs *connState) enqueue(id uint64) (chan callResult, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.broken {
		return nil, cs.err
	}
	ch := make(chan callResult, 1)
	cs.pending[id] = ch
	return ch, nil
}

// fail poisons the connection and delivers err to every parked caller.
// Idempotent: the first failure wins. The conn is closed so the reader
// goroutine (and the server side) unblock.
func (cs *connState) fail(err error) {
	cs.mu.Lock()
	if cs.broken {
		cs.mu.Unlock()
		return
	}
	cs.broken = true
	cs.err = err
	waiters := cs.pending
	cs.pending = make(map[uint64]chan callResult)
	cs.mu.Unlock()
	cs.conn.Close()
	for _, ch := range waiters {
		ch <- callResult{err: err}
	}
}

// isBroken reports whether the connection is poisoned.
func (cs *connState) isBroken() bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.broken
}

// readLoop is the per-connection background reader: it decodes response
// frames and hands each to the caller whose request ID it echoes. An
// unmatched ID means the stream is desynchronized (a stale or reordered
// frame): the whole connection is poisoned rather than risk delivering
// one call's response to another.
func (cs *connState) readLoop() {
	r := bufio.NewReader(cs.conn)
	for {
		raw, err := readFrame(r)
		if err != nil {
			cs.fail(err)
			return
		}
		var resp Response
		if err := resp.UnmarshalJSON(raw); err != nil {
			cs.fail(err)
			return
		}
		cs.mu.Lock()
		ch, ok := cs.pending[resp.ID]
		if ok {
			delete(cs.pending, resp.ID)
		}
		broken := cs.broken
		cs.mu.Unlock()
		if broken {
			return
		}
		if !ok {
			cs.fail(fmt.Errorf("p4rt: desynchronized stream: unmatched response ID %d", resp.ID))
			return
		}
		ch <- callResult{resp: &resp}
	}
}

// Dial connects to a switch daemon with default hardening options.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialOptions(addr, ClientOptions{DialTimeout: timeout})
}

// DialOptions connects to a switch daemon with explicit options.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	c := &Client{
		addr:     addr,
		opts:     opts,
		clientID: randomClientID(),
		nextID:   1,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		window:   make(chan struct{}, opts.MaxInFlight),
	}
	c.bufs.New = func() any { b := make([]byte, 0, 1024); return &b }
	if _, err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// randomClientID draws a non-zero 64-bit identity. Uniqueness across
// processes matters (the server dedups on it); determinism does not.
func randomClientID() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// Close releases the connection. The client cannot be used afterwards;
// outstanding calls fail with ErrBroken.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	cs := c.cs
	c.cs = nil
	c.mu.Unlock()
	if cs == nil {
		return nil
	}
	cs.fail(ErrBroken)
	return nil
}

// connect returns a healthy connection, dialing a fresh one if the
// current connection is poisoned (or absent). Dials happen under dialMu
// only — concurrent callers on a healthy conn are never blocked by a
// redial, and a burst of callers hitting a broken conn share one dial.
func (c *Client) connect() (*connState, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrBroken
	}
	cs := c.cs
	c.mu.Unlock()
	if cs != nil && !cs.isBroken() {
		return cs, nil
	}
	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	// Double-check: another caller may have redialed while we waited.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrBroken
	}
	cs = c.cs
	c.mu.Unlock()
	if cs != nil && !cs.isBroken() {
		return cs, nil
	}
	var (
		conn net.Conn
		err  error
	)
	if c.opts.Dialer != nil {
		conn, err = c.opts.Dialer(c.addr)
	} else {
		conn, err = net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	}
	if err != nil {
		return nil, err
	}
	ncs := &connState{conn: conn, pending: make(map[uint64]chan callResult)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, ErrBroken
	}
	c.cs = ncs
	c.mu.Unlock()
	go ncs.readLoop()
	return ncs, nil
}

// backoff sleeps the bounded-exponential, seeded-jitter delay before
// retry attempt n (n ≥ 1). No client lock is held while sleeping, so a
// call in its backoff window never stalls other callers.
func (c *Client) backoff(n int) {
	d := c.opts.BackoffBase << uint(n-1)
	if d <= 0 || d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	// Jitter in [d/2, d]: deterministic under Seed, avoids thundering herds.
	half := int64(d / 2)
	if half > 0 {
		c.rngMu.Lock()
		d = time.Duration(half + c.rng.Int63n(half+1))
		c.rngMu.Unlock()
	}
	time.Sleep(d)
}

// retryable reports whether an RPC may be reissued after a transport
// failure. Ping/Layout/Stats are read-only; InstallPhysical, Allocate,
// AllocateAt, and Deallocate mutate but are covered by the server's
// request-ID dedup window, so a replay of an executed install is a no-op.
// Inject is neither (it perturbs data-plane counters and has no dedup).
func retryable(t MsgType) bool {
	switch t {
	case MsgPing, MsgLayout, MsgStats, MsgDumpState,
		MsgInstallPhysical, MsgAllocate, MsgAllocateAt, MsgDeallocate,
		MsgBatch:
		return true
	}
	return false
}

// call performs one synchronous RPC under the in-flight window.
func (c *Client) call(req *Request) (*Response, error) {
	c.window <- struct{}{}
	defer func() { <-c.window }()
	return c.do(req)
}

// Go issues req asynchronously: it claims an in-flight slot (blocking
// only when MaxInFlight requests are already outstanding), then runs the
// full retry/reconnect state machine in a background goroutine, its round
// trip pipelined with other calls on the shared connection. done, if
// non-nil, receives the outcome; with a nil done the first error is
// collected and returned by the next Flush.
func (c *Client) Go(req *Request, done func(*Response, error)) {
	c.window <- struct{}{}
	c.asyncWG.Add(1)
	go func() {
		defer c.asyncWG.Done()
		resp, err := c.do(req)
		<-c.window
		if done != nil {
			done(resp, err)
			return
		}
		if err != nil {
			c.asyncMu.Lock()
			if c.asyncErr == nil {
				c.asyncErr = err
			}
			c.asyncMu.Unlock()
		}
	}()
}

// Flush waits for every Go-issued request to complete and returns the
// first error among those issued without a done callback (then clears it).
func (c *Client) Flush() error {
	c.asyncWG.Wait()
	c.asyncMu.Lock()
	defer c.asyncMu.Unlock()
	err := c.asyncErr
	c.asyncErr = nil
	return err
}

// do runs one RPC with deadline, desync detection, and (for retryable
// types) reconnect + retry. The request ID is assigned once, so every
// retry replays the same identity into the server's dedup window.
// Application-level errors from the switch are returned as-is and never
// retried, except those the server marks Transient (the target did not
// execute the request).
func (c *Client) do(req *Request) (*Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrBroken
	}
	req.Client = c.clientID
	req.ID = c.nextID
	c.nextID++
	c.mu.Unlock()

	// Assemble the frame once into a pooled buffer: 4-byte length header
	// placeholder, hand-encoded JSON body (no reflection, no compaction
	// pass), header patched in place. One buffer, one conn.Write per
	// attempt — no per-call allocations of the frame and no interleaving
	// with other pipelined callers' frames.
	bufp := c.bufs.Get().(*[]byte)
	frame := append((*bufp)[:0], 0, 0, 0, 0)
	frame = req.appendJSON(frame)
	defer func() {
		*bufp = frame[:0] // keep any growth for the next caller
		c.bufs.Put(bufp)
	}()
	if len(frame)-4 > maxFrame {
		return nil, fmt.Errorf("p4rt: frame of %d bytes exceeds limit", len(frame)-4)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))

	attempts := 1
	if retryable(req.Type) {
		attempts = c.opts.MaxAttempts
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.backoff(attempt - 1)
		}
		cs, err := c.connect()
		if err != nil {
			if errors.Is(err, ErrBroken) {
				return nil, err
			}
			lastErr = err
			continue
		}
		resp, err := c.roundTrip(cs, req.ID, frame)
		if err != nil {
			// roundTrip poisoned the connection; the next attempt redials.
			lastErr = err
			continue
		}
		if !resp.OK {
			if resp.Transient && attempt < attempts {
				lastErr = errors.New(resp.Error)
				continue
			}
			return resp, errors.New(resp.Error)
		}
		return resp, nil
	}
	if attempts == 1 {
		return nil, lastErr
	}
	return nil, fmt.Errorf("p4rt: %s failed after %d attempts: %w", req.Type, attempts, lastErr)
}

// roundTrip writes one framed request and parks until the reader
// goroutine delivers the matching response or the per-call deadline
// expires. Any failure — write error, timeout, reader-detected desync —
// poisons the connection: responses on one conn arrive in order, so a
// call abandoned mid-stream leaves every later in-flight call behind a
// frame nobody will consume.
func (c *Client) roundTrip(cs *connState, id uint64, frame []byte) (*Response, error) {
	ch, err := cs.enqueue(id)
	if err != nil {
		return nil, err
	}
	if _, err := cs.conn.Write(frame); err != nil {
		cs.fail(err)
		// fail delivered the error to ch; fall through to collect it.
	}
	var timeout <-chan time.Time
	if c.opts.CallTimeout > 0 {
		timer := time.NewTimer(c.opts.CallTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case res := <-ch:
		return res.resp, res.err
	case <-timeout:
		cs.fail(fmt.Errorf("p4rt: call timed out after %v", c.opts.CallTimeout))
		res := <-ch
		return res.resp, res.err
	}
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Type: MsgPing})
	return err
}

// InstallPhysical pre-installs a physical NF on the remote switch.
func (c *Client) InstallPhysical(stage int, t nf.Type, capacity int) error {
	_, err := c.call(&Request{Type: MsgInstallPhysical, Stage: stage, NFType: t.String(), Capacity: capacity})
	return err
}

// Allocate installs a tenant SFC using the switch's first-fit folding and
// returns the landing placements and pass count.
func (c *Client) Allocate(sfc *vswitch.SFC) ([]vswitch.Placement, int, error) {
	resp, err := c.call(&Request{Type: MsgAllocate, SFC: FromSFC(sfc)})
	if err != nil {
		return nil, 0, err
	}
	pls, err := toPlacements(resp.Placements)
	return pls, resp.Passes, err
}

// AllocateAt installs a tenant SFC at control-plane-chosen placements.
func (c *Client) AllocateAt(sfc *vswitch.SFC, placements []vswitch.Placement) (int, error) {
	resp, err := c.call(&Request{
		Type: MsgAllocateAt, SFC: FromSFC(sfc), Placements: fromPlacements(placements),
	})
	if err != nil {
		return 0, err
	}
	return resp.Passes, nil
}

// Deallocate removes a tenant's rules.
func (c *Client) Deallocate(tenant uint32) error {
	_, err := c.call(&Request{Type: MsgDeallocate, Tenant: tenant})
	return err
}

// Batch executes an ordered list of mutating sub-ops in one frame and one
// server dispatch, all-or-nothing: on success every sub-op applied and the
// per-op results are returned; on error none did (the server rolled back).
// Build ops with OpInstallPhysical/OpAllocate/OpAllocateAt/OpDeallocate.
func (c *Client) Batch(ops []BatchOp) ([]BatchResult, error) {
	resp, err := c.call(&Request{Type: MsgBatch, Ops: ops})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// GoBatch is the async form of Batch, pipelined behind Go/Flush. A nil
// done routes errors to the next Flush, like Go.
func (c *Client) GoBatch(ops []BatchOp, done func([]BatchResult, error)) {
	if done == nil {
		c.Go(&Request{Type: MsgBatch, Ops: ops}, nil)
		return
	}
	c.Go(&Request{Type: MsgBatch, Ops: ops}, func(resp *Response, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(resp.Results, nil)
	})
}

// Layout reads the per-stage physical NF names.
func (c *Client) Layout() ([][]string, error) {
	resp, err := c.call(&Request{Type: MsgLayout})
	if err != nil {
		return nil, err
	}
	return resp.Layout, nil
}

// DumpState reads back the switch's full installed configuration
// (physical NFs and tenant allocations) for reconciliation. Read-only:
// retried like Layout/Stats.
func (c *Client) DumpState() (*StateDump, error) {
	resp, err := c.call(&Request{Type: MsgDumpState})
	if err != nil {
		return nil, err
	}
	if resp.State == nil {
		// A switch with nothing installed legitimately dumps empty.
		return &StateDump{}, nil
	}
	return resp.State, nil
}

// Stats reads switch resource counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.call(&Request{Type: MsgStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, fmt.Errorf("p4rt: stats missing from response")
	}
	return *resp.Stats, nil
}

// Inject sends one wire-format packet through the remote pipeline at the
// given simulated timestamp and returns the processing outcome.
func (c *Client) Inject(wire []byte, nowNs float64) (InjectResult, error) {
	resp, err := c.call(&Request{Type: MsgInject, Wire: wire, NowNs: nowNs})
	if err != nil {
		return InjectResult{}, err
	}
	if resp.Inject == nil {
		return InjectResult{}, fmt.Errorf("p4rt: inject result missing")
	}
	return *resp.Inject, nil
}

// GoInject is Inject issued asynchronously (see Go): the round trip is
// pipelined with other in-flight requests on the shared connection, and
// done receives the outcome. Use Flush to wait for completion.
func (c *Client) GoInject(wire []byte, nowNs float64, done func(InjectResult, error)) {
	c.Go(&Request{Type: MsgInject, Wire: wire, NowNs: nowNs}, func(resp *Response, err error) {
		if err != nil {
			done(InjectResult{}, err)
			return
		}
		if resp.Inject == nil {
			done(InjectResult{}, fmt.Errorf("p4rt: inject result missing"))
			return
		}
		done(*resp.Inject, nil)
	})
}

// VSwitchTarget adapts a vswitch.VSwitch to the server Target interface.
type VSwitchTarget struct {
	V *vswitch.VSwitch
}

// InstallPhysical implements Target.
func (t *VSwitchTarget) InstallPhysical(stage int, typ nf.Type, capacity int) error {
	_, err := t.V.InstallPhysicalNF(stage, typ, capacity)
	return err
}

// Allocate implements Target.
func (t *VSwitchTarget) Allocate(spec *SFCSpec) ([]PlacementSpec, int, error) {
	sfc, err := spec.ToSFC()
	if err != nil {
		return nil, 0, err
	}
	alloc, err := t.V.Allocate(sfc)
	if err != nil {
		return nil, 0, err
	}
	return fromPlacements(alloc.Placements), alloc.Passes, nil
}

// AllocateAt implements Target.
func (t *VSwitchTarget) AllocateAt(spec *SFCSpec, placements []PlacementSpec) (int, error) {
	sfc, err := spec.ToSFC()
	if err != nil {
		return 0, err
	}
	pls, err := toPlacements(placements)
	if err != nil {
		return 0, err
	}
	alloc, err := t.V.AllocateAt(sfc, pls)
	if err != nil {
		return 0, err
	}
	return alloc.Passes, nil
}

// Deallocate implements Target.
func (t *VSwitchTarget) Deallocate(tenant uint32) error {
	return t.V.Deallocate(tenant)
}

// RemovePhysical implements PhysicalRemover (batch rollback of an
// install_physical sub-op).
func (t *VSwitchTarget) RemovePhysical(stage int, typ nf.Type) error {
	return t.V.RemovePhysicalNF(stage, typ)
}

// TenantSnapshot implements TenantSnapshotter: capture a live tenant's
// chain and placements so a batched deallocate can be undone. The restore
// closure holds the native chain spec and placements directly — no
// wire-form round trip, since the undo is discarded on batch success.
func (t *VSwitchTarget) TenantSnapshot(tenant uint32) (func() error, error) {
	alloc := t.V.Allocations(tenant)
	if alloc == nil {
		return nil, fmt.Errorf("p4rt: tenant %d has no allocation to snapshot", tenant)
	}
	if alloc.Spec == nil {
		return nil, fmt.Errorf("p4rt: tenant %d allocation carries no chain spec", tenant)
	}
	spec, pls := alloc.Spec, alloc.Placements
	return func() error {
		_, err := t.V.AllocateAt(spec, pls)
		return err
	}, nil
}

// AllocateBatch implements BatchAllocator: realize a run of allocate_at
// sub-ops in one pass over the data plane (vswitch.AllocateBatch).
func (t *VSwitchTarget) AllocateBatch(items []BatchAllocItem) ([]int, error) {
	batch := make([]vswitch.BatchItem, len(items))
	for i, it := range items {
		sfc, err := it.SFC.ToSFC()
		if err != nil {
			return nil, err
		}
		pls, err := toPlacements(it.Placements)
		if err != nil {
			return nil, err
		}
		batch[i] = vswitch.BatchItem{SFC: sfc, Placements: pls}
	}
	allocs, err := t.V.AllocateBatch(batch)
	if err != nil {
		return nil, err
	}
	passes := make([]int, len(allocs))
	for i, a := range allocs {
		passes[i] = a.Passes
	}
	return passes, nil
}

// DumpState implements StateDumper: export the switch's installed
// configuration in canonical order.
func (t *VSwitchTarget) DumpState() (*StateDump, error) {
	return FromState(t.V.ExportState()), nil
}

// Layout implements Target.
func (t *VSwitchTarget) Layout() [][]string {
	raw := t.V.Layout()
	out := make([][]string, len(raw))
	for s, types := range raw {
		for _, typ := range types {
			out[s] = append(out[s], typ.String())
		}
	}
	return out
}

// Inject implements Target: parse the wire bytes, run the pipeline, and
// deparse the egress packet.
func (t *VSwitchTarget) Inject(wire []byte, nowNs float64) (InjectResult, error) {
	p, err := packet.Parse(wire, false)
	if err != nil {
		return InjectResult{}, err
	}
	res := t.V.Process(p, nowNs)
	out := InjectResult{
		LatencyNs:     res.LatencyNs,
		Passes:        res.Passes,
		Dropped:       res.Dropped,
		EgressPort:    res.EgressPort,
		TablesApplied: res.TablesApplied,
	}
	if !res.Dropped {
		out.Wire = packet.Deparse(p)
	}
	return out, nil
}

// Stats implements Target.
func (t *VSwitchTarget) Stats() Stats {
	return Stats{
		Stages:        t.V.Pipe.Cfg.Stages,
		BlocksUsed:    t.V.Pipe.BlocksUsed(),
		EntriesUsed:   t.V.Pipe.EntriesUsed(),
		BandwidthGbps: t.V.BandwidthUsed(),
		Tenants:       t.V.Tenants(),
		Processed:     t.V.Pipe.Processed(),
		Recirculated:  t.V.Pipe.Recirculated(),
	}
}
