package p4rt

// Provisioning fast-path benchmark (scripts/check.sh bench): arrivals/sec
// through the southbound API over real loopback TCP, per-op serial vs
// batched + pipelined. The batched path must beat serial by >= 3x
// (BENCH_provision.json gate).

import (
	"testing"
	"time"

	"sfp/internal/nf"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

const (
	benchTenants   = 32 // arrivals per iteration
	benchBatchSize = 16 // sub-ops per MsgBatch frame on the batched path
)

// benchSwitch serves a fresh 3-stage switch with pre-installed physical
// NFs over loopback TCP and returns a connected client.
func benchSwitch(b *testing.B) (*Client, func()) {
	b.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 3
	cfg.CapacityGbps = 1e9 // admission never the bottleneck here
	v := vswitch.New(pipeline.New(cfg))
	if _, err := v.InstallPhysicalNF(0, nf.Firewall, benchTenants*4); err != nil {
		b.Fatal(err)
	}
	if _, err := v.InstallPhysicalNF(1, nf.Router, benchTenants*4); err != nil {
		b.Fatal(err)
	}
	srv := NewServer(&VSwitchTarget{V: v})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	c, err := DialOptions(addr, ClientOptions{DialTimeout: 2 * time.Second})
	if err != nil {
		srv.Close()
		b.Fatal(err)
	}
	return c, func() {
		c.Close()
		srv.Close()
	}
}

// BenchmarkProvisionSerial is the baseline: one synchronous round trip
// per southbound op (the pre-batching client behavior).
func BenchmarkProvisionSerial(b *testing.B) {
	c, cleanup := benchSwitch(b)
	defer cleanup()
	pls := batchPlacements()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for tenant := uint32(1); tenant <= benchTenants; tenant++ {
			if _, err := c.AllocateAt(wireSFC(tenant), pls); err != nil {
				b.Fatal(err)
			}
		}
		for tenant := uint32(1); tenant <= benchTenants; tenant++ {
			if err := c.Deallocate(tenant); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	reportProvisionMetrics(b)
}

// BenchmarkProvisionBatched is the fast path: sub-ops coalesced into
// MsgBatch frames, frames pipelined on one connection via GoBatch/Flush.
func BenchmarkProvisionBatched(b *testing.B) {
	c, cleanup := benchSwitch(b)
	defer cleanup()
	pls := batchPlacements()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for start := uint32(1); start <= benchTenants; start += benchBatchSize {
			ops := make([]BatchOp, 0, benchBatchSize)
			for tenant := start; tenant < start+benchBatchSize; tenant++ {
				ops = append(ops, OpAllocateAt(wireSFC(tenant), pls))
			}
			c.GoBatch(ops, nil)
		}
		if err := c.Flush(); err != nil {
			b.Fatal(err)
		}
		for start := uint32(1); start <= benchTenants; start += benchBatchSize {
			ops := make([]BatchOp, 0, benchBatchSize)
			for tenant := start; tenant < start+benchBatchSize; tenant++ {
				ops = append(ops, OpDeallocate(tenant))
			}
			c.GoBatch(ops, nil)
		}
		if err := c.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportProvisionMetrics(b)
}

// reportProvisionMetrics derives arrivals/sec and southbound ops/sec
// (allocate + deallocate both cross the wire) from the timed section.
func reportProvisionMetrics(b *testing.B) {
	elapsed := b.Elapsed().Seconds()
	if elapsed <= 0 {
		return
	}
	arrivals := float64(b.N) * benchTenants
	b.ReportMetric(arrivals/elapsed, "arrivals/s")
	b.ReportMetric(2*arrivals/elapsed, "sbops/s")
}
