package p4rt

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"sfp/internal/nf"
)

// randSFCSpec draws an arbitrary spec, including awkward values (zeroes,
// max uints, empty slices, escape-needing strings).
func randSFCSpec(rng *rand.Rand) *SFCSpec {
	actions := []string{"permit", "fwd", "dnat", `we"ird\act`, "uni·code", ""}
	s := &SFCSpec{
		Tenant:        rng.Uint32(),
		BandwidthGbps: []float64{0, 1.5, 10, 0.0001, 123456.789}[rng.Intn(5)],
	}
	for i := 0; i < rng.Intn(4); i++ {
		n := NFSpec{Type: []string{"firewall", "router", "lb", ""}[rng.Intn(4)]}
		for j := 0; j < rng.Intn(3); j++ {
			r := RuleSpec{
				Priority: rng.Intn(100) - 50,
				Action:   actions[rng.Intn(len(actions))],
			}
			for k := 0; k < rng.Intn(3); k++ {
				r.Matches = append(r.Matches, MatchSpec{
					Value:     rng.Uint64(),
					Mask:      rng.Uint64(),
					PrefixLen: rng.Intn(33),
					Lo:        rng.Uint64(),
					Hi:        ^uint64(0),
				})
			}
			for k := 0; k < rng.Intn(3); k++ {
				r.Params = append(r.Params, rng.Uint64())
			}
			n.Rules = append(n.Rules, r)
		}
		s.NFs = append(s.NFs, n)
	}
	return s
}

func TestSFCSpecCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		orig := randSFCSpec(rng)
		raw, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var back SFCSpec
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("case %d: unmarshal %s: %v", i, raw, err)
		}
		if !reflect.DeepEqual(orig, &back) {
			t.Fatalf("case %d: round trip mismatch:\n orig %+v\n back %+v\n wire %s", i, orig, &back, raw)
		}
	}
}

func TestPlacementSpecCodecRoundTrip(t *testing.T) {
	specs := []PlacementSpec{
		{},
		{NFIndex: 3, Type: "firewall", Stage: 2, Pass: 1},
		{NFIndex: 0, Type: `odd"name`, Stage: 11, Pass: 3},
	}
	raw, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	var back []PlacementSpec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
	if !reflect.DeepEqual(specs, back) {
		t.Fatalf("round trip mismatch:\n orig %+v\n back %+v\n wire %s", specs, back, raw)
	}
}

// TestRequestCodecRoundTrip exercises the hand-rolled envelope encoder
// and decoder across every field, including batch sub-ops.
func TestRequestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	reqs := []*Request{
		{Type: MsgPing, ID: 1, Client: 2},
		{Type: MsgInstallPhysical, ID: 9, Client: 3, Stage: 2, NFType: "firewall", Capacity: 64},
		{Type: MsgAllocate, ID: 10, Client: 3, SFC: randSFCSpec(rng)},
		{Type: MsgAllocateAt, ID: 11, Client: 3, SFC: randSFCSpec(rng),
			Placements: []PlacementSpec{{NFIndex: 0, Type: "router", Stage: 1, Pass: 0}}},
		{Type: MsgDeallocate, ID: 12, Client: 3, Tenant: 77},
		{Type: MsgInject, ID: 13, Client: 3, Wire: []byte{0, 1, 2, 0xff, 0x80}, NowNs: 1234.5},
		{Type: MsgBatch, ID: 14, Client: 3, Ops: []BatchOp{
			OpInstallPhysical(0, nf.Firewall, 100),
			{Type: MsgAllocateAt, SFC: randSFCSpec(rng),
				Placements: []PlacementSpec{{NFIndex: 1, Type: "lb", Stage: 2, Pass: 1}}},
			OpDeallocate(5),
		}},
	}
	for i, orig := range reqs {
		raw, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var back Request
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("case %d: unmarshal %s: %v", i, raw, err)
		}
		if !reflect.DeepEqual(orig, &back) {
			t.Fatalf("case %d: round trip mismatch:\n orig %+v\n back %+v\n wire %s", i, orig, &back, raw)
		}
	}
}

// TestResponseCodecRoundTrip covers every response field, including the
// nested stats/inject objects and batch results.
func TestResponseCodecRoundTrip(t *testing.T) {
	resps := []*Response{
		{OK: true, ID: 4},
		{OK: false, ID: 5, Error: `bad "thing"`, Transient: true},
		{OK: true, ID: 6, Placements: []PlacementSpec{{NFIndex: 2, Type: "nat", Stage: 0, Pass: 2}}, Passes: 3},
		{OK: true, ID: 7, Layout: [][]string{{"firewall", "router"}, {}, {"lb"}}},
		{OK: true, ID: 8, Stats: &Stats{Stages: 4, BlocksUsed: 3, EntriesUsed: 99,
			BandwidthGbps: 12.5, Tenants: 7, Processed: 1 << 40, Recirculated: 17}},
		{OK: true, ID: 9, Inject: &InjectResult{LatencyNs: 420.5, Passes: 2, Dropped: true,
			EgressPort: 65535, TablesApplied: 6, Wire: []byte{9, 8, 7}}},
		{OK: true, ID: 10, Results: []BatchResult{
			{OK: true, Passes: 1},
			{OK: false, Error: "nope"},
			{OK: true, Placements: []PlacementSpec{{NFIndex: 0, Type: "firewall", Stage: 0, Pass: 0}}, Passes: 2},
		}},
	}
	for i, orig := range resps {
		raw, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var back Response
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("case %d: unmarshal %s: %v", i, raw, err)
		}
		if !reflect.DeepEqual(orig, &back) {
			t.Fatalf("case %d: round trip mismatch:\n orig %+v\n back %+v\n wire %s", i, orig, &back, raw)
		}
	}
}

// TestEnvelopeDecodeSkipsUnknownFields: a newer peer may send fields this
// build does not know; the decoder must skip them, not desynchronize.
func TestEnvelopeDecodeSkipsUnknownFields(t *testing.T) {
	wire := []byte(`{"type":"ping","future":{"a":[1,2,{"b":"c"}],"d":null},"id":3,"x":"y\n","z":-1.5e3}`)
	var req Request
	if err := json.Unmarshal(wire, &req); err != nil {
		t.Fatal(err)
	}
	if req.Type != MsgPing || req.ID != 3 {
		t.Fatalf("decoded %+v", req)
	}
	rwire := []byte(`{"ok":true,"id":9,"unknown":[[]],"passes":2}`)
	var resp Response
	if err := json.Unmarshal(rwire, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.ID != 9 || resp.Passes != 2 {
		t.Fatalf("decoded %+v", resp)
	}
}

// TestCodecToleratesWhitespace: foreign controllers may pretty-print.
func TestCodecToleratesWhitespace(t *testing.T) {
	wire := []byte(" [ 7 , 2.5 , [ [ \"firewall\" , [ [ 1 , [ [0,0,0,0,0] ] , \"permit\" , [ ] ] ] ] ] ] ")
	var s SFCSpec
	if err := json.Unmarshal(wire, &s); err != nil {
		t.Fatal(err)
	}
	if s.Tenant != 7 || s.BandwidthGbps != 2.5 || len(s.NFs) != 1 || len(s.NFs[0].Rules) != 1 {
		t.Fatalf("decoded %+v", s)
	}
	if s.NFs[0].Rules[0].Action != "permit" || len(s.NFs[0].Rules[0].Matches) != 1 {
		t.Fatalf("decoded rule %+v", s.NFs[0].Rules[0])
	}
}
