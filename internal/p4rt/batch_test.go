package p4rt

import (
	"strings"
	"sync"
	"testing"

	"sfp/internal/nf"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

// batchPlacements is the one-pass landing spot for wireSFC on the
// 3-stage startServer pipeline (firewall stage 0, router stage 1).
func batchPlacements() []vswitch.Placement {
	return []vswitch.Placement{
		{NFIndex: 0, Type: nf.Firewall, Stage: 0, Pass: 0},
		{NFIndex: 1, Type: nf.Router, Stage: 1, Pass: 0},
	}
}

func TestBatchAppliesAllOps(t *testing.T) {
	c, v, cleanup := startServer(t)
	defer cleanup()

	pls := batchPlacements()
	results, err := c.Batch([]BatchOp{
		OpInstallPhysical(0, nf.Firewall, 100),
		OpInstallPhysical(1, nf.Router, 100),
		OpAllocateAt(wireSFC(1), pls), // consecutive run: exercises the
		OpAllocateAt(wireSFC(2), pls), // grouped AllocateBatch fast path
		OpDeallocate(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	for i, r := range results {
		if !r.OK {
			t.Errorf("op %d failed: %s", i, r.Error)
		}
	}
	if results[2].Passes != 1 {
		t.Errorf("allocate_at result = %d passes, want 1", results[2].Passes)
	}
	if v.Tenants() != 1 {
		t.Errorf("tenants = %d, want 1 (tenant 2 stays, tenant 1 deallocated)", v.Tenants())
	}
	if v.Allocations(2) == nil || v.Allocations(1) != nil {
		t.Error("wrong tenant survived the batch")
	}
}

func TestBatchAllOrNothingRollback(t *testing.T) {
	c, v, cleanup := startServer(t)
	defer cleanup()
	baseEntries := v.Pipe.EntriesUsed()

	pls := batchPlacements()
	// The last op allocates tenant 1 a second time — a hard failure after
	// physical installs and a grouped allocate run already applied.
	_, err := c.Batch([]BatchOp{
		OpInstallPhysical(0, nf.Firewall, 100),
		OpInstallPhysical(1, nf.Router, 100),
		OpAllocateAt(wireSFC(1), pls),
		OpAllocateAt(wireSFC(2), pls),
		OpAllocateAt(wireSFC(1), pls),
	})
	if err == nil {
		t.Fatal("failing batch reported success")
	}
	// The three allocate_at ops run as one grouped batch (ops 2-4); a
	// failure inside it is attributed to the run's first op, with the
	// cause naming the exact offending items.
	if !strings.Contains(err.Error(), "op 2") || !strings.Contains(err.Error(), "tenant 1") {
		t.Errorf("error does not locate the failure: %v", err)
	}
	// Nothing survived: tenants drained, physical NFs removed.
	if v.Tenants() != 0 {
		t.Errorf("tenants = %d after rollback, want 0", v.Tenants())
	}
	if v.FindPhysical(0, nf.Firewall) != nil || v.FindPhysical(1, nf.Router) != nil {
		t.Error("physical NFs survived rollback")
	}
	if got := v.Pipe.EntriesUsed(); got != baseEntries {
		t.Errorf("entries = %d after rollback, want %d", got, baseEntries)
	}
	// The same switch still accepts a clean batch afterwards.
	if _, err := c.Batch([]BatchOp{
		OpInstallPhysical(0, nf.Firewall, 100),
		OpInstallPhysical(1, nf.Router, 100),
		OpAllocateAt(wireSFC(1), pls),
	}); err != nil {
		t.Fatalf("clean batch after rollback: %v", err)
	}
}

func TestBatchDeallocateUndoRestoresTenant(t *testing.T) {
	c, v, cleanup := startServer(t)
	defer cleanup()
	if err := c.InstallPhysical(0, nf.Firewall, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallPhysical(1, nf.Router, 100); err != nil {
		t.Fatal(err)
	}
	pls := batchPlacements()
	if _, err := c.AllocateAt(wireSFC(1), pls); err != nil {
		t.Fatal(err)
	}
	before := v.Pipe.EntriesUsed()

	// Deallocate applies, then the duplicate install fails the batch: the
	// undo must re-install tenant 1 at its original placements.
	_, err := c.Batch([]BatchOp{
		OpDeallocate(1),
		OpInstallPhysical(0, nf.Firewall, 100),
	})
	if err == nil {
		t.Fatal("failing batch reported success")
	}
	if v.Allocations(1) == nil {
		t.Fatal("tenant 1 not restored by rollback")
	}
	if got := v.Pipe.EntriesUsed(); got != before {
		t.Errorf("entries = %d after rollback, want %d", got, before)
	}
}

func TestBatchRejectsUnbatchableOps(t *testing.T) {
	c, v, cleanup := startServer(t)
	defer cleanup()
	if _, err := c.Batch(nil); err == nil || !strings.Contains(err.Error(), "no sub-ops") {
		t.Errorf("empty batch: %v", err)
	}
	if _, err := c.Batch([]BatchOp{{Type: MsgPing}}); err == nil || !strings.Contains(err.Error(), "not batchable") {
		t.Errorf("ping-in-batch: %v", err)
	}
	if v.Tenants() != 0 {
		t.Error("rejected batch touched the switch")
	}
}

// batchCountingTarget wraps the concrete VSwitchTarget (keeping its
// optional batch/rollback interfaces) and counts executed sub-ops.
type batchCountingTarget struct {
	*VSwitchTarget
	mu       sync.Mutex
	installs int
	batches  int
}

func (b *batchCountingTarget) InstallPhysical(stage int, t nf.Type, capacity int) error {
	b.mu.Lock()
	b.installs++
	b.mu.Unlock()
	return b.VSwitchTarget.InstallPhysical(stage, t, capacity)
}

func (b *batchCountingTarget) AllocateBatch(items []BatchAllocItem) ([]int, error) {
	b.mu.Lock()
	b.batches++
	b.mu.Unlock()
	return b.VSwitchTarget.AllocateBatch(items)
}

// TestBatchDedupReplay is the retry-safety criterion for MsgBatch: a
// replayed batch (same client, same request ID — the retry after a lost
// response) is answered from the dedup window without re-executing any
// sub-op.
func TestBatchDedupReplay(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 3
	v := vswitch.New(pipeline.New(cfg))
	ct := &batchCountingTarget{VSwitchTarget: &VSwitchTarget{V: v}}
	srv := NewServer(ct)

	req := &Request{Type: MsgBatch, Client: 99, ID: 7, Ops: []BatchOp{
		OpInstallPhysical(0, nf.Firewall, 100),
		OpInstallPhysical(1, nf.Router, 100),
		OpAllocateAt(wireSFC(1), batchPlacements()),
		OpAllocateAt(wireSFC(2), batchPlacements()),
	}}
	first := srv.dispatch(req)
	if !first.OK {
		t.Fatal(first.Error)
	}
	replay := srv.dispatch(req)
	if !replay.OK {
		t.Fatalf("replayed batch re-executed and failed: %v", replay.Error)
	}
	if len(replay.Results) != len(first.Results) {
		t.Errorf("replay returned %d results, first %d", len(replay.Results), len(first.Results))
	}
	ct.mu.Lock()
	installs, batches := ct.installs, ct.batches
	ct.mu.Unlock()
	if installs != 2 || batches != 1 {
		t.Errorf("target executed installs=%d batches=%d, want 2 and 1 (no double-apply)", installs, batches)
	}
	if v.Tenants() != 2 {
		t.Errorf("tenants = %d, want 2", v.Tenants())
	}
}
