package p4rt

import (
	"math/rand"
	"testing"
	"time"

	"sfp/internal/model"
	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/pipeline"
	"sfp/internal/placement"
	"sfp/internal/traffic"
	"sfp/internal/vswitch"
)

// TestControlPlaneToDataPlane is the full-stack integration: the placement
// optimizer decides where chains go, the p4rt client installs physical NFs
// and tenant rules on a remote switch over TCP, and packets traverse with
// exactly the pass counts the model predicted.
func TestControlPlaneToDataPlane(t *testing.T) {
	// Remote switch.
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 4
	cfg.MaxPasses = 3
	v := vswitch.New(pipeline.New(cfg))
	srv := NewServer(&VSwitchTarget{V: v})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Synthesize tenant SFCs and solve the joint placement.
	rng := rand.New(rand.NewSource(99))
	chains := traffic.GenChains(rng, 4, traffic.ChainParams{MeanLen: 3, RuleMin: 5, RuleMax: 15})
	sfcs := make(map[int]*vswitch.SFC, len(chains))
	in := &model.Instance{
		Switch: model.SwitchConfig{
			Stages: cfg.Stages, BlocksPerStage: cfg.BlocksPerStage,
			EntriesPerBlock: cfg.EntriesPerBlock, CapacityGbps: cfg.CapacityGbps,
		},
		NumTypes: nf.TypeCount,
		Recirc:   cfg.MaxPasses - 1,
	}
	for _, c := range chains {
		sfc := traffic.ToSFC(rng, c, 15)
		sfcs[c.ID] = sfc
		mc := &model.Chain{ID: c.ID, BandwidthGbps: c.BandwidthGbps}
		for _, cfgNF := range sfc.NFs {
			mc.NFs = append(mc.NFs, model.ChainNF{Type: int(cfgNF.Type), Rules: len(cfgNF.Rules)})
		}
		in.Chains = append(in.Chains, mc)
	}
	res, err := placement.SolveGreedy(in, placement.GreedyOptions{Consolidate: true})
	if err != nil {
		t.Fatal(err)
	}

	// Install physical NFs over the wire, sized generously (+1 entry per
	// box for pass-tail catch-alls).
	S := cfg.Stages
	for i := range res.Assignment.X {
		for s, on := range res.Assignment.X[i] {
			if on {
				if err := cli.InstallPhysical(s, nf.Type(i+1), 200); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Install each deployed chain at the optimizer's placements.
	installed := 0
	for l, mc := range in.Chains {
		if !res.Assignment.Deployed(l) {
			continue
		}
		pls := make([]vswitch.Placement, len(res.Assignment.Stages[l]))
		for j, k := range res.Assignment.Stages[l] {
			pls[j] = vswitch.Placement{NFIndex: j, Type: nf.Type(mc.NFs[j].Type), Stage: k % S, Pass: k / S}
		}
		passes, err := cli.AllocateAt(sfcs[mc.ID], pls)
		if err != nil {
			t.Fatalf("chain %d: %v", mc.ID, err)
		}
		if want := res.Assignment.Passes(l, S); passes != want {
			t.Errorf("chain %d: switch reports %d passes, model %d", mc.ID, passes, want)
		}
		installed++
	}
	if installed == 0 {
		t.Fatal("optimizer deployed nothing")
	}

	// Stats over the wire agree with the model.
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenants != installed {
		t.Errorf("switch tenants = %d, want %d", st.Tenants, installed)
	}
	m := model.ComputeMetrics(in, res.Assignment, true)
	if st.BandwidthGbps < m.BackplaneGbps-1e-6 || st.BandwidthGbps > m.BackplaneGbps+1e-6 {
		t.Errorf("switch bandwidth %v, model backplane %v", st.BandwidthGbps, m.BackplaneGbps)
	}

	// Packets traverse with the modeled pass counts.
	for l, mc := range in.Chains {
		if !res.Assignment.Deployed(l) {
			continue
		}
		p := packet.NewBuilder().
			WithTenant(uint32(mc.ID)).
			WithIPv4(packet.IPv4Addr(10, 0, 0, 1), packet.IPv4Addr(10, 0, 0, 2)).
			WithTCP(1234, 80).
			Build()
		got := v.Process(p, 0)
		if want := res.Assignment.Passes(l, S); got.Passes != want {
			t.Errorf("chain %d packet: %d passes, want %d", mc.ID, got.Passes, want)
		}
	}
}
