// Package p4rt is SFP's controller↔switch control-plane API — a compact,
// JSON-over-TCP stand-in for P4Runtime. The switch side (Server) fronts a
// vswitch.VSwitch; the controller side (Client) installs physical NFs,
// allocates and deallocates tenant SFCs, and reads resource counters. The
// protocol is length-delimited JSON frames over a single TCP connection;
// requests are pipelined (many in flight per connection, matched to their
// responses by an echoed request ID) and may be batched (MsgBatch carries
// an ordered list of mutating sub-ops executed all-or-nothing).
package p4rt

import (
	"encoding/json"
	"errors"
	"fmt"

	"sfp/internal/nf"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

// ErrUnavailable marks a transient target failure: the request was NOT
// executed and may be retried safely. Targets (or decorators such as
// faultnet.FlakyTarget) wrap it; the server translates it to
// Response.Transient so clients know the retry is safe.
var ErrUnavailable = errors.New("p4rt: target temporarily unavailable")

// MsgType enumerates the RPCs.
type MsgType string

// RPC names.
const (
	MsgInstallPhysical MsgType = "install_physical"
	MsgAllocate        MsgType = "allocate"
	MsgAllocateAt      MsgType = "allocate_at"
	MsgDeallocate      MsgType = "deallocate"
	MsgLayout          MsgType = "layout"
	MsgStats           MsgType = "stats"
	// MsgDumpState reads back the switch's full installed configuration
	// (physical NFs + tenant allocations) for controller-side
	// reconciliation. Read-only: same retry class as Layout/Stats.
	MsgDumpState MsgType = "dump_state"
	MsgPing            MsgType = "ping"
	MsgInject          MsgType = "inject"
	// MsgBatch carries an ordered list of mutating sub-ops executed
	// server-side under one dispatch-lock acquisition with all-or-nothing
	// semantics (see Server.executeBatch).
	MsgBatch MsgType = "batch"
)

// Request is one controller→switch message.
type Request struct {
	Type MsgType `json:"type"`
	// ID is a per-client monotonically increasing request ID. The server
	// echoes it in the response (desync detection) and, together with
	// Client, dedups replayed mutating requests so retries after a lost
	// response are no-ops. Zero means "legacy client, no tracking".
	ID uint64 `json:"id,omitempty"`
	// Client identifies the issuing client across reconnects (random,
	// chosen at Dial). Zero disables dedup for this request.
	Client uint64 `json:"client,omitempty"`
	// InstallPhysical
	Stage    int    `json:"stage,omitempty"`
	NFType   string `json:"nf_type,omitempty"`
	Capacity int    `json:"capacity,omitempty"`
	// Allocate / AllocateAt / Deallocate
	SFC        *SFCSpec        `json:"sfc,omitempty"`
	Tenant     uint32          `json:"tenant,omitempty"`
	Placements []PlacementSpec `json:"placements,omitempty"`
	// Inject: a wire-format packet (the switch parses it, runs the
	// pipeline, and reports the outcome) plus the simulated timestamp.
	Wire  []byte  `json:"wire,omitempty"`
	NowNs float64 `json:"now_ns,omitempty"`
	// Batch: the ordered sub-operations of a MsgBatch request.
	Ops []BatchOp `json:"ops,omitempty"`
}

// BatchOp is one sub-operation of a MsgBatch request. Type must be one of
// the mutating RPCs (install_physical, allocate, allocate_at, deallocate);
// the populated fields mirror the stand-alone Request for that type.
type BatchOp struct {
	Type       MsgType         `json:"type"`
	Stage      int             `json:"stage,omitempty"`
	NFType     string          `json:"nf_type,omitempty"`
	Capacity   int             `json:"capacity,omitempty"`
	SFC        *SFCSpec        `json:"sfc,omitempty"`
	Tenant     uint32          `json:"tenant,omitempty"`
	Placements []PlacementSpec `json:"placements,omitempty"`
}

// BatchResult is one sub-op's outcome within a successful batch response.
// Placements is populated only for allocate sub-ops (switch-side folding,
// where the caller does not know the landing spots); allocate_at results
// omit it — the caller supplied the placements, echoing them back would
// just bloat the response frame.
type BatchResult struct {
	OK         bool            `json:"ok"`
	Error      string          `json:"error,omitempty"`
	Placements []PlacementSpec `json:"placements,omitempty"`
	Passes     int             `json:"passes,omitempty"`
}

// OpInstallPhysical builds an install_physical sub-op.
func OpInstallPhysical(stage int, t nf.Type, capacity int) BatchOp {
	return BatchOp{Type: MsgInstallPhysical, Stage: stage, NFType: t.String(), Capacity: capacity}
}

// OpAllocate builds an allocate (switch-side folding) sub-op.
func OpAllocate(sfc *vswitch.SFC) BatchOp {
	return BatchOp{Type: MsgAllocate, SFC: FromSFC(sfc)}
}

// OpAllocateAt builds an allocate_at sub-op with explicit placements.
func OpAllocateAt(sfc *vswitch.SFC, placements []vswitch.Placement) BatchOp {
	return BatchOp{Type: MsgAllocateAt, SFC: FromSFC(sfc), Placements: fromPlacements(placements)}
}

// OpDeallocate builds a deallocate sub-op.
func OpDeallocate(tenant uint32) BatchOp {
	return BatchOp{Type: MsgDeallocate, Tenant: tenant}
}

// Response is one switch→controller message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// ID echoes the request ID so clients can detect a desynchronized
	// frame stream (e.g. a stale response left by a timed-out call).
	ID uint64 `json:"id,omitempty"`
	// Transient marks an error as retry-safe: the target reported it was
	// temporarily unavailable and did not execute the request.
	Transient bool `json:"transient,omitempty"`
	// Allocate*: where the SFC landed.
	Placements []PlacementSpec `json:"placements,omitempty"`
	Passes     int             `json:"passes,omitempty"`
	// Layout: per-stage NF type names.
	Layout [][]string `json:"layout,omitempty"`
	// Stats.
	Stats *Stats `json:"stats,omitempty"`
	// Inject: processing outcome and the egress packet bytes.
	Inject *InjectResult `json:"inject,omitempty"`
	// Batch: per-sub-op outcomes, one per Request.Ops entry, present only
	// when the whole batch applied (OK). On failure nothing was applied.
	Results []BatchResult `json:"results,omitempty"`
	// DumpState: the switch's full installed configuration.
	State *StateDump `json:"state,omitempty"`
}

// StateDump is the wire form of a switch's complete installed
// configuration: what the controller reconciles its intent against.
type StateDump struct {
	Physical []PhysicalDump `json:"physical,omitempty"`
	Tenants  []TenantDump   `json:"tenants,omitempty"`
}

// PhysicalDump is the wire form of one installed physical NF.
type PhysicalDump struct {
	Stage    int    `json:"stage"`
	Type     string `json:"type"`
	Capacity int    `json:"capacity"`
	Used     int    `json:"used"`
}

// TenantDump is the wire form of one live tenant allocation.
type TenantDump struct {
	SFC        *SFCSpec        `json:"sfc"`
	Placements []PlacementSpec `json:"placements"`
	Passes     int             `json:"passes,omitempty"`
}

// InjectResult reports what the pipeline did to an injected packet.
type InjectResult struct {
	LatencyNs     float64 `json:"latency_ns"`
	Passes        int     `json:"passes"`
	Dropped       bool    `json:"dropped"`
	EgressPort    uint16  `json:"egress_port"`
	TablesApplied int     `json:"tables_applied"`
	// Wire is the deparsed egress packet (empty when dropped).
	Wire []byte `json:"wire,omitempty"`
}

// SFCSpec is the wire form of a tenant SFC.
type SFCSpec struct {
	Tenant        uint32   `json:"tenant"`
	BandwidthGbps float64  `json:"bandwidth_gbps"`
	NFs           []NFSpec `json:"nfs"`
}

// NFSpec is the wire form of one logical NF.
type NFSpec struct {
	Type  string     `json:"type"`
	Rules []RuleSpec `json:"rules"`
}

// RuleSpec is the wire form of one tenant rule.
type RuleSpec struct {
	Priority int         `json:"priority,omitempty"`
	Matches  []MatchSpec `json:"matches"`
	Action   string      `json:"action"`
	Params   []uint64    `json:"params,omitempty"`
}

// MatchSpec is the wire form of one match field value.
type MatchSpec struct {
	Value     uint64 `json:"value,omitempty"`
	Mask      uint64 `json:"mask,omitempty"`
	PrefixLen int    `json:"prefix_len,omitempty"`
	Lo        uint64 `json:"lo,omitempty"`
	Hi        uint64 `json:"hi,omitempty"`
}

// PlacementSpec is the wire form of one box placement.
type PlacementSpec struct {
	NFIndex int    `json:"nf_index"`
	Type    string `json:"type"`
	Stage   int    `json:"stage"`
	Pass    int    `json:"pass"`
}

// Stats reports switch resource usage.
type Stats struct {
	Stages        int     `json:"stages"`
	BlocksUsed    int     `json:"blocks_used"`
	EntriesUsed   int     `json:"entries_used"`
	BandwidthGbps float64 `json:"bandwidth_gbps"`
	Tenants       int     `json:"tenants"`
	Processed     uint64  `json:"processed"`
	Recirculated  uint64  `json:"recirculated"`
}

// ToSFC converts the wire SFC to the vswitch form.
func (s *SFCSpec) ToSFC() (*vswitch.SFC, error) {
	out := &vswitch.SFC{Tenant: s.Tenant, BandwidthGbps: s.BandwidthGbps}
	out.NFs = make([]*nf.Config, 0, len(s.NFs))
	for i, n := range s.NFs {
		t, err := nf.ParseType(n.Type)
		if err != nil {
			return nil, fmt.Errorf("p4rt: NF %d: %w", i, err)
		}
		cfg := &nf.Config{Type: t, Rules: make([]nf.ConfigRule, 0, len(n.Rules))}
		for _, r := range n.Rules {
			matches := make([]pipeline.Match, len(r.Matches))
			for k, m := range r.Matches {
				matches[k] = pipeline.Match{Value: m.Value, Mask: m.Mask, PrefixLen: m.PrefixLen, Lo: m.Lo, Hi: m.Hi}
			}
			cfg.Rules = append(cfg.Rules, nf.ConfigRule{
				Priority: r.Priority, Matches: matches, Action: r.Action, Params: r.Params,
			})
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		out.NFs = append(out.NFs, cfg)
	}
	return out, nil
}

// FromSFC converts a vswitch SFC to the wire form.
func FromSFC(s *vswitch.SFC) *SFCSpec {
	spec := &SFCSpec{Tenant: s.Tenant, BandwidthGbps: s.BandwidthGbps}
	spec.NFs = make([]NFSpec, 0, len(s.NFs))
	for _, cfg := range s.NFs {
		n := NFSpec{Type: cfg.Type.String(), Rules: make([]RuleSpec, 0, len(cfg.Rules))}
		for _, r := range cfg.Rules {
			matches := make([]MatchSpec, len(r.Matches))
			for k, m := range r.Matches {
				matches[k] = MatchSpec{Value: m.Value, Mask: m.Mask, PrefixLen: m.PrefixLen, Lo: m.Lo, Hi: m.Hi}
			}
			n.Rules = append(n.Rules, RuleSpec{Priority: r.Priority, Matches: matches, Action: r.Action, Params: r.Params})
		}
		spec.NFs = append(spec.NFs, n)
	}
	return spec
}

// toPlacements converts wire placements to vswitch form.
func toPlacements(specs []PlacementSpec) ([]vswitch.Placement, error) {
	out := make([]vswitch.Placement, len(specs))
	for i, s := range specs {
		t, err := nf.ParseType(s.Type)
		if err != nil {
			return nil, err
		}
		out[i] = vswitch.Placement{NFIndex: s.NFIndex, Type: t, Stage: s.Stage, Pass: s.Pass}
	}
	return out, nil
}

// fromPlacements converts vswitch placements to wire form.
func fromPlacements(pls []vswitch.Placement) []PlacementSpec {
	out := make([]PlacementSpec, len(pls))
	for i, p := range pls {
		out[i] = PlacementSpec{NFIndex: p.NFIndex, Type: p.Type.String(), Stage: p.Stage, Pass: p.Pass}
	}
	return out
}

// FromState converts an exported switch state to the wire form.
func FromState(st *vswitch.State) *StateDump {
	d := &StateDump{}
	for _, p := range st.Physical {
		d.Physical = append(d.Physical, PhysicalDump{
			Stage: p.Stage, Type: p.Type.String(), Capacity: p.Capacity, Used: p.Used,
		})
	}
	for _, t := range st.Tenants {
		d.Tenants = append(d.Tenants, TenantDump{
			SFC:        FromSFC(t.Spec),
			Placements: fromPlacements(t.Placements),
			Passes:     t.Passes,
		})
	}
	return d
}

// ToState converts a wire state dump back to the vswitch form.
func (d *StateDump) ToState() (*vswitch.State, error) {
	st := &vswitch.State{}
	for i, p := range d.Physical {
		t, err := nf.ParseType(p.Type)
		if err != nil {
			return nil, fmt.Errorf("p4rt: state physical %d: %w", i, err)
		}
		st.Physical = append(st.Physical, vswitch.PhysicalState{
			Stage: p.Stage, Type: t, Capacity: p.Capacity, Used: p.Used,
		})
	}
	for i, td := range d.Tenants {
		if td.SFC == nil {
			return nil, fmt.Errorf("p4rt: state tenant %d: missing sfc", i)
		}
		sfc, err := td.SFC.ToSFC()
		if err != nil {
			return nil, fmt.Errorf("p4rt: state tenant %d: %w", i, err)
		}
		pls, err := toPlacements(td.Placements)
		if err != nil {
			return nil, fmt.Errorf("p4rt: state tenant %d: %w", i, err)
		}
		st.Tenants = append(st.Tenants, vswitch.TenantState{
			Spec:          sfc,
			Placements:    pls,
			Passes:        td.Passes,
			BandwidthGbps: sfc.BandwidthGbps,
		})
	}
	return st, nil
}

// marshal encodes any message as one JSON frame.
func marshal(v any) ([]byte, error) { return json.Marshal(v) }
