package p4rt

import (
	"testing"
	"time"

	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

func startServer(t *testing.T) (*Client, *vswitch.VSwitch, func()) {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 3
	v := vswitch.New(pipeline.New(cfg))
	srv := NewServer(&VSwitchTarget{V: v})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	return c, v, func() {
		c.Close()
		srv.Close()
	}
}

func wireSFC(tenant uint32) *vswitch.SFC {
	return &vswitch.SFC{
		Tenant:        tenant,
		BandwidthGbps: 10,
		NFs: []*nf.Config{
			{Type: nf.Firewall, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
				Action:  "permit",
			}}},
			{Type: nf.Router, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Prefix(uint64(packet.IPv4Addr(10, 0, 0, 0)), 8)},
				Action:  "fwd", Params: []uint64{7},
			}}},
		},
	}
}

func TestPing(t *testing.T) {
	c, _, cleanup := startServer(t)
	defer cleanup()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndLifecycle(t *testing.T) {
	c, v, cleanup := startServer(t)
	defer cleanup()

	// Install physical NFs remotely.
	if err := c.InstallPhysical(0, nf.Firewall, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallPhysical(1, nf.Router, 100); err != nil {
		t.Fatal(err)
	}
	// Duplicate install surfaces the server-side error.
	if err := c.InstallPhysical(0, nf.Firewall, 100); err == nil {
		t.Error("duplicate install accepted")
	}

	// Allocate a tenant chain.
	pls, passes, err := c.Allocate(wireSFC(5))
	if err != nil {
		t.Fatal(err)
	}
	if passes != 1 || len(pls) != 2 {
		t.Fatalf("passes=%d placements=%v", passes, pls)
	}

	// The rules really landed: a packet gets routed.
	p := packet.NewBuilder().WithTenant(5).WithIPv4(1, packet.IPv4Addr(10, 1, 2, 3)).WithTCP(1, 80).Build()
	v.Process(p, 0)
	if p.Meta.EgressPort != 7 {
		t.Errorf("egress = %d, want 7", p.Meta.EgressPort)
	}

	// Layout and stats reflect the state.
	layout, err := c.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if len(layout) != 3 || layout[0][0] != "firewall" || layout[1][0] != "router" {
		t.Errorf("layout = %v", layout)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenants != 1 || st.EntriesUsed != 2 || st.BandwidthGbps != 10 {
		t.Errorf("stats = %+v", st)
	}

	// Deallocate and confirm release.
	if err := c.Deallocate(5); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Stats()
	if st.Tenants != 0 || st.EntriesUsed != 0 {
		t.Errorf("stats after dealloc = %+v", st)
	}
	if err := c.Deallocate(5); err == nil {
		t.Error("double deallocate accepted")
	}
}

func TestAllocateAtRemote(t *testing.T) {
	c, _, cleanup := startServer(t)
	defer cleanup()
	if err := c.InstallPhysical(0, nf.Router, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallPhysical(2, nf.Firewall, 100); err != nil {
		t.Fatal(err)
	}
	sfc := wireSFC(9) // firewall then router: needs pass folding with this layout
	placements := []vswitch.Placement{
		{NFIndex: 0, Type: nf.Firewall, Stage: 2, Pass: 0},
		{NFIndex: 1, Type: nf.Router, Stage: 0, Pass: 1},
	}
	passes, err := c.AllocateAt(sfc, placements)
	if err != nil {
		t.Fatal(err)
	}
	if passes != 2 {
		t.Errorf("passes = %d, want 2", passes)
	}
}

func TestAllocateErrorsPropagate(t *testing.T) {
	c, _, cleanup := startServer(t)
	defer cleanup()
	// No physical NFs installed: allocation must fail cleanly.
	if _, _, err := c.Allocate(wireSFC(1)); err == nil {
		t.Error("allocation without physical NFs accepted")
	}
}

func TestSFCSpecRoundTrip(t *testing.T) {
	orig := wireSFC(3)
	spec := FromSFC(orig)
	back, err := spec.ToSFC()
	if err != nil {
		t.Fatal(err)
	}
	if back.Tenant != orig.Tenant || back.BandwidthGbps != orig.BandwidthGbps {
		t.Error("header fields lost")
	}
	if len(back.NFs) != len(orig.NFs) {
		t.Fatal("NF count lost")
	}
	for i := range back.NFs {
		if back.NFs[i].Type != orig.NFs[i].Type || len(back.NFs[i].Rules) != len(orig.NFs[i].Rules) {
			t.Errorf("NF %d mismatch", i)
		}
	}
	// Bad type name is rejected.
	spec.NFs[0].Type = "bogus"
	if _, err := spec.ToSFC(); err == nil {
		t.Error("bogus type accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	c1, _, cleanup := startServer(t)
	defer cleanup()
	if err := c1.InstallPhysical(0, nf.Firewall, 1000); err != nil {
		t.Fatal(err)
	}
	addr := c1.addr
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(tenant uint32) {
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			sfc := &vswitch.SFC{Tenant: tenant, BandwidthGbps: 1, NFs: []*nf.Config{
				{Type: nf.Firewall, Rules: []nf.ConfigRule{{
					Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
					Action:  "permit",
				}}},
			}}
			if _, _, err := c.Allocate(sfc); err != nil {
				done <- err
				return
			}
			done <- c.Deallocate(tenant)
		}(uint32(100 + i))
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestInjectOverWire(t *testing.T) {
	c, _, cleanup := startServer(t)
	defer cleanup()
	if err := c.InstallPhysical(0, nf.Firewall, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallPhysical(1, nf.Router, 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Allocate(wireSFC(12)); err != nil {
		t.Fatal(err)
	}
	// Tenant identification travels in the VLAN tag on the wire.
	p := packet.NewBuilder().
		WithVLAN(12).
		WithIPv4(packet.IPv4Addr(1, 2, 3, 4), packet.IPv4Addr(10, 1, 2, 3)).
		WithTCP(999, 80).
		WithWireLen(128).
		Build()
	res, err := c.Inject(packet.Deparse(p), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped || res.Passes != 1 || res.EgressPort != 7 {
		t.Fatalf("inject result: %+v", res)
	}
	if res.TablesApplied != 2 {
		t.Errorf("tables applied = %d, want 2", res.TablesApplied)
	}
	if res.LatencyNs <= 0 {
		t.Error("no latency reported")
	}
	// The egress packet parses and still carries the VLAN tag.
	out, err := packet.Parse(res.Wire, false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.HasVLAN || out.VLAN.VID != 12 {
		t.Errorf("egress packet lost tenant tag: %+v", out.VLAN)
	}
	// Garbage injection errors cleanly.
	if _, err := c.Inject([]byte{1, 2, 3}, 0); err == nil {
		t.Error("truncated injection accepted")
	}
}
