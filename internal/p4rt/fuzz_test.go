package p4rt

import (
	"bytes"
	"testing"
)

// The fuzz targets assert two properties of the hand-rolled jscan
// decoders: they never panic on arbitrary bytes (hostile peers control
// the full frame body), and a successfully decoded message canonicalizes
// — encode(decode(b)) is a fixed point, so decode(encode(x)) re-encodes
// to identical bytes. Seed corpora live in testdata/fuzz/<target>/.

func fuzzSeedsRequest(f *testing.F) {
	seeds := []*Request{
		{Type: MsgPing, ID: 1, Client: 42},
		{Type: MsgInstallPhysical, ID: 2, Client: 42, Stage: 3, NFType: "firewall", Capacity: 128},
		{Type: MsgAllocateAt, ID: 3, Client: 42,
			SFC: &SFCSpec{Tenant: 7, BandwidthGbps: 2.5, NFs: []NFSpec{{
				Type: "router",
				Rules: []RuleSpec{{
					Priority: 5,
					Matches:  []MatchSpec{{Value: 10, Mask: 255}, {Lo: 1, Hi: 65535}},
					Action:   "fwd", Params: []uint64{9, 1 << 40},
				}},
			}}},
			Placements: []PlacementSpec{{NFIndex: 0, Type: "router", Stage: 1, Pass: 0}},
		},
		{Type: MsgDeallocate, ID: 4, Client: 42, Tenant: 99},
		{Type: MsgInject, ID: 5, Client: 42, Wire: []byte{0xde, 0xad, 0xbe, 0xef}, NowNs: 123.5},
		{Type: MsgBatch, ID: 6, Client: 42, Ops: []BatchOp{
			OpInstallPhysical(0, 0, 64),
			{Type: MsgAllocateAt, SFC: &SFCSpec{Tenant: 8, NFs: []NFSpec{{Type: "lb"}}},
				Placements: []PlacementSpec{{Type: "lb", Stage: 2, Pass: 1}}},
			OpDeallocate(3),
		}},
	}
	for _, r := range seeds {
		f.Add(r.appendJSON(nil))
	}
	// Adversarial shapes: unknown fields, escapes, duplicate keys,
	// truncations, and deep nesting (the stack-overflow regression).
	f.Add([]byte(`{"type":"ping","future_field":{"a":[1,2,{"b":null}]}}`))
	f.Add([]byte(`{"type":"ping","nf_type":"\n\\\""}`))
	f.Add([]byte(`{"type":"ping","type":"stats"}`))
	f.Add([]byte(`{"type":"allocate","sfc":[1,2.5,[["fw",[[0,[[1,2,3,4,5]],"a",[1]]]]]]`))
	f.Add([]byte(`{"x":` + deepNest(200) + `}`))
}

func deepNest(n int) string {
	return string(bytes.Repeat([]byte{'['}, n)) + string(bytes.Repeat([]byte{']'}, n))
}

func FuzzRequestDecode(f *testing.F) {
	fuzzSeedsRequest(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		var r Request
		if err := r.UnmarshalJSON(b); err != nil {
			return
		}
		enc1 := r.appendJSON(nil)
		var r2 Request
		if err := r2.UnmarshalJSON(enc1); err != nil {
			t.Fatalf("re-decode of canonical form failed: %v\ninput: %q\ncanonical: %q", err, b, enc1)
		}
		if enc2 := r2.appendJSON(nil); !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical form not a fixed point:\n first: %s\nsecond: %s", enc1, enc2)
		}
	})
}

func fuzzSeedsResponse(f *testing.F) {
	seeds := []*Response{
		{OK: true, ID: 1},
		{Error: "boom", ID: 2, Transient: true},
		{OK: true, ID: 3, Placements: []PlacementSpec{{NFIndex: 1, Type: "fw", Stage: 0, Pass: 2}}, Passes: 3},
		{OK: true, ID: 4, Layout: [][]string{{"fw", "router"}, {}, {"lb"}}},
		{OK: true, ID: 5, Stats: &Stats{Stages: 12, BlocksUsed: 3, EntriesUsed: 77, BandwidthGbps: 40.25, Tenants: 2, Processed: 9, Recirculated: 1}},
		{OK: true, ID: 6, Inject: &InjectResult{LatencyNs: 800, Passes: 2, EgressPort: 4, TablesApplied: 6, Wire: []byte{1, 2, 3}}},
		{OK: true, ID: 7, Results: []BatchResult{{OK: true, Passes: 1}, {OK: false, Error: "nope"}}},
		{OK: true, ID: 8, State: &StateDump{
			Physical: []PhysicalDump{{Stage: 0, Type: "fw", Capacity: 100, Used: 4}},
			Tenants: []TenantDump{{
				SFC:        &SFCSpec{Tenant: 5, BandwidthGbps: 10, NFs: []NFSpec{{Type: "fw", Rules: []RuleSpec{{Matches: []MatchSpec{{Value: 1}}, Action: "permit"}}}}},
				Placements: []PlacementSpec{{Type: "fw", Stage: 0}},
				Passes:     1,
			}},
		}},
	}
	for _, r := range seeds {
		f.Add(r.appendJSON(nil))
	}
	f.Add([]byte(`{"ok":true,"state":{"unknown":[[[[{"deep":1}]]]],"tenants":[]}}`))
	f.Add([]byte(`{"ok":true,"state":null,"stats":null,"inject":null}`))
	f.Add([]byte(`{"x":` + deepNest(5000) + `}`))
}

func FuzzResponseDecode(f *testing.F) {
	fuzzSeedsResponse(f)
	f.Fuzz(func(t *testing.T, b []byte) {
		var r Response
		if err := r.UnmarshalJSON(b); err != nil {
			return
		}
		enc1 := r.appendJSON(nil)
		var r2 Response
		if err := r2.UnmarshalJSON(enc1); err != nil {
			t.Fatalf("re-decode of canonical form failed: %v\ninput: %q\ncanonical: %q", err, b, enc1)
		}
		if enc2 := r2.appendJSON(nil); !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical form not a fixed point:\n first: %s\nsecond: %s", enc1, enc2)
		}
	})
}

func FuzzSFCSpecDecode(f *testing.F) {
	f.Add([]byte(`[7,2.5,[["router",[[5,[[10,255,0,0,0],[0,0,0,1,65535]],"fwd",[9]]]]]]`))
	f.Add([]byte(`[1,0,[]]`))
	f.Add([]byte(`[4294967295,1e300,[["t",[]]]]`))
	f.Add([]byte(`[1,2,[["a",[[1,` + deepNest(100) + `,"x",[]]]]]]`))
	f.Fuzz(func(t *testing.T, b []byte) {
		var s SFCSpec
		if err := s.UnmarshalJSON(b); err != nil {
			return
		}
		enc1, _ := s.MarshalJSON()
		var s2 SFCSpec
		if err := s2.UnmarshalJSON(enc1); err != nil {
			t.Fatalf("re-decode of canonical form failed: %v\ninput: %q\ncanonical: %q", err, b, enc1)
		}
		enc2, _ := s2.MarshalJSON()
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical form not a fixed point:\n first: %s\nsecond: %s", enc1, enc2)
		}
	})
}

// TestSkipValueDepthGuard pins the stack-overflow fix: a frame of nothing
// but nested arrays inside an unknown field must fail with a depth error,
// not crash the process.
func TestSkipValueDepthGuard(t *testing.T) {
	var r Request
	err := r.UnmarshalJSON([]byte(`{"unknown":` + deepNest(100000) + `}`))
	if err == nil {
		t.Fatal("deeply nested unknown field accepted")
	}
	// Mixed nesting through objects too.
	deepObj := ""
	for i := 0; i < 1000; i++ {
		deepObj += `{"a":`
	}
	deepObj += "1"
	for i := 0; i < 1000; i++ {
		deepObj += "}"
	}
	if err := r.UnmarshalJSON([]byte(`{"unknown":` + deepObj + `}`)); err == nil {
		t.Fatal("deeply nested unknown object accepted")
	}
}
