package p4rt_test

// Batch RPCs under fault injection: a MsgBatch must be atomic against
// connection resets (server left fully applied or fully rolled back,
// never half-configured), and a retried batch must hit the dedup window
// instead of double-applying.

import (
	"sync"
	"testing"

	"sfp/internal/faultnet"
	"sfp/internal/nf"
	"sfp/internal/p4rt"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

// batchTally wraps the concrete VSwitchTarget — keeping its rollback and
// batch-apply extensions visible to the server — and counts executions.
type batchTally struct {
	*p4rt.VSwitchTarget
	mu       sync.Mutex
	installs int
	allocs   int // single AllocateAt + batched items combined
}

func (b *batchTally) InstallPhysical(stage int, t nf.Type, capacity int) error {
	b.mu.Lock()
	b.installs++
	b.mu.Unlock()
	return b.VSwitchTarget.InstallPhysical(stage, t, capacity)
}

func (b *batchTally) AllocateAt(sfc *p4rt.SFCSpec, pls []p4rt.PlacementSpec) (int, error) {
	b.mu.Lock()
	b.allocs++
	b.mu.Unlock()
	return b.VSwitchTarget.AllocateAt(sfc, pls)
}

func (b *batchTally) AllocateBatch(items []p4rt.BatchAllocItem) ([]int, error) {
	b.mu.Lock()
	b.allocs += len(items)
	b.mu.Unlock()
	return b.VSwitchTarget.AllocateBatch(items)
}

func (b *batchTally) counts() (int, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.installs, b.allocs
}

func provisionBatch() []p4rt.BatchOp {
	return []p4rt.BatchOp{
		p4rt.OpInstallPhysical(0, nf.Firewall, 200),
		p4rt.OpInstallPhysical(1, nf.Router, 200),
		p4rt.OpAllocateAt(chainSFC(1), chainPlacements()),
		p4rt.OpAllocateAt(chainSFC(2), chainPlacements()),
	}
}

// TestRetriedBatchExactlyOnce: the server applies the whole batch, the
// connection dies before the response arrives, the client retries — and
// the dedup window replays the cached response instead of re-executing.
func TestRetriedBatchExactlyOnce(t *testing.T) {
	// The batch is the connection's only request, so response write 0 is
	// its (buffered, single-flush) answer; truncating it loses the
	// response after the target executed.
	sched := faultnet.NewSchedule(faultnet.Fault{
		Conn: 0, Op: faultnet.OpWrite, Index: 0, Kind: faultnet.Truncate, Bytes: 3,
	})
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	tally := &batchTally{VSwitchTarget: &p4rt.VSwitchTarget{V: v}}
	addr := startFaultySwitch(t, tally, sched)
	c := hardenedClient(t, addr, nil)

	results, err := c.Batch(provisionBatch())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	installs, allocs := tally.counts()
	if installs != 2 || allocs != 2 {
		t.Errorf("target executed installs=%d allocs=%d, want 2 and 2 (no double-apply)", installs, allocs)
	}
	if v.Tenants() != 2 {
		t.Errorf("tenants = %d, want 2", v.Tenants())
	}
}

// TestBatchClientResetNeverHalfApplied: the client's request frame is cut
// mid-write. The server never sees a complete frame, so nothing applies;
// the retry delivers the batch once.
func TestBatchClientResetNeverHalfApplied(t *testing.T) {
	dialSched := faultnet.NewSchedule(faultnet.Fault{
		Conn: 0, Op: faultnet.OpWrite, Index: 0, Kind: faultnet.Truncate, Bytes: 40,
	})
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	tally := &batchTally{VSwitchTarget: &p4rt.VSwitchTarget{V: v}}
	addr := startFaultySwitch(t, tally, nil)
	c := hardenedClient(t, addr, dialSched)

	if _, err := c.Batch(provisionBatch()); err != nil {
		t.Fatal(err)
	}
	installs, allocs := tally.counts()
	if installs != 2 || allocs != 2 {
		t.Errorf("target executed installs=%d allocs=%d, want 2 and 2", installs, allocs)
	}
	if v.Tenants() != 2 {
		t.Errorf("tenants = %d, want 2", v.Tenants())
	}
}

// TestBatchMidFaultRollsBackThenRetrySucceeds: a transient target fault
// inside the batch fails it after earlier sub-ops applied. The server
// must roll those back (leaving no half-configured switch), report the
// failure Transient, and the client's retry then applies the whole batch.
func TestBatchMidFaultRollsBackThenRetrySucceeds(t *testing.T) {
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	inner := &p4rt.VSwitchTarget{V: v}
	// FlakyTarget does not implement the batch-apply extension, so every
	// sub-op is individually gated: fallible call 3 is the second
	// allocate_at — ops 0-2 have applied when it fails. The rollback's
	// Deallocate (call 4) is allowed through; the retry is calls 5-8.
	flaky := faultnet.NewFlakyTarget(inner, 3)
	addr := startFaultySwitch(t, flaky, nil)
	c := hardenedClient(t, addr, nil)

	results, err := c.Batch(provisionBatch())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	if v.Tenants() != 2 {
		t.Errorf("tenants = %d, want 2", v.Tenants())
	}
	if flaky.Calls() != 9 {
		t.Errorf("fallible calls = %d, want 9 (4 + 1 rollback + 4 retry)", flaky.Calls())
	}
	// Both tenants drain cleanly — the first attempt left no residue.
	for _, tenant := range []uint32{1, 2} {
		if err := c.Deallocate(tenant); err != nil {
			t.Errorf("deallocate %d: %v", tenant, err)
		}
	}
	if v.Tenants() != 0 || v.BandwidthUsed() != 0 {
		t.Errorf("residue after drain: %d tenants, %v Gbps", v.Tenants(), v.BandwidthUsed())
	}
}

// TestBatchNonTransientFaultFullyRolledBack: a hard (non-retryable)
// failure mid-batch leaves the switch exactly as before the batch.
func TestBatchNonTransientFaultFullyRolledBack(t *testing.T) {
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	addr := startFaultySwitch(t, &p4rt.VSwitchTarget{V: v}, nil)
	c := hardenedClient(t, addr, nil)

	base := v.Pipe.EntriesUsed()
	ops := provisionBatch()
	// Append a hard failure: tenant 1 allocated twice.
	ops = append(ops, p4rt.OpAllocateAt(chainSFC(1), chainPlacements()))
	if _, err := c.Batch(ops); err == nil {
		t.Fatal("failing batch reported success")
	}
	if v.Tenants() != 0 {
		t.Errorf("tenants = %d after rollback, want 0", v.Tenants())
	}
	if v.FindPhysical(0, nf.Firewall) != nil || v.FindPhysical(1, nf.Router) != nil {
		t.Error("physical NFs survived rollback")
	}
	if got := v.Pipe.EntriesUsed(); got != base {
		t.Errorf("entries = %d after rollback, want %d", got, base)
	}
}
