package p4rt

import (
	"reflect"
	"testing"

	"sfp/internal/nf"
)

func TestDumpStateRoundTrip(t *testing.T) {
	c, v, cleanup := startServer(t)
	defer cleanup()

	// Empty switch dumps empty, not an error.
	d, err := c.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Physical) != 0 || len(d.Tenants) != 0 {
		t.Fatalf("empty switch dumped %+v", d)
	}

	if err := c.InstallPhysical(0, nf.Firewall, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallPhysical(1, nf.Router, 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Allocate(wireSFC(5)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Allocate(wireSFC(9)); err != nil {
		t.Fatal(err)
	}

	d, err = c.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Physical) != 2 {
		t.Fatalf("physical = %+v", d.Physical)
	}
	if d.Physical[0].Stage != 0 || d.Physical[0].Type != nf.Firewall.String() || d.Physical[0].Capacity != 100 {
		t.Fatalf("physical[0] = %+v", d.Physical[0])
	}
	if d.Physical[0].Used == 0 {
		t.Fatal("firewall table reports zero used entries after allocations")
	}
	if len(d.Tenants) != 2 || d.Tenants[0].SFC.Tenant != 5 || d.Tenants[1].SFC.Tenant != 9 {
		t.Fatalf("tenants = %+v", d.Tenants)
	}
	if len(d.Tenants[0].Placements) != 2 || d.Tenants[0].Passes != 1 {
		t.Fatalf("tenant 5 = %+v", d.Tenants[0])
	}

	// The wire dump decodes back to the switch's own export, and restoring
	// it into a fresh switch reproduces that export exactly — the property
	// reconciliation and cold restore both rely on.
	st, err := d.ToState()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Physical, v.ExportState().Physical) {
		t.Fatalf("decoded physical != exported:\n%+v\n%+v", st.Physical, v.ExportState().Physical)
	}
	if len(st.Tenants) != 2 || st.Tenants[0].Spec.Tenant != 5 {
		t.Fatalf("decoded tenants = %+v", st.Tenants)
	}
}

func TestDumpStateCodec(t *testing.T) {
	resp := &Response{OK: true, State: &StateDump{
		Physical: []PhysicalDump{{Stage: 2, Type: "firewall", Capacity: 64, Used: 3}},
		Tenants: []TenantDump{{
			SFC: &SFCSpec{Tenant: 7, BandwidthGbps: 2.5, NFs: []NFSpec{{
				Type:  "router",
				Rules: []RuleSpec{{Priority: 1, Matches: []MatchSpec{{Value: 4, PrefixLen: 8}}, Action: "fwd", Params: []uint64{9}}},
			}}},
			Placements: []PlacementSpec{{NFIndex: 0, Type: "router", Stage: 1, Pass: 0}},
			Passes:     1,
		}},
	}}
	b, err := resp.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var got Response
	if err := got.UnmarshalJSON(b); err != nil {
		t.Fatalf("decode %s: %v", b, err)
	}
	if !reflect.DeepEqual(&got, resp) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", &got, resp)
	}
}

// fakeTarget lacks StateDumper; dump_state must fail cleanly, not panic.
type noDumpTarget struct{ Target }

func TestDumpStateUnsupportedTarget(t *testing.T) {
	// A bare Target without the optional interface.
	srv := NewServer(noDumpTarget{})
	resp := srv.dispatch(&Request{Type: MsgDumpState})
	if resp.OK || resp.Error == "" {
		t.Fatalf("dispatch = %+v, want unsupported error", resp)
	}
}
