package p4gen

import (
	"strings"
	"testing"

	"sfp/internal/nf"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

func buildSwitch(t *testing.T) *vswitch.VSwitch {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 4
	v := vswitch.New(pipeline.New(cfg))
	for stage, typ := range []nf.Type{nf.Firewall, nf.TrafficClassifier, nf.LoadBalancer, nf.Router} {
		if _, err := v.InstallPhysicalNF(stage, typ, 100); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

func TestEmitStructure(t *testing.T) {
	src := Emit(buildSwitch(t), Options{})
	// Top-level skeleton.
	for _, want := range []string{
		"#include <v1model.p4>",
		"parser SfpParser",
		"control SfpIngress",
		"control SfpDeparser",
		"V1Switch(",
		"struct metadata_t",
		"bit<32> tenant_id;",
		"bit<8>  pass;",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q", want)
		}
	}
	// One table per physical NF, in stage order, each with the tenant/pass
	// prefix and the No-Ops default.
	for _, tbl := range []string{"s0_firewall", "s1_traffic_classifier", "s2_load_balancer", "s3_router"} {
		if !strings.Contains(src, "table "+tbl+" {") {
			t.Errorf("missing table %s", tbl)
		}
		if !strings.Contains(src, tbl+".apply();") {
			t.Errorf("table %s never applied", tbl)
		}
		if !strings.Contains(src, "default_action = "+tbl+"_noop()") {
			t.Errorf("table %s missing No-Ops default", tbl)
		}
	}
	// Every table matches tenant and pass first.
	if n := strings.Count(src, "meta.tenant_id: exact;"); n != 4 {
		t.Errorf("tenant_id matched in %d tables, want 4", n)
	}
	if n := strings.Count(src, "meta.pass: exact;"); n != 4 {
		t.Errorf("pass matched in %d tables, want 4", n)
	}
	// Recirculation handling with pass increment (§IV).
	if !strings.Contains(src, "meta.pass = meta.pass + 1;") {
		t.Error("missing pass increment before recirculation")
	}
	if !strings.Contains(src, "recirculate_preserving_field_list") {
		t.Error("missing recirculate primitive")
	}
	// Stage order: firewall's apply precedes the router's.
	if strings.Index(src, "s0_firewall.apply") > strings.Index(src, "s3_router.apply") {
		t.Error("stage application out of order")
	}
}

func TestEmitActionsCarryREC(t *testing.T) {
	src := Emit(buildSwitch(t), Options{})
	// Every non-noop action takes the REC argument and folds it into the
	// recirculation flag, per §IV.
	for _, a := range []string{"s0_firewall_permit", "s2_load_balancer_dnat", "s3_router_fwd", "s1_traffic_classifier_set_class"} {
		if !strings.Contains(src, "action "+a+"(") {
			t.Errorf("missing action %s", a)
			continue
		}
		decl := src[strings.Index(src, "action "+a+"("):]
		decl = decl[:strings.Index(decl, "\n    action")+1]
		if !strings.Contains(decl, "bit<1> rec") {
			t.Errorf("action %s lacks the REC argument", a)
		}
	}
	if !strings.Contains(src, "meta.recirculate_flag = meta.recirculate_flag | rec;") {
		t.Error("REC argument not folded into the recirculation flag")
	}
}

func TestEmitTernaryWidening(t *testing.T) {
	// The LB's exact VIP key must appear as ternary in the physical table
	// (catch-all steering needs wildcards).
	src := Emit(buildSwitch(t), Options{})
	tbl := src[strings.Index(src, "table s2_load_balancer"):]
	tbl = tbl[:strings.Index(tbl, "}")+1]
	if !strings.Contains(tbl, "hdr.ipv4.dst_addr: ternary;") {
		t.Errorf("LB VIP key not widened to ternary:\n%s", tbl)
	}
}

func TestEmitRegisters(t *testing.T) {
	src := Emit(buildSwitch(t), Options{})
	if !strings.Contains(src, "register<bit<64>>(256) lb_pool_2;") {
		t.Error("missing LB pool register for stage 2")
	}
}

func TestEmitAllTypes(t *testing.T) {
	// Every catalogue NF emits a syntactically plausible table.
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 10
	v := vswitch.New(pipeline.New(cfg))
	for i, typ := range nf.AllTypes() {
		if _, err := v.InstallPhysicalNF(i, typ, 50); err != nil {
			t.Fatal(err)
		}
	}
	src := Emit(v, Options{ProgramName: "all_types"})
	for i, typ := range nf.AllTypes() {
		if !strings.Contains(src, "table s"+string(rune('0'+i))+"_"+typ.String()) && i < 10 {
			t.Errorf("missing table for %v at stage %d", typ, i)
		}
	}
	// Braces balance — a cheap structural sanity check.
	if o, c := strings.Count(src, "{"), strings.Count(src, "}"); o != c {
		t.Errorf("unbalanced braces: %d open, %d close", o, c)
	}
}
