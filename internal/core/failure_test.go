package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"sfp/internal/model"
	"sfp/internal/nf"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

// tinySFC builds a one-NF chain with the given demand.
func tinySFC(tenant uint32, gbps float64) *vswitch.SFC {
	return &vswitch.SFC{
		Tenant:        tenant,
		BandwidthGbps: gbps,
		NFs: []*nf.Config{
			{Type: nf.Firewall, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
				Action:  "permit",
			}}},
		},
	}
}

// TestProvisionRollbackOnMidInstallFailure forces a step failure halfway
// through the install phase (the third tenant exceeds the real backplane
// because a rogue allocation ate capacity behind the planner's back) and
// checks that already-installed tenants are rolled back, the typed
// PartialFailureError surfaces, and the switch holds zero orphaned rules.
func TestProvisionRollbackOnMidInstallFailure(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 4
	cfg.MaxPasses = 2
	cfg.CapacityGbps = 40
	c := New(Options{Pipeline: cfg, Consolidate: true, Recirc: 0, Algorithm: AlgoGreedy})

	// Rogue state the planner cannot see: 15 Gbps already committed.
	v := c.VSwitch()
	if _, err := v.InstallPhysicalNF(0, nf.Firewall, cfg.EntriesPerBlock); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Allocate(tinySFC(999, 15)); err != nil {
		t.Fatal(err)
	}
	baseEntries := v.Pipe.EntriesUsed()

	// The planner sees 40 Gbps for 3×10 Gbps and deploys all three; the
	// data plane runs out at the third install.
	_, err := c.Provision([]*vswitch.SFC{tinySFC(1, 10), tinySFC(2, 10), tinySFC(3, 10)})
	if err == nil {
		t.Fatal("provision succeeded despite oversubscribed backplane")
	}
	var pf *PartialFailureError
	if !errors.As(err, &pf) {
		t.Fatalf("error is %T (%v), want *PartialFailureError", err, err)
	}
	if pf.Op != "provision" {
		t.Errorf("op = %q, want provision", pf.Op)
	}
	if len(pf.RolledBackTenants) != 2 {
		t.Errorf("rolled back %v, want 2 tenants", pf.RolledBackTenants)
	}
	// The data plane is exactly as before the provision: only the rogue
	// tenant remains, and no partial rules are stranded.
	if v.Tenants() != 1 {
		t.Errorf("tenants after rollback = %d, want 1", v.Tenants())
	}
	if got := v.Pipe.EntriesUsed(); got != baseEntries {
		t.Errorf("entries after rollback = %d, want %d (no orphans)", got, baseEntries)
	}
	// The controller forgot the failed batch: the same tenants can be
	// provisioned again once capacity allows.
	if err := v.Deallocate(999); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Provision([]*vswitch.SFC{tinySFC(1, 10), tinySFC(2, 10)}); err != nil {
		t.Fatalf("re-provision after rollback: %v", err)
	}
	if v.Tenants() != 2 {
		t.Errorf("tenants after re-provision = %d, want 2", v.Tenants())
	}
}

// TestArriveRollbackForgetsTenant drives an arrival whose install fails
// and checks the controller erases it everywhere, so the tenant can
// arrive again later.
func TestArriveRollbackForgetsTenant(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 4
	cfg.MaxPasses = 2
	cfg.CapacityGbps = 40
	c := New(Options{Pipeline: cfg, Consolidate: true, Recirc: 0, Algorithm: AlgoGreedy})
	if _, err := c.Provision([]*vswitch.SFC{tinySFC(1, 10)}); err != nil {
		t.Fatal(err)
	}
	entries := c.VSwitch().Pipe.EntriesUsed()

	// Rogue bandwidth the planner cannot see makes the arrival's install
	// fail at the data plane.
	if _, err := c.VSwitch().Allocate(tinySFC(999, 25)); err != nil {
		t.Fatal(err)
	}
	placed, err := c.Arrive(tinySFC(2, 10))
	if err == nil || placed {
		t.Fatalf("arrive succeeded (placed=%v err=%v), want rollback", placed, err)
	}
	var pf *PartialFailureError
	if !errors.As(err, &pf) {
		t.Fatalf("error is %T (%v), want *PartialFailureError", err, err)
	}
	if got := c.VSwitch().Pipe.EntriesUsed(); got != entries+1 { // +1: rogue tenant's rule
		t.Errorf("entries = %d, want %d (no orphans)", got, entries+1)
	}
	// Free the rogue capacity: the same tenant must be able to arrive.
	if err := c.VSwitch().Deallocate(999); err != nil {
		t.Fatal(err)
	}
	placed, err = c.Arrive(tinySFC(2, 10))
	if err != nil {
		t.Fatalf("re-arrive after rollback: %v", err)
	}
	if !placed {
		t.Error("tenant not placed after capacity freed")
	}
}

// TestSolverFallbackOnTimeLimit reproduces the acceptance criterion: an
// IP solve that hits its time limit with no incumbent no longer fails the
// Provision — the controller degrades to the approximation (or greedy)
// solver, records the chain taken, and the installed placement verifies.
func TestSolverFallbackOnTimeLimit(t *testing.T) {
	opts := testOptions(AlgoIP)
	opts.SolverTimeLimit = time.Nanosecond // expires before any incumbent
	opts.IPNoWarmStart = true              // cold solver: nothing to fall back on internally
	var logged []string
	opts.Logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	c := New(opts)
	m, err := c.Provision(smallBatch(7, 4))
	if err != nil {
		t.Fatalf("provision did not degrade: %v", err)
	}
	if m.Deployed == 0 {
		t.Fatal("fallback solver deployed nothing")
	}
	info := c.LastProvision()
	if !info.FellBack {
		t.Fatalf("no fallback recorded: %+v", info)
	}
	if info.Requested != AlgoIP || info.Used == AlgoIP {
		t.Errorf("requested %v used %v, want fallback away from sfp-ip", info.Requested, info.Used)
	}
	if len(info.Attempts) == 0 {
		t.Error("no failed attempts recorded")
	}
	if len(logged) == 0 {
		t.Error("fallback not logged")
	}
	// The installed placement passes model verification.
	in, a, _, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Verify(in, a, true); err != nil {
		t.Errorf("fallback placement fails verification: %v", err)
	}
}

// TestNoFallbackOption checks the degradation chain can be disabled.
func TestNoFallbackOption(t *testing.T) {
	opts := testOptions(AlgoIP)
	opts.SolverTimeLimit = time.Nanosecond
	opts.IPNoWarmStart = true
	opts.NoFallback = true
	c := New(opts)
	if _, err := c.Provision(smallBatch(7, 4)); err == nil {
		t.Fatal("provision succeeded with fallback disabled and an expired time limit")
	}
}
