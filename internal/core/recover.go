package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"sfp/internal/model"
	"sfp/internal/p4rt"
	"sfp/internal/pipeline"
	"sfp/internal/placement"
	"sfp/internal/vswitch"
	"sfp/internal/wal"
)

// replayState folds journal records into the controller's durable state.
// Begin records park in pend*; the matching commit applies them, an abort
// (or end of journal — presumed abort) discards them.
type replayState struct {
	provisioned bool
	sfcs        map[uint32]*vswitch.SFC
	live        map[uint32][]int
	placed      map[uint32]bool
	layout      [][]bool
	info        ProvisionInfo

	pendKind       byte
	pendState      *stateRec
	pendPlace      *placeRec
	pendDepart     *departRec
	pendDepartMany *departManyRec
}

func newReplayState() *replayState {
	return &replayState{
		sfcs:   make(map[uint32]*vswitch.SFC),
		live:   make(map[uint32][]int),
		placed: make(map[uint32]bool),
	}
}

func (s *replayState) clearPending() {
	s.pendKind, s.pendState, s.pendPlace, s.pendDepart, s.pendDepartMany = 0, nil, nil, nil, nil
}

// placed-set derivation modes for adoptState.
const (
	placedFromField = iota // snapshot: trust the recorded Placed list
	placedFromLive         // provision/reconfig commit: install placed all live chains
	placedEmpty            // reconfig abort: fresh switch rolled back empty
)

func (s *replayState) adoptState(st *stateRec, mode int) error {
	s.provisioned = st.Provisioned
	s.sfcs = make(map[uint32]*vswitch.SFC, len(st.SFCs))
	for _, spec := range st.SFCs {
		sfc, err := spec.ToSFC()
		if err != nil {
			return fmt.Errorf("core: replay sfc %d: %w", spec.Tenant, err)
		}
		s.sfcs[sfc.Tenant] = sfc
	}
	s.live = make(map[uint32][]int, len(st.Live))
	for _, e := range st.Live {
		s.live[e.Tenant] = append([]int(nil), e.Stages...)
	}
	s.layout = cloneLayout(st.Layout)
	if st.Info != nil {
		s.info = *st.Info
	}
	s.placed = make(map[uint32]bool)
	switch mode {
	case placedFromField:
		for _, t := range st.Placed {
			s.placed[t] = true
		}
	case placedFromLive:
		for t := range s.live {
			s.placed[t] = true
		}
	}
	return nil
}

// apply folds one journal record (kind byte + JSON payload) into the state.
func (s *replayState) apply(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("core: empty journal record")
	}
	kind, body := rec[0], rec[1:]
	switch kind {
	case recSnapshot:
		var st stateRec
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("core: replay snapshot: %w", err)
		}
		s.clearPending()
		return s.adoptState(&st, placedFromField)

	case recProvisionBegin, recReconfigBegin:
		var st stateRec
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("core: replay begin: %w", err)
		}
		s.pendKind, s.pendState = kind, &st

	case recProvisionCommit:
		if s.pendKind == recProvisionBegin && s.pendState != nil {
			if err := s.adoptState(s.pendState, placedFromLive); err != nil {
				return err
			}
		}
		s.clearPending()

	case recReconfigCommit:
		if s.pendKind == recReconfigBegin && s.pendState != nil {
			if err := s.adoptState(s.pendState, placedFromLive); err != nil {
				return err
			}
		}
		s.clearPending()

	case recReconfigAbort:
		// The planner adopted the new global plan before the rebuild began
		// and keeps it after the failed install; only the data plane (and
		// therefore the placed set) rolled back to empty.
		if s.pendKind == recReconfigBegin && s.pendState != nil {
			if err := s.adoptState(s.pendState, placedEmpty); err != nil {
				return err
			}
		}
		s.clearPending()

	case recProvisionAbort:
		s.clearPending()

	case recArriveRegister:
		var r registerRec
		if err := json.Unmarshal(body, &r); err != nil {
			return fmt.Errorf("core: replay register: %w", err)
		}
		for _, spec := range r.SFCs {
			sfc, err := spec.ToSFC()
			if err != nil {
				return fmt.Errorf("core: replay register %d: %w", spec.Tenant, err)
			}
			s.sfcs[sfc.Tenant] = sfc
		}

	case recPlaceBegin:
		var p placeRec
		if err := json.Unmarshal(body, &p); err != nil {
			return fmt.Errorf("core: replay place begin: %w", err)
		}
		s.pendKind, s.pendPlace = kind, &p

	case recPlaceCommit:
		if s.pendKind == recPlaceBegin && s.pendPlace != nil {
			for _, e := range s.pendPlace.Live {
				s.live[e.Tenant] = append([]int(nil), e.Stages...)
				s.placed[e.Tenant] = true
			}
			if s.pendPlace.Layout != nil {
				s.layout = cloneLayout(s.pendPlace.Layout)
			}
		}
		s.clearPending()

	case recPlaceAbort:
		var a abortRec
		if err := json.Unmarshal(body, &a); err != nil {
			return fmt.Errorf("core: replay place abort: %w", err)
		}
		if s.pendKind == recPlaceBegin && s.pendPlace != nil {
			// The replan's planner mutations survive the failed install
			// (admitted chains stay live, the layout keeps its growth);
			// only the withdrawn batch is erased, and nothing new is
			// placed in the data plane.
			withdrawn := make(map[uint32]bool, len(a.Tenants))
			for _, t := range a.Tenants {
				withdrawn[t] = true
			}
			for _, e := range s.pendPlace.Live {
				if !withdrawn[e.Tenant] {
					s.live[e.Tenant] = append([]int(nil), e.Stages...)
				}
			}
			if s.pendPlace.Layout != nil {
				s.layout = cloneLayout(s.pendPlace.Layout)
			}
		}
		for _, t := range a.Tenants {
			delete(s.sfcs, t)
			delete(s.live, t)
			delete(s.placed, t)
		}
		s.clearPending()

	case recDepartBegin:
		var d departRec
		if err := json.Unmarshal(body, &d); err != nil {
			return fmt.Errorf("core: replay depart begin: %w", err)
		}
		s.pendKind, s.pendDepart = kind, &d

	case recDepartCommit:
		if s.pendKind == recDepartBegin && s.pendDepart != nil {
			t := s.pendDepart.Tenant
			delete(s.sfcs, t)
			delete(s.live, t)
			delete(s.placed, t)
		}
		s.clearPending()

	case recDepartAbort:
		s.clearPending()

	case recDepartManyBegin:
		var d departManyRec
		if err := json.Unmarshal(body, &d); err != nil {
			return fmt.Errorf("core: replay departmany begin: %w", err)
		}
		s.pendKind, s.pendDepartMany = kind, &d

	case recDepartManyCommit:
		if s.pendKind == recDepartManyBegin && s.pendDepartMany != nil {
			// A bare commit removes the whole batch; a commit carrying
			// an abortRec removes only the listed tenants (the planner
			// refused partway and the rest were restored in place).
			departed := make([]uint32, 0, len(s.pendDepartMany.Entries))
			if len(body) > 0 {
				var a abortRec
				if err := json.Unmarshal(body, &a); err != nil {
					return fmt.Errorf("core: replay departmany commit: %w", err)
				}
				departed = a.Tenants
			} else {
				for _, e := range s.pendDepartMany.Entries {
					departed = append(departed, e.Tenant)
				}
			}
			for _, t := range departed {
				delete(s.sfcs, t)
				delete(s.live, t)
				delete(s.placed, t)
			}
		}
		s.clearPending()

	case recDepartManyAbort:
		s.clearPending()

	default:
		return fmt.Errorf("core: unknown journal record kind %d", kind)
	}
	return nil
}

// Recover rebuilds a durable controller from the journal in dir, binding
// it to a fresh, empty data plane. An empty or missing directory yields a
// fresh durable controller. The switch is NOT touched: call Reconcile
// afterwards to drive it back to the recovered intent (a cold restart
// reinstalls everything; a warm one repairs only the drift).
func Recover(dir string, opts Options) (*Controller, error) {
	return RecoverSwitch(dir, nil, opts)
}

// RecoverSwitch is Recover against an existing data plane — the switch
// that survived the controller crash. Pass nil to start from an empty one.
func RecoverSwitch(dir string, v *vswitch.VSwitch, opts Options) (*Controller, error) {
	opts = opts.withDefaults()
	log, rec, err := wal.Open(dir)
	if err != nil {
		return nil, err
	}
	st := newReplayState()
	if rec.Snapshot != nil {
		if err := st.apply(rec.Snapshot); err != nil {
			log.Close()
			return nil, err
		}
	}
	for _, r := range rec.Records {
		if err := st.apply(r); err != nil {
			log.Close()
			return nil, err
		}
	}
	// Whatever begin record is still pending at the end of the journal
	// belongs to a transition that never committed: presumed abort. Its
	// southbound residue, if any, is Reconcile's to repair.
	st.clearPending()

	c := &Controller{
		opts:   opts,
		v:      v,
		sfcs:   st.sfcs,
		placed: st.placed,
		log:    log,
	}
	c.lastInfo = st.info
	if c.v == nil {
		c.v = vswitch.New(pipeline.New(opts.Pipeline))
	}
	if st.provisioned {
		if err := c.rebuildPlanner(st); err != nil {
			log.Close()
			return nil, err
		}
	}
	return c, nil
}

// rebuildPlanner reconstructs the incremental updater from the recovered
// SFC registry, live-chain stages, and physical layout.
func (c *Controller) rebuildPlanner(st *replayState) error {
	tenants := sortedTenants(c.sfcs)
	list := make([]*vswitch.SFC, 0, len(tenants))
	for _, t := range tenants {
		list = append(list, c.sfcs[t])
	}
	in := c.buildInstance(list)
	a := model.NewAssignment(in)
	for i := range a.X {
		if i >= len(st.layout) {
			break
		}
		for j := range a.X[i] {
			if j < len(st.layout[i]) {
				a.X[i][j] = st.layout[i][j]
			}
		}
	}
	for l, ch := range in.Chains {
		stages, ok := st.live[uint32(ch.ID)]
		if !ok {
			continue
		}
		if len(stages) != len(a.Stages[l]) {
			return fmt.Errorf("core: replay: tenant %d has %d journaled stages, chain has %d NFs",
				ch.ID, len(stages), len(a.Stages[l]))
		}
		copy(a.Stages[l], stages)
	}
	build := model.BuildOptions{Consolidate: c.opts.Consolidate}
	u, err := placement.NewUpdater(in, a, build)
	if err != nil {
		return fmt.Errorf("core: replayed state fails verification: %w", err)
	}
	c.updater = u
	return nil
}

// Provisioned reports whether the controller has a committed initial
// placement (live or recovered).
func (c *Controller) Provisioned() bool { return c.updater != nil }

// Known reports whether the tenant is registered (placed or waiting).
func (c *Controller) Known(tenant uint32) bool {
	_, ok := c.sfcs[tenant]
	return ok
}

// WaitingCount reports how many registered tenants are not currently
// placed in the planner.
func (c *Controller) WaitingCount() int {
	if c.updater == nil {
		return 0
	}
	return c.updater.Waiting()
}

// Close drains any in-flight background snapshot, then flushes and closes
// the journal. The controller must not be used afterwards. A nil-journal
// (non-durable) controller closes trivially.
func (c *Controller) Close() error {
	if c.log == nil {
		return nil
	}
	c.snapWG.Wait()
	err := c.log.Close()
	c.log = nil
	return err
}

// sortedTenants returns the map's keys in ascending order — the canonical
// chain order everywhere the controller serializes tenant sets.
func sortedTenants(m map[uint32]*vswitch.SFC) []uint32 {
	out := make([]uint32, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedKeys(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func cloneLayout(x [][]bool) [][]bool {
	if x == nil {
		return nil
	}
	out := make([][]bool, len(x))
	for i := range x {
		out[i] = append([]bool(nil), x[i]...)
	}
	return out
}

// deployedEntries lists the deployed chains' virtual stages, skipping
// tenants present in skip (pass the placed set to get the not-yet-placed
// delta; nil for all deployed chains). Entries come out sorted by tenant.
func deployedEntries(in *model.Instance, a *model.Assignment, skip map[uint32]bool) []liveEntry {
	var out []liveEntry
	for l, ch := range in.Chains {
		t := uint32(ch.ID)
		if !a.Deployed(l) || skip[t] {
			continue
		}
		out = append(out, liveEntry{Tenant: t, Stages: append([]int(nil), a.Stages[l]...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// fromSFCs converts a batch to wire specs in batch order.
func fromSFCs(sfcs []*vswitch.SFC) []*p4rt.SFCSpec {
	out := make([]*p4rt.SFCSpec, 0, len(sfcs))
	for _, s := range sfcs {
		out = append(out, p4rt.FromSFC(s))
	}
	return out
}
