package core

import (
	"fmt"
	"strings"

	"sfp/internal/nf"
)

// StagedNF identifies a physical NF by its stage and type.
type StagedNF struct {
	Stage int
	Type  nf.Type
}

// PartialFailureError reports that a multi-step data-plane operation
// failed partway and the already-applied steps were rolled back, leaving
// the switch as it was before the operation started (grown physical
// tables keep their capacity — spare entries are benign). Callers can
// errors.As for it to learn exactly what was undone.
type PartialFailureError struct {
	// Op is the operation that failed: "provision", "arrive", or
	// "reconfigure".
	Op string
	// Cause is the step error that triggered the rollback.
	Cause error
	// RolledBackTenants lists tenants whose rules were installed by this
	// operation and then removed again.
	RolledBackTenants []uint32
	// RemovedPhysical lists physical NFs this operation installed and
	// then removed again.
	RemovedPhysical []StagedNF
}

// Error implements error.
func (e *PartialFailureError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: %s failed, rolled back", e.Op)
	if n := len(e.RolledBackTenants); n > 0 {
		fmt.Fprintf(&b, " %d tenant(s)", n)
	}
	if n := len(e.RemovedPhysical); n > 0 {
		fmt.Fprintf(&b, " %d physical NF(s)", n)
	}
	fmt.Fprintf(&b, ": %v", e.Cause)
	return b.String()
}

// Unwrap exposes the underlying step error.
func (e *PartialFailureError) Unwrap() error { return e.Cause }

// installJournal records the steps an install applied, in order, so a
// failure can undo them in reverse.
type installJournal struct {
	// tenants whose SFC rules were allocated by this install.
	tenants []uint32
	// physical NFs newly created (not pre-existing ones that were grown).
	physical []StagedNF
	// undone lists tenants a lower layer (vswitch.AllocateBatch) installed
	// and already rolled back itself; they are reported as rolled back but
	// need no further Deallocate.
	undone []uint32
}

// rollback undoes a journal in reverse order: tenant rules first (so the
// newly created physical tables drain), then the new physical NFs. It is
// best-effort — a step that cannot be undone is skipped — and reports
// what was actually removed.
func (c *Controller) rollback(j *installJournal) (tenants []uint32, removed []StagedNF) {
	for i := len(j.tenants) - 1; i >= 0; i-- {
		t := j.tenants[i]
		if err := c.v.Deallocate(t); err == nil {
			tenants = append(tenants, t)
		}
		delete(c.placed, t)
	}
	// Tenants the batch layer already undid: report them (reverse order,
	// matching the undo order) without touching the data plane again.
	for i := len(j.undone) - 1; i >= 0; i-- {
		t := j.undone[i]
		tenants = append(tenants, t)
		delete(c.placed, t)
	}
	for i := len(j.physical) - 1; i >= 0; i-- {
		p := j.physical[i]
		if err := c.v.RemovePhysicalNF(p.Stage, p.Type); err == nil {
			removed = append(removed, p)
		}
	}
	return tenants, removed
}

// partialFailure builds the typed error after rolling back a journal.
func (c *Controller) partialFailure(op string, cause error, j *installJournal) *PartialFailureError {
	tenants, removed := c.rollback(j)
	return &PartialFailureError{Op: op, Cause: cause, RolledBackTenants: tenants, RemovedPhysical: removed}
}
