package core

import (
	"reflect"
	"testing"

	"sfp/internal/faultnet"
	"sfp/internal/vswitch"
)

// scenOp is one step of the convergence scenario. run executes it on a
// healthy controller; redo re-issues it idempotently on a recovered
// controller (skipping work the journal proves committed).
type scenOp struct {
	name string
	run  func(c *Controller) error
	redo func(c *Controller) error
}

// scenario is a deterministic mixed workload: initial provision, batched
// and single arrivals, a departure, and a final converge replan. Every op
// is also expressible as an idempotent re-issue, which is exactly what an
// operator (or supervisor) does after a controller restart.
func scenario() []scenOp {
	prov := smallBatch(1, 4)
	batch1 := arrivalBatch(2, 2, 100)
	batch2 := arrivalBatch(3, 1, 200)
	departT := prov[0].Tenant
	departManyT := []uint32{batch1[0].Tenant, batch1[1].Tenant}

	provision := func(c *Controller) error {
		if c.Provisioned() {
			return nil
		}
		_, err := c.Provision(smallBatch(1, 4))
		return err
	}
	arrive := func(mk func() []*vswitch.SFC) func(*Controller) error {
		return func(c *Controller) error {
			batch := mk()
			if c.Known(batch[0].Tenant) {
				// The registration committed before the crash; a bare
				// replan finishes (or confirms) the placement.
				_, err := c.Replan()
				return err
			}
			_, err := c.ArriveMany(batch)
			return err
		}
	}
	depart := func(c *Controller) error {
		if !c.Known(departT) {
			return nil
		}
		return c.Depart(departT)
	}
	departMany := func(c *Controller) error {
		// Idempotent re-issue: only whatever part of the batch the
		// journal does not already prove departed.
		var left []uint32
		for _, t := range departManyT {
			if c.Known(t) {
				left = append(left, t)
			}
		}
		return c.DepartMany(left)
	}
	replan := func(c *Controller) error {
		_, err := c.Replan()
		return err
	}

	return []scenOp{
		{"provision", provision, provision},
		{"arrive-batch", func(c *Controller) error { _, err := c.ArriveMany(batch1); return err },
			arrive(func() []*vswitch.SFC { return arrivalBatch(2, 2, 100) })},
		{"arrive-single", func(c *Controller) error { _, err := c.ArriveMany(batch2); return err },
			arrive(func() []*vswitch.SFC { return arrivalBatch(3, 1, 200) })},
		{"depart", depart, depart},
		{"departmany", departMany, departMany},
		{"replan", replan, replan},
	}
}

func durableOptions(t *testing.T, kill *faultnet.KillPoints) (Options, string) {
	opts := testOptions(AlgoGreedy)
	if kill != nil {
		opts.Hook = kill.Hook
	}
	return opts, t.TempDir()
}

// controllerFingerprint captures everything the durability layer promises
// to preserve: the registry, the placed set, the live assignment, and the
// physical layout.
func controllerFingerprint(c *Controller) any {
	type fp struct {
		Provisioned bool
		Tenants     []uint32
		Placed      []uint32
		Live        []liveEntry
		Layout      [][]bool
	}
	f := fp{Provisioned: c.Provisioned(), Tenants: sortedTenants(c.sfcs), Placed: sortedKeys(c.placed)}
	if c.updater != nil {
		in, a, _ := c.updater.Current()
		f.Live = deployedEntries(in, a, nil)
		f.Layout = cloneLayout(a.X)
	}
	return f
}

// referenceRun executes the scenario on a durable controller with no
// faults and returns the final controller (journal closed).
func referenceRun(t *testing.T) *Controller {
	t.Helper()
	opts, dir := durableOptions(t, nil)
	c, err := Recover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range scenario() {
		if err := op.run(c); err != nil {
			t.Fatalf("reference %s: %v", op.name, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRecoverEmptyDir: an empty state directory yields a fresh durable
// controller; reopening it after a clean shutdown restores everything.
func TestRecoverEmptyDir(t *testing.T) {
	opts, dir := durableOptions(t, nil)
	c, err := Recover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.Provisioned() {
		t.Fatal("fresh controller claims provisioned")
	}
	if _, err := c.Provision(smallBatch(1, 3)); err != nil {
		t.Fatal(err)
	}
	want := controllerFingerprint(c)
	wantState := c.VSwitch().ExportState()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := controllerFingerprint(r); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered fingerprint differs:\n got %+v\nwant %+v", got, want)
	}
	// Cold restore: fresh switch is empty until Reconcile re-installs.
	rep, err := r.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reinstalled) == 0 {
		t.Fatal("cold reconcile re-installed nothing")
	}
	if !reflect.DeepEqual(r.VSwitch().ExportState(), wantState) {
		t.Fatal("reconciled switch state differs from pre-shutdown state")
	}
	if rep2, err := r.Reconcile(); err != nil || !rep2.Clean() {
		t.Fatalf("second reconcile not clean: %+v, %v", rep2, err)
	}
}

// TestJournalFullScenario: clean-shutdown recovery after the whole mixed
// workload reproduces the controller and (via cold reconcile) the switch.
func TestJournalFullScenario(t *testing.T) {
	ref := referenceRun(t)
	opts, dir := durableOptions(t, nil)
	c, err := Recover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range scenario() {
		if err := op.run(c); err != nil {
			t.Fatalf("%s: %v", op.name, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, want := controllerFingerprint(r), controllerFingerprint(ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered fingerprint differs:\n got %+v\nwant %+v", got, want)
	}
	if _, err := r.Reconcile(); err != nil {
		t.Fatal(err)
	}
	// A cold rebuild sizes physical tables to the *current* need, while
	// the reference switch keeps capacity grown for since-departed
	// tenants — so compare the tenant allocations exactly and require the
	// rebuilt state to be a reconcile fixed point, rather than demanding
	// byte-identical physical history.
	if got, want := r.VSwitch().ExportState().Tenants, ref.VSwitch().ExportState().Tenants; !reflect.DeepEqual(got, want) {
		t.Fatalf("reconciled tenant allocations differ:\n got %+v\nwant %+v", got, want)
	}
	if rep, err := r.Reconcile(); err != nil || !rep.Clean() {
		t.Fatalf("drift after cold reconcile: %+v, %v", rep, err)
	}
}

// TestKillRestartConvergence is the crash suite: for every hook index the
// scenario reaches, kill the controller there, recover from the journal
// against the surviving switch, reconcile, re-issue the remaining ops
// idempotently, and require the final switch state to be byte-identical
// to the never-crashed reference — with zero residual drift.
func TestKillRestartConvergence(t *testing.T) {
	ref := referenceRun(t)
	refState := ref.VSwitch().ExportState()
	refFP := controllerFingerprint(ref)

	for n := 0; ; n++ {
		kill := faultnet.KillAt(n)
		opts, dir := durableOptions(t, kill)
		c, err := Recover(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		ops := scenario()
		crashedAt := -1
		for i := 0; i < len(ops) && crashedAt < 0; i++ {
			if crash := faultnet.Crashed(func() {
				if err := ops[i].run(c); err != nil {
					t.Fatalf("kill=%d %s: %v", n, ops[i].name, err)
				}
			}); crash != nil {
				crashedAt = i
			}
		}
		if crashedAt < 0 {
			// The scenario has fewer than n hook points: every crash
			// point has been exercised.
			c.Close()
			if n == 0 {
				t.Fatal("scenario fired no hooks")
			}
			t.Logf("exercised %d crash points", n)
			return
		}

		// The crashed controller is abandoned mid-transition; its switch
		// survives (the data plane does not die with the control plane).
		survivor := c.VSwitch()
		noKill := opts
		noKill.Hook = nil
		r, err := RecoverSwitch(dir, survivor, noKill)
		if err != nil {
			t.Fatalf("kill=%d (%s): recover: %v", n, kill.Killed.Point, err)
		}
		if _, err := r.Reconcile(); err != nil {
			t.Fatalf("kill=%d (%s): reconcile: %v", n, kill.Killed.Point, err)
		}
		if rep, err := r.Reconcile(); err != nil || !rep.Clean() {
			t.Fatalf("kill=%d (%s): drift after reconcile: %+v, %v", n, kill.Killed.Point, rep, err)
		}
		for j := crashedAt; j < len(ops); j++ {
			if err := ops[j].redo(r); err != nil {
				t.Fatalf("kill=%d (%s): redo %s: %v", n, kill.Killed.Point, ops[j].name, err)
			}
		}
		if got := controllerFingerprint(r); !reflect.DeepEqual(got, refFP) {
			t.Fatalf("kill=%d (%s): controller fingerprint diverged:\n got %+v\nwant %+v",
				n, kill.Killed.Point, got, refFP)
		}
		if got := r.VSwitch().ExportState(); !reflect.DeepEqual(got, refState) {
			t.Fatalf("kill=%d (%s): switch state diverged from never-crashed run",
				n, kill.Killed.Point)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDepartCrashMidDeallocate pins the departure-durability fix: a
// controller killed after the switch deallocation but before the commit
// record must, after recover+reconcile, have the tenant's rules back
// (presumed abort), and the re-issued Depart must complete cleanly.
func TestDepartCrashMidDeallocate(t *testing.T) {
	// First find the hook index of "depart:deallocated" for a minimal
	// provision+depart script.
	prov := smallBatch(1, 3)
	departT := prov[0].Tenant

	probe := &pointRecorder{}
	opts, dir := durableOptions(t, nil)
	opts.Hook = probe.record
	c, err := Recover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Provision(smallBatch(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Depart(departT); err != nil {
		t.Fatal(err)
	}
	c.Close()
	idx := probe.index("depart:deallocated")
	if idx < 0 {
		t.Fatal("scenario never hit depart:deallocated")
	}

	kill := faultnet.KillAt(idx)
	opts2, dir2 := durableOptions(t, kill)
	c2, err := Recover(dir2, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Provision(smallBatch(1, 3)); err != nil {
		t.Fatal(err)
	}
	before := c2.VSwitch().ExportState()
	crash := faultnet.Crashed(func() {
		if err := c2.Depart(departT); err != nil {
			t.Fatalf("depart: %v", err)
		}
	})
	if crash == nil || crash.Point != "depart:deallocated" {
		t.Fatalf("expected crash at depart:deallocated, got %+v", crash)
	}
	// The rules are gone from the surviving switch but the departure
	// never committed.
	if c2.VSwitch().Allocations(departT) != nil {
		t.Fatal("tenant still allocated after mid-depart crash")
	}

	noKill := opts2
	noKill.Hook = nil
	r, err := RecoverSwitch(dir2, c2.VSwitch(), noKill)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Known(departT) {
		t.Fatal("uncommitted departure erased the tenant")
	}
	rep, err := r.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reinstalled) != 1 || rep.Reinstalled[0] != departT {
		t.Fatalf("reconcile reinstalled %v, want [%d]", rep.Reinstalled, departT)
	}
	if !reflect.DeepEqual(r.VSwitch().ExportState(), before) {
		t.Fatal("reconcile did not restore the pre-depart switch state")
	}
	// The re-issued departure now runs to completion.
	if err := r.Depart(departT); err != nil {
		t.Fatal(err)
	}
	if r.Known(departT) || r.VSwitch().Allocations(departT) != nil {
		t.Fatal("re-issued depart left residue")
	}
}

// TestDepartWaitingTenant pins the second departure bug: departing a
// registered-but-waiting tenant must also erase it from the planner, not
// just the registry.
func TestDepartWaitingTenant(t *testing.T) {
	c := New(testOptions(AlgoGreedy))
	if _, err := c.Provision(smallBatch(1, 3)); err != nil {
		t.Fatal(err)
	}
	// A tenant demanding more bandwidth than the whole switch stays
	// waiting forever.
	big := arrivalBatch(5, 1, 300)
	big[0].BandwidthGbps = c.opts.Pipeline.CapacityGbps * 10
	if placed, err := c.Arrive(big[0]); err != nil {
		t.Fatal(err)
	} else if placed {
		t.Fatal("oversized tenant was placed")
	}
	if c.WaitingCount() != 1 {
		t.Fatalf("waiting = %d, want 1", c.WaitingCount())
	}
	if err := c.Depart(big[0].Tenant); err != nil {
		t.Fatal(err)
	}
	if c.Known(big[0].Tenant) {
		t.Fatal("departed tenant still registered")
	}
	if c.WaitingCount() != 0 {
		t.Fatalf("planner still tracks the departed waiting tenant (waiting=%d)", c.WaitingCount())
	}
}

// pointRecorder captures the hook sequence of a fault-free run.
type pointRecorder struct{ points []string }

func (p *pointRecorder) record(point string) { p.points = append(p.points, point) }

func (p *pointRecorder) index(point string) int {
	for i, q := range p.points {
		if q == point {
			return i
		}
	}
	return -1
}
