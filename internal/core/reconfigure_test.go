package core

import (
	"reflect"
	"testing"
	"time"

	"sfp/internal/model"
)

// assertModelSwitchAgreement cross-checks the planner state against the
// data plane after a churny sequence: the placement verifies against the
// full constraint set, the placed set matches the deployed chains, and
// the switch's bandwidth accounting matches the model's backplane.
func assertModelSwitchAgreement(t *testing.T, c *Controller) {
	t.Helper()
	in, a, m, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Verify(in, a, c.opts.Consolidate); err != nil {
		t.Fatalf("planner state fails verification: %v", err)
	}
	if got := len(c.PlacedTenants()); got != m.Deployed {
		t.Errorf("placed tenants %d, model deployed %d", got, m.Deployed)
	}
	if got := c.VSwitch().BandwidthUsed(); got < m.BackplaneGbps-1e-6 || got > m.BackplaneGbps+1e-6 {
		t.Errorf("switch bandwidth %v, model backplane %v", got, m.BackplaneGbps)
	}
}

// TestReconfigureAfterArriveManyBatch: a full reconfiguration issued right
// after a batched arrival must fold the whole batch into the global model
// and leave consistent stats and state behind.
func TestReconfigureAfterArriveManyBatch(t *testing.T) {
	c := New(testOptions(AlgoGreedy))
	if _, err := c.Provision(smallBatch(1, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ArriveMany(arrivalBatch(2, 3, 100)); err != nil {
		t.Fatal(err)
	}
	known := len(c.sfcs)

	did, err := c.ReconfigureIfStale(10) // generous threshold: always rebuild
	if err != nil {
		t.Fatal(err)
	}
	if !did {
		t.Fatal("threshold 10 did not trigger a rebuild")
	}
	st := c.LastReplan()
	if !st.FullRebuild || !st.Rebuilt {
		t.Fatalf("expected full rebuild stats, got %+v", st)
	}
	if st.InModel != known {
		t.Errorf("InModel = %d, want all %d known tenants", st.InModel, known)
	}
	if st.Decomposed {
		t.Errorf("small instance took the decomposed path (DecomposeAbove default %d)", 512)
	}
	if st.Gap < 0 {
		t.Errorf("negative certified gap: %v", st.Gap)
	}
	assertModelSwitchAgreement(t, c)
}

// TestReconfigureWithWaitingTenants: tenants the incremental path could
// not admit (backplane exhausted) must still enter the full model on
// reconfiguration, and whatever it cannot place must stay consistently
// waiting afterwards.
func TestReconfigureWithWaitingTenants(t *testing.T) {
	opts := testOptions(AlgoGreedy)
	// Squeeze the backplane so part of the arrival wave must wait. The
	// contended full IP won't close its bound within any reasonable limit;
	// 2s returns the warm-started incumbent, which is all this test needs.
	opts.Pipeline.CapacityGbps = 60
	opts.SolverTimeLimit = 2 * time.Second
	c := New(opts)
	if _, err := c.Provision(smallBatch(1, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ArriveMany(arrivalBatch(2, 4, 100)); err != nil {
		t.Fatal(err)
	}
	waitingBefore := c.WaitingCount()
	if waitingBefore == 0 {
		t.Fatalf("workload not contended: nothing waiting (capacity %v too generous)",
			opts.Pipeline.CapacityGbps)
	}

	did, err := c.ReconfigureIfStale(10)
	if err != nil {
		t.Fatal(err)
	}
	if !did {
		t.Fatal("threshold 10 did not trigger a rebuild")
	}
	st := c.LastReplan()
	if st.InModel != len(c.sfcs) {
		t.Errorf("InModel = %d, want all %d known tenants (waiting included)", st.InModel, len(c.sfcs))
	}
	// Placed + waiting must still partition the registry.
	if got := len(c.PlacedTenants()) + c.WaitingCount(); got != len(c.sfcs) {
		t.Errorf("placed %d + waiting %d != known %d",
			len(c.PlacedTenants()), c.WaitingCount(), len(c.sfcs))
	}
	assertModelSwitchAgreement(t, c)
}

// TestReconfigureAfterRecover: a recovered-and-reconciled controller must
// support a full reconfiguration like a never-crashed one — the rebuilt
// planner carries enough state (registry, layout, live set) for the
// global re-optimization, and the journal records the rebuild so a second
// recovery sees the post-reconfigure world.
func TestReconfigureAfterRecover(t *testing.T) {
	opts, dir := durableOptions(t, nil)
	c, err := Recover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Provision(smallBatch(1, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ArriveMany(arrivalBatch(2, 2, 100)); err != nil {
		t.Fatal(err)
	}
	victim := c.PlacedTenants()[0]
	if err := c.Depart(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Reconcile(); err != nil {
		t.Fatal(err)
	}
	did, err := r.ReconfigureIfStale(10)
	if err != nil {
		t.Fatal(err)
	}
	if !did {
		t.Fatal("threshold 10 did not trigger a rebuild on the recovered controller")
	}
	st := r.LastReplan()
	if !st.FullRebuild || st.InModel != len(r.sfcs) {
		t.Fatalf("recovered rebuild stats inconsistent: %+v (known %d)", st, len(r.sfcs))
	}
	if r.Known(victim) {
		t.Errorf("departed tenant %d resurfaced through recover+reconfigure", victim)
	}
	assertModelSwitchAgreement(t, r)

	// The reconfiguration itself must be durable.
	fp := controllerFingerprint(r)
	state := r.VSwitch().ExportState()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, err := r2.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if got := controllerFingerprint(r2); !reflect.DeepEqual(got, fp) {
		t.Fatalf("post-reconfigure recovery differs:\n got %+v\nwant %+v", got, fp)
	}
	if !reflect.DeepEqual(r2.VSwitch().ExportState(), state) {
		t.Error("post-reconfigure switch state not reproduced by recovery")
	}
}
