package core

import (
	"reflect"
	"testing"

	"sfp/internal/nf"
	"sfp/internal/pipeline"
	"sfp/internal/traffic"
	"sfp/internal/vswitch"

	"math/rand"
)

// provisioned returns a non-durable controller with a few placed tenants.
func provisioned(t testing.TB) *Controller {
	t.Helper()
	c := New(testOptions(AlgoGreedy))
	if _, err := c.Provision(smallBatch(1, 4)); err != nil {
		t.Fatal(err)
	}
	if len(c.PlacedTenants()) == 0 {
		t.Fatal("nothing placed")
	}
	return c
}

// TestReconcileCleanOnHealthy: a healthy controller reports no drift.
func TestReconcileCleanOnHealthy(t *testing.T) {
	c := provisioned(t)
	rep, err := c.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("healthy switch reported drift: %+v", rep)
	}
}

// TestReconcileReinstallsMissing: rules deleted behind the controller's
// back come back.
func TestReconcileReinstallsMissing(t *testing.T) {
	c := provisioned(t)
	want := c.VSwitch().ExportState()
	victim := c.PlacedTenants()[0]
	if err := c.VSwitch().Deallocate(victim); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reinstalled) != 1 || rep.Reinstalled[0] != victim {
		t.Fatalf("reinstalled %v, want [%d]", rep.Reinstalled, victim)
	}
	if !reflect.DeepEqual(c.VSwitch().ExportState(), want) {
		t.Fatal("switch state not restored")
	}
}

// TestReconcileRemovesOrphan: an allocation with no committed placement
// (e.g. residue of an uncommitted install) is deallocated.
func TestReconcileRemovesOrphan(t *testing.T) {
	c := provisioned(t)
	victim := c.PlacedTenants()[0]
	alloc := c.VSwitch().Allocations(victim)
	spec, placements := alloc.Spec, alloc.Placements
	if err := c.Depart(victim); err != nil {
		t.Fatal(err)
	}
	want := c.VSwitch().ExportState()
	// Sneak the departed tenant's rules back in behind the controller.
	if _, err := c.VSwitch().AllocateAt(spec, placements); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OrphansRemoved) != 1 || rep.OrphansRemoved[0] != victim {
		t.Fatalf("orphans removed %v, want [%d]", rep.OrphansRemoved, victim)
	}
	if !reflect.DeepEqual(c.VSwitch().ExportState(), want) {
		t.Fatal("switch state not restored")
	}
}

// TestReconcileRemovesStrayPhysical: a physical NF outside the intended
// layout is deleted once its table is empty.
func TestReconcileRemovesStrayPhysical(t *testing.T) {
	c := provisioned(t)
	in, a, _, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Find a (type, stage) cell the layout does not use.
	stray := -1
	var strayType nf.Type
	for i := 1; i <= in.NumTypes && stray < 0; i++ {
		for s := 0; s < in.Switch.Stages; s++ {
			if !a.X[i-1][s] {
				stray, strayType = s, nf.Type(i)
				break
			}
		}
	}
	if stray < 0 {
		t.Skip("layout uses every cell")
	}
	if _, err := c.VSwitch().InstallPhysicalNF(stray, strayType, 100); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PhysicalRemoved) != 1 || rep.PhysicalRemoved[0].Stage != stray || rep.PhysicalRemoved[0].Type != strayType {
		t.Fatalf("physical removed %v, want [%v@%d]", rep.PhysicalRemoved, strayType, stray)
	}
	if c.VSwitch().FindPhysical(stray, strayType) != nil {
		t.Fatal("stray physical NF survived reconcile")
	}
}

// benchFleet builds a large tenant fleet for the recovery benchmarks.
func benchFleet(n int) []*vswitch.SFC {
	rng := rand.New(rand.NewSource(7))
	chains := traffic.GenChains(rng, n, traffic.ChainParams{
		NumTypes: nf.TypeCount, MeanLen: 3, RuleMin: 2, RuleMax: 6,
	})
	out := make([]*vswitch.SFC, 0, n)
	for _, ch := range chains {
		ch.BandwidthGbps = 0.05
		out = append(out, traffic.ToSFC(rng, ch, 6))
	}
	return out
}

func benchOptions() Options {
	return Options{
		Pipeline:    pipeline.DefaultConfig(),
		Consolidate: true,
		Algorithm:   AlgoGreedy,
		Seed:        1,
	}
}

// BenchmarkRecover1k measures journal replay + planner rebuild for a
// 1000-tenant controller (the cold half of crash recovery).
func BenchmarkRecover1k(b *testing.B) {
	opts := benchOptions()
	dir := b.TempDir()
	c, err := Recover(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Provision(benchFleet(1000)); err != nil {
		b.Fatal(err)
	}
	if err := c.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Recover(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Provisioned() {
			b.Fatal("recovered controller not provisioned")
		}
		r.Close()
	}
}

// BenchmarkReconcile1k measures the cold-restore reconcile: recovering
// intent for 1000 tenants and re-installing every placed chain into an
// empty switch.
func BenchmarkReconcile1k(b *testing.B) {
	opts := benchOptions()
	dir := b.TempDir()
	c, err := Recover(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Provision(benchFleet(1000)); err != nil {
		b.Fatal(err)
	}
	placed := len(c.PlacedTenants())
	if err := c.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Recover(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := r.Reconcile()
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Reinstalled) != placed {
			b.Fatalf("reinstalled %d, want %d", len(rep.Reinstalled), placed)
		}
		r.Close()
	}
}
