package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sfp/internal/faultnet"
)

// TestDepartManyMatchesSequential: one DepartMany call must leave the
// controller and the switch in exactly the state a sequential Depart loop
// over the same tenants produces.
func TestDepartManyMatchesSequential(t *testing.T) {
	build := func() *Controller {
		c := New(testOptions(AlgoGreedy))
		if _, err := c.Provision(smallBatch(1, 4)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ArriveMany(arrivalBatch(2, 6, 100)); err != nil {
			t.Fatal(err)
		}
		return c
	}
	victims := []uint32{101, 103, 105, 2}

	seq := build()
	for _, tn := range victims {
		if err := seq.Depart(tn); err != nil {
			t.Fatalf("sequential depart %d: %v", tn, err)
		}
	}

	batch := build()
	if err := batch.DepartMany(victims); err != nil {
		t.Fatalf("DepartMany: %v", err)
	}

	if got, want := controllerFingerprint(batch), controllerFingerprint(seq); !reflect.DeepEqual(got, want) {
		t.Fatalf("controller fingerprints diverge:\n batch %+v\n  seq  %+v", got, want)
	}
	if got, want := batch.VSwitch().ExportState(), seq.VSwitch().ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatal("switch states diverge between DepartMany and sequential Depart")
	}
}

// TestDepartManyValidation: the batch is validated before any journal or
// switch effect — an unknown or duplicated tenant rejects the whole call.
func TestDepartManyValidation(t *testing.T) {
	c := New(testOptions(AlgoGreedy))
	if _, err := c.Provision(smallBatch(1, 3)); err != nil {
		t.Fatal(err)
	}
	before := c.VSwitch().ExportState()
	if err := c.DepartMany([]uint32{1, 999}); err == nil {
		t.Fatal("unknown tenant accepted")
	}
	if err := c.DepartMany([]uint32{1, 2, 1}); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if !reflect.DeepEqual(c.VSwitch().ExportState(), before) {
		t.Fatal("rejected batch mutated the switch")
	}
	if !c.Known(1) || !c.Known(2) {
		t.Fatal("rejected batch mutated the registry")
	}
	if err := c.DepartMany(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestReplayDepartManyPartialCommit: a departmany commit carrying an
// abortRec payload removes only the listed prefix — the planner refused
// partway and the suffix was restored in place.
func TestReplayDepartManyPartialCommit(t *testing.T) {
	st := newReplayState()
	mustApply := func(kind byte, payload any) {
		t.Helper()
		rec, err := encodeRec(kind, payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	for _, sfc := range smallBatch(1, 3) {
		st.sfcs[sfc.Tenant] = sfc
		st.placed[sfc.Tenant] = true
		st.live[sfc.Tenant] = []int{0}
	}

	begin := &departManyRec{Entries: []departRec{
		{Tenant: 1, Placed: true}, {Tenant: 2, Placed: true}, {Tenant: 3, Placed: true},
	}}
	mustApply(recDepartManyBegin, begin)
	mustApply(recDepartManyCommit, &abortRec{Tenants: []uint32{1}})
	if _, ok := st.sfcs[1]; ok {
		t.Fatal("partial commit kept the departed prefix")
	}
	for _, tn := range []uint32{2, 3} {
		if _, ok := st.sfcs[tn]; !ok || !st.placed[tn] {
			t.Fatalf("partial commit erased restored tenant %d", tn)
		}
	}

	// A bare commit after a fresh begin removes the remaining batch whole.
	mustApply(recDepartManyBegin, &departManyRec{Entries: []departRec{
		{Tenant: 2, Placed: true}, {Tenant: 3, Placed: true},
	}})
	mustApply(recDepartManyCommit, nil)
	if len(st.sfcs) != 0 || len(st.placed) != 0 {
		t.Fatalf("bare commit left residue: sfcs=%d placed=%d", len(st.sfcs), len(st.placed))
	}

	// A dangling begin (presumed abort) removes nothing.
	st2 := newReplayState()
	st2.sfcs[7] = smallBatch(1, 1)[0]
	rec, _ := encodeRec(recDepartManyBegin, begin)
	if err := st2.apply(rec); err != nil {
		t.Fatal(err)
	}
	st2.clearPending()
	if _, ok := st2.sfcs[7]; !ok {
		t.Fatal("presumed abort erased a tenant")
	}
}

// TestCrashMidGroupCommitTornTail is the group-commit crash test: the
// controller dies at "journal:staged" — the departmany begin record
// appended but not yet durable — and the crash additionally tears the
// journal tail (a half-written frame reached the disk before the fsync
// could complete). Recovery must discard the torn tail, presume the
// un-committed departure aborted, reconcile the surviving switch, and
// converge to the byte-identical never-crashed state.
func TestCrashMidGroupCommitTornTail(t *testing.T) {
	ref := referenceRun(t)
	refState := ref.VSwitch().ExportState()
	refFP := controllerFingerprint(ref)

	// Locate the hook index of the journal:staged that precedes the
	// departmany journaled hook in a fault-free run.
	probe := &pointRecorder{}
	opts, dir := durableOptions(t, nil)
	opts.Hook = probe.record
	c0, err := Recover(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range scenario() {
		if err := op.run(c0); err != nil {
			t.Fatalf("probe %s: %v", op.name, err)
		}
	}
	c0.Close()
	idx := -1
	for i, p := range probe.points {
		if p == "journal:staged" && i+1 < len(probe.points) && probe.points[i+1] == "departmany:journaled" {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no journal:staged hook precedes departmany:journaled")
	}

	kill := faultnet.KillAt(idx)
	opts2, dir2 := durableOptions(t, kill)
	c, err := Recover(dir2, opts2)
	if err != nil {
		t.Fatal(err)
	}
	ops := scenario()
	crashedAt := -1
	for i := 0; i < len(ops) && crashedAt < 0; i++ {
		if crash := faultnet.Crashed(func() {
			if err := ops[i].run(c); err != nil {
				t.Fatalf("%s: %v", ops[i].name, err)
			}
		}); crash != nil {
			if crash.Point != "journal:staged" {
				t.Fatalf("crashed at %q, want journal:staged", crash.Point)
			}
			crashedAt = i
		}
	}
	if crashedAt < 0 {
		t.Fatal("kill point never fired")
	}
	if ops[crashedAt].name != "departmany" {
		t.Fatalf("crashed inside %q, want departmany", ops[crashedAt].name)
	}

	// Tear the tail: a frame header claiming 64 bytes followed by only a
	// fragment of the body — the shape a power cut mid-group-write leaves.
	wals, err := filepath.Glob(filepath.Join(dir2, "wal-*"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no wal file to tear: %v (%d found)", err, len(wals))
	}
	walPath := wals[len(wals)-1]
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0, 0, 0, 64, 0xde, 0xad, 0xbe, 0xef, 'p', 'a', 'r', 't', 'i', 'a', 'l'}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	preRecover, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}

	noKill := opts2
	noKill.Hook = nil
	r, err := RecoverSwitch(dir2, c.VSwitch(), noKill)
	if err != nil {
		t.Fatalf("recover over torn tail: %v", err)
	}
	// Replay must have truncated the torn frame off the journal file.
	if post, err := os.Stat(walPath); err == nil && post.Size() >= preRecover.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", preRecover.Size(), post.Size())
	}
	// The staged-but-unsynced departmany begin never became durable:
	// presumed abort keeps every batch tenant registered.
	if _, err := r.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if rep, err := r.Reconcile(); err != nil || !rep.Clean() {
		t.Fatalf("drift after reconcile: %+v, %v", rep, err)
	}
	for j := crashedAt; j < len(ops); j++ {
		if err := ops[j].redo(r); err != nil {
			t.Fatalf("redo %s: %v", ops[j].name, err)
		}
	}
	if got := controllerFingerprint(r); !reflect.DeepEqual(got, refFP) {
		t.Fatalf("controller fingerprint diverged:\n got %+v\nwant %+v", got, refFP)
	}
	if got := r.VSwitch().ExportState(); !reflect.DeepEqual(got, refState) {
		t.Fatal("switch state diverged from never-crashed run")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOffLockSnapshotRotation: with an aggressive snapshot threshold the
// background rotation must run (generation advances) without losing any
// record committed while the snapshot was serializing, and recovery from
// the rotated journal must match the reference run exactly.
func TestOffLockSnapshotRotation(t *testing.T) {
	ref := referenceRun(t)

	// Sweep the rotation cadence so the snapshot threshold lands on every
	// alignment relative to the scenario's begin/commit pairs: a rotation
	// whose trigger coincided with a BEGIN record used to snapshot the
	// pre-transaction state and strand the matching commit in the carried
	// tail (replayed dangling, transaction lost).
	for every := 1; every <= 6; every++ {
		opts, dir := durableOptions(t, nil)
		opts.SnapshotEvery = every
		c, err := Recover(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range scenario() {
			if err := op.run(c); err != nil {
				t.Fatalf("every=%d %s: %v", every, op.name, err)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := Recover(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		if gen := r.log.Gen(); gen == 0 {
			t.Fatalf("every=%d: snapshot rotation never advanced the journal generation", every)
		}
		if got, want := controllerFingerprint(r), controllerFingerprint(ref); !reflect.DeepEqual(got, want) {
			t.Fatalf("every=%d: recovered fingerprint differs:\n got %+v\nwant %+v", every, got, want)
		}
		if _, err := r.Reconcile(); err != nil {
			t.Fatal(err)
		}
		if got, want := r.VSwitch().ExportState().Tenants, ref.VSwitch().ExportState().Tenants; !reflect.DeepEqual(got, want) {
			t.Fatalf("every=%d: reconciled tenant allocations differ from reference", every)
		}
		r.Close()
	}
}

// sanity: the departmany replay commit record round-trips as JSON the
// journal can re-parse (guards against field renames breaking recovery of
// journals written by earlier builds).
func TestDepartManyRecRoundTrip(t *testing.T) {
	in := departManyRec{Entries: []departRec{{Tenant: 9, Placed: true}, {Tenant: 10}}}
	b, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out departManyRec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}
