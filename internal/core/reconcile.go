package core

import (
	"fmt"
	"reflect"
	"sort"

	"sfp/internal/model"
	"sfp/internal/nf"
	"sfp/internal/vswitch"
)

// ReconcileReport describes the drift Reconcile found and repaired.
type ReconcileReport struct {
	// OrphansRemoved lists tenants that held switch rules without a
	// committed placement (residue of a crash mid-install).
	OrphansRemoved []uint32
	// Reinstalled lists committed tenants whose rules were missing or
	// drifted and were re-installed.
	Reinstalled []uint32
	// PhysicalInstalled / PhysicalRemoved list the physical NF cells
	// created / deleted to match the intended layout.
	PhysicalInstalled []StagedNF
	PhysicalRemoved   []StagedNF
	// PhysicalGrown counts tables grown to the intended capacity.
	PhysicalGrown int
}

// Clean reports that no drift was found.
func (r *ReconcileReport) Clean() bool {
	return len(r.OrphansRemoved) == 0 && len(r.Reinstalled) == 0 &&
		len(r.PhysicalInstalled) == 0 && len(r.PhysicalRemoved) == 0 &&
		r.PhysicalGrown == 0
}

// Reconcile diffs the live switch state (via the same export the
// MsgDumpState read-back RPC serves) against the controller's committed
// intent and repairs the drift: allocations without a committed placement
// are deallocated, physical NFs outside the intended layout are removed,
// undersized tables are grown, and committed-but-missing allocations are
// re-installed through the all-or-nothing batch path. After a crash this
// is the second half of recovery — Recover rebuilds the intent from the
// journal, Reconcile drives the switch back to it.
func (c *Controller) Reconcile() (*ReconcileReport, error) {
	rep := &ReconcileReport{}

	// The committed intent: placements for every placed tenant, and the
	// physical layout with its rule-capacity needs.
	type intent struct {
		sfc        *vswitch.SFC
		placements []vswitch.Placement
	}
	intended := make(map[uint32]intent)
	var in *model.Instance
	var a *model.Assignment
	if c.updater != nil {
		in, a, _ = c.updater.Current()
		S := in.Switch.Stages
		for l, ch := range in.Chains {
			t := uint32(ch.ID)
			if !a.Deployed(l) || !c.placed[t] {
				continue
			}
			sfc := c.sfcs[t]
			if sfc == nil {
				return rep, fmt.Errorf("core: placed tenant %d has no SFC definition", t)
			}
			placements := make([]vswitch.Placement, len(a.Stages[l]))
			for j, k := range a.Stages[l] {
				placements[j] = vswitch.Placement{
					NFIndex: j,
					Type:    nf.Type(ch.NFs[j].Type),
					Stage:   k % S,
					Pass:    k / S,
				}
			}
			intended[t] = intent{sfc: sfc, placements: placements}
		}
	}

	st := c.v.ExportState()

	// Pass 1: deallocate switch tenants without a committed placement
	// (orphans) or with drifted placements (queued for re-install). This
	// also drains the tables of any to-be-removed physical cells.
	reinstall := make(map[uint32]bool)
	onSwitch := make(map[uint32]bool, len(st.Tenants))
	for _, ts := range st.Tenants {
		t := ts.Spec.Tenant
		onSwitch[t] = true
		want, ok := intended[t]
		if ok && reflect.DeepEqual(ts.Placements, want.placements) {
			continue
		}
		if err := c.v.Deallocate(t); err != nil {
			return rep, fmt.Errorf("core: reconcile: removing tenant %d: %w", t, err)
		}
		if ok {
			reinstall[t] = true
		} else {
			rep.OrphansRemoved = append(rep.OrphansRemoved, t)
		}
	}
	for t := range intended {
		if !onSwitch[t] {
			reinstall[t] = true
		}
	}

	// Pass 2: physical layout. Wanted cells come from the planner's X
	// with the same block-aligned sizing install uses; anything else on
	// the switch is removed (its tables drained by pass 1), missing cells
	// are installed, undersized tables grown. Oversized tables are left
	// alone — install never shrinks either.
	wanted := make(map[[2]int]int)
	if a != nil {
		S := in.Switch.Stages
		E := in.Switch.EntriesPerBlock
		need := ruleNeed(in, a)
		for i := 1; i <= in.NumTypes; i++ {
			for s := 0; s < S; s++ {
				if !a.X[i-1][s] {
					continue
				}
				capacity := need[[2]int{i, s}]
				if capacity > 0 {
					capacity = (capacity + E - 1) / E * E
				}
				wanted[[2]int{i, s}] = capacity
			}
		}
	}
	for _, p := range st.Physical {
		if _, ok := wanted[[2]int{int(p.Type), p.Stage}]; ok {
			continue
		}
		if err := c.v.RemovePhysicalNF(p.Stage, p.Type); err != nil {
			return rep, fmt.Errorf("core: reconcile: removing %v@%d: %w", p.Type, p.Stage, err)
		}
		rep.PhysicalRemoved = append(rep.PhysicalRemoved, StagedNF{Stage: p.Stage, Type: p.Type})
	}
	cells := make([][2]int, 0, len(wanted))
	for cell := range wanted {
		cells = append(cells, cell)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i][1] != cells[j][1] {
			return cells[i][1] < cells[j][1]
		}
		return cells[i][0] < cells[j][0]
	})
	for _, cell := range cells {
		typ, stage, capacity := nf.Type(cell[0]), cell[1], wanted[cell]
		if existing := c.v.FindPhysical(stage, typ); existing != nil {
			if capacity > existing.Table.Capacity {
				if err := c.v.Pipe.Stages[stage].GrowTable(existing.Table.Name, capacity); err != nil {
					return rep, fmt.Errorf("core: reconcile: growing %v@%d: %w", typ, stage, err)
				}
				rep.PhysicalGrown++
			}
			continue
		}
		if _, err := c.v.InstallPhysicalNF(stage, typ, capacity); err != nil {
			return rep, fmt.Errorf("core: reconcile: installing %v@%d: %w", typ, stage, err)
		}
		rep.PhysicalInstalled = append(rep.PhysicalInstalled, StagedNF{Stage: stage, Type: typ})
	}

	// Pass 3: re-install committed-but-missing allocations, all at once
	// through the same all-or-nothing batch primitive the southbound
	// MsgBatch path drives.
	if len(reinstall) > 0 {
		tenants := sortedKeys(reinstall)
		items := make([]vswitch.BatchItem, 0, len(tenants))
		for _, t := range tenants {
			items = append(items, vswitch.BatchItem{
				SFC:        intended[t].sfc,
				Placements: intended[t].placements,
			})
		}
		if _, err := c.v.AllocateBatch(items); err != nil {
			return rep, fmt.Errorf("core: reconcile: re-installing: %w", err)
		}
		rep.Reinstalled = tenants
	}

	sort.Slice(rep.OrphansRemoved, func(i, j int) bool { return rep.OrphansRemoved[i] < rep.OrphansRemoved[j] })
	return rep, nil
}
