package core

import (
	"errors"
	"testing"

	"sfp/internal/model"
	"sfp/internal/nf"
	"sfp/internal/pipeline"
	"sfp/internal/vswitch"
)

// arrivalBatch derives n fresh tenants (IDs offset past the provisioned
// ones) from the deterministic generator.
func arrivalBatch(seed int64, n int, offset uint32) []*vswitch.SFC {
	out := smallBatch(seed, n)
	for _, s := range out {
		s.Tenant += offset
	}
	return out
}

// TestArriveManyMatchesSequential: with a fixed seed, a batched arrival
// admits a superset-or-equal set of tenants compared to one-at-a-time
// Arrive calls, and leaves a model.Verify-clean data plane for whatever
// it admitted.
func TestArriveManyMatchesSequential(t *testing.T) {
	seqC := New(testOptions(AlgoGreedy))
	batC := New(testOptions(AlgoGreedy))
	if _, err := seqC.Provision(smallBatch(10, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := batC.Provision(smallBatch(10, 3)); err != nil {
		t.Fatal(err)
	}

	arrivals := arrivalBatch(11, 4, 100)
	seqAdmitted := map[uint32]bool{}
	for _, s := range arrivals {
		placed, err := seqC.Arrive(s)
		if err != nil {
			t.Fatalf("sequential arrive %d: %v", s.Tenant, err)
		}
		if placed {
			seqAdmitted[s.Tenant] = true
		}
	}

	placed, err := batC.ArriveMany(arrivalBatch(11, 4, 100))
	if err != nil {
		t.Fatalf("ArriveMany: %v", err)
	}
	batAdmitted := map[uint32]bool{}
	for _, tenant := range placed {
		batAdmitted[tenant] = true
	}
	for tenant := range seqAdmitted {
		if !batAdmitted[tenant] {
			t.Errorf("sequential admitted tenant %d but the batch did not", tenant)
		}
	}

	// The planner's view of the batched controller is internally consistent.
	in, a, _, err := batC.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Verify(in, a, batC.opts.Consolidate); err != nil {
		t.Errorf("model.Verify after ArriveMany: %v", err)
	}
	// And the data plane agrees with it: every admitted tenant is live
	// with the modeled pass count, bandwidth totals match.
	for _, tenant := range placed {
		if batC.VSwitch().Allocations(tenant) == nil {
			t.Errorf("tenant %d admitted but not installed", tenant)
		}
	}
	m, _ := batC.Metrics()
	if got := batC.VSwitch().BandwidthUsed(); got < m.BackplaneGbps-1e-6 || got > m.BackplaneGbps+1e-6 {
		t.Errorf("vswitch bandwidth %v, model backplane %v", got, m.BackplaneGbps)
	}
}

// tinyArrival is a one-NF chain small enough to always fit.
func tinyArrival(tenant uint32, gbps float64) *vswitch.SFC {
	return &vswitch.SFC{
		Tenant:        tenant,
		BandwidthGbps: gbps,
		NFs: []*nf.Config{
			{Type: nf.Firewall, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
				Action:  "permit",
			}}},
		},
	}
}

func TestArriveManyValidation(t *testing.T) {
	c := New(testOptions(AlgoGreedy))
	if _, err := c.ArriveMany([]*vswitch.SFC{tinyArrival(1, 1)}); err == nil {
		t.Error("ArriveMany before provision accepted")
	}
	if _, err := c.Provision(smallBatch(12, 3)); err != nil {
		t.Fatal(err)
	}
	if placed, err := c.ArriveMany(nil); err != nil || placed != nil {
		t.Errorf("empty batch: placed=%v err=%v", placed, err)
	}
	// A tenant already known is rejected before anything registers.
	known := c.PlacedTenants()[0]
	if _, err := c.ArriveMany([]*vswitch.SFC{tinyArrival(known, 1)}); err == nil {
		t.Error("known-tenant batch accepted")
	}
	// So is an intra-batch duplicate.
	if _, err := c.ArriveMany([]*vswitch.SFC{tinyArrival(300, 1), tinyArrival(300, 1)}); err == nil {
		t.Error("duplicate-tenant batch accepted")
	}
	if _, known := c.sfcs[300]; known {
		t.Error("rejected batch leaked into the registry")
	}
	// A clean batch of two still lands.
	placed, err := c.ArriveMany([]*vswitch.SFC{tinyArrival(300, 1), tinyArrival(301, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 2 {
		t.Errorf("placed %v, want both 300 and 301", placed)
	}
}

// TestArriveManyRollbackForgetsBatch mirrors TestArriveRollbackForgetsTenant
// for the batched path: when the delta install fails, the data plane is
// rolled back and the whole batch is withdrawn — retryable later.
func TestArriveManyRollbackForgetsBatch(t *testing.T) {
	opts := testOptions(AlgoGreedy)
	opts.Pipeline.CapacityGbps = 40
	c := New(opts)
	if _, err := c.Provision([]*vswitch.SFC{tinyArrival(1, 10)}); err != nil {
		t.Fatal(err)
	}
	// A rogue tenant eats bandwidth behind the planner's back, so the
	// planner admits the arrivals but the data plane refuses them.
	if _, err := c.VSwitch().Allocate(tinyArrival(999, 25)); err != nil {
		t.Fatal(err)
	}
	entries := c.VSwitch().Pipe.EntriesUsed()

	_, err := c.ArriveMany([]*vswitch.SFC{tinyArrival(50, 10), tinyArrival(51, 10)})
	if err == nil {
		t.Fatal("overcommitted batch arrival succeeded")
	}
	var pf *PartialFailureError
	if !errors.As(err, &pf) || pf.Op != "arrive" {
		t.Fatalf("error is %T (%v), want *PartialFailureError op=arrive", err, err)
	}
	if got := c.VSwitch().Pipe.EntriesUsed(); got != entries {
		t.Errorf("entries = %d after rollback, want %d", got, entries)
	}
	for _, tenant := range []uint32{50, 51} {
		if _, known := c.sfcs[tenant]; known {
			t.Errorf("tenant %d still registered after failed batch", tenant)
		}
		if c.placed[tenant] {
			t.Errorf("tenant %d still marked placed", tenant)
		}
	}
	// Free the rogue capacity: the same batch then succeeds.
	if err := c.VSwitch().Deallocate(999); err != nil {
		t.Fatal(err)
	}
	placed, err := c.ArriveMany([]*vswitch.SFC{tinyArrival(50, 10), tinyArrival(51, 10)})
	if err != nil {
		t.Fatalf("retry after freeing capacity: %v", err)
	}
	if len(placed) != 2 {
		t.Errorf("placed %v, want [50 51]", placed)
	}
}
