package core

import (
	"encoding/json"
	"fmt"

	"sfp/internal/p4rt"
)

// The controller's durability protocol: every mutating transition writes
// an intent record to the write-ahead journal and fsyncs it BEFORE the
// first southbound (data-plane) effect, and a commit record after the
// transition fully applied. Recovery replays the journal with presumed
// abort: a begin record without its commit means the crash happened
// somewhere inside the southbound window, so the transition is discarded
// and Reconcile repairs the switch back to the last committed intent.
//
// Each journal record is one kind byte followed by a JSON payload. The
// heavy subtrees — full SFC definitions — ride as p4rt.SFCSpec values,
// whose hand-rolled wire codec (PR 4) does the encode/decode work; the
// thin envelopes use encoding/json directly.

// Journal record kinds.
const (
	recSnapshot byte = iota + 1
	recProvisionBegin
	recProvisionCommit
	recProvisionAbort
	recArriveRegister
	recPlaceBegin
	recPlaceCommit
	recPlaceAbort
	recDepartBegin
	recDepartCommit
	recDepartAbort
	recReconfigBegin
	recReconfigCommit
	recReconfigAbort
	recDepartManyBegin
	recDepartManyCommit
	recDepartManyAbort
)

// liveEntry records one live chain's virtual stages.
type liveEntry struct {
	Tenant uint32 `json:"t"`
	Stages []int  `json:"k"`
}

// stateRec is the full-controller-state payload used by snapshots and
// provision/reconfigure begin records.
type stateRec struct {
	Provisioned bool            `json:"p,omitempty"`
	SFCs        []*p4rt.SFCSpec `json:"sfcs,omitempty"`
	Live        []liveEntry     `json:"live,omitempty"`
	Placed      []uint32        `json:"placed,omitempty"`
	Layout      [][]bool        `json:"layout,omitempty"`
	Info        *ProvisionInfo  `json:"info,omitempty"`
}

// registerRec carries the SFCs an ArriveMany registered.
type registerRec struct {
	SFCs []*p4rt.SFCSpec `json:"sfcs"`
}

// placeRec is a place (replan+install) begin record: the delta of chains
// the replan newly admitted plus the post-replan physical layout.
type placeRec struct {
	Live   []liveEntry `json:"live,omitempty"`
	Layout [][]bool    `json:"layout,omitempty"`
}

// abortRec is a place abort: which registered tenants were withdrawn
// wholesale after the install failed (the rest of the pending delta stays
// admitted in the planner, pending the next install).
type abortRec struct {
	Tenants []uint32 `json:"tenants,omitempty"`
}

// departRec identifies the tenant a departure targets and whether it held
// data-plane rules when the departure began.
type departRec struct {
	Tenant uint32 `json:"tenant"`
	Placed bool   `json:"placed,omitempty"`
}

// departManyRec is a batch-departure begin record: every tenant the batch
// removes and whether each held data-plane rules. The matching commit
// record removes them all; a commit carrying an abortRec payload removes
// only the listed prefix (the planner refused partway and the rest were
// restored).
type departManyRec struct {
	Entries []departRec `json:"entries"`
}

// encodeRec frames one journal record: kind byte + JSON payload (nil
// payload for bare commit/abort markers).
func encodeRec(kind byte, payload any) ([]byte, error) {
	b := []byte{kind}
	if payload == nil {
		return b, nil
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("core: journal encode: %w", err)
	}
	return append(b, body...), nil
}

// journal stages one record on the WAL without committing; a no-op for
// non-durable controllers.
func (c *Controller) journal(kind byte, payload any) error {
	if c.log == nil {
		return nil
	}
	rec, err := encodeRec(kind, payload)
	if err != nil {
		return err
	}
	return c.log.Append(rec)
}

// journalCommit makes everything staged so far (plus this record, when
// kind != 0) durable under one fsync. The "journal:staged" hook fires
// inside the group-commit window — records appended but not yet synced —
// so the fault harness can crash the controller with an intent that never
// became durable.
func (c *Controller) journalCommit(kind byte, payload any) error {
	if c.log == nil {
		return nil
	}
	if kind != 0 {
		if err := c.journal(kind, payload); err != nil {
			return err
		}
	}
	c.hook("journal:staged")
	if err := c.log.Commit(); err != nil {
		return err
	}
	c.recs++
	if txnBoundary(kind) {
		c.maybeSnapshot()
	}
	return nil
}

// txnBoundary reports whether a journal record kind ends a transaction.
// Snapshot rotation must only happen at these points: a rotation
// triggered by a BEGIN record would capture the pre-transaction state
// while the matching commit lands in the marked tail — on replay that
// commit dangles (its begin was folded into the snapshot) and the
// transaction's effects are silently lost.
func txnBoundary(kind byte) bool {
	switch kind {
	case recProvisionBegin, recPlaceBegin, recDepartBegin,
		recReconfigBegin, recDepartManyBegin:
		return false
	}
	return true
}

// maybeSnapshot rotates the journal onto a fresh snapshot once enough
// records accumulated. The state view is captured synchronously (cheap
// copies, no serialization) together with a wal.Mark, and the expensive
// part — JSON-encoding every live SFC and writing the snapshot
// generation — runs in a background goroutine, off the mutation path.
// Records committed while the snapshot is being written are retained by
// the marked log and carried into the new generation, so nothing is lost.
// Best-effort: a failed rotation keeps journaling to the current (longer)
// generation.
func (c *Controller) maybeSnapshot() {
	every := c.opts.SnapshotEvery
	if every == 0 {
		every = 1024
	}
	if every < 0 || c.recs < every {
		return
	}
	if c.snapBusy.Load() {
		// The previous snapshot is still serializing; keep accumulating.
		return
	}
	if err := c.log.Mark(); err != nil {
		c.logf("core: journal snapshot mark failed: %v", err)
		return
	}
	st := c.stateRecNow()
	c.recs = 0
	c.snapBusy.Store(true)
	c.snapWG.Add(1)
	go func() {
		defer c.snapWG.Done()
		defer c.snapBusy.Store(false)
		rec, err := encodeRec(recSnapshot, st)
		if err == nil {
			err = c.log.Rotate(rec)
		}
		if err != nil {
			c.logf("core: journal snapshot failed: %v", err)
		}
	}()
}

// snapshotNow synchronously writes the controller's full state as a new
// snapshot generation and resets the record counter.
func (c *Controller) snapshotNow() error {
	if c.log == nil {
		return nil
	}
	rec, err := encodeRec(recSnapshot, c.stateRecNow())
	if err != nil {
		return err
	}
	if err := c.log.Rotate(rec); err != nil {
		return err
	}
	c.recs = 0
	return nil
}

// stateRecNow captures the controller's current durable state.
func (c *Controller) stateRecNow() *stateRec {
	st := &stateRec{Provisioned: c.updater != nil}
	info := c.lastInfo
	st.Info = &info
	for _, t := range sortedTenants(c.sfcs) {
		st.SFCs = append(st.SFCs, p4rt.FromSFC(c.sfcs[t]))
	}
	for _, t := range sortedKeys(c.placed) {
		st.Placed = append(st.Placed, t)
	}
	if c.updater != nil {
		in, a, _ := c.updater.Current()
		st.Live = deployedEntries(in, a, nil)
		st.Layout = cloneLayout(a.X)
	}
	return st
}
