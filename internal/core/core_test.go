package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/pipeline"
	"sfp/internal/traffic"
	"sfp/internal/vswitch"
)

func testOptions(algo Algorithm) Options {
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 4
	cfg.MaxPasses = 3
	return Options{
		Pipeline:        cfg,
		Consolidate:     true,
		Recirc:          2,
		Algorithm:       algo,
		SolverTimeLimit: 10 * time.Second,
		Seed:            1,
	}
}

// smallBatch builds runnable SFCs from a synthetic chain set.
func smallBatch(seed int64, n int) []*vswitch.SFC {
	rng := rand.New(rand.NewSource(seed))
	chains := traffic.GenChains(rng, n, traffic.ChainParams{
		NumTypes: nf.TypeCount, MeanLen: 3, RuleMin: 5, RuleMax: 20,
	})
	out := make([]*vswitch.SFC, 0, n)
	for _, c := range chains {
		out = append(out, traffic.ToSFC(rng, c, 20))
	}
	return out
}

func TestProvisionGreedyEndToEnd(t *testing.T) {
	for _, algo := range []Algorithm{AlgoGreedy, AlgoApprox} {
		t.Run(algo.String(), func(t *testing.T) {
			c := New(testOptions(algo))
			batch := smallBatch(1, 5)
			m, err := c.Provision(batch)
			if err != nil {
				t.Fatal(err)
			}
			if m.Deployed == 0 {
				t.Fatal("nothing deployed")
			}
			if len(c.PlacedTenants()) != m.Deployed {
				t.Errorf("placed=%d metrics.Deployed=%d", len(c.PlacedTenants()), m.Deployed)
			}
			// Every placed tenant's packets traverse with the pass count the
			// model predicted.
			for _, tenant := range c.PlacedTenants() {
				alloc := c.VSwitch().Allocations(tenant)
				if alloc == nil {
					t.Fatalf("tenant %d placed but no allocation", tenant)
				}
				p := packet.NewBuilder().
					WithTenant(tenant).
					WithIPv4(packet.IPv4Addr(10, 0, 0, 1), packet.IPv4Addr(10, 0, 0, 2)).
					WithTCP(1234, 80).
					Build()
				res := c.VSwitch().Process(p, 0)
				if res.Passes != alloc.Passes {
					t.Errorf("tenant %d: packet passes %d, allocation passes %d",
						tenant, res.Passes, alloc.Passes)
				}
			}
			// Data-plane bandwidth accounting matches the model's backplane.
			if got, want := c.VSwitch().BandwidthUsed(), m.BackplaneGbps; got < want-1e-6 || got > want+1e-6 {
				t.Errorf("vswitch bandwidth %v, model backplane %v", got, want)
			}
		})
	}
}

func TestProvisionValidation(t *testing.T) {
	c := New(testOptions(AlgoGreedy))
	batch := smallBatch(2, 3)
	if _, err := c.Provision(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Provision(batch); err == nil {
		t.Error("double provision accepted")
	}
	if _, err := c.Metrics(); err != nil {
		t.Errorf("Metrics: %v", err)
	}
	c2 := New(testOptions(AlgoGreedy))
	if _, err := c2.Metrics(); err == nil {
		t.Error("Metrics before provision accepted")
	}
	if err := c2.Depart(1); err == nil {
		t.Error("Depart before provision accepted")
	}
}

func TestDepartFreesDataPlane(t *testing.T) {
	c := New(testOptions(AlgoGreedy))
	batch := smallBatch(3, 4)
	if _, err := c.Provision(batch); err != nil {
		t.Fatal(err)
	}
	placed := c.PlacedTenants()
	if len(placed) == 0 {
		t.Fatal("nothing placed")
	}
	victim := placed[0]
	entriesBefore := c.VSwitch().Pipe.EntriesUsed()
	if err := c.Depart(victim); err != nil {
		t.Fatal(err)
	}
	if c.VSwitch().Pipe.EntriesUsed() >= entriesBefore {
		t.Error("departure did not free entries")
	}
	if c.VSwitch().Allocations(victim) != nil {
		t.Error("allocation still present")
	}
	if err := c.Depart(victim); err == nil {
		t.Error("double departure accepted")
	}
}

func TestArrivePlacesIncrementally(t *testing.T) {
	c := New(testOptions(AlgoGreedy))
	if _, err := c.Provision(smallBatch(4, 3)); err != nil {
		t.Fatal(err)
	}
	before, _ := c.Metrics()

	// A tiny, cheap SFC should fit in the leftovers.
	newcomer := &vswitch.SFC{
		Tenant:        900,
		BandwidthGbps: 1,
		NFs: []*nf.Config{
			{Type: nf.Firewall, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
				Action:  "permit",
			}}},
		},
	}
	placedNow, err := c.Arrive(newcomer)
	if err != nil {
		t.Fatal(err)
	}
	if !placedNow {
		t.Fatal("tiny arrival not placed")
	}
	after, _ := c.Metrics()
	if after.Objective <= before.Objective {
		t.Errorf("objective did not grow: %v -> %v", before.Objective, after.Objective)
	}
	// The newcomer's traffic is actually processed.
	p := packet.NewBuilder().WithTenant(900).WithIPv4(1, 2).WithTCP(1, 2).Build()
	res := c.VSwitch().Process(p, 0)
	alloc := c.VSwitch().Allocations(900)
	if alloc == nil || res.Passes != alloc.Passes {
		t.Error("newcomer not installed correctly")
	}
	if _, err := c.Arrive(newcomer); err == nil {
		t.Error("duplicate arrival accepted")
	}
}

func TestReconfigureIfStale(t *testing.T) {
	c := New(testOptions(AlgoGreedy))
	if _, err := c.Provision(smallBatch(5, 4)); err != nil {
		t.Fatal(err)
	}
	// Remove everything, then reconfigure: with no candidates waiting the
	// state stays optimal and no rebuild happens.
	did, err := c.ReconfigureIfStale(0.95)
	if err != nil {
		t.Fatal(err)
	}
	_ = did // either outcome is legal here; the call must simply not error.

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	// Data plane and model agree after whatever happened.
	if got := c.VSwitch().BandwidthUsed(); got < m.BackplaneGbps-1e-6 || got > m.BackplaneGbps+1e-6 {
		t.Errorf("bandwidth %v vs model %v after reconfigure", got, m.BackplaneGbps)
	}
}

func TestTraceReplayThroughController(t *testing.T) {
	c := New(testOptions(AlgoGreedy))
	batch := smallBatch(6, 4)
	if _, err := c.Provision(batch); err != nil {
		t.Fatal(err)
	}
	placed := c.PlacedTenants()
	if len(placed) == 0 {
		t.Fatal("nothing placed")
	}

	// Synthesize a trace for the placed tenants and replay it.
	rng := rand.New(rand.NewSource(8))
	var gens []*traffic.FlowGen
	for _, tenant := range placed {
		gens = append(gens, traffic.NewFlowGen(rng, tenant, packet.IPv4Addr(20, 0, 0, 1), 8))
	}
	var buf bytes.Buffer
	tw := traffic.NewTraceWriter(&buf)
	if err := traffic.SynthesizeTrace(tw, gens, traffic.IMCMix(), 400, 1e6); err != nil {
		t.Fatal(err)
	}
	st, err := traffic.Replay(traffic.NewTraceReader(&buf), c.Replayer())
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != 400 {
		t.Fatalf("replayed %d packets", st.Packets)
	}
	if st.MeanLatency < 245 {
		t.Errorf("mean latency %v below the parser+deparser floor", st.MeanLatency)
	}
	for _, tenant := range placed {
		alloc := c.VSwitch().Allocations(tenant)
		if alloc != nil && alloc.Passes > st.MaxPasses {
			t.Errorf("replay max passes %d below tenant %d's allocation %d",
				st.MaxPasses, tenant, alloc.Passes)
		}
	}
}
