// Package core is the SFP system facade: the controller that runs the
// control-plane placement algorithms (internal/placement) and realizes
// their output on the virtualized data plane (internal/vswitch).
//
// A Controller owns one switch. Provision performs the initial joint
// placement of physical NFs and tenant SFCs; Depart and Arrive implement
// runtime update (§V-E) — departures release rules immediately, arrivals
// are placed incrementally against the pinned physical layout, and
// ReconfigureIfStale falls back to a full rebuild when the incremental
// state drifts too far from the global optimum.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sfp/internal/model"
	"sfp/internal/nf"
	"sfp/internal/pipeline"
	"sfp/internal/placement"
	"sfp/internal/traffic"
	"sfp/internal/vswitch"
	"sfp/internal/wal"
)

// Algorithm selects the placement solver.
type Algorithm int

// Solvers.
const (
	// AlgoIP is the exact integer program ("SFP-IP").
	AlgoIP Algorithm = iota
	// AlgoApprox is LP relaxation + randomized rounding ("SFP-Appro.").
	AlgoApprox
	// AlgoGreedy is the Algorithm-2 heuristic.
	AlgoGreedy
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoIP:
		return "sfp-ip"
	case AlgoApprox:
		return "sfp-appro"
	case AlgoGreedy:
		return "greedy"
	}
	return fmt.Sprintf("algo(%d)", int(a))
}

// Options configures a controller.
type Options struct {
	// Pipeline is the switch hardware description.
	Pipeline pipeline.Config
	// Consolidate selects the Eq. 11 memory model (recommended).
	Consolidate bool
	// Recirc is the allowed recirculation count R for placement.
	Recirc int
	// Algorithm picks the solver for Provision.
	Algorithm Algorithm
	// SolverTimeLimit bounds IP solves (Provision with AlgoIP and every
	// incremental replan). Zero means 10s — unbounded exact solves are a
	// foot-gun on anything beyond toy sizes.
	SolverTimeLimit time.Duration
	// SolverWorkers sets the control-plane solver worker count:
	// branch-and-bound workers for exact IP solves and replans, pricing
	// workers for decomposed full solves. 0 or 1 is the serial
	// deterministic reference; results are identical at any count.
	SolverWorkers int
	// DecomposeAbove routes full solves (Provision with AlgoIP and
	// ReconfigureIfStale's re-optimization) to the Lagrangian decomposition
	// solver once the tenant count reaches it: exact IP with a proven
	// optimum below, feasible placement with a certified optimality gap
	// (surfaced via LastReplan().Gap) above. Zero means
	// placement.DefaultDecomposeAbove; negative always solves exactly.
	DecomposeAbove int
	// Seed drives the randomized rounding.
	Seed int64
	// NoFallback disables the AlgoIP→AlgoApprox→AlgoGreedy degradation
	// chain: a solver timeout or error then fails the Provision instead
	// of trying the next-cheaper algorithm.
	NoFallback bool
	// IPNoWarmStart disables seeding the IP solver with the greedy
	// incumbent (reproduces the cold-solver behavior of the Fig. 9
	// experiment, where tight time limits return nothing).
	IPNoWarmStart bool
	// Logf, when set, receives operational log lines (solver fallbacks,
	// rollbacks). Nil discards them.
	Logf func(format string, args ...any)
	// Hook, when set, is called at named points inside mutating
	// transitions (e.g. "provision:journaled", "depart:deallocated").
	// The fault-injection harness uses it to kill the controller at
	// every possible crash point; production controllers leave it nil.
	Hook func(point string)
	// SnapshotEvery rotates the journal onto a fresh snapshot after this
	// many committed records. Zero means 1024; negative disables
	// automatic snapshots.
	SnapshotEvery int
}

func (o Options) withDefaults() Options {
	if o.Pipeline.Stages == 0 {
		o.Pipeline = pipeline.DefaultConfig()
	}
	if o.SolverTimeLimit == 0 {
		o.SolverTimeLimit = 10 * time.Second
	}
	if o.Recirc == 0 {
		o.Recirc = o.Pipeline.MaxPasses - 1
	}
	return o
}

// ProvisionInfo records how the last Provision's solve actually ran —
// in particular whether the graceful-degradation chain kicked in.
type ProvisionInfo struct {
	// Requested is the algorithm the Options asked for.
	Requested Algorithm
	// Used is the algorithm that produced the installed placement.
	Used Algorithm
	// FellBack is true when Used differs from Requested.
	FellBack bool
	// SolverStatus is the winning solver's status string.
	SolverStatus string
	// Attempts describes each failed solve ("sfp-ip: time limit ..."),
	// in order, before the winning one.
	Attempts []string
}

// Controller is the SFP control plane bound to one data plane.
type Controller struct {
	opts Options
	v    *vswitch.VSwitch

	updater *placement.Updater
	// sfcs maps tenant ID to its full SFC definition.
	sfcs map[uint32]*vswitch.SFC
	// placed tracks tenants currently installed in the data plane.
	placed map[uint32]bool
	// lastInfo describes the most recent Provision solve.
	lastInfo ProvisionInfo

	// log is the write-ahead journal; nil for non-durable controllers.
	log *wal.Log
	// recs counts committed records since the last snapshot rotation.
	recs int
	// snapBusy is set while a background snapshot (capture already taken)
	// is being serialized and rotated in; snapWG lets Close drain it.
	snapBusy atomic.Bool
	snapWG   sync.WaitGroup
}

// logf forwards to Options.Logf when set.
func (c *Controller) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// hook fires a named crash/trace point.
func (c *Controller) hook(point string) {
	if c.opts.Hook != nil {
		c.opts.Hook(point)
	}
}

// New creates a controller with an empty switch.
func New(opts Options) *Controller {
	opts = opts.withDefaults()
	return &Controller{
		opts:   opts,
		v:      vswitch.New(pipeline.New(opts.Pipeline)),
		sfcs:   make(map[uint32]*vswitch.SFC),
		placed: make(map[uint32]bool),
	}
}

// VSwitch exposes the data plane (for sending packets in tests/examples).
func (c *Controller) VSwitch() *vswitch.VSwitch { return c.v }

// buildInstance derives the placement instance from SFC definitions.
func (c *Controller) buildInstance(sfcs []*vswitch.SFC) *model.Instance {
	in := &model.Instance{
		Switch: model.SwitchConfig{
			Stages:          c.opts.Pipeline.Stages,
			BlocksPerStage:  c.opts.Pipeline.BlocksPerStage,
			EntriesPerBlock: c.opts.Pipeline.EntriesPerBlock,
			CapacityGbps:    c.opts.Pipeline.CapacityGbps,
		},
		NumTypes: nf.TypeCount,
		Recirc:   c.opts.Recirc,
	}
	for _, s := range sfcs {
		ch := &model.Chain{ID: int(s.Tenant), BandwidthGbps: s.BandwidthGbps}
		for _, cfg := range s.NFs {
			rules := len(cfg.Rules)
			if rules == 0 {
				rules = 1
			}
			ch.NFs = append(ch.NFs, model.ChainNF{Type: int(cfg.Type), Rules: rules})
		}
		in.Chains = append(in.Chains, ch)
	}
	return in
}

// decomposeAbove resolves the tenant-count threshold above which full
// solves run the Lagrangian decomposition (0 = the placement default,
// negative = never).
func (c *Controller) decomposeAbove() int {
	if c.opts.DecomposeAbove == 0 {
		return placement.DefaultDecomposeAbove
	}
	return c.opts.DecomposeAbove
}

// solveWith runs one specific algorithm.
func (c *Controller) solveWith(algo Algorithm, in *model.Instance) (*placement.Result, error) {
	build := model.BuildOptions{Consolidate: c.opts.Consolidate}
	switch algo {
	case AlgoIP:
		if n := c.decomposeAbove(); n > 0 && len(in.Chains) >= n {
			// At scale the exact IP's root LP alone outlasts any sane time
			// limit; the decomposition returns a feasible placement with a
			// certified gap in milliseconds (exact IP remains the reference
			// below the threshold and via DecomposeAbove < 0).
			return placement.SolveDecomposed(in, placement.DecomposeOptions{
				Build: build, TimeLimit: c.opts.SolverTimeLimit, Workers: c.opts.SolverWorkers,
			})
		}
		return placement.SolveIP(in, placement.IPOptions{
			Build: build, TimeLimit: c.opts.SolverTimeLimit, NoWarmStart: c.opts.IPNoWarmStart,
			Workers: c.opts.SolverWorkers,
		})
	case AlgoApprox:
		return placement.SolveApprox(in, placement.ApproxOptions{Build: build, Seed: c.opts.Seed})
	case AlgoGreedy:
		return placement.SolveGreedy(in, placement.GreedyOptions{Consolidate: c.opts.Consolidate})
	}
	return nil, fmt.Errorf("core: unknown algorithm %v", algo)
}

// fallbackChain lists the algorithms to try, most to least precise,
// starting from the requested one.
func fallbackChain(a Algorithm) []Algorithm {
	switch a {
	case AlgoIP:
		return []Algorithm{AlgoIP, AlgoApprox, AlgoGreedy}
	case AlgoApprox:
		return []Algorithm{AlgoApprox, AlgoGreedy}
	default:
		return []Algorithm{a}
	}
}

// solve runs the configured algorithm with graceful degradation: when a
// solver errors, proves infeasibility, or hits its time limit with no
// incumbent (an empty placement), the next-cheaper algorithm in the
// AlgoIP→AlgoApprox→AlgoGreedy chain takes over instead of failing the
// whole Provision. The chain taken is recorded in ProvisionInfo.
func (c *Controller) solve(in *model.Instance) (*placement.Result, ProvisionInfo, error) {
	info := ProvisionInfo{Requested: c.opts.Algorithm, Used: c.opts.Algorithm}
	chain := fallbackChain(c.opts.Algorithm)
	if c.opts.NoFallback {
		chain = chain[:1]
	}
	var lastErr error
	for i, algo := range chain {
		res, err := c.solveWith(algo, in)
		var reason string
		switch {
		case err != nil:
			reason = err.Error()
			lastErr = err
		case res.Assignment == nil:
			reason = fmt.Sprintf("no assignment (%s)", res.Status)
			lastErr = fmt.Errorf("core: %s produced no assignment (%s)", algo, res.Status)
		case strings.HasPrefix(res.Status, "limit"):
			// SolveIP under a time limit with no incumbent reports the
			// empty placement ("limit(no-incumbent)") — worthless when a
			// heuristic can do better.
			reason = "time limit with no incumbent"
			lastErr = fmt.Errorf("core: %s hit its time limit with no incumbent", algo)
		default:
			info.Used = algo
			info.FellBack = i > 0
			info.SolverStatus = res.Status
			if info.FellBack {
				c.logf("core: solver fallback: %s -> %s after %v", info.Requested, algo, info.Attempts)
			}
			return res, info, nil
		}
		info.Attempts = append(info.Attempts, fmt.Sprintf("%s: %s", algo, reason))
		c.logf("core: %s solve failed (%s), trying next solver", algo, reason)
	}
	return nil, info, fmt.Errorf("core: all solvers failed: %w", lastErr)
}

// LastProvision reports how the most recent Provision's solve went
// (requested vs. used algorithm, fallback attempts).
func (c *Controller) LastProvision() ProvisionInfo { return c.lastInfo }

// LastReplan reports how the most recent incremental replan executed
// (fast-path vs. full rebuild, warm start, admissions, solve time). Zero
// value before the first replan or when the controller runs AlgoGreedy.
func (c *Controller) LastReplan() placement.ReplanStats {
	if c.updater == nil {
		return placement.ReplanStats{}
	}
	return c.updater.LastReplan()
}

// Provision performs the initial joint placement for a batch of tenant
// SFCs and installs the result on the switch. Tenants the optimizer leaves
// out (resources!) remain known as candidates for later replans. It returns
// the achieved metrics.
func (c *Controller) Provision(sfcs []*vswitch.SFC) (model.Metrics, error) {
	byTenant := make(map[uint32]*vswitch.SFC, len(sfcs))
	for _, s := range sfcs {
		if _, dup := c.sfcs[s.Tenant]; dup {
			return model.Metrics{}, fmt.Errorf("core: tenant %d already provisioned", s.Tenant)
		}
		byTenant[s.Tenant] = s
	}
	if c.updater != nil {
		return model.Metrics{}, fmt.Errorf("core: already provisioned; use Arrive/Depart")
	}
	in := c.buildInstance(sfcs)
	res, info, err := c.solve(in)
	if err != nil {
		return model.Metrics{}, err
	}
	c.lastInfo = info
	// Journal the full intended state and fsync it BEFORE the first
	// southbound effect: after a crash the journal is always at least as
	// new as the switch, so recovery plus reconciliation can finish or
	// undo whatever the install got to.
	if c.log != nil {
		st := &stateRec{
			Provisioned: true,
			SFCs:        fromSFCs(sortSFCs(sfcs)),
			Live:        deployedEntries(in, res.Assignment, nil),
			Layout:      cloneLayout(res.Assignment.X),
		}
		ic := info
		st.Info = &ic
		if err := c.journalCommit(recProvisionBegin, st); err != nil {
			return model.Metrics{}, err
		}
	}
	c.hook("provision:journaled")
	journal, err := c.install("provision", in, res.Assignment, byTenant)
	if err != nil {
		c.abort(recProvisionAbort)
		return model.Metrics{}, err
	}
	build := model.BuildOptions{Consolidate: c.opts.Consolidate}
	c.updater, err = placement.NewUpdater(in, res.Assignment, build)
	if err != nil {
		// The switch is configured but the incremental-update state could
		// not be built: undo the installs so nothing is stranded.
		pf := c.partialFailure("provision", err, journal)
		c.abort(recProvisionAbort)
		return model.Metrics{}, pf
	}
	// Commit: tenants become known only once fully realized.
	for _, s := range sfcs {
		c.sfcs[s.Tenant] = s
	}
	c.hook("provision:precommit")
	if err := c.journalCommit(recProvisionCommit, nil); err != nil {
		return res.Metrics, err
	}
	c.hook("provision:committed")
	return res.Metrics, nil
}

// sortSFCs returns the batch in ascending-tenant order (the canonical
// serialization order) without mutating the caller's slice.
func sortSFCs(sfcs []*vswitch.SFC) []*vswitch.SFC {
	out := append([]*vswitch.SFC(nil), sfcs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// abort journals a bare abort marker; best-effort, since the in-memory
// rollback already happened and a journal error cannot unwind it (an
// uncommitted begin record is presumed aborted at recovery anyway).
func (c *Controller) abort(kind byte) {
	if err := c.journalCommit(kind, nil); err != nil {
		c.logf("core: journaling abort: %v", err)
	}
}

// install realizes an assignment on the (empty or partially filled) data
// plane: physical NFs sized to their assigned rules, then tenant rules.
// It is transactional: the full rule plan is staged first, each step is
// journaled as it applies, and any step failure rolls back this install's
// already-applied steps (tenant rules, newly created physical NFs) so the
// data plane is never left half-configured. Failures surface as
// *PartialFailureError. On success the journal is returned so the caller
// can extend the transaction (e.g. roll back if a later step fails).
// byTenant maps tenant ID to chain definition for every tenant the
// assignment may deploy (extra entries are harmless — already-placed
// tenants are skipped).
func (c *Controller) install(op string, in *model.Instance, a *model.Assignment, byTenant map[uint32]*vswitch.SFC) (*installJournal, error) {
	journal := &installJournal{}
	if err := c.apply(in, a, byTenant, journal); err != nil {
		pf := c.partialFailure(op, err, journal)
		c.logf("core: %v", pf)
		return nil, pf
	}
	return journal, nil
}

// ruleNeed computes the rule capacity demanded per (type, stage) cell by
// every deployed chain: the NF rule counts, the per-pass REC catch-alls
// carried by tail NFs, and the steering catch-alls for tail-less passes
// that live in the chain's first NF table (see vswitch.AllocateAt).
func ruleNeed(in *model.Instance, a *model.Assignment) map[[2]int]int {
	S := in.Switch.Stages
	need := map[[2]int]int{}
	for l, ch := range in.Chains {
		if !a.Deployed(l) {
			continue
		}
		hasTail := map[int]bool{}
		for j, k := range a.Stages[l] {
			need[[2]int{ch.NFs[j].Type, k % S}] += ch.NFs[j].Rules
			// The tail NF of a non-final pass also carries the tenant's
			// catch-all REC rule (one extra entry).
			if j+1 < len(a.Stages[l]) && a.Stages[l][j+1]/S > k/S {
				need[[2]int{ch.NFs[j].Type, k % S}]++
				hasTail[k/S] = true
			}
		}
		first := [2]int{ch.NFs[0].Type, a.Stages[l][0] % S}
		for p := 0; p < a.Passes(l, S)-1; p++ {
			if !hasTail[p] {
				need[first]++
			}
		}
	}
	return need
}

// apply performs the install steps, recording each in the journal.
func (c *Controller) apply(in *model.Instance, a *model.Assignment, byTenant map[uint32]*vswitch.SFC, journal *installJournal) error {
	S := in.Switch.Stages
	E := in.Switch.EntriesPerBlock
	need := ruleNeed(in, a)
	// Install or grow physical NFs. Block-align capacities so the reserved
	// memory matches the model's accounting.
	for i := 1; i <= in.NumTypes; i++ {
		for s := 0; s < S; s++ {
			if !a.X[i-1][s] {
				continue
			}
			capacity := need[[2]int{i, s}]
			if capacity > 0 {
				capacity = (capacity + E - 1) / E * E
			}
			typ := nf.Type(i)
			if existing := c.v.FindPhysical(s, typ); existing != nil {
				if capacity > existing.Table.Capacity {
					// Grows are not journaled: they cannot strand tenant
					// rules, and spare capacity after a rollback is benign.
					if err := c.v.Pipe.Stages[s].GrowTable(existing.Table.Name, capacity); err != nil {
						return err
					}
				}
				continue
			}
			if _, err := c.v.InstallPhysicalNF(s, typ, capacity); err != nil {
				return err
			}
			journal.physical = append(journal.physical, StagedNF{Stage: s, Type: typ})
		}
	}
	// Install tenant rules at the optimizer's placements, all pending
	// tenants in one batch pass over the pipeline. AllocateBatch admits
	// item-by-item exactly as sequential AllocateAt calls would, and on
	// failure rolls its partial application back internally; the tenants
	// it undid are recorded in the journal so the PartialFailureError
	// reports them as rolled back.
	items := make([]vswitch.BatchItem, 0, len(in.Chains))
	for l, ch := range in.Chains {
		if !a.Deployed(l) {
			continue
		}
		sfc, ok := byTenant[uint32(ch.ID)]
		if !ok || c.placed[sfc.Tenant] {
			continue
		}
		placements := make([]vswitch.Placement, len(a.Stages[l]))
		for j, k := range a.Stages[l] {
			placements[j] = vswitch.Placement{
				NFIndex: j,
				Type:    nf.Type(ch.NFs[j].Type),
				Stage:   k % S,
				Pass:    k / S,
			}
		}
		items = append(items, vswitch.BatchItem{SFC: sfc, Placements: placements})
	}
	if len(items) == 0 {
		return nil
	}
	allocs, err := c.v.AllocateBatch(items)
	if err != nil {
		var be *vswitch.BatchError
		if errors.As(err, &be) {
			journal.undone = append(journal.undone, be.Applied...)
			return fmt.Errorf("core: installing tenant %d: %w", be.Tenant, be.Cause)
		}
		return err
	}
	for _, al := range allocs {
		c.placed[al.Tenant] = true
		journal.tenants = append(journal.tenants, al.Tenant)
	}
	return nil
}

// Depart removes a tenant from both planes. Like every other mutating
// transition it runs as a journaled transaction: the intent is durable
// before the deallocation touches the switch, and a planner failure after
// the deallocation restores the tenant's rules from the captured undo
// state instead of stranding a half-departed tenant.
func (c *Controller) Depart(tenant uint32) error {
	if c.updater == nil {
		return fmt.Errorf("core: not provisioned")
	}
	if _, known := c.sfcs[tenant]; !known {
		return fmt.Errorf("core: unknown tenant %d", tenant)
	}
	placed := c.placed[tenant]
	if err := c.journalCommit(recDepartBegin, &departRec{Tenant: tenant, Placed: placed}); err != nil {
		return err
	}
	c.hook("depart:journaled")
	if placed {
		// Capture the undo state before touching the switch: Deallocate
		// frees the rules, so the restore must come from a copy.
		undo := c.v.Allocations(tenant)
		if err := c.v.Deallocate(tenant); err != nil {
			c.abort(recDepartAbort)
			return err
		}
		c.hook("depart:deallocated")
		if err := c.updater.Depart(int(tenant)); err != nil {
			// Planner refused: re-install the captured allocation so the
			// data plane matches the still-live planner state.
			if undo != nil {
				if _, rerr := c.v.AllocateAt(undo.Spec, undo.Placements); rerr != nil {
					err = fmt.Errorf("%w (restoring rules also failed: %v)", err, rerr)
				}
			}
			c.abort(recDepartAbort)
			return err
		}
		delete(c.placed, tenant)
	} else {
		// A waiting tenant has no rules, but the planner still knows it:
		// withdraw it so future replans stop considering a ghost.
		c.updater.Withdraw(int(tenant))
	}
	delete(c.sfcs, tenant)
	c.hook("depart:precommit")
	if err := c.journalCommit(recDepartCommit, nil); err != nil {
		return err
	}
	c.hook("depart:committed")
	return nil
}

// DepartMany removes a batch of tenants from both planes, equivalent to
// sequential Depart calls but amortized: one journaled transaction (one
// begin fsync, one commit fsync), one batched deallocate pass over the
// data plane's tables, and one cheap residual patch per tenant in the
// planner — no solve. Like Depart it journals the intent before touching
// the switch, and on a planner refusal partway through it restores the
// remaining tenants' rules from the captured undo state and commits only
// the prefix that fully departed, so both planes stay consistent.
func (c *Controller) DepartMany(tenants []uint32) error {
	if c.updater == nil {
		return fmt.Errorf("core: not provisioned")
	}
	if len(tenants) == 0 {
		return nil
	}
	seen := make(map[uint32]bool, len(tenants))
	entries := make([]departRec, 0, len(tenants))
	var placedTenants []uint32
	for _, t := range tenants {
		if _, known := c.sfcs[t]; !known {
			return fmt.Errorf("core: unknown tenant %d", t)
		}
		if seen[t] {
			return fmt.Errorf("core: tenant %d appears twice in batch", t)
		}
		seen[t] = true
		placed := c.placed[t]
		entries = append(entries, departRec{Tenant: t, Placed: placed})
		if placed {
			placedTenants = append(placedTenants, t)
		}
	}
	if err := c.journalCommit(recDepartManyBegin, &departManyRec{Entries: entries}); err != nil {
		return err
	}
	c.hook("departmany:journaled")
	// Capture the undo state before touching the switch: DeallocateBatch
	// frees the rules, so any restore must come from copies.
	undos := make(map[uint32]*vswitch.Allocation, len(placedTenants))
	for _, t := range placedTenants {
		undos[t] = c.v.Allocations(t)
	}
	// One pass over every table removes the whole batch; all-or-nothing,
	// so a failure here leaves the switch unchanged.
	if err := c.v.DeallocateBatch(placedTenants); err != nil {
		c.abort(recDepartManyAbort)
		return err
	}
	c.hook("departmany:deallocated")
	// Patch the planner: each departure is a cheap residual delta, no
	// solve. A refusal partway splits the batch — the prefix has fully
	// departed, the rest get their rules restored and stay live.
	for i, e := range entries {
		var perr error
		if e.Placed {
			perr = c.updater.Depart(int(e.Tenant))
		} else {
			c.updater.Withdraw(int(e.Tenant))
		}
		if perr == nil {
			delete(c.placed, e.Tenant)
			delete(c.sfcs, e.Tenant)
			continue
		}
		// Restore the data-plane rules of this and every remaining placed
		// tenant; the planner still considers them live.
		err := perr
		for _, rest := range entries[i:] {
			undo := undos[rest.Tenant]
			if !rest.Placed || undo == nil {
				continue
			}
			if _, rerr := c.v.AllocateAt(undo.Spec, undo.Placements); rerr != nil {
				err = fmt.Errorf("%w (restoring tenant %d also failed: %v)", err, rest.Tenant, rerr)
			}
		}
		departed := make([]uint32, 0, i)
		for _, done := range entries[:i] {
			departed = append(departed, done.Tenant)
		}
		c.hook("departmany:precommit")
		if jerr := c.journalCommit(recDepartManyCommit, &abortRec{Tenants: departed}); jerr != nil {
			c.logf("core: journaling partial departmany commit: %v", jerr)
		}
		return err
	}
	c.hook("departmany:precommit")
	if err := c.journalCommit(recDepartManyCommit, nil); err != nil {
		return err
	}
	c.hook("departmany:committed")
	return nil
}

// Arrive registers a new tenant SFC and replans incrementally: survivors
// stay where they are; the arrival (and any earlier waiting candidates)
// are placed into free resources. It reports whether this tenant was
// placed.
func (c *Controller) Arrive(sfc *vswitch.SFC) (bool, error) {
	if _, err := c.ArriveMany([]*vswitch.SFC{sfc}); err != nil {
		return false, err
	}
	return c.placed[sfc.Tenant], nil
}

// ArriveMany registers a batch of new tenant SFCs and amortizes the
// arrival cost: all chains are registered first, ONE incremental replan
// places them (plus any earlier waiting candidates), and the delta is
// installed in a single batch pass over the data plane. It returns the
// tenants from this batch that were placed. On an install failure the
// data plane is rolled back and the whole batch is withdrawn from the
// planner and registry, as if ArriveMany was never called; earlier
// waiting candidates the replan admitted stay known and will be retried
// by the next replan. A replan failure leaves the batch registered as
// waiting candidates (matching Arrive's long-standing semantics).
func (c *Controller) ArriveMany(sfcs []*vswitch.SFC) ([]uint32, error) {
	if c.updater == nil {
		return nil, fmt.Errorf("core: not provisioned")
	}
	if len(sfcs) == 0 {
		return nil, nil
	}
	for i, s := range sfcs {
		if _, dup := c.sfcs[s.Tenant]; dup {
			return nil, fmt.Errorf("core: tenant %d already known", s.Tenant)
		}
		for _, earlier := range sfcs[:i] {
			if earlier.Tenant == s.Tenant {
				return nil, fmt.Errorf("core: tenant %d appears twice in batch", s.Tenant)
			}
		}
	}
	for _, s := range sfcs {
		ch := c.buildInstance([]*vswitch.SFC{s}).Chains[0]
		if err := c.updater.Arrive(ch); err != nil {
			// Withdraw the part of the batch already registered so the
			// planner matches the registry.
			for _, done := range sfcs {
				if done.Tenant == s.Tenant {
					break
				}
				c.updater.Withdraw(int(done.Tenant))
				delete(c.sfcs, done.Tenant)
			}
			return nil, err
		}
		c.sfcs[s.Tenant] = s
	}
	c.hook("arrive:registered")
	// Stage the registration record: it becomes durable together with the
	// place intent under a single fsync (or alone, if the replan fails and
	// the batch stays waiting).
	if err := c.journal(recArriveRegister, &registerRec{SFCs: fromSFCs(sortSFCs(sfcs))}); err != nil {
		for _, s := range sfcs {
			c.updater.Withdraw(int(s.Tenant))
			delete(c.sfcs, s.Tenant)
		}
		return nil, err
	}
	if _, err := c.place(sfcs); err != nil {
		return nil, err
	}
	var placed []uint32
	for _, s := range sfcs {
		if c.placed[s.Tenant] {
			placed = append(placed, s.Tenant)
		}
	}
	return placed, nil
}

// Replan re-runs the incremental placement over the waiting candidates
// and realizes whatever it newly admits, as one journaled transaction. It
// returns the tenants newly placed by this call. With nothing waiting and
// nothing stranded it is a cheap no-op.
func (c *Controller) Replan() ([]uint32, error) {
	if c.updater == nil {
		return nil, fmt.Errorf("core: not provisioned")
	}
	if c.updater.Waiting() == 0 {
		in, a, _ := c.updater.Current()
		if len(deployedEntries(in, a, c.placed)) == 0 {
			return nil, nil
		}
	}
	return c.place(nil)
}

// place runs one incremental replan and realizes the newly admitted
// chains in the data plane, as a journaled transaction (placeBegin before
// the install, placeCommit/placeAbort after). batch lists the arrivals to
// withdraw wholesale when the install fails (nil for a bare Replan). It
// returns the tenants this call placed.
func (c *Controller) place(batch []*vswitch.SFC) ([]uint32, error) {
	if err := c.replan(); err != nil {
		// Keep any staged registration durable: the batch stays known as
		// waiting candidates for the next replan.
		if cerr := c.journalCommit(0, nil); cerr != nil {
			c.logf("core: committing registration: %v", cerr)
		}
		return nil, err
	}
	in, a, _ := c.updater.Current()
	// The delta is every deployed chain not yet realized on the switch —
	// the replan's admissions plus any chain a previous failed install
	// left stranded.
	delta := deployedEntries(in, a, c.placed)
	if err := c.journalCommit(recPlaceBegin, &placeRec{Live: delta, Layout: cloneLayout(a.X)}); err != nil {
		return nil, err
	}
	c.hook("place:journaled")
	if _, err := c.install("arrive", in, a, c.sfcs); err != nil {
		// The data plane was rolled back by install; erase the batch from
		// the planner and the registry so the controller forgets it.
		// Chains the replan admitted beyond the batch stay live in the
		// planner and are re-attempted by the next install pass.
		withdrawn := make([]uint32, 0, len(batch))
		for _, s := range batch {
			c.updater.Withdraw(int(s.Tenant))
			delete(c.sfcs, s.Tenant)
			withdrawn = append(withdrawn, s.Tenant)
		}
		if jerr := c.journalCommit(recPlaceAbort, &abortRec{Tenants: withdrawn}); jerr != nil {
			c.logf("core: journaling abort: %v", jerr)
		}
		return nil, err
	}
	c.hook("place:precommit")
	if err := c.journalCommit(recPlaceCommit, nil); err != nil {
		return nil, err
	}
	c.hook("place:committed")
	var newly []uint32
	for _, e := range delta {
		if c.placed[e.Tenant] {
			newly = append(newly, e.Tenant)
		}
	}
	return newly, nil
}

// replan runs one incremental replan with the controller's configured
// algorithm. Greedy controllers take the pin-respecting greedy pass
// (§V-D's prompt update): unlike the pinned IP it cannot time out, so a
// large ArriveMany batch never silently strands the whole chunk as
// waiting candidates. Everything else keeps the pinned IP under the
// solver time limit.
func (c *Controller) replan() error {
	if c.opts.Algorithm == AlgoGreedy {
		_, err := c.updater.ReplanGreedy()
		return err
	}
	_, err := c.updater.Replan(placement.ReplanOptions{
		TimeLimit:     c.opts.SolverTimeLimit,
		SolverWorkers: c.opts.SolverWorkers,
	})
	return err
}

// Snapshot exposes the planner's current instance, assignment, and
// metrics (observability: cross-check the data plane against the model,
// e.g. with model.Verify).
func (c *Controller) Snapshot() (*model.Instance, *model.Assignment, model.Metrics, error) {
	if c.updater == nil {
		return nil, nil, model.Metrics{}, fmt.Errorf("core: not provisioned")
	}
	in, a, m := c.updater.Current()
	return in, a, m, nil
}

// Metrics returns the current placement metrics.
func (c *Controller) Metrics() (model.Metrics, error) {
	if c.updater == nil {
		return model.Metrics{}, fmt.Errorf("core: not provisioned")
	}
	_, _, m := c.updater.Current()
	return m, nil
}

// ReconfigureIfStale compares the incremental state against a fresh global
// optimization and rebuilds the whole data plane when the objective gap
// exceeds the threshold (§V-E: "once the distance between the current
// configuration and the optimal one exceeds the threshold, the whole SFCs
// and pipeline would be automatically re-configured"). Returns whether a
// rebuild happened.
func (c *Controller) ReconfigureIfStale(threshold float64) (bool, error) {
	if c.updater == nil {
		return false, fmt.Errorf("core: not provisioned")
	}
	// Full plumbing, like the replan path: worker count and decomposition
	// threshold ride along, and the updater re-enters its retained full-model
	// basis on the exact path (ReplanOptions.WarmBasis stays nil so the
	// internally retained basis applies). The solve's certified gap is
	// surfaced through LastReplan().Gap.
	did, _, err := c.updater.MaybeReconfigure(threshold, placement.ReplanOptions{
		TimeLimit:      c.opts.SolverTimeLimit,
		SolverWorkers:  c.opts.SolverWorkers,
		DecomposeAbove: c.opts.DecomposeAbove,
	})
	if err != nil || !did {
		return false, err
	}
	// The planner has adopted the new global plan; journal it in full
	// before wiping the data plane, so a crash mid-rebuild recovers the
	// adopted plan with an empty placed set and Reconcile re-realizes it.
	if err := c.journalCommit(recReconfigBegin, c.stateRecNow()); err != nil {
		return true, err
	}
	c.hook("reconfig:journaled")
	// Full rebuild: fresh pipeline, reinstall everything at the new
	// placements (the disruptive path the paper warns costs a reboot).
	c.v = vswitch.New(pipeline.New(c.opts.Pipeline))
	c.placed = make(map[uint32]bool)
	in, a, _ := c.updater.Current()
	if _, err := c.install("reconfigure", in, a, c.sfcs); err != nil {
		c.abort(recReconfigAbort)
		return true, err
	}
	c.hook("reconfig:precommit")
	if err := c.journalCommit(recReconfigCommit, nil); err != nil {
		return true, err
	}
	c.hook("reconfig:committed")
	return true, nil
}

// Replayer returns the controller's switch as a trace processor — the
// vswitch satisfies traffic.Processor directly, so captured or synthesized
// traces can be replayed against a provisioned switch and aggregated into
// latency/drop statistics.
func (c *Controller) Replayer() traffic.Processor { return c.v }

// PlacedTenants returns the tenants currently installed in the data plane.
func (c *Controller) PlacedTenants() []uint32 {
	out := make([]uint32, 0, len(c.placed))
	for t := range c.placed {
		out = append(out, t)
	}
	return out
}
