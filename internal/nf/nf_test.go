package nf

import (
	"math/rand"
	"testing"

	"sfp/internal/packet"
	"sfp/internal/pipeline"
)

// applySpec builds a standalone table from a spec (without tenant/pass
// prefix), installs the given rules, and applies one packet.
func applySpec(t *testing.T, spec *Spec, rules []ConfigRule, p *packet.Packet, nowNs float64) *pipeline.Rule {
	t.Helper()
	tbl := pipeline.NewTable(spec.Type.String(), spec.Keys, 1000)
	for name, fn := range spec.Actions {
		tbl.RegisterAction(name, fn)
	}
	tbl.SetDefault(spec.Default)
	for _, r := range rules {
		if err := tbl.Insert(&pipeline.Rule{
			Priority: r.Priority, Matches: r.Matches, Action: r.Action, Params: r.Params,
		}); err != nil {
			t.Fatal(err)
		}
	}
	regs := pipeline.NewRegisterFile()
	for name, size := range spec.Registers {
		if err := regs.Alloc(name, size); err != nil {
			t.Fatal(err)
		}
	}
	ctx := &pipeline.Context{Regs: regs, NowNs: nowNs}
	return tbl.Apply(ctx, p)
}

func TestAllTypesHaveSpecs(t *testing.T) {
	if len(AllTypes()) != TypeCount || TypeCount != 10 {
		t.Fatalf("TypeCount = %d, want 10", TypeCount)
	}
	for _, typ := range AllTypes() {
		spec := ForType(typ)
		if spec.Type != typ {
			t.Errorf("%v: spec.Type mismatch", typ)
		}
		if len(spec.Keys) == 0 {
			t.Errorf("%v: no match keys", typ)
		}
		if _, ok := spec.Actions[spec.Default]; !ok {
			t.Errorf("%v: default action %q not registered", typ, spec.Default)
		}
		if spec.RuleWidthBits() <= pipeline.FieldTenantID.Bits()+pipeline.FieldPass.Bits() {
			t.Errorf("%v: rule width %d should exceed tenant+pass prefix", typ, spec.RuleWidthBits())
		}
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	for _, typ := range AllTypes() {
		got, err := ParseType(typ.String())
		if err != nil || got != typ {
			t.Errorf("ParseType(%q) = %v, %v", typ.String(), got, err)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Error("ParseType accepted bogus name")
	}
}

func TestFirewallDeny(t *testing.T) {
	rules := []ConfigRule{{
		Priority: 10,
		Matches: []pipeline.Match{
			pipeline.Masked(uint64(packet.IPv4Addr(10, 1, 1, 0)), 0xffffff00),
			pipeline.Wildcard(),
			pipeline.Eq(uint64(packet.ProtoTCP)),
			pipeline.Eq(22),
		},
		Action: "deny",
	}}
	blocked := packet.NewBuilder().WithIPv4(packet.IPv4Addr(10, 1, 1, 5), 9).WithTCP(999, 22).Build()
	applySpec(t, ForType(Firewall), rules, blocked, 0)
	if !blocked.Meta.Drop {
		t.Error("firewall did not drop matching packet")
	}
	passed := packet.NewBuilder().WithIPv4(packet.IPv4Addr(10, 2, 1, 5), 9).WithTCP(999, 22).Build()
	applySpec(t, ForType(Firewall), rules, passed, 0)
	if passed.Meta.Drop {
		t.Error("firewall dropped non-matching packet")
	}
}

func TestLoadBalancerDNAT(t *testing.T) {
	vip := uint64(packet.IPv4Addr(20, 0, 0, 1))
	backend := uint64(packet.IPv4Addr(10, 0, 0, 7))
	rules := []ConfigRule{{
		Matches: []pipeline.Match{pipeline.Eq(vip), pipeline.Eq(80)},
		Action:  "dnat",
		Params:  []uint64{backend, 8080},
	}}
	p := packet.NewBuilder().WithIPv4(1, uint32(vip)).WithTCP(5555, 80).Build()
	applySpec(t, ForType(LoadBalancer), rules, p, 0)
	if p.IPv4.Dst != uint32(backend) {
		t.Errorf("dst = %s, want backend", packet.FormatIPv4(p.IPv4.Dst))
	}
	if p.TCP.DstPort != 8080 {
		t.Errorf("dst port = %d, want 8080", p.TCP.DstPort)
	}
}

func TestLoadBalancerPoolSelect(t *testing.T) {
	spec := ForType(LoadBalancer)
	tbl := pipeline.NewTable("lb", spec.Keys, 10)
	for name, fn := range spec.Actions {
		tbl.RegisterAction(name, fn)
	}
	// Rule whose action is the hash-based pool selection (tab_lbhash path).
	vip := uint64(packet.IPv4Addr(20, 0, 0, 1))
	if err := tbl.Insert(&pipeline.Rule{
		Matches: []pipeline.Match{pipeline.Eq(vip), pipeline.Eq(80)},
		Action:  "pool_select", Params: []uint64{0, 4},
	}); err != nil {
		t.Fatal(err)
	}
	regs := pipeline.NewRegisterFile()
	regs.Alloc("lb_pool", 256)
	pool := []uint32{
		packet.IPv4Addr(10, 0, 0, 1), packet.IPv4Addr(10, 0, 0, 2),
		packet.IPv4Addr(10, 0, 0, 3), packet.IPv4Addr(10, 0, 0, 4),
	}
	for i, b := range pool {
		regs.Write("lb_pool", i, int64(b))
	}
	ctx := &pipeline.Context{Regs: regs}

	// Same flow always lands on the same backend; the backend is in the pool.
	seen := map[uint32]bool{}
	var first uint32
	for trial := 0; trial < 3; trial++ {
		p := packet.NewBuilder().WithIPv4(packet.IPv4Addr(1, 2, 3, 4), uint32(vip)).WithTCP(4321, 80).Build()
		tbl.Apply(ctx, p)
		if trial == 0 {
			first = p.IPv4.Dst
		} else if p.IPv4.Dst != first {
			t.Fatal("pool selection not deterministic per flow")
		}
	}
	inPool := false
	for _, b := range pool {
		if b == first {
			inPool = true
		}
	}
	if !inPool {
		t.Errorf("selected backend %s not in pool", packet.FormatIPv4(first))
	}
	// Different flows spread across backends.
	for sp := uint16(1000); sp < 1100; sp++ {
		p := packet.NewBuilder().WithIPv4(packet.IPv4Addr(1, 2, 3, 4), uint32(vip)).WithTCP(sp, 80).Build()
		tbl.Apply(ctx, p)
		seen[p.IPv4.Dst] = true
	}
	if len(seen) < 3 {
		t.Errorf("only %d backends used across 100 flows, want ≥3", len(seen))
	}
}

func TestClassifierAndRouter(t *testing.T) {
	clsRules := []ConfigRule{{
		Matches: []pipeline.Match{pipeline.Eq(uint64(packet.ProtoTCP)), pipeline.Between(8000, 9000)},
		Action:  "set_class", Params: []uint64{3},
	}}
	p := packet.NewBuilder().WithIPv4(1, packet.IPv4Addr(10, 1, 2, 3)).WithTCP(100, 8443).Build()
	applySpec(t, ForType(TrafficClassifier), clsRules, p, 0)
	if p.Meta.ClassID != 3 {
		t.Errorf("class = %d, want 3", p.Meta.ClassID)
	}

	rtRules := []ConfigRule{{
		Matches: []pipeline.Match{pipeline.Prefix(uint64(packet.IPv4Addr(10, 1, 0, 0)), 16)},
		Action:  "fwd", Params: []uint64{17},
	}}
	ttl := p.IPv4.TTL
	applySpec(t, ForType(Router), rtRules, p, 0)
	if p.Meta.EgressPort != 17 {
		t.Errorf("egress = %d, want 17", p.Meta.EgressPort)
	}
	if p.IPv4.TTL != ttl-1 {
		t.Errorf("TTL = %d, want %d", p.IPv4.TTL, ttl-1)
	}
}

func TestRouterTTLExpiry(t *testing.T) {
	rtRules := []ConfigRule{{
		Matches: []pipeline.Match{pipeline.Prefix(0, 0)},
		Action:  "fwd", Params: []uint64{1},
	}}
	p := packet.NewBuilder().WithIPv4(1, 2).WithTCP(1, 2).Build()
	p.IPv4.TTL = 1
	applySpec(t, ForType(Router), rtRules, p, 0)
	if !p.Meta.Drop {
		t.Error("TTL-expired packet not dropped")
	}
}

func TestNATRewrite(t *testing.T) {
	src := uint64(packet.IPv4Addr(192, 168, 0, 5))
	pub := uint64(packet.IPv4Addr(203, 0, 113, 1))
	rules := []ConfigRule{{
		Matches: []pipeline.Match{pipeline.Eq(src), pipeline.Eq(3333)},
		Action:  "snat", Params: []uint64{pub, 40000},
	}}
	p := packet.NewBuilder().WithIPv4(uint32(src), 9).WithUDP(3333, 53).Build()
	applySpec(t, ForType(NAT), rules, p, 0)
	if p.IPv4.Src != uint32(pub) || p.UDP.SrcPort != 40000 {
		t.Errorf("snat result: %s:%d", packet.FormatIPv4(p.IPv4.Src), p.UDP.SrcPort)
	}
}

func TestRateLimiterTokenBucket(t *testing.T) {
	spec := ForType(RateLimiter)
	tbl := pipeline.NewTable("rl", spec.Keys, 10)
	for name, fn := range spec.Actions {
		tbl.RegisterAction(name, fn)
	}
	// bucket 0: 1 token/ms, burst 3.
	if err := tbl.Insert(&pipeline.Rule{
		Matches: []pipeline.Match{pipeline.Eq(2)},
		Action:  "limit", Params: []uint64{0, 1, 3},
	}); err != nil {
		t.Fatal(err)
	}
	regs := pipeline.NewRegisterFile()
	regs.Alloc("rl_tokens", 256)
	regs.Alloc("rl_last_ms", 256)
	regs.Write("rl_tokens", 0, 3)

	dropped := 0
	for i := 0; i < 10; i++ {
		p := packet.NewBuilder().WithIPv4(1, 2).WithTCP(1, 2).Build()
		p.Meta.ClassID = 2
		tbl.Apply(&pipeline.Context{Regs: regs, NowNs: 0}, p)
		if p.Meta.Drop {
			dropped++
		}
	}
	if dropped != 7 {
		t.Errorf("dropped %d of 10 with burst 3, want 7", dropped)
	}
	// After 5 ms the bucket refills (1 token/ms, capped at burst).
	p := packet.NewBuilder().WithIPv4(1, 2).WithTCP(1, 2).Build()
	p.Meta.ClassID = 2
	tbl.Apply(&pipeline.Context{Regs: regs, NowNs: 5e6}, p)
	if p.Meta.Drop {
		t.Error("packet dropped after refill window")
	}
}

func TestMonitorCounts(t *testing.T) {
	spec := ForType(Monitor)
	tbl := pipeline.NewTable("mon", spec.Keys, 10)
	for name, fn := range spec.Actions {
		tbl.RegisterAction(name, fn)
	}
	tbl.Insert(&pipeline.Rule{
		Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard()},
		Action:  "count", Params: []uint64{5},
	})
	regs := pipeline.NewRegisterFile()
	regs.Alloc("mon_pkts", 1024)
	regs.Alloc("mon_bytes", 1024)
	ctx := &pipeline.Context{Regs: regs}
	total := 0
	for i := 0; i < 4; i++ {
		p := packet.NewBuilder().WithIPv4(1, 2).WithTCP(1, 2).WithWireLen(100 + 50*i).Build()
		tbl.Apply(ctx, p)
		total += p.WireLen()
	}
	if got := regs.Read("mon_pkts", 5); got != 4 {
		t.Errorf("pkt count = %d, want 4", got)
	}
	if got := regs.Read("mon_bytes", 5); got != int64(total) {
		t.Errorf("byte count = %d, want %d", got, total)
	}
}

func TestDDoSSynGuard(t *testing.T) {
	spec := ForType(DDoSMitigator)
	tbl := pipeline.NewTable("ddos", spec.Keys, 10)
	for name, fn := range spec.Actions {
		tbl.RegisterAction(name, fn)
	}
	host := uint64(packet.IPv4Addr(10, 0, 0, 1))
	tbl.Insert(&pipeline.Rule{
		Matches: []pipeline.Match{
			pipeline.Eq(host),
			pipeline.Masked(uint64(packet.TCPSyn), uint64(packet.TCPSyn|packet.TCPAck)),
		},
		Action: "syn_guard", Params: []uint64{0, 3},
	})
	regs := pipeline.NewRegisterFile()
	regs.Alloc("ddos_syn", 1024)
	ctx := &pipeline.Context{Regs: regs}
	dropped := 0
	for i := 0; i < 5; i++ {
		p := packet.NewBuilder().WithIPv4(9, uint32(host)).WithTCP(uint16(1000+i), 80).WithTCPFlags(packet.TCPSyn).Build()
		tbl.Apply(ctx, p)
		if p.Meta.Drop {
			dropped++
		}
	}
	if dropped != 2 {
		t.Errorf("dropped %d of 5 SYNs with threshold 3, want 2", dropped)
	}
	// SYN+ACK must not match the guard rule.
	p := packet.NewBuilder().WithIPv4(9, uint32(host)).WithTCP(99, 80).WithTCPFlags(packet.TCPSyn | packet.TCPAck).Build()
	if r := tbl.Lookup(p); r != nil {
		t.Error("SYN+ACK matched SYN guard")
	}
}

func TestVPNEncapGrowsPacket(t *testing.T) {
	rules := []ConfigRule{{
		Matches: []pipeline.Match{pipeline.Prefix(uint64(packet.IPv4Addr(172, 16, 0, 0)), 12)},
		Action:  "encap", Params: []uint64{7},
	}}
	p := packet.NewBuilder().WithIPv4(1, packet.IPv4Addr(172, 20, 1, 1)).WithTCP(1, 2).WithWireLen(200).Build()
	before := p.WireLen()
	applySpec(t, ForType(VPNGateway), rules, p, 0)
	if p.WireLen() != before+28 {
		t.Errorf("wire len %d, want %d", p.WireLen(), before+28)
	}
	if p.Meta.ClassID&0x8000 == 0 {
		t.Error("tunnel mark not set")
	}
}

func TestCacheIndexRedirect(t *testing.T) {
	key := uint64(packet.IPv4Addr(10, 0, 9, 9))
	rules := []ConfigRule{{
		Matches: []pipeline.Match{pipeline.Eq(key), pipeline.Eq(11211)},
		Action:  "cache_hit", Params: []uint64{30, 0},
	}}
	p := packet.NewBuilder().WithIPv4(1, uint32(key)).WithUDP(999, 11211).Build()
	applySpec(t, ForType(CacheIndex), rules, p, 0)
	if p.Meta.EgressPort != 30 {
		t.Errorf("egress = %d, want 30", p.Meta.EgressPort)
	}
}

func TestSynthesizeValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, typ := range AllTypes() {
		c := Synthesize(typ, 50, rng)
		if len(c.Rules) != 50 {
			t.Errorf("%v: %d rules, want 50", typ, len(c.Rules))
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%v: synthesized config invalid: %v", typ, err)
		}
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	c := &Config{Type: Firewall, Rules: []ConfigRule{{Matches: []pipeline.Match{pipeline.Eq(1)}, Action: "permit"}}}
	if err := c.Validate(); err == nil {
		t.Error("arity mismatch accepted")
	}
	c2 := &Config{Type: Type(99)}
	if err := c2.Validate(); err == nil {
		t.Error("invalid type accepted")
	}
	c3 := &Config{Type: Router, Rules: []ConfigRule{{Matches: []pipeline.Match{pipeline.Prefix(1, 8)}, Action: "zap"}}}
	if err := c3.Validate(); err == nil {
		t.Error("unknown action accepted")
	}
}
