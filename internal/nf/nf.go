// Package nf is SFP's network-function library: the catalogue of NF types a
// provider pre-installs as physical NFs and tenants chain into SFCs.
//
// Each NF type is described by a Spec — its match-key fields, its action
// set, its default (miss) behaviour, and any stateful register arrays it
// needs. Per the paper's simplification (§VII "Multiple-table NFs"), each NF
// is modeled as one big match-action table; the load balancer's auxiliary
// tables (tab_lbhash / tab_lbselect from Fig. 2) are folded into its default
// action, which hashes the flow and picks a backend from the pool registers.
package nf

import (
	"fmt"

	"sfp/internal/packet"
	"sfp/internal/pipeline"
)

// Type identifies an NF type (the index i of the placement model, 1-based
// to match the paper's i ∈ [1, I]).
type Type int

// The NF catalogue. TypeCount is I, the total number of types.
const (
	Firewall Type = 1 + iota
	LoadBalancer
	TrafficClassifier
	Router
	NAT
	RateLimiter
	VPNGateway
	Monitor
	DDoSMitigator
	CacheIndex
	typeEnd
)

// TypeCount is the number of NF types in the catalogue (I = 10, matching
// the paper's evaluation).
const TypeCount = int(typeEnd) - 1

var typeNames = map[Type]string{
	Firewall:          "firewall",
	LoadBalancer:      "load_balancer",
	TrafficClassifier: "traffic_classifier",
	Router:            "router",
	NAT:               "nat",
	RateLimiter:       "rate_limiter",
	VPNGateway:        "vpn_gateway",
	Monitor:           "monitor",
	DDoSMitigator:     "ddos_mitigator",
	CacheIndex:        "cache_index",
}

// String returns the short NF name.
func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("nf(%d)", int(t))
}

// Valid reports whether t is in the catalogue.
func (t Type) Valid() bool { return t >= Firewall && t < typeEnd }

// AllTypes returns the catalogue in index order.
func AllTypes() []Type {
	ts := make([]Type, 0, TypeCount)
	for t := Firewall; t < typeEnd; t++ {
		ts = append(ts, t)
	}
	return ts
}

// ParseType resolves a short name back to a Type.
func ParseType(name string) (Type, error) {
	for t, n := range typeNames {
		if n == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("nf: unknown type %q", name)
}

// Spec describes how one NF type materializes as a physical NF table.
type Spec struct {
	Type Type
	// Keys are the NF-specific match fields. The data plane prepends
	// tenant-ID and pass exact matches when installing the physical table
	// (§IV, "the match block is added with two fields").
	Keys []pipeline.Key
	// Actions are the action bodies rules may invoke.
	Actions map[string]pipeline.ActionFunc
	// Default is the miss action; physical NFs default to "noop" so that
	// unclaimed traffic passes through unmodified.
	Default string
	// Registers lists stateful arrays the NF needs in its stage,
	// name → size. Names are namespaced by the installer.
	Registers map[string]int
}

// RuleWidthBits returns the match width of one tenant rule including the
// tenant-ID and pass prefix the data plane adds — the constant b of the
// placement model.
func (s *Spec) RuleWidthBits() int {
	w := pipeline.FieldTenantID.Bits() + pipeline.FieldPass.Bits()
	for _, k := range s.Keys {
		w += k.Field.Bits()
	}
	return w
}

// noop leaves the packet untouched (the physical NF's "No-Ops" default).
func noop(ctx *pipeline.Context, p *packet.Packet, params []uint64) {}

// drop marks the packet for discard.
func drop(ctx *pipeline.Context, p *packet.Packet, params []uint64) {
	p.Meta.Drop = true
}

// ForType returns the Spec of an NF type. It panics on an invalid type —
// the catalogue is fixed per deployment cycle (§III assumption 2), so an
// unknown type is a programming error, not an input error.
func ForType(t Type) *Spec {
	switch t {
	case Firewall:
		return firewallSpec()
	case LoadBalancer:
		return loadBalancerSpec()
	case TrafficClassifier:
		return classifierSpec()
	case Router:
		return routerSpec()
	case NAT:
		return natSpec()
	case RateLimiter:
		return rateLimiterSpec()
	case VPNGateway:
		return vpnSpec()
	case Monitor:
		return monitorSpec()
	case DDoSMitigator:
		return ddosSpec()
	case CacheIndex:
		return cacheSpec()
	}
	panic(fmt.Sprintf("nf: invalid type %d", int(t)))
}

// firewallSpec: a stateless ACL over the five-tuple; rules either permit
// (noop) or deny (drop) with ternary wildcarding.
func firewallSpec() *Spec {
	return &Spec{
		Type: Firewall,
		Keys: []pipeline.Key{
			{Field: pipeline.FieldIPv4Src, Kind: pipeline.MatchTernary},
			{Field: pipeline.FieldIPv4Dst, Kind: pipeline.MatchTernary},
			{Field: pipeline.FieldIPProto, Kind: pipeline.MatchTernary},
			{Field: pipeline.FieldDstPort, Kind: pipeline.MatchTernary},
		},
		Actions: map[string]pipeline.ActionFunc{
			"permit": noop,
			"deny":   drop,
			"noop":   noop,
		},
		Default: "noop",
	}
}

// loadBalancerSpec: the paper's three-table LB (tab_lb, tab_lbhash,
// tab_lbselect) folded into one table. Explicit rules pin a flow to a
// backend ("dnat"); the default action computes the five-tuple hash and
// selects from the backend pool registers, emulating
// tab_lbhash → tab_lbselect.
func loadBalancerSpec() *Spec {
	return &Spec{
		Type: LoadBalancer,
		Keys: []pipeline.Key{
			{Field: pipeline.FieldIPv4Dst, Kind: pipeline.MatchExact}, // VIP
			{Field: pipeline.FieldDstPort, Kind: pipeline.MatchExact},
		},
		Actions: map[string]pipeline.ActionFunc{
			// dnat params: [0]=new dst IP, [1]=new dst port (0 keeps it).
			"dnat": func(ctx *pipeline.Context, p *packet.Packet, params []uint64) {
				if p.HasIPv4 && len(params) > 0 {
					p.IPv4.Dst = uint32(params[0])
				}
				if len(params) > 1 && params[1] != 0 {
					setDstPort(p, uint16(params[1]))
				}
			},
			// pool_select emulates tab_lbhash + tab_lbselect: hash the flow,
			// index the pool registers. params: [0]=pool base index,
			// [1]=pool size.
			"pool_select": func(ctx *pipeline.Context, p *packet.Packet, params []uint64) {
				if len(params) < 2 || params[1] == 0 {
					return
				}
				h := p.FiveTuple().Hash()
				p.Meta.L4Hash = h
				idx := int(params[0]) + int(uint64(h)%params[1])
				if backend := ctx.Regs.Read("lb_pool", idx); backend != 0 && p.HasIPv4 {
					p.IPv4.Dst = uint32(backend)
				}
			},
			"noop": noop,
		},
		Default:   "noop",
		Registers: map[string]int{"lb_pool": 256},
	}
}

// classifierSpec assigns a traffic class from protocol/port ranges.
func classifierSpec() *Spec {
	return &Spec{
		Type: TrafficClassifier,
		Keys: []pipeline.Key{
			{Field: pipeline.FieldIPProto, Kind: pipeline.MatchTernary},
			{Field: pipeline.FieldDstPort, Kind: pipeline.MatchRange},
		},
		Actions: map[string]pipeline.ActionFunc{
			// set_class params: [0]=class id.
			"set_class": func(ctx *pipeline.Context, p *packet.Packet, params []uint64) {
				if len(params) > 0 {
					p.Meta.ClassID = uint16(params[0])
				}
			},
			"noop": noop,
		},
		Default: "noop",
	}
}

// routerSpec: LPM forwarding to an egress port.
func routerSpec() *Spec {
	return &Spec{
		Type: Router,
		Keys: []pipeline.Key{
			{Field: pipeline.FieldIPv4Dst, Kind: pipeline.MatchLPM},
		},
		Actions: map[string]pipeline.ActionFunc{
			// fwd params: [0]=egress port. Decrements TTL as a router must.
			"fwd": func(ctx *pipeline.Context, p *packet.Packet, params []uint64) {
				if len(params) > 0 {
					p.Meta.EgressPort = uint16(params[0])
				}
				if p.HasIPv4 && p.IPv4.TTL > 0 {
					p.IPv4.TTL--
					if p.IPv4.TTL == 0 {
						p.Meta.Drop = true
					}
				}
			},
			"noop": noop,
		},
		Default: "noop",
	}
}

// natSpec rewrites the source address/port of outbound flows.
func natSpec() *Spec {
	return &Spec{
		Type: NAT,
		Keys: []pipeline.Key{
			{Field: pipeline.FieldIPv4Src, Kind: pipeline.MatchExact},
			{Field: pipeline.FieldSrcPort, Kind: pipeline.MatchExact},
		},
		Actions: map[string]pipeline.ActionFunc{
			// snat params: [0]=new src IP, [1]=new src port (0 keeps it).
			"snat": func(ctx *pipeline.Context, p *packet.Packet, params []uint64) {
				if p.HasIPv4 && len(params) > 0 {
					p.IPv4.Src = uint32(params[0])
				}
				if len(params) > 1 && params[1] != 0 {
					setSrcPort(p, uint16(params[1]))
				}
			},
			"noop": noop,
		},
		Default: "noop",
	}
}

// rateLimiterSpec: per-class token buckets in stage registers (the
// on-switch rate limiter of He et al., INFOCOM'21, cited as [11]).
func rateLimiterSpec() *Spec {
	return &Spec{
		Type: RateLimiter,
		Keys: []pipeline.Key{
			{Field: pipeline.FieldClassID, Kind: pipeline.MatchExact},
		},
		Actions: map[string]pipeline.ActionFunc{
			// limit params: [0]=bucket index, [1]=rate tokens/ms,
			// [2]=burst tokens. One token = one packet.
			"limit": func(ctx *pipeline.Context, p *packet.Packet, params []uint64) {
				if len(params) < 3 {
					return
				}
				idx := int(params[0])
				rate, burst := int64(params[1]), int64(params[2])
				nowMs := int64(ctx.NowNs / 1e6)
				last := ctx.Regs.Read("rl_last_ms", idx)
				tokens := ctx.Regs.Read("rl_tokens", idx)
				if nowMs > last {
					tokens += (nowMs - last) * rate
					if tokens > burst {
						tokens = burst
					}
					ctx.Regs.Write("rl_last_ms", idx, nowMs)
				}
				if tokens <= 0 {
					p.Meta.Drop = true
				} else {
					tokens--
				}
				ctx.Regs.Write("rl_tokens", idx, tokens)
			},
			"noop": noop,
		},
		Default:   "noop",
		Registers: map[string]int{"rl_tokens": 256, "rl_last_ms": 256},
	}
}

// vpnSpec models a site-to-site VPN gateway: packets toward configured
// subnets are marked as tunneled (encap is modeled as a class mark plus a
// payload length increase for the tunnel header).
func vpnSpec() *Spec {
	return &Spec{
		Type: VPNGateway,
		Keys: []pipeline.Key{
			{Field: pipeline.FieldIPv4Dst, Kind: pipeline.MatchLPM},
		},
		Actions: map[string]pipeline.ActionFunc{
			// encap params: [0]=tunnel id.
			"encap": func(ctx *pipeline.Context, p *packet.Packet, params []uint64) {
				if len(params) > 0 {
					p.Meta.ClassID = uint16(params[0]) | 0x8000 // tunnel mark
				}
				p.PayloadLen += 28 // modeled ESP+IP overhead
				ctx.Regs.Add("vpn_encap_count", 0, 1)
			},
			"noop": noop,
		},
		Default:   "noop",
		Registers: map[string]int{"vpn_encap_count": 1},
	}
}

// monitorSpec counts packets and bytes per configured aggregate.
func monitorSpec() *Spec {
	return &Spec{
		Type: Monitor,
		Keys: []pipeline.Key{
			{Field: pipeline.FieldIPv4Src, Kind: pipeline.MatchTernary},
			{Field: pipeline.FieldIPv4Dst, Kind: pipeline.MatchTernary},
		},
		Actions: map[string]pipeline.ActionFunc{
			// count params: [0]=counter index.
			"count": func(ctx *pipeline.Context, p *packet.Packet, params []uint64) {
				if len(params) == 0 {
					return
				}
				idx := int(params[0])
				ctx.Regs.Add("mon_pkts", idx, 1)
				ctx.Regs.Add("mon_bytes", idx, int64(p.WireLen()))
			},
			"noop": noop,
		},
		Default:   "noop",
		Registers: map[string]int{"mon_pkts": 1024, "mon_bytes": 1024},
	}
}

// ddosSpec is a SYN-flood mitigator: per-source SYN counters with a
// threshold beyond which SYNs are dropped.
func ddosSpec() *Spec {
	return &Spec{
		Type: DDoSMitigator,
		Keys: []pipeline.Key{
			{Field: pipeline.FieldIPv4Dst, Kind: pipeline.MatchExact}, // protected host
			{Field: pipeline.FieldTCPFlags, Kind: pipeline.MatchTernary},
		},
		Actions: map[string]pipeline.ActionFunc{
			// syn_guard params: [0]=counter index, [1]=threshold.
			"syn_guard": func(ctx *pipeline.Context, p *packet.Packet, params []uint64) {
				if len(params) < 2 {
					return
				}
				idx := int(params[0])
				n := ctx.Regs.Add("ddos_syn", idx, 1)
				if n > int64(params[1]) {
					p.Meta.Drop = true
				}
			},
			"noop": noop,
		},
		Default:   "noop",
		Registers: map[string]int{"ddos_syn": 1024},
	}
}

// cacheSpec models an in-network cache index (NetCache-style, cited as
// [15]): known hot keys (modeled as dst port values) are redirected to the
// cache port and counted.
func cacheSpec() *Spec {
	return &Spec{
		Type: CacheIndex,
		Keys: []pipeline.Key{
			{Field: pipeline.FieldIPv4Dst, Kind: pipeline.MatchExact},
			{Field: pipeline.FieldDstPort, Kind: pipeline.MatchExact},
		},
		Actions: map[string]pipeline.ActionFunc{
			// cache_hit params: [0]=cache egress port, [1]=hit counter index.
			"cache_hit": func(ctx *pipeline.Context, p *packet.Packet, params []uint64) {
				if len(params) > 0 {
					p.Meta.EgressPort = uint16(params[0])
				}
				if len(params) > 1 {
					ctx.Regs.Add("cache_hits", int(params[1]), 1)
				}
			},
			"noop": noop,
		},
		Default:   "noop",
		Registers: map[string]int{"cache_hits": 1024},
	}
}

func setDstPort(p *packet.Packet, port uint16) {
	switch {
	case p.HasTCP:
		p.TCP.DstPort = port
	case p.HasUDP:
		p.UDP.DstPort = port
	}
}

func setSrcPort(p *packet.Packet, port uint16) {
	switch {
	case p.HasTCP:
		p.TCP.SrcPort = port
	case p.HasUDP:
		p.UDP.SrcPort = port
	}
}
