package nf

import (
	"fmt"
	"math/rand"

	"sfp/internal/packet"
	"sfp/internal/pipeline"
)

// ConfigRule is one tenant-level rule of a logical NF: matches over the NF
// type's own key fields (no tenant/pass prefix — the data plane adds those
// when copying the rule onto the physical NF, §IV).
type ConfigRule struct {
	Priority int
	Matches  []pipeline.Match
	Action   string
	Params   []uint64
}

// Config is a logical NF's full configuration: its type plus rule set.
type Config struct {
	Type  Type
	Rules []ConfigRule
}

// Validate checks the configuration against the type's Spec.
func (c *Config) Validate() error {
	if !c.Type.Valid() {
		return fmt.Errorf("nf: invalid type %d", int(c.Type))
	}
	spec := ForType(c.Type)
	for i, r := range c.Rules {
		if len(r.Matches) != len(spec.Keys) {
			return fmt.Errorf("nf %v rule %d: %d matches, spec has %d keys",
				c.Type, i, len(r.Matches), len(spec.Keys))
		}
		if _, ok := spec.Actions[r.Action]; !ok {
			return fmt.Errorf("nf %v rule %d: unknown action %q", c.Type, i, r.Action)
		}
	}
	return nil
}

// Synthesize generates a plausible configuration with n rules for the given
// NF type, using the provided RNG for reproducibility. The generated rules
// exercise each type's primary action so that end-to-end tests observe real
// NF behaviour, not just table occupancy.
func Synthesize(t Type, n int, rng *rand.Rand) *Config {
	c := &Config{Type: t, Rules: make([]ConfigRule, 0, n)}
	for r := 0; r < n; r++ {
		c.Rules = append(c.Rules, synthRule(t, r, rng))
	}
	return c
}

func synthRule(t Type, i int, rng *rand.Rand) ConfigRule {
	ip := func() uint64 {
		return uint64(packet.IPv4Addr(10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1+rng.Intn(254))))
	}
	port := func() uint64 { return uint64(1024 + rng.Intn(60000)) }
	switch t {
	case Firewall:
		action := "permit"
		if rng.Intn(4) == 0 {
			action = "deny"
		}
		return ConfigRule{
			Priority: 100 - rng.Intn(50),
			Matches: []pipeline.Match{
				pipeline.Masked(ip(), 0xffffff00), // /24 source
				pipeline.Wildcard(),
				pipeline.Eq(uint64(packet.ProtoTCP)),
				pipeline.Eq(port()),
			},
			Action: action,
		}
	case LoadBalancer:
		return ConfigRule{
			Matches: []pipeline.Match{pipeline.Eq(ip()), pipeline.Eq(port())},
			Action:  "dnat",
			Params:  []uint64{ip(), port()},
		}
	case TrafficClassifier:
		lo := port()
		return ConfigRule{
			Priority: rng.Intn(10),
			Matches: []pipeline.Match{
				pipeline.Eq(uint64(packet.ProtoTCP)),
				pipeline.Between(lo, lo+uint64(rng.Intn(1000))),
			},
			Action: "set_class",
			Params: []uint64{uint64(1 + rng.Intn(7))},
		}
	case Router:
		plen := 8 + rng.Intn(25)
		return ConfigRule{
			Matches: []pipeline.Match{pipeline.Prefix(ip(), plen)},
			Action:  "fwd",
			Params:  []uint64{uint64(1 + rng.Intn(31))},
		}
	case NAT:
		return ConfigRule{
			Matches: []pipeline.Match{pipeline.Eq(ip()), pipeline.Eq(port())},
			Action:  "snat",
			Params:  []uint64{ip(), port()},
		}
	case RateLimiter:
		return ConfigRule{
			Matches: []pipeline.Match{pipeline.Eq(uint64(rng.Intn(8)))},
			Action:  "limit",
			Params:  []uint64{uint64(i % 256), uint64(100 + rng.Intn(900)), uint64(1000 + rng.Intn(9000))},
		}
	case VPNGateway:
		return ConfigRule{
			Matches: []pipeline.Match{pipeline.Prefix(ip(), 16)},
			Action:  "encap",
			Params:  []uint64{uint64(1 + rng.Intn(100))},
		}
	case Monitor:
		return ConfigRule{
			Matches: []pipeline.Match{
				pipeline.Masked(ip(), 0xffff0000),
				pipeline.Wildcard(),
			},
			Action: "count",
			Params: []uint64{uint64(i % 1024)},
		}
	case DDoSMitigator:
		return ConfigRule{
			Matches: []pipeline.Match{
				pipeline.Eq(ip()),
				pipeline.Masked(uint64(packet.TCPSyn), uint64(packet.TCPSyn|packet.TCPAck)),
			},
			Action: "syn_guard",
			Params: []uint64{uint64(i % 1024), uint64(100 + rng.Intn(10000))},
		}
	case CacheIndex:
		return ConfigRule{
			Matches: []pipeline.Match{pipeline.Eq(ip()), pipeline.Eq(port())},
			Action:  "cache_hit",
			Params:  []uint64{uint64(1 + rng.Intn(31)), uint64(i % 1024)},
		}
	}
	panic(fmt.Sprintf("nf: synthRule on invalid type %d", int(t)))
}
