// Package placement implements SFP's control-plane SFC placement
// algorithms (§V of the paper):
//
//   - SolveIP — the exact integer program ("SFP-IP"), solved by branch and
//     bound with optional time limit and early termination (Figs. 8–10).
//   - SolveApprox — LP relaxation with randomized rounding and the
//     strip-one-SFC repair loop (Algorithm 1, "SFP-Appro.").
//   - SolveGreedy — the metric-ordered first-fit heuristic (Algorithm 2).
//   - Updater — runtime update (§V-E): departures release resources,
//     survivors stay pinned, and arrivals are placed incrementally, with a
//     threshold-triggered full reconfiguration.
package placement

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sfp/internal/ilp"
	"sfp/internal/lp"
	"sfp/internal/model"
)

// Result is the outcome of any placement algorithm.
type Result struct {
	// Assignment is the verified placement (never nil on success).
	Assignment *model.Assignment
	// Metrics summarizes it.
	Metrics model.Metrics
	// Objective is Eq. (1) of the placed assignment.
	Objective float64
	// Bound is the solver's proven upper bound on the optimum: the
	// branch-and-bound tree bound for SolveIP, the Lagrangian dual bound
	// for SolveDecomposed (0 for the heuristics).
	Bound float64
	// Gap is the certified relative optimality gap
	// (Bound − Objective)/Objective, clamped at 0. Exact solves that prove
	// optimality report 0; decomposed solves report the gap their dual
	// bound certifies.
	Gap float64
	// DualIters counts subgradient iterations (SolveDecomposed only).
	DualIters int
	// Elapsed is the algorithm's wall-clock time.
	Elapsed time.Duration
	// Status describes how the solver finished.
	Status string
	// Incumbents is the improving-objective time series (IP only).
	Incumbents []ilp.Incumbent
	// Nodes is the number of branch-and-bound nodes (IP only).
	Nodes int
	// RootBasis is the root LP's optimal simplex basis (IP only). Feeding
	// it back through IPOptions.WarmBasis lets a later solve over a
	// same-shaped model re-enter the dual simplex instead of solving cold.
	RootBasis *lp.Basis
	// RootWarmed reports whether this solve's root LP itself re-entered
	// from a supplied basis.
	RootWarmed bool
}

// IPOptions tunes SolveIP.
type IPOptions struct {
	// Build selects the formulation (consolidation, consistency form).
	Build model.BuildOptions
	// TimeLimit bounds the solve; with an incumbent present, early
	// termination returns it (the Fig. 9 experiment). Zero = no limit.
	TimeLimit time.Duration
	// MaxNodes bounds the search tree (0 = solver default).
	MaxNodes int
	// NoWarmStart disables seeding branch and bound with the greedy
	// solution. The Fig. 9 experiment sets it to reproduce a cold solver
	// that returns nothing under the tightest time limits.
	NoWarmStart bool
	// WarmFrom, if non-nil, seeds branch and bound with this assignment
	// (e.g. an SFP-Appro result) in addition to the greedy warm start; the
	// better incumbent wins. Ignored under NoWarmStart.
	WarmFrom *model.Assignment
	// Workers sets the branch-and-bound worker count (see ilp.Options
	// .Workers): 0 or 1 solves serially with the bit-for-bit reproducible
	// node order, n > 1 searches the tree with n concurrent workers.
	Workers int
	// WarmBasis, when non-nil, warm-starts the root LP from a prior solve's
	// RootBasis (cross-replan warm start). A basis whose shape does not
	// match the built model is ignored and the root solves cold — the
	// fallback is deterministic, never wrong.
	WarmBasis *lp.Basis
	// BoundCap, when positive, is an externally certified upper bound on
	// the optimum (e.g. SolveDecomposed's Bound): branch and bound reports
	// Bound = min(tree bound, cap) and stops as Optimal once the incumbent
	// is within RelGap of it. Zero disables it; passing an unproven value
	// weakens the optimality claim accordingly (see ilp.Options.BoundCap).
	BoundCap float64
	// RelGap is the relative optimality tolerance for termination
	// (ilp.Options.RelGap; 0 = solver default 1e-6). Loosening it pairs
	// naturally with BoundCap: stop once the incumbent provably sits within
	// this fraction of the certified bound.
	RelGap float64
}

// exactConsistencyLimit bounds the instance size (Σ_l J_l · K) for which
// SolveIP uses the exact per-variable Eq. (9) rows. Beyond it, one node LP
// takes longer than typical time limits (the LP solve is uninterruptible),
// so the IP-equivalent aggregated rows are used instead: bounds weaken but
// the warm start and primal heuristics still improve incumbents under the
// cap — which is all a time-limited solve at that scale can deliver.
const exactConsistencyLimit = 2000

// SolveIP solves the placement exactly ("SFP-IP"). For small instances the
// build uses the exact Eq. (9) rows (tight LP bounds); large instances fall
// back to the aggregated rows, which share the same integer optimum (see
// exactConsistencyLimit and DESIGN.md §4).
func SolveIP(in *model.Instance, opts IPOptions) (*Result, error) {
	start := time.Now()
	build := opts.Build
	zCount := 0
	for _, c := range in.Chains {
		zCount += c.Len() * in.K()
	}
	build.ExactConsistency = zCount <= exactConsistencyLimit
	enc, err := model.Build(in, build)
	if err != nil {
		return nil, err
	}
	var warm []float64
	if !opts.NoWarmStart {
		if gr, err := SolveGreedy(in, GreedyOptions{Consolidate: build.Consolidate}); err == nil {
			if w, err := enc.EncodeAssignment(gr.Assignment); err == nil {
				warm = w
			}
		}
		if opts.WarmFrom != nil {
			if w, err := enc.EncodeAssignment(opts.WarmFrom); err == nil {
				if warm == nil || enc.Prob.Eval(w) > enc.Prob.Eval(warm) {
					warm = w
				}
			}
		}
	}
	// Domain primal heuristic: round the node's LP point with the same
	// structured randomized rounding Algorithm 1 uses, repair it, and hand
	// the branch-and-bound a feasible incumbent candidate. The mutex keeps
	// the shared RNG safe when parallel workers invoke the heuristic.
	hRng := rand.New(rand.NewSource(4242))
	var hMu sync.Mutex
	heuristic := func(x []float64) []float64 {
		hMu.Lock()
		defer hMu.Unlock()
		a, ok := roundAndRepair(in, enc, x, ApproxOptions{Build: build, Rounds: 8}, hRng)
		if !ok {
			return nil
		}
		if gr, err := SolveGreedy(in, GreedyOptions{Consolidate: build.Consolidate, Pinned: a}); err == nil {
			a = gr.Assignment
		}
		v, err := enc.EncodeAssignment(a)
		if err != nil {
			return nil
		}
		return v
	}
	res, err := ilp.Solve(&ilp.Problem{LP: enc.Prob, IntVars: enc.IntVars}, ilp.Options{
		TimeLimit:    opts.TimeLimit,
		MaxNodes:     opts.MaxNodes,
		PriorityVars: enc.XVars(),
		CeilVars:     enc.AuxVars(),
		WarmStart:    warm,
		Heuristic:    heuristic,
		Workers:      opts.Workers,
		WarmBasis:    opts.WarmBasis,
		BoundCap:     opts.BoundCap,
		RelGap:       opts.RelGap,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Elapsed:    time.Since(start),
		Status:     res.Status.String(),
		Bound:      res.Bound,
		Incumbents: res.Incumbents,
		Nodes:      res.Nodes,
		RootBasis:  res.RootBasis,
		RootWarmed: res.RootWarmed,
	}
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		a := enc.Decode(res.X)
		if err := model.Verify(in, a, opts.Build.Consolidate); err != nil {
			return nil, fmt.Errorf("placement: IP solution failed verification: %w", err)
		}
		out.Assignment = a
		out.Metrics = model.ComputeMetrics(in, a, opts.Build.Consolidate)
		out.Objective = out.Metrics.Objective
		out.Gap = relGap(out.Bound, out.Objective)
	case ilp.Infeasible:
		// The model always admits the empty placement when Eq. 4 can be
		// satisfied; infeasibility means the physical side cannot exist.
		out.Assignment = nil
		out.Status = "infeasible"
	case ilp.Limit:
		// No incumbent within the limit: report the empty placement (the
		// Fig. 9 "5 s → objective 0" data point).
		a := emptyAssignment(in)
		out.Assignment = a
		out.Metrics = model.ComputeMetrics(in, a, opts.Build.Consolidate)
		out.Objective = 0
	}
	return out, nil
}

// emptyAssignment deploys nothing but satisfies Eq. 4 by installing one NF
// of every type on stage 0 (physical NFs consume no memory until rules are
// copied into them).
func emptyAssignment(in *model.Instance) *model.Assignment {
	a := model.NewAssignment(in)
	for i := range a.X {
		a.X[i][0] = true
	}
	return a
}

// SolveLPRelaxation solves the LP relaxation only and returns the encoded
// model, the relaxed point, and the relaxation objective. Exposed for the
// rounding algorithm and for experiments that study the LP bound itself.
func SolveLPRelaxation(in *model.Instance, build model.BuildOptions) (*model.Encoded, *lp.Solution, error) {
	enc, err := model.Build(in, build)
	if err != nil {
		return nil, nil, err
	}
	sol, err := enc.Prob.Solve(lp.Options{})
	if err != nil {
		return nil, nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, nil, fmt.Errorf("placement: LP relaxation %v", sol.Status)
	}
	return enc, sol, nil
}

// Metric is Eq. (13): chains with high bandwidth per unit of resource
// footprint are preferred (T_l / (J_l · Σ_j F_jl)).
func Metric(c *model.Chain) float64 {
	den := float64(c.Len() * c.RuleSum())
	if den == 0 {
		return 0
	}
	return c.BandwidthGbps / den
}
