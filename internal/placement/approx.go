package placement

import (
	"math/rand"
	"sort"
	"time"

	"sfp/internal/model"
)

// ApproxOptions tunes SolveApprox (Algorithm 1).
type ApproxOptions struct {
	// Build selects the formulation.
	Build model.BuildOptions
	// Rounds bounds rounding retries per recirculation trial (default 50).
	Rounds int
	// Seed makes the randomized rounding reproducible.
	Seed int64
	// FixedRecirc solves only the r = R trial instead of sweeping r = 0..R
	// (Algorithm 1 line 2). The sweep finds the best recirculation budget;
	// fixing it isolates one budget, as the Fig. 7 experiment needs.
	FixedRecirc bool
}

// SolveApprox implements Algorithm 1 ("SFP-Appro."): for each recirculation
// budget r = 0..R it relaxes the IP to an LP, rounds the fractional point
// randomly, verifies the rounded point against the original constraints,
// and — when verification fails — strips the selected SFC with the worst
// bandwidth-per-resource metric (Eq. 13) and retries. The best verified
// assignment across trials wins.
func SolveApprox(in *model.Instance, opts ApproxOptions) (*Result, error) {
	start := time.Now()
	if opts.Rounds == 0 {
		opts.Rounds = 50
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	best := emptyAssignment(in)
	bestMetrics := model.ComputeMetrics(in, best, opts.Build.Consolidate)

	startR := 0
	if opts.FixedRecirc {
		startR = in.Recirc
	}
	for r := startR; r <= in.Recirc; r++ {
		trial := *in
		trial.Recirc = r
		enc, sol, err := SolveLPRelaxation(&trial, opts.Build)
		if err != nil {
			return nil, err
		}
		a, ok := roundAndRepair(&trial, enc, sol.X, opts, rng)
		if !ok {
			continue
		}
		// Polish: the strip-repair step may have evicted whole chains whose
		// resources are now partly free; a greedy completion over the
		// residual space only adds deployments (rounded chains stay put).
		if gr, err := SolveGreedy(&trial, GreedyOptions{Consolidate: opts.Build.Consolidate, Pinned: a}); err == nil {
			a = gr.Assignment
		}
		m := model.ComputeMetrics(&trial, a, opts.Build.Consolidate)
		if m.Objective > bestMetrics.Objective {
			// Assignments from a smaller virtual pipeline remain valid in
			// the full instance (stages only extend).
			best, bestMetrics = a, m
		}
	}

	if err := model.Verify(in, best, opts.Build.Consolidate); err != nil {
		return nil, err
	}
	return &Result{
		Assignment: best,
		Metrics:    bestMetrics,
		Objective:  bestMetrics.Objective,
		Elapsed:    time.Since(start),
		Status:     "rounded",
	}, nil
}

// roundAndRepair performs the rounding loop of Algorithm 1 for one
// recirculation trial. The returned assignment is Verify-feasible.
func roundAndRepair(in *model.Instance, enc *model.Encoded, x []float64, opts ApproxOptions, rng *rand.Rand) (*model.Assignment, bool) {
	stripped := make(map[int]bool) // chain indices removed by the repair step
	for attempt := 0; attempt < opts.Rounds; attempt++ {
		a := roundOnce(in, enc, x, stripped, rng)
		if err := model.Verify(in, a, opts.Build.Consolidate); err == nil {
			return a, true
		}
		// Strip the selected chain with the worst Eq. 13 metric.
		worst, worstMetric := -1, 0.0
		for l, c := range in.Chains {
			if stripped[l] || !a.Deployed(l) {
				continue
			}
			m := Metric(c)
			if worst == -1 || m < worstMetric {
				worst, worstMetric = l, m
			}
		}
		if worst == -1 {
			// Nothing left to strip: fall back to the empty assignment.
			return emptyAssignment(in), true
		}
		stripped[worst] = true
	}
	return nil, false
}

// roundOnce draws one randomized rounding of the relaxed point:
//
//   - each chain deploys with probability d_l (its relaxed deployment mass),
//   - a deployed chain's boxes sample stages from the normalized z
//     distribution left-to-right, conditioned on strictly increasing stages,
//   - x is rounded up wherever a sampled box requires the physical NF, and
//     each remaining type keeps its highest-mass stage (Eq. 4).
//
// The draw may violate memory/capacity constraints — Verify decides.
func roundOnce(in *model.Instance, enc *model.Encoded, x []float64, stripped map[int]bool, rng *rand.Rand) *model.Assignment {
	S, K := in.Switch.Stages, in.K()
	a := model.NewAssignment(in)

	for l, c := range in.Chains {
		if stripped[l] {
			continue
		}
		J := c.Len()
		// Deployment probability = Σ_k z_{l,0,k}.
		d := 0.0
		for k := 0; k < K; k++ {
			d += enc.ZValue(x, l, 0, k)
		}
		if d > 1 {
			d = 1
		}
		if rng.Float64() >= d {
			continue
		}
		stages := make([]int, J)
		ok := true
		prev := -1
		for j := 0; j < J; j++ {
			// Sample stage k > prev proportionally to z mass.
			total := 0.0
			for k := prev + 1; k < K; k++ {
				total += enc.ZValue(x, l, j, k)
			}
			var pick int
			if total <= 1e-12 {
				// No fractional mass beyond prev: fall back to the first
				// feasible slot (j..) after prev.
				pick = -1
				for k := prev + 1; k < K; k++ {
					lo, hi := enc.ZWindow(l, j)
					if k >= lo && k <= hi {
						pick = k
						break
					}
				}
				if pick == -1 {
					ok = false
					break
				}
			} else {
				r := rng.Float64() * total
				pick = -1
				for k := prev + 1; k < K; k++ {
					z := enc.ZValue(x, l, j, k)
					if z <= 0 {
						continue
					}
					if r < z {
						pick = k
						break
					}
					r -= z
				}
				if pick == -1 { // numerical leftovers: last positive slot
					for k := K - 1; k > prev; k-- {
						if enc.ZValue(x, l, j, k) > 0 {
							pick = k
							break
						}
					}
				}
				if pick == -1 {
					ok = false
					break
				}
			}
			stages[j] = pick
			prev = pick
		}
		if !ok {
			continue
		}
		copy(a.Stages[l], stages)
		for j, k := range stages {
			a.X[c.NFs[j].Type-1][k%S] = true
		}
	}

	// Eq. 4: every type needs at least one instance; give absent types
	// their highest-fractional-mass stage.
	for i := 0; i < in.NumTypes; i++ {
		present := false
		for s := 0; s < S; s++ {
			present = present || a.X[i][s]
		}
		if present {
			continue
		}
		bestS, bestV := 0, -1.0
		for s := 0; s < S; s++ {
			if v := enc.XValue(x, i+1, s); v > bestV {
				bestS, bestV = s, v
			}
		}
		a.X[i][bestS] = true
	}
	return a
}

// sortChainsByMetric returns chain indices ordered by Eq. 13 descending
// (shared with the greedy algorithm).
func sortChainsByMetric(in *model.Instance) []int {
	idx := make([]int, len(in.Chains))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return Metric(in.Chains[idx[a]]) > Metric(in.Chains[idx[b]])
	})
	return idx
}
