package placement

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"sfp/internal/lp"
	"sfp/internal/model"
)

// ApproxOptions tunes SolveApprox (Algorithm 1).
type ApproxOptions struct {
	// Build selects the formulation.
	Build model.BuildOptions
	// Rounds bounds rounding retries per recirculation trial (default 50).
	Rounds int
	// Seed makes the randomized rounding reproducible.
	Seed int64
	// FixedRecirc solves only the r = R trial instead of sweeping r = 0..R
	// (Algorithm 1 line 2). The sweep finds the best recirculation budget;
	// fixing it isolates one budget, as the Fig. 7 experiment needs.
	FixedRecirc bool
	// Workers runs the recirculation trials concurrently (0 or 1 = serial).
	// Each trial draws from its own RNG seeded by (Seed, r) and the best
	// trial is selected in fixed ascending-r order, so the Result is
	// identical for a given Seed regardless of Workers.
	Workers int
}

// SolveApprox implements Algorithm 1 ("SFP-Appro."): for each recirculation
// budget r = 0..R it relaxes the IP to an LP, rounds the fractional point
// randomly, verifies the rounded point against the original constraints,
// and — when verification fails — strips the selected SFC with the worst
// bandwidth-per-resource metric (Eq. 13) and retries. The best verified
// assignment across trials wins.
//
// The model is encoded once at the full recirculation budget; each trial
// clones the LP and patches only the recirculation-dependent bounds
// (model.RestrictRecirc), instead of re-encoding per trial. Trials are
// independent, so with Workers > 1 they run concurrently.
func SolveApprox(in *model.Instance, opts ApproxOptions) (*Result, error) {
	start := time.Now()
	if opts.Rounds == 0 {
		opts.Rounds = 50
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}

	enc, err := model.Build(in, opts.Build)
	if err != nil {
		return nil, err
	}
	enc.Prob.Presparse()

	startR := 0
	if opts.FixedRecirc {
		startR = in.Recirc
	}
	trials := in.Recirc - startR + 1
	if workers > trials {
		workers = trials
	}

	type trialOut struct {
		a   *model.Assignment
		m   model.Metrics
		ok  bool
		err error
	}
	results := make([]trialOut, trials)
	runTrial := func(idx int) {
		r := startR + idx
		trial := *in
		trial.Recirc = r
		q := enc.Prob.Clone()
		enc.RestrictRecirc(q, r)
		sol, err := q.Solve(lp.Options{})
		if err != nil {
			results[idx].err = err
			return
		}
		if sol.Status != lp.Optimal {
			results[idx].err = fmt.Errorf("placement: LP relaxation %v", sol.Status)
			return
		}
		// Per-trial RNG: the draw stream depends only on (Seed, r), never on
		// scheduling, so the sweep is deterministic for any worker count.
		rng := rand.New(rand.NewSource(trialSeed(opts.Seed, r)))
		a, ok := roundAndRepair(&trial, enc, sol.X, opts, rng)
		if !ok {
			return
		}
		// Polish: the strip-repair step may have evicted whole chains whose
		// resources are now partly free; a greedy completion over the
		// residual space only adds deployments (rounded chains stay put).
		if gr, err := SolveGreedy(&trial, GreedyOptions{Consolidate: opts.Build.Consolidate, Pinned: a}); err == nil {
			a = gr.Assignment
		}
		results[idx] = trialOut{
			a:  a,
			m:  model.ComputeMetrics(&trial, a, opts.Build.Consolidate),
			ok: true,
		}
	}
	if workers <= 1 {
		for idx := 0; idx < trials; idx++ {
			runTrial(idx)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range next {
					runTrial(idx)
				}
			}()
		}
		for idx := 0; idx < trials; idx++ {
			next <- idx
		}
		close(next)
		wg.Wait()
	}

	best := emptyAssignment(in)
	bestMetrics := model.ComputeMetrics(in, best, opts.Build.Consolidate)
	for idx := 0; idx < trials; idx++ {
		if err := results[idx].err; err != nil {
			return nil, err
		}
		if !results[idx].ok {
			continue
		}
		// Strict improvement in ascending r: ties keep the smaller budget.
		// Assignments from a smaller virtual pipeline remain valid in the
		// full instance (stages only extend).
		if results[idx].m.Objective > bestMetrics.Objective {
			best, bestMetrics = results[idx].a, results[idx].m
		}
	}

	if err := model.Verify(in, best, opts.Build.Consolidate); err != nil {
		return nil, err
	}
	return &Result{
		Assignment: best,
		Metrics:    bestMetrics,
		Objective:  bestMetrics.Objective,
		Elapsed:    time.Since(start),
		Status:     "rounded",
	}, nil
}

// trialSeed derives an independent RNG seed for recirculation trial r from
// the user seed (splitmix-style mixing so nearby seeds do not correlate).
func trialSeed(seed int64, r int) int64 {
	z := uint64(seed) + (uint64(r)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// roundAndRepair performs the rounding loop of Algorithm 1 for one
// recirculation trial. The returned assignment is Verify-feasible.
func roundAndRepair(in *model.Instance, enc *model.Encoded, x []float64, opts ApproxOptions, rng *rand.Rand) (*model.Assignment, bool) {
	stripped := make(map[int]bool) // chain indices removed by the repair step
	for attempt := 0; attempt < opts.Rounds; attempt++ {
		a := roundOnce(in, enc, x, stripped, rng)
		if err := model.Verify(in, a, opts.Build.Consolidate); err == nil {
			return a, true
		}
		// Strip the selected chain with the worst Eq. 13 metric.
		worst, worstMetric := -1, 0.0
		for l, c := range in.Chains {
			if stripped[l] || !a.Deployed(l) {
				continue
			}
			m := Metric(c)
			if worst == -1 || m < worstMetric {
				worst, worstMetric = l, m
			}
		}
		if worst == -1 {
			// Nothing left to strip: fall back to the empty assignment.
			return emptyAssignment(in), true
		}
		stripped[worst] = true
	}
	return nil, false
}

// roundOnce draws one randomized rounding of the relaxed point:
//
//   - each chain deploys with probability d_l (its relaxed deployment mass),
//   - a deployed chain's boxes sample stages from the normalized z
//     distribution left-to-right, conditioned on strictly increasing stages,
//   - x is rounded up wherever a sampled box requires the physical NF, and
//     each remaining type keeps its highest-mass stage (Eq. 4).
//
// The draw may violate memory/capacity constraints — Verify decides.
func roundOnce(in *model.Instance, enc *model.Encoded, x []float64, stripped map[int]bool, rng *rand.Rand) *model.Assignment {
	S, K := in.Switch.Stages, in.K()
	a := model.NewAssignment(in)

	for l, c := range in.Chains {
		if stripped[l] {
			continue
		}
		J := c.Len()
		// Deployment probability = Σ_k z_{l,0,k}.
		d := 0.0
		for k := 0; k < K; k++ {
			d += enc.ZValue(x, l, 0, k)
		}
		if d > 1 {
			d = 1
		}
		if rng.Float64() >= d {
			continue
		}
		stages := make([]int, J)
		ok := true
		prev := -1
		for j := 0; j < J; j++ {
			// Sample stage k > prev proportionally to z mass.
			total := 0.0
			for k := prev + 1; k < K; k++ {
				total += enc.ZValue(x, l, j, k)
			}
			var pick int
			if total <= 1e-12 {
				// No fractional mass beyond prev: fall back to the first
				// feasible slot (j..) after prev.
				pick = -1
				for k := prev + 1; k < K; k++ {
					lo, hi := enc.ZWindow(l, j)
					if k >= lo && k <= hi {
						pick = k
						break
					}
				}
				if pick == -1 {
					ok = false
					break
				}
			} else {
				r := rng.Float64() * total
				pick = -1
				for k := prev + 1; k < K; k++ {
					z := enc.ZValue(x, l, j, k)
					if z <= 0 {
						continue
					}
					if r < z {
						pick = k
						break
					}
					r -= z
				}
				if pick == -1 { // numerical leftovers: last positive slot
					for k := K - 1; k > prev; k-- {
						if enc.ZValue(x, l, j, k) > 0 {
							pick = k
							break
						}
					}
				}
				if pick == -1 {
					ok = false
					break
				}
			}
			stages[j] = pick
			prev = pick
		}
		if !ok {
			continue
		}
		copy(a.Stages[l], stages)
		for j, k := range stages {
			a.X[c.NFs[j].Type-1][k%S] = true
		}
	}

	// Eq. 4: every type needs at least one instance; give absent types
	// their highest-fractional-mass stage.
	for i := 0; i < in.NumTypes; i++ {
		present := false
		for s := 0; s < S; s++ {
			present = present || a.X[i][s]
		}
		if present {
			continue
		}
		bestS, bestV := 0, -1.0
		for s := 0; s < S; s++ {
			if v := enc.XValue(x, i+1, s); v > bestV {
				bestS, bestV = s, v
			}
		}
		a.X[i][bestS] = true
	}
	return a
}

// sortChainsByMetric returns chain indices ordered by Eq. 13 descending
// (shared with the greedy algorithm).
func sortChainsByMetric(in *model.Instance) []int {
	idx := make([]int, len(in.Chains))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return Metric(in.Chains[idx[a]]) > Metric(in.Chains[idx[b]])
	})
	return idx
}
