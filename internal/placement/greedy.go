package placement

import (
	"time"

	"sfp/internal/model"
)

// GreedyOptions tunes SolveGreedy.
type GreedyOptions struct {
	// Consolidate matches the memory model used for accounting (Eq. 11
	// when true, Eq. 25 when false).
	Consolidate bool
	// Pinned, when set, pre-commits already-placed chains (non-negative
	// stages) and their physical layout; greedy then only places the
	// remaining chains into the residual resources. This is the runtime
	// update's incremental heuristic (§V-E with Algorithm 2).
	Pinned *model.Assignment
}

// greedyState tracks the resources the greedy algorithm consumes as it
// commits chains.
type greedyState struct {
	in   *model.Instance
	cons bool
	// X is the growing physical layout.
	X [][]bool
	// rules[i][s] is the total rules of type i+1 placed on stage s
	// (consolidated accounting).
	rules [][]int
	// blocks[s] is block usage under non-consolidated accounting.
	blocks []int
	// capUsed is the Eq. 12 backplane load.
	capUsed float64
}

func newGreedyState(in *model.Instance, cons bool) *greedyState {
	g := &greedyState{in: in, cons: cons}
	g.X = make([][]bool, in.NumTypes)
	g.rules = make([][]int, in.NumTypes)
	for i := range g.X {
		g.X[i] = make([]bool, in.Switch.Stages)
		g.rules[i] = make([]int, in.Switch.Stages)
	}
	g.blocks = make([]int, in.Switch.Stages)
	return g
}

// stageBlocks returns current block usage on physical stage s.
func (g *greedyState) stageBlocks(s int) int {
	E := g.in.Switch.EntriesPerBlock
	if !g.cons {
		return g.blocks[s]
	}
	total := 0
	for i := range g.rules {
		total += (g.rules[i][s] + E - 1) / E
	}
	return total
}

// fits reports whether adding `add` rules of type t (1-based) on stage s
// keeps the stage within its block budget.
func (g *greedyState) fits(t, s, add int) bool {
	E, B := g.in.Switch.EntriesPerBlock, g.in.Switch.BlocksPerStage
	if g.cons {
		before := (g.rules[t-1][s] + E - 1) / E
		after := (g.rules[t-1][s] + add + E - 1) / E
		return g.stageBlocks(s)-before+after <= B
	}
	return g.blocks[s]+(add+E-1)/E <= B
}

// place commits `add` rules of type t on stage s.
func (g *greedyState) place(t, s, add int) {
	g.rules[t-1][s] += add
	E := g.in.Switch.EntriesPerBlock
	if !g.cons {
		g.blocks[s] += (add + E - 1) / E
	}
	g.X[t-1][s] = true
}

// clone snapshots the state for tentative placement.
func (g *greedyState) clone() *greedyState {
	c := &greedyState{in: g.in, cons: g.cons, capUsed: g.capUsed}
	c.X = make([][]bool, len(g.X))
	c.rules = make([][]int, len(g.rules))
	for i := range g.X {
		c.X[i] = append([]bool(nil), g.X[i]...)
		c.rules[i] = append([]int(nil), g.rules[i]...)
	}
	c.blocks = append([]int(nil), g.blocks...)
	return c
}

// tryChain attempts to place one chain. Per Algorithm 2, each box goes to
// the "nearest next" physical NF with enough resource capability, with a
// new physical NF installed at the nearest next stage otherwise. Under the
// block-granular memory model those two cases cost the same wherever they
// land (rules of one type on one stage share the block ceiling), so the
// scan is a single ascending first-fit over virtual stages — which also
// minimizes recirculation, the scarcer Eq. 12 resource. It returns the box
// stages on success.
func (g *greedyState) tryChain(c *model.Chain) ([]int, *greedyState, bool) {
	S, K := g.in.Switch.Stages, g.in.K()
	work := g.clone()
	stages := make([]int, c.Len())
	cursor := 0
	for j, b := range c.NFs {
		placed := -1
		for k := cursor; k < K; k++ {
			s := k % S
			if work.fits(b.Type, s, b.Rules) {
				placed = k
				break
			}
		}
		if placed == -1 {
			return nil, nil, false
		}
		work.place(b.Type, placed%S, b.Rules)
		stages[j] = placed
		cursor = placed + 1
	}
	passes := stages[len(stages)-1]/S + 1
	if work.capUsed+float64(passes)*c.BandwidthGbps > g.in.Switch.CapacityGbps {
		return nil, nil, false
	}
	work.capUsed += float64(passes) * c.BandwidthGbps
	return stages, work, true
}

// SolveGreedy implements Algorithm 2: chains are ordered by the Eq. 13
// metric and placed first-fit; Resource_recompute is the committed state
// carried between chains.
func SolveGreedy(in *model.Instance, opts GreedyOptions) (*Result, error) {
	start := time.Now()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	g := newGreedyState(in, opts.Consolidate)
	a := model.NewAssignment(in)

	pinned := map[int]bool{}
	if opts.Pinned != nil {
		S := in.Switch.Stages
		for i := range opts.Pinned.X {
			copy(g.X[i], opts.Pinned.X[i])
		}
		for l, c := range in.Chains {
			if !opts.Pinned.Deployed(l) {
				continue
			}
			pinned[l] = true
			copy(a.Stages[l], opts.Pinned.Stages[l])
			for j, k := range opts.Pinned.Stages[l] {
				g.place(c.NFs[j].Type, k%S, c.NFs[j].Rules)
			}
			g.capUsed += float64(opts.Pinned.Passes(l, S)) * c.BandwidthGbps
		}
	}

	for _, l := range sortChainsByMetric(in) {
		if pinned[l] {
			continue
		}
		stages, next, ok := g.tryChain(in.Chains[l])
		if !ok {
			continue
		}
		*g = *next
		copy(a.Stages[l], stages)
	}
	// Physical layout from the committed state, plus Eq. 4 fill-in for
	// types no chain used (they consume no memory until configured).
	for i := range g.X {
		copy(a.X[i], g.X[i])
		present := false
		for s := range a.X[i] {
			present = present || a.X[i][s]
		}
		if !present {
			a.X[i][0] = true
		}
	}
	if err := model.Verify(in, a, opts.Consolidate); err != nil {
		return nil, err
	}
	m := model.ComputeMetrics(in, a, opts.Consolidate)
	return &Result{
		Assignment: a,
		Metrics:    m,
		Objective:  m.Objective,
		Elapsed:    time.Since(start),
		Status:     "greedy",
	}, nil
}
