package placement

// Lagrangian decomposition for the full placement program ("SFP-LD").
//
// The exact IP's cost grows superlinearly with the tenant count because the
// root LP couples every chain through the per-stage memory rows (Eq. 11/25)
// and the shared backplane row (Eq. 12). Those are the *only* coupling
// constraints: everything else is local to one chain, and the physical
// layout is free (rules are charged where they are placed, and Eq. 4 is
// satisfiable by fill-in on stage 0 — see emptyAssignment/SolveGreedy).
// Pricing the coupling rows with multipliers λ_s ≥ 0 (per physical stage)
// and μ ≥ 0 (backplane) therefore separates the program into L independent
// per-chain subproblems
//
//	max( 0,  max_{j ↦ k_j strictly increasing}
//	         T_l·J_l − Σ_j λ_{k_j mod S}·load_jl − μ·T_l·(⌊k_last/S⌋+1) )
//
// each of which is an exact O(J_l·K) dynamic program over the virtual
// pipeline (not an LP): choose strictly increasing virtual stages within the
// Eq. 8 windows, minimizing priced memory plus priced recirculation. By weak
// duality
//
//	L(λ,μ) = Σ_l subproblem_l + Σ_s λ_s·cap_s + μ·C  ≥  OPT
//
// for every λ,μ ≥ 0 (model.BoxLoad/StageCapacity define load/cap; under
// consolidation cap is the valid Σ rules ≤ B·E surrogate). The solver
// minimizes L by projected subgradient with a step-halving (Held-Karp
// style) schedule, closes each iteration with a greedy primal repair that
// commits priced chains under the *exact* feasibility accounting
// (greedyState: block ceilings, consolidation sharing, backplane), and
// returns the best feasible placement found together with the best dual
// bound — every answer ships with a certified optimality gap instead of the
// exact IP's bit-for-bit optimum. Results are deterministic for a fixed
// instance at any Workers count: parallel pricing writes per-chain slots
// and every reduction runs in ascending chain order.

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"sfp/internal/model"
)

// DefaultDecomposeAbove is the chain count at which full solves
// (core initial provisioning, MaybeReconfigure) switch from the exact IP to
// the decomposition by default. Below it the exact solve is comfortably
// fast and keeps its proven optimum; above it the IP's root LP alone
// dominates any reasonable time budget.
const DefaultDecomposeAbove = 512

// DecomposeOptions tunes SolveDecomposed.
type DecomposeOptions struct {
	// Build selects the formulation (only Consolidate matters here: it
	// picks the memory model the pricing and the repair account against).
	Build model.BuildOptions
	// TimeLimit bounds the subgradient loop (0 = none). The best feasible
	// placement and bound found so far are returned on expiry.
	TimeLimit time.Duration
	// MaxIters bounds subgradient iterations (0 = default 300).
	MaxIters int
	// TargetGap stops the loop once (bound − objective)/objective falls
	// below it (0 = default 0.01).
	TargetGap float64
	// Workers sets the parallel pricing worker count (0 or 1 = serial).
	// The result is identical at any worker count.
	Workers int
}

func (o DecomposeOptions) withDefaults() DecomposeOptions {
	if o.MaxIters == 0 {
		o.MaxIters = 300
	}
	if o.TargetGap == 0 {
		o.TargetGap = 0.01
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// decomposer holds the per-instance pricing data and reusable buffers.
type decomposer struct {
	in   *model.Instance
	cons bool
	S, K int

	// Per-chain constants.
	profit  []float64   // T_l · J_l
	bw      []float64   // T_l
	loads   [][]float64 // loads[l][j] in StageCapacity units
	offs    []int       // flat offsets into stageBuf (Σ J)
	canFit  []bool      // chain admissible in *some* relaxed placement
	cap     float64     // per-stage capacity in load units
	backCap float64     // C

	// Multipliers.
	lambda []float64
	mu     float64

	// Pricing output, indexed by chain.
	val      []float64
	priced   []bool
	stageBuf []int32 // priced stages, flat at offs[l]

	// Repair state (reused across iterations).
	order    []int
	metric   []int
	repStage []int32 // repaired stages, flat at offs[l]
	repDep   []bool
	repX     [][]bool
	undo     []undoEntry
}

type undoEntry struct {
	t, s, add int
	prevX     bool
}

// SolveDecomposed solves the full placement by Lagrangian decomposition
// with parallel per-chain pricing and a greedy primal repair. The returned
// Result carries a feasible (verified) assignment, the Lagrangian dual
// bound in Bound, and the certified relative gap in Gap.
func SolveDecomposed(in *model.Instance, opts DecomposeOptions) (*Result, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	d := newDecomposer(in, opts.Build.Consolidate)

	// Initial primal: Algorithm 2. Its objective seeds the Polyak step
	// sizing and guarantees the solver never returns worse than greedy.
	bestA := emptyAssignment(in)
	bestObj := 0.0
	if gr, err := SolveGreedy(in, GreedyOptions{Consolidate: d.cons}); err == nil {
		bestA = gr.Assignment
		bestObj = gr.Objective
	}
	bestDual := math.Inf(1)

	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}

	theta := 2.0
	noImprove := 0
	iters := 0
	use := make([]float64, d.S)
	for it := 0; it < opts.MaxIters; it++ {
		iters = it + 1
		d.priceAll(opts.Workers)

		// Dual value and subgradient at the priced selection.
		dual := d.mu * d.backCap
		for s := 0; s < d.S; s++ {
			dual += d.lambda[s] * d.cap
			use[s] = 0
		}
		backUse := 0.0
		for l := range d.in.Chains {
			if !d.priced[l] {
				continue
			}
			dual += d.val[l]
			st := d.stageBuf[d.offs[l]:d.offs[l+1]]
			for j, k := range st {
				use[int(k)%d.S] += d.loads[l][j]
			}
			backUse += d.bw[l] * float64(int(st[len(st)-1])/d.S+1)
		}
		// Tolerance scales with the candidate, not bestDual: the latter
		// starts at +Inf and Inf−Inf is NaN, which would reject every update.
		if dual < bestDual-1e-9*math.Max(1, math.Abs(dual)) {
			bestDual = dual
			noImprove = 0
		} else {
			noImprove++
			if noImprove >= 5 {
				theta /= 2
				noImprove = 0
			}
		}

		// Primal repair: exact-feasibility commit of the priced selection,
		// then first-fit fill. The assignment is only materialized when the
		// repair actually improves on the best placement so far.
		if obj := d.repair(); obj > bestObj+1e-12 {
			bestObj = obj
			bestA = d.materialize()
		}

		if relGap(bestDual, bestObj) <= opts.TargetGap || theta < 1e-4 {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}

		// Projected subgradient step, Polyak-sized against the best primal.
		gnorm2 := 0.0
		for s := 0; s < d.S; s++ {
			g := use[s] - d.cap
			gnorm2 += g * g
		}
		gBack := backUse - d.backCap
		gnorm2 += gBack * gBack
		if gnorm2 < 1e-18 {
			break // stationary: priced selection respects every relaxed row
		}
		step := theta * (dual - bestObj) / gnorm2
		if step <= 0 {
			step = 1e-12
		}
		for s := 0; s < d.S; s++ {
			d.lambda[s] = math.Max(0, d.lambda[s]+step*(use[s]-d.cap))
		}
		d.mu = math.Max(0, d.mu+step*gBack)
	}

	if bestDual < bestObj {
		// The incumbent is a true lower bound; never report a bound below it.
		bestDual = bestObj
	}
	if err := model.Verify(in, bestA, d.cons); err != nil {
		return nil, fmt.Errorf("placement: decomposed solution failed verification: %w", err)
	}
	m := model.ComputeMetrics(in, bestA, d.cons)
	return &Result{
		Assignment: bestA,
		Metrics:    m,
		Objective:  m.Objective,
		Bound:      bestDual,
		Gap:        relGap(bestDual, m.Objective),
		DualIters:  iters,
		Elapsed:    time.Since(start),
		Status:     "decomposed",
	}, nil
}

// relGap is the certified relative optimality gap of a (bound, objective)
// pair, with the usual guard for a zero objective.
func relGap(bound, obj float64) float64 {
	if bound <= obj {
		return 0
	}
	return (bound - obj) / math.Max(obj, 1e-9)
}

func newDecomposer(in *model.Instance, cons bool) *decomposer {
	d := &decomposer{
		in:      in,
		cons:    cons,
		S:       in.Switch.Stages,
		K:       in.K(),
		cap:     model.StageCapacity(in.Switch, cons),
		backCap: in.Switch.CapacityGbps,
		lambda:  make([]float64, in.Switch.Stages),
	}
	L := len(in.Chains)
	d.profit = make([]float64, L)
	d.bw = make([]float64, L)
	d.loads = make([][]float64, L)
	d.canFit = make([]bool, L)
	d.offs = make([]int, L+1)
	for l, c := range in.Chains {
		d.profit[l] = model.ChainProfit(c)
		d.bw[l] = c.BandwidthGbps
		d.offs[l+1] = d.offs[l] + c.Len()
		loads := make([]float64, c.Len())
		// A chain whose single box overflows a whole stage, whose bandwidth
		// exceeds the backplane, or whose length exceeds the virtual
		// pipeline can never deploy; excluding it from pricing adds only
		// constraints the original program implies, so the bound stays
		// valid (and tighter).
		fit := c.Len() <= d.K && c.BandwidthGbps <= d.backCap
		for j, b := range c.NFs {
			loads[j] = model.BoxLoad(b, in.Switch, cons)
			if loads[j] > d.cap {
				fit = false
			}
		}
		d.loads[l] = loads
		d.canFit[l] = fit
	}
	d.val = make([]float64, L)
	d.priced = make([]bool, L)
	d.stageBuf = make([]int32, d.offs[L])
	d.repStage = make([]int32, d.offs[L])
	d.repDep = make([]bool, L)
	d.repX = make([][]bool, in.NumTypes)
	for i := range d.repX {
		d.repX[i] = make([]bool, d.S)
	}
	d.metric = sortChainsByMetric(in)
	return d
}

// priceScratch is one worker's DP workspace.
type priceScratch struct {
	fPrev, fCur []float64
	parent      []int32
}

// priceAll solves every chain subproblem at the current multipliers.
// Workers > 1 partitions the chains into contiguous ranges; per-chain
// outputs land in disjoint slots, so the result is order-independent.
func (d *decomposer) priceAll(workers int) {
	L := len(d.in.Chains)
	if workers > L {
		workers = L
	}
	if workers <= 1 {
		sc := &priceScratch{}
		for l := 0; l < L; l++ {
			d.priceChain(l, sc)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (L + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > L {
			hi = L
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sc := &priceScratch{}
			for l := lo; l < hi; l++ {
				d.priceChain(l, sc)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// priceChain solves chain l's subproblem exactly: the minimum-priced
// strictly increasing virtual-stage walk (Eq. 8 windows), O(J·K) via a
// running prefix-min, deterministic tie-breaking toward earlier stages.
func (d *decomposer) priceChain(l int, sc *priceScratch) {
	d.priced[l] = false
	d.val[l] = 0
	if !d.canFit[l] {
		return
	}
	c := d.in.Chains[l]
	J, K, S := c.Len(), d.K, d.S
	if cap(sc.fPrev) < K {
		sc.fPrev = make([]float64, K)
		sc.fCur = make([]float64, K)
	}
	if cap(sc.parent) < J*K {
		sc.parent = make([]int32, J*K)
	}
	fPrev, fCur := sc.fPrev[:K], sc.fCur[:K]
	parent := sc.parent[:J*K]

	// Layer 0: box 0 may sit on k ∈ [0, K−J].
	hi0 := K - J
	for k := 0; k <= hi0; k++ {
		fPrev[k] = d.lambda[k%S] * d.loads[l][0]
		parent[k] = -1
	}
	for j := 1; j < J; j++ {
		hi := K - J + j
		best := math.Inf(1)
		bestK := int32(-1)
		for k := j; k <= hi; k++ {
			if fPrev[k-1] < best {
				best = fPrev[k-1]
				bestK = int32(k - 1)
			}
			fCur[k] = best + d.lambda[k%S]*d.loads[l][j]
			parent[j*K+k] = bestK
		}
		fPrev, fCur = fCur, fPrev
	}

	// Close with the priced recirculation term; ties pick the earliest
	// final stage (fewest passes).
	bestVal := math.Inf(-1)
	bestK := -1
	for k := J - 1; k < K; k++ {
		v := d.profit[l] - fPrev[k] - d.mu*d.bw[l]*float64(k/S+1)
		if v > bestVal+1e-15 {
			bestVal = v
			bestK = k
		}
	}
	if bestK < 0 || bestVal <= 1e-9 {
		return
	}
	d.val[l] = bestVal
	d.priced[l] = true
	st := d.stageBuf[d.offs[l]:d.offs[l+1]]
	k := int32(bestK)
	for j := J - 1; j >= 0; j-- {
		st[j] = k
		k = parent[j*K+int(k)]
	}
}

// commitAt places chain l at the given stages under exact accounting,
// mutating g in place; on any violation the partial placement is undone and
// false is returned.
func (d *decomposer) commitAt(g *greedyState, l int, stages []int32) bool {
	c := d.in.Chains[l]
	d.undo = d.undo[:0]
	for j, b := range c.NFs {
		s := int(stages[j]) % d.S
		if !g.fits(b.Type, s, b.Rules) {
			d.rollback(g)
			return false
		}
		d.undo = append(d.undo, undoEntry{t: b.Type, s: s, add: b.Rules, prevX: g.X[b.Type-1][s]})
		g.place(b.Type, s, b.Rules)
	}
	passes := float64(int(stages[len(stages)-1])/d.S + 1)
	if g.capUsed+passes*d.bw[l] > d.backCap {
		d.rollback(g)
		return false
	}
	g.capUsed += passes * d.bw[l]
	return true
}

// commitFirstFit is commitAt's fallback: the same ascending first-fit scan
// tryChain uses, but in place. The chosen stages are written into out.
func (d *decomposer) commitFirstFit(g *greedyState, l int, out []int32) bool {
	c := d.in.Chains[l]
	d.undo = d.undo[:0]
	cursor := 0
	for j, b := range c.NFs {
		placed := -1
		for k := cursor; k < d.K; k++ {
			if g.fits(b.Type, k%d.S, b.Rules) {
				placed = k
				break
			}
		}
		if placed == -1 {
			d.rollback(g)
			return false
		}
		s := placed % d.S
		d.undo = append(d.undo, undoEntry{t: b.Type, s: s, add: b.Rules, prevX: g.X[b.Type-1][s]})
		g.place(b.Type, s, b.Rules)
		out[j] = int32(placed)
		cursor = placed + 1
	}
	passes := float64(int(out[c.Len()-1])/d.S + 1)
	if g.capUsed+passes*d.bw[l] > d.backCap {
		d.rollback(g)
		return false
	}
	g.capUsed += passes * d.bw[l]
	return true
}

func (d *decomposer) rollback(g *greedyState) {
	E := d.in.Switch.EntriesPerBlock
	for i := len(d.undo) - 1; i >= 0; i-- {
		u := d.undo[i]
		g.rules[u.t-1][u.s] -= u.add
		if !g.cons {
			g.blocks[u.s] -= (u.add + E - 1) / E
		}
		g.X[u.t-1][u.s] = u.prevX
	}
}

// repair rounds the priced selection into a feasible placement: priced
// chains commit at their subproblem stages in descending Lagrangian-profit
// order (exact block/backplane accounting, first-fit fallback), then every
// remaining chain gets a first-fit attempt in Eq. 13 metric order. Returns
// the Eq. 1 objective; materialize turns the retained repair buffers into
// an Assignment when the caller adopts the iteration.
func (d *decomposer) repair() float64 {
	d.order = d.order[:0]
	for l := range d.in.Chains {
		d.repDep[l] = false
		if d.priced[l] {
			d.order = append(d.order, l)
		}
	}
	sort.Slice(d.order, func(a, b int) bool {
		if d.val[d.order[a]] != d.val[d.order[b]] {
			return d.val[d.order[a]] > d.val[d.order[b]]
		}
		return d.order[a] < d.order[b]
	})
	g := newGreedyState(d.in, d.cons)
	obj := 0.0
	for _, l := range d.order {
		st := d.repStage[d.offs[l]:d.offs[l+1]]
		copy(st, d.stageBuf[d.offs[l]:d.offs[l+1]])
		if d.commitAt(g, l, st) || d.commitFirstFit(g, l, st) {
			d.repDep[l] = true
			obj += d.profit[l]
		}
	}
	for _, l := range d.metric {
		if d.priced[l] || !d.canFit[l] {
			continue
		}
		st := d.repStage[d.offs[l]:d.offs[l+1]]
		if d.commitFirstFit(g, l, st) {
			d.repDep[l] = true
			obj += d.profit[l]
		}
	}
	for i := range g.X {
		copy(d.repX[i], g.X[i])
	}
	return obj
}

// materialize builds the Assignment of the most recent repair (stages of
// admitted chains, committed layout, Eq. 4 fill-in for unused types).
func (d *decomposer) materialize() *model.Assignment {
	a := model.NewAssignment(d.in)
	for l := range d.in.Chains {
		if !d.repDep[l] {
			continue
		}
		st := d.repStage[d.offs[l]:d.offs[l+1]]
		for j, k := range st {
			a.Stages[l][j] = int(k)
		}
	}
	for i := range d.repX {
		copy(a.X[i], d.repX[i])
		present := false
		for s := range a.X[i] {
			present = present || a.X[i][s]
		}
		if !present {
			a.X[i][0] = true
		}
	}
	return a
}
