package placement

import (
	"math/rand"
	"testing"
	"time"

	"sfp/internal/model"
	"sfp/internal/traffic"
)

// Ablation benchmarks for the design choices DESIGN.md §4 calls out: the
// aggregated vs exact consistency rows (LP size/tightness trade-off), the
// greedy warm start for branch and bound, and the structured rounding
// heuristic inside the IP. Run with:
//
//	go test ./internal/placement -bench=Ablation -benchtime=3x

func ablationInstance(seed int64, L int) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	return &model.Instance{
		Switch:   model.DefaultSwitchConfig(),
		NumTypes: 10,
		Recirc:   2,
		Chains:   traffic.GenChains(rng, L, traffic.ChainParams{}),
	}
}

// BenchmarkAblationConsistencyAggregated measures the LP relaxation with
// the aggregated Eq. 9 rows (one per (type, stage)).
func BenchmarkAblationConsistencyAggregated(b *testing.B) {
	in := ablationInstance(1, 12)
	var obj float64
	for i := 0; i < b.N; i++ {
		_, sol, err := SolveLPRelaxation(in, model.BuildOptions{Consolidate: true, ExactConsistency: false})
		if err != nil {
			b.Fatal(err)
		}
		obj = sol.Objective
	}
	b.ReportMetric(obj, "lp-bound")
}

// BenchmarkAblationConsistencyExact measures the LP relaxation with the
// paper's verbatim Eq. 9 (one row per z variable): tighter bound, more rows.
func BenchmarkAblationConsistencyExact(b *testing.B) {
	in := ablationInstance(1, 12)
	var obj float64
	for i := 0; i < b.N; i++ {
		_, sol, err := SolveLPRelaxation(in, model.BuildOptions{Consolidate: true, ExactConsistency: true})
		if err != nil {
			b.Fatal(err)
		}
		obj = sol.Objective
	}
	b.ReportMetric(obj, "lp-bound")
}

// BenchmarkAblationWarmStartOn measures a time-capped IP with the greedy
// warm start (the default).
func BenchmarkAblationWarmStartOn(b *testing.B) {
	in := ablationInstance(2, 8)
	var obj float64
	for i := 0; i < b.N; i++ {
		res, err := SolveIP(in, IPOptions{
			Build: model.BuildOptions{Consolidate: true}, TimeLimit: 3 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		obj = res.Objective
	}
	b.ReportMetric(obj, "objective@3s")
}

// BenchmarkAblationWarmStartOff measures the same solve cold: the objective
// under the same time cap shows what the warm start buys.
func BenchmarkAblationWarmStartOff(b *testing.B) {
	in := ablationInstance(2, 8)
	var obj float64
	for i := 0; i < b.N; i++ {
		res, err := SolveIP(in, IPOptions{
			Build: model.BuildOptions{Consolidate: true}, TimeLimit: 3 * time.Second, NoWarmStart: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		obj = res.Objective
	}
	b.ReportMetric(obj, "objective@3s")
}

// BenchmarkAblationRoundingRetries measures Algorithm 1's sensitivity to
// the rounding retry budget.
func BenchmarkAblationRoundingRetries(b *testing.B) {
	in := ablationInstance(3, 20)
	for _, rounds := range []int{1, 10, 50} {
		b.Run(map[int]string{1: "r1", 10: "r10", 50: "r50"}[rounds], func(b *testing.B) {
			var obj float64
			for i := 0; i < b.N; i++ {
				res, err := SolveApprox(in, ApproxOptions{
					Build: model.BuildOptions{Consolidate: true}, Seed: int64(i), Rounds: rounds,
				})
				if err != nil {
					b.Fatal(err)
				}
				obj = res.Objective
			}
			b.ReportMetric(obj, "objective")
		})
	}
}

// BenchmarkGreedyPlacement measures Algorithm 2's raw speed at the paper's
// L=50 scale (the "prompt deployment" use case).
func BenchmarkGreedyPlacement(b *testing.B) {
	in := ablationInstance(4, 50)
	for i := 0; i < b.N; i++ {
		if _, err := SolveGreedy(in, GreedyOptions{Consolidate: true}); err != nil {
			b.Fatal(err)
		}
	}
}
