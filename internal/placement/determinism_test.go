package placement

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sfp/internal/model"
	"sfp/internal/traffic"
)

// sweepInstance builds an instance with a real recirculation sweep (R = 2,
// three trials) so the concurrent trial scheduling has work to reorder.
func sweepInstance(seed int64, L int) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	return &model.Instance{
		Switch:   model.SwitchConfig{Stages: 4, BlocksPerStage: 6, EntriesPerBlock: 500, CapacityGbps: 120},
		NumTypes: 4,
		Recirc:   2,
		Chains: traffic.GenChains(rng, L, traffic.ChainParams{
			NumTypes: 4, MeanLen: 3, RuleMin: 100, RuleMax: 900,
		}),
	}
}

// TestApproxDeterministicAcrossWorkers: a fixed Seed must yield the
// identical Result — same objective bit for bit, same assignment — no
// matter how many workers run the recirculation sweep.
func TestApproxDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		in := sweepInstance(seed, 8)
		opts := ApproxOptions{Build: model.BuildOptions{Consolidate: true}, Seed: 42}
		ref, err := SolveApprox(in, opts)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		for _, workers := range []int{1, 4, 8} {
			o := opts
			o.Workers = workers
			got, err := SolveApprox(in, o)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if got.Objective != ref.Objective {
				t.Fatalf("seed %d workers %d: objective %v, serial %v",
					seed, workers, got.Objective, ref.Objective)
			}
			if !reflect.DeepEqual(got.Assignment, ref.Assignment) {
				t.Fatalf("seed %d workers %d: assignment differs from serial", seed, workers)
			}
			if !reflect.DeepEqual(got.Metrics, ref.Metrics) {
				t.Fatalf("seed %d workers %d: metrics differ from serial", seed, workers)
			}
		}
	}
}

// TestApproxRepeatableSameSeed: the same call twice gives the same Result
// (guards against any hidden global RNG state in the sweep).
func TestApproxRepeatableSameSeed(t *testing.T) {
	in := sweepInstance(5, 8)
	opts := ApproxOptions{Build: model.BuildOptions{Consolidate: true}, Seed: 9, Workers: 4}
	a, err := SolveApprox(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveApprox(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || !reflect.DeepEqual(a.Assignment, b.Assignment) {
		t.Fatalf("two identical runs diverged: %v vs %v", a.Objective, b.Objective)
	}
}

// TestIPParallelMatchesSerialObjective: SFP-IP must prove the same optimum
// with a parallel tree search as with the serial reference.
func TestIPParallelMatchesSerialObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := smallInstance(rng, 4)
	serial, err := SolveIP(in, IPOptions{Build: model.BuildOptions{Consolidate: true}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveIP(in, IPOptions{Build: model.BuildOptions{Consolidate: true}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Status != serial.Status {
		t.Fatalf("parallel status %s, serial %s", par.Status, serial.Status)
	}
	if math.Abs(par.Objective-serial.Objective) > 1e-6 {
		t.Fatalf("parallel objective %v, serial %v", par.Objective, serial.Objective)
	}
	if err := model.Verify(in, par.Assignment, true); err != nil {
		t.Fatal(err)
	}
}
