package placement

import (
	"testing"

	"sfp/internal/lp"
	"sfp/internal/model"
)

// TestSolveApproxEncodesOnce pins the encode-hoisting optimization: one
// SolveApprox call over a full recirculation sweep (r = 0..R, R+1 trials)
// must build the model exactly once — trials clone the LP and patch bounds
// via RestrictRecirc instead of re-encoding.
func TestSolveApproxEncodesOnce(t *testing.T) {
	in := sweepInstance(7, 8) // Recirc = 2 → three trials
	before := model.BuildCalls()
	res, err := SolveApprox(in, ApproxOptions{Build: model.BuildOptions{Consolidate: true}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment == nil {
		t.Fatal("no assignment")
	}
	if d := model.BuildCalls() - before; d != 1 {
		t.Fatalf("SolveApprox built the model %d times across a %d-trial sweep, want 1",
			d, in.Recirc+1)
	}
}

// TestRestrictRecircMatchesReencode checks the patched clone solves to the
// same LP optimum as a from-scratch encode at the reduced budget — the
// feasible sets coincide, so the objectives must agree.
func TestRestrictRecircMatchesReencode(t *testing.T) {
	in := sweepInstance(13, 8)
	enc, err := model.Build(in, model.BuildOptions{Consolidate: true})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r <= in.Recirc; r++ {
		q := enc.Prob.Clone()
		enc.RestrictRecirc(q, r)
		patched, err := q.Solve(lp.Options{})
		if err != nil {
			t.Fatalf("r=%d patched: %v", r, err)
		}
		reduced := *in
		reduced.Recirc = r
		enc2, err := model.Build(&reduced, model.BuildOptions{Consolidate: true})
		if err != nil {
			t.Fatalf("r=%d re-encode: %v", r, err)
		}
		fresh, err := enc2.Prob.Solve(lp.Options{})
		if err != nil {
			t.Fatalf("r=%d fresh: %v", r, err)
		}
		if patched.Status != fresh.Status {
			t.Fatalf("r=%d: patched %v, fresh %v", r, patched.Status, fresh.Status)
		}
		if diff := patched.Objective - fresh.Objective; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("r=%d: patched objective %v, fresh %v", r, patched.Objective, fresh.Objective)
		}
	}
}
