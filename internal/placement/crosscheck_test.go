package placement

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sfp/internal/model"
)

// TestEncodeAssignmentCrossValidation: any Verify-feasible assignment
// (greedy output on random instances) must encode to an LP-feasible point
// of the exact-consistency IP. This cross-checks the combinatorial verifier
// against the LP encoding — a bug in either shows up as disagreement.
func TestEncodeAssignmentCrossValidation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := smallInstance(rng, 1+rng.Intn(8))
		for _, consolidate := range []bool{true, false} {
			gr, err := SolveGreedy(in, GreedyOptions{Consolidate: consolidate})
			if err != nil {
				return false
			}
			enc, err := model.Build(in, model.BuildOptions{Consolidate: consolidate, ExactConsistency: true})
			if err != nil {
				return false
			}
			x, err := enc.EncodeAssignment(gr.Assignment)
			if err != nil {
				return false
			}
			if !enc.Prob.Feasible(x, 1e-7) {
				t.Logf("seed %d consolidate=%v: violations: %v", seed, consolidate, enc.Prob.Violations(x, 1e-7))
				return false
			}
			// The LP objective of the encoded point must match the metrics
			// objective up to the auxiliary-variable perturbation.
			m := model.ComputeMetrics(in, gr.Assignment, consolidate)
			if d := enc.Prob.Eval(x) - m.Objective; d > 1e-6 || d < -1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestApproxFixedRecirc: the FixedRecirc option solves only the r = R trial
// and still yields a feasible assignment.
func TestApproxFixedRecirc(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := smallInstance(rng, 4)
	res, err := SolveApprox(in, ApproxOptions{
		Build: model.BuildOptions{Consolidate: true}, Seed: 3, FixedRecirc: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Verify(in, res.Assignment, true); err != nil {
		t.Fatal(err)
	}
	// Sweeping r = 0..R can only match or beat the single fixed trial
	// (identical leading RNG stream, superset of trials).
	full, err := SolveApprox(in, ApproxOptions{
		Build: model.BuildOptions{Consolidate: true}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Objective+1e-9 < 0 || res.Objective < 0 {
		t.Fatal("negative objective")
	}
	_ = full // both are feasible; relative quality is workload-dependent
}

// TestIPRespectsAuxCeil: the IP optimum's block counters equal the exact
// ceilings the verifier computes — the ceiling-auxiliary machinery neither
// over- nor under-counts memory.
func TestIPRespectsAuxCeil(t *testing.T) {
	in := &model.Instance{
		Switch:   model.SwitchConfig{Stages: 2, BlocksPerStage: 2, EntriesPerBlock: 100, CapacityGbps: 100},
		NumTypes: 1,
		Recirc:   0,
		Chains: []*model.Chain{
			// 150 rules = 2 blocks consolidated; another 60-rule chain would
			// need a 3rd block on the same stage — but can use stage 2.
			{ID: 1, BandwidthGbps: 10, NFs: []model.ChainNF{{Type: 1, Rules: 150}}},
			{ID: 2, BandwidthGbps: 9, NFs: []model.ChainNF{{Type: 1, Rules: 60}}},
		},
	}
	res, err := SolveIP(in, IPOptions{Build: model.BuildOptions{Consolidate: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "optimal" {
		t.Fatalf("status %s", res.Status)
	}
	m := res.Metrics
	if m.Deployed != 2 {
		t.Fatalf("deployed = %d, want both (second chain fits on the other stage)", m.Deployed)
	}
	total := 0
	for _, b := range m.BlocksPerStage {
		if b > in.Switch.BlocksPerStage {
			t.Errorf("stage exceeds block budget: %v", m.BlocksPerStage)
		}
		total += b
	}
	if total != 3 {
		t.Errorf("total blocks = %d, want 3 (ceil(150/100) + ceil(60/100))", total)
	}
}

// TestIPDominatesHeuristics: a time-capped warm-started IP must never
// report a worse objective than greedy or a provided approximation warm
// start — the warm-start machinery guarantees it.
func TestIPDominatesHeuristics(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := smallInstance(rng, 6)
		gr, err := SolveGreedy(in, GreedyOptions{Consolidate: true})
		if err != nil {
			t.Fatal(err)
		}
		ap, err := SolveApprox(in, ApproxOptions{Build: model.BuildOptions{Consolidate: true}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ip, err := SolveIP(in, IPOptions{
			Build:     model.BuildOptions{Consolidate: true},
			TimeLimit: 3 * time.Second,
			WarmFrom:  ap.Assignment,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ip.Objective < gr.Objective-1e-6 {
			t.Errorf("seed %d: IP %v below greedy %v", seed, ip.Objective, gr.Objective)
		}
		if ip.Objective < ap.Objective-1e-6 {
			t.Errorf("seed %d: IP %v below appro %v", seed, ip.Objective, ap.Objective)
		}
	}
}
