package placement

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sfp/internal/model"
	"sfp/internal/traffic"
)

func smallInstance(rng *rand.Rand, L int) *model.Instance {
	return &model.Instance{
		Switch:   model.SwitchConfig{Stages: 4, BlocksPerStage: 6, EntriesPerBlock: 500, CapacityGbps: 120},
		NumTypes: 4,
		Recirc:   1,
		Chains: traffic.GenChains(rng, L, traffic.ChainParams{
			NumTypes: 4, MeanLen: 3, RuleMin: 100, RuleMax: 900,
		}),
	}
}

func TestSolveIPSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := smallInstance(rng, 4)
	res, err := SolveIP(in, IPOptions{Build: model.BuildOptions{Consolidate: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "optimal" {
		t.Fatalf("status = %s", res.Status)
	}
	if res.Assignment == nil || res.Objective <= 0 {
		t.Fatalf("objective = %v", res.Objective)
	}
	if err := model.Verify(in, res.Assignment, true); err != nil {
		t.Fatal(err)
	}
	if res.Bound < res.Objective-1e-3 { // aux-variable epsilon perturbs the solver bound
		t.Errorf("bound %v below objective %v", res.Bound, res.Objective)
	}
}

func TestApproxFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := smallInstance(rng, 5)
	ip, err := SolveIP(in, IPOptions{Build: model.BuildOptions{Consolidate: true}})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := SolveApprox(in, ApproxOptions{Build: model.BuildOptions{Consolidate: true}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ap.Objective > ip.Objective+1e-6 {
		t.Errorf("approx %v beats exact IP %v", ap.Objective, ip.Objective)
	}
	if ap.Objective <= 0 {
		t.Errorf("approx placed nothing (objective %v)", ap.Objective)
	}
	// Sanity: approximation should recover a decent share of the optimum
	// on this easy instance.
	if ap.Objective < 0.4*ip.Objective {
		t.Errorf("approx %v under 40%% of IP %v", ap.Objective, ip.Objective)
	}
}

func TestGreedyFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := smallInstance(rng, 6)
	ip, err := SolveIP(in, IPOptions{Build: model.BuildOptions{Consolidate: true}})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := SolveGreedy(in, GreedyOptions{Consolidate: true})
	if err != nil {
		t.Fatal(err)
	}
	if gr.Objective > ip.Objective+1e-6 {
		t.Errorf("greedy %v beats exact IP %v", gr.Objective, ip.Objective)
	}
	if gr.Objective <= 0 {
		t.Error("greedy placed nothing")
	}
}

func TestMetricOrdering(t *testing.T) {
	a := &model.Chain{ID: 1, BandwidthGbps: 10, NFs: []model.ChainNF{{Type: 1, Rules: 100}}}
	b := &model.Chain{ID: 2, BandwidthGbps: 10, NFs: []model.ChainNF{{Type: 1, Rules: 100}, {Type: 2, Rules: 100}}}
	if Metric(a) <= Metric(b) {
		t.Error("shorter chain with same bandwidth should score higher")
	}
	c := &model.Chain{ID: 3, BandwidthGbps: 40, NFs: []model.ChainNF{{Type: 1, Rules: 100}}}
	if Metric(c) <= Metric(a) {
		t.Error("higher bandwidth should score higher")
	}
	in := &model.Instance{Switch: model.DefaultSwitchConfig(), NumTypes: 2, Chains: []*model.Chain{b, a, c}}
	order := sortChainsByMetric(in)
	if in.Chains[order[0]].ID != 3 || in.Chains[order[2]].ID != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestGreedyPrefersHighMetric(t *testing.T) {
	// Capacity admits only one chain; greedy must pick the high-metric one.
	in := &model.Instance{
		Switch:   model.SwitchConfig{Stages: 2, BlocksPerStage: 10, EntriesPerBlock: 1000, CapacityGbps: 20},
		NumTypes: 1,
		Recirc:   0,
		Chains: []*model.Chain{
			{ID: 1, BandwidthGbps: 15, NFs: []model.ChainNF{{Type: 1, Rules: 100}}},
			{ID: 2, BandwidthGbps: 14, NFs: []model.ChainNF{{Type: 1, Rules: 5000}}},
		},
	}
	res, err := SolveGreedy(in, GreedyOptions{Consolidate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Deployed(0) {
		t.Error("high-metric chain not placed")
	}
	if res.Assignment.Deployed(1) {
		t.Error("both chains placed despite 20 Gbps capacity")
	}
}

func TestGreedyUsesRecirculation(t *testing.T) {
	// A 3-NF chain on a 2-stage switch requires folding.
	in := &model.Instance{
		Switch:   model.SwitchConfig{Stages: 2, BlocksPerStage: 4, EntriesPerBlock: 1000, CapacityGbps: 100},
		NumTypes: 3,
		Recirc:   1,
		Chains: []*model.Chain{
			{ID: 1, BandwidthGbps: 10, NFs: []model.ChainNF{{Type: 1, Rules: 100}, {Type: 2, Rules: 100}, {Type: 3, Rules: 100}}},
		},
	}
	res, err := SolveGreedy(in, GreedyOptions{Consolidate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Deployed(0) {
		t.Fatal("chain not placed")
	}
	if p := res.Assignment.Passes(0, 2); p != 2 {
		t.Errorf("passes = %d, want 2", p)
	}
	if math.Abs(res.Metrics.BackplaneGbps-20) > 1e-9 {
		t.Errorf("backplane = %v, want 20", res.Metrics.BackplaneGbps)
	}
}

// Property: approx and greedy always emit Verify-feasible assignments on
// random instances, and never beat the LP bound.
func TestHeuristicsAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := smallInstance(rng, 1+rng.Intn(6))
		build := model.BuildOptions{Consolidate: rng.Intn(2) == 0}

		_, lpSol, err := SolveLPRelaxation(in, build)
		if err != nil {
			return false
		}

		ap, err := SolveApprox(in, ApproxOptions{Build: build, Seed: seed})
		if err != nil {
			return false
		}
		if model.Verify(in, ap.Assignment, build.Consolidate) != nil {
			return false
		}
		if ap.Objective > lpSol.Objective+1e-5 {
			return false
		}
		gr, err := SolveGreedy(in, GreedyOptions{Consolidate: build.Consolidate})
		if err != nil {
			return false
		}
		if model.Verify(in, gr.Assignment, build.Consolidate) != nil {
			return false
		}
		return gr.Objective <= lpSol.Objective+1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestIPTimeLimitEarlyTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := smallInstance(rng, 10)
	// A nanosecond limit with a cold solver yields the zero placement (the
	// Fig. 9 left edge).
	cold, err := SolveIP(in, IPOptions{Build: model.BuildOptions{Consolidate: true}, TimeLimit: time.Nanosecond, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Assignment == nil {
		t.Fatal("no assignment under time limit")
	}
	if cold.Objective != 0 {
		t.Errorf("cold 1ns objective = %v, want 0", cold.Objective)
	}
	if err := model.Verify(in, cold.Assignment, true); err != nil {
		t.Fatal(err)
	}
	// A warm-started solve under the same limit already has the greedy
	// incumbent.
	warm, err := SolveIP(in, IPOptions{Build: model.BuildOptions{Consolidate: true}, TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Objective <= 0 {
		t.Errorf("warm-started objective = %v, want > 0", warm.Objective)
	}
	// A generous limit can only improve on the warm start.
	res2, err := SolveIP(in, IPOptions{Build: model.BuildOptions{Consolidate: true}, TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Objective < warm.Objective-1e-9 {
		t.Errorf("more time lost objective: %v vs %v", res2.Objective, warm.Objective)
	}
	if err := model.Verify(in, res2.Assignment, true); err != nil {
		t.Fatal(err)
	}
}

func TestUpdaterLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := smallInstance(rng, 6)
	build := model.BuildOptions{Consolidate: true}
	initial, err := SolveIP(in, IPOptions{Build: build, TimeLimit: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(in, initial.Assignment, build)
	if err != nil {
		t.Fatal(err)
	}
	liveBefore := u.Live()
	if len(liveBefore) == 0 {
		t.Fatal("nothing live after initial placement")
	}

	// Depart one live chain; its resources free up.
	departed := liveBefore[0]
	if err := u.Depart(departed); err != nil {
		t.Fatal(err)
	}
	if err := u.Depart(departed); err == nil {
		t.Error("double departure accepted")
	}
	_, _, mAfterDepart := u.Current()

	// A new candidate arrives and a replan places what fits.
	newChain := &model.Chain{ID: 1000, BandwidthGbps: 5, NFs: []model.ChainNF{{Type: 1, Rules: 200}}}
	if err := u.Arrive(newChain); err != nil {
		t.Fatal(err)
	}
	if err := u.Arrive(newChain); err == nil {
		t.Error("duplicate arrival accepted")
	}
	mAfterReplan, err := u.Replan(ReplanOptions{TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if mAfterReplan.Objective < mAfterDepart.Objective-1e-9 {
		t.Errorf("replan decreased objective: %v -> %v", mAfterDepart.Objective, mAfterReplan.Objective)
	}

	// Survivors must keep their exact stages.
	_, a, _ := u.Current()
	inNow, _, _ := u.snapshot()
	for l, c := range inNow.Chains {
		if st, ok := u.live[c.ID]; ok {
			for j, want := range st {
				if a.Stages[l][j] != want {
					t.Errorf("chain %d box %d moved", c.ID, j)
				}
			}
		}
	}
}

func TestUpdaterAdjust(t *testing.T) {
	in := &model.Instance{
		Switch:   model.SwitchConfig{Stages: 2, BlocksPerStage: 4, EntriesPerBlock: 500, CapacityGbps: 100},
		NumTypes: 2,
		Recirc:   1,
		Chains: []*model.Chain{
			{ID: 1, BandwidthGbps: 10, NFs: []model.ChainNF{{Type: 1, Rules: 100}}},
		},
	}
	build := model.BuildOptions{Consolidate: true}
	initial, err := SolveIP(in, IPOptions{Build: build})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(in, initial.Assignment, build)
	if err != nil {
		t.Fatal(err)
	}
	// Tenant 1 changes its chain: departure + arrival semantics.
	repl := &model.Chain{ID: 2, BandwidthGbps: 10, NFs: []model.ChainNF{{Type: 1, Rules: 100}, {Type: 2, Rules: 100}}}
	if err := u.Adjust(1, repl); err != nil {
		t.Fatal(err)
	}
	if len(u.Live()) != 0 || u.Waiting() != 1 {
		t.Fatalf("live=%v waiting=%d after adjust", u.Live(), u.Waiting())
	}
	m, err := u.Replan(ReplanOptions{TimeLimit: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if m.Deployed != 1 || math.Abs(m.Objective-20) > 1e-9 {
		t.Errorf("post-adjust metrics: %+v", m)
	}
}

func TestMaybeReconfigure(t *testing.T) {
	// Start from a deliberately bad state: nothing placed although
	// everything fits. The threshold triggers a full reconfiguration.
	in := &model.Instance{
		Switch:   model.SwitchConfig{Stages: 2, BlocksPerStage: 4, EntriesPerBlock: 500, CapacityGbps: 100},
		NumTypes: 2,
		Recirc:   0,
		Chains: []*model.Chain{
			{ID: 1, BandwidthGbps: 10, NFs: []model.ChainNF{{Type: 1, Rules: 100}}},
			{ID: 2, BandwidthGbps: 20, NFs: []model.ChainNF{{Type: 2, Rules: 100}}},
		},
	}
	build := model.BuildOptions{Consolidate: true}
	empty := model.NewAssignment(in)
	for i := range empty.X {
		empty.X[i][0] = true
	}
	u, err := NewUpdater(in, empty, build)
	if err != nil {
		t.Fatal(err)
	}
	did, m, err := u.MaybeReconfigure(0.9, ReplanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !did {
		t.Fatal("reconfiguration not triggered from empty state")
	}
	if m.Deployed != 2 {
		t.Errorf("deployed = %d, want 2", m.Deployed)
	}
	// A second call finds the state already optimal.
	did2, _, err := u.MaybeReconfigure(0.9, ReplanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if did2 {
		t.Error("reconfigured an already-optimal state")
	}
}

func TestGreedyPinnedAndReplanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := smallInstance(rng, 6)
	build := model.BuildOptions{Consolidate: true}
	initial, err := SolveGreedy(in, GreedyOptions{Consolidate: true})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(in, initial.Assignment, build)
	if err != nil {
		t.Fatal(err)
	}
	live := u.Live()
	if len(live) == 0 {
		t.Fatal("nothing live")
	}
	if err := u.Depart(live[0]); err != nil {
		t.Fatal(err)
	}
	_, _, before := u.Current()
	m, err := u.ReplanGreedy()
	if err != nil {
		t.Fatal(err)
	}
	if m.Objective < before.Objective-1e-9 {
		t.Errorf("greedy replan decreased objective: %v -> %v", before.Objective, m.Objective)
	}
	// Survivors stayed put.
	inNow, aNow, _ := u.Current()
	for l, c := range inNow.Chains {
		if st, ok := u.live[c.ID]; ok {
			for j := range st {
				if aNow.Stages[l][j] != st[j] {
					t.Errorf("chain %d moved during greedy replan", c.ID)
				}
			}
		}
	}
}

func TestGreedyPinnedRespectsResources(t *testing.T) {
	// Pin a chain consuming most of the capacity; greedy must not overfill.
	in := &model.Instance{
		Switch:   model.SwitchConfig{Stages: 2, BlocksPerStage: 4, EntriesPerBlock: 500, CapacityGbps: 25},
		NumTypes: 2,
		Recirc:   0,
		Chains: []*model.Chain{
			{ID: 1, BandwidthGbps: 20, NFs: []model.ChainNF{{Type: 1, Rules: 100}}},
			{ID: 2, BandwidthGbps: 20, NFs: []model.ChainNF{{Type: 2, Rules: 100}}},
		},
	}
	pinned := model.NewAssignment(in)
	pinned.X[0][0], pinned.X[1][1] = true, true
	pinned.Stages[0] = []int{0}
	res, err := SolveGreedy(in, GreedyOptions{Consolidate: true, Pinned: pinned})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Deployed(0) {
		t.Error("pinned chain lost")
	}
	if res.Assignment.Deployed(1) {
		t.Error("capacity exceeded by greedy atop pinned load")
	}
	if res.Assignment.Stages[0][0] != 0 {
		t.Error("pinned chain moved")
	}
}
