package placement

import (
	"math/rand"
	"testing"

	"sfp/internal/model"
	"sfp/internal/traffic"
)

// Solver benchmarks at the Fig-8 experiment scale (§VI-C): these are the
// workloads BENCH_solver.json tracks across the control-plane fast path.
// Run via scripts/check.sh bench.

func fig8Instance(seed int64, L int) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	return &model.Instance{
		Switch:   model.DefaultSwitchConfig(),
		NumTypes: 10,
		Recirc:   2,
		Chains:   traffic.GenChains(rng, L, traffic.ChainParams{MeanLen: 5}),
	}
}

// BenchmarkSolveIP measures branch and bound on a Fig-8-scale instance with
// a fixed node budget, so the metric is per-node solver cost rather than
// search-order luck.
func BenchmarkSolveIP(b *testing.B) {
	in := fig8Instance(860, 6)
	for i := 0; i < b.N; i++ {
		res, err := SolveIP(in, IPOptions{
			Build:    model.BuildOptions{Consolidate: true},
			MaxNodes: 60,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Assignment == nil {
			b.Fatal("no assignment")
		}
	}
}

// BenchmarkSolveApprox measures Algorithm 1 (LP relaxation + randomized
// rounding, full recirculation sweep) at the Fig-8 approximation scale.
func BenchmarkSolveApprox(b *testing.B) {
	in := fig8Instance(1100, 30)
	for i := 0; i < b.N; i++ {
		res, err := SolveApprox(in, ApproxOptions{
			Build: model.BuildOptions{Consolidate: true},
			Seed:  7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Assignment == nil {
			b.Fatal("no assignment")
		}
	}
}
