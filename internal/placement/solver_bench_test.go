package placement

import (
	"math/rand"
	"testing"

	"sfp/internal/model"
	"sfp/internal/traffic"
)

// Solver benchmarks at the Fig-8 experiment scale (§VI-C): these are the
// workloads BENCH_solver.json tracks across the control-plane fast path.
// Run via scripts/check.sh bench.

func fig8Instance(seed int64, L int) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	return &model.Instance{
		Switch:   model.DefaultSwitchConfig(),
		NumTypes: 10,
		Recirc:   2,
		Chains:   traffic.GenChains(rng, L, traffic.ChainParams{MeanLen: 5}),
	}
}

// BenchmarkSolveIP measures branch and bound on a Fig-8-scale instance with
// a fixed node budget, so the metric is per-node solver cost rather than
// search-order luck.
func BenchmarkSolveIP(b *testing.B) {
	in := fig8Instance(860, 6)
	for i := 0; i < b.N; i++ {
		res, err := SolveIP(in, IPOptions{
			Build:    model.BuildOptions{Consolidate: true},
			MaxNodes: 60,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Assignment == nil {
			b.Fatal("no assignment")
		}
	}
}

// replanFleet builds an Updater with n live tenants pinned across an
// 8-stage switch sized so memory and backplane never bind — the replan cost
// being measured is solver/encode work, not admission pressure. Chains use
// rotating types and staggered stage windows so pinned load spreads over
// every (type, stage) cell.
func replanFleet(n int) *Updater {
	sw := model.SwitchConfig{Stages: 8, BlocksPerStage: 4096, EntriesPerBlock: 1000, CapacityGbps: 1e6}
	u := &Updater{
		sw:       sw,
		numTypes: 4,
		recirc:   0,
		build:    model.BuildOptions{Consolidate: true},
		chains:   make(map[int]*model.Chain, n),
		live:     make(map[int][]int, n),
		waiting:  make(map[int]bool),
		layout:   make([][]bool, 4),
	}
	for i := range u.layout {
		u.layout[i] = make([]bool, sw.Stages)
		for s := range u.layout[i] {
			u.layout[i][s] = true
		}
	}
	for id := 1; id <= n; id++ {
		c := fleetChain(id)
		base := id % 6
		u.chains[id] = c
		u.live[id] = []int{base, base + 1, base + 2}
		u.ids = append(u.ids, id)
	}
	return u
}

func fleetChain(id int) *model.Chain {
	return &model.Chain{ID: id, BandwidthGbps: 0.01, NFs: []model.ChainNF{
		{Type: 1 + id%4, Rules: 40},
		{Type: 1 + (id+1)%4, Rules: 40},
		{Type: 1 + (id+2)%4, Rules: 40},
	}}
}

// benchReplan measures one arrive → replan → depart cycle at n live
// tenants. The delta path retains the residual program across iterations
// (the warmup replan builds it); the full path re-encodes every tenant per
// replan — the cost the fast path exists to eliminate.
func benchReplan(b *testing.B, n int, full bool) {
	u := replanFleet(n)
	if _, err := u.Replan(ReplanOptions{FullRebuild: full}); err != nil {
		b.Fatal(err)
	}
	nextID := n + 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := nextID
		nextID++
		if err := u.Arrive(fleetChain(id)); err != nil {
			b.Fatal(err)
		}
		if _, err := u.Replan(ReplanOptions{FullRebuild: full}); err != nil {
			b.Fatal(err)
		}
		if u.LastReplan().Admitted != 1 {
			b.Fatalf("arrival %d not admitted: %+v", id, u.LastReplan())
		}
		if err := u.Depart(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplanDelta* are the BENCH_replan.json workloads: incremental
// replans whose cost must scale with the waiting set, not the live-tenant
// count (the 10k/1k ratio is gated at 10x in scripts/check.sh).
func BenchmarkReplanDelta1k(b *testing.B)  { benchReplan(b, 1000, false) }
func BenchmarkReplanDelta4k(b *testing.B)  { benchReplan(b, 4000, false) }
func BenchmarkReplanDelta10k(b *testing.B) { benchReplan(b, 10000, false) }

// BenchmarkReplanFull* run the same cycles through the full-rebuild
// reference path, for the delta-vs-full speedup gate. No 10k variant: the
// full path at that scale is exactly the cost this PR removes.
func BenchmarkReplanFull1k(b *testing.B) { benchReplan(b, 1000, true) }
func BenchmarkReplanFull4k(b *testing.B) { benchReplan(b, 4000, true) }

// BenchmarkSolveApprox measures Algorithm 1 (LP relaxation + randomized
// rounding, full recirculation sweep) at the Fig-8 approximation scale.
func BenchmarkSolveApprox(b *testing.B) {
	in := fig8Instance(1100, 30)
	for i := 0; i < b.N; i++ {
		res, err := SolveApprox(in, ApproxOptions{
			Build: model.BuildOptions{Consolidate: true},
			Seed:  7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Assignment == nil {
			b.Fatal("no assignment")
		}
	}
}
