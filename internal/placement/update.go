package placement

import (
	"fmt"
	"time"

	"sfp/internal/ilp"
	"sfp/internal/model"
)

// Updater implements runtime update (§V-E). It tracks which chains are
// live (placed), which are waiting candidates, and which departed; Replan
// places waiting candidates into the resources departures released while
// keeping survivors pinned to their current stages and the physical layout
// fixed, and MaybeReconfigure compares the incremental result against a
// full re-optimization to decide whether a (disruptive) reconfiguration is
// worthwhile.
type Updater struct {
	sw       model.SwitchConfig
	numTypes int
	recirc   int
	build    model.BuildOptions

	chains map[int]*model.Chain
	// live maps chain ID to its virtual stages.
	live map[int][]int
	// waiting holds candidate IDs not yet placed.
	waiting map[int]bool
	// layout is the current physical-NF placement.
	layout [][]bool
}

// NewUpdater starts runtime management from an initial placement produced
// by any of the solvers over the given instance.
func NewUpdater(in *model.Instance, a *model.Assignment, build model.BuildOptions) (*Updater, error) {
	if err := model.Verify(in, a, build.Consolidate); err != nil {
		return nil, fmt.Errorf("placement: initial assignment invalid: %w", err)
	}
	u := &Updater{
		sw:       in.Switch,
		numTypes: in.NumTypes,
		recirc:   in.Recirc,
		build:    build,
		chains:   make(map[int]*model.Chain),
		live:     make(map[int][]int),
		waiting:  make(map[int]bool),
		layout:   make([][]bool, in.NumTypes),
	}
	for i := range u.layout {
		u.layout[i] = append([]bool(nil), a.X[i]...)
	}
	for l, c := range in.Chains {
		u.chains[c.ID] = c
		if a.Deployed(l) {
			u.live[c.ID] = append([]int(nil), a.Stages[l]...)
		} else {
			u.waiting[c.ID] = true
		}
	}
	return u, nil
}

// Live returns the IDs of currently placed chains.
func (u *Updater) Live() []int {
	ids := make([]int, 0, len(u.live))
	for id := range u.live {
		ids = append(ids, id)
	}
	return ids
}

// Waiting returns the number of unplaced candidates.
func (u *Updater) Waiting() int { return len(u.waiting) }

// Depart removes a tenant: its rules disappear from the data plane and its
// resources become available to future Replan calls.
func (u *Updater) Depart(id int) error {
	if _, ok := u.live[id]; !ok {
		return fmt.Errorf("placement: chain %d is not live", id)
	}
	delete(u.live, id)
	delete(u.chains, id)
	return nil
}

// Arrive registers a new candidate chain. Its ID must be fresh.
func (u *Updater) Arrive(c *model.Chain) error {
	if _, ok := u.chains[c.ID]; ok {
		return fmt.Errorf("placement: chain ID %d already known", c.ID)
	}
	u.chains[c.ID] = c
	u.waiting[c.ID] = true
	return nil
}

// Withdraw erases a chain whether live or waiting, as if it never
// arrived. It is the rollback path for an arrival whose data-plane
// install failed after the replan already admitted it.
func (u *Updater) Withdraw(id int) {
	delete(u.live, id)
	delete(u.waiting, id)
	delete(u.chains, id)
}

// Adjust replaces a live tenant's chain definition; per §V-E this is
// treated as a departure followed by an arrival (the new chain waits for
// the next Replan).
func (u *Updater) Adjust(id int, replacement *model.Chain) error {
	if err := u.Depart(id); err != nil {
		return err
	}
	return u.Arrive(replacement)
}

// snapshot builds the current instance (live + waiting chains, stable
// order) and the assignment of the live ones.
func (u *Updater) snapshot() (*model.Instance, *model.Assignment, []int) {
	in := &model.Instance{Switch: u.sw, NumTypes: u.numTypes, Recirc: u.recirc}
	var ids []int
	for id := range u.chains {
		ids = append(ids, id)
	}
	// Deterministic order: ascending IDs.
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		in.Chains = append(in.Chains, u.chains[id])
	}
	a := model.NewAssignment(in)
	for i := range u.layout {
		copy(a.X[i], u.layout[i])
	}
	for l, c := range in.Chains {
		if st, ok := u.live[c.ID]; ok {
			copy(a.Stages[l], st)
		}
	}
	return in, a, ids
}

// Current returns the live instance, assignment and metrics.
func (u *Updater) Current() (*model.Instance, *model.Assignment, model.Metrics) {
	in, a, _ := u.snapshot()
	return in, a, model.ComputeMetrics(in, a, u.build.Consolidate)
}

// ReplanOptions tunes an incremental replan.
type ReplanOptions struct {
	// TimeLimit bounds the embedded IP solve (0 = none).
	TimeLimit time.Duration
	// MaxNodes bounds the search (0 = solver default).
	MaxNodes int
}

// Replan places waiting candidates into the released resources: survivors
// stay pinned to their stages, the physical layout stays fixed, and the IP
// optimizes only over the incremental chains. Newly placed chains become
// live. It returns the post-update metrics.
func (u *Updater) Replan(opts ReplanOptions) (model.Metrics, error) {
	in, cur, ids := u.snapshot()
	build := u.build
	// Same adaptive consistency policy as SolveIP: tight rows while the
	// LP stays interruptible-sized, aggregated beyond.
	zCount := 0
	for _, c := range in.Chains {
		zCount += c.Len() * in.K()
	}
	build.ExactConsistency = zCount <= exactConsistencyLimit
	enc, err := model.Build(in, build)
	if err != nil {
		return model.Metrics{}, err
	}
	enc.PinPhysical(u.layout)
	for l, c := range in.Chains {
		if st, ok := u.live[c.ID]; ok {
			if err := enc.PinChain(l, st); err != nil {
				return model.Metrics{}, err
			}
		}
	}
	res, err := ilp.Solve(&ilp.Problem{LP: enc.Prob, IntVars: enc.IntVars}, ilp.Options{
		TimeLimit:    opts.TimeLimit,
		MaxNodes:     opts.MaxNodes,
		PriorityVars: enc.XVars(),
		CeilVars:     enc.AuxVars(),
	})
	if err != nil {
		return model.Metrics{}, err
	}
	if res.Status != ilp.Optimal && res.Status != ilp.Feasible {
		// Nothing placeable: keep the current state.
		return model.ComputeMetrics(in, cur, u.build.Consolidate), nil
	}
	a := enc.Decode(res.X)
	if err := model.Verify(in, a, u.build.Consolidate); err != nil {
		return model.Metrics{}, fmt.Errorf("placement: replan verification: %w", err)
	}
	for l, id := range ids {
		if a.Deployed(l) {
			u.live[id] = append([]int(nil), a.Stages[l]...)
			delete(u.waiting, id)
		}
	}
	// Newly used physical NFs extend the layout.
	for i := range a.X {
		for s := range a.X[i] {
			u.layout[i][s] = u.layout[i][s] || a.X[i][s]
		}
	}
	return model.ComputeMetrics(in, a, u.build.Consolidate), nil
}

// ReplanGreedy places waiting candidates with the Algorithm-2 heuristic
// over the residual resources, keeping survivors pinned. It is the prompt
// (no-IP) variant of Replan, used when update latency matters more than
// optimality (§V-D's trade-off).
func (u *Updater) ReplanGreedy() (model.Metrics, error) {
	in, cur, ids := u.snapshot()
	res, err := SolveGreedy(in, GreedyOptions{Consolidate: u.build.Consolidate, Pinned: cur})
	if err != nil {
		return model.Metrics{}, err
	}
	if err := model.Verify(in, res.Assignment, u.build.Consolidate); err != nil {
		return model.Metrics{}, fmt.Errorf("placement: greedy replan verification: %w", err)
	}
	for l, id := range ids {
		if res.Assignment.Deployed(l) {
			u.live[id] = append([]int(nil), res.Assignment.Stages[l]...)
			delete(u.waiting, id)
		}
	}
	for i := range res.Assignment.X {
		for s := range res.Assignment.X[i] {
			u.layout[i][s] = u.layout[i][s] || res.Assignment.X[i][s]
		}
	}
	return res.Metrics, nil
}

// MaybeReconfigure solves the unrestricted placement from scratch; if the
// current objective falls below threshold × the global optimum, the global
// solution is adopted (modeling the §V-E full reconfiguration, which in a
// real deployment rewrites extensive rules or reboots the switch). It
// returns whether reconfiguration happened and the resulting metrics.
func (u *Updater) MaybeReconfigure(threshold float64, opts ReplanOptions) (bool, model.Metrics, error) {
	in, cur, ids := u.snapshot()
	curM := model.ComputeMetrics(in, cur, u.build.Consolidate)
	full, err := SolveIP(in, IPOptions{Build: u.build, TimeLimit: opts.TimeLimit, MaxNodes: opts.MaxNodes})
	if err != nil {
		return false, curM, err
	}
	if full.Assignment == nil || curM.Objective >= threshold*full.Objective {
		return false, curM, nil
	}
	// Adopt the global solution wholesale.
	u.live = make(map[int][]int)
	u.waiting = make(map[int]bool)
	for l, id := range ids {
		if full.Assignment.Deployed(l) {
			u.live[id] = append([]int(nil), full.Assignment.Stages[l]...)
		} else {
			u.waiting[id] = true
		}
	}
	for i := range full.Assignment.X {
		copy(u.layout[i], full.Assignment.X[i])
	}
	return true, full.Metrics, nil
}
