package placement

import (
	"fmt"
	"sort"
	"time"

	"sfp/internal/ilp"
	"sfp/internal/lp"
	"sfp/internal/model"
)

// Updater implements runtime update (§V-E). It tracks which chains are
// live (placed), which are waiting candidates, and which departed; Replan
// places waiting candidates into the resources departures released while
// keeping survivors pinned to their current stages and the physical layout
// fixed, and MaybeReconfigure compares the incremental result against a
// full re-optimization to decide whether a (disruptive) reconfiguration is
// worthwhile.
//
// Replan runs on an incremental fast path by default: a pinned-tenant-
// eliminated residual program (model.Residual) is retained across replans
// and patched per arrival/departure, and successive solves re-enter from
// the previous root basis (lp dual simplex). Its cost scales with the
// waiting set, not the live-tenant count. ReplanOptions.FullRebuild forces
// the original full-model reference path, which the equivalence tests use
// as the oracle.
type Updater struct {
	sw       model.SwitchConfig
	numTypes int
	recirc   int
	build    model.BuildOptions

	chains map[int]*model.Chain
	// live maps chain ID to its virtual stages.
	live map[int][]int
	// waiting holds candidate IDs not yet placed.
	waiting map[int]bool
	// layout is the current physical-NF placement.
	layout [][]bool
	// ids is every known chain ID in ascending order, maintained
	// incrementally on Arrive/Depart/Withdraw (snapshot at 10k tenants must
	// not sort from scratch per replan).
	ids []int

	// fast is the retained incremental-replan state; nil until the first
	// fast Replan, and invalidated whenever the live set or layout changes
	// through a path that does not patch it (greedy replans, adopted
	// reconfigurations, full replans).
	fast *fastState
	// fullBasis is the root LP basis of the last full-model solve
	// (FullRebuild replans and MaybeReconfigure share the model shape while
	// the chain set is unchanged; shape mismatches fall back cold).
	fullBasis *lp.Basis
	stats     ReplanStats
}

// fastState is the retained residual program plus its warm-start basis.
type fastState struct {
	resid *model.Residual
	basis *lp.Basis
}

// ReplanStats reports how the most recent Replan executed — the
// observability hook for core and the experiments.
type ReplanStats struct {
	// FullRebuild is true when the reference full-model path ran.
	FullRebuild bool
	// Rebuilt is true when the residual program was (re)built this call
	// rather than patched.
	Rebuilt bool
	// WarmStarted is true when the root LP re-entered from a prior basis.
	WarmStarted bool
	// InModel counts chain blocks carried in the solved program.
	InModel int
	// Admitted counts chains this replan placed.
	Admitted int
	// Nodes is the branch-and-bound node count (0 when the solve was
	// skipped because nothing was waiting).
	Nodes int
	// Decomposed is true when a MaybeReconfigure full re-optimization ran
	// the Lagrangian decomposition instead of the exact IP.
	Decomposed bool
	// Gap is the certified relative optimality gap of the most recent
	// MaybeReconfigure full solve: 0 for proven-optimal exact solves,
	// (dual bound − objective)/objective for decomposed ones.
	Gap float64
	// Elapsed is the replan's wall-clock time.
	Elapsed time.Duration
}

// NewUpdater starts runtime management from an initial placement produced
// by any of the solvers over the given instance.
func NewUpdater(in *model.Instance, a *model.Assignment, build model.BuildOptions) (*Updater, error) {
	if err := model.Verify(in, a, build.Consolidate); err != nil {
		return nil, fmt.Errorf("placement: initial assignment invalid: %w", err)
	}
	u := &Updater{
		sw:       in.Switch,
		numTypes: in.NumTypes,
		recirc:   in.Recirc,
		build:    build,
		chains:   make(map[int]*model.Chain),
		live:     make(map[int][]int),
		waiting:  make(map[int]bool),
		layout:   make([][]bool, in.NumTypes),
	}
	for i := range u.layout {
		u.layout[i] = append([]bool(nil), a.X[i]...)
	}
	for l, c := range in.Chains {
		u.chains[c.ID] = c
		u.ids = append(u.ids, c.ID)
		if a.Deployed(l) {
			u.live[c.ID] = append([]int(nil), a.Stages[l]...)
		} else {
			u.waiting[c.ID] = true
		}
	}
	sort.Ints(u.ids)
	return u, nil
}

func (u *Updater) addID(id int) {
	i := sort.SearchInts(u.ids, id)
	u.ids = append(u.ids, 0)
	copy(u.ids[i+1:], u.ids[i:])
	u.ids[i] = id
}

func (u *Updater) dropID(id int) {
	i := sort.SearchInts(u.ids, id)
	if i < len(u.ids) && u.ids[i] == id {
		u.ids = append(u.ids[:i], u.ids[i+1:]...)
	}
}

// Live returns the IDs of currently placed chains.
func (u *Updater) Live() []int {
	ids := make([]int, 0, len(u.live))
	for id := range u.live {
		ids = append(ids, id)
	}
	return ids
}

// Waiting returns the number of unplaced candidates.
func (u *Updater) Waiting() int { return len(u.waiting) }

// LastReplan reports how the most recent Replan/MaybeReconfigure executed.
func (u *Updater) LastReplan() ReplanStats { return u.stats }

// Depart removes a tenant: its rules disappear from the data plane and its
// resources become available to future Replan calls.
func (u *Updater) Depart(id int) error {
	st, ok := u.live[id]
	if !ok {
		return fmt.Errorf("placement: chain %d is not live", id)
	}
	c := u.chains[id]
	delete(u.live, id)
	delete(u.chains, id)
	u.dropID(id)
	if u.fast != nil {
		// Patch the retained program: an in-model (admitted-this-program)
		// chain's block is zeroed; a folded survivor's consumption returns
		// to the RHS. The basis keeps its shape, so the next solve still
		// warm-starts.
		var err error
		if u.fast.resid.Has(id) {
			err = u.fast.resid.Kill(id)
		} else {
			err = u.fast.resid.ReleaseFolded(c, st)
		}
		if err != nil {
			u.fast = nil // desync: rebuild lazily on the next replan
		}
	}
	return nil
}

// Arrive registers a new candidate chain. Its ID must be fresh.
func (u *Updater) Arrive(c *model.Chain) error {
	if _, ok := u.chains[c.ID]; ok {
		return fmt.Errorf("placement: chain ID %d already known", c.ID)
	}
	u.chains[c.ID] = c
	u.waiting[c.ID] = true
	u.addID(c.ID)
	if u.fast != nil {
		dv, dr, err := u.fast.resid.Append(c)
		if err != nil {
			u.fast = nil
		} else if u.fast.basis != nil {
			// Grow the retained basis alongside the program: the appended
			// block enters at its trivial corner and the next dual-simplex
			// re-entry starts from the previous optimum.
			u.fast.basis = u.fast.basis.Extend(dv, dr)
		}
	}
	return nil
}

// Withdraw erases a chain whether live or waiting, as if it never
// arrived. It is the rollback path for an arrival whose data-plane
// install failed after the replan already admitted it.
func (u *Updater) Withdraw(id int) {
	c, known := u.chains[id]
	st, wasLive := u.live[id]
	delete(u.live, id)
	delete(u.waiting, id)
	delete(u.chains, id)
	if !known {
		return
	}
	u.dropID(id)
	if u.fast != nil {
		var err error
		if u.fast.resid.Has(id) {
			err = u.fast.resid.Kill(id)
		} else if wasLive {
			err = u.fast.resid.ReleaseFolded(c, st)
		}
		if err != nil {
			u.fast = nil
		}
	}
}

// Adjust replaces a live tenant's chain definition; per §V-E this is
// treated as a departure followed by an arrival (the new chain waits for
// the next Replan).
func (u *Updater) Adjust(id int, replacement *model.Chain) error {
	if err := u.Depart(id); err != nil {
		return err
	}
	return u.Arrive(replacement)
}

// snapshot builds the current instance (live + waiting chains, stable
// ascending-ID order) and the assignment of the live ones.
func (u *Updater) snapshot() (*model.Instance, *model.Assignment, []int) {
	in := &model.Instance{Switch: u.sw, NumTypes: u.numTypes, Recirc: u.recirc}
	in.Chains = make([]*model.Chain, 0, len(u.ids))
	for _, id := range u.ids {
		in.Chains = append(in.Chains, u.chains[id])
	}
	a := model.NewAssignment(in)
	for i := range u.layout {
		copy(a.X[i], u.layout[i])
	}
	for l, c := range in.Chains {
		if st, ok := u.live[c.ID]; ok {
			copy(a.Stages[l], st)
		}
	}
	return in, a, u.ids
}

// Current returns the live instance, assignment and metrics.
func (u *Updater) Current() (*model.Instance, *model.Assignment, model.Metrics) {
	in, a, _ := u.snapshot()
	return in, a, model.ComputeMetrics(in, a, u.build.Consolidate)
}

// ReplanOptions tunes an incremental replan.
type ReplanOptions struct {
	// TimeLimit bounds the embedded IP solve (0 = none).
	TimeLimit time.Duration
	// MaxNodes bounds the search (0 = solver default).
	MaxNodes int
	// FullRebuild forces the reference path: model.Build over every tenant
	// plus PinPhysical/PinChain, re-encoded from scratch. Equivalent to the
	// default incremental path (the equivalence suite proves it) but costs
	// Ω(total tenants) per replan.
	FullRebuild bool
	// WarmBasis, when set, overrides the internally retained basis for this
	// solve's root LP (lp.Options.WarmBasis semantics: a shape-mismatched
	// basis is ignored and the root solves cold, deterministically).
	WarmBasis *lp.Basis
	// SolverWorkers sets the worker count for the embedded solves:
	// branch-and-bound workers on the IP paths, pricing workers on
	// MaybeReconfigure's decomposed path. 0 or 1 is the serial
	// deterministic reference; results are identical at any count.
	SolverWorkers int
	// DecomposeAbove routes MaybeReconfigure's full re-optimization to the
	// Lagrangian decomposition (SolveDecomposed) once the total chain count
	// reaches it: the exact IP below, feasibility + certified gap above.
	// 0 means DefaultDecomposeAbove; negative always solves exactly.
	DecomposeAbove int
}

// Replan places waiting candidates into the released resources: survivors
// stay pinned to their stages, the physical layout stays fixed, and the IP
// optimizes only over the incremental chains. Newly placed chains become
// live. It returns the post-update metrics.
func (u *Updater) Replan(opts ReplanOptions) (model.Metrics, error) {
	start := time.Now()
	if opts.FullRebuild {
		return u.replanFull(opts, start)
	}
	m, err := u.replanFast(opts, start)
	if err != nil {
		// The fast path never guesses: any residual build, decode, or
		// verification trouble discards the retained state and falls back
		// to the reference path.
		u.fast = nil
		return u.replanFull(opts, start)
	}
	return m, nil
}

// compactionSlack bounds how much dead/pinned ballast the retained residual
// program may accumulate before it is rebuilt from the current state.
const compactionSlack = 32

// replanFast is the incremental path: retain the residual program, patch it
// (done eagerly in Arrive/Depart/Withdraw), solve warm, verify, admit.
func (u *Updater) replanFast(opts ReplanOptions, start time.Time) (model.Metrics, error) {
	stats := ReplanStats{}
	if u.fast != nil {
		// Compaction: pinned and dead blocks keep their (fixed) variables
		// in the program. Presolve folds them per node LP, but the folding
		// itself costs time proportional to the program size — rebuild once
		// the ballast outweighs the waiting set.
		w, pn, d := u.fast.resid.Loads()
		if pn+d > compactionSlack && pn+d > 2*w {
			u.fast = nil
		}
	}
	if u.fast == nil {
		in, _, _ := u.snapshot()
		resid, err := model.BuildResidual(in, u.live, u.layout, u.build)
		if err != nil {
			return model.Metrics{}, err
		}
		u.fast = &fastState{resid: resid}
		stats.Rebuilt = true
	}
	f := u.fast
	w, pn, d := f.resid.Loads()
	stats.InModel = w + pn + d
	if w == 0 {
		// Empty waiting set: nothing to place, the current state is the
		// residual optimum. Skip the solve entirely.
		in, cur, _ := u.snapshot()
		stats.Elapsed = time.Since(start)
		u.stats = stats
		return model.ComputeMetrics(in, cur, u.build.Consolidate), nil
	}
	wb := opts.WarmBasis
	if wb == nil {
		wb = f.basis
	}
	res, err := ilp.Solve(&ilp.Problem{LP: f.resid.Prob, IntVars: f.resid.IntVars()}, ilp.Options{
		TimeLimit: opts.TimeLimit,
		MaxNodes:  opts.MaxNodes,
		CeilVars:  f.resid.AuxVars(),
		WarmBasis: wb,
		Workers:   opts.SolverWorkers,
	})
	if err != nil {
		return model.Metrics{}, err
	}
	f.basis = res.RootBasis
	stats.WarmStarted = res.RootWarmed
	stats.Nodes = res.Nodes

	in, a, ids := u.snapshot()
	if res.Status != ilp.Optimal && res.Status != ilp.Feasible {
		// Nothing placeable: keep the current state.
		stats.Elapsed = time.Since(start)
		u.stats = stats
		return model.ComputeMetrics(in, a, u.build.Consolidate), nil
	}
	placed := f.resid.DecodeStages(res.X)
	for l, id := range ids {
		if !u.waiting[id] {
			continue
		}
		if st, ok := placed[id]; ok {
			copy(a.Stages[l], st)
		}
	}
	if err := model.Verify(in, a, u.build.Consolidate); err != nil {
		return model.Metrics{}, fmt.Errorf("placement: fast replan verification: %w", err)
	}
	for l, id := range ids {
		if u.waiting[id] && a.Deployed(l) {
			st := append([]int(nil), a.Stages[l]...)
			u.live[id] = st
			delete(u.waiting, id)
			if err := f.resid.PinTo(id, st); err != nil {
				u.fast = nil // desync: rebuild lazily next replan
			}
			stats.Admitted++
		}
	}
	stats.Elapsed = time.Since(start)
	u.stats = stats
	return model.ComputeMetrics(in, a, u.build.Consolidate), nil
}

// replanFull is the reference path: re-encode the entire instance and pin
// every survivor, exactly the pre-fast-path behavior. Retained as the
// equivalence oracle and as the fallback when the incremental state cannot
// be trusted.
func (u *Updater) replanFull(opts ReplanOptions, start time.Time) (model.Metrics, error) {
	stats := ReplanStats{FullRebuild: true, Rebuilt: true}
	in, cur, ids := u.snapshot()
	build := u.build
	// Same adaptive consistency policy as SolveIP: tight rows while the
	// LP stays interruptible-sized, aggregated beyond.
	zCount := 0
	for _, c := range in.Chains {
		zCount += c.Len() * in.K()
	}
	build.ExactConsistency = zCount <= exactConsistencyLimit
	enc, err := model.Build(in, build)
	if err != nil {
		return model.Metrics{}, err
	}
	enc.PinPhysical(u.layout)
	for l, c := range in.Chains {
		if st, ok := u.live[c.ID]; ok {
			if err := enc.PinChain(l, st); err != nil {
				return model.Metrics{}, err
			}
		}
	}
	stats.InModel = len(in.Chains)
	wb := opts.WarmBasis
	if wb == nil {
		wb = u.fullBasis
	}
	res, err := ilp.Solve(&ilp.Problem{LP: enc.Prob, IntVars: enc.IntVars}, ilp.Options{
		TimeLimit:    opts.TimeLimit,
		MaxNodes:     opts.MaxNodes,
		PriorityVars: enc.XVars(),
		CeilVars:     enc.AuxVars(),
		WarmBasis:    wb,
		Workers:      opts.SolverWorkers,
	})
	if err != nil {
		return model.Metrics{}, err
	}
	u.fullBasis = res.RootBasis
	stats.WarmStarted = res.RootWarmed
	stats.Nodes = res.Nodes
	finish := func(m model.Metrics) (model.Metrics, error) {
		stats.Elapsed = time.Since(start)
		u.stats = stats
		return m, nil
	}
	if res.Status != ilp.Optimal && res.Status != ilp.Feasible {
		// Nothing placeable: keep the current state.
		return finish(model.ComputeMetrics(in, cur, u.build.Consolidate))
	}
	a := enc.Decode(res.X)
	if err := model.Verify(in, a, u.build.Consolidate); err != nil {
		return model.Metrics{}, fmt.Errorf("placement: replan verification: %w", err)
	}
	for l, id := range ids {
		if a.Deployed(l) && u.waiting[id] {
			u.live[id] = append([]int(nil), a.Stages[l]...)
			delete(u.waiting, id)
			stats.Admitted++
		}
	}
	// Newly used physical NFs extend the layout.
	for i := range a.X {
		for s := range a.X[i] {
			u.layout[i][s] = u.layout[i][s] || a.X[i][s]
		}
	}
	// The full path changed the live set outside the retained program;
	// rebuild it lazily rather than tracking a second delta protocol.
	if stats.Admitted > 0 {
		u.fast = nil
	}
	return finish(model.ComputeMetrics(in, a, u.build.Consolidate))
}

// ReplanGreedy places waiting candidates with the Algorithm-2 heuristic
// over the residual resources, keeping survivors pinned. It is the prompt
// (no-IP) variant of Replan, used when update latency matters more than
// optimality (§V-D's trade-off).
func (u *Updater) ReplanGreedy() (model.Metrics, error) {
	in, cur, ids := u.snapshot()
	res, err := SolveGreedy(in, GreedyOptions{Consolidate: u.build.Consolidate, Pinned: cur})
	if err != nil {
		return model.Metrics{}, err
	}
	if err := model.Verify(in, res.Assignment, u.build.Consolidate); err != nil {
		return model.Metrics{}, fmt.Errorf("placement: greedy replan verification: %w", err)
	}
	admitted := 0
	for l, id := range ids {
		if res.Assignment.Deployed(l) && u.waiting[id] {
			u.live[id] = append([]int(nil), res.Assignment.Stages[l]...)
			delete(u.waiting, id)
			admitted++
		}
	}
	for i := range res.Assignment.X {
		for s := range res.Assignment.X[i] {
			u.layout[i][s] = u.layout[i][s] || res.Assignment.X[i][s]
		}
	}
	// Greedy admissions may extend the layout and move chains live outside
	// the retained residual program; invalidate it.
	if admitted > 0 {
		u.fast = nil
	}
	return res.Metrics, nil
}

// MaybeReconfigure solves the unrestricted placement from scratch; if the
// current objective falls below threshold × the global optimum, the global
// solution is adopted (modeling the §V-E full reconfiguration, which in a
// real deployment rewrites extensive rules or reboots the switch). It
// returns whether reconfiguration happened and the resulting metrics.
//
// Below the DecomposeAbove threshold the re-optimization is the exact IP;
// successive calls over an unchanged chain set share the full model's
// shape, so the solve warm-starts from the previous root basis (or from
// opts.WarmBasis), and a changed chain set changes the shape and the root
// deterministically solves cold. At or above the threshold the Lagrangian
// decomposition (SolveDecomposed) runs instead: the reference point is then
// a feasible placement with a certified optimality gap rather than a proven
// optimum. Either way LastReplan reports the solve's certified Gap.
func (u *Updater) MaybeReconfigure(threshold float64, opts ReplanOptions) (bool, model.Metrics, error) {
	start := time.Now()
	in, cur, ids := u.snapshot()
	curM := model.ComputeMetrics(in, cur, u.build.Consolidate)
	stats := ReplanStats{FullRebuild: true, Rebuilt: true, InModel: len(in.Chains)}
	above := opts.DecomposeAbove
	if above == 0 {
		above = DefaultDecomposeAbove
	}
	var full *Result
	var err error
	if above > 0 && len(in.Chains) >= above {
		full, err = SolveDecomposed(in, DecomposeOptions{
			Build:     u.build,
			TimeLimit: opts.TimeLimit,
			Workers:   opts.SolverWorkers,
		})
		if err != nil {
			return false, curM, err
		}
		stats.Decomposed = true
	} else {
		wb := opts.WarmBasis
		if wb == nil {
			wb = u.fullBasis
		}
		full, err = SolveIP(in, IPOptions{
			Build:     u.build,
			TimeLimit: opts.TimeLimit,
			MaxNodes:  opts.MaxNodes,
			Workers:   opts.SolverWorkers,
			WarmBasis: wb,
		})
		if err != nil {
			return false, curM, err
		}
		u.fullBasis = full.RootBasis
		stats.WarmStarted = full.RootWarmed
		stats.Nodes = full.Nodes
	}
	stats.Gap = full.Gap
	finish := func() {
		stats.Elapsed = time.Since(start)
		u.stats = stats
	}
	if full.Assignment == nil || curM.Objective >= threshold*full.Objective {
		finish()
		return false, curM, nil
	}
	// Adopt the global solution wholesale.
	u.live = make(map[int][]int)
	u.waiting = make(map[int]bool)
	for l, id := range ids {
		if full.Assignment.Deployed(l) {
			u.live[id] = append([]int(nil), full.Assignment.Stages[l]...)
			stats.Admitted++
		} else {
			u.waiting[id] = true
		}
	}
	for i := range full.Assignment.X {
		copy(u.layout[i], full.Assignment.X[i])
	}
	// The adopted placement replaced the live set and layout wholesale; the
	// retained incremental program no longer describes them.
	u.fast = nil
	finish()
	return true, full.Metrics, nil
}
