package placement

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sfp/internal/model"
)

// refUpdater deep-copies an updater's logical state (chains, live set,
// waiting set, layout) into a fresh Updater with no retained fast state, so
// the reference FullRebuild replan runs from identical inputs. Lockstep
// comparison of two long-lived updaters is invalid — alternate optima
// diverge — so the oracle is rebuilt per step instead.
func refUpdater(t *testing.T, u *Updater) *Updater {
	t.Helper()
	in, a, _ := u.snapshot()
	ref, err := NewUpdater(in, a, u.build)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// churnChain makes a random arrival for the churn tests.
func churnChain(rng *rand.Rand, id, numTypes int) *model.Chain {
	J := 1 + rng.Intn(3)
	c := &model.Chain{ID: id, BandwidthGbps: 1 + float64(rng.Intn(15))}
	for j := 0; j < J; j++ {
		c.NFs = append(c.NFs, model.ChainNF{Type: 1 + rng.Intn(numTypes), Rules: 50 + rng.Intn(400)})
	}
	return c
}

// TestReplanFastMatchesFullChurn is the tentpole equivalence suite: under
// randomized arrive/depart churn, the default incremental replan must reach
// the same objective as the full-rebuild reference over the same state, and
// every produced placement must pass model.Verify (the Updater verifies
// internally and errors otherwise).
func TestReplanFastMatchesFullChurn(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(600 + seed))
		in := smallInstance(rng, 6)
		build := model.BuildOptions{Consolidate: true}
		initial, err := SolveIP(in, IPOptions{Build: build, TimeLimit: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		u, err := NewUpdater(in, initial.Assignment, build)
		if err != nil {
			t.Fatal(err)
		}
		nextID := 5000
		for step := 0; step < 6; step++ {
			// Churn: 1–2 arrivals, sometimes a departure.
			for n := 0; n < 1+rng.Intn(2); n++ {
				if err := u.Arrive(churnChain(rng, nextID, in.NumTypes)); err != nil {
					t.Fatal(err)
				}
				nextID++
			}
			if live := u.Live(); len(live) > 1 && rng.Intn(2) == 0 {
				if err := u.Depart(live[rng.Intn(len(live))]); err != nil {
					t.Fatal(err)
				}
			}

			ref := refUpdater(t, u)
			mFull, err := ref.Replan(ReplanOptions{FullRebuild: true, TimeLimit: 30 * time.Second})
			if err != nil {
				t.Fatalf("seed %d step %d: full replan: %v", seed, step, err)
			}
			mFast, err := u.Replan(ReplanOptions{TimeLimit: 30 * time.Second})
			if err != nil {
				t.Fatalf("seed %d step %d: fast replan: %v", seed, step, err)
			}
			if math.Abs(mFast.Objective-mFull.Objective) > 1e-6 {
				t.Fatalf("seed %d step %d: fast objective %v, full %v",
					seed, step, mFast.Objective, mFull.Objective)
			}
			if u.LastReplan().FullRebuild {
				t.Errorf("seed %d step %d: default replan fell back to full rebuild", seed, step)
			}
			// Survivor pinning invariant: live chains never move.
			_, a, _ := u.snapshot()
			inNow, _, _ := u.snapshot()
			for l, c := range inNow.Chains {
				if st, ok := u.live[c.ID]; ok {
					for j, want := range st {
						if a.Stages[l][j] != want {
							t.Fatalf("seed %d step %d: chain %d box %d moved", seed, step, c.ID, j)
						}
					}
				}
			}
		}
	}
}

// TestReplanFastEdgeCases covers the degenerate replans: an empty waiting
// set must short-circuit without solving, and an all-departed updater must
// replan the whole waiting set from an empty switch.
func TestReplanFastEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in := smallInstance(rng, 5)
	build := model.BuildOptions{Consolidate: true}
	initial, err := SolveIP(in, IPOptions{Build: build, TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(in, initial.Assignment, build)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the waiting set, then replan again: nothing to do.
	if _, err := u.Replan(ReplanOptions{TimeLimit: 20 * time.Second}); err != nil {
		t.Fatal(err)
	}
	for _, id := range append([]int(nil), u.ids...) {
		if u.waiting[id] {
			u.Withdraw(id)
		}
	}
	m1, err := u.Replan(ReplanOptions{TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if st := u.LastReplan(); st.Nodes != 0 || st.Admitted != 0 {
		t.Errorf("empty-waiting replan solved: %+v", st)
	}

	// Everyone departs; the state collapses to an empty switch.
	for _, id := range u.Live() {
		if err := u.Depart(id); err != nil {
			t.Fatal(err)
		}
	}
	m2, err := u.Replan(ReplanOptions{TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Objective != 0 || m2.Deployed != 0 {
		t.Errorf("all-departed metrics: %+v (was %+v)", m2, m1)
	}
	// New arrivals onto the empty switch place again.
	if err := u.Arrive(churnChain(rng, 9000, in.NumTypes)); err != nil {
		t.Fatal(err)
	}
	m3, err := u.Replan(ReplanOptions{TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Deployed != 1 {
		t.Errorf("arrival on empty switch not placed: %+v", m3)
	}
}

// TestReplanEncodesOnce pins the delta-encoding guarantee (the replan
// counterpart of TestSolveApproxEncodesOnce): N consecutive replans with
// arrivals in between perform exactly one residual build and zero full
// model builds — every subsequent replan patches the retained program.
func TestReplanEncodesOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := smallInstance(rng, 5)
	build := model.BuildOptions{Consolidate: true}
	initial, err := SolveIP(in, IPOptions{Build: build, TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(in, initial.Assignment, build)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	fullBefore := model.BuildCalls()
	residBefore := model.ResidualBuilds()
	for n := 0; n < rounds; n++ {
		if err := u.Arrive(churnChain(rng, 7000+n, in.NumTypes)); err != nil {
			t.Fatal(err)
		}
		if _, err := u.Replan(ReplanOptions{TimeLimit: 20 * time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	if d := model.BuildCalls() - fullBefore; d != 0 {
		t.Errorf("%d replans performed %d full model builds, want 0", rounds, d)
	}
	if d := model.ResidualBuilds() - residBefore; d != 1 {
		t.Errorf("%d replans performed %d residual builds, want exactly 1", rounds, d)
	}
}

// TestReplanWarmStarts asserts the cross-replan warm start engages: after
// the first fast replan retains a root basis, subsequent replans re-enter
// the dual simplex from it, including across Arrive deltas (the retained
// basis is grown with lp.Basis.Extend).
func TestReplanWarmStarts(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	in := smallInstance(rng, 5)
	build := model.BuildOptions{Consolidate: true}
	initial, err := SolveIP(in, IPOptions{Build: build, TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(in, initial.Assignment, build)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Replan(ReplanOptions{TimeLimit: 20 * time.Second}); err != nil {
		t.Fatal(err)
	}
	warmed := 0
	for n := 0; n < 3; n++ {
		if err := u.Arrive(churnChain(rng, 8000+n, in.NumTypes)); err != nil {
			t.Fatal(err)
		}
		if _, err := u.Replan(ReplanOptions{TimeLimit: 20 * time.Second}); err != nil {
			t.Fatal(err)
		}
		if st := u.LastReplan(); st.WarmStarted {
			warmed++
		}
		if st := u.LastReplan(); st.Rebuilt {
			t.Errorf("replan %d rebuilt the residual", n)
		}
	}
	if warmed == 0 {
		t.Error("no replan warm-started across 3 arrive/replan rounds")
	}
}

// TestMaybeReconfigureWarmStarts asserts satellite (a): a second full
// re-optimization over an unchanged chain set re-enters from the first
// solve's root basis.
func TestMaybeReconfigureWarmStarts(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	in := smallInstance(rng, 5)
	build := model.BuildOptions{Consolidate: true}
	initial, err := SolveIP(in, IPOptions{Build: build, TimeLimit: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(in, initial.Assignment, build)
	if err != nil {
		t.Fatal(err)
	}
	// First call records the root basis (threshold 0 never adopts).
	if _, _, err := u.MaybeReconfigure(0, ReplanOptions{TimeLimit: 20 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if u.fullBasis == nil {
		t.Skip("first full solve produced no root basis snapshot")
	}
	if _, _, err := u.MaybeReconfigure(0, ReplanOptions{TimeLimit: 20 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if !u.LastReplan().WarmStarted {
		t.Error("second MaybeReconfigure over unchanged chains solved cold")
	}
}
