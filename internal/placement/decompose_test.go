package placement

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sfp/internal/model"
	"sfp/internal/traffic"
)

// contendedInstance samples a workload where the relaxed rows genuinely
// bind: the backplane admits roughly two thirds of the sampled bandwidth
// and the per-stage block budget roughly matches two thirds of the sampled
// rule demand, so the decomposition has to price both resources rather than
// trivially deploying everything.
func contendedInstance(seed int64, L, recirc int) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	blocks := L / 4
	if blocks < 6 {
		blocks = 6
	}
	return &model.Instance{
		Switch: model.SwitchConfig{
			Stages:          8,
			BlocksPerStage:  blocks,
			EntriesPerBlock: 1000,
			CapacityGbps:    6 * float64(L),
		},
		NumTypes: 10,
		Recirc:   recirc,
		Chains:   traffic.GenChains(rng, L, traffic.ChainParams{MeanLen: 3}),
	}
}

// TestDecomposedFeasibleAcrossSeedsAndModes is the equivalence suite's
// feasibility half: for randomized instances across seeds, sizes,
// recirculation budgets, and both consolidation modes, the primal-repair
// output must verify against every original constraint (Verify checks
// Eqs. 4–9, the exact memory model, and Eq. 12 — none of the relaxed
// surrogate forms), and the dual bound must dominate the objective.
func TestDecomposedFeasibleAcrossSeedsAndModes(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, cons := range []bool{true, false} {
			for _, L := range []int{20, 60} {
				for _, recirc := range []int{0, 2} {
					in := contendedInstance(seed, L, recirc)
					res, err := SolveDecomposed(in, DecomposeOptions{
						Build: model.BuildOptions{Consolidate: cons},
					})
					if err != nil {
						t.Fatalf("seed=%d cons=%v L=%d R=%d: %v", seed, cons, L, recirc, err)
					}
					if err := model.Verify(in, res.Assignment, cons); err != nil {
						t.Fatalf("seed=%d cons=%v L=%d R=%d: repaired placement infeasible: %v",
							seed, cons, L, recirc, err)
					}
					if res.Bound < res.Objective-1e-6 {
						t.Errorf("seed=%d cons=%v L=%d R=%d: bound %.6f below objective %.6f",
							seed, cons, L, recirc, res.Bound, res.Objective)
					}
					if res.Gap < 0 {
						t.Errorf("negative gap %v", res.Gap)
					}
					if res.DualIters < 1 {
						t.Errorf("no subgradient iterations ran")
					}
				}
			}
		}
	}
}

// TestDecomposedWithinReportedGapOfExact is the bounded-gap half of the
// equivalence suite, run against the exact IP as oracle. Weak duality —
// the Lagrangian bound dominating any feasible objective the IP finds —
// must hold whether or not the IP proves optimality, so it is asserted on
// every instance, including contended ones where branch and bound only
// returns an incumbent within the time limit. The two optimality-relative
// claims (decomposed never beats the optimum; exact optimum within the
// certified gap) apply only where the IP terminates "optimal".
func TestDecomposedWithinReportedGapOfExact(t *testing.T) {
	proven := 0
	for seed := int64(1); seed <= 3; seed++ {
		for _, cons := range []bool{true, false} {
			// capMul 6 → backplane binds, IP usually times out with an
			// incumbent; capMul 10 → IP proves optimality at the root.
			for _, capMul := range []float64{6, 10} {
				const L = 8
				in := contendedInstance(seed, L, 0)
				in.Switch.CapacityGbps = capMul * L
				exact, err := SolveIP(in, IPOptions{
					Build:     model.BuildOptions{Consolidate: cons},
					TimeLimit: 5 * time.Second,
				})
				if err != nil {
					t.Fatalf("exact: %v", err)
				}
				dec, err := SolveDecomposed(in, DecomposeOptions{
					Build: model.BuildOptions{Consolidate: cons},
				})
				if err != nil {
					t.Fatalf("decomposed: %v", err)
				}
				if dec.Bound < exact.Objective-1e-6 {
					t.Errorf("seed=%d cons=%v capMul=%v: dual bound %.6f below exact objective %.6f (weak duality violated)",
						seed, cons, capMul, dec.Bound, exact.Objective)
				}
				if exact.Status != "optimal" {
					continue
				}
				proven++
				if dec.Objective > exact.Objective+1e-6 {
					t.Errorf("seed=%d cons=%v capMul=%v: decomposed objective %.6f exceeds exact optimum %.6f",
						seed, cons, capMul, dec.Objective, exact.Objective)
				}
				slack := dec.Gap*dec.Objective + 1e-6
				if exact.Objective-dec.Objective > slack {
					t.Errorf("seed=%d cons=%v capMul=%v: exact %.6f vs decomposed %.6f outside reported gap %.4f",
						seed, cons, capMul, exact.Objective, dec.Objective, dec.Gap)
				}
			}
		}
	}
	if proven == 0 {
		t.Error("no instance reached a proven optimum; optimality-relative claims untested")
	}
}

// TestDecomposedDeterministicAcrossWorkers pins the parallel-pricing
// contract: identical results at any worker count.
func TestDecomposedDeterministicAcrossWorkers(t *testing.T) {
	in := contendedInstance(7, 60, 2)
	var ref *Result
	for _, workers := range []int{1, 4} {
		res, err := SolveDecomposed(in, DecomposeOptions{
			Build:   model.BuildOptions{Consolidate: true},
			Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Objective != ref.Objective || res.Bound != ref.Bound || res.DualIters != ref.DualIters {
			t.Fatalf("workers=%d diverged: obj %v vs %v, bound %v vs %v, iters %d vs %d",
				workers, res.Objective, ref.Objective, res.Bound, ref.Bound, res.DualIters, ref.DualIters)
		}
		for l := range in.Chains {
			for j := range res.Assignment.Stages[l] {
				if res.Assignment.Stages[l][j] != ref.Assignment.Stages[l][j] {
					t.Fatalf("workers=%d: chain %d stage %d differs", workers, l, j)
				}
			}
		}
	}
}

// TestDecomposedEdgeCases exercises undeployable chains: a box larger than
// a whole stage, bandwidth beyond the backplane, and a chain longer than
// the virtual pipeline. All must stay undeployed in a placement that still
// verifies, without poisoning the bound.
func TestDecomposedEdgeCases(t *testing.T) {
	in := &model.Instance{
		Switch:   model.SwitchConfig{Stages: 4, BlocksPerStage: 4, EntriesPerBlock: 100, CapacityGbps: 50},
		NumTypes: 3,
		Recirc:   0,
		Chains: []*model.Chain{
			{ID: 1, BandwidthGbps: 10, NFs: []model.ChainNF{{Type: 1, Rules: 50}, {Type: 2, Rules: 50}}},
			{ID: 2, BandwidthGbps: 10, NFs: []model.ChainNF{{Type: 1, Rules: 5000}}},                                                                                       // box > stage
			{ID: 3, BandwidthGbps: 500, NFs: []model.ChainNF{{Type: 2, Rules: 50}}},                                                                                        // T > C
			{ID: 4, BandwidthGbps: 10, NFs: []model.ChainNF{{Type: 1, Rules: 10}, {Type: 2, Rules: 10}, {Type: 3, Rules: 10}, {Type: 1, Rules: 10}, {Type: 2, Rules: 10}}}, // J > K
		},
	}
	res, err := SolveDecomposed(in, DecomposeOptions{Build: model.BuildOptions{Consolidate: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Verify(in, res.Assignment, true); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !res.Assignment.Deployed(0) {
		t.Error("deployable chain 1 not deployed")
	}
	for _, l := range []int{1, 2, 3} {
		if res.Assignment.Deployed(l) {
			t.Errorf("undeployable chain %d deployed", in.Chains[l].ID)
		}
	}
	if res.Gap != 0 {
		t.Errorf("single deployable chain should close the gap, got %v", res.Gap)
	}
}

// TestMaybeReconfigureDecomposedPath asserts the threshold routing: above
// DecomposeAbove the full re-optimization runs the decomposition, surfaces
// its certified gap in ReplanStats, and leaves the updater in a consistent
// adopted state.
func TestMaybeReconfigureDecomposedPath(t *testing.T) {
	in := contendedInstance(11, 40, 1)
	gr, err := SolveGreedy(in, GreedyOptions{Consolidate: true})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(in, gr.Assignment, model.BuildOptions{Consolidate: true})
	if err != nil {
		t.Fatal(err)
	}
	did, m, err := u.MaybeReconfigure(5, ReplanOptions{DecomposeAbove: 1, SolverWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := u.LastReplan()
	if !st.Decomposed || !st.FullRebuild {
		t.Fatalf("expected decomposed full rebuild, got %+v", st)
	}
	if st.Gap < 0 {
		t.Errorf("negative gap in stats: %v", st.Gap)
	}
	if st.InModel != len(in.Chains) {
		t.Errorf("InModel = %d, want %d", st.InModel, len(in.Chains))
	}
	if !did {
		t.Fatalf("reconfiguration not adopted at threshold 5 (cur=%v)", m.Objective)
	}
	cin, ca, cm := u.Current()
	if err := model.Verify(cin, ca, true); err != nil {
		t.Fatalf("adopted state fails verification: %v", err)
	}
	if cm.Objective != m.Objective {
		t.Errorf("current objective %v != adopted %v", cm.Objective, m.Objective)
	}
	if len(u.Live())+u.Waiting() != len(in.Chains) {
		t.Errorf("live %d + waiting %d != %d chains", len(u.Live()), u.Waiting(), len(in.Chains))
	}

	// The exact path must still be reachable with DecomposeAbove<0 and must
	// report Decomposed=false. The tight time limit keeps the test fast; the
	// stats contract holds whether or not the IP finishes.
	if _, _, err := u.MaybeReconfigure(0, ReplanOptions{DecomposeAbove: -1, TimeLimit: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	st = u.LastReplan()
	if st.Decomposed {
		t.Error("DecomposeAbove<0 still routed to the decomposition")
	}
	if st.Gap < 0 {
		t.Errorf("negative exact-path gap: %v", st.Gap)
	}
}

// TestDecomposedGapQuality is a coarse regression net on bound quality on
// a contended 200-chain instance. Non-consolidated pricing is exact per
// box (whole blocks vs B), so the dual converges tight; the consolidated
// mode prices the Σ rules ≤ B·E surrogate, which ignores up to
// NumTypes−1 part-filled blocks of waste per stage, so its certified gap
// is structurally looser — the threshold reflects that. (The bench gate in
// scripts/check.sh holds the 3% line at 1k chains on the non-consolidated
// build; this test just catches a broken subgradient.)
func TestDecomposedGapQuality(t *testing.T) {
	for _, tc := range []struct {
		cons   bool
		maxGap float64
	}{
		{false, 0.05},
		{true, 0.20},
	} {
		in := contendedInstance(3, 200, 1)
		res, err := SolveDecomposed(in, DecomposeOptions{Build: model.BuildOptions{Consolidate: tc.cons}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Gap > tc.maxGap {
			t.Errorf("cons=%v: certified gap %.2f%% above %.0f%%", tc.cons, 100*res.Gap, 100*tc.maxGap)
		}
		t.Log(fmt.Sprintf("cons=%v: obj=%.1f bound=%.1f gap=%.2f%% iters=%d elapsed=%v",
			tc.cons, res.Objective, res.Bound, 100*res.Gap, res.DualIters, res.Elapsed))
	}
}
