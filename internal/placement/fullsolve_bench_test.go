package placement

import (
	"runtime"
	"testing"
	"time"

	"sfp/internal/model"
)

// Full-solve scale benchmarks: the BENCH_fullsolve.json workloads. They
// compare the Lagrangian decomposition (SolveDecomposed) against the exact
// IP at initial-provisioning scale on instances where both the per-stage
// memory and the backplane bind (contendedInstance: blocks ≈ L/4,
// capacity 6·L admits roughly two thirds of the sampled bandwidth).
//
// The build is non-consolidated (Eq. 25): there the decomposition prices
// whole blocks exactly, so its certified gap converges tight — the 3% gate
// in scripts/check.sh runs against this mode. Every decomposed run
// re-verifies its repaired placement against the full constraint set, so a
// passing benchmark is also a feasibility proof at that scale.
//
// Gates in scripts/check.sh:
//   - decomposed 4k at least 10x faster than the exact IP's 4k attempt
//     (which runs to its time limit — an honest lower bound on exact cost);
//   - decomposed certified gap at 1k at most 3%;
//   - decomposed 1k objective at least 0.97x the exact 1k incumbent.

const fullSolveSeed = 424

func benchFullSolveDecomp(b *testing.B, L int) {
	in := contendedInstance(fullSolveSeed, L, 0)
	var last *Result
	for i := 0; i < b.N; i++ {
		res, err := SolveDecomposed(in, DecomposeOptions{
			Build:   model.BuildOptions{Consolidate: false},
			Workers: runtime.NumCPU(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := model.Verify(in, res.Assignment, false); err != nil {
			b.Fatalf("decomposed placement infeasible at L=%d: %v", L, err)
		}
		last = res
	}
	b.ReportMetric(100*last.Gap, "gap_pct")
	b.ReportMetric(last.Objective, "obj")
	b.ReportMetric(float64(last.DualIters), "iters")
}

func BenchmarkFullSolveDecomp250(b *testing.B) { benchFullSolveDecomp(b, 250) }
func BenchmarkFullSolveDecomp1k(b *testing.B)  { benchFullSolveDecomp(b, 1000) }
func BenchmarkFullSolveDecomp4k(b *testing.B)  { benchFullSolveDecomp(b, 4000) }

// benchFullSolveExact runs the exact IP on the same instance under a time
// limit. A decomposed pre-solve supplies BoundCap, so branch and bound can
// terminate "optimal" as soon as its incumbent reaches the externally
// certified bound instead of grinding its own loose tree bound down.
func benchFullSolveExact(b *testing.B, L int, limit time.Duration) {
	in := contendedInstance(fullSolveSeed, L, 0)
	pre, err := SolveDecomposed(in, DecomposeOptions{
		Build:   model.BuildOptions{Consolidate: false},
		Workers: runtime.NumCPU(),
	})
	if err != nil {
		b.Fatal(err)
	}
	var last *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SolveIP(in, IPOptions{
			Build:     model.BuildOptions{Consolidate: false},
			TimeLimit: limit,
			RelGap:    0.005,
			BoundCap:  pre.Bound,
			Workers:   runtime.NumCPU(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Assignment == nil {
			b.Fatalf("exact IP returned no placement at L=%d", L)
		}
		last = res
	}
	b.ReportMetric(last.Objective, "obj")
	optimal := 0.0
	if last.Status == "optimal" {
		optimal = 1
	}
	b.ReportMetric(optimal, "optimal")
}

// BenchmarkFullSolveExact1k is the quality oracle: its incumbent anchors
// the 0.97x objective gate at a size where the warm-started IP still finds
// strong solutions within the limit.
func BenchmarkFullSolveExact1k(b *testing.B) { benchFullSolveExact(b, 1000, 20*time.Second) }

// BenchmarkFullSolveExact4k is the speed baseline for the 10x gate: the IP
// runs to its limit at this size, so the measured time understates the
// true exact-solve cost — the gate is conservative.
func BenchmarkFullSolveExact4k(b *testing.B) { benchFullSolveExact(b, 4000, 30*time.Second) }
