// Package ilp implements a branch-and-bound mixed-integer programming
// solver over the internal/lp simplex engine. It provides the pieces the
// paper obtains from Gurobi: exact integer solutions ("SFP-IP"), a solver
// time limit with the best incumbent returned (the early-termination
// experiment of Fig. 9), and the relative-gap report.
package ilp

import (
	"container/heap"
	"fmt"
	"io"
	"math"
	"time"

	"sfp/internal/lp"
)

// Problem is a maximization MIP: the base LP plus integrality requirements.
type Problem struct {
	LP *lp.Problem
	// IntVars lists variable indices that must take integer values.
	IntVars []int
}

// Status is a solve outcome.
type Status int

// Solve statuses.
const (
	// Optimal: proven optimal within tolerances.
	Optimal Status = iota
	// Feasible: an incumbent exists but the search hit a limit.
	Feasible
	// Infeasible: no integer-feasible point exists.
	Infeasible
	// Limit: a limit was hit before any incumbent was found.
	Limit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible(limit)"
	case Infeasible:
		return "infeasible"
	case Limit:
		return "limit(no-incumbent)"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Incumbent is one improving solution found during the search, with the
// wall-clock time at which it was found (drives the Fig. 9 series).
type Incumbent struct {
	Objective float64
	Elapsed   time.Duration
}

// Options tunes the search.
type Options struct {
	// TimeLimit bounds wall-clock search time (0 = none).
	TimeLimit time.Duration
	// MaxNodes bounds explored nodes (0 = default 200000).
	MaxNodes int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// RelGap terminates when (bound-incumbent)/|incumbent| falls below it
	// (default 1e-6).
	RelGap float64
	// OnIncumbent, if set, is invoked for every improving solution.
	OnIncumbent func(obj float64, x []float64)
	// PriorityVars are branched on before other integer variables whenever
	// one of them is fractional, in listed order. Use for structurally
	// dominant variables (e.g. SFP's physical-placement x, whose fixing
	// collapses large symmetric families of logical placements).
	PriorityVars []int
	// WarmStart, if non-nil, is checked for feasibility and integrality and
	// adopted as the initial incumbent, so time-limited solves always have
	// a solution to fall back on (heuristic warm start, as MIP solvers do).
	WarmStart []float64
	// Heuristic, if set, is a domain primal heuristic: given a node's
	// (fractional) LP point it may return a candidate integer point. The
	// solver validates feasibility and integrality before adopting it as
	// an incumbent. Called on every node until the first incumbent, then
	// periodically.
	Heuristic func(x []float64) []float64
	// CeilVars marks integer variables that are ceiling-defined
	// auxiliaries: (near-)zero objective, lower-bounded by an expression
	// over the decision variables, appearing only with nonnegative
	// coefficients in budget rows. Their minimal integral completion is the
	// ceiling of their LP value, so the solver never branches on them: once
	// every other integer variable is integral it rounds them up and
	// accepts or prunes on feasibility.
	CeilVars []int
	// LPOpts configures the node LP solves.
	LPOpts lp.Options
	// Trace, if set, receives one diagnostic line per explored node.
	Trace io.Writer
	// Workers sets the number of concurrent branch-and-bound workers.
	// 0 or 1 runs the serial engine, which reproduces the pre-parallel node
	// order and result bit for bit; n > 1 explores the tree with n workers
	// sharing the incumbent and a best-bound node queue (same optimum, node
	// order may differ). Callers wanting "all cores" pass
	// runtime.GOMAXPROCS(0) themselves.
	Workers int
	// WarmBasis warm-starts the ROOT LP relaxation from a prior solve's
	// optimal basis (cross-replan warm start: successive replans of a
	// retained problem differ only by bound pins, RHS give-backs, and
	// appended blocks, so the previous optimum re-enters via dual simplex).
	// It applies at depth 0 only — deeper nodes keep the presolve+cold path
	// (see WarmNodeLP for why). A basis whose shape does not match the
	// problem is ignored and the root solves cold, deterministically.
	WarmBasis *lp.Basis
	// BoundCap, when positive, is an externally certified upper bound on
	// the optimum (e.g. a Lagrangian dual bound from a decomposition). The
	// search reports Bound = min(tree bound, BoundCap) and terminates as
	// Optimal as soon as the incumbent is within RelGap of it — a solve
	// whose incumbent already matches a certified bound need not grind the
	// tree down to prove what is already known. Zero disables the cap; an
	// invalid (too small) cap yields a correspondingly weaker optimality
	// claim, so callers must only pass proven bounds.
	BoundCap float64
	// WarmNodeLP warm-starts each node LP from its parent's optimal basis
	// (dual simplex over the full problem). Off by default for two measured
	// reasons: node presolve shrinks child LPs (whose fixed variables
	// multiply at depth) more than a full-size dual re-solve saves, and
	// warm solves can land on a different optimal vertex of a degenerate
	// LP, perturbing the node order away from the pinned serial trace.
	WarmNodeLP bool
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	if o.RelGap == 0 {
		o.RelGap = 1e-6
	}
	return o
}

// Result is the search outcome.
type Result struct {
	Status    Status
	Objective float64
	X         []float64
	// Bound is the best proven upper bound on the optimum.
	Bound float64
	// Nodes is the number of explored branch-and-bound nodes.
	Nodes int
	// Elapsed is total solve time.
	Elapsed time.Duration
	// Incumbents is the improving-solution time series.
	Incumbents []Incumbent
	// RootBasis is the root LP relaxation's optimal basis, when the root
	// exported one (nil otherwise). Callers retain it across replans and
	// pass it back as Options.WarmBasis.
	RootBasis *lp.Basis
	// RootWarmed reports whether the root LP actually solved via the warm
	// path (false when Options.WarmBasis was absent or fell back cold).
	RootWarmed bool
}

// Gap returns the relative optimality gap, or +inf with no incumbent.
func (r *Result) Gap() float64 {
	if r.Status == Infeasible || r.Status == Limit {
		return math.Inf(1)
	}
	den := math.Max(1e-9, math.Abs(r.Objective))
	return (r.Bound - r.Objective) / den
}

// boundChange tightens one variable's bounds relative to the parent node.
type boundChange struct {
	v      int
	lo, hi float64
}

// node is one branch-and-bound node.
type node struct {
	changes []boundChange
	bound   float64 // parent LP bound (optimistic estimate)
	depth   int
	// warm is the parent node's optimal basis (shared read-only between
	// siblings); the node LP dual-simplex warm-starts from it.
	warm *lp.Basis
}

// nodeHeap is a max-heap on bound with depth-first tie-breaking (deeper
// first), giving a best-bound search that still dives for incumbents.
type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound > h[j].bound
	}
	return h[i].depth > h[j].depth
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs branch and bound.
func Solve(p *Problem, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	// Build the shared CSC form once, up front: every node LP clone reuses
	// it, and parallel workers must not race to create their own.
	p.LP.Presparse()
	if opts.Workers > 1 {
		return solveParallel(p, opts)
	}
	start := time.Now()
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}

	isInt := make(map[int]bool, len(p.IntVars))
	for _, v := range p.IntVars {
		isInt[v] = true
	}
	isCeilVar := make(map[int]bool, len(opts.CeilVars))
	for _, v := range opts.CeilVars {
		isCeilVar[v] = true
	}

	res := &Result{Status: Limit, Objective: math.Inf(-1), Bound: math.Inf(1)}
	if opts.BoundCap > 0 {
		res.Bound = opts.BoundCap
	}
	var bestX []float64

	accept := func(obj float64, x []float64) {
		if obj <= res.Objective {
			return
		}
		res.Objective = obj
		bestX = append(bestX[:0], x...)
		res.Incumbents = append(res.Incumbents, Incumbent{Objective: obj, Elapsed: time.Since(start)})
		if opts.OnIncumbent != nil {
			opts.OnIncumbent(obj, x)
		}
	}

	if ws := opts.WarmStart; ws != nil && p.LP.Feasible(ws, 1e-7) {
		integral := true
		for _, v := range p.IntVars {
			if math.Abs(ws[v]-math.Round(ws[v])) > opts.IntTol {
				integral = false
				break
			}
		}
		if integral {
			accept(p.LP.Eval(ws), ws)
		}
	}

	open := &nodeHeap{}
	heap.Init(open)
	// Until the first incumbent exists, the search dives depth-first (LIFO
	// stack): best-bound alone wanders breadth-wise and can fail to produce
	// any integer-feasible point under a time limit. Once an incumbent is
	// found the stack drains into the best-bound heap.
	dive := []*node{{bound: math.Inf(1)}}
	rootInfeasible := false
	dropped := false
	// lostBound is the best bound among dropped (unexplorable) nodes: their
	// subtrees were never searched, so the proven upper bound can never fall
	// below it — without this, dropping the right nodes would let the
	// remaining tree "prove" a false optimum.
	lostBound := math.Inf(-1)
	explored := 0
	// decided marks a break that already fixed the final status (limit hit or
	// certified optimum). The exhausted-tree classification below must only
	// run on natural loop exit: a deadline break can pop the last queued node
	// and leave both queues empty with that node's subtree unexplored, which
	// an unconditional emptiness check would misread as a completed search —
	// and promote a time-limited incumbent to a false "optimal".
	decided := false

	for open.Len() > 0 || len(dive) > 0 {
		if explored >= opts.MaxNodes {
			res.Status = statusOnLimit(bestX)
			decided = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Status = statusOnLimit(bestX)
			decided = true
			break
		}
		if bestX != nil && len(dive) > 0 {
			for _, nd := range dive {
				heap.Push(open, nd)
			}
			dive = dive[:0]
			continue
		}
		var nd *node
		if len(dive) > 0 {
			nd = dive[len(dive)-1]
			dive = dive[:len(dive)-1]
		} else {
			nd = heap.Pop(open).(*node)
			// Global bound = best open node bound (max-heap root).
			if nd.bound < res.Bound {
				res.Bound = nd.bound
			}
		}
		// Effective proven bound: the live frontier (folding in
		// Options.BoundCap via res.Bound), floored by dropped subtrees —
		// unless the external cap alone certifies the incumbent, which it
		// does regardless of what the tree lost.
		eff := math.Max(lostBound, math.Min(nd.bound, res.Bound))
		if opts.BoundCap > 0 {
			eff = math.Min(eff, opts.BoundCap)
		}
		if bestX != nil && eff <= res.Objective+opts.RelGap*math.Abs(res.Objective)+opts.IntTol {
			res.Status = Optimal
			decided = true
			break
		}
		explored++

		// Build and solve the node LP.
		q := p.LP.Clone()
		for _, ch := range nd.changes {
			q.SetBounds(ch.v, ch.lo, ch.hi)
		}
		lpOpts := opts.LPOpts
		if opts.WarmNodeLP {
			lpOpts.WarmBasis = nd.warm
		}
		if nd.depth == 0 && opts.WarmBasis != nil {
			lpOpts.WarmBasis = opts.WarmBasis
		}
		// The node LP inherits the remaining wall-clock budget: a solve the
		// deadline interrupts comes back IterLimit and is dropped like any
		// unexplorable node, so one huge LP cannot overshoot the TimeLimit.
		if lpOpts.Deadline.IsZero() {
			lpOpts.Deadline = deadline
		}
		sol, err := q.Solve(lpOpts)
		if err != nil {
			return nil, err
		}
		if nd.depth == 0 {
			res.RootBasis = sol.Basis
			res.RootWarmed = sol.Warm
		}
		// Enforce the deadline on the LP result: the in-hand node's subtree
		// is unexplored, so it joins lostBound like any dropped node before
		// the limit status is returned.
		if !deadline.IsZero() && time.Now().After(deadline) {
			dropped = true
			lostBound = math.Max(lostBound, nd.bound)
			res.Status = statusOnLimit(bestX)
			decided = true
			break
		}
		switch sol.Status {
		case lp.Infeasible:
			if nd.depth == 0 {
				rootInfeasible = true
			}
			continue
		case lp.Unbounded:
			return nil, fmt.Errorf("ilp: LP relaxation unbounded")
		case lp.IterLimit:
			// Unexplorable within the pivot or wall-clock budget; drop the
			// node conservatively. Its parent bound joins lostBound so the
			// abandoned subtree keeps weakening the proven bound.
			dropped = true
			lostBound = math.Max(lostBound, nd.bound)
			continue
		}
		if sol.Objective <= res.Objective+opts.IntTol {
			continue // pruned by bound
		}

		// Pick the branch variable: the first fractional priority variable,
		// else the most fractional non-auxiliary integer variable.
		branchVar := -1
		for _, v := range opts.PriorityVars {
			f := sol.X[v] - math.Floor(sol.X[v])
			if math.Min(f, 1-f) > opts.IntTol {
				branchVar = v
				break
			}
		}
		if branchVar == -1 {
			worst := opts.IntTol
			for _, v := range p.IntVars {
				if isCeilVar[v] {
					continue
				}
				f := sol.X[v] - math.Floor(sol.X[v])
				frac := math.Min(f, 1-f)
				if frac > worst {
					worst, branchVar = frac, v
				}
			}
		}
		if opts.Trace != nil {
			frac := -1.0
			if branchVar >= 0 {
				f := sol.X[branchVar] - math.Floor(sol.X[branchVar])
				frac = math.Min(f, 1-f)
			}
			fmt.Fprintf(opts.Trace, "node=%d depth=%d lp=%v obj=%.3f branch=%d frac=%.3f iters=%d\n",
				explored, nd.depth, sol.Status, sol.Objective, branchVar, frac, sol.Iters)
		}
		if branchVar == -1 {
			// All decision variables integral. Complete the ceiling-defined
			// auxiliaries by rounding up.
			cand := append([]float64(nil), sol.X...)
			ok := true
			for _, v := range opts.CeilVars {
				up := math.Ceil(cand[v] - opts.IntTol)
				_, hi := q.Bounds(v)
				if up > hi+opts.IntTol {
					ok = false
					break
				}
				cand[v] = up
			}
			if ok && p.LP.Feasible(cand, 1e-7) {
				accept(p.LP.Eval(cand), cand)
				continue
			}
			// The rounded completion is infeasible: ceiling variables couple
			// through shared rows (per-stage block budgets), so rounding them
			// all up can overrun a budget even though each alone is fine. The
			// node's subproblem may still contain integral points with other
			// decision values — branch on the most fractional ceiling
			// variable rather than dropping the subtree.
			branchVar = fractionalCeilVar(sol.X, opts)
			if branchVar == -1 {
				continue // fully integral yet infeasible: nothing below
			}
		}

		// Primal heuristics: the naive snap-and-check, plus the caller's
		// domain heuristic. Run every node until an incumbent exists, then
		// every 20th node.
		if bestX == nil || explored%20 == 0 {
			if rx, ok := roundAndCheck(p, q, sol.X, isInt, opts.IntTol); ok {
				accept(p.LP.Eval(rx), rx)
			}
			if opts.Heuristic != nil {
				if hx := opts.Heuristic(sol.X); hx != nil && p.LP.Feasible(hx, 1e-7) {
					integral := true
					for _, v := range p.IntVars {
						if math.Abs(hx[v]-math.Round(hx[v])) > opts.IntTol {
							integral = false
							break
						}
					}
					if integral {
						accept(p.LP.Eval(hx), hx)
					}
				}
			}
		}

		v := sol.X[branchVar]
		lo, hi := q.Bounds(branchVar)
		var childWarm *lp.Basis
		if opts.WarmNodeLP {
			childWarm = sol.Basis // shared by both children, read-only
		}
		down := &node{changes: append(append([]boundChange{}, nd.changes...), boundChange{branchVar, lo, math.Floor(v)}), bound: sol.Objective, depth: nd.depth + 1, warm: childWarm}
		up := &node{changes: append(append([]boundChange{}, nd.changes...), boundChange{branchVar, math.Ceil(v), hi}), bound: sol.Objective, depth: nd.depth + 1, warm: childWarm}
		if bestX == nil {
			// Dive up-first for binary-like variables: forcing a selection
			// to 1 collapses its at-most-one row and drives the LP toward
			// integrality, whereas forcing 0 merely shuffles fractional
			// mass to sibling slots (set-partitioning structure). Wider
			// integers dive toward the nearer bound. LIFO: preferred child
			// is pushed last.
			if hi-lo <= 1 || v-math.Floor(v) >= 0.5 {
				dive = append(dive, down, up)
			} else {
				dive = append(dive, up, down)
			}
		} else {
			heap.Push(open, down)
			heap.Push(open, up)
		}
	}

	if !decided && open.Len() == 0 && len(dive) == 0 {
		if bestX == nil {
			res.Status = Infeasible
			if !rootInfeasible && (explored == 0 || dropped) {
				res.Status = Limit
			}
		} else if dropped {
			// Some subtree was abandoned unexplored (node LP hit its pivot
			// cap or the wall-clock deadline); it may hold better points, so
			// the incumbent stays Feasible.
			res.Status = Feasible
		} else {
			res.Status = Optimal
			res.Bound = res.Objective
		}
	}
	if dropped {
		// Dropped subtrees rejoin the proven bound on every exit path: the
		// live frontier alone no longer covers the optimum. The external
		// BoundCap remains valid regardless.
		b := math.Max(res.Bound, lostBound)
		if opts.BoundCap > 0 {
			b = math.Min(b, opts.BoundCap)
		}
		res.Bound = b
	}
	// The incumbent itself is always a valid lower bound on the optimum, so
	// the proven upper bound can never be reported below it.
	if bestX != nil && res.Bound < res.Objective {
		res.Bound = res.Objective
	}
	res.X = bestX
	res.Nodes = explored
	res.Elapsed = time.Since(start)
	if res.Status == Optimal && bestX == nil {
		res.Status = Infeasible
	}
	return res, nil
}

func statusOnLimit(bestX []float64) Status {
	if bestX != nil {
		return Feasible
	}
	return Limit
}

// fractionalCeilVar returns the most fractional ceiling-defined variable at
// x, or -1 if all are integral. Used when the rounded-up completion of an
// otherwise-integral node is infeasible: the node must branch on a ceiling
// variable instead of being dropped.
func fractionalCeilVar(x []float64, opts Options) int {
	worst, branchVar := opts.IntTol, -1
	for _, v := range opts.CeilVars {
		f := x[v] - math.Floor(x[v])
		if frac := math.Min(f, 1-f); frac > worst {
			worst, branchVar = frac, v
		}
	}
	return branchVar
}

// roundAndCheck snaps integer variables to the nearest integer within their
// bounds and verifies all constraints directly. It returns the snapped point
// and whether it is feasible.
func roundAndCheck(p *Problem, q *lp.Problem, x []float64, isInt map[int]bool, tol float64) ([]float64, bool) {
	rx := append([]float64(nil), x...)
	for v := range isInt {
		r := math.Round(rx[v])
		lo, hi := q.Bounds(v)
		if r < lo {
			r = math.Ceil(lo)
		}
		if r > hi {
			r = math.Floor(hi)
		}
		if r < lo-tol || r > hi+tol {
			return nil, false
		}
		rx[v] = r
	}
	if !q.Feasible(rx, 1e-7) {
		return nil, false
	}
	return rx, true
}
