package ilp

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"sfp/internal/lp"
)

const eps = 1e-5

// knapsack builds a 0/1 knapsack MIP.
func knapsack(values, weights []float64, cap float64) *Problem {
	n := len(values)
	p := lp.NewProblem(n)
	coeffs := make([]lp.Coef, n)
	ints := make([]int, n)
	for i := 0; i < n; i++ {
		p.SetObjective(i, values[i])
		p.SetBounds(i, 0, 1)
		coeffs[i] = lp.Coef{Var: i, Val: weights[i]}
		ints[i] = i
	}
	p.AddRow(lp.Row{Coeffs: coeffs, Op: lp.LE, RHS: cap})
	return &Problem{LP: p, IntVars: ints}
}

// bruteKnapsack enumerates all subsets (n ≤ 20).
func bruteKnapsack(values, weights []float64, cap float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		v, w := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				w += weights[i]
			}
		}
		if w <= cap && v > best {
			best = v
		}
	}
	return best
}

func TestKnapsackExact(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2}
	weights := []float64{5, 6, 3, 4, 1}
	res, err := Solve(knapsack(values, weights, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteKnapsack(values, weights, 10)
	if res.Status != Optimal || math.Abs(res.Objective-want) > eps {
		t.Errorf("got %v obj %v, want optimal %v", res.Status, res.Objective, want)
	}
	// Solution must be integral.
	for i, x := range res.X[:len(values)] {
		if math.Abs(x-math.Round(x)) > 1e-6 {
			t.Errorf("x[%d] = %v not integral", i, x)
		}
	}
	if res.Gap() > 1e-6 {
		t.Errorf("gap = %v", res.Gap())
	}
}

// Property: B&B matches brute force on random small knapsacks.
func TestKnapsackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = float64(1 + rng.Intn(20))
			weights[i] = float64(1 + rng.Intn(10))
		}
		cap := sum(weights) * (0.3 + 0.4*rng.Float64())
		res, err := Solve(knapsack(values, weights, cap), Options{})
		if err != nil || res.Status != Optimal {
			return false
		}
		return math.Abs(res.Objective-bruteKnapsack(values, weights, cap)) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x integer ≤ 2.5, y continuous ≤ 0.7, x + y ≤ 3.
	p := lp.NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 1)
	p.SetBounds(0, 0, 2.5)
	p.SetBounds(1, 0, 0.7)
	p.AddRow(lp.Row{Coeffs: []lp.Coef{{Var: 0, Val: 1}, {Var: 1, Val: 1}}, Op: lp.LE, RHS: 3})
	res, err := Solve(&Problem{LP: p, IntVars: []int{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// x=2, y=0.7 → 4.7.
	if res.Status != Optimal || math.Abs(res.Objective-4.7) > eps {
		t.Errorf("got %v obj %v, want optimal 4.7", res.Status, res.Objective)
	}
}

func TestInfeasibleMIP(t *testing.T) {
	// x integer, 0.2 ≤ x ≤ 0.8 → no integer point.
	p := lp.NewProblem(1)
	p.SetObjective(0, 1)
	p.SetBounds(0, 0.2, 0.8)
	res, err := Solve(&Problem{LP: p, IntVars: []int{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestInfeasibleLPRoot(t *testing.T) {
	p := lp.NewProblem(1)
	p.AddRow(lp.Row{Coeffs: []lp.Coef{{Var: 0, Val: 1}}, Op: lp.GE, RHS: 2})
	p.SetBounds(0, 0, 1)
	res, err := Solve(&Problem{LP: p, IntVars: []int{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestTimeLimitReturnsIncumbent(t *testing.T) {
	// A large random knapsack where a 0 time budget forces limit status.
	rng := rand.New(rand.NewSource(42))
	n := 40
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = rng.Float64()*99 + 1
		weights[i] = rng.Float64()*9 + 1
	}
	prob := knapsack(values, weights, sum(weights)/2)
	res, err := Solve(prob, Options{TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Limit && res.Status != Feasible {
		t.Errorf("status = %v, want a limit status", res.Status)
	}
	// With a generous limit the same instance solves to optimality.
	res2, err := Solve(prob, Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != Optimal {
		t.Errorf("status = %v, want optimal", res2.Status)
	}
	if len(res2.Incumbents) == 0 {
		t.Error("no incumbent series recorded")
	}
	// Incumbent series must be strictly improving.
	for i := 1; i < len(res2.Incumbents); i++ {
		if res2.Incumbents[i].Objective <= res2.Incumbents[i-1].Objective {
			t.Error("incumbent series not improving")
		}
	}
}

func TestOnIncumbentCallback(t *testing.T) {
	var seen []float64
	values := []float64{5, 4, 3}
	weights := []float64{2, 3, 1}
	_, err := Solve(knapsack(values, weights, 4), Options{
		OnIncumbent: func(obj float64, x []float64) { seen = append(seen, obj) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Error("callback never fired")
	}
	if !sort.Float64sAreSorted(seen) {
		t.Error("callback objectives not improving")
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 30
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = rng.Float64() + 1
		weights[i] = rng.Float64() + 1
	}
	res, err := Solve(knapsack(values, weights, sum(weights)/2), Options{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes > 3 {
		t.Errorf("nodes = %d, want ≤ 3", res.Nodes)
	}
	if res.Status == Optimal {
		// Only legitimate if it genuinely closed the gap in ≤3 nodes.
		if res.Gap() > 1e-6 {
			t.Error("claimed optimal with open gap")
		}
	}
}

func TestBoundIsValid(t *testing.T) {
	// The reported bound must never be below the true optimum.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = float64(1 + rng.Intn(15))
			weights[i] = float64(1 + rng.Intn(8))
		}
		cap := sum(weights) / 2
		res, err := Solve(knapsack(values, weights, cap), Options{})
		if err != nil {
			return false
		}
		want := bruteKnapsack(values, weights, cap)
		return res.Bound >= want-eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func BenchmarkKnapsack20(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 20
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = rng.Float64()*20 + 1
		weights[i] = rng.Float64()*10 + 1
	}
	prob := knapsack(values, weights, sum(weights)/2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(prob, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCeilVarsCompletion: an auxiliary counter Y ≥ x/3 with budget Y ≤ 2
// must be completed by ceiling, never branched. x integer in [0, 10],
// objective x - εY: optimum x=6, Y=2.
func TestCeilVarsCompletion(t *testing.T) {
	p := lp.NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, -1e-7)
	p.SetBounds(0, 0, 10)
	p.SetBounds(1, 0, 2)
	// Y ≥ x/3  ⇔  x - 3Y ≤ 0.
	p.AddRow(lp.Row{Coeffs: []lp.Coef{{Var: 0, Val: 1}, {Var: 1, Val: -3}}, Op: lp.LE, RHS: 0})
	res, err := Solve(&Problem{LP: p, IntVars: []int{0, 1}}, Options{CeilVars: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[0]-6) > 1e-6 || math.Abs(res.X[1]-2) > 1e-6 {
		t.Errorf("X = %v, want [6 2]", res.X)
	}
}

// TestCeilVarsPruneInfeasible: when even the ceiling completion breaks the
// budget, the instance is infeasible — deployment x=1 forces Y ≥ 0.4 → 1,
// but Y ≤ 0. The only integer-feasible point is x=0.
func TestCeilVarsPruneInfeasible(t *testing.T) {
	p := lp.NewProblem(2)
	p.SetObjective(0, 5)
	p.SetObjective(1, -1e-7)
	p.SetBounds(0, 0, 1)
	p.SetBounds(1, 0, 0) // zero block budget
	p.AddRow(lp.Row{Coeffs: []lp.Coef{{Var: 0, Val: 0.4}, {Var: 1, Val: -1}}, Op: lp.LE, RHS: 0})
	res, err := Solve(&Problem{LP: p, IntVars: []int{0, 1}}, Options{CeilVars: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-0) > 1e-6 {
		t.Errorf("got %v obj %v, want optimal 0 (x forced to 0)", res.Status, res.Objective)
	}
}

// TestHeuristicSeedsIncumbent: a heuristic returning the known optimum must
// terminate the search immediately with that incumbent.
func TestHeuristicSeedsIncumbent(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2}
	weights := []float64{5, 6, 3, 4, 1}
	prob := knapsack(values, weights, 10)
	want := bruteKnapsack(values, weights, 10)
	calls := 0
	heuristic := func(x []float64) []float64 {
		calls++
		// The optimal subset for this instance: items 1 and 3 (13+8=21,
		// weight 10).
		out := make([]float64, prob.LP.NumVars())
		out[1], out[3] = 1, 1
		return out
	}
	res, err := Solve(prob, Options{Heuristic: heuristic})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("heuristic never called")
	}
	if res.Status != Optimal || math.Abs(res.Objective-want) > 1e-6 {
		t.Errorf("got %v obj %v, want optimal %v", res.Status, res.Objective, want)
	}
	if len(res.Incumbents) == 0 {
		t.Error("heuristic incumbent not recorded")
	}
}

// TestHeuristicRejectsInfeasible: a heuristic returning garbage must be
// ignored, not adopted.
func TestHeuristicRejectsInfeasible(t *testing.T) {
	values := []float64{5, 4}
	weights := []float64{3, 2}
	prob := knapsack(values, weights, 4)
	res, err := Solve(prob, Options{Heuristic: func(x []float64) []float64 {
		out := make([]float64, prob.LP.NumVars())
		out[0], out[1] = 1, 1 // weight 5 > 4: infeasible
		return out
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteKnapsack(values, weights, 4)
	if res.Status != Optimal || math.Abs(res.Objective-want) > 1e-6 {
		t.Errorf("got %v obj %v, want optimal %v", res.Status, res.Objective, want)
	}
}

// TestWarmStartRejected: an infeasible warm start must not become the
// incumbent.
func TestWarmStartRejected(t *testing.T) {
	values := []float64{5, 4}
	weights := []float64{3, 2}
	prob := knapsack(values, weights, 4)
	bad := []float64{1, 1} // infeasible
	res, err := Solve(prob, Options{WarmStart: bad})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > bruteKnapsack(values, weights, 4)+1e-9 {
		t.Errorf("objective %v exceeds true optimum", res.Objective)
	}
}

// TestPriorityVarsBranchFirst: with a priority list, the first branch is on
// the listed variable even if another is more fractional.
func TestPriorityVarsBranchFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 12
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = rng.Float64()*9 + 1
		weights[i] = rng.Float64()*5 + 1
	}
	prob := knapsack(values, weights, sum(weights)/2)
	want := bruteKnapsack(values, weights, sum(weights)/2)
	res, err := Solve(prob, Options{PriorityVars: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-want) > 1e-5 {
		t.Errorf("priority branching broke optimality: %v vs %v", res.Objective, want)
	}
}

// TestTraceOutput: the node trace emits one line per explored node.
func TestTraceOutput(t *testing.T) {
	var sb strings.Builder
	prob := knapsack([]float64{3, 5, 4}, []float64{2, 4, 3}, 5)
	res, err := Solve(prob, Options{Trace: &sb})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != res.Nodes {
		t.Errorf("trace lines = %d, nodes = %d", lines, res.Nodes)
	}
	if !strings.Contains(sb.String(), "lp=optimal") {
		t.Error("trace missing LP status")
	}
}
