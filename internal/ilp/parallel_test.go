package ilp

import (
	"math"
	"math/rand"
	"testing"

	"sfp/internal/lp"
)

// TestParallelMatchesSerialKnapsack cross-checks the parallel tree search
// against the serial reference: the optimal objective must agree on every
// instance (the argmax may differ when optima tie, so only values compare).
func TestParallelMatchesSerialKnapsack(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = 1 + 9*rng.Float64()
			weights[i] = 1 + 9*rng.Float64()
		}
		capacity := sum(weights) / (1.5 + 2*rng.Float64())
		serial, err := Solve(knapsack(values, weights, capacity), Options{})
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		for _, workers := range []int{2, 4} {
			par, err := Solve(knapsack(values, weights, capacity), Options{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if par.Status != serial.Status {
				t.Fatalf("seed %d workers %d: status %v, serial %v",
					seed, workers, par.Status, serial.Status)
			}
			if math.Abs(par.Objective-serial.Objective) > 1e-6 {
				t.Fatalf("seed %d workers %d: objective %v, serial %v",
					seed, workers, par.Objective, serial.Objective)
			}
			if par.Bound < par.Objective-1e-6 {
				t.Fatalf("seed %d workers %d: bound %v below objective %v",
					seed, workers, par.Bound, par.Objective)
			}
		}
	}
}

func TestParallelInfeasible(t *testing.T) {
	// x + y ≥ 3 with x, y ∈ {0, 1}: LP-feasible, integer-infeasible after
	// branching (x+y ≤ 2 in binaries is fine — force ≥ 3 over two vars).
	p := lp.NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.SetBounds(0, 0, 1)
	p.SetBounds(1, 0, 1)
	p.AddRow(lp.Row{Coeffs: []lp.Coef{{Var: 0, Val: 1}, {Var: 1, Val: 1}}, Op: lp.GE, RHS: 3})
	for _, workers := range []int{1, 4} {
		res, err := Solve(&Problem{LP: p.Clone(), IntVars: []int{0, 1}}, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if res.Status != Infeasible {
			t.Fatalf("workers %d: status %v, want Infeasible", workers, res.Status)
		}
	}
}

func TestParallelMixedIntegerContinuous(t *testing.T) {
	// max 5x + 4y, 6x + 4y ≤ 24, x + 2y ≤ 6, x integer, y continuous.
	build := func() *Problem {
		p := lp.NewProblem(2)
		p.SetObjective(0, 5)
		p.SetObjective(1, 4)
		p.AddRow(lp.Row{Coeffs: []lp.Coef{{Var: 0, Val: 6}, {Var: 1, Val: 4}}, Op: lp.LE, RHS: 24})
		p.AddRow(lp.Row{Coeffs: []lp.Coef{{Var: 0, Val: 1}, {Var: 1, Val: 2}}, Op: lp.LE, RHS: 6})
		return &Problem{LP: p, IntVars: []int{0}}
	}
	serial, err := Solve(build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve(build(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Status != Optimal || math.Abs(par.Objective-serial.Objective) > 1e-6 {
		t.Fatalf("parallel %v obj %v, serial obj %v", par.Status, par.Objective, serial.Objective)
	}
}

// TestParallelWarmStartAndHeuristic exercises the incumbent machinery under
// concurrency: a warm start plus a heuristic that proposes the warm point
// again (the accept path must dedup by objective, not crash).
func TestParallelWarmStartAndHeuristic(t *testing.T) {
	values := []float64{6, 5, 4, 3, 2, 7, 8, 1, 2, 5, 9, 4}
	weights := []float64{3, 2, 4, 1, 5, 6, 7, 2, 3, 4, 8, 2}
	capacity := sum(weights) / 2.2
	warm := make([]float64, len(values))
	warm[0], warm[1] = 1, 1 // feasible (weights 3+2 under any capacity here)
	heuristic := func(x []float64) []float64 {
		out := make([]float64, len(x))
		copy(out, warm)
		return out
	}
	serial, err := Solve(knapsack(values, weights, capacity), Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve(knapsack(values, weights, capacity), Options{
		Workers:   4,
		WarmStart: warm,
		Heuristic: heuristic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.Status != Optimal || math.Abs(par.Objective-serial.Objective) > 1e-6 {
		t.Fatalf("parallel %v obj %v, serial obj %v", par.Status, par.Objective, serial.Objective)
	}
	if len(par.Incumbents) == 0 {
		t.Fatal("no incumbents recorded")
	}
}

// TestParallelNodeLimitReturnsIncumbent checks that a node-limited parallel
// solve still reports a feasible incumbent and a valid bound.
func TestParallelNodeLimitReturnsIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 18
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = 1 + 9*rng.Float64()
		weights[i] = 1 + 9*rng.Float64()
	}
	capacity := sum(weights) / 3
	warm := make([]float64, n) // empty knapsack is always feasible
	res, err := Solve(knapsack(values, weights, capacity), Options{
		Workers:   4,
		MaxNodes:  5,
		WarmStart: warm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Feasible && res.Status != Optimal {
		t.Fatalf("status = %v, want Feasible or Optimal", res.Status)
	}
	if res.Bound < res.Objective-1e-6 {
		t.Fatalf("bound %v below incumbent %v", res.Bound, res.Objective)
	}
}
