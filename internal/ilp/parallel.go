package ilp

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
	"time"

	"sfp/internal/lp"
)

// solveParallel is the worker-pool branch-and-bound engine (Options.Workers
// > 1). Workers share one incumbent, one best-bound heap, and one dive
// stack behind a mutex; node LPs — the expensive part — run outside the
// lock. The search policy mirrors the serial engine (dive depth-first until
// the first incumbent, then best-bound), so the two engines prove the same
// optimum; only the node visit order differs, because workers race.
//
// Termination uses a condition variable: a worker that finds both queues
// empty must still wait while any peer is in flight, since that peer may
// push children.
func solveParallel(p *Problem, opts Options) (*Result, error) {
	start := time.Now()
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}

	isInt := make(map[int]bool, len(p.IntVars))
	for _, v := range p.IntVars {
		isInt[v] = true
	}
	isCeilVar := make(map[int]bool, len(opts.CeilVars))
	for _, v := range opts.CeilVars {
		isCeilVar[v] = true
	}

	bound0 := math.Inf(1)
	if opts.BoundCap > 0 {
		bound0 = opts.BoundCap
	}
	st := &parState{
		res:       &Result{Status: Limit, Objective: math.Inf(-1), Bound: bound0},
		open:      &nodeHeap{},
		inflight:  make(map[int]float64),
		lostBound: math.Inf(-1),
		start:     start,
		opts:      opts,
	}
	st.cond = sync.NewCond(&st.mu)
	heap.Init(st.open)

	if ws := opts.WarmStart; ws != nil && p.LP.Feasible(ws, 1e-7) {
		integral := true
		for _, v := range p.IntVars {
			if math.Abs(ws[v]-math.Round(ws[v])) > opts.IntTol {
				integral = false
				break
			}
		}
		if integral {
			st.accept(p.LP.Eval(ws), ws)
		}
	}
	st.dive = append(st.dive, &node{bound: math.Inf(1)})

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker(id, p, opts, st, deadline, isInt, isCeilVar)
		}(w)
	}
	wg.Wait()

	res := st.res
	if st.err != nil {
		return nil, st.err
	}
	if !st.stopped { // queues drained naturally
		if st.bestX == nil {
			res.Status = Infeasible
			if !st.rootInfeasible && (st.explored == 0 || st.dropped) {
				res.Status = Limit
			}
		} else if st.dropped {
			// A subtree was abandoned unexplored (node LP hit its pivot cap
			// or the deadline): exhaustion proves nothing, mirror the serial
			// engine and stay Feasible.
			res.Status = Feasible
		} else {
			res.Status = Optimal
			res.Bound = res.Objective
		}
	}
	if st.dropped {
		// Dropped subtrees rejoin the proven bound on every exit path.
		b := math.Max(res.Bound, st.lostBound)
		if opts.BoundCap > 0 {
			b = math.Min(b, opts.BoundCap)
		}
		res.Bound = b
	}
	if st.bestX != nil && res.Bound < res.Objective {
		res.Bound = res.Objective
	}
	res.X = st.bestX
	res.Nodes = st.explored
	res.Elapsed = time.Since(start)
	if res.Status == Optimal && st.bestX == nil {
		res.Status = Infeasible
	}
	return res, nil
}

// parState is the mutex-guarded shared search state.
type parState struct {
	mu   sync.Mutex
	cond *sync.Cond

	open *nodeHeap
	dive []*node
	// inflight maps worker id -> bound of the node it is solving, so the
	// global proven bound accounts for nodes popped but not yet expanded.
	inflight map[int]float64

	res            *Result
	bestX          []float64
	explored       int
	rootInfeasible bool
	dropped        bool
	// lostBound is the best bound among dropped (unexplorable) nodes; the
	// proven bound can never fall below it (see the serial engine).
	lostBound float64
	stopped   bool
	err       error

	start time.Time
	opts  Options
}

// accept records an improving incumbent. Callers must hold st.mu (or be the
// single pre-worker goroutine).
func (st *parState) accept(obj float64, x []float64) {
	if obj <= st.res.Objective {
		return
	}
	st.res.Objective = obj
	st.bestX = append(st.bestX[:0], x...)
	st.res.Incumbents = append(st.res.Incumbents, Incumbent{Objective: obj, Elapsed: time.Since(st.start)})
	if st.opts.OnIncumbent != nil {
		st.opts.OnIncumbent(obj, x)
	}
}

// stop halts the search: the global bound is tightened with everything
// still queued or in flight, and all waiting workers are released.
// Callers must hold st.mu.
func (st *parState) stop(status Status) {
	if st.stopped {
		return
	}
	st.stopped = true
	st.res.Status = status
	bound := st.res.Objective
	if st.bestX == nil {
		bound = math.Inf(-1)
	}
	for _, nd := range *st.open {
		bound = math.Max(bound, nd.bound)
	}
	for _, nd := range st.dive {
		bound = math.Max(bound, nd.bound)
	}
	for _, b := range st.inflight {
		bound = math.Max(bound, b)
	}
	if bound < st.res.Bound {
		st.res.Bound = bound
	}
	st.cond.Broadcast()
}

func worker(id int, p *Problem, opts Options, st *parState, deadline time.Time, isInt, isCeilVar map[int]bool) {
	for {
		st.mu.Lock()
		var nd *node
		for {
			if st.stopped || st.err != nil {
				st.mu.Unlock()
				return
			}
			if st.bestX != nil && len(st.dive) > 0 {
				// First incumbent found: drain the dive stack into the
				// best-bound heap, as the serial engine does.
				for _, d := range st.dive {
					heap.Push(st.open, d)
				}
				st.dive = st.dive[:0]
			}
			if st.bestX == nil && len(st.dive) > 0 {
				nd = st.dive[len(st.dive)-1]
				st.dive = st.dive[:len(st.dive)-1]
				break
			}
			if st.open.Len() > 0 {
				nd = heap.Pop(st.open).(*node)
				if len(st.inflight) == 0 && nd.bound < st.res.Bound {
					// Only safe when nothing is in flight: an in-flight
					// node may still push children with larger bounds.
					st.res.Bound = nd.bound
				}
				break
			}
			if len(st.inflight) == 0 {
				// Tree exhausted.
				st.cond.Broadcast()
				st.mu.Unlock()
				return
			}
			st.cond.Wait()
		}
		if st.explored >= opts.MaxNodes {
			heap.Push(st.open, nd) // keep its bound visible to stop's sweep
			st.stop(statusOnLimit(st.bestX))
			st.mu.Unlock()
			return
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			heap.Push(st.open, nd)
			st.stop(statusOnLimit(st.bestX))
			st.mu.Unlock()
			return
		}
		// Effective proven bound: live frontier floored by dropped
		// subtrees, unless the external cap alone certifies the incumbent
		// (mirrors the serial engine).
		eff := math.Max(st.lostBound, math.Min(nd.bound, st.res.Bound))
		if opts.BoundCap > 0 {
			eff = math.Min(eff, opts.BoundCap)
		}
		if st.bestX != nil && eff <= st.res.Objective+opts.RelGap*math.Abs(st.res.Objective)+opts.IntTol {
			heap.Push(st.open, nd)
			st.stop(Optimal)
			st.mu.Unlock()
			return
		}
		st.explored++
		nodeID := st.explored
		st.inflight[id] = nd.bound
		hadIncumbent := st.bestX != nil
		incumbentObj := st.res.Objective
		st.mu.Unlock()

		// Solve the node LP outside the lock.
		q := p.LP.Clone()
		for _, ch := range nd.changes {
			q.SetBounds(ch.v, ch.lo, ch.hi)
		}
		lpOpts := opts.LPOpts
		if opts.WarmNodeLP {
			lpOpts.WarmBasis = nd.warm
		}
		if nd.depth == 0 && opts.WarmBasis != nil {
			lpOpts.WarmBasis = opts.WarmBasis
		}
		// Same budget inheritance as the serial engine: an interrupted node
		// LP returns IterLimit and is dropped, keeping TimeLimit honest.
		if lpOpts.Deadline.IsZero() {
			lpOpts.Deadline = deadline
		}
		sol, err := q.Solve(lpOpts)

		st.mu.Lock()
		delete(st.inflight, id)
		if err == nil && nd.depth == 0 {
			st.res.RootBasis = sol.Basis
			st.res.RootWarmed = sol.Warm
		}
		if err != nil {
			if st.err == nil {
				st.err = err
			}
			st.cond.Broadcast()
			st.mu.Unlock()
			return
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			// The in-hand node left inflight above, so stop's sweep no longer
			// sees its bound; fold it into lostBound like any dropped node.
			st.dropped = true
			st.lostBound = math.Max(st.lostBound, nd.bound)
			st.stop(statusOnLimit(st.bestX))
			st.mu.Unlock()
			return
		}
		finishNode := func() {
			st.cond.Broadcast()
			st.mu.Unlock()
		}
		switch sol.Status {
		case lp.Infeasible:
			if nd.depth == 0 {
				st.rootInfeasible = true
			}
			finishNode()
			continue
		case lp.Unbounded:
			if st.err == nil {
				st.err = fmt.Errorf("ilp: LP relaxation unbounded")
			}
			finishNode()
			return
		case lp.IterLimit:
			// Unexplorable within the pivot or wall-clock budget; drop the
			// node conservatively and fold its bound into lostBound.
			st.dropped = true
			st.lostBound = math.Max(st.lostBound, nd.bound)
			finishNode()
			continue
		}
		if sol.Objective <= st.res.Objective+opts.IntTol {
			finishNode()
			continue // pruned by bound
		}

		// Pick the branch variable: the first fractional priority variable,
		// else the most fractional non-auxiliary integer variable.
		branchVar := -1
		for _, v := range opts.PriorityVars {
			f := sol.X[v] - math.Floor(sol.X[v])
			if math.Min(f, 1-f) > opts.IntTol {
				branchVar = v
				break
			}
		}
		if branchVar == -1 {
			worst := opts.IntTol
			for _, v := range p.IntVars {
				if isCeilVar[v] {
					continue
				}
				f := sol.X[v] - math.Floor(sol.X[v])
				frac := math.Min(f, 1-f)
				if frac > worst {
					worst, branchVar = frac, v
				}
			}
		}
		if opts.Trace != nil {
			frac := -1.0
			if branchVar >= 0 {
				f := sol.X[branchVar] - math.Floor(sol.X[branchVar])
				frac = math.Min(f, 1-f)
			}
			fmt.Fprintf(opts.Trace, "node=%d depth=%d lp=%v obj=%.3f branch=%d frac=%.3f iters=%d\n",
				nodeID, nd.depth, sol.Status, sol.Objective, branchVar, frac, sol.Iters)
		}
		if branchVar == -1 {
			// All decision variables integral: complete the ceiling-defined
			// auxiliaries by rounding up, as in the serial engine.
			cand := append([]float64(nil), sol.X...)
			ok := true
			for _, v := range opts.CeilVars {
				up := math.Ceil(cand[v] - opts.IntTol)
				_, hi := q.Bounds(v)
				if up > hi+opts.IntTol {
					ok = false
					break
				}
				cand[v] = up
			}
			if ok && p.LP.Feasible(cand, 1e-7) {
				st.accept(p.LP.Eval(cand), cand)
				finishNode()
				continue
			}
			// Rounding failed: branch on a fractional ceiling variable
			// instead of dropping the subtree (see the serial engine).
			branchVar = fractionalCeilVar(sol.X, opts)
			if branchVar == -1 {
				finishNode()
				continue
			}
		}

		// Primal heuristics run outside the lock (the caller's heuristic may
		// itself solve LPs); candidates are validated here and accepted
		// under the lock below.
		var heurCands [][]float64
		if !hadIncumbent || nodeID%20 == 0 {
			st.mu.Unlock()
			if rx, ok := roundAndCheck(p, q, sol.X, isInt, opts.IntTol); ok {
				heurCands = append(heurCands, rx)
			}
			if opts.Heuristic != nil {
				if hx := opts.Heuristic(sol.X); hx != nil && p.LP.Feasible(hx, 1e-7) {
					integral := true
					for _, v := range p.IntVars {
						if math.Abs(hx[v]-math.Round(hx[v])) > opts.IntTol {
							integral = false
							break
						}
					}
					if integral {
						heurCands = append(heurCands, hx)
					}
				}
			}
			st.mu.Lock()
			for _, c := range heurCands {
				st.accept(p.LP.Eval(c), c)
			}
			incumbentObj = st.res.Objective
			if sol.Objective <= incumbentObj+opts.IntTol {
				finishNode()
				continue // an incumbent arrived while we were heuristicking
			}
		}

		v := sol.X[branchVar]
		lo, hi := q.Bounds(branchVar)
		var childWarm *lp.Basis
		if opts.WarmNodeLP {
			childWarm = sol.Basis // shared by both children, read-only
		}
		down := &node{changes: append(append([]boundChange{}, nd.changes...), boundChange{branchVar, lo, math.Floor(v)}), bound: sol.Objective, depth: nd.depth + 1, warm: childWarm}
		up := &node{changes: append(append([]boundChange{}, nd.changes...), boundChange{branchVar, math.Ceil(v), hi}), bound: sol.Objective, depth: nd.depth + 1, warm: childWarm}
		if st.bestX == nil {
			// Dive up-first for binary-like variables (see the serial
			// engine for the rationale); LIFO, preferred child pushed last.
			if hi-lo <= 1 || v-math.Floor(v) >= 0.5 {
				st.dive = append(st.dive, down, up)
			} else {
				st.dive = append(st.dive, up, down)
			}
		} else {
			heap.Push(st.open, down)
			heap.Push(st.open, up)
		}
		finishNode()
	}
}
