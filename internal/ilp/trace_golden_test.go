package ilp

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sfp/internal/model"
	"sfp/internal/traffic"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden traces")

// iterRe strips the pivot-count field: the node order, LP objective, and
// branching decisions are the determinism contract; the simplex pivot count
// is an implementation detail the sparse kernels are allowed to change.
var iterRe = regexp.MustCompile(` iters=\d+`)

func normalizeTrace(s string) string {
	return iterRe.ReplaceAllString(s, "")
}

// goldenProblems are the fixed instances whose serial node traces are pinned
// in testdata/. They cover a pure knapsack and a real placement encode.
func goldenProblems(t testing.TB) map[string]*Problem {
	rng := rand.New(rand.NewSource(17))
	n := 14
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = rng.Float64()*20 + 1
		weights[i] = rng.Float64()*10 + 1
	}
	kp := knapsack(values, weights, sum(weights)/2.5)

	in := &model.Instance{
		Switch:   model.SwitchConfig{Stages: 4, BlocksPerStage: 4, EntriesPerBlock: 500, CapacityGbps: 60},
		NumTypes: 4,
		Recirc:   1,
		Chains:   traffic.GenChains(rand.New(rand.NewSource(23)), 5, traffic.ChainParams{MeanLen: 3, NumTypes: 4}),
	}
	enc, err := model.Build(in, model.BuildOptions{Consolidate: true, ExactConsistency: true})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Problem{
		"knapsack14": kp,
		"placement5": {LP: enc.Prob, IntVars: enc.IntVars},
	}
}

// TestSerialTraceGolden pins the Workers=1 node trace to the trace the
// pre-fast-path serial solver produced (testdata/*.golden, generated at the
// seed commit with -update-golden): the sparse simplex, warm-started node
// LPs, and the parallel engine at one worker must all reproduce the same
// node order, LP objectives, and branching decisions bit for bit.
func TestSerialTraceGolden(t *testing.T) {
	for name, prob := range goldenProblems(t) {
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			res, err := Solve(prob, Options{Trace: &sb, MaxNodes: 400})
			if err != nil {
				t.Fatal(err)
			}
			got := normalizeTrace(sb.String())
			path := filepath.Join("testdata", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d nodes, status %v)", path, res.Nodes, res.Status)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden at the seed commit): %v", err)
			}
			if got != string(want) {
				gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
				for i := 0; i < len(gl) && i < len(wl); i++ {
					if gl[i] != wl[i] {
						t.Errorf("trace diverges at node line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
						break
					}
				}
				t.Fatalf("node trace differs from pre-fast-path serial trace (%d vs %d lines)", len(gl), len(wl))
			}
		})
	}
}
