// Package faultnet injects deterministic, seed-driven faults into the
// control-plane transport so the p4rt client/server hardening and the
// core rollback paths can be tested against an unreliable network
// without flaky, timing-dependent tests.
//
// A Schedule is a set of one-shot faults, each addressed by (connection
// index, direction, operation index): "on the 3rd accepted connection,
// reset on the 2nd write". Wrap a net.Conn, a net.Listener (server
// side), or a dial function (client side) with a shared Schedule; faults
// fire exactly once, in whatever order the wrapped traffic reaches them.
// Everything is driven by explicit fault lists or a seeded generator —
// two runs with the same seed inject identically.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected is wrapped by every transport error this package injects,
// so tests can errors.Is-assert a failure was ours and not a real one.
var ErrInjected = errors.New("faultnet: injected fault")

// Op selects the direction an operation count applies to.
type Op int

// Directions.
const (
	OpRead Op = iota
	OpWrite
)

func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Kind enumerates the injectable fault types.
type Kind int

// Fault kinds.
const (
	// Reset closes the underlying connection and fails the operation,
	// modeling an abrupt connection reset.
	Reset Kind = iota
	// Stall sleeps Delay before performing the operation, modeling a
	// hung peer; with a deadline set, the operation then times out.
	Stall
	// Truncate (write side) emits only Bytes bytes of the buffer and
	// then closes the connection, modeling a mid-frame cut. On the read
	// side it behaves like Reset.
	Truncate
)

func (k Kind) String() string {
	switch k {
	case Reset:
		return "reset"
	case Stall:
		return "stall"
	case Truncate:
		return "truncate"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one scheduled one-shot fault.
type Fault struct {
	// Conn is the 0-based index of the wrapped connection (accept or
	// dial order within the Schedule).
	Conn int
	// Op is the direction whose operation count triggers the fault.
	Op Op
	// Index is the 0-based operation count within that direction.
	Index int
	// Kind is what happens.
	Kind Kind
	// Delay is the Stall duration.
	Delay time.Duration
	// Bytes is how many bytes a Truncate lets through.
	Bytes int
}

// Schedule is a concurrency-safe set of one-shot faults shared by all
// connections of one wrapped endpoint.
type Schedule struct {
	mu     sync.Mutex
	faults []Fault
	fired  []bool
	conns  int
}

// NewSchedule builds a schedule from explicit faults.
func NewSchedule(faults ...Fault) *Schedule {
	return &Schedule{faults: faults, fired: make([]bool, len(faults))}
}

// Random draws n faults uniformly over the first conns connections and
// the first ops operations of each direction. Stalls sleep stall;
// truncations cut after 1–5 bytes. The same seed yields the same faults.
func Random(seed int64, n, conns, ops int, stall time.Duration) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = Fault{
			Conn:  rng.Intn(conns),
			Op:    Op(rng.Intn(2)),
			Index: rng.Intn(ops),
			Kind:  Kind(rng.Intn(3)),
			Delay: stall,
			Bytes: 1 + rng.Intn(5),
		}
	}
	return NewSchedule(faults...)
}

// Fired reports how many faults have triggered so far.
func (s *Schedule) Fired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, f := range s.fired {
		if f {
			n++
		}
	}
	return n
}

// nextConn assigns the next connection index.
func (s *Schedule) nextConn() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.conns
	s.conns++
	return idx
}

// take fires and returns the matching un-fired fault, if any.
func (s *Schedule) take(conn int, op Op, index int) *Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, f := range s.faults {
		if !s.fired[i] && f.Conn == conn && f.Op == op && f.Index == index {
			s.fired[i] = true
			return &s.faults[i]
		}
	}
	return nil
}

// Conn wraps a net.Conn with fault injection.
type Conn struct {
	net.Conn
	sched  *Schedule
	idx    int
	reads  int
	writes int
}

// WrapConn attaches a connection to a schedule, assigning it the next
// connection index.
func WrapConn(c net.Conn, s *Schedule) *Conn {
	return &Conn{Conn: c, sched: s, idx: s.nextConn()}
}

// injected formats the error for a fired fault.
func (c *Conn) injected(f *Fault) error {
	return fmt.Errorf("conn %d %s %d: %s: %w", c.idx, f.Op, f.Index, f.Kind, ErrInjected)
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	f := c.sched.take(c.idx, OpRead, c.reads)
	c.reads++
	if f != nil {
		switch f.Kind {
		case Stall:
			time.Sleep(f.Delay)
		default: // Reset, Truncate
			c.Conn.Close()
			return 0, c.injected(f)
		}
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	f := c.sched.take(c.idx, OpWrite, c.writes)
	c.writes++
	if f != nil {
		switch f.Kind {
		case Stall:
			time.Sleep(f.Delay)
		case Truncate:
			n := f.Bytes
			if n > len(p) {
				n = len(p)
			}
			if n > 0 {
				c.Conn.Write(p[:n])
			}
			c.Conn.Close()
			return n, c.injected(f)
		default: // Reset
			c.Conn.Close()
			return 0, c.injected(f)
		}
	}
	return c.Conn.Write(p)
}

// Listener wraps a net.Listener so every accepted connection injects
// faults from the schedule (server-side injection).
type Listener struct {
	net.Listener
	sched *Schedule
}

// NewListener wraps an inner listener.
func NewListener(inner net.Listener, s *Schedule) *Listener {
	return &Listener{Listener: inner, sched: s}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.sched), nil
}

// Dialer returns a dial function that injects faults from the schedule
// into every dialed connection (client-side injection; plugs into
// p4rt.ClientOptions.Dialer).
func Dialer(s *Schedule, timeout time.Duration) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return WrapConn(c, s), nil
	}
}
