package faultnet

import (
	"fmt"
	"math/rand"
	"sync"

	"sfp/internal/nf"
	"sfp/internal/p4rt"
)

// FlakyTarget decorates a p4rt.Target with deterministic transient
// failures: selected fallible calls (by global call index, counting only
// the error-returning RPCs) fail with an error wrapping
// p4rt.ErrUnavailable — which the server surfaces as Response.Transient
// and the hardened client therefore retries — without executing the
// underlying operation. Read-only accessors (Layout, Stats) cannot fail
// in the Target interface and are passed through.
type FlakyTarget struct {
	inner p4rt.Target

	mu     sync.Mutex
	calls  int
	failAt map[int]bool
}

// NewFlakyTarget fails the given 0-based fallible-call indexes.
func NewFlakyTarget(inner p4rt.Target, failCalls ...int) *FlakyTarget {
	m := make(map[int]bool, len(failCalls))
	for _, i := range failCalls {
		m[i] = true
	}
	return &FlakyTarget{inner: inner, failAt: m}
}

// RandomFlaky fails n of the first window fallible calls, drawn from the
// seed. The same seed yields the same failure pattern.
func RandomFlaky(inner p4rt.Target, seed int64, n, window int) *FlakyTarget {
	rng := rand.New(rand.NewSource(seed))
	fails := make([]int, 0, n)
	for len(fails) < n && len(fails) < window {
		i := rng.Intn(window)
		dup := false
		for _, f := range fails {
			dup = dup || f == i
		}
		if !dup {
			fails = append(fails, i)
		}
	}
	return NewFlakyTarget(inner, fails...)
}

// Calls reports how many fallible calls reached the target so far.
func (t *FlakyTarget) Calls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}

// gate counts one fallible call and decides whether to fail it.
func (t *FlakyTarget) gate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := t.calls
	t.calls++
	if t.failAt[idx] {
		return fmt.Errorf("faultnet: transient failure at call %d: %w", idx, p4rt.ErrUnavailable)
	}
	return nil
}

// InstallPhysical implements p4rt.Target.
func (t *FlakyTarget) InstallPhysical(stage int, typ nf.Type, capacity int) error {
	if err := t.gate(); err != nil {
		return err
	}
	return t.inner.InstallPhysical(stage, typ, capacity)
}

// Allocate implements p4rt.Target.
func (t *FlakyTarget) Allocate(sfc *p4rt.SFCSpec) ([]p4rt.PlacementSpec, int, error) {
	if err := t.gate(); err != nil {
		return nil, 0, err
	}
	return t.inner.Allocate(sfc)
}

// AllocateAt implements p4rt.Target.
func (t *FlakyTarget) AllocateAt(sfc *p4rt.SFCSpec, placements []p4rt.PlacementSpec) (int, error) {
	if err := t.gate(); err != nil {
		return 0, err
	}
	return t.inner.AllocateAt(sfc, placements)
}

// Deallocate implements p4rt.Target.
func (t *FlakyTarget) Deallocate(tenant uint32) error {
	if err := t.gate(); err != nil {
		return err
	}
	return t.inner.Deallocate(tenant)
}

// Inject implements p4rt.Target.
func (t *FlakyTarget) Inject(wire []byte, nowNs float64) (p4rt.InjectResult, error) {
	if err := t.gate(); err != nil {
		return p4rt.InjectResult{}, err
	}
	return t.inner.Inject(wire, nowNs)
}

// RemovePhysical implements p4rt.PhysicalRemover by forwarding to the
// inner target. It is NOT gated: the server only calls it while rolling a
// failed batch back, and injecting a second fault mid-rollback would test
// the inner target, not the protocol.
func (t *FlakyTarget) RemovePhysical(stage int, typ nf.Type) error {
	r, ok := t.inner.(p4rt.PhysicalRemover)
	if !ok {
		return fmt.Errorf("faultnet: inner target cannot remove physical NFs")
	}
	return r.RemovePhysical(stage, typ)
}

// TenantSnapshot implements p4rt.TenantSnapshotter by forwarding to the
// inner target, ungated (used only to journal a deallocate's undo).
func (t *FlakyTarget) TenantSnapshot(tenant uint32) (func() error, error) {
	s, ok := t.inner.(p4rt.TenantSnapshotter)
	if !ok {
		return nil, fmt.Errorf("faultnet: inner target cannot snapshot tenants")
	}
	return s.TenantSnapshot(tenant)
}

// FlakyTarget deliberately does NOT implement p4rt.BatchAllocator: batches
// dispatched through it take the server's per-op path, so every sub-op is
// individually gated by the fault schedule.

// DumpState implements p4rt.StateDumper: gated like other fallible RPCs
// (reconciliation must cope with a transiently unreadable switch), then
// forwarded. Existing fault schedules are unaffected — they never dump.
func (t *FlakyTarget) DumpState() (*p4rt.StateDump, error) {
	d, ok := t.inner.(p4rt.StateDumper)
	if !ok {
		return nil, fmt.Errorf("faultnet: inner target cannot dump state")
	}
	if err := t.gate(); err != nil {
		return nil, err
	}
	return d.DumpState()
}

// Layout implements p4rt.Target.
func (t *FlakyTarget) Layout() [][]string { return t.inner.Layout() }

// Stats implements p4rt.Target.
func (t *FlakyTarget) Stats() p4rt.Stats { return t.inner.Stats() }
