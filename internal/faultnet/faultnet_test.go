package faultnet

import (
	"errors"
	"net"
	"testing"
	"time"

	"sfp/internal/nf"
	"sfp/internal/p4rt"
)

// pipePair builds a wrapped client end and a raw server end.
func pipePair(s *Schedule) (*Conn, net.Conn) {
	a, b := net.Pipe()
	return WrapConn(a, s), b
}

func TestResetOnWrite(t *testing.T) {
	s := NewSchedule(Fault{Conn: 0, Op: OpWrite, Index: 1, Kind: Reset})
	c, peer := pipePair(s)
	go func() {
		buf := make([]byte, 16)
		peer.Read(buf)
	}()
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("write 0 failed: %v", err)
	}
	_, err := c.Write([]byte("boom"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write 1 error = %v, want injected", err)
	}
	if s.Fired() != 1 {
		t.Errorf("fired = %d, want 1", s.Fired())
	}
	// The fault is one-shot and the conn is closed.
	if _, err := c.Write([]byte("x")); err == nil {
		t.Error("write on closed conn succeeded")
	}
}

func TestTruncateLetsPrefixThrough(t *testing.T) {
	s := NewSchedule(Fault{Conn: 0, Op: OpWrite, Index: 0, Kind: Truncate, Bytes: 3})
	c, peer := pipePair(s)
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := peer.Read(buf)
		got <- buf[:n]
	}()
	n, err := c.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write = (%d, %v), want (3, injected)", n, err)
	}
	if b := <-got; string(b) != "abc" {
		t.Errorf("peer read %q, want %q", b, "abc")
	}
}

func TestStallDelaysRead(t *testing.T) {
	s := NewSchedule(Fault{Conn: 0, Op: OpRead, Index: 0, Kind: Stall, Delay: 60 * time.Millisecond})
	c, peer := pipePair(s)
	go peer.Write([]byte("hi"))
	start := time.Now()
	buf := make([]byte, 2)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("read returned after %v, want ≥ 50ms stall", d)
	}
}

func TestConnIndexingAcrossListener(t *testing.T) {
	// Fault addressed to conn 1 must not hit conn 0.
	s := NewSchedule(Fault{Conn: 1, Op: OpWrite, Index: 0, Kind: Reset})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := NewListener(ln, s)
	defer fln.Close()
	go func() {
		for {
			c, err := fln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write([]byte("x")) // triggers the fault on conn 1 only
				buf := make([]byte, 1)
				c.Read(buf)
			}(c)
		}
	}()
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		_, rerr := c.Read(buf)
		if i == 0 && rerr != nil {
			t.Errorf("conn 0 read failed: %v", rerr)
		}
		if i == 1 && rerr == nil {
			t.Error("conn 1 read succeeded, want reset")
		}
		c.Close()
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := Random(42, 5, 3, 10, time.Millisecond)
	b := Random(42, 5, 3, 10, time.Millisecond)
	for i := range a.faults {
		if a.faults[i] != b.faults[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a.faults[i], b.faults[i])
		}
	}
	c := Random(43, 5, 3, 10, time.Millisecond)
	same := true
	for i := range a.faults {
		same = same && a.faults[i] == c.faults[i]
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

// nullTarget is a minimal successful target.
type nullTarget struct{}

func (nullTarget) InstallPhysical(int, nf.Type, int) error { return nil }
func (nullTarget) Allocate(*p4rt.SFCSpec) ([]p4rt.PlacementSpec, int, error) {
	return nil, 1, nil
}
func (nullTarget) AllocateAt(*p4rt.SFCSpec, []p4rt.PlacementSpec) (int, error) { return 1, nil }
func (nullTarget) Deallocate(uint32) error                                     { return nil }
func (nullTarget) Layout() [][]string                                          { return nil }
func (nullTarget) Stats() p4rt.Stats                                           { return p4rt.Stats{} }
func (nullTarget) Inject([]byte, float64) (p4rt.InjectResult, error) {
	return p4rt.InjectResult{}, nil
}

func TestFlakyTargetTransientErrors(t *testing.T) {
	ft := NewFlakyTarget(nullTarget{}, 0, 2)
	if err := ft.Deallocate(1); !errors.Is(err, p4rt.ErrUnavailable) {
		t.Errorf("call 0 error = %v, want unavailable", err)
	}
	if err := ft.Deallocate(1); err != nil {
		t.Errorf("call 1 error = %v, want nil", err)
	}
	if err := ft.InstallPhysical(0, nf.Firewall, 10); !errors.Is(err, p4rt.ErrUnavailable) {
		t.Errorf("call 2 error = %v, want unavailable", err)
	}
	if ft.Calls() != 3 {
		t.Errorf("calls = %d, want 3", ft.Calls())
	}
	// Infallible accessors never count or fail.
	ft.Layout()
	ft.Stats()
	if ft.Calls() != 3 {
		t.Errorf("calls after accessors = %d, want 3", ft.Calls())
	}
}
