package faultnet

import "fmt"

// Crash is the panic payload KillPoints throws to simulate a controller
// dying at a specific point inside a mutating transition. The convergence
// harness recovers it (and only it), abandons the crashed controller, and
// restarts from the write-ahead journal.
type Crash struct {
	// Point names the hook at which the controller died.
	Point string
	// Index is the 0-based hook invocation count at the kill.
	Index int
}

// Error makes a *Crash readable when it escapes a test harness.
func (c *Crash) Error() string {
	return fmt.Sprintf("faultnet: controller killed at hook %d (%s)", c.Index, c.Point)
}

// KillPoints kills the controller at the n-th hook invocation: its Hook
// method plugs into core.Options.Hook and panics with *Crash when the
// configured index fires. Iterating n from 0 until a run sees no crash
// exercises every crash point a scenario has.
type KillPoints struct {
	at    int
	count int
	// Killed records the crash that fired, nil until then.
	Killed *Crash
}

// KillAt arms a kill at the n-th (0-based) hook invocation. Negative
// never fires.
func KillAt(n int) *KillPoints {
	return &KillPoints{at: n}
}

// Count reports how many hook points have fired so far.
func (k *KillPoints) Count() int { return k.count }

// Hook is the core.Options.Hook implementation.
func (k *KillPoints) Hook(point string) {
	i := k.count
	k.count++
	if i == k.at && k.at >= 0 {
		k.Killed = &Crash{Point: point, Index: i}
		panic(k.Killed)
	}
}

// Crashed runs fn, converting a *Crash panic into a return value. Any
// other panic propagates — only simulated kills are absorbed.
func Crashed(fn func()) (crash *Crash) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(*Crash)
			if !ok {
				panic(r)
			}
			crash = c
		}
	}()
	fn()
	return nil
}
