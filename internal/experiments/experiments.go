// Package experiments regenerates every figure of the paper's evaluation
// (§VI): the data-plane throughput/latency comparisons against the DPDK
// baseline (Figs. 4–5), the placement quality and resource-utilization
// sweeps (Figs. 6–7), the solver runtime and early-termination studies
// (Figs. 8–9), the algorithm comparison (Fig. 10), and runtime update
// (Fig. 11). Each experiment returns a Table whose rows are the series the
// paper plots; EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"sfp/internal/model"
	"sfp/internal/traffic"
)

// Table is one experiment's output: a header row and numeric rows.
type Table struct {
	// Title identifies the figure ("Fig. 6a ...").
	Title string
	// Columns names each value column; the first is the x axis.
	Columns []string
	// Rows are the data points.
	Rows [][]float64
	// Notes carry caveats (scale reductions, time caps hit, seeds).
	Notes []string
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# note: %s\n", n)
	}
	fmt.Fprintln(&b, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%.4g", v)
		}
		fmt.Fprintln(&b, strings.Join(parts, "\t"))
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Scale sizes the experiments. The paper's exact settings are expensive on
// a from-scratch simplex (Gurobi they are not), so Quick is the default and
// Paper approaches the published parameters.
type Scale struct {
	// Seeds is how many independent datasets each point averages over
	// (the paper uses five).
	Seeds int
	// Fig6Ls sweeps the number of candidate SFCs.
	Fig6Ls []int
	// Fig7Recircs sweeps allowed recirculation counts.
	Fig7Recircs []int
	// Fig7L is the candidate count for the recirculation study.
	Fig7L int
	// Fig7ChainLen is the fixed chain length (paper: 8).
	Fig7ChainLen int
	// Fig8IPLs / Fig8ApproxLs sweep solver-runtime instance sizes.
	Fig8IPLs, Fig8ApproxLs []int
	// Fig8IPTimeCapSec caps each IP solve (the explosion is the point;
	// capped points are flagged in Notes).
	Fig8IPTimeCapSec float64
	// Fig9L is the instance size for early termination.
	Fig9L int
	// Fig9LimitsSec is the runtime-limit sweep.
	Fig9LimitsSec []float64
	// Fig10Ls sweeps the algorithm comparison.
	Fig10Ls []int
	// Fig10IPTimeCapSec caps the IP reference per point.
	Fig10IPTimeCapSec float64
	// Fig10Switch scales the switch down proportionally to the Fig10Ls so
	// the contention regime of the paper's L=40..60 runs (capacity and
	// memory binding) is preserved at tractable instance sizes.
	Fig10Switch model.SwitchConfig
	// Fig11Switch does the same for the runtime-update episode: the
	// initially allocated set must saturate the switch so refills matter.
	Fig11Switch model.SwitchConfig
	// Fig11DropRates sweeps the fraction of live SFCs departing.
	Fig11DropRates []float64
	// Fig11Allocated / Fig11Candidates size the update experiment
	// (paper: 20 allocated, 50 candidates).
	Fig11Allocated, Fig11Candidates int
	// Recirc is the default allowed recirculation (paper: 2 or 3).
	Recirc int
	// MeanChainLen is J̄ (paper: 5).
	MeanChainLen int
	// SolverWorkers sets the control-plane solver worker count for the
	// placement figures: branch-and-bound workers for SFP-IP and concurrent
	// recirculation trials for SFP-Appro (0 or 1 = serial reference).
	// Results for a fixed seed are identical at any worker count.
	SolverWorkers int
	// ChurnSeedTenants / ChurnArrivals size the provisioning-churn
	// experiment (tenants provisioned up front, then arrivals driven
	// through Arrive vs ArriveMany). Zero means Churn's defaults.
	ChurnSeedTenants, ChurnArrivals int
	// ReplanScaleLives sweeps the live-tenant counts for the replan-scaling
	// experiment (incremental vs full-rebuild replan latency). Zero means
	// ReplanScale's defaults.
	ReplanScaleLives []int
	// FullSolveLs sweeps candidate counts for the full-solve scale-out
	// experiment (Lagrangian decomposition vs time-capped exact IP). Zero
	// means FullSolve's defaults.
	FullSolveLs []int
	// FullSolveExactCapSec caps each exact-IP reference solve in the
	// full-solve experiment (0 = FullSolve's default).
	FullSolveExactCapSec float64
	// LifecycleTarget is the steady-state live-tenant population of the
	// lifecycle churn experiment (0 = Lifecycle's default).
	LifecycleTarget int
	// LifecycleLoads sweeps the offered-load multiplier (arrival rate ÷
	// the rate that holds the population at LifecycleTarget). Zero means
	// Lifecycle's defaults.
	LifecycleLoads []float64
}

// QuickScale returns a configuration that regenerates every figure's shape
// in a couple of minutes total.
func QuickScale() Scale {
	return Scale{
		Seeds:                2,
		Fig6Ls:               []int{10, 20, 30},
		Fig7Recircs:          []int{0, 1, 2, 3},
		Fig7L:                15,
		Fig7ChainLen:         8,
		Fig8IPLs:             []int{2, 4, 6},
		Fig8ApproxLs:         []int{10, 20, 30},
		Fig8IPTimeCapSec:     20,
		Fig9L:                8,
		Fig9LimitsSec:        []float64{0.05, 0.5, 2, 5, 10},
		Fig10Ls:              []int{10, 20, 30},
		Fig10IPTimeCapSec:    15,
		Fig10Switch:          model.SwitchConfig{Stages: 8, BlocksPerStage: 6, EntriesPerBlock: 1000, CapacityGbps: 110},
		Fig11Switch:          model.SwitchConfig{Stages: 8, BlocksPerStage: 20, EntriesPerBlock: 1000, CapacityGbps: 60},
		Fig11DropRates:       []float64{0.1, 0.25, 0.5, 0.75, 1.0},
		Fig11Allocated:       10,
		Fig11Candidates:      25,
		Recirc:               2,
		MeanChainLen:         5,
		ReplanScaleLives:     []int{250, 500, 1000},
		FullSolveLs:          []int{60, 120, 250},
		FullSolveExactCapSec: 5,
		LifecycleTarget:      1500,
		LifecycleLoads:       []float64{0.6, 0.8, 1.0, 1.2, 1.5},
	}
}

// PaperScale approaches the published parameters (minutes to hours).
func PaperScale() Scale {
	return Scale{
		Seeds:                5,
		Fig6Ls:               []int{10, 20, 30, 40, 50},
		Fig7Recircs:          []int{0, 1, 2, 3, 4, 5, 6},
		Fig7L:                15,
		Fig7ChainLen:         8,
		Fig8IPLs:             []int{2, 4, 6, 8, 10},
		Fig8ApproxLs:         []int{10, 20, 30, 40, 50},
		Fig8IPTimeCapSec:     120,
		Fig9L:                12,
		Fig9LimitsSec:        []float64{0.05, 0.5, 2, 5, 10, 30, 60},
		Fig10Ls:              []int{5, 10, 15, 20},
		Fig10IPTimeCapSec:    60,
		Fig10Switch:          model.SwitchConfig{Stages: 8, BlocksPerStage: 10, EntriesPerBlock: 1000, CapacityGbps: 150},
		Fig11Switch:          model.SwitchConfig{Stages: 8, BlocksPerStage: 20, EntriesPerBlock: 1000, CapacityGbps: 100},
		Fig11DropRates:       []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		Fig11Allocated:       20,
		Fig11Candidates:      50,
		Recirc:               2,
		MeanChainLen:         5,
		ReplanScaleLives:     []int{1000, 2000, 4000},
		FullSolveLs:          []int{1000, 2000, 4000},
		FullSolveExactCapSec: 30,
		LifecycleTarget:      20000,
		LifecycleLoads:       []float64{0.6, 0.8, 1.0, 1.2, 1.5, 2.0},
	}
}

// genInstanceSw is genInstance with an explicit switch configuration.
func genInstanceSw(seed int64, L, meanLen, recirc int, sw model.SwitchConfig) *model.Instance {
	in := genInstance(seed, L, meanLen, recirc)
	in.Switch = sw
	return in
}

// genInstance builds one control-plane instance per the paper's dataset
// description (§VI-A): I = 10 NF types, rules uniform in [100, 2100],
// long-tail bandwidth, the §VI-C switch.
func genInstance(seed int64, L, meanLen, recirc int) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	return &model.Instance{
		Switch:   model.DefaultSwitchConfig(),
		NumTypes: 10,
		Recirc:   recirc,
		Chains:   traffic.GenChains(rng, L, traffic.ChainParams{MeanLen: meanLen}),
	}
}

// genInstanceFixedLen is genInstance with exact chain length (Fig. 7).
func genInstanceFixedLen(seed int64, L, chainLen, recirc int) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	return &model.Instance{
		Switch:   model.DefaultSwitchConfig(),
		NumTypes: 10,
		Recirc:   recirc,
		Chains:   traffic.GenChainsFixedLen(rng, L, chainLen, traffic.ChainParams{MeanLen: chainLen}),
	}
}

// mean averages a slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
