package experiments

// Replan scaling: how incremental replan cost grows with the number of
// live tenants. The delta path (pinned-tenant-eliminated residual program,
// retained and patched across replans, warm-started root LP) should stay
// near-flat; the full-rebuild reference re-encodes every tenant per replan
// and grows superlinearly. This is the figure behind the BENCH_replan.json
// gate in scripts/check.sh.

import (
	"fmt"
	"time"

	"sfp/internal/model"
	"sfp/internal/placement"
)

// replanFleet builds a state with n live tenants pinned across an 8-stage
// switch sized so memory and backplane never bind — the measured cost is
// solver and encode work, not admission pressure. Mirrors the
// BenchmarkReplan* fleet in internal/placement.
func replanFleet(n int) (*model.Instance, *model.Assignment) {
	in := &model.Instance{
		Switch:   model.SwitchConfig{Stages: 8, BlocksPerStage: 4096, EntriesPerBlock: 1000, CapacityGbps: 1e6},
		NumTypes: 4,
		Recirc:   0,
	}
	for id := 1; id <= n; id++ {
		in.Chains = append(in.Chains, replanFleetChain(id))
	}
	a := model.NewAssignment(in)
	for i := range a.X {
		for s := range a.X[i] {
			a.X[i][s] = true
		}
	}
	for l, c := range in.Chains {
		base := c.ID % 6
		a.Stages[l] = []int{base, base + 1, base + 2}
	}
	return in, a
}

func replanFleetChain(id int) *model.Chain {
	return &model.Chain{ID: id, BandwidthGbps: 0.01, NFs: []model.ChainNF{
		{Type: 1 + id%4, Rules: 40},
		{Type: 1 + (id+1)%4, Rules: 40},
		{Type: 1 + (id+2)%4, Rules: 40},
	}}
}

// replanCycles measures arrive → replan → depart cycles on a fresh fleet
// and returns the best per-cycle time (min-of-N, as the bench gates use).
func replanCycles(n, cycles int, full bool) (time.Duration, error) {
	in, a := replanFleet(n)
	u, err := placement.NewUpdater(in, a, model.BuildOptions{Consolidate: true})
	if err != nil {
		return 0, err
	}
	// Warmup replan: builds (and, on the delta path, retains) the program.
	if _, err := u.Replan(placement.ReplanOptions{FullRebuild: full}); err != nil {
		return 0, err
	}
	best := time.Duration(0)
	for i := 0; i < cycles; i++ {
		id := n + 1 + i
		if err := u.Arrive(replanFleetChain(id)); err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := u.Replan(placement.ReplanOptions{FullRebuild: full}); err != nil {
			return 0, err
		}
		el := time.Since(start)
		if st := u.LastReplan(); st.Admitted != 1 {
			return 0, fmt.Errorf("replanscale: arrival %d not admitted at n=%d: %+v", id, n, st)
		}
		if err := u.Depart(id); err != nil {
			return 0, err
		}
		if best == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

// ReplanScale sweeps live-tenant counts and reports per-replan latency for
// the incremental delta path vs the full-rebuild reference. Rows are
// (live, delta_ms, full_ms, speedup).
func ReplanScale(sc Scale) (*Table, error) {
	lives := sc.ReplanScaleLives
	if len(lives) == 0 {
		lives = []int{250, 500, 1000}
	}
	tbl := &Table{
		Title:   "Replan scaling: incremental delta path vs full rebuild",
		Columns: []string{"live", "delta_ms", "full_ms", "speedup"},
		Notes: []string{
			"one arrive -> replan -> depart cycle per point (min of 3 for delta, 2 for full)",
			"delta = retained residual program, pinned tenants folded into RHS, warm-started root LP",
			"full = Build over every tenant + PinChain, re-encoded per replan (pre-optimization behavior)",
		},
	}
	for _, n := range lives {
		delta, err := replanCycles(n, 3, false)
		if err != nil {
			return nil, err
		}
		full, err := replanCycles(n, 2, true)
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if delta > 0 {
			speedup = float64(full) / float64(delta)
		}
		tbl.Rows = append(tbl.Rows, []float64{
			float64(n),
			float64(delta) / float64(time.Millisecond),
			float64(full) / float64(time.Millisecond),
			speedup,
		})
	}
	return tbl, nil
}
