package experiments

import "testing"

func TestReplanScaleShape(t *testing.T) {
	sc := QuickScale()
	sc.ReplanScaleLives = []int{40, 80}
	tbl, err := ReplanScale(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		if row[0] != float64(sc.ReplanScaleLives[i]) {
			t.Errorf("row %d live = %v, want %d", i, row[0], sc.ReplanScaleLives[i])
		}
		if row[1] <= 0 || row[2] <= 0 {
			t.Errorf("row %d timings = %v, %v; want > 0", i, row[1], row[2])
		}
		if row[3] <= 0 {
			t.Errorf("row %d speedup = %v, want > 0", i, row[3])
		}
	}
}
