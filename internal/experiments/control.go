package experiments

import (
	"fmt"

	"sfp/internal/model"
	"sfp/internal/placement"
)

// fig6Point solves one dataset with and without consolidation and returns
// (throughput, blockUtil, entryUtil) per variant.
func fig6Point(in *model.Instance, seed int64) (cons, frag [3]float64, err error) {
	resC, err := placement.SolveApprox(in, placement.ApproxOptions{
		Build: model.BuildOptions{Consolidate: true}, Seed: seed,
	})
	if err != nil {
		return cons, frag, err
	}
	resF, err := placement.SolveApprox(in, placement.ApproxOptions{
		Build: model.BuildOptions{Consolidate: false}, Seed: seed,
	})
	if err != nil {
		return cons, frag, err
	}
	cons = [3]float64{resC.Metrics.ThroughputGbps, resC.Metrics.BlockUtil, resC.Metrics.EntryUtil}
	frag = [3]float64{resF.Metrics.ThroughputGbps, resF.Metrics.BlockUtil, resF.Metrics.EntryUtil}
	return cons, frag, nil
}

// Fig6 reproduces the candidate-count sweep (Figs. 6a and 6b): throughput,
// block utilization and entry utilization of SFP against SFP without NF
// consolidation ("Baseline"), varying the number of SFC candidates.
func Fig6(scale Scale) (*Table, error) {
	t := &Table{
		Title: "Fig. 6: throughput and resource utilization vs number of SFC candidates (SFP vs no-consolidation baseline)",
		Columns: []string{
			"L",
			"sfp_gbps", "sfp_block_util", "sfp_entry_util",
			"base_gbps", "base_block_util", "base_entry_util",
		},
	}
	for _, L := range scale.Fig6Ls {
		var c0, c1, c2, f0, f1, f2 []float64
		for s := 0; s < scale.Seeds; s++ {
			in := genInstance(int64(100*L+s), L, scale.MeanChainLen, 3)
			cons, frag, err := fig6Point(in, int64(s))
			if err != nil {
				return nil, fmt.Errorf("experiments: fig6 L=%d seed=%d: %w", L, s, err)
			}
			c0, c1, c2 = append(c0, cons[0]), append(c1, cons[1]), append(c2, cons[2])
			f0, f1, f2 = append(f0, frag[0]), append(f1, frag[1]), append(f2, frag[2])
		}
		t.Rows = append(t.Rows, []float64{
			float64(L), mean(c0), mean(c1), mean(c2), mean(f0), mean(f1), mean(f2),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("averaged over %d datasets per point; S=8 B=20 E=1000 C=400Gbps I=10 Jbar=%d R<=3", scale.Seeds, scale.MeanChainLen),
		"paper shape: blocks saturate near B=20 early; throughput grows with L; consolidation wins on entry utilization")
	return t, nil
}

// Fig7 reproduces the recirculation sweep: allowing one recirculation
// lifts throughput; further recirculations plateau. Chains are fixed at
// length 8 on an 8-stage switch so a single pass is tight (§VI-C).
func Fig7(scale Scale) (*Table, error) {
	t := &Table{
		Title: "Fig. 7: throughput and resource utilization vs recirculation times (virtual pipeline K = 8..)",
		Columns: []string{
			"recirc",
			"sfp_gbps", "sfp_block_util", "sfp_entry_util",
			"base_gbps", "base_block_util", "base_entry_util",
		},
	}
	for _, R := range scale.Fig7Recircs {
		var c0, c1, c2, f0, f1, f2 []float64
		for s := 0; s < scale.Seeds; s++ {
			in := genInstanceFixedLen(int64(700+s), scale.Fig7L, scale.Fig7ChainLen, R)
			resC, err := placement.SolveApprox(in, placement.ApproxOptions{
				Build: model.BuildOptions{Consolidate: true}, Seed: int64(s),
			})
			if err != nil {
				return nil, err
			}
			resF, err := placement.SolveApprox(in, placement.ApproxOptions{
				Build: model.BuildOptions{Consolidate: false}, Seed: int64(s),
			})
			if err != nil {
				return nil, err
			}
			c0 = append(c0, resC.Metrics.ThroughputGbps)
			c1 = append(c1, resC.Metrics.BlockUtil)
			c2 = append(c2, resC.Metrics.EntryUtil)
			f0 = append(f0, resF.Metrics.ThroughputGbps)
			f1 = append(f1, resF.Metrics.BlockUtil)
			f2 = append(f2, resF.Metrics.EntryUtil)
		}
		t.Rows = append(t.Rows, []float64{
			float64(R), mean(c0), mean(c1), mean(c2), mean(f0), mean(f1), mean(f2),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("L=%d chains of exactly %d NFs; same dataset across recirculation budgets", scale.Fig7L, scale.Fig7ChainLen),
		"paper shape: R=0 strands length-8 chains; R=1 unlocks most throughput; R>1 plateaus")
	return t, nil
}
