package experiments

import (
	"strings"
	"testing"
)

// tinyScale keeps experiment tests fast while exercising every code path.
func tinyScale() Scale {
	s := QuickScale()
	s.Seeds = 1
	s.Fig6Ls = []int{8}
	s.Fig7Recircs = []int{0, 1}
	s.Fig7L = 5
	s.Fig8IPLs = []int{2}
	s.Fig8ApproxLs = []int{8}
	s.Fig8IPTimeCapSec = 5
	s.Fig9L = 4
	s.Fig9LimitsSec = []float64{0.01, 5}
	s.Fig10Ls = []int{4}
	s.Fig10IPTimeCapSec = 5
	s.Fig11DropRates = []float64{0.5}
	s.Fig11Allocated = 5
	s.Fig11Candidates = 12
	return s
}

func TestFig4Shape(t *testing.T) {
	tbl, err := Fig4(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		size, sfp, dpdk := row[0], row[1], row[3]
		if sfp < 99.9 {
			t.Errorf("%vB: SFP %v Gbps, want line rate", size, sfp)
		}
		if dpdk > sfp+1e-9 {
			t.Errorf("%vB: DPDK %v beats SFP %v", size, dpdk, sfp)
		}
	}
	// The headline: ≥10× pps gap at 64B, saturation at 1500B.
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	if first[1]/first[3] < 10 {
		t.Errorf("64B gap = %.1fx, want ≥10x", first[1]/first[3])
	}
	if last[3] < 99.9 {
		t.Errorf("1500B DPDK = %v, want saturation", last[3])
	}
}

func TestFig5Shape(t *testing.T) {
	tbl, err := Fig5(200)
	if err != nil {
		t.Fatal(err)
	}
	var sfp, recir, dpdk float64
	for _, row := range tbl.Rows {
		sfp += row[1]
		recir += row[2]
		dpdk += row[3]
	}
	n := float64(len(tbl.Rows))
	sfp, recir, dpdk = sfp/n, recir/n, dpdk/n
	if sfp < 300 || sfp > 380 {
		t.Errorf("SFP latency %v ns, want ≈341", sfp)
	}
	if d := recir - sfp; d < 20 || d > 60 {
		t.Errorf("recirculation overhead %v ns, want ≈35", d)
	}
	if dpdk < 2.5*sfp {
		t.Errorf("DPDK %v ns not ≈3x SFP %v ns", dpdk, sfp)
	}
}

func TestFig6Shape(t *testing.T) {
	tbl, err := Fig6(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		sfpE, baseE := row[3], row[6]
		if sfpE+1e-9 < baseE {
			t.Errorf("L=%v: consolidation entry util %v below baseline %v", row[0], sfpE, baseE)
		}
		if row[2] > 20+1e-9 || row[5] > 20+1e-9 {
			t.Errorf("L=%v: block util exceeds B=20", row[0])
		}
	}
}

func TestFig7Shape(t *testing.T) {
	tbl, err := Fig7(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Length-8 chains on an 8-stage switch: R=0 strands most chains
	// (random type order almost never fits one pass); R=1 must not lose
	// throughput.
	if tbl.Rows[1][1]+1e-9 < tbl.Rows[0][1] {
		t.Errorf("R=1 throughput %v below R=0 %v", tbl.Rows[1][1], tbl.Rows[0][1])
	}
}

func TestFig8Shape(t *testing.T) {
	tbl, err := Fig8(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[2] < 0 {
			t.Error("negative runtime")
		}
	}
}

func TestFig9Shape(t *testing.T) {
	tbl, err := Fig9(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Tightest limit yields zero; generous limit yields positive objective.
	if tbl.Rows[0][2] != 0 {
		t.Errorf("cold 10ms objective = %v, want 0", tbl.Rows[0][2])
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[2] <= 0 {
		t.Errorf("generous limit objective = %v, want > 0", last[2])
	}
	if last[4] < 0.999 {
		t.Errorf("frac of best = %v", last[4])
	}
}

func TestFig10Shape(t *testing.T) {
	tbl, err := Fig10(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		ip, ap, gr := row[1], row[2], row[3]
		if ap > ip+1e-6 {
			t.Errorf("L=%v: appro %v beats IP %v", row[0], ap, ip)
		}
		if gr <= 0 || ap <= 0 || ip <= 0 {
			t.Errorf("L=%v: zero throughput in (%v, %v, %v)", row[0], ip, ap, gr)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	tbl, err := Fig11(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[1]+1e-9 < row[2]*0.5 {
			t.Errorf("drop=%v: updated %v collapsed vs origin %v", row[0], row[1], row[2])
		}
	}
}

func TestTableWriteTo(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"x", "y"},
		Rows:    [][]float64{{1, 2.5}},
		Notes:   []string{"hello"},
	}
	var sb strings.Builder
	if _, err := tbl.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# demo", "# note: hello", "x\ty", "1\t2.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestOffloadSavings(t *testing.T) {
	sc := tinyScale()
	tbl, err := OffloadSavings(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(sc.Fig6Ls) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		gbps, saved, deployed := row[1], row[2], row[4]
		if deployed <= 0 {
			t.Errorf("L=%v: nothing deployed", row[0])
		}
		if gbps > 0 && saved <= 0 {
			t.Errorf("L=%v: offloaded %v Gbps but saved %v cores", row[0], gbps, saved)
		}
		// Sanity: at ~587B mean frames and 5-NF chains, each offloaded Gbps
		// saves roughly 0.3 cores; the total must be in that ballpark.
		if saved > gbps {
			t.Errorf("L=%v: %v cores for %v Gbps implausible", row[0], saved, gbps)
		}
	}
}

func TestLatencyUnderLoad(t *testing.T) {
	tbl, err := LatencyUnderLoad()
	if err != nil {
		t.Fatal(err)
	}
	prevDpdk := 0.0
	for _, row := range tbl.Rows {
		sfp, dpdk := row[2], row[3]
		if sfp != tbl.Rows[0][2] {
			t.Error("switch latency varied with load")
		}
		if dpdk <= prevDpdk {
			t.Errorf("software latency not increasing at load %v", row[0])
		}
		prevDpdk = dpdk
	}
	// The gap widens: at 95% load the software is far above its base.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[3] < 2*tbl.Rows[0][3] {
		t.Errorf("no queueing blow-up: %v vs %v", last[3], tbl.Rows[0][3])
	}
}
