package experiments

import "testing"

func TestChurnShape(t *testing.T) {
	sc := QuickScale()
	sc.ChurnSeedTenants = 4
	sc.ChurnArrivals = 8
	tbl, err := Churn(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (sequential + batched)", len(tbl.Rows))
	}
	seq, bat := tbl.Rows[0], tbl.Rows[1]
	if seq[0] != 1 || bat[0] != 4 {
		t.Fatalf("batch sizes = %v, %v; want 1 and 4", seq[0], bat[0])
	}
	for i, row := range tbl.Rows {
		if row[1] != 8 {
			t.Errorf("row %d arrivals = %v, want 8", i, row[1])
		}
		if row[2] < 0 || row[2] > 8 {
			t.Errorf("row %d placed = %v out of range", i, row[2])
		}
		if row[4] <= 0 {
			t.Errorf("row %d rate = %v, want > 0", i, row[4])
		}
	}
	// Same arrival stream on identical controllers: the amortized path
	// must admit at least as many tenants as the sequential one.
	if bat[2] < seq[2] {
		t.Errorf("batched placed %v < sequential %v", bat[2], seq[2])
	}
}
