package experiments

// Full-solve scale-out: the Lagrangian decomposition (SolveDecomposed)
// against the time-capped exact IP at initial-provisioning scale. The
// decomposition prices per-tenant subproblems in parallel against
// multiplier-priced stage memory and backplane, then repairs a feasible
// placement with a certified optimality gap — provisioning sizes that are
// hopeless for branch and bound close in milliseconds. This is the figure
// behind the BENCH_fullsolve.json gate in scripts/check.sh.

import (
	"math/rand"
	"time"

	"sfp/internal/model"
	"sfp/internal/placement"
	"sfp/internal/traffic"
)

// fullSolveInstance mirrors the BenchmarkFullSolve* workload: both the
// per-stage block budget (≈ L/4 blocks) and the backplane (6·L Gbps
// against a long-tail bandwidth mix) bind, so roughly a third of the
// candidates must be priced out rather than trivially deployed.
func fullSolveInstance(seed int64, L int) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	blocks := L / 4
	if blocks < 6 {
		blocks = 6
	}
	return &model.Instance{
		Switch: model.SwitchConfig{
			Stages:          8,
			BlocksPerStage:  blocks,
			EntriesPerBlock: 1000,
			CapacityGbps:    6 * float64(L),
		},
		NumTypes: 10,
		Recirc:   0,
		Chains:   traffic.GenChains(rng, L, traffic.ChainParams{MeanLen: 3}),
	}
}

// FullSolve sweeps candidate counts and reports the decomposed solve
// against the exact IP given the same wall-clock budget. Rows are
// (L, decomp_ms, gap_pct, decomp_obj, exact_ms, exact_obj, speedup).
func FullSolve(sc Scale) (*Table, error) {
	ls := sc.FullSolveLs
	if len(ls) == 0 {
		ls = []int{60, 120, 250}
	}
	capSec := sc.FullSolveExactCapSec
	if capSec == 0 {
		capSec = 5
	}
	build := model.BuildOptions{Consolidate: false}
	tbl := &Table{
		Title:   "Full-solve scale-out: Lagrangian decomposition vs time-capped exact IP",
		Columns: []string{"L", "decomp_ms", "gap_pct", "decomp_obj", "exact_ms", "exact_obj", "speedup"},
		Notes: []string{
			"contended instances: blocks ~ L/4 and 6*L Gbps backplane both bind",
			"decomp = per-tenant DP pricing under subgradient multipliers + greedy primal repair; gap_pct is its certified optimality gap (dual bound)",
			"exact = warm-started branch and bound, capped at " + time.Duration(capSec*float64(time.Second)).String() + " and BoundCap-terminated; its exact_ms understates uncapped exact cost",
			"non-consolidated build (Eq. 25): block pricing is exact there, so the dual converges tight",
		},
	}
	for _, L := range ls {
		in := fullSolveInstance(4242, L)
		dec, err := placement.SolveDecomposed(in, placement.DecomposeOptions{
			Build:   build,
			Workers: sc.SolverWorkers,
		})
		if err != nil {
			return nil, err
		}
		exact, err := placement.SolveIP(in, placement.IPOptions{
			Build:     build,
			TimeLimit: time.Duration(capSec * float64(time.Second)),
			RelGap:    0.005,
			BoundCap:  dec.Bound,
			Workers:   sc.SolverWorkers,
		})
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if dec.Elapsed > 0 {
			speedup = float64(exact.Elapsed) / float64(dec.Elapsed)
		}
		tbl.Rows = append(tbl.Rows, []float64{
			float64(L),
			float64(dec.Elapsed) / float64(time.Millisecond),
			100 * dec.Gap,
			dec.Objective,
			float64(exact.Elapsed) / float64(time.Millisecond),
			exact.Objective,
			speedup,
		})
	}
	return tbl, nil
}
