package experiments

// Online lifecycle churn: the extension experiment behind the 100k-tenant
// steady-state gate (BENCH_lifecycle.json). A seeded churn engine holds a
// live-tenant population against a single switch and sweeps the offered
// load: below load 1 the switch admits essentially everything the latency
// SLOs allow; past the knee the backplane saturates and the acceptance
// ratio falls as ~capacity/offered — the Erlang-loss shape. Utilization
// climbs to the capacity bound and stays there.

import (
	"fmt"

	"sfp/internal/lifecycle"
)

// Lifecycle sweeps the offered-load multiplier and reports, per load:
// acceptance ratio, steady-state population, switch utilization, and the
// p99 wall-clock latency of the arrival batches. The switch backplane is
// sized with 10% headroom over the load-1 population so the knee of the
// curve sits just past load 1.
func Lifecycle(sc Scale) (*Table, error) {
	target := sc.LifecycleTarget
	if target <= 0 {
		target = 1500
	}
	loads := sc.LifecycleLoads
	if len(loads) == 0 {
		loads = []float64{0.6, 0.8, 1.0, 1.2, 1.5}
	}

	base := lifecycle.Smoke()
	base.TargetLive = target
	base.FillBatch = target / 4
	base.Workers = sc.SolverWorkers
	// Long enough past the fill for an overdriven population to actually
	// reach the capacity ceiling before measurement ends.
	base.WarmTicks = 15
	base.MeasureTicks = 30
	base = base.WithDefaults()
	// Bandwidth with 10% headroom over the load-1 population: the mean
	// per-tenant demand is mean-users × per-user rate.
	meanUsers := float64(base.UsersMin+base.UsersMax) / 2
	base.Pipeline.CapacityGbps = 1.10 * float64(target) * meanUsers * base.UserRateGbps

	tbl := &Table{
		Title:   fmt.Sprintf("Lifecycle churn: acceptance and utilization vs offered load (target %d live)", target),
		Columns: []string{"load", "offered", "accepted", "slo_rej", "cap_rej", "accept_ratio", "mean_live", "bw_util", "arrive_p99_ms"},
		Notes: []string{
			"Poisson arrivals, exponential TTLs, Erlang loss model (rejected arrivals depart immediately)",
			fmt.Sprintf("backplane sized to 1.1x the load-1 demand (%.1f Gbps); memory over-provisioned", base.Pipeline.CapacityGbps),
			fmt.Sprintf("seed %d; fixed seed reproduces the identical admission trace at any worker count", base.Seed),
		},
	}
	for _, load := range loads {
		cfg := base
		cfg.Load = load
		rep, err := lifecycle.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("lifecycle load %.2f: %w", load, err)
		}
		tbl.Rows = append(tbl.Rows, []float64{
			load,
			float64(rep.Offered),
			float64(rep.Accepted),
			float64(rep.SLORejected),
			float64(rep.CapRejected),
			rep.AcceptanceRatio,
			rep.MeanLive,
			rep.BandwidthUtil,
			float64(rep.ArriveP99.Milliseconds()),
		})
	}
	return tbl, nil
}
