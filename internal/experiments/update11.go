package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"sfp/internal/model"
	"sfp/internal/placement"
)

// Fig11 reproduces the runtime-update study (§VI-D): allocate an initial
// set of SFCs from a candidate pool, drop a fraction of the live ones, and
// refill from the remaining candidates with survivors pinned. The paper
// observes post-update throughput staying saturated, with a slight rise at
// higher drop rates (more freed resources → better refill combinations).
func Fig11(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig. 11: throughput after runtime update vs drop rate (vs pre-update 'Origin')",
		Columns: []string{"drop_rate", "updated_gbps", "origin_gbps"},
	}
	for _, rate := range scale.Fig11DropRates {
		var updated, origin []float64
		for s := 0; s < scale.Seeds; s++ {
			u, o, err := fig11Once(scale, rate, int64(1100+s))
			if err != nil {
				return nil, fmt.Errorf("experiments: fig11 rate=%.2f: %w", rate, err)
			}
			updated = append(updated, u)
			origin = append(origin, o)
		}
		t.Rows = append(t.Rows, []float64{rate, mean(updated), mean(origin)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d allocated from %d candidates; drop then greedy-refill with survivors pinned", scale.Fig11Allocated, scale.Fig11Candidates),
		"paper shape: updated throughput stays near-saturated and rises slightly with drop rate")
	return t, nil
}

// fig11Once runs one update episode and returns (updated, origin) Gbps.
func fig11Once(scale Scale, dropRate float64, seed int64) (float64, float64, error) {
	in := genInstanceSw(seed, scale.Fig11Candidates, scale.MeanChainLen, scale.Recirc, scale.Fig11Switch)
	build := model.BuildOptions{Consolidate: true}

	// Initial allocation: run the placement algorithm over the full
	// candidate set — the deployed subset is the "allocated" population
	// (§VI-D allocates 20 of 50 candidates this way: the optimizer picks
	// what fits, the rest wait).
	res, err := placement.SolveGreedy(in, placement.GreedyOptions{Consolidate: true})
	if err != nil {
		return 0, 0, err
	}
	origin := res.Metrics.ThroughputGbps

	u, err := placement.NewUpdater(in, res.Assignment, build)
	if err != nil {
		return 0, 0, err
	}

	// Drop dropRate of the live chains, uniformly at random.
	rng := rand.New(rand.NewSource(seed * 7))
	live := u.Live()
	sort.Ints(live)
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	nDrop := int(dropRate * float64(len(live)))
	for _, id := range live[:nDrop] {
		if err := u.Depart(id); err != nil {
			return 0, 0, err
		}
	}

	// Refill from the remaining candidates with survivors pinned.
	m, err := u.ReplanGreedy()
	if err != nil {
		return 0, 0, err
	}
	return m.ThroughputGbps, origin, nil
}
