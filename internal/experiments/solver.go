package experiments

import (
	"fmt"
	"time"

	"sfp/internal/model"
	"sfp/internal/placement"
)

// Fig8 reproduces the solver-runtime comparison: SFP-IP runtime grows
// super-polynomially in the candidate count while SFP-Appro stays
// polynomial (§VI-C, "Comparison between Placement Algorithms").
func Fig8(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig. 8: placement runtime (s) vs number of SFCs — SFP-IP vs SFP-Appro",
		Columns: []string{"L", "algo_ip", "seconds", "capped"},
	}
	cap := time.Duration(scale.Fig8IPTimeCapSec * float64(time.Second))
	for _, L := range scale.Fig8IPLs {
		var secs []float64
		capped := 0.0
		for s := 0; s < scale.Seeds; s++ {
			in := genInstance(int64(800+10*L+s), L, scale.MeanChainLen, scale.Recirc)
			res, err := placement.SolveIP(in, placement.IPOptions{
				Build:     model.BuildOptions{Consolidate: true},
				TimeLimit: cap,
				Workers:   scale.SolverWorkers,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: fig8 IP L=%d: %w", L, err)
			}
			secs = append(secs, res.Elapsed.Seconds())
			if res.Status != "optimal" {
				capped = 1
			}
		}
		t.Rows = append(t.Rows, []float64{float64(L), 1, mean(secs), capped})
	}
	for _, L := range scale.Fig8ApproxLs {
		var secs []float64
		for s := 0; s < scale.Seeds; s++ {
			in := genInstance(int64(800+10*L+s), L, scale.MeanChainLen, scale.Recirc)
			res, err := placement.SolveApprox(in, placement.ApproxOptions{
				Build: model.BuildOptions{Consolidate: true}, Seed: int64(s),
				Workers: scale.SolverWorkers,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: fig8 approx L=%d: %w", L, err)
			}
			secs = append(secs, res.Elapsed.Seconds())
		}
		t.Rows = append(t.Rows, []float64{float64(L), 0, mean(secs), 0})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("IP runs capped at %.0fs (capped=1 marks limit hits — the blow-up the paper plots)", scale.Fig8IPTimeCapSec),
		"our branch-and-bound is not Gurobi: the IP curve explodes at smaller L, same shape")
	return t, nil
}

// Fig9 reproduces the early-termination study: a cold IP solve returns
// nothing under the tightest limits, then jumps close to optimal and creeps
// upward, while SFP-Appro reaches its (near-optimal) answer in one run.
func Fig9(scale Scale) (*Table, error) {
	in := genInstance(900, scale.Fig9L, scale.MeanChainLen, scale.Recirc)
	t := &Table{
		Title:   "Fig. 9: SFP-IP objective and resource use vs solver runtime limit",
		Columns: []string{"limit_s", "throughput_gbps", "objective", "block_util", "frac_of_best"},
	}
	best := 0.0
	type point struct{ thr, obj, blk float64 }
	var pts []point
	for _, lim := range scale.Fig9LimitsSec {
		res, err := placement.SolveIP(in, placement.IPOptions{
			Build:       model.BuildOptions{Consolidate: true},
			TimeLimit:   time.Duration(lim * float64(time.Second)),
			NoWarmStart: true, // the paper's cold solver returns 0 at 5s
			Workers:     scale.SolverWorkers,
		})
		if err != nil {
			return nil, err
		}
		p := point{res.Metrics.ThroughputGbps, res.Objective, res.Metrics.BlockUtil}
		pts = append(pts, p)
		if p.obj > best {
			best = p.obj
		}
	}
	for i, lim := range scale.Fig9LimitsSec {
		frac := 0.0
		if best > 0 {
			frac = pts[i].obj / best
		}
		t.Rows = append(t.Rows, []float64{lim, pts[i].thr, pts[i].obj, pts[i].blk, frac})
	}
	// Reference: the one-shot approximation on the same instance.
	ap, err := placement.SolveApprox(in, placement.ApproxOptions{
		Build: model.BuildOptions{Consolidate: true}, Seed: 9,
		Workers: scale.SolverWorkers,
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("L=%d; cold solver (no warm start) per the paper's Gurobi setup", scale.Fig9L),
		fmt.Sprintf("SFP-Appro reference on same instance: %.1f Gbps objective %.1f in %.2fs",
			ap.Metrics.ThroughputGbps, ap.Objective, ap.Elapsed.Seconds()),
		"paper shape: 0 at the tightest limit, near-optimal shortly after, slow creep to optimal")
	return t, nil
}

// Fig10 reproduces the algorithm comparison: IP ≥ Appro ≥ Greedy, with the
// IP saturating the switch capacity as candidates grow.
func Fig10(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig. 10: offloaded throughput (Gbps) by algorithm vs number of SFCs",
		Columns: []string{"L", "sfp_ip", "sfp_appro", "greedy"},
	}
	cap := time.Duration(scale.Fig10IPTimeCapSec * float64(time.Second))
	for _, L := range scale.Fig10Ls {
		var ip, ap, gr []float64
		for s := 0; s < scale.Seeds; s++ {
			in := genInstanceSw(int64(1000+10*L+s), L, scale.MeanChainLen, scale.Recirc, scale.Fig10Switch)
			apRes, err := placement.SolveApprox(in, placement.ApproxOptions{
				Build: model.BuildOptions{Consolidate: true}, Seed: int64(s),
				Workers: scale.SolverWorkers,
			})
			if err != nil {
				return nil, err
			}
			grRes, err := placement.SolveGreedy(in, placement.GreedyOptions{Consolidate: true})
			if err != nil {
				return nil, err
			}
			// The IP is seeded with the best heuristic incumbent, as MIP
			// practice dictates: its time-capped answer dominates both.
			ipRes, err := placement.SolveIP(in, placement.IPOptions{
				Build: model.BuildOptions{Consolidate: true}, TimeLimit: cap,
				WarmFrom: apRes.Assignment,
				Workers:  scale.SolverWorkers,
			})
			if err != nil {
				return nil, err
			}
			ip = append(ip, ipRes.Metrics.ThroughputGbps)
			ap = append(ap, apRes.Metrics.ThroughputGbps)
			gr = append(gr, grRes.Metrics.ThroughputGbps)
		}
		t.Rows = append(t.Rows, []float64{float64(L), mean(ip), mean(ap), mean(gr)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("IP warm-started and capped at %.0fs per solve; averaged over %d seeds", scale.Fig10IPTimeCapSec, scale.Seeds),
		fmt.Sprintf("switch scaled to B=%d C=%.0fGbps so contention matches the paper's L=40..60 regime", scale.Fig10Switch.BlocksPerStage, scale.Fig10Switch.CapacityGbps),
		"paper shape: IP >= Appro >= Greedy; IP approaches the capacity bound with enough candidates")
	return t, nil
}
