package experiments

// Provisioning churn: how fast the controller absorbs tenant arrivals.
// Sequential Arrive pays one incremental replan plus one data-plane
// install round per tenant; ArriveMany amortizes both — one replan and
// one batched install per chunk. This experiment drives the same arrival
// stream through both paths on identical controllers and reports
// arrivals/sec, the control-plane counterpart of the southbound
// BENCH_provision.json gate.

import (
	"fmt"
	"math/rand"
	"time"

	"sfp/internal/core"
	"sfp/internal/nf"
	"sfp/internal/traffic"
	"sfp/internal/vswitch"
)

// churnSFCs draws n chains per the §VI-A dataset description, with tenant
// IDs offset so seed tenants and arrivals never collide.
func churnSFCs(seed int64, n, offset int) []*vswitch.SFC {
	rng := rand.New(rand.NewSource(seed))
	chains := traffic.GenChains(rng, n, traffic.ChainParams{
		NumTypes: nf.TypeCount, MeanLen: 3, RuleMin: 5, RuleMax: 20,
	})
	out := make([]*vswitch.SFC, 0, n)
	for _, c := range chains {
		s := traffic.ToSFC(rng, c, 20)
		s.Tenant += uint32(offset)
		out = append(out, s)
	}
	return out
}

// churnController builds one greedy controller provisioned with the seed
// tenants. Both measurement arms start from this identical state.
func churnController(seeds []*vswitch.SFC) (*core.Controller, error) {
	c := core.New(core.Options{
		Algorithm:   core.AlgoGreedy,
		Consolidate: true,
		Recirc:      2,
		Seed:        1,
	})
	if _, err := c.Provision(seeds); err != nil {
		return nil, err
	}
	return c, nil
}

// Churn measures arrival throughput under churn: the same arrival stream
// absorbed one tenant at a time (Arrive) vs in amortized chunks of batch
// (ArriveMany). Rows are (batch_size, arrivals, placed, seconds,
// arrivals_per_s); batch_size 1 is the sequential baseline.
func Churn(sc Scale, batch int) (*Table, error) {
	seedTenants := sc.ChurnSeedTenants
	if seedTenants <= 0 {
		seedTenants = 6
	}
	arrivals := sc.ChurnArrivals
	if arrivals <= 0 {
		arrivals = 96
	}
	if batch <= 1 {
		batch = 8
	}
	seeds := churnSFCs(31, seedTenants, 0)
	stream := churnSFCs(32, arrivals, 1000)

	tbl := &Table{
		Title:   fmt.Sprintf("Provisioning churn: Arrive vs ArriveMany(batch=%d), greedy planner", batch),
		Columns: []string{"batch_size", "arrivals", "placed", "seconds", "arrivals_per_s"},
		Notes: []string{
			fmt.Sprintf("%d seed tenants provisioned first; %d arrivals timed (replan + data-plane install)", seedTenants, arrivals),
			"batch_size 1 = one incremental replan per arrival; larger = one replan per chunk",
		},
	}

	for _, chunk := range []int{1, batch} {
		ctl, err := churnController(seeds)
		if err != nil {
			return nil, err
		}
		placed := 0
		start := time.Now()
		for lo := 0; lo < len(stream); lo += chunk {
			hi := min(lo+chunk, len(stream))
			if chunk == 1 {
				ok, err := ctl.Arrive(stream[lo])
				if err != nil {
					return nil, fmt.Errorf("arrive tenant %d: %w", stream[lo].Tenant, err)
				}
				if ok {
					placed++
				}
				continue
			}
			got, err := ctl.ArriveMany(stream[lo:hi])
			if err != nil {
				return nil, fmt.Errorf("arrive batch [%d,%d): %w", lo, hi, err)
			}
			placed += len(got)
		}
		secs := time.Since(start).Seconds()
		rate := 0.0
		if secs > 0 {
			rate = float64(len(stream)) / secs
		}
		tbl.Rows = append(tbl.Rows, []float64{
			float64(chunk), float64(len(stream)), float64(placed), secs, rate,
		})
	}
	return tbl, nil
}
