package experiments

import (
	"fmt"
	"math/rand"

	"sfp/internal/softnf"
)

// LatencyUnderLoad is an extension of the Fig. 5 comparison: the paper
// argues SFP additionally wins because it processes "on-path" — the switch
// pipeline is deterministic at line rate, while a software SFC's latency
// degrades with queueing as offered load approaches its CPU-bound capacity
// (M/D/1 in the softnf model). The sweep holds 256 B frames and varies the
// offered load as a fraction of the DPDK chain's capacity.
func LatencyUnderLoad() (*Table, error) {
	const wire = 256
	straight, sfc, err := fig45Switch(false)
	if err != nil {
		return nil, err
	}
	dpdk, err := softnf.New(softnf.DefaultConfig(), len(sfc.NFs))
	if err != nil {
		return nil, err
	}
	capGbps := dpdk.ThroughputGbps(wire, 1e9)

	// The switch latency does not depend on load: measure it once over real
	// packets.
	rng := rand.New(rand.NewSource(55))
	sfpLat, passes, drops := runDataPlane(straight, sfc.Tenant, wire, 500, rng)
	if drops != 0 || passes != 1 {
		return nil, fmt.Errorf("experiments: latency-load baseline: passes=%d drops=%d", passes, drops)
	}

	t := &Table{
		Title:   "Extension: processing latency vs offered load (256B frames) — deterministic switch vs queueing software",
		Columns: []string{"load_frac_of_dpdk_cap", "offered_gbps", "sfp_ns", "dpdk_ns"},
	}
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.85, 0.95} {
		offered := frac * capGbps
		t.Rows = append(t.Rows, []float64{
			frac, offered, sfpLat, dpdk.LatencyUnderLoadNs(wire, offered),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("DPDK 4-NF chain capacity at 256B: %.1f Gbps; switch latency is load-independent", capGbps),
		"software latency follows M/D/1 queueing toward capacity; the switch pipeline is deterministic")
	return t, nil
}
