package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/pipeline"
	"sfp/internal/softnf"
	"sfp/internal/traffic"
	"sfp/internal/vswitch"
)

// fig45VIP is the virtual service address the test tenant's traffic hits.
var fig45VIP = packet.IPv4Addr(20, 0, 0, 1)

// fig45Chain builds the §VI-B 4-NF tenant SFC: firewall, traffic
// classifier, load balancer, router — with rules that actually match the
// generated traffic so every packet exercises all four NFs.
func fig45Chain(tenant uint32) *vswitch.SFC {
	backend := packet.IPv4Addr(10, 8, 0, 1)
	return &vswitch.SFC{
		Tenant:        tenant,
		BandwidthGbps: 100,
		NFs: []*nf.Config{
			{Type: nf.Firewall, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
				Action:  "permit",
			}}},
			{Type: nf.TrafficClassifier, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Between(0, 65535)},
				Action:  "set_class", Params: []uint64{2},
			}}},
			{Type: nf.LoadBalancer, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Eq(uint64(fig45VIP)), pipeline.Eq(80)},
				Action:  "dnat", Params: []uint64{uint64(backend), 0},
			}}},
			{Type: nf.Router, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Prefix(uint64(packet.IPv4Addr(10, 0, 0, 0)), 8)},
				Action:  "fwd", Params: []uint64{3},
			}}},
		},
	}
}

// fig45Switch builds a switch hosting the chain in physical order (one
// pass) or reverse order (forcing onePassPerNF recirculation, the paper's
// "SFP-Recir" configuration that applies one NF per pass).
func fig45Switch(reverse bool) (*vswitch.VSwitch, *vswitch.SFC, error) {
	cfg := pipeline.DefaultConfig()
	v := vswitch.New(pipeline.New(cfg))
	order := []nf.Type{nf.Firewall, nf.TrafficClassifier, nf.LoadBalancer, nf.Router}
	if reverse {
		order = []nf.Type{nf.Router, nf.LoadBalancer, nf.TrafficClassifier, nf.Firewall}
	}
	for stage, t := range order {
		if _, err := v.InstallPhysicalNF(stage, t, 1000); err != nil {
			return nil, nil, err
		}
	}
	sfc := fig45Chain(7)
	if _, err := v.Allocate(sfc); err != nil {
		return nil, nil, err
	}
	return v, sfc, nil
}

// runDataPlane pushes n packets of the given wire size through the switch
// and returns (mean latency ns, passes, drops). It is the sequential
// reference loop: the parallel engine path below must agree with it
// bit-for-bit at workers=1 (see TestFig45EngineMatchesSequential).
func runDataPlane(v *vswitch.VSwitch, tenant uint32, size, n int, rng *rand.Rand) (meanLat float64, passes int, drops int) {
	gen := traffic.NewFlowGen(rng, tenant, fig45VIP, 64)
	total := 0.0
	for i := 0; i < n; i++ {
		p := gen.Next(size)
		res := v.Process(p, float64(i)*1000)
		total += res.LatencyNs
		passes = res.Passes
		if res.Dropped {
			drops++
		}
	}
	return total / float64(n), passes, drops
}

// runDataPlaneParallel replays the same workload runDataPlane generates —
// same RNG draw order, same timestamps — through the parallel traffic
// engine, with one switch clone per worker built by newSwitch.
func runDataPlaneParallel(newSwitch func() (*vswitch.VSwitch, error), tenant uint32, size, n, workers int, rng *rand.Rand) (meanLat float64, passes, drops int, err error) {
	gen := traffic.NewFlowGen(rng, tenant, fig45VIP, 64)
	items := traffic.GenItems(gen, n, size, 1000)
	eng := traffic.Engine{
		Workers: workers,
		New:     func(int) (traffic.Processor, error) { return newSwitch() },
	}
	defer eng.Close()
	stats, err := eng.Replay(items)
	if err != nil {
		return 0, 0, 0, err
	}
	return stats.MeanLatencyNs(), stats.Passes, stats.Drops, nil
}

// Fig4 reproduces the throughput comparison at workers=1 (the sequential
// reference); Fig4Workers replays the packet workload across N engine
// workers.
func Fig4(packetsPerSize int) (*Table, error) { return Fig4Workers(packetsPerSize, 1) }

// Fig4Workers reproduces the throughput comparison: SFP saturates the
// 100 Gbps offered load at every packet size, while the DPDK chain is
// pps-bound and only saturates near MTU (§VI-B). workers selects the
// traffic engine's parallelism (<=0 = GOMAXPROCS); the aggregate metrics
// are independent of the worker count.
func Fig4Workers(packetsPerSize, workers int) (*Table, error) {
	if packetsPerSize <= 0 {
		packetsPerSize = 2000
	}
	newStraight := func() (*vswitch.VSwitch, error) {
		v, _, err := fig45Switch(false)
		return v, err
	}
	sfc := fig45Chain(7)
	dpdk, err := softnf.New(softnf.DefaultConfig(), len(sfc.NFs))
	if err != nil {
		return nil, err
	}
	cfg := pipeline.DefaultConfig()
	const offered = 100.0
	t := &Table{
		Title:   "Fig. 4: SFC throughput, SFP vs DPDK (4-NF chain, 100 Gbps offered)",
		Columns: []string{"pkt_bytes", "sfp_gbps", "sfp_mpps", "dpdk_gbps", "dpdk_mpps"},
	}
	rng := rand.New(rand.NewSource(4))
	for _, size := range traffic.PacketSizes {
		// Exercise the real data plane to confirm lossless processing.
		_, passes, drops, err := runDataPlaneParallel(newStraight, sfc.Tenant, size, packetsPerSize, workers, rng)
		if err != nil {
			return nil, err
		}
		if drops > 0 {
			return nil, fmt.Errorf("experiments: fig4: %d unexpected drops at %dB", drops, size)
		}
		// SFP forwards at line rate divided by the pass count (one here).
		sfpGbps := offered / float64(passes)
		if lim := cfg.CapacityGbps / float64(passes); lim < sfpGbps {
			sfpGbps = lim
		}
		sfpMpps := pipeline.LineRatePPS(sfpGbps, size) / 1e6
		dpdkGbps := dpdk.ThroughputGbps(size, offered)
		dpdkMpps := pipeline.LineRatePPS(dpdkGbps, size) / 1e6
		t.Rows = append(t.Rows, []float64{float64(size), sfpGbps, sfpMpps, dpdkGbps, dpdkMpps})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d packets per size pushed through the pipeline simulator, zero drops", packetsPerSize),
		"paper shape: ≥10x pps gap at 64B; DPDK saturates 100Gbps only at 1500B")
	return t, nil
}

// Fig5 reproduces the latency comparison at workers=1 (the sequential
// reference); Fig5Workers replays the packet workload across N engine
// workers.
func Fig5(packetsPerSize int) (*Table, error) { return Fig5Workers(packetsPerSize, 1) }

// Fig5Workers reproduces the latency comparison: SFP ≈341 ns, SFP with
// three recirculations ≈+35 ns, DPDK ≈1151 ns.
func Fig5Workers(packetsPerSize, workers int) (*Table, error) {
	if packetsPerSize <= 0 {
		packetsPerSize = 1000
	}
	newStraight := func() (*vswitch.VSwitch, error) {
		v, _, err := fig45Switch(false)
		return v, err
	}
	newRecir := func() (*vswitch.VSwitch, error) {
		v, _, err := fig45Switch(true)
		return v, err
	}
	sfc := fig45Chain(7)
	dpdk, err := softnf.New(softnf.DefaultConfig(), len(sfc.NFs))
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig. 5: SFC processing latency (ns), SFP vs SFP-Recir vs DPDK",
		Columns: []string{"pkt_bytes", "sfp_ns", "sfp_recir_ns", "dpdk_ns"},
	}
	rng := rand.New(rand.NewSource(5))
	var sfpSum, recirSum, dpdkSum float64
	for _, size := range traffic.PacketSizes {
		sfpLat, passes1, _, err := runDataPlaneParallel(newStraight, sfc.Tenant, size, packetsPerSize, workers, rng)
		if err != nil {
			return nil, err
		}
		recirLat, passes4, _, err := runDataPlaneParallel(newRecir, sfc.Tenant, size, packetsPerSize, workers, rng)
		if err != nil {
			return nil, err
		}
		if passes1 != 1 {
			return nil, fmt.Errorf("experiments: fig5: straight chain took %d passes", passes1)
		}
		if passes4 != 4 {
			return nil, fmt.Errorf("experiments: fig5: reverse chain took %d passes, want 4", passes4)
		}
		dpdkLat := dpdk.LatencyNs(size)
		t.Rows = append(t.Rows, []float64{float64(size), sfpLat, recirLat, dpdkLat})
		sfpSum += sfpLat
		recirSum += recirLat
		dpdkSum += dpdkLat
	}
	n := float64(len(traffic.PacketSizes))
	t.Notes = append(t.Notes,
		fmt.Sprintf("means: sfp=%.0fns sfp-recir=%.0fns dpdk=%.0fns (paper: 341 / ≈376 / 1151)",
			sfpSum/n, recirSum/n, dpdkSum/n),
		"recirculation adds ≈35ns for 3 extra passes; latency tracks applied NFs, not passes")
	return t, nil
}

// scalingSwitch builds the 2-NF (firewall → classifier) switch used by the
// scaling sweep. Unlike fig45Switch's chain, neither NF mutates packet
// headers (the router decrements TTL, the LB rewrites the destination), so
// the same pre-generated workload can be replayed repeatedly with identical
// per-packet behavior — a requirement for timing repeated replays.
func scalingSwitch() (*vswitch.VSwitch, error) {
	v := vswitch.New(pipeline.New(pipeline.DefaultConfig()))
	if _, err := v.InstallPhysicalNF(0, nf.Firewall, 1000); err != nil {
		return nil, err
	}
	if _, err := v.InstallPhysicalNF(1, nf.TrafficClassifier, 1000); err != nil {
		return nil, err
	}
	sfc := &vswitch.SFC{
		Tenant:        7,
		BandwidthGbps: 100,
		NFs: []*nf.Config{
			{Type: nf.Firewall, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
				Action:  "permit",
			}}},
			{Type: nf.TrafficClassifier, Rules: []nf.ConfigRule{{
				Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Between(0, 65535)},
				Action:  "set_class", Params: []uint64{2},
			}}},
		},
	}
	if _, err := v.Allocate(sfc); err != nil {
		return nil, err
	}
	return v, nil
}

// DataplaneScaling measures replay throughput against engine worker count:
// the pps-vs-workers curve behind BENCH_dataplane.json, as an experiment
// table. Each worker count replays the same pre-generated workload through
// the batched compiled path (one switch clone per worker); the best of
// three timed replays is reported. packets <= 0 selects a default sized for
// interactive runs; workersList nil selects {1, 2, 4, 8}.
func DataplaneScaling(packets int, workersList []int) (*Table, error) {
	if packets <= 0 {
		packets = 1 << 17
	}
	if len(workersList) == 0 {
		workersList = []int{1, 2, 4, 8}
	}
	rng := rand.New(rand.NewSource(12))
	gen := traffic.NewFlowGen(rng, 7, fig45VIP, 64)
	items := traffic.GenItems(gen, packets, 128, 1000)

	t := &Table{
		Title:   "Data-plane scaling: replay throughput vs engine workers (2-NF chain, 128B)",
		Columns: []string{"workers", "mpps", "speedup_vs_1"},
	}
	var base float64
	for _, workers := range workersList {
		eng := traffic.Engine{
			Workers: workers,
			New:     func(int) (traffic.Processor, error) { return scalingSwitch() },
		}
		// Warm the pool (processor construction, chunk buffers) off-clock.
		if _, err := eng.Replay(items); err != nil {
			eng.Close()
			return nil, err
		}
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			if _, err := eng.Replay(items); err != nil {
				eng.Close()
				return nil, err
			}
			if pps := float64(packets) / time.Since(start).Seconds(); pps > best {
				best = pps
			}
		}
		eng.Close()
		if base == 0 {
			base = best
		}
		t.Rows = append(t.Rows, []float64{float64(workers), best / 1e6, best / base})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d packets per replay, best of 3 timed replays per point, %d CPU(s)", packets, runtime.NumCPU()),
		"scaling requires real cores: on a 1-CPU host the curve is flat by construction")
	return t, nil
}
