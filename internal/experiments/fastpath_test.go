package experiments

import (
	"math"
	"math/rand"
	"testing"

	"sfp/internal/vswitch"
)

// TestFig45EngineMatchesSequential: the engine-backed data-plane replay at
// workers=1 must agree bit-for-bit with the legacy sequential loop
// (runDataPlane), for both the straight chain and the recirculating one.
// This is the acceptance gate for rerouting Fig. 4/5 through the engine.
func TestFig45EngineMatchesSequential(t *testing.T) {
	const n = 500
	for _, reverse := range []bool{false, true} {
		seqSwitch, sfc, err := fig45Switch(reverse)
		if err != nil {
			t.Fatal(err)
		}
		newSwitch := func() (*vswitch.VSwitch, error) {
			v, _, err := fig45Switch(reverse)
			return v, err
		}
		for _, size := range []int{64, 512, 1500} {
			seqRng := rand.New(rand.NewSource(99))
			wantLat, wantPasses, wantDrops := runDataPlane(seqSwitch, sfc.Tenant, size, n, seqRng)

			parRng := rand.New(rand.NewSource(99))
			gotLat, gotPasses, gotDrops, err := runDataPlaneParallel(newSwitch, sfc.Tenant, size, n, 1, parRng)
			if err != nil {
				t.Fatal(err)
			}
			if gotLat != wantLat || gotPasses != wantPasses || gotDrops != wantDrops {
				t.Errorf("reverse=%v size=%d: engine(1) = (%v, %d, %d), sequential = (%v, %d, %d)",
					reverse, size, gotLat, gotPasses, gotDrops, wantLat, wantPasses, wantDrops)
			}
		}
	}
}

// TestFig45WorkersAgree: multi-worker replay produces the same aggregate
// tables as workers=1 (floating-point identical here, since per-worker sums
// over contiguous chunks merge in worker order).
func TestFig45WorkersAgree(t *testing.T) {
	f4a, err := Fig4Workers(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	f4b, err := Fig4Workers(300, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, "Fig4", f4a, f4b)

	f5a, err := Fig5Workers(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	f5b, err := Fig5Workers(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, "Fig5", f5a, f5b)
}

// assertTablesEqual compares rows to a tiny relative tolerance: worker
// tallies are partial sums merged in worker order, which can differ from one
// running sum in the final ulp. (Bit-exactness is only promised — and tested
// above — for workers=1 against the sequential loop.)
func assertTablesEqual(t *testing.T, name string, a, b *Table) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: row count %d vs %d", name, len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			x, y := a.Rows[i][j], b.Rows[i][j]
			if diff := math.Abs(x - y); diff > 1e-9*math.Max(math.Abs(x), 1) {
				t.Errorf("%s row %d col %d: %v (workers=1) vs %v (workers=4)",
					name, i, j, x, y)
			}
		}
	}
}
