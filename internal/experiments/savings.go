package experiments

import (
	"sfp/internal/model"
	"sfp/internal/placement"
	"sfp/internal/softnf"
	"sfp/internal/traffic"
)

// OffloadSavings is an extension experiment grounded in the paper's §II
// motivation: every chain SFP offloads to the switch releases the server
// CPU cores a software (DPDK) deployment would have burned. For each
// candidate count it reports the cores saved by the offloaded chains and
// the cores still needed for the residual (non-offloaded) chains.
func OffloadSavings(scale Scale) (*Table, error) {
	t := &Table{
		Title:   "Extension: server CPU cores saved by offloading vs number of SFCs",
		Columns: []string{"L", "offloaded_gbps", "cores_saved", "cores_residual", "deployed"},
	}
	cfg := softnf.DefaultConfig()
	meanWire := traffic.IMCMix().MeanWireLen()
	for _, L := range scale.Fig6Ls {
		var gbps, saved, residual, deployed []float64
		for s := 0; s < scale.Seeds; s++ {
			in := genInstance(int64(1300+10*L+s), L, scale.MeanChainLen, scale.Recirc)
			res, err := placement.SolveApprox(in, placement.ApproxOptions{
				Build: model.BuildOptions{Consolidate: true}, Seed: int64(s),
			})
			if err != nil {
				return nil, err
			}
			var sv, rs float64
			for l, c := range in.Chains {
				cores := softnf.CoresFor(cfg, c.Len(), c.BandwidthGbps, meanWire)
				if res.Assignment.Deployed(l) {
					sv += cores
				} else {
					rs += cores
				}
			}
			gbps = append(gbps, res.Metrics.ThroughputGbps)
			saved = append(saved, sv)
			residual = append(residual, rs)
			deployed = append(deployed, float64(res.Metrics.Deployed))
		}
		t.Rows = append(t.Rows, []float64{float64(L), mean(gbps), mean(saved), mean(residual), mean(deployed)})
	}
	t.Notes = append(t.Notes,
		"cores modeled on the paper's testbed CPUs (2.2 GHz, DPDK cost model) at the IMC'10 packet mix",
		"chains the optimizer leaves on servers (§VII offloadability) appear as residual cores")
	return t, nil
}
