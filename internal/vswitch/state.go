package vswitch

import (
	"fmt"
	"sort"

	"sfp/internal/nf"
)

// PhysicalState describes one installed physical NF for state export.
type PhysicalState struct {
	Stage    int
	Type     nf.Type
	Capacity int
	// Used counts the rules currently installed in the NF's table. It is
	// derived state: Restore does not set it, installing tenant rules does.
	Used int
}

// TenantState describes one live allocation for state export.
type TenantState struct {
	Spec          *SFC
	Placements    []Placement
	Passes        int
	BandwidthGbps float64
}

// State is a complete, deterministic description of a switch's installed
// configuration: every physical NF and every tenant allocation. Two
// switches that went through equivalent histories export equal States
// (reflect.DeepEqual), which is what the crash-recovery convergence suite
// asserts.
type State struct {
	Physical []PhysicalState
	Tenants  []TenantState
}

// ExportState captures the switch's installed configuration in canonical
// order: physical NFs by (stage, type), tenants by ascending ID.
func (v *VSwitch) ExportState() *State {
	st := &State{}
	for s, nfs := range v.physical {
		for _, p := range nfs {
			st.Physical = append(st.Physical, PhysicalState{
				Stage:    s,
				Type:     p.Type,
				Capacity: p.Table.Capacity,
				Used:     p.Table.Used(),
			})
		}
	}
	sort.Slice(st.Physical, func(i, j int) bool {
		if st.Physical[i].Stage != st.Physical[j].Stage {
			return st.Physical[i].Stage < st.Physical[j].Stage
		}
		return st.Physical[i].Type < st.Physical[j].Type
	})
	ids := make([]uint32, 0, len(v.byTenant))
	for id := range v.byTenant {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := v.byTenant[id]
		st.Tenants = append(st.Tenants, TenantState{
			Spec:          a.Spec,
			Placements:    append([]Placement(nil), a.Placements...),
			Passes:        a.Passes,
			BandwidthGbps: a.BandwidthGbps,
		})
	}
	return st
}

// Restore replays an exported State into an empty switch: physical NFs
// are installed first, then every tenant allocation at its recorded
// placements. The switch must be freshly constructed (no physical NFs, no
// tenants); on error the switch is left partially restored and should be
// discarded.
func (v *VSwitch) Restore(st *State) error {
	if len(v.byTenant) != 0 {
		return fmt.Errorf("vswitch: restore into non-empty switch (%d tenants)", len(v.byTenant))
	}
	for s := range v.physical {
		if len(v.physical[s]) != 0 {
			return fmt.Errorf("vswitch: restore into non-empty switch (stage %d has NFs)", s)
		}
	}
	for _, p := range st.Physical {
		if _, err := v.InstallPhysicalNF(p.Stage, p.Type, p.Capacity); err != nil {
			return fmt.Errorf("vswitch: restore: %w", err)
		}
	}
	for _, t := range st.Tenants {
		if _, err := v.AllocateAt(t.Spec, t.Placements); err != nil {
			return fmt.Errorf("vswitch: restore tenant %d: %w", t.Spec.Tenant, err)
		}
	}
	return nil
}
