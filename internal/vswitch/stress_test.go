package vswitch_test

import (
	"math/rand"
	"testing"

	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/pipeline"
	"sfp/internal/traffic"
	"sfp/internal/vswitch"
)

// TestChurnUnderTraffic interleaves tenant allocation/deallocation with
// packet processing for many rounds: the switch must never leak entries or
// bandwidth, and surviving tenants' traffic must keep matching their rules
// throughout the churn.
func TestChurnUnderTraffic(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.MaxPasses = 4
	v := vswitch.New(pipeline.New(cfg))

	// One physical NF of every type spread across stages.
	for i, typ := range nf.AllTypes() {
		if _, err := v.InstallPhysicalNF(i%cfg.Stages, typ, 4000); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(17))
	live := map[uint32]*vswitch.Allocation{}
	nextTenant := uint32(1)

	for round := 0; round < 200; round++ {
		switch {
		case len(live) < 3 || rng.Intn(3) > 0:
			// Arrival.
			chains := traffic.GenChains(rng, 1, traffic.ChainParams{MeanLen: 3, RuleMin: 3, RuleMax: 10})
			chains[0].ID = int(nextTenant)
			chains[0].BandwidthGbps = 1
			sfc := traffic.ToSFC(rng, chains[0], 10)
			alloc, err := v.Allocate(sfc)
			if err != nil {
				// Resource exhaustion under churn is legal; the switch
				// state must simply stay consistent.
				break
			}
			live[sfc.Tenant] = alloc
			nextTenant++
		default:
			// Departure of a random live tenant.
			for tenant := range live {
				if err := v.Deallocate(tenant); err != nil {
					t.Fatalf("round %d: dealloc %d: %v", round, tenant, err)
				}
				delete(live, tenant)
				break
			}
		}

		// Traffic for every live tenant must traverse with its allocated
		// pass count; departed tenants' traffic must be untouched.
		for tenant, alloc := range live {
			p := packet.NewBuilder().
				WithTenant(tenant).
				WithIPv4(packet.IPv4Addr(10, 0, 0, 1), packet.IPv4Addr(10, 0, 0, 2)).
				WithTCP(uint16(1000+tenant), 80).
				Build()
			res := v.Process(p, float64(round)*1e6)
			if res.Passes != alloc.Passes {
				t.Fatalf("round %d tenant %d: %d passes, want %d", round, tenant, res.Passes, alloc.Passes)
			}
		}
		ghost := packet.NewBuilder().WithTenant(0xfffe).WithIPv4(1, 2).WithTCP(1, 2).Build()
		if res := v.Process(ghost, 0); res.TablesApplied != 0 {
			t.Fatalf("round %d: unallocated tenant matched %d tables", round, res.TablesApplied)
		}
	}

	// Drain: after everyone leaves, the switch is pristine.
	for tenant := range live {
		if err := v.Deallocate(tenant); err != nil {
			t.Fatal(err)
		}
	}
	if v.Pipe.EntriesUsed() != 0 {
		t.Errorf("entries leaked: %d", v.Pipe.EntriesUsed())
	}
	if v.BandwidthUsed() != 0 {
		t.Errorf("bandwidth leaked: %v", v.BandwidthUsed())
	}
	if v.Tenants() != 0 {
		t.Errorf("tenants leaked: %d", v.Tenants())
	}
}

// TestAllocationBandwidthNeverExceedsCapacity is a churn property: at no
// point may the switch's committed bandwidth exceed the configured C.
func TestAllocationBandwidthNeverExceedsCapacity(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.CapacityGbps = 40
	cfg.MaxPasses = 3
	v := vswitch.New(pipeline.New(cfg))
	for i, typ := range nf.AllTypes() {
		if _, err := v.InstallPhysicalNF(i%cfg.Stages, typ, 2000); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(23))
	tenant := uint32(1)
	for round := 0; round < 100; round++ {
		chains := traffic.GenChains(rng, 1, traffic.ChainParams{MeanLen: 3, RuleMin: 2, RuleMax: 6})
		chains[0].ID = int(tenant)
		sfc := traffic.ToSFC(rng, chains[0], 6)
		sfc.BandwidthGbps = 1 + rng.Float64()*10
		if _, err := v.Allocate(sfc); err == nil {
			tenant++
		}
		if v.BandwidthUsed() > cfg.CapacityGbps {
			t.Fatalf("round %d: committed %v > C=%v", round, v.BandwidthUsed(), cfg.CapacityGbps)
		}
		if rng.Intn(4) == 0 && tenant > 1 {
			victim := uint32(1 + rng.Intn(int(tenant-1)))
			if v.Allocations(victim) != nil {
				v.Deallocate(victim)
			}
		}
	}
}
