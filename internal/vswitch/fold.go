package vswitch

import (
	"errors"
	"fmt"

	"sfp/internal/nf"
)

// ErrTooManyPasses reports a chain that cannot fold into the allowed number
// of recirculation passes.
var ErrTooManyPasses = errors.New("chain does not fit in allowed passes")

// Fold computes the first-fit logical-to-physical assignment of §IV:
// starting from the first NF in the chain and the first stage in the
// pipeline, each NF lands on the nearest following stage hosting a physical
// NF of its type; when no such stage remains in the current pass, currPass
// advances and the scan restarts from stage 0.
//
// layout[s] lists the NF types installed on stage s. The returned placements
// are one per chain NF, in order, with strictly increasing virtual stage
// index (pass·S + stage).
func Fold(layout [][]nf.Type, chain []nf.Type, maxPasses int) ([]Placement, error) {
	if maxPasses <= 0 {
		maxPasses = 1
	}
	S := len(layout)
	if S == 0 {
		return nil, errors.New("vswitch: empty pipeline")
	}
	has := func(stage int, t nf.Type) bool {
		for _, x := range layout[stage] {
			if x == t {
				return true
			}
		}
		return false
	}
	// Fast infeasibility check: a type absent from every stage can never be
	// placed, regardless of passes.
	for _, t := range chain {
		found := false
		for s := 0; s < S && !found; s++ {
			found = has(s, t)
		}
		if !found {
			return nil, fmt.Errorf("vswitch: no physical %v anywhere in the pipeline", t)
		}
	}

	placements := make([]Placement, 0, len(chain))
	currPass, cursor := 0, 0
	for j, t := range chain {
		placed := false
		for !placed {
			for s := cursor; s < S; s++ {
				if has(s, t) {
					placements = append(placements, Placement{NFIndex: j, Type: t, Stage: s, Pass: currPass})
					cursor = s + 1
					placed = true
					break
				}
			}
			if placed {
				break
			}
			currPass++
			cursor = 0
			if currPass >= maxPasses {
				return nil, fmt.Errorf("%w: NF %d (%v) needs pass %d, max %d",
					ErrTooManyPasses, j, t, currPass+1, maxPasses)
			}
		}
	}
	return placements, nil
}

// PassesOf returns the number of pipeline traversals a placement sequence
// implies (R+1), or 0 for an empty sequence.
func PassesOf(placements []Placement) int {
	passes := 0
	for _, p := range placements {
		if p.Pass+1 > passes {
			passes = p.Pass + 1
		}
	}
	return passes
}
