package vswitch

import (
	"reflect"
	"testing"

	"sfp/internal/nf"
	"sfp/internal/pipeline"
)

func TestExportRestoreRoundTrip(t *testing.T) {
	v := fig3Switch(t)
	s1 := &SFC{Tenant: 1, BandwidthGbps: 10, NFs: []*nf.Config{classAll(1), permitAll()}}
	s2 := &SFC{Tenant: 2, BandwidthGbps: 5, NFs: []*nf.Config{permitAll(), classAll(2)}}
	if _, err := v.Allocate(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Allocate(s2); err != nil {
		t.Fatal(err)
	}

	st := v.ExportState()
	if len(st.Physical) != 3 || len(st.Tenants) != 2 {
		t.Fatalf("export = %d physical, %d tenants", len(st.Physical), len(st.Tenants))
	}
	if st.Tenants[0].Spec.Tenant != 1 || st.Tenants[1].Spec.Tenant != 2 {
		t.Fatalf("tenant order = %d, %d", st.Tenants[0].Spec.Tenant, st.Tenants[1].Spec.Tenant)
	}

	cfg := pipeline.DefaultConfig()
	cfg.Stages = 3
	cfg.MaxPasses = 3
	v2 := New(pipeline.New(cfg))
	if err := v2.Restore(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v2.ExportState(), st) {
		t.Fatalf("restored export differs:\n got %+v\nwant %+v", v2.ExportState(), st)
	}
	if v2.BandwidthUsed() != v.BandwidthUsed() {
		t.Fatalf("bandwidth %v != %v", v2.BandwidthUsed(), v.BandwidthUsed())
	}
}

func TestRestoreRefusesNonEmpty(t *testing.T) {
	v := fig3Switch(t)
	if err := v.Restore(&State{}); err == nil {
		t.Fatal("restore into switch with physical NFs accepted")
	}
}
