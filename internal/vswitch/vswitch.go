// Package vswitch implements SFP's data-plane SFC virtualization (§IV of
// the paper): physical NFs are pre-installed on pipeline stages, and logical
// SFCs from tenants are mapped onto them by copying each logical NF's rules
// into the matching physical NF with a tenant-ID + recirculation-pass match
// prefix. When a chain's NF order disagrees with the physical order, the
// chain is "folded": traffic recirculates and the remaining NFs are matched
// on the next pass.
package vswitch

import (
	"fmt"
	"sync/atomic"

	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/pipeline"
)

// SFC is one tenant's logical service function chain.
type SFC struct {
	// Tenant is the tenant ID carried in packets (e.g. the VLAN ID).
	Tenant uint32
	// NFs are the logical NFs in processing order.
	NFs []*nf.Config
	// BandwidthGbps is T_l, the chain's traffic demand.
	BandwidthGbps float64
}

// Types returns the chain's NF type sequence (f_jl).
func (s *SFC) Types() []nf.Type {
	ts := make([]nf.Type, len(s.NFs))
	for i, c := range s.NFs {
		ts[i] = c.Type
	}
	return ts
}

// PhysicalNF is one pre-installed NF instance on a stage.
type PhysicalNF struct {
	Type  nf.Type
	Stage int
	Table *pipeline.Table
}

// Placement is one logical NF's landing spot.
type Placement struct {
	NFIndex int // j: position in the chain
	Type    nf.Type
	Stage   int // physical stage (0-based)
	Pass    int // recirculation pass (0-based)
}

// Allocation records where a chain landed.
type Allocation struct {
	Tenant     uint32
	Placements []Placement
	// Passes is the number of pipeline traversals the chain needs
	// (R_l + 1 in the model's terms).
	Passes int
	// BandwidthGbps echoes the chain's demand for capacity bookkeeping.
	BandwidthGbps float64
	// Spec is the chain definition this allocation realized, kept so the
	// allocation can be snapshotted and re-installed (batch rollback of a
	// deallocation).
	Spec *SFC
}

// VSwitch is the virtualized data plane: a pipeline plus the physical-NF
// registry and per-tenant allocation state.
type VSwitch struct {
	Pipe *pipeline.Pipeline

	// physical[stage] lists the NFs installed on that stage, in order.
	physical [][]*PhysicalNF
	// byTenant tracks live allocations for deallocation and accounting.
	byTenant map[uint32]*Allocation
	// bandwidthUsed is Σ (R_l+1)·T_l over live allocations, checked against
	// the backplane capacity (Eq. 12).
	bandwidthUsed float64

	// compiled caches the pipeline's compiled form for the packet hot path.
	// Rule churn (tenant allocate/deallocate) keeps a Compiled valid, so
	// only structural changes — installing or removing a physical NF, which
	// add/remove tables and register actions — invalidate it (Store(nil));
	// the next Compiled() call rebuilds lazily.
	compiled atomic.Pointer[pipeline.Compiled]
}

// New wraps a pipeline in a virtual switch.
func New(p *pipeline.Pipeline) *VSwitch {
	return &VSwitch{
		Pipe:     p,
		physical: make([][]*PhysicalNF, p.Cfg.Stages),
		byTenant: make(map[uint32]*Allocation),
	}
}

// physicalTableName names the table hosting a physical NF.
func physicalTableName(stage int, t nf.Type) string {
	return fmt.Sprintf("s%d.%s", stage, t)
}

// InstallPhysicalNF pre-installs an NF of the given type on a stage with the
// given reserved entry capacity. The physical table's key specification is
// the NF's own keys prefixed by exact matches on tenant ID and pass, and its
// default action is "No-Ops" (§IV "Install Physical NFs").
func (v *VSwitch) InstallPhysicalNF(stage int, t nf.Type, capacity int) (*PhysicalNF, error) {
	if stage < 0 || stage >= len(v.physical) {
		return nil, fmt.Errorf("vswitch: stage %d out of range [0,%d)", stage, len(v.physical))
	}
	if v.FindPhysical(stage, t) != nil {
		return nil, fmt.Errorf("vswitch: %v already installed on stage %d", t, stage)
	}
	spec := nf.ForType(t)
	keys := []pipeline.Key{
		{Field: pipeline.FieldTenantID, Kind: pipeline.MatchExact},
		{Field: pipeline.FieldPass, Kind: pipeline.MatchExact},
	}
	// NF-specific exact keys widen to ternary in the physical table: the
	// per-tenant catch-all steering rule (which guarantees recirculation at
	// pass tails even when a packet misses every tenant rule) needs
	// wildcards, and a full-mask ternary match is semantically identical to
	// the exact match (see pipeline's property tests).
	for _, k := range spec.Keys {
		if k.Kind == pipeline.MatchExact {
			k.Kind = pipeline.MatchTernary
		}
		keys = append(keys, k)
	}
	tbl := pipeline.NewTable(physicalTableName(stage, t), keys, capacity)
	for name, fn := range spec.Actions {
		tbl.RegisterAction(name, fn)
	}
	tbl.SetDefault(spec.Default)
	st := v.Pipe.Stages[stage]
	if err := st.AddTable(tbl); err != nil {
		return nil, err
	}
	for name, size := range spec.Registers {
		if err := st.Regs.Alloc(name, size); err != nil {
			// Register arrays are shared per stage by NFs of the same
			// family name; an existing allocation is reused.
			continue
		}
	}
	pnf := &PhysicalNF{Type: t, Stage: stage, Table: tbl}
	v.physical[stage] = append(v.physical[stage], pnf)
	v.compiled.Store(nil) // structural change: drop the compiled cache
	return pnf, nil
}

// RemovePhysicalNF removes an idle physical NF (full-reconfiguration path).
// It refuses if the table still holds tenant rules.
func (v *VSwitch) RemovePhysicalNF(stage int, t nf.Type) error {
	pnf := v.FindPhysical(stage, t)
	if pnf == nil {
		return fmt.Errorf("vswitch: no %v on stage %d", t, stage)
	}
	if pnf.Table.Used() > 0 {
		return fmt.Errorf("vswitch: %v on stage %d still holds %d rules", t, stage, pnf.Table.Used())
	}
	v.Pipe.Stages[stage].RemoveTable(pnf.Table.Name)
	nfs := v.physical[stage]
	for i, p := range nfs {
		if p == pnf {
			v.physical[stage] = append(nfs[:i], nfs[i+1:]...)
			break
		}
	}
	v.compiled.Store(nil) // structural change: drop the compiled cache
	return nil
}

// FindPhysical returns the physical NF of type t on the stage, or nil.
func (v *VSwitch) FindPhysical(stage int, t nf.Type) *PhysicalNF {
	if stage < 0 || stage >= len(v.physical) {
		return nil
	}
	for _, p := range v.physical[stage] {
		if p.Type == t {
			return p
		}
	}
	return nil
}

// Layout returns, per stage, the installed NF types (for the folding
// algorithm and for reporting).
func (v *VSwitch) Layout() [][]nf.Type {
	out := make([][]nf.Type, len(v.physical))
	for s, nfs := range v.physical {
		for _, p := range nfs {
			out[s] = append(out[s], p.Type)
		}
	}
	return out
}

// BandwidthUsed returns Σ (R_l+1)·T_l over live allocations.
func (v *VSwitch) BandwidthUsed() float64 { return v.bandwidthUsed }

// Allocations returns the live allocation for a tenant (nil if none).
func (v *VSwitch) Allocations(tenant uint32) *Allocation { return v.byTenant[tenant] }

// Tenants returns the number of tenants with live allocations.
func (v *VSwitch) Tenants() int { return len(v.byTenant) }

// Allocate maps the SFC onto the physical pipeline using the first-fit
// folding algorithm of §IV: scan stages for a physical NF of the next
// logical NF's type; when the current pass cannot host the next NF, set REC
// on the previous NF's rules, advance currPass, and continue from stage 0.
// On success the tenant's rules are installed; on any failure the switch is
// left unchanged.
func (v *VSwitch) Allocate(sfc *SFC) (*Allocation, error) {
	placements, err := Fold(v.Layout(), sfc.Types(), v.Pipe.Cfg.MaxPasses)
	if err != nil {
		return nil, fmt.Errorf("vswitch: tenant %d: %w", sfc.Tenant, err)
	}
	return v.AllocateAt(sfc, placements)
}

// AllocateAt installs the SFC at explicit placements (as computed by the
// control plane's optimizer or by Fold). Placements must be one per logical
// NF, in chain order, with strictly increasing virtual stage indices.
func (v *VSwitch) AllocateAt(sfc *SFC, placements []Placement) (*Allocation, error) {
	return v.allocateOne(sfc, placements, nil)
}

// BatchItem pairs one chain with its placements for AllocateBatch.
type BatchItem struct {
	SFC        *SFC
	Placements []Placement
}

// BatchError reports an AllocateBatch failure: which item failed, and
// which earlier items had already been installed and were rolled back
// again (in install order) to restore the pre-batch state.
type BatchError struct {
	// Index is the position of the failing item.
	Index int
	// Tenant is the failing item's tenant.
	Tenant uint32
	// Applied lists tenants installed by this batch before the failure and
	// deallocated again during rollback.
	Applied []uint32
	// Cause is the failing item's install error.
	Cause error
}

// Error implements error.
func (e *BatchError) Error() string {
	return fmt.Sprintf("vswitch: batch item %d (tenant %d): %v (rolled back %d earlier tenant(s))",
		e.Index, e.Tenant, e.Cause, len(e.Applied))
}

// Unwrap exposes the failing item's error.
func (e *BatchError) Unwrap() error { return e.Cause }

// AllocateBatch realizes many tenants' placements in one pass over the
// pipeline: items install in order against a shared physical-NF
// resolution cache, and admission (bandwidth, capacity, validation) is
// checked per item exactly as sequential AllocateAt calls would, so the
// batch succeeds if and only if the same sequence of AllocateAt calls
// would. It is all-or-nothing: the first failure deallocates the items
// already installed and returns a *BatchError naming them, leaving the
// switch exactly as before the call.
func (v *VSwitch) AllocateBatch(items []BatchItem) ([]*Allocation, error) {
	seen := make(map[uint32]int, len(items))
	for i, it := range items {
		if j, dup := seen[it.SFC.Tenant]; dup {
			return nil, fmt.Errorf("vswitch: batch items %d and %d both allocate tenant %d", j, i, it.SFC.Tenant)
		}
		seen[it.SFC.Tenant] = i
	}
	cache := make(map[[2]int]*PhysicalNF)
	allocs := make([]*Allocation, 0, len(items))
	for i, it := range items {
		a, err := v.allocateOne(it.SFC, it.Placements, cache)
		if err != nil {
			applied := make([]uint32, len(allocs))
			for k := len(allocs) - 1; k >= 0; k-- {
				applied[k] = allocs[k].Tenant
				v.Deallocate(allocs[k].Tenant)
			}
			return nil, &BatchError{Index: i, Tenant: it.SFC.Tenant, Applied: applied, Cause: err}
		}
		allocs = append(allocs, a)
	}
	return allocs, nil
}

// findPhysicalCached resolves (stage, type) through the batch-shared cache.
func (v *VSwitch) findPhysicalCached(stage int, t nf.Type, cache map[[2]int]*PhysicalNF) *PhysicalNF {
	if cache == nil {
		return v.FindPhysical(stage, t)
	}
	key := [2]int{stage, int(t)}
	if p, ok := cache[key]; ok {
		return p
	}
	p := v.FindPhysical(stage, t)
	if p != nil {
		cache[key] = p
	}
	return p
}

// allocateOne is the install path shared by AllocateAt and AllocateBatch;
// cache, when non-nil, memoizes physical-NF resolution across a batch.
func (v *VSwitch) allocateOne(sfc *SFC, placements []Placement, cache map[[2]int]*PhysicalNF) (*Allocation, error) {
	if _, live := v.byTenant[sfc.Tenant]; live {
		return nil, fmt.Errorf("vswitch: tenant %d already allocated", sfc.Tenant)
	}
	if len(placements) != len(sfc.NFs) {
		return nil, fmt.Errorf("vswitch: %d placements for %d NFs", len(placements), len(sfc.NFs))
	}
	S := v.Pipe.Cfg.Stages
	passes := 0
	prevVirtual := -1
	for i, pl := range placements {
		if pl.Type != sfc.NFs[i].Type {
			return nil, fmt.Errorf("vswitch: placement %d type %v != chain type %v", i, pl.Type, sfc.NFs[i].Type)
		}
		virtual := pl.Pass*S + pl.Stage
		if virtual <= prevVirtual {
			return nil, fmt.Errorf("vswitch: placements not strictly increasing at NF %d", i)
		}
		prevVirtual = virtual
		if pl.Pass+1 > passes {
			passes = pl.Pass + 1
		}
	}
	if passes > v.Pipe.Cfg.MaxPasses {
		return nil, fmt.Errorf("vswitch: needs %d passes, max %d", passes, v.Pipe.Cfg.MaxPasses)
	}
	if v.bandwidthUsed+float64(passes)*sfc.BandwidthGbps > v.Pipe.Cfg.CapacityGbps {
		return nil, fmt.Errorf("vswitch: backplane capacity exceeded: %.1f + %d×%.1f > %.1f Gbps",
			v.bandwidthUsed, passes, sfc.BandwidthGbps, v.Pipe.Cfg.CapacityGbps)
	}

	// The last NF of every pass except the final one carries the REC
	// argument in its installed rules.
	recAt := make(map[int]bool) // NF index -> set REC
	hasTail := make(map[int]bool)
	for i := 0; i < len(placements)-1; i++ {
		if placements[i+1].Pass > placements[i].Pass {
			recAt[i] = true
			hasTail[placements[i].Pass] = true
		}
	}
	// Passes with no NF at all (the optimizer may start a chain on a later
	// pass or jump a pass under memory pressure) still need the tenant's
	// traffic steered onward: a catch-all REC rule per empty pass, hosted
	// in the chain's first physical NF table.
	var emptyPasses []int
	for p := 0; p < passes-1; p++ {
		if !hasTail[p] {
			emptyPasses = append(emptyPasses, p)
		}
	}

	// Install rules; roll back on failure.
	installed := make([]*pipeline.Table, 0, len(placements))
	rollback := func() {
		for _, t := range installed {
			t.DeleteTenant(sfc.Tenant)
		}
	}
	for i, pl := range placements {
		pnf := v.findPhysicalCached(pl.Stage, pl.Type, cache)
		if pnf == nil {
			rollback()
			return nil, fmt.Errorf("vswitch: no physical %v on stage %d", pl.Type, pl.Stage)
		}
		cfg := sfc.NFs[i]
		if err := cfg.Validate(); err != nil {
			rollback()
			return nil, err
		}
		installed = append(installed, pnf.Table)
		for _, cr := range cfg.Rules {
			rule := &pipeline.Rule{
				Priority: cr.Priority,
				Matches: append([]pipeline.Match{
					pipeline.Eq(uint64(sfc.Tenant)),
					pipeline.Eq(uint64(pl.Pass)),
				}, cr.Matches...),
				Action: cr.Action,
				Params: cr.Params,
				Rec:    recAt[i],
				Tenant: sfc.Tenant,
			}
			if err := pnf.Table.Insert(rule); err != nil {
				rollback()
				return nil, fmt.Errorf("vswitch: tenant %d NF %d (%v): %w", sfc.Tenant, i, pl.Type, err)
			}
		}
		if recAt[i] {
			// Per-tenant catch-all at the pass tail: whatever this NF does
			// (or skips) for the packet, the chain's remaining NFs live in
			// the next pass, so the packet must recirculate.
			if err := pnf.Table.Insert(catchAllRule(sfc.Tenant, pl)); err != nil {
				rollback()
				return nil, fmt.Errorf("vswitch: tenant %d REC catch-all on NF %d (%v): %w", sfc.Tenant, i, pl.Type, err)
			}
		}
	}

	for _, p := range emptyPasses {
		pnf := v.findPhysicalCached(placements[0].Stage, placements[0].Type, cache)
		if pnf == nil {
			rollback()
			return nil, fmt.Errorf("vswitch: no physical %v on stage %d for pass-%d steering",
				placements[0].Type, placements[0].Stage, p)
		}
		steer := catchAllRule(sfc.Tenant, Placement{Type: placements[0].Type, Stage: placements[0].Stage, Pass: p})
		if err := pnf.Table.Insert(steer); err != nil {
			rollback()
			return nil, fmt.Errorf("vswitch: tenant %d pass-%d steering: %w", sfc.Tenant, p, err)
		}
	}

	alloc := &Allocation{
		Tenant:        sfc.Tenant,
		Placements:    placements,
		Passes:        passes,
		BandwidthGbps: sfc.BandwidthGbps,
		Spec:          sfc,
	}
	v.byTenant[sfc.Tenant] = alloc
	v.bandwidthUsed += float64(passes) * sfc.BandwidthGbps
	return alloc, nil
}

// catchAllRule builds the lowest-priority tenant steering rule installed at
// the tail NF of each non-final pass: match (tenant, pass, anything), run
// the NF's default no-op, and set REC.
func catchAllRule(tenant uint32, pl Placement) *pipeline.Rule {
	spec := nf.ForType(pl.Type)
	matches := []pipeline.Match{
		pipeline.Eq(uint64(tenant)),
		pipeline.Eq(uint64(pl.Pass)),
	}
	for _, k := range spec.Keys {
		switch k.Kind {
		case pipeline.MatchRange:
			matches = append(matches, pipeline.Between(0, ^uint64(0)))
		case pipeline.MatchLPM:
			matches = append(matches, pipeline.Prefix(0, 0))
		default: // exact (widened to ternary) and ternary
			matches = append(matches, pipeline.Wildcard())
		}
	}
	return &pipeline.Rule{
		Priority: -1 << 30,
		Matches:  matches,
		Action:   spec.Default,
		Rec:      true,
		Tenant:   tenant,
	}
}

// Deallocate removes a tenant's rules from every table and releases its
// backplane bandwidth (§IV "(De)allocate Logical NFs", §V-E departures).
func (v *VSwitch) Deallocate(tenant uint32) error {
	alloc, ok := v.byTenant[tenant]
	if !ok {
		return fmt.Errorf("vswitch: tenant %d has no allocation", tenant)
	}
	for _, stage := range v.Pipe.Stages {
		for _, t := range stage.Tables {
			t.DeleteTenant(tenant)
		}
	}
	v.bandwidthUsed -= float64(alloc.Passes) * alloc.BandwidthGbps
	if v.bandwidthUsed < 0 {
		v.bandwidthUsed = 0
	}
	delete(v.byTenant, tenant)
	return nil
}

// DeallocateBatch removes a batch of tenants in one pass over every table,
// so a batch of N departures costs one rules scan per table instead of N.
// The batch is all-or-nothing: every tenant is validated (allocated, no
// duplicates) before any rule is touched, so an error leaves the switch
// unchanged.
func (v *VSwitch) DeallocateBatch(tenants []uint32) error {
	if len(tenants) == 0 {
		return nil
	}
	set := make(map[uint32]bool, len(tenants))
	for _, tn := range tenants {
		if _, ok := v.byTenant[tn]; !ok {
			return fmt.Errorf("vswitch: tenant %d has no allocation", tn)
		}
		if set[tn] {
			return fmt.Errorf("vswitch: tenant %d duplicated in batch", tn)
		}
		set[tn] = true
	}
	for _, stage := range v.Pipe.Stages {
		for _, t := range stage.Tables {
			t.DeleteTenants(set)
		}
	}
	for _, tn := range tenants {
		alloc := v.byTenant[tn]
		v.bandwidthUsed -= float64(alloc.Passes) * alloc.BandwidthGbps
		delete(v.byTenant, tn)
	}
	if v.bandwidthUsed < 0 {
		v.bandwidthUsed = 0
	}
	return nil
}

// Compiled returns the pipeline's compiled fast path, building and caching
// it on first use. The cache survives rule churn (allocate/deallocate) and
// is invalidated by physical-NF install/remove. Safe for concurrent use;
// concurrent first calls may compile twice, both results are valid.
func (v *VSwitch) Compiled() *pipeline.Compiled {
	if c := v.compiled.Load(); c != nil {
		return c
	}
	c := v.Pipe.Compile()
	v.compiled.Store(c)
	return c
}

// Process pushes one packet through the data plane via the compiled fast
// path (bit-identical to the interpreter, see pipeline's property tests).
func (v *VSwitch) Process(p *packet.Packet, nowNs float64) pipeline.Result {
	return v.Compiled().Process(p, nowNs)
}
