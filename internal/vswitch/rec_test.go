package vswitch

import (
	"testing"

	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/pipeline"
)

func TestCatchAllRecirculation(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 2
	cfg.MaxPasses = 3
	v := New(pipeline.New(cfg))
	v.InstallPhysicalNF(0, nf.NAT, 100)
	v.InstallPhysicalNF(1, nf.Firewall, 100)
	// Chain FW then NAT: FW@1 pass0, NAT@0 pass1.
	sfc := &SFC{Tenant: 7, BandwidthGbps: 1, NFs: []*nf.Config{
		{Type: nf.Firewall, Rules: []nf.ConfigRule{{
			Matches: []pipeline.Match{pipeline.Eq(1234), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
			Action:  "permit",
		}}},
		{Type: nf.NAT, Rules: []nf.ConfigRule{{
			Matches: []pipeline.Match{pipeline.Eq(99), pipeline.Eq(99)},
			Action:  "snat", Params: []uint64{1, 1},
		}}},
	}}
	alloc, err := v.Allocate(sfc)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Passes != 2 {
		t.Fatalf("passes = %d", alloc.Passes)
	}
	// Packet missing ALL tenant rules must still recirculate (catch-all).
	p := packet.NewBuilder().WithTenant(7).WithIPv4(5, 6).WithTCP(1, 2).Build()
	res := v.Process(p, 0)
	if res.Passes != 2 {
		t.Fatalf("packet passes = %d, want 2", res.Passes)
	}
}

func TestEmptyLeadingPassSteering(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 2
	cfg.MaxPasses = 3
	v := New(pipeline.New(cfg))
	v.InstallPhysicalNF(0, nf.Firewall, 100)
	// Control plane pins the single NF to pass 1 (virtual stage 2): pass 0
	// holds nothing, so a steering catch-all must carry the packet through.
	sfc := &SFC{Tenant: 8, BandwidthGbps: 1, NFs: []*nf.Config{
		{Type: nf.Firewall, Rules: []nf.ConfigRule{{
			Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
			Action:  "deny",
		}}},
	}}
	alloc, err := v.AllocateAt(sfc, []Placement{{NFIndex: 0, Type: nf.Firewall, Stage: 0, Pass: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Passes != 2 {
		t.Fatalf("passes = %d, want 2", alloc.Passes)
	}
	p := packet.NewBuilder().WithTenant(8).WithIPv4(5, 6).WithTCP(1, 2).Build()
	res := v.Process(p, 0)
	if res.Passes != 2 {
		t.Errorf("packet passes = %d, want 2 (leading-pass steering)", res.Passes)
	}
	if !p.Meta.Drop {
		t.Error("pass-1 firewall rule did not apply")
	}
}
