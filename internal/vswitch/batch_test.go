package vswitch

import (
	"errors"
	"strings"
	"testing"

	"sfp/internal/nf"
)

// batchChain is a one-pass TC→FW chain sized for fig3Switch.
func batchChain(tenant uint32, gbps float64) (*SFC, []Placement) {
	sfc := &SFC{Tenant: tenant, BandwidthGbps: gbps, NFs: []*nf.Config{classAll(1), permitAll()}}
	pls := []Placement{
		{NFIndex: 0, Type: nf.TrafficClassifier, Stage: 0, Pass: 0},
		{NFIndex: 1, Type: nf.Firewall, Stage: 1, Pass: 0},
	}
	return sfc, pls
}

func TestAllocateBatchMatchesSequential(t *testing.T) {
	seq := fig3Switch(t)
	bat := fig3Switch(t)

	var items []BatchItem
	for tenant := uint32(1); tenant <= 5; tenant++ {
		sfc, pls := batchChain(tenant, 10)
		items = append(items, BatchItem{SFC: sfc, Placements: pls})
		sfcSeq, plsSeq := batchChain(tenant, 10)
		if _, err := seq.AllocateAt(sfcSeq, plsSeq); err != nil {
			t.Fatalf("sequential tenant %d: %v", tenant, err)
		}
	}
	allocs, err := bat.AllocateBatch(items)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(allocs) != 5 {
		t.Fatalf("got %d allocations, want 5", len(allocs))
	}
	if seq.Tenants() != bat.Tenants() {
		t.Errorf("tenants: seq %d, batch %d", seq.Tenants(), bat.Tenants())
	}
	if seq.BandwidthUsed() != bat.BandwidthUsed() {
		t.Errorf("bandwidth: seq %v, batch %v", seq.BandwidthUsed(), bat.BandwidthUsed())
	}
	if seq.Pipe.EntriesUsed() != bat.Pipe.EntriesUsed() {
		t.Errorf("entries: seq %d, batch %d", seq.Pipe.EntriesUsed(), bat.Pipe.EntriesUsed())
	}
	for tenant := uint32(1); tenant <= 5; tenant++ {
		sa, ba := seq.Allocations(tenant), bat.Allocations(tenant)
		if sa == nil || ba == nil {
			t.Fatalf("tenant %d missing: seq=%v batch=%v", tenant, sa, ba)
		}
		if sa.Passes != ba.Passes || len(sa.Placements) != len(ba.Placements) {
			t.Errorf("tenant %d: seq passes=%d/%d pls, batch passes=%d/%d pls",
				tenant, sa.Passes, len(sa.Placements), ba.Passes, len(ba.Placements))
		}
	}
}

func TestAllocateBatchAllOrNothing(t *testing.T) {
	v := fig3Switch(t)
	baseEntries := v.Pipe.EntriesUsed()

	// Two admissible items, then one whose bandwidth exceeds the switch.
	s1, p1 := batchChain(1, 10)
	s2, p2 := batchChain(2, 10)
	s3, p3 := batchChain(3, 100000)
	_, err := v.AllocateBatch([]BatchItem{{s1, p1}, {s2, p2}, {s3, p3}})
	if err == nil {
		t.Fatal("oversized batch accepted")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *BatchError: %v", err, err)
	}
	if be.Index != 2 || be.Tenant != 3 {
		t.Errorf("failure attributed to item %d tenant %d, want item 2 tenant 3", be.Index, be.Tenant)
	}
	if len(be.Applied) != 2 || be.Applied[0] != 1 || be.Applied[1] != 2 {
		t.Errorf("Applied = %v, want [1 2]", be.Applied)
	}
	// The switch is exactly as before the batch.
	if v.Tenants() != 0 {
		t.Errorf("%d tenants left after rollback", v.Tenants())
	}
	if v.BandwidthUsed() != 0 {
		t.Errorf("%v Gbps left after rollback", v.BandwidthUsed())
	}
	if got := v.Pipe.EntriesUsed(); got != baseEntries {
		t.Errorf("entries %d after rollback, want %d", got, baseEntries)
	}
	// And a clean batch still installs.
	s1, p1 = batchChain(1, 10)
	if _, err := v.AllocateBatch([]BatchItem{{s1, p1}}); err != nil {
		t.Fatalf("re-batch after rollback: %v", err)
	}
}

func TestAllocateBatchRejectsDuplicateTenant(t *testing.T) {
	v := fig3Switch(t)
	s1, p1 := batchChain(7, 10)
	s2, p2 := batchChain(7, 10)
	_, err := v.AllocateBatch([]BatchItem{{s1, p1}, {s2, p2}})
	if err == nil {
		t.Fatal("duplicate-tenant batch accepted")
	}
	if !strings.Contains(err.Error(), "both allocate tenant 7") {
		t.Errorf("unexpected error: %v", err)
	}
	if v.Tenants() != 0 {
		t.Errorf("%d tenants installed by rejected batch", v.Tenants())
	}
}

// TestAllocateBatchSharedCacheConsistency exercises the batch path against
// a pipeline that already hosts tenants, ensuring the memoized physical-NF
// resolution resolves to the same tables sequential allocation uses.
func TestAllocateBatchAfterExistingTenants(t *testing.T) {
	v := fig3Switch(t)
	s0, p0 := batchChain(100, 5)
	if _, err := v.AllocateAt(s0, p0); err != nil {
		t.Fatal(err)
	}
	var items []BatchItem
	for tenant := uint32(1); tenant <= 3; tenant++ {
		s, p := batchChain(tenant, 5)
		items = append(items, BatchItem{SFC: s, Placements: p})
	}
	if _, err := v.AllocateBatch(items); err != nil {
		t.Fatal(err)
	}
	if v.Tenants() != 4 {
		t.Fatalf("tenants = %d, want 4", v.Tenants())
	}
	// Every tenant drains cleanly — placements referenced live tables.
	for _, tenant := range []uint32{100, 1, 2, 3} {
		if err := v.Deallocate(tenant); err != nil {
			t.Errorf("deallocate %d: %v", tenant, err)
		}
	}
}
