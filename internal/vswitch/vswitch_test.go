package vswitch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sfp/internal/nf"
	"sfp/internal/packet"
	"sfp/internal/pipeline"
)

// fig3Switch builds the paper's Fig. 3 toy pipeline: 3 stages hosting
// TC (stage 0), FW (stage 1), LB (stage 2).
func fig3Switch(t *testing.T) *VSwitch {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 3
	cfg.MaxPasses = 3
	v := New(pipeline.New(cfg))
	for _, in := range []struct {
		stage int
		typ   nf.Type
	}{
		{0, nf.TrafficClassifier}, {1, nf.Firewall}, {2, nf.LoadBalancer},
	} {
		if _, err := v.InstallPhysicalNF(in.stage, in.typ, 1000); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

func permitAll() *nf.Config {
	return &nf.Config{Type: nf.Firewall, Rules: []nf.ConfigRule{{
		Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard(), pipeline.Wildcard()},
		Action:  "permit",
	}}}
}

func classAll(class uint64) *nf.Config {
	return &nf.Config{Type: nf.TrafficClassifier, Rules: []nf.ConfigRule{{
		Matches: []pipeline.Match{pipeline.Wildcard(), pipeline.Between(0, 65535)},
		Action:  "set_class", Params: []uint64{class},
	}}}
}

func lbTo(vip uint32, port uint16, backend uint32) *nf.Config {
	return &nf.Config{Type: nf.LoadBalancer, Rules: []nf.ConfigRule{{
		Matches: []pipeline.Match{pipeline.Eq(uint64(vip)), pipeline.Eq(uint64(port))},
		Action:  "dnat", Params: []uint64{uint64(backend), 0},
	}}}
}

func TestFoldFig3(t *testing.T) {
	layout := [][]nf.Type{{nf.TrafficClassifier}, {nf.Firewall}, {nf.LoadBalancer}}

	// SFC 1: TC, FW, LB — fits in one pass.
	p1, err := Fold(layout, []nf.Type{nf.TrafficClassifier, nf.Firewall, nf.LoadBalancer}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if PassesOf(p1) != 1 {
		t.Errorf("SFC1 passes = %d, want 1", PassesOf(p1))
	}

	// SFC 2: FW, LB, TC — FW,LB in pass 0, TC folds into pass 1.
	p2, err := Fold(layout, []nf.Type{nf.Firewall, nf.LoadBalancer, nf.TrafficClassifier}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if PassesOf(p2) != 2 {
		t.Errorf("SFC2 passes = %d, want 2", PassesOf(p2))
	}
	want := []Placement{
		{NFIndex: 0, Type: nf.Firewall, Stage: 1, Pass: 0},
		{NFIndex: 1, Type: nf.LoadBalancer, Stage: 2, Pass: 0},
		{NFIndex: 2, Type: nf.TrafficClassifier, Stage: 0, Pass: 1},
	}
	for i, w := range want {
		if p2[i] != w {
			t.Errorf("placement %d = %+v, want %+v", i, p2[i], w)
		}
	}
}

func TestFoldMissingType(t *testing.T) {
	layout := [][]nf.Type{{nf.Firewall}}
	if _, err := Fold(layout, []nf.Type{nf.Router}, 5); err == nil {
		t.Error("Fold placed a type with no physical instance")
	}
}

func TestFoldTooManyPasses(t *testing.T) {
	// Chain LB,FW on layout FW(0),LB(1) needs 2 passes; cap at 1.
	layout := [][]nf.Type{{nf.Firewall}, {nf.LoadBalancer}}
	if _, err := Fold(layout, []nf.Type{nf.LoadBalancer, nf.Firewall}, 1); err == nil {
		t.Error("Fold exceeded pass cap")
	}
	if _, err := Fold(layout, []nf.Type{nf.LoadBalancer, nf.Firewall}, 2); err != nil {
		t.Errorf("Fold failed within pass cap: %v", err)
	}
}

func TestFoldRepeatedTypes(t *testing.T) {
	// FW,FW on a single-FW pipeline folds into two passes.
	layout := [][]nf.Type{{nf.Firewall}}
	pls, err := Fold(layout, []nf.Type{nf.Firewall, nf.Firewall}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if PassesOf(pls) != 2 || pls[0].Pass != 0 || pls[1].Pass != 1 {
		t.Errorf("placements = %+v", pls)
	}
}

// Property: Fold output is always one placement per chain NF, with strictly
// increasing virtual stage index, each on a stage hosting the type.
func TestFoldProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		S := 2 + r.Intn(8)
		layout := make([][]nf.Type, S)
		all := nf.AllTypes()
		for s := range layout {
			n := 1 + r.Intn(3)
			for i := 0; i < n; i++ {
				layout[s] = append(layout[s], all[r.Intn(len(all))])
			}
		}
		chainLen := 1 + r.Intn(8)
		chain := make([]nf.Type, chainLen)
		for i := range chain {
			chain[i] = all[r.Intn(len(all))]
		}
		maxPasses := 1 + r.Intn(6)
		pls, err := Fold(layout, chain, maxPasses)
		if err != nil {
			return true // infeasible is a valid outcome
		}
		if len(pls) != chainLen {
			return false
		}
		prev := -1
		for i, p := range pls {
			if p.Type != chain[i] || p.Pass >= maxPasses {
				return false
			}
			virt := p.Pass*S + p.Stage
			if virt <= prev {
				return false
			}
			prev = virt
			found := false
			for _, x := range layout[p.Stage] {
				if x == p.Type {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestInstallPhysicalNFDuplicate(t *testing.T) {
	v := fig3Switch(t)
	if _, err := v.InstallPhysicalNF(0, nf.TrafficClassifier, 100); err == nil {
		t.Error("duplicate physical NF accepted")
	}
	if _, err := v.InstallPhysicalNF(99, nf.Firewall, 100); err == nil {
		t.Error("out-of-range stage accepted")
	}
}

func TestAllocateEndToEnd(t *testing.T) {
	v := fig3Switch(t)
	vip := packet.IPv4Addr(20, 0, 0, 1)
	backend1 := packet.IPv4Addr(10, 0, 0, 1)
	backend2 := packet.IPv4Addr(10, 0, 0, 2)

	// Tenant 1: TC, FW, LB — one pass.
	sfc1 := &SFC{Tenant: 1, BandwidthGbps: 10, NFs: []*nf.Config{classAll(4), permitAll(), lbTo(vip, 80, backend1)}}
	a1, err := v.Allocate(sfc1)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Passes != 1 {
		t.Errorf("SFC1 passes = %d, want 1", a1.Passes)
	}

	// Tenant 2: FW, LB, TC — two passes (the Fig. 3 folding case).
	sfc2 := &SFC{Tenant: 2, BandwidthGbps: 10, NFs: []*nf.Config{permitAll(), lbTo(vip, 80, backend2), classAll(7)}}
	a2, err := v.Allocate(sfc2)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Passes != 2 {
		t.Errorf("SFC2 passes = %d, want 2", a2.Passes)
	}
	if got := v.BandwidthUsed(); got != 1*10+2*10 {
		t.Errorf("bandwidth used = %v, want 30", got)
	}

	// Tenant 1 packet: classified, permitted, load-balanced in one pass.
	p1 := packet.NewBuilder().WithTenant(1).WithIPv4(packet.IPv4Addr(1, 1, 1, 1), vip).WithTCP(1234, 80).Build()
	r1 := v.Process(p1, 0)
	if r1.Passes != 1 {
		t.Errorf("tenant1 packet passes = %d, want 1", r1.Passes)
	}
	if p1.Meta.ClassID != 4 {
		t.Errorf("tenant1 class = %d, want 4", p1.Meta.ClassID)
	}
	if p1.IPv4.Dst != backend1 {
		t.Errorf("tenant1 dst = %s, want backend1", packet.FormatIPv4(p1.IPv4.Dst))
	}

	// Tenant 2 packet: recirculates once; TC applies on pass 1.
	p2 := packet.NewBuilder().WithTenant(2).WithIPv4(packet.IPv4Addr(2, 2, 2, 2), vip).WithTCP(4321, 80).Build()
	r2 := v.Process(p2, 0)
	if r2.Passes != 2 {
		t.Errorf("tenant2 packet passes = %d, want 2", r2.Passes)
	}
	if p2.IPv4.Dst != backend2 {
		t.Errorf("tenant2 dst = %s, want backend2 (isolation breach?)", packet.FormatIPv4(p2.IPv4.Dst))
	}
	if p2.Meta.ClassID != 7 {
		t.Errorf("tenant2 class = %d, want 7 (second-pass TC)", p2.Meta.ClassID)
	}

	// A tenant with no allocation passes through untouched.
	p3 := packet.NewBuilder().WithTenant(9).WithIPv4(packet.IPv4Addr(3, 3, 3, 3), vip).WithTCP(5555, 80).Build()
	r3 := v.Process(p3, 0)
	if r3.Passes != 1 || p3.IPv4.Dst != vip || p3.Meta.ClassID != 0 {
		t.Error("unallocated tenant's packet was modified")
	}
}

func TestAllocateDuplicateTenant(t *testing.T) {
	v := fig3Switch(t)
	sfc := &SFC{Tenant: 1, BandwidthGbps: 1, NFs: []*nf.Config{permitAll()}}
	if _, err := v.Allocate(sfc); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Allocate(sfc); err == nil {
		t.Error("double allocation accepted")
	}
}

func TestAllocateCapacityGuard(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 3
	cfg.CapacityGbps = 25
	v := New(pipeline.New(cfg))
	if _, err := v.InstallPhysicalNF(0, nf.Firewall, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Allocate(&SFC{Tenant: 1, BandwidthGbps: 20, NFs: []*nf.Config{permitAll()}}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Allocate(&SFC{Tenant: 2, BandwidthGbps: 20, NFs: []*nf.Config{permitAll()}}); err == nil {
		t.Error("allocation beyond backplane capacity accepted")
	}
}

func TestDeallocateReleasesEverything(t *testing.T) {
	v := fig3Switch(t)
	vip := packet.IPv4Addr(20, 0, 0, 1)
	sfc := &SFC{Tenant: 5, BandwidthGbps: 10, NFs: []*nf.Config{
		permitAll(), lbTo(vip, 80, packet.IPv4Addr(10, 0, 0, 9)), classAll(2),
	}}
	if _, err := v.Allocate(sfc); err != nil {
		t.Fatal(err)
	}
	entriesBefore := v.Pipe.EntriesUsed()
	if entriesBefore == 0 {
		t.Fatal("no entries installed")
	}
	if err := v.Deallocate(5); err != nil {
		t.Fatal(err)
	}
	if v.Pipe.EntriesUsed() != 0 {
		t.Errorf("entries after dealloc = %d, want 0", v.Pipe.EntriesUsed())
	}
	if v.BandwidthUsed() != 0 {
		t.Errorf("bandwidth after dealloc = %v, want 0", v.BandwidthUsed())
	}
	if err := v.Deallocate(5); err == nil {
		t.Error("double deallocation accepted")
	}
	// Departed tenant's packets now pass through untouched.
	p := packet.NewBuilder().WithTenant(5).WithIPv4(1, vip).WithTCP(1, 80).Build()
	v.Process(p, 0)
	if p.IPv4.Dst != vip || p.Meta.ClassID != 0 {
		t.Error("departed tenant's rules still active")
	}
}

func TestAllocateRollbackOnCapacityExhaustion(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Stages = 3
	v := New(pipeline.New(cfg))
	// FW table can hold only 1 rule; TC is roomy.
	if _, err := v.InstallPhysicalNF(0, nf.TrafficClassifier, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := v.InstallPhysicalNF(1, nf.Firewall, 1); err != nil {
		t.Fatal(err)
	}
	fw2 := permitAll()
	fw2.Rules = append(fw2.Rules, fw2.Rules[0]) // 2 rules > capacity 1
	sfc := &SFC{Tenant: 3, BandwidthGbps: 1, NFs: []*nf.Config{classAll(1), fw2}}
	if _, err := v.Allocate(sfc); err == nil {
		t.Fatal("allocation should fail on FW capacity")
	}
	if v.Pipe.EntriesUsed() != 0 {
		t.Errorf("rollback left %d entries installed", v.Pipe.EntriesUsed())
	}
	if v.Allocations(3) != nil || v.BandwidthUsed() != 0 {
		t.Error("rollback left allocation state")
	}
}

func TestAllocateAtValidation(t *testing.T) {
	v := fig3Switch(t)
	sfc := &SFC{Tenant: 1, BandwidthGbps: 1, NFs: []*nf.Config{permitAll(), classAll(1)}}
	// Non-increasing virtual stages must be rejected.
	bad := []Placement{
		{NFIndex: 0, Type: nf.Firewall, Stage: 1, Pass: 0},
		{NFIndex: 1, Type: nf.TrafficClassifier, Stage: 1, Pass: 0},
	}
	if _, err := v.AllocateAt(sfc, bad); err == nil {
		t.Error("non-increasing placement accepted")
	}
	// Wrong type must be rejected.
	bad2 := []Placement{
		{NFIndex: 0, Type: nf.Router, Stage: 1, Pass: 0},
		{NFIndex: 1, Type: nf.TrafficClassifier, Stage: 0, Pass: 1},
	}
	if _, err := v.AllocateAt(sfc, bad2); err == nil {
		t.Error("type-mismatched placement accepted")
	}
	// Placement count mismatch.
	if _, err := v.AllocateAt(sfc, bad[:1]); err == nil {
		t.Error("short placement list accepted")
	}
	// Pass beyond MaxPasses.
	bad3 := []Placement{
		{NFIndex: 0, Type: nf.Firewall, Stage: 1, Pass: 0},
		{NFIndex: 1, Type: nf.TrafficClassifier, Stage: 0, Pass: 5},
	}
	if _, err := v.AllocateAt(sfc, bad3); err == nil {
		t.Error("pass beyond MaxPasses accepted")
	}
}

func TestRemovePhysicalNF(t *testing.T) {
	v := fig3Switch(t)
	sfc := &SFC{Tenant: 1, BandwidthGbps: 1, NFs: []*nf.Config{permitAll()}}
	if _, err := v.Allocate(sfc); err != nil {
		t.Fatal(err)
	}
	if err := v.RemovePhysicalNF(1, nf.Firewall); err == nil {
		t.Error("removed physical NF holding tenant rules")
	}
	v.Deallocate(1)
	if err := v.RemovePhysicalNF(1, nf.Firewall); err != nil {
		t.Errorf("remove after dealloc failed: %v", err)
	}
	if v.FindPhysical(1, nf.Firewall) != nil {
		t.Error("physical NF still registered after removal")
	}
	if err := v.RemovePhysicalNF(1, nf.Firewall); err == nil {
		t.Error("double removal accepted")
	}
}

func TestMultiTenantIsolationSameNF(t *testing.T) {
	// Two tenants share the same physical LB but get different backends —
	// the virtualization core of SFP (Fig. 3's tenant-ID match).
	v := fig3Switch(t)
	vip := packet.IPv4Addr(20, 0, 0, 1)
	b1, b2 := packet.IPv4Addr(10, 0, 1, 1), packet.IPv4Addr(10, 0, 2, 2)
	for tenant, backend := range map[uint32]uint32{1: b1, 2: b2} {
		sfc := &SFC{Tenant: tenant, BandwidthGbps: 1, NFs: []*nf.Config{lbTo(vip, 80, backend)}}
		if _, err := v.Allocate(sfc); err != nil {
			t.Fatal(err)
		}
	}
	for tenant, backend := range map[uint32]uint32{1: b1, 2: b2} {
		p := packet.NewBuilder().WithTenant(tenant).WithIPv4(1, vip).WithTCP(1000, 80).Build()
		v.Process(p, 0)
		if p.IPv4.Dst != backend {
			t.Errorf("tenant %d routed to %s", tenant, packet.FormatIPv4(p.IPv4.Dst))
		}
	}
}
