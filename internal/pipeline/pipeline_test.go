package pipeline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sfp/internal/packet"
)

func testPkt(tenant uint32, dst uint32, dport uint16) *packet.Packet {
	return packet.NewBuilder().
		WithTenant(tenant).
		WithIPv4(packet.IPv4Addr(10, 0, 0, 1), dst).
		WithTCP(4000, dport).
		Build()
}

func newFwdTable(name string, capacity int) *Table {
	t := NewTable(name, []Key{
		{FieldTenantID, MatchExact},
		{FieldDstPort, MatchExact},
	}, capacity)
	t.RegisterAction("fwd", func(ctx *Context, p *packet.Packet, params []uint64) {
		p.Meta.EgressPort = uint16(params[0])
	})
	t.RegisterAction("noop", func(ctx *Context, p *packet.Packet, params []uint64) {})
	t.SetDefault("noop")
	return t
}

func TestExactLookup(t *testing.T) {
	tbl := newFwdTable("t", 10)
	if err := tbl.Insert(&Rule{Matches: []Match{Eq(7), Eq(80)}, Action: "fwd", Params: []uint64{3}}); err != nil {
		t.Fatal(err)
	}
	p := testPkt(7, 99, 80)
	ctx := &Context{}
	if r := tbl.Apply(ctx, p); r == nil {
		t.Fatal("expected hit")
	}
	if p.Meta.EgressPort != 3 {
		t.Errorf("egress = %d, want 3", p.Meta.EgressPort)
	}
	p2 := testPkt(8, 99, 80) // wrong tenant
	if r := tbl.Apply(ctx, p2); r != nil {
		t.Error("expected miss for other tenant")
	}
	if tbl.Hits() != 1 || tbl.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", tbl.Hits(), tbl.Misses())
	}
}

func TestTernaryPriority(t *testing.T) {
	tbl := NewTable("acl", []Key{{FieldIPv4Dst, MatchTernary}}, 10)
	drop := func(ctx *Context, p *packet.Packet, params []uint64) { p.Meta.Drop = true }
	allow := func(ctx *Context, p *packet.Packet, params []uint64) {}
	tbl.RegisterAction("drop", drop)
	tbl.RegisterAction("allow", allow)
	// Low-priority drop-all, high-priority allow for 10.0.0.0/8.
	mustInsert(t, tbl, &Rule{Priority: 1, Matches: []Match{Wildcard()}, Action: "drop"})
	mustInsert(t, tbl, &Rule{Priority: 10, Matches: []Match{Masked(uint64(packet.IPv4Addr(10, 0, 0, 0)), 0xff000000)}, Action: "allow"})

	p := testPkt(1, packet.IPv4Addr(10, 5, 5, 5), 80)
	tbl.Apply(&Context{}, p)
	if p.Meta.Drop {
		t.Error("10/8 packet dropped despite high-priority allow")
	}
	p2 := testPkt(1, packet.IPv4Addr(11, 5, 5, 5), 80)
	tbl.Apply(&Context{}, p2)
	if !p2.Meta.Drop {
		t.Error("non-10/8 packet not dropped by wildcard rule")
	}
}

func TestLPMLongestPrefixWins(t *testing.T) {
	tbl := NewTable("rt", []Key{{FieldIPv4Dst, MatchLPM}}, 10)
	tbl.RegisterAction("fwd", func(ctx *Context, p *packet.Packet, params []uint64) {
		p.Meta.EgressPort = uint16(params[0])
	})
	mustInsert(t, tbl, &Rule{Matches: []Match{Prefix(uint64(packet.IPv4Addr(10, 0, 0, 0)), 8)}, Action: "fwd", Params: []uint64{1}})
	mustInsert(t, tbl, &Rule{Matches: []Match{Prefix(uint64(packet.IPv4Addr(10, 1, 0, 0)), 16)}, Action: "fwd", Params: []uint64{2}})
	p := testPkt(1, packet.IPv4Addr(10, 1, 2, 3), 80)
	tbl.Apply(&Context{}, p)
	if p.Meta.EgressPort != 2 {
		t.Errorf("egress = %d, want 2 (/16 beats /8)", p.Meta.EgressPort)
	}
	p2 := testPkt(1, packet.IPv4Addr(10, 9, 2, 3), 80)
	tbl.Apply(&Context{}, p2)
	if p2.Meta.EgressPort != 1 {
		t.Errorf("egress = %d, want 1 (/8)", p2.Meta.EgressPort)
	}
}

func TestRangeMatch(t *testing.T) {
	tbl := NewTable("cls", []Key{{FieldDstPort, MatchRange}}, 4)
	tbl.RegisterAction("mark", func(ctx *Context, p *packet.Packet, params []uint64) {
		p.Meta.ClassID = uint16(params[0])
	})
	mustInsert(t, tbl, &Rule{Matches: []Match{Between(1024, 49151)}, Action: "mark", Params: []uint64{2}})
	p := testPkt(1, 5, 8080)
	tbl.Apply(&Context{}, p)
	if p.Meta.ClassID != 2 {
		t.Errorf("class = %d, want 2", p.Meta.ClassID)
	}
	p2 := testPkt(1, 5, 80)
	tbl.Apply(&Context{}, p2)
	if p2.Meta.ClassID != 0 {
		t.Errorf("class = %d, want 0 (miss)", p2.Meta.ClassID)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	tbl := newFwdTable("t", 2)
	mustInsert(t, tbl, &Rule{Matches: []Match{Eq(1), Eq(1)}, Action: "fwd", Params: []uint64{1}})
	mustInsert(t, tbl, &Rule{Matches: []Match{Eq(2), Eq(2)}, Action: "fwd", Params: []uint64{1}})
	if err := tbl.Insert(&Rule{Matches: []Match{Eq(3), Eq(3)}, Action: "fwd", Params: []uint64{1}}); err == nil {
		t.Error("insert beyond capacity succeeded")
	}
}

func TestInsertValidation(t *testing.T) {
	tbl := newFwdTable("t", 5)
	if err := tbl.Insert(&Rule{Matches: []Match{Eq(1)}, Action: "fwd"}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := tbl.Insert(&Rule{Matches: []Match{Eq(1), Eq(2)}, Action: "nosuch"}); err == nil {
		t.Error("unknown action accepted")
	}
}

func TestDeleteTenant(t *testing.T) {
	tbl := newFwdTable("t", 10)
	for i := uint64(0); i < 6; i++ {
		tenant := uint32(1 + i%2)
		mustInsert(t, tbl, &Rule{Matches: []Match{Eq(uint64(tenant)), Eq(i)}, Action: "fwd", Params: []uint64{1}, Tenant: tenant})
	}
	if freed := tbl.DeleteTenant(1); freed != 3 {
		t.Errorf("freed = %d, want 3", freed)
	}
	if tbl.Used() != 3 {
		t.Errorf("used = %d, want 3", tbl.Used())
	}
	// Remaining tenant-2 rules must still be reachable via the rebuilt index.
	p := testPkt(2, 5, 1)
	if r := tbl.Apply(&Context{}, p); r == nil {
		t.Error("tenant-2 rule lost after DeleteTenant(1)")
	}
}

func TestStageBlockAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EntriesPerBlock = 100
	cfg.BlocksPerStage = 3
	pl := New(cfg)
	st := pl.Stages[0]
	if err := st.AddTable(newFwdTable("a", 150)); err != nil { // 2 blocks
		t.Fatal(err)
	}
	if got := st.BlocksUsed(); got != 2 {
		t.Errorf("blocks = %d, want 2 (ceil(150/100))", got)
	}
	if err := st.AddTable(newFwdTable("b", 100)); err != nil { // 1 block
		t.Fatal(err)
	}
	if err := st.AddTable(newFwdTable("c", 1)); err == nil {
		t.Error("table accepted beyond block budget")
	}
	if !st.RemoveTable("b") {
		t.Error("RemoveTable failed")
	}
	if err := st.AddTable(newFwdTable("c", 1)); err != nil {
		t.Errorf("table rejected after removal: %v", err)
	}
}

func TestRecirculation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stages = 3
	cfg.MaxPasses = 3
	pl := New(cfg)
	last := pl.Stages[2]
	tbl := NewTable("tail", []Key{{FieldPass, MatchExact}}, 4)
	tbl.RegisterAction("noop", func(ctx *Context, p *packet.Packet, params []uint64) {})
	// Pass 0 recirculates (REC set); pass 1 terminates.
	mustInsert(t, tbl, &Rule{Matches: []Match{Eq(0)}, Action: "noop", Rec: true})
	mustInsert(t, tbl, &Rule{Matches: []Match{Eq(1)}, Action: "noop"})
	if err := last.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	p := testPkt(1, 5, 80)
	res := pl.Process(p, 0)
	if res.Passes != 2 {
		t.Errorf("passes = %d, want 2", res.Passes)
	}
	if p.Meta.Pass != 1 {
		t.Errorf("pass counter = %d, want 1", p.Meta.Pass)
	}
	// Two passes × three stages of traversal, two applied tables (the
	// pass-0 and pass-1 rules), one recirculation.
	wantLat := cfg.ParserNs + 2*3*cfg.PerStageNs + 2*cfg.PerTableNs + cfg.RecircNs + cfg.DeparserNs
	if res.LatencyNs != wantLat {
		t.Errorf("latency = %v, want %v", res.LatencyNs, wantLat)
	}
	if pl.Recirculated() != 1 {
		t.Errorf("recirculated counter = %d, want 1", pl.Recirculated())
	}
}

func TestMaxPassesBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stages = 1
	cfg.MaxPasses = 4
	pl := New(cfg)
	tbl := NewTable("loop", []Key{{FieldPass, MatchTernary}}, 1)
	tbl.RegisterAction("noop", func(ctx *Context, p *packet.Packet, params []uint64) {})
	mustInsert(t, tbl, &Rule{Matches: []Match{Wildcard()}, Action: "noop", Rec: true})
	if err := pl.Stages[0].AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	res := pl.Process(testPkt(1, 5, 80), 0)
	if res.Passes != 4 {
		t.Errorf("passes = %d, want MaxPasses=4 (always-recirculate rule)", res.Passes)
	}
}

func TestDropShortCircuits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stages = 4
	pl := New(cfg)
	dropTbl := NewTable("fw", []Key{{FieldIPv4Dst, MatchTernary}}, 2)
	dropTbl.RegisterAction("drop", func(ctx *Context, p *packet.Packet, params []uint64) { p.Meta.Drop = true })
	mustInsert(t, dropTbl, &Rule{Matches: []Match{Wildcard()}, Action: "drop"})
	if err := pl.Stages[1].AddTable(dropTbl); err != nil {
		t.Fatal(err)
	}
	marker := NewTable("later", []Key{{FieldIPv4Dst, MatchTernary}}, 2)
	marker.RegisterAction("mark", func(ctx *Context, p *packet.Packet, params []uint64) { p.Meta.ClassID = 9 })
	mustInsert(t, marker, &Rule{Matches: []Match{Wildcard()}, Action: "mark"})
	if err := pl.Stages[3].AddTable(marker); err != nil {
		t.Fatal(err)
	}
	p := testPkt(1, 5, 80)
	res := pl.Process(p, 0)
	if !res.Dropped {
		t.Error("packet not dropped")
	}
	if p.Meta.ClassID == 9 {
		t.Error("stage after drop still executed")
	}
}

func TestRegisterFile(t *testing.T) {
	rf := NewRegisterFile()
	if err := rf.Alloc("tokens", 8); err != nil {
		t.Fatal(err)
	}
	if err := rf.Alloc("tokens", 8); err == nil {
		t.Error("double alloc accepted")
	}
	if err := rf.Alloc("bad", 0); err == nil {
		t.Error("zero-size alloc accepted")
	}
	rf.Write("tokens", 3, 42)
	if got := rf.Read("tokens", 3); got != 42 {
		t.Errorf("read = %d, want 42", got)
	}
	if got := rf.Add("tokens", 3, -2); got != 40 {
		t.Errorf("add = %d, want 40", got)
	}
	if got := rf.Read("tokens", 99); got != 0 {
		t.Errorf("out-of-range read = %d, want 0", got)
	}
	rf.Write("tokens", -1, 5) // must not panic
	rf.Free("tokens")
	if rf.Size("tokens") != 0 {
		t.Error("Free did not release array")
	}
}

// Property: a ternary match with a full mask behaves exactly like an exact
// match, for arbitrary field values.
func TestTernaryFullMaskEqualsExact(t *testing.T) {
	f := func(ruleVal, pktVal uint32) bool {
		ternary := Match{Value: uint64(ruleVal), Mask: ^uint64(0)}
		exact := Match{Value: uint64(ruleVal)}
		v := uint64(pktVal)
		return ternary.matches(v, MatchTernary, 32) == exact.matches(v, MatchExact, 32)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: LPM with prefix length 32 equals exact; prefix length 0 matches
// everything.
func TestLPMBoundaryProperties(t *testing.T) {
	f := func(ruleVal, pktVal uint32) bool {
		full := Match{Value: uint64(ruleVal), PrefixLen: 32}
		if full.matches(uint64(pktVal), MatchLPM, 32) != (ruleVal == pktVal) {
			return false
		}
		any := Match{Value: uint64(ruleVal), PrefixLen: 0}
		return any.matches(uint64(pktVal), MatchLPM, 32)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestLineRatePPS(t *testing.T) {
	// 100 Gbps at 64B frames: 100e9 / (84*8) = 148.8 Mpps.
	got := LineRatePPS(100, 64)
	if got < 148.8e6*0.99 || got > 148.8e6*1.01 {
		t.Errorf("LineRatePPS(100,64) = %g, want ≈148.8e6", got)
	}
}

func TestFieldExtract(t *testing.T) {
	p := packet.NewBuilder().WithVLAN(33).WithIPv4(0x0a000001, 0x0a000002).WithTCP(1234, 443).WithTCPFlags(packet.TCPSyn).Build()
	p.Meta.Pass = 2
	p.Meta.ClassID = 5
	p.Meta.IngressPort = 9
	cases := []struct {
		f    FieldID
		want uint64
	}{
		{FieldTenantID, 33},
		{FieldPass, 2},
		{FieldVLANID, 33},
		{FieldIPv4Src, 0x0a000001},
		{FieldIPv4Dst, 0x0a000002},
		{FieldIPProto, uint64(packet.ProtoTCP)},
		{FieldSrcPort, 1234},
		{FieldDstPort, 443},
		{FieldTCPFlags, uint64(packet.TCPSyn)},
		{FieldClassID, 5},
		{FieldIngressPort, 9},
		{FieldEtherType, uint64(packet.EtherTypeVLAN)},
	}
	for _, c := range cases {
		if got := Extract(p, c.f); got != c.want {
			t.Errorf("Extract(%v) = %d, want %d", c.f, got, c.want)
		}
	}
	// UDP port extraction.
	u := packet.NewBuilder().WithIPv4(1, 2).WithUDP(53, 5353).Build()
	if Extract(u, FieldSrcPort) != 53 || Extract(u, FieldDstPort) != 5353 {
		t.Error("UDP port extraction failed")
	}
	// Invalid headers read as zero.
	bare := &packet.Packet{}
	if Extract(bare, FieldIPv4Src) != 0 || Extract(bare, FieldTCPFlags) != 0 {
		t.Error("invalid header fields should read 0")
	}
}

func mustInsert(t *testing.T, tbl *Table, r *Rule) {
	t.Helper()
	if err := tbl.Insert(r); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExactLookup(b *testing.B) {
	tbl := newFwdTable("t", 10000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		tbl.Insert(&Rule{Matches: []Match{Eq(uint64(i % 64)), Eq(uint64(i))}, Action: "fwd", Params: []uint64{1}})
	}
	p := testPkt(uint32(rng.Intn(64)), 5, uint16(rng.Intn(10000)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(p)
	}
}

func BenchmarkPipelineProcess(b *testing.B) {
	pl := New(DefaultConfig())
	for i, st := range pl.Stages {
		tbl := newFwdTable("t", 100)
		tbl.Insert(&Rule{Matches: []Match{Eq(1), Eq(80)}, Action: "fwd", Params: []uint64{uint64(i)}})
		st.AddTable(tbl)
	}
	p := testPkt(1, 5, 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Meta.Pass = 0
		pl.Process(p, float64(i))
	}
}
