package pipeline

// Fast-path micro-benchmarks backing BENCH_fastpath.json (scripts/check.sh
// bench). The hot-path benchmarks (lookup, process) must report 0 allocs/op;
// BenchmarkLookupTenants1024 must stay within 3x of BenchmarkLookupTenants1,
// demonstrating that the tenant-sharded index makes lookup cost flat in
// tenant count rather than linear in total rule count.

import (
	"testing"

	"sfp/internal/packet"
)

// shardedTable builds a physical-NF-shaped table: exact (tenant, pass)
// prefix followed by ternary keys, with rulesPer rules per tenant.
func shardedTable(b testing.TB, tenants, rulesPer int) *Table {
	keys := []Key{
		{Field: FieldTenantID, Kind: MatchExact},
		{Field: FieldPass, Kind: MatchExact},
		{Field: FieldIPv4Dst, Kind: MatchTernary},
		{Field: FieldDstPort, Kind: MatchTernary},
	}
	t := NewTable("bench", keys, tenants*rulesPer+1)
	t.RegisterAction("permit", func(ctx *Context, p *packet.Packet, params []uint64) {})
	for tn := 1; tn <= tenants; tn++ {
		for r := 0; r < rulesPer; r++ {
			err := t.Insert(&Rule{
				Priority: r,
				Matches: []Match{
					Eq(uint64(tn)), Eq(0),
					Masked(uint64(0x0a000000+r), 0xffffffff), Wildcard(),
				},
				Action: "permit",
				Tenant: uint32(tn),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	return t
}

func benchLookupTenants(b *testing.B, tenants int) {
	tbl := shardedTable(b, tenants, 8)
	p := packet.NewBuilder().
		WithTenant(uint32(tenants)).
		WithIPv4(packet.IPv4Addr(10, 0, 0, 7), packet.IPv4Addr(10, 0, 0, 1)).
		WithTCP(1234, 80).
		Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(p)
	}
}

func BenchmarkLookupTenants1(b *testing.B)    { benchLookupTenants(b, 1) }
func BenchmarkLookupTenants64(b *testing.B)   { benchLookupTenants(b, 64) }
func BenchmarkLookupTenants1024(b *testing.B) { benchLookupTenants(b, 1024) }

// benchPipeline hosts the sharded table on stage 0 of a default pipeline.
func benchPipeline(b testing.TB, tenants int) (*Pipeline, *packet.Packet) {
	pl := New(DefaultConfig())
	if err := pl.Stages[0].AddTable(shardedTable(b, tenants, 8)); err != nil {
		b.Fatal(err)
	}
	p := packet.NewBuilder().
		WithTenant(uint32(tenants)).
		WithIPv4(packet.IPv4Addr(10, 0, 0, 7), packet.IPv4Addr(10, 0, 0, 1)).
		WithTCP(1234, 80).
		Build()
	return pl, p
}

// BenchmarkProcess measures the full per-packet path through an 8-stage
// pipeline (pooled Context; previously one Context allocation per stage).
func BenchmarkProcess(b *testing.B) {
	pl, p := benchPipeline(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Meta.Pass = 0
		p.Meta.Recirculate = false
		pl.Process(p, float64(i))
	}
}

// BenchmarkProcessCtx is BenchmarkProcess with a caller-owned scratch
// Context — the replay engine's zero-overhead entry point.
func BenchmarkProcessCtx(b *testing.B) {
	pl, p := benchPipeline(b, 64)
	var ctx Context
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Meta.Pass = 0
		p.Meta.Recirculate = false
		pl.ProcessCtx(p, float64(i), &ctx)
	}
}

// BenchmarkDeleteTenantChurn measures one tenant departing and re-arriving
// on a loaded exact table. The legacy path rebuilt the whole exact index on
// every departure (O(total rules)); the incremental path touches only the
// departing tenant's keys.
func BenchmarkDeleteTenantChurn(b *testing.B) {
	keys := []Key{
		{Field: FieldTenantID, Kind: MatchExact},
		{Field: FieldIPv4Dst, Kind: MatchExact},
	}
	const tenants, rulesPer = 256, 8
	tbl := NewTable("churn", keys, tenants*rulesPer)
	tbl.RegisterAction("permit", func(ctx *Context, p *packet.Packet, params []uint64) {})
	insert := func(tn uint32) {
		for r := 0; r < rulesPer; r++ {
			err := tbl.Insert(&Rule{
				Matches: []Match{Eq(uint64(tn)), Eq(uint64(r))},
				Action:  "permit", Tenant: tn,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	for tn := 1; tn <= tenants; tn++ {
		insert(uint32(tn))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn := uint32(1 + i%tenants)
		tbl.DeleteTenant(tn)
		insert(tn)
	}
}

// BenchmarkDeleteTenantChurnSharded is the same churn on a sharded
// ternary-suffix table, the shape every physical NF table has.
func BenchmarkDeleteTenantChurnSharded(b *testing.B) {
	const tenants, rulesPer = 256, 8
	tbl := shardedTable(b, tenants, rulesPer)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn := uint32(1 + i%tenants)
		tbl.DeleteTenant(tn)
		for r := 0; r < rulesPer; r++ {
			err := tbl.Insert(&Rule{
				Priority: r,
				Matches: []Match{
					Eq(uint64(tn)), Eq(0),
					Masked(uint64(0x0a000000+r), 0xffffffff), Wildcard(),
				},
				Action: "permit",
				Tenant: tn,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
