package pipeline

// Compiled-path micro-benchmarks backing BENCH_dataplane.json (scripts/
// check.sh bench). The gate requires the compiled single-packet path to
// report 0 allocs/op and to be no slower than the interpreter baseline
// (BenchmarkProcess / BenchmarkProcessCtx in fastpath_bench_test.go).

import "testing"

// BenchmarkCompiledProcess is BenchmarkProcess on the compiled fast path:
// same 8-stage pipeline, same sharded 64-tenant table, pooled Context.
func BenchmarkCompiledProcess(b *testing.B) {
	pl, p := benchPipeline(b, 64)
	c := pl.Compile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Meta.Pass = 0
		p.Meta.Recirculate = false
		c.Process(p, float64(i))
	}
}

// BenchmarkCompiledProcessCtx is the caller-owned-Context variant.
func BenchmarkCompiledProcessCtx(b *testing.B) {
	pl, p := benchPipeline(b, 64)
	c := pl.Compile()
	var ctx Context
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Meta.Pass = 0
		p.Meta.Recirculate = false
		c.ProcessCtx(p, float64(i), &ctx)
	}
}

// BenchmarkCompiledBatch measures the batched entry point: 64-packet chunks
// with one telemetry flush per chunk. ns/op is per batch; the per-packet
// cost is reported as ns/pkt.
func BenchmarkCompiledBatch(b *testing.B) {
	const batch = 64
	pl, proto := benchPipeline(b, 64)
	c := pl.Compile()
	items := make([]Item, batch)
	for i := range items {
		cp := *proto
		items[i] = Item{Pkt: &cp, NowNs: float64(i)}
	}
	out := make([]Result, 0, batch)
	s := c.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = c.ProcessBatch(items, out[:0], s)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/pkt")
}
