package pipeline

import (
	"math/rand"
	"sort"
	"testing"

	"sfp/internal/packet"
)

// refLookup is an independent reference implementation of table lookup: a
// stable sort of all rules by (priority desc, max prefix desc) followed by
// a full linear scan — exactly the legacy algorithm the sharded index
// replaced. The property tests assert the fast path returns the identical
// rule (pointer equality, so priority and LPM tie-breaks must agree too).
func refLookup(keys []Key, rules []*Rule, p *packet.Packet) *Rule {
	ordered := append([]*Rule(nil), rules...)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		return maxPrefix(a) > maxPrefix(b)
	})
	for _, r := range ordered {
		ok := true
		for i, k := range keys {
			if !r.Matches[i].matches(Extract(p, k.Field), k.Kind, k.Field.Bits()) {
				ok = false
				break
			}
		}
		if ok {
			return r
		}
	}
	return nil
}

// randomSuffix builds one random match for the given key kind.
func randomSuffix(rng *rand.Rand, k Key) Match {
	switch k.Kind {
	case MatchExact:
		return Eq(uint64(rng.Intn(8)))
	case MatchTernary:
		if rng.Intn(3) == 0 {
			return Wildcard()
		}
		return Masked(uint64(rng.Uint32()), uint64(rng.Uint32()))
	case MatchLPM:
		return Prefix(uint64(rng.Uint32()), rng.Intn(33))
	case MatchRange:
		lo := uint64(rng.Intn(60000))
		return Between(lo, lo+uint64(rng.Intn(5000)))
	}
	return Wildcard()
}

// TestShardedLookupMatchesReference drives randomized multi-tenant rule
// sets through the sharded fast path and the legacy full scan and requires
// identical winners on every probe.
func TestShardedLookupMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := []Key{
		{Field: FieldTenantID, Kind: MatchExact},
		{Field: FieldPass, Kind: MatchExact},
		{Field: FieldIPv4Dst, Kind: MatchLPM},
		{Field: FieldDstPort, Kind: MatchRange},
		{Field: FieldIPProto, Kind: MatchTernary},
	}
	for trial := 0; trial < 20; trial++ {
		tenants := 1 + rng.Intn(40)
		tbl := NewTable("prop", keys, 4096)
		tbl.RegisterAction("act", func(ctx *Context, p *packet.Packet, params []uint64) {})
		if !tbl.Sharded() {
			t.Fatal("table with exact (tenant, pass) prefix should be sharded")
		}
		var rules []*Rule
		nRules := 1 + rng.Intn(200)
		for i := 0; i < nRules; i++ {
			r := &Rule{
				// Few distinct priorities so ties are common.
				Priority: rng.Intn(4),
				Matches: []Match{
					Eq(uint64(1 + rng.Intn(tenants))),
					Eq(uint64(rng.Intn(3))),
					randomSuffix(rng, keys[2]),
					randomSuffix(rng, keys[3]),
					randomSuffix(rng, keys[4]),
				},
				Action: "act",
				Tenant: uint32(1 + rng.Intn(tenants)),
			}
			if err := tbl.Insert(r); err != nil {
				t.Fatal(err)
			}
			rules = append(rules, r)
		}
		for probe := 0; probe < 300; probe++ {
			p := packet.NewBuilder().
				WithTenant(uint32(1 + rng.Intn(tenants))).
				WithIPv4(rng.Uint32(), rng.Uint32()).
				WithTCP(uint16(rng.Intn(65536)), uint16(rng.Intn(65536))).
				Build()
			p.Meta.Pass = uint8(rng.Intn(3))
			got := tbl.Lookup(p)
			want := refLookup(keys, rules, p)
			if got != want {
				t.Fatalf("trial %d probe %d: sharded lookup = %+v, reference = %+v", trial, probe, got, want)
			}
		}
	}
}

// TestGenericLookupMatchesReference covers the non-sharded sorted-scan path
// (no tenant prefix), validating that incremental sorted insertion agrees
// with the legacy lazy stable sort on priorities and LPM tie-breaks.
func TestGenericLookupMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := []Key{
		{Field: FieldIPv4Dst, Kind: MatchLPM},
		{Field: FieldDstPort, Kind: MatchRange},
	}
	for trial := 0; trial < 20; trial++ {
		tbl := NewTable("generic", keys, 1024)
		tbl.RegisterAction("act", func(ctx *Context, p *packet.Packet, params []uint64) {})
		if tbl.Sharded() {
			t.Fatal("table without tenant prefix must not be sharded")
		}
		var rules []*Rule
		for i := 0; i < 1+rng.Intn(100); i++ {
			r := &Rule{
				Priority: rng.Intn(3),
				Matches:  []Match{randomSuffix(rng, keys[0]), randomSuffix(rng, keys[1])},
				Action:   "act",
			}
			if err := tbl.Insert(r); err != nil {
				t.Fatal(err)
			}
			rules = append(rules, r)
		}
		for probe := 0; probe < 200; probe++ {
			p := packet.NewBuilder().
				WithIPv4(rng.Uint32(), rng.Uint32()).
				WithTCP(uint16(rng.Intn(65536)), uint16(rng.Intn(65536))).
				Build()
			got := tbl.Lookup(p)
			want := refLookup(keys, rules, p)
			if got != want {
				t.Fatalf("trial %d probe %d: generic lookup = %+v, reference = %+v", trial, probe, got, want)
			}
		}
	}
}

// TestShardedLookupAfterDeleteTenant checks that incremental shard deletion
// leaves the surviving tenants' lookups identical to the reference.
func TestShardedLookupAfterDeleteTenant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := []Key{
		{Field: FieldTenantID, Kind: MatchExact},
		{Field: FieldPass, Kind: MatchExact},
		{Field: FieldIPv4Dst, Kind: MatchTernary},
	}
	tbl := NewTable("churn", keys, 4096)
	tbl.RegisterAction("act", func(ctx *Context, p *packet.Packet, params []uint64) {})
	var live []*Rule
	for tn := 1; tn <= 20; tn++ {
		for i := 0; i < 10; i++ {
			r := &Rule{
				Priority: rng.Intn(3),
				Matches:  []Match{Eq(uint64(tn)), Eq(0), randomSuffix(rng, keys[2])},
				Action:   "act",
				Tenant:   uint32(tn),
			}
			if err := tbl.Insert(r); err != nil {
				t.Fatal(err)
			}
			live = append(live, r)
		}
	}
	// Remove every third tenant.
	for tn := 3; tn <= 20; tn += 3 {
		if freed := tbl.DeleteTenant(uint32(tn)); freed != 10 {
			t.Fatalf("tenant %d: freed %d rules, want 10", tn, freed)
		}
		kept := live[:0]
		for _, r := range live {
			if r.Tenant != uint32(tn) {
				kept = append(kept, r)
			}
		}
		live = kept
	}
	for probe := 0; probe < 500; probe++ {
		p := packet.NewBuilder().
			WithTenant(uint32(1 + rng.Intn(20))).
			WithIPv4(rng.Uint32(), rng.Uint32()).
			Build()
		got := tbl.Lookup(p)
		want := refLookup(keys, live, p)
		if got != want {
			t.Fatalf("probe %d: lookup = %+v, reference = %+v", probe, got, want)
		}
	}
}

// TestInsertRejectsDuplicateExactKey is the regression test for the
// duplicate-shadowing bug: inserting a second rule with an identical exact
// key used to silently overwrite the index entry while still appending to
// the rule list, leaking capacity and resurrecting the shadowed rule when
// DeleteTenant rebuilt the index.
func TestInsertRejectsDuplicateExactKey(t *testing.T) {
	keys := []Key{
		{Field: FieldTenantID, Kind: MatchExact},
		{Field: FieldDstPort, Kind: MatchExact},
	}
	tbl := NewTable("dup", keys, 10)
	tbl.RegisterAction("a", func(ctx *Context, p *packet.Packet, params []uint64) {})
	first := &Rule{Matches: []Match{Eq(1), Eq(80)}, Action: "a", Tenant: 1}
	if err := tbl.Insert(first); err != nil {
		t.Fatal(err)
	}
	dup := &Rule{Matches: []Match{Eq(1), Eq(80)}, Action: "a", Tenant: 2}
	if err := tbl.Insert(dup); err == nil {
		t.Fatal("duplicate exact key accepted")
	}
	if tbl.Used() != 1 {
		t.Fatalf("used = %d after rejected insert, want 1 (capacity leak)", tbl.Used())
	}
	// A different tenant's departure must not resurrect or disturb the rule.
	tbl.DeleteTenant(2)
	p := packet.NewBuilder().WithTenant(1).WithIPv4(1, 2).WithTCP(9999, 80).Build()
	if got := tbl.Lookup(p); got != first {
		t.Fatalf("lookup after unrelated delete = %+v, want original rule", got)
	}
	// Distinct keys still insert fine.
	if err := tbl.Insert(&Rule{Matches: []Match{Eq(1), Eq(443)}, Action: "a", Tenant: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestHotPathZeroAlloc asserts the per-packet path performs no heap
// allocations: sharded lookup, exact lookup, and a full pipeline traversal.
func TestHotPathZeroAlloc(t *testing.T) {
	tbl := shardedTable(t, 64, 8)
	p := packet.NewBuilder().
		WithTenant(64).
		WithIPv4(packet.IPv4Addr(10, 0, 0, 7), packet.IPv4Addr(10, 0, 0, 1)).
		WithTCP(1234, 80).
		Build()
	if n := testing.AllocsPerRun(200, func() { tbl.Lookup(p) }); n != 0 {
		t.Errorf("sharded Lookup allocates %.1f per op, want 0", n)
	}

	exact := NewTable("exact", []Key{
		{Field: FieldTenantID, Kind: MatchExact},
		{Field: FieldDstPort, Kind: MatchExact},
	}, 8)
	exact.RegisterAction("a", func(ctx *Context, p *packet.Packet, params []uint64) {})
	if err := exact.Insert(&Rule{Matches: []Match{Eq(64), Eq(80)}, Action: "a"}); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() { exact.Lookup(p) }); n != 0 {
		t.Errorf("exact Lookup allocates %.1f per op, want 0", n)
	}

	pl, pp := benchPipeline(t, 64)
	if n := testing.AllocsPerRun(200, func() {
		pp.Meta.Pass = 0
		pp.Meta.Recirculate = false
		pl.Process(pp, 0)
	}); n != 0 {
		t.Errorf("Process allocates %.1f per op, want 0", n)
	}
	var ctx Context
	if n := testing.AllocsPerRun(200, func() {
		pp.Meta.Pass = 0
		pp.Meta.Recirculate = false
		pl.ProcessCtx(pp, 0, &ctx)
	}); n != 0 {
		t.Errorf("ProcessCtx allocates %.1f per op, want 0", n)
	}
}
