package pipeline

import (
	"strings"
	"testing"
)

func TestSnapshotCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stages = 2
	pl := New(cfg)
	tbl := newFwdTable("t0", 100)
	mustInsert(t, tbl, &Rule{Matches: []Match{Eq(1), Eq(80)}, Action: "fwd", Params: []uint64{3}})
	if err := pl.Stages[0].AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	// 3 hits, 2 misses.
	for i := 0; i < 3; i++ {
		pl.Process(testPkt(1, 5, 80), 0)
	}
	for i := 0; i < 2; i++ {
		pl.Process(testPkt(2, 5, 80), 0)
	}

	snap := pl.Snapshot()
	if snap.Processed != 5 {
		t.Errorf("processed = %d", snap.Processed)
	}
	if len(snap.Stages) != 2 {
		t.Fatalf("stages = %d", len(snap.Stages))
	}
	ts := snap.Stages[0].Tables
	if len(ts) != 1 || ts[0].Name != "t0" {
		t.Fatalf("tables = %+v", ts)
	}
	if ts[0].Hits != 3 || ts[0].Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 3/2", ts[0].Hits, ts[0].Misses)
	}
	if got := ts[0].HitRate(); got < 0.59 || got > 0.61 {
		t.Errorf("hit rate = %v, want 0.6", got)
	}
	if ts[0].Used != 1 || ts[0].Capacity != 100 {
		t.Errorf("used/capacity = %d/%d", ts[0].Used, ts[0].Capacity)
	}

	var sb strings.Builder
	if _, err := snap.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"5 processed", "stage 0:", "t0", "rate=0.60"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotEmptyTable(t *testing.T) {
	pl := New(DefaultConfig())
	snap := pl.Snapshot()
	if len(snap.Stages) != DefaultConfig().Stages {
		t.Fatalf("stages = %d", len(snap.Stages))
	}
	if (TableStats{}).HitRate() != 0 {
		t.Error("hit rate of idle table should be 0")
	}
}
