package pipeline

import (
	"fmt"
	"sort"

	"sfp/internal/packet"
)

// ActionFunc is the body of a P4 action: it mutates the packet (headers and
// metadata) using the rule's action parameters. The context exposes the
// stage's stateful registers.
type ActionFunc func(ctx *Context, p *packet.Packet, params []uint64)

// Context is passed to actions, giving access to pipeline state the action
// may read or update.
type Context struct {
	// StageIndex is the 0-based physical stage executing the action.
	StageIndex int
	// Regs is the register file of the executing stage.
	Regs *RegisterFile
	// NowNs is the simulated timestamp of the packet, for time-dependent
	// actions such as token-bucket rate limiters.
	NowNs float64
}

// Rule is one entry of a match-action table. Matches align positionally
// with the table's key specification.
type Rule struct {
	// Priority orders ternary/range lookups; higher wins. Exact-only tables
	// ignore priority.
	Priority int
	Matches  []Match
	// Action names an action registered on the table.
	Action string
	// Params are the action data (e.g. the next-hop port or rewrite value).
	Params []uint64
	// Rec is the paper's REC argument: when the rule fires in the last
	// stage of a pass, the packet is recirculated and its pass counter
	// incremented (§IV, "NFs in the last stage is specially crafted").
	Rec bool
	// Tenant tags the rule's owner (0 = infrastructure rule), so that a
	// tenant's rules can be bulk-deleted on departure.
	Tenant uint32

	// fn caches the resolved action body at Insert time so the compiled hot
	// path skips the per-packet action-map lookup. Insert validates the
	// action name, so fn is always set for installed rules.
	fn ActionFunc
}

// Table is a match-action table resident in one stage.
//
// Lookup structures are maintained incrementally on Insert/DeleteTenant so
// that Lookup itself is a pure read: concurrent Lookup/Apply calls from
// parallel replay workers are safe as long as rule installation is not
// racing with packet processing (the control plane serializes its own
// updates, mirroring a real switch driver).
type Table struct {
	Name string
	Keys []Key
	// Capacity is the number of entries reserved for this table. The
	// physical NF reserves capacity when installed; rule insertion beyond
	// capacity fails, mirroring SRAM/TCAM exhaustion.
	Capacity int

	// DefaultAction runs when no rule matches ("No-Ops" for physical NFs).
	DefaultAction string
	DefaultParams []uint64

	actions map[string]ActionFunc
	// rules holds every installed entry in insertion order (the canonical
	// list used by Used, DeleteTenant, and capacity accounting).
	rules []*Rule
	// scan is the priority-ordered view scanned by generic (non-sharded)
	// ternary/LPM/range lookups, kept sorted on Insert.
	scan []*Rule

	// exactIdx accelerates lookups for all-exact key specs: FNV-1a over the
	// packed key values -> collision bucket. Buckets are verified against
	// the actual match values, so hash collisions cost a compare, never a
	// wrong result.
	exactIdx map[uint64][]*Rule

	// shards buckets rules of tables whose key spec leads with exact
	// (tenant_id, pass) — the shape of every physical NF table SFP installs
	// (§IV) — by that packed prefix. A lookup then scans only the owning
	// tenant's handful of rules instead of every tenant's, making per-packet
	// cost flat in tenant count (the consolidation property virtualization
	// is supposed to preserve).
	shards map[uint64][]*Rule

	// allExact / sharded cache the key-spec classification at build time so
	// the hot path never re-derives it.
	allExact bool
	sharded  bool

	// hits and misses count lookups for observability. Atomic and
	// cache-line padded: parallel replay workers may share one pipeline,
	// and unpadded adjacent counters false-share a line.
	hits, misses counter
}

// NewTable creates a table with the given key specification and entry
// capacity.
func NewTable(name string, keys []Key, capacity int) *Table {
	t := &Table{
		Name:     name,
		Keys:     keys,
		Capacity: capacity,
		actions:  make(map[string]ActionFunc),
	}
	t.allExact = len(keys) > 0
	for _, k := range keys {
		if k.Kind != MatchExact {
			t.allExact = false
			break
		}
	}
	t.sharded = !t.allExact && len(keys) >= 2 &&
		keys[0].Field == FieldTenantID && keys[0].Kind == MatchExact &&
		keys[1].Field == FieldPass && keys[1].Kind == MatchExact
	return t
}

// RegisterAction binds an action name usable by rules of this table.
func (t *Table) RegisterAction(name string, fn ActionFunc) {
	t.actions[name] = fn
}

// SetDefault sets the default (miss) action.
func (t *Table) SetDefault(action string, params ...uint64) {
	t.DefaultAction = action
	t.DefaultParams = params
}

// Sharded reports whether lookups use the tenant-sharded index.
func (t *Table) Sharded() bool { return t.sharded }

// Hits returns the number of lookups that matched a rule.
func (t *Table) Hits() uint64 { return t.hits.Load() }

// Misses returns the number of lookups that fell through to the default.
func (t *Table) Misses() uint64 { return t.misses.Load() }

// FNV-1a constants for the exact-key hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashVal folds one 64-bit key value into an FNV-1a state, byte by byte.
func hashVal(h, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h = (h ^ ((v >> uint(s)) & 0xff)) * fnvPrime64
	}
	return h
}

// ruleExactHash hashes a rule's exact-match values.
func (t *Table) ruleExactHash(r *Rule) uint64 {
	h := uint64(fnvOffset64)
	for _, m := range r.Matches {
		h = hashVal(h, m.Value)
	}
	return h
}

// packetExactHash hashes a packet's extracted key values.
func (t *Table) packetExactHash(p *packet.Packet) uint64 {
	h := uint64(fnvOffset64)
	for _, k := range t.Keys {
		h = hashVal(h, Extract(p, k.Field))
	}
	return h
}

// shardKey packs a (tenant, pass) pair. Pass is an 8-bit field; values that
// exceed the packing (unreachable from real packets) merely alias into
// another bucket, where full match verification rejects them.
func shardKey(tenant, pass uint64) uint64 {
	return tenant<<8 | pass&0xff
}

// precedes reports whether rule a must be scanned before rule b: higher
// priority first, then longer max prefix (LPM longest-match), with ties
// keeping insertion order. This is exactly the comparator the legacy lazy
// sort used, so sharded and generic scans agree on every tie-break.
func precedes(a, b *Rule) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return maxPrefix(a) > maxPrefix(b)
}

// insertOrdered places r into a list kept sorted by precedes, after any
// equal-ordered rules (stable).
func insertOrdered(list []*Rule, r *Rule) []*Rule {
	pos := sort.Search(len(list), func(i int) bool { return precedes(r, list[i]) })
	list = append(list, nil)
	copy(list[pos+1:], list[pos:])
	list[pos] = r
	return list
}

// removeRule deletes the first occurrence of r (by pointer) from list.
func removeRule(list []*Rule, r *Rule) []*Rule {
	for i, x := range list {
		if x == r {
			copy(list[i:], list[i+1:])
			list[len(list)-1] = nil
			return list[:len(list)-1]
		}
	}
	return list
}

// Insert adds a rule. It fails if the table is at capacity, if the rule's
// match arity differs from the key spec, if the action is unregistered, or —
// for all-exact tables — if a rule with the identical key already exists
// (real switch drivers reject duplicate exact entries; silently shadowing
// the old rule would leak capacity and resurrect it on index rebuilds).
func (t *Table) Insert(r *Rule) error {
	if len(r.Matches) != len(t.Keys) {
		return fmt.Errorf("table %s: rule has %d matches, key spec has %d", t.Name, len(r.Matches), len(t.Keys))
	}
	fn, ok := t.actions[r.Action]
	if !ok {
		return fmt.Errorf("table %s: unknown action %q", t.Name, r.Action)
	}
	r.fn = fn
	if len(t.rules) >= t.Capacity {
		return fmt.Errorf("table %s: capacity %d exhausted", t.Name, t.Capacity)
	}
	switch {
	case t.allExact:
		h := t.ruleExactHash(r)
		for _, prev := range t.exactIdx[h] {
			if exactValuesEqual(prev, r) {
				return fmt.Errorf("table %s: duplicate exact key (existing rule tenant %d)", t.Name, prev.Tenant)
			}
		}
		if t.exactIdx == nil {
			t.exactIdx = make(map[uint64][]*Rule)
		}
		t.exactIdx[h] = append(t.exactIdx[h], r)
	case t.sharded:
		if t.shards == nil {
			t.shards = make(map[uint64][]*Rule)
		}
		k := shardKey(r.Matches[0].Value, r.Matches[1].Value)
		t.shards[k] = insertOrdered(t.shards[k], r)
	default:
		t.scan = insertOrdered(t.scan, r)
	}
	t.rules = append(t.rules, r)
	return nil
}

// exactValuesEqual reports whether two rules carry identical exact-key
// values.
func exactValuesEqual(a, b *Rule) bool {
	for i := range a.Matches {
		if a.Matches[i].Value != b.Matches[i].Value {
			return false
		}
	}
	return true
}

// DeleteTenant removes every rule owned by the tenant and returns how many
// entries were freed. Only the departing tenant's index entries are touched
// — the other tenants' shards and exact buckets are left untouched, so churn
// cost is proportional to the departing tenant's rules, not the table size.
func (t *Table) DeleteTenant(tenant uint32) int {
	return t.deleteWhere(func(r *Rule) bool { return r.Tenant == tenant })
}

// DeleteTenants removes every rule owned by any tenant in the set and
// returns how many entries were freed. A batch of departures costs one
// pass over the table's rules instead of one per departing tenant.
func (t *Table) DeleteTenants(tenants map[uint32]bool) int {
	if len(tenants) == 0 {
		return 0
	}
	return t.deleteWhere(func(r *Rule) bool { return tenants[r.Tenant] })
}

// deleteWhere removes every rule matching the predicate in one pass,
// unindexing each removed rule. Only the removed rules' index entries are
// touched — the other tenants' shards and exact buckets are left alone.
func (t *Table) deleteWhere(match func(*Rule) bool) int {
	kept := t.rules[:0]
	freed := 0
	for _, r := range t.rules {
		if !match(r) {
			kept = append(kept, r)
			continue
		}
		freed++
		switch {
		case t.allExact:
			h := t.ruleExactHash(r)
			if b := removeRule(t.exactIdx[h], r); len(b) > 0 {
				t.exactIdx[h] = b
			} else {
				delete(t.exactIdx, h)
			}
		case t.sharded:
			k := shardKey(r.Matches[0].Value, r.Matches[1].Value)
			if s := removeRule(t.shards[k], r); len(s) > 0 {
				t.shards[k] = s
			} else {
				delete(t.shards, k)
			}
		default:
			t.scan = removeRule(t.scan, r)
		}
	}
	// Clear the tail so freed rules are collectable.
	for i := len(kept); i < len(t.rules); i++ {
		t.rules[i] = nil
	}
	t.rules = kept
	return freed
}

// Used returns the number of installed entries.
func (t *Table) Used() int { return len(t.rules) }

// RuleWidthBits returns the total match-key width of one entry — the
// constant b in the placement model's memory equation.
func (t *Table) RuleWidthBits() int {
	w := 0
	for _, k := range t.Keys {
		w += k.Field.Bits()
	}
	return w
}

// Lookup finds the highest-priority matching rule, or nil on miss. The hot
// path is allocation-free: exact tables hash the extracted key values
// directly, sharded tables scan only the packet's (tenant, pass) bucket,
// and generic tables scan the pre-sorted rule list.
func (t *Table) Lookup(p *packet.Packet) *Rule {
	if t.allExact {
		for _, r := range t.exactIdx[t.packetExactHash(p)] {
			if t.exactMatches(r, p) {
				t.hits.Add(1)
				return r
			}
		}
		t.misses.Add(1)
		return nil
	}
	list := t.scan
	if t.sharded {
		list = t.shards[shardKey(Extract(p, t.Keys[0].Field), Extract(p, t.Keys[1].Field))]
	}
	for _, r := range list {
		if t.ruleMatches(r, p) {
			t.hits.Add(1)
			return r
		}
	}
	t.misses.Add(1)
	return nil
}

// exactMatches verifies an exact-index candidate against the packet,
// guarding against hash collisions.
func (t *Table) exactMatches(r *Rule, p *packet.Packet) bool {
	for i, k := range t.Keys {
		if Extract(p, k.Field) != r.Matches[i].Value {
			return false
		}
	}
	return true
}

// ruleMatches evaluates every key of r against the packet.
func (t *Table) ruleMatches(r *Rule, p *packet.Packet) bool {
	for i, k := range t.Keys {
		if !r.Matches[i].matches(Extract(p, k.Field), k.Kind, k.Field.Bits()) {
			return false
		}
	}
	return true
}

func maxPrefix(r *Rule) int {
	m := 0
	for _, match := range r.Matches {
		if match.PrefixLen > m {
			m = match.PrefixLen
		}
	}
	return m
}

// Apply executes a lookup followed by the matched (or default) action.
// It returns the matched rule (nil on default) so callers can observe REC.
func (t *Table) Apply(ctx *Context, p *packet.Packet) *Rule {
	r := t.Lookup(p)
	if r != nil {
		if fn := t.actions[r.Action]; fn != nil {
			fn(ctx, p, r.Params)
		}
		if r.Rec {
			p.Meta.Recirculate = true
		}
		return r
	}
	if t.DefaultAction != "" {
		if fn := t.actions[t.DefaultAction]; fn != nil {
			fn(ctx, p, t.DefaultParams)
		}
	}
	return nil
}
