package pipeline

import (
	"fmt"
	"sort"

	"sfp/internal/packet"
)

// ActionFunc is the body of a P4 action: it mutates the packet (headers and
// metadata) using the rule's action parameters. The context exposes the
// stage's stateful registers.
type ActionFunc func(ctx *Context, p *packet.Packet, params []uint64)

// Context is passed to actions, giving access to pipeline state the action
// may read or update.
type Context struct {
	// StageIndex is the 0-based physical stage executing the action.
	StageIndex int
	// Regs is the register file of the executing stage.
	Regs *RegisterFile
	// NowNs is the simulated timestamp of the packet, for time-dependent
	// actions such as token-bucket rate limiters.
	NowNs float64
}

// Rule is one entry of a match-action table. Matches align positionally
// with the table's key specification.
type Rule struct {
	// Priority orders ternary/range lookups; higher wins. Exact-only tables
	// ignore priority.
	Priority int
	Matches  []Match
	// Action names an action registered on the table.
	Action string
	// Params are the action data (e.g. the next-hop port or rewrite value).
	Params []uint64
	// Rec is the paper's REC argument: when the rule fires in the last
	// stage of a pass, the packet is recirculated and its pass counter
	// incremented (§IV, "NFs in the last stage is specially crafted").
	Rec bool
	// Tenant tags the rule's owner (0 = infrastructure rule), so that a
	// tenant's rules can be bulk-deleted on departure.
	Tenant uint32
}

// Table is a match-action table resident in one stage.
type Table struct {
	Name string
	Keys []Key
	// Capacity is the number of entries reserved for this table. The
	// physical NF reserves capacity when installed; rule insertion beyond
	// capacity fails, mirroring SRAM/TCAM exhaustion.
	Capacity int

	// DefaultAction runs when no rule matches ("No-Ops" for physical NFs).
	DefaultAction string
	DefaultParams []uint64

	actions map[string]ActionFunc
	rules   []*Rule
	sorted  bool

	// exactIdx accelerates lookups for all-exact key specs.
	exactIdx map[string]*Rule

	// Hits and Misses count lookups for observability.
	Hits, Misses uint64
}

// NewTable creates a table with the given key specification and entry
// capacity.
func NewTable(name string, keys []Key, capacity int) *Table {
	return &Table{
		Name:     name,
		Keys:     keys,
		Capacity: capacity,
		actions:  make(map[string]ActionFunc),
	}
}

// RegisterAction binds an action name usable by rules of this table.
func (t *Table) RegisterAction(name string, fn ActionFunc) {
	t.actions[name] = fn
}

// SetDefault sets the default (miss) action.
func (t *Table) SetDefault(action string, params ...uint64) {
	t.DefaultAction = action
	t.DefaultParams = params
}

// allExact reports whether every key is an exact match, enabling the map
// index fast path.
func (t *Table) allExact() bool {
	for _, k := range t.Keys {
		if k.Kind != MatchExact {
			return false
		}
	}
	return len(t.Keys) > 0
}

func (t *Table) exactKeyOf(vals []uint64) string {
	b := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		for s := 56; s >= 0; s -= 8 {
			b = append(b, byte(v>>uint(s)))
		}
	}
	return string(b)
}

// Insert adds a rule. It fails if the table is at capacity, if the rule's
// match arity differs from the key spec, or if the action is unregistered.
func (t *Table) Insert(r *Rule) error {
	if len(r.Matches) != len(t.Keys) {
		return fmt.Errorf("table %s: rule has %d matches, key spec has %d", t.Name, len(r.Matches), len(t.Keys))
	}
	if _, ok := t.actions[r.Action]; !ok {
		return fmt.Errorf("table %s: unknown action %q", t.Name, r.Action)
	}
	if len(t.rules) >= t.Capacity {
		return fmt.Errorf("table %s: capacity %d exhausted", t.Name, t.Capacity)
	}
	t.rules = append(t.rules, r)
	t.sorted = false
	if t.allExact() {
		if t.exactIdx == nil {
			t.exactIdx = make(map[string]*Rule)
		}
		vals := make([]uint64, len(r.Matches))
		for i, m := range r.Matches {
			vals[i] = m.Value
		}
		t.exactIdx[t.exactKeyOf(vals)] = r
	}
	return nil
}

// DeleteTenant removes every rule owned by the tenant and returns how many
// entries were freed.
func (t *Table) DeleteTenant(tenant uint32) int {
	kept := t.rules[:0]
	freed := 0
	for _, r := range t.rules {
		if r.Tenant == tenant {
			freed++
			continue
		}
		kept = append(kept, r)
	}
	t.rules = kept
	if freed > 0 && t.exactIdx != nil {
		t.exactIdx = make(map[string]*Rule)
		for _, r := range t.rules {
			vals := make([]uint64, len(r.Matches))
			for i, m := range r.Matches {
				vals[i] = m.Value
			}
			t.exactIdx[t.exactKeyOf(vals)] = r
		}
	}
	return freed
}

// Used returns the number of installed entries.
func (t *Table) Used() int { return len(t.rules) }

// RuleWidthBits returns the total match-key width of one entry — the
// constant b in the placement model's memory equation.
func (t *Table) RuleWidthBits() int {
	w := 0
	for _, k := range t.Keys {
		w += k.Field.Bits()
	}
	return w
}

// Lookup finds the highest-priority matching rule, or nil on miss.
func (t *Table) Lookup(p *packet.Packet) *Rule {
	if t.exactIdx != nil && t.allExact() {
		vals := make([]uint64, len(t.Keys))
		for i, k := range t.Keys {
			vals[i] = Extract(p, k.Field)
		}
		if r, ok := t.exactIdx[t.exactKeyOf(vals)]; ok {
			t.Hits++
			return r
		}
		t.Misses++
		return nil
	}
	if !t.sorted {
		// LPM tables order by prefix length (longest first), others by
		// priority. A stable sort keeps insertion order among ties.
		sort.SliceStable(t.rules, func(i, j int) bool {
			a, b := t.rules[i], t.rules[j]
			if a.Priority != b.Priority {
				return a.Priority > b.Priority
			}
			return maxPrefix(a) > maxPrefix(b)
		})
		t.sorted = true
	}
	for _, r := range t.rules {
		ok := true
		for i, k := range t.Keys {
			if !r.Matches[i].matches(Extract(p, k.Field), k.Kind, k.Field.Bits()) {
				ok = false
				break
			}
		}
		if ok {
			t.Hits++
			return r
		}
	}
	t.Misses++
	return nil
}

func maxPrefix(r *Rule) int {
	m := 0
	for _, match := range r.Matches {
		if match.PrefixLen > m {
			m = match.PrefixLen
		}
	}
	return m
}

// Apply executes a lookup followed by the matched (or default) action.
// It returns the matched rule (nil on default) so callers can observe REC.
func (t *Table) Apply(ctx *Context, p *packet.Packet) *Rule {
	r := t.Lookup(p)
	if r != nil {
		if fn := t.actions[r.Action]; fn != nil {
			fn(ctx, p, r.Params)
		}
		if r.Rec {
			p.Meta.Recirculate = true
		}
		return r
	}
	if t.DefaultAction != "" {
		if fn := t.actions[t.DefaultAction]; fn != nil {
			fn(ctx, p, t.DefaultParams)
		}
	}
	return nil
}
