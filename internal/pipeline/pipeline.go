package pipeline

import (
	"fmt"
	"sync"

	"sfp/internal/packet"
)

// Config fixes the physical resources and timing of the switch chip. The
// defaults mirror the paper's evaluation configuration (§VI-C) and the
// Tofino-calibrated latency constants from DESIGN.md §5.
type Config struct {
	// Stages is S, the number of physical pipeline stages.
	Stages int
	// BlocksPerStage is B, memory blocks available in each stage.
	BlocksPerStage int
	// EntriesPerBlock is E/b: rule entries one block holds.
	EntriesPerBlock int
	// CapacityGbps is C, the backplane processing capacity shared by
	// inbound and recirculated traffic.
	CapacityGbps float64
	// MaxPasses bounds recirculation (1 = no recirculation).
	MaxPasses int

	// Latency model (nanoseconds). The paper's measurements (Fig. 5) show
	// in-switch latency tracks the processing complexity of the SFC — the
	// number of match-action tables that actually apply — rather than raw
	// stages traversed: three extra full passes cost only ≈35 ns. The
	// model therefore charges a fixed parser/deparser/serialization cost,
	// a per-applied-table cost, a (tiny) per-stage traversal cost, and a
	// per-recirculation cost.
	ParserNs   float64
	PerStageNs float64
	PerTableNs float64
	DeparserNs float64
	RecircNs   float64
}

// DefaultConfig returns the evaluation configuration of §VI-C: 8 stages,
// 20 blocks per stage, 1000 entries per block, 400 Gbps backplane. The
// latency constants are calibrated to Fig. 5: a 4-NF SFC costs
// 245 + 4×24 = 341 ns, and three recirculations add 3×11.7 ≈ 35 ns.
func DefaultConfig() Config {
	return Config{
		Stages:          8,
		BlocksPerStage:  20,
		EntriesPerBlock: 1000,
		CapacityGbps:    400,
		MaxPasses:       4,
		ParserNs:        110,
		PerStageNs:      0,
		PerTableNs:      24,
		DeparserNs:      135,
		RecircNs:        11.7,
	}
}

// TofinoConfig returns a 12-stage configuration matching the physical stage
// count the paper cites for Tofino (§II-A).
func TofinoConfig() Config {
	c := DefaultConfig()
	c.Stages = 12
	c.CapacityGbps = 3200
	return c
}

// Stage is one physical pipeline stage: a set of tables sharing the stage's
// memory blocks plus a register file.
type Stage struct {
	Index  int
	Tables []*Table
	Regs   *RegisterFile

	entriesPerBlock int
	blockBudget     int
}

// BlocksUsed returns the blocks consumed under block-granular allocation:
// each table independently rounds its reserved capacity up to whole blocks
// (the ceil in the model's memory constraint).
func (s *Stage) BlocksUsed() int {
	used := 0
	for _, t := range s.Tables {
		used += (t.Capacity + s.entriesPerBlock - 1) / s.entriesPerBlock
	}
	return used
}

// EntriesUsed returns the total installed rule entries across tables.
func (s *Stage) EntriesUsed() int {
	n := 0
	for _, t := range s.Tables {
		n += t.Used()
	}
	return n
}

// EntriesReserved returns the total reserved capacity across tables.
func (s *Stage) EntriesReserved() int {
	n := 0
	for _, t := range s.Tables {
		n += t.Capacity
	}
	return n
}

// AddTable places a table on the stage, enforcing the block budget.
func (s *Stage) AddTable(t *Table) error {
	need := (t.Capacity + s.entriesPerBlock - 1) / s.entriesPerBlock
	if s.BlocksUsed()+need > s.blockBudget {
		return fmt.Errorf("stage %d: table %s needs %d blocks, %d of %d used",
			s.Index, t.Name, need, s.BlocksUsed(), s.blockBudget)
	}
	s.Tables = append(s.Tables, t)
	return nil
}

// GrowTable raises a resident table's reserved capacity, taking additional
// whole blocks from the stage budget (runtime update may need room for an
// arriving tenant's rules in an existing physical NF).
func (s *Stage) GrowTable(name string, newCapacity int) error {
	t := s.Table(name)
	if t == nil {
		return fmt.Errorf("stage %d: no table %s", s.Index, name)
	}
	if newCapacity <= t.Capacity {
		return nil
	}
	oldBlocks := (t.Capacity + s.entriesPerBlock - 1) / s.entriesPerBlock
	newBlocks := (newCapacity + s.entriesPerBlock - 1) / s.entriesPerBlock
	if s.BlocksUsed()-oldBlocks+newBlocks > s.blockBudget {
		return fmt.Errorf("stage %d: growing %s to %d entries needs %d blocks, budget %d",
			s.Index, name, newCapacity, newBlocks, s.blockBudget)
	}
	t.Capacity = newCapacity
	return nil
}

// RemoveTable removes a table by name (full-reconfiguration path).
func (s *Stage) RemoveTable(name string) bool {
	for i, t := range s.Tables {
		if t.Name == name {
			s.Tables = append(s.Tables[:i], s.Tables[i+1:]...)
			return true
		}
	}
	return false
}

// Table returns the named table, or nil.
func (s *Stage) Table(name string) *Table {
	for _, t := range s.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Pipeline is the full switch data plane.
type Pipeline struct {
	Cfg    Config
	Stages []*Stage

	// processed and recirculated count packets for observability. Atomic
	// and cache-line padded: parallel replay workers may process packets on
	// one pipeline concurrently (rule installation must still be serialized
	// against processing, as on a real switch), and without the padding the
	// two counters false-share a line under multicore replay.
	processed    counter
	recirculated counter
}

// Processed returns the number of packets processed.
func (pl *Pipeline) Processed() uint64 { return pl.processed.Load() }

// Recirculated returns the number of recirculation events.
func (pl *Pipeline) Recirculated() uint64 { return pl.recirculated.Load() }

// New builds an empty pipeline from the configuration.
func New(cfg Config) *Pipeline {
	if cfg.Stages <= 0 {
		panic("pipeline: config needs at least one stage")
	}
	if cfg.MaxPasses <= 0 {
		cfg.MaxPasses = 1
	}
	p := &Pipeline{Cfg: cfg}
	for i := 0; i < cfg.Stages; i++ {
		p.Stages = append(p.Stages, &Stage{
			Index:           i,
			Regs:            NewRegisterFile(),
			entriesPerBlock: cfg.EntriesPerBlock,
			blockBudget:     cfg.BlocksPerStage,
		})
	}
	return p
}

// Result reports what happened to one packet.
type Result struct {
	// LatencyNs is the modeled in-switch processing latency.
	LatencyNs float64
	// Passes is the number of pipeline traversals (1 = no recirculation).
	Passes int
	// Dropped reports a drop decision.
	Dropped bool
	// EgressPort is the final forwarding decision (0 if none).
	EgressPort uint16
	// TablesApplied counts tables whose lookup matched a rule.
	TablesApplied int
}

// ctxPool recycles action contexts so Process stays allocation-free while
// remaining safe for concurrent callers sharing one pipeline.
var ctxPool = sync.Pool{New: func() any { return new(Context) }}

// Process runs one packet through the pipeline, honoring recirculation
// requests up to Cfg.MaxPasses, and returns the modeled result. nowNs is
// the packet's arrival timestamp for time-dependent actions.
func (pl *Pipeline) Process(p *packet.Packet, nowNs float64) Result {
	ctx := ctxPool.Get().(*Context)
	res := pl.ProcessCtx(p, nowNs, ctx)
	ctxPool.Put(ctx)
	return res
}

// ProcessCtx is Process with a caller-owned scratch Context, the
// zero-overhead entry point for tight replay loops: one Context is reused
// across stages and passes instead of being rebuilt per stage, so the whole
// per-packet path performs no heap allocation. The scratch must not be
// shared between concurrent callers.
func (pl *Pipeline) ProcessCtx(p *packet.Packet, nowNs float64, ctx *Context) Result {
	res := Result{LatencyNs: pl.Cfg.ParserNs}
	pl.processed.Add(1)
	for pass := 0; pass < pl.Cfg.MaxPasses; pass++ {
		res.Passes++
		p.Meta.Recirculate = false
		for _, st := range pl.Stages {
			ctx.StageIndex = st.Index
			ctx.Regs = st.Regs
			ctx.NowNs = nowNs + res.LatencyNs
			for _, t := range st.Tables {
				if r := t.Apply(ctx, p); r != nil {
					res.TablesApplied++
					res.LatencyNs += pl.Cfg.PerTableNs
				}
			}
			res.LatencyNs += pl.Cfg.PerStageNs
			if p.Meta.Drop {
				res.Dropped = true
				res.LatencyNs += pl.Cfg.DeparserNs
				return res
			}
		}
		if !p.Meta.Recirculate {
			break
		}
		// Last-stage REC action fired: recirculate and bump the pass
		// counter (§IV, "increase the pass by one").
		p.Meta.Pass++
		pl.recirculated.Add(1)
		res.LatencyNs += pl.Cfg.RecircNs
	}
	res.LatencyNs += pl.Cfg.DeparserNs
	res.EgressPort = p.Meta.EgressPort
	res.Dropped = p.Meta.Drop
	return res
}

// BlocksUsed sums block usage across stages.
func (pl *Pipeline) BlocksUsed() int {
	n := 0
	for _, s := range pl.Stages {
		n += s.BlocksUsed()
	}
	return n
}

// EntriesUsed sums installed entries across stages.
func (pl *Pipeline) EntriesUsed() int {
	n := 0
	for _, s := range pl.Stages {
		n += s.EntriesUsed()
	}
	return n
}

// BlockUtilization returns mean blocks used per stage (the paper's Fig. 6
// "block utilization" axis, 0..B).
func (pl *Pipeline) BlockUtilization() float64 {
	if len(pl.Stages) == 0 {
		return 0
	}
	return float64(pl.BlocksUsed()) / float64(len(pl.Stages))
}

// LineRatePPS converts a port speed and wire length to packets per second,
// accounting for the 20 bytes of preamble + inter-frame gap per frame.
func LineRatePPS(gbps float64, wireBytes int) float64 {
	return gbps * 1e9 / (float64(wireBytes+20) * 8)
}
