package pipeline

// Concurrency tests for the shared-pipeline processing path. These are
// meaningful under `go test -race` (which scripts/check.sh always runs):
// the legacy counters were plain uint64 increments and the generic lookup
// lazily sorted the rule list on first use — both raced when parallel
// replay workers shared one pipeline.

import (
	"sync"
	"testing"

	"sfp/internal/packet"
)

// TestConcurrentProcess hammers one shared pipeline from many goroutines
// while a reader polls telemetry, verifying counters stay exact and no data
// race is reported.
func TestConcurrentProcess(t *testing.T) {
	pl, _ := benchPipeline(t, 16)
	const workers, perWorker = 8, 500

	done := make(chan struct{})
	go func() { // concurrent observability reader
		for {
			select {
			case <-done:
				return
			default:
				_ = pl.Snapshot()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var ctx Context
			p := packet.NewBuilder().
				WithTenant(uint32(1 + w%16)).
				WithIPv4(packet.IPv4Addr(10, 0, 0, byte(w+1)), packet.IPv4Addr(10, 0, 0, 1)).
				WithTCP(uint16(1000+w), 80).
				Build()
			for i := 0; i < perWorker; i++ {
				p.Meta.Pass = 0
				p.Meta.Recirculate = false
				pl.ProcessCtx(p, float64(i), &ctx)
			}
		}(w)
	}
	wg.Wait()
	close(done)

	if got := pl.Processed(); got != workers*perWorker {
		t.Errorf("processed = %d, want %d (atomic counter lost updates)", got, workers*perWorker)
	}
	var hits, misses uint64
	for _, st := range pl.Stages {
		for _, tbl := range st.Tables {
			hits += tbl.Hits()
			misses += tbl.Misses()
		}
	}
	if hits+misses != workers*perWorker {
		t.Errorf("hits+misses = %d, want %d", hits+misses, workers*perWorker)
	}
}

// TestConcurrentLookupGeneric exercises the non-sharded sorted-scan path
// concurrently; the legacy implementation sorted inside Lookup and raced.
func TestConcurrentLookupGeneric(t *testing.T) {
	keys := []Key{{Field: FieldIPv4Dst, Kind: MatchLPM}}
	tbl := NewTable("lpm", keys, 64)
	tbl.RegisterAction("a", func(ctx *Context, p *packet.Packet, params []uint64) {})
	for i := 0; i < 32; i++ {
		if err := tbl.Insert(&Rule{
			Priority: i % 3,
			Matches:  []Match{Prefix(uint64(packet.IPv4Addr(10, byte(i), 0, 0)), 16)},
			Action:   "a",
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := packet.NewBuilder().
				WithIPv4(1, packet.IPv4Addr(10, byte(w), 9, 9)).
				Build()
			for i := 0; i < 2000; i++ {
				if tbl.Lookup(p) == nil {
					t.Error("expected LPM hit")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
