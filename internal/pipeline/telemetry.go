package pipeline

import (
	"fmt"
	"io"
	"sort"
)

// TableStats is one table's observability snapshot.
type TableStats struct {
	Stage    int
	Name     string
	Capacity int
	Used     int
	Hits     uint64
	Misses   uint64
}

// HitRate returns hits / lookups (0 with no lookups).
func (t TableStats) HitRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Hits) / float64(total)
}

// StageStats is one stage's resource snapshot.
type StageStats struct {
	Stage           int
	BlocksUsed      int
	BlockBudget     int
	EntriesUsed     int
	EntriesReserved int
	Tables          []TableStats
}

// Telemetry is a full-pipeline snapshot.
type Telemetry struct {
	Processed    uint64
	Recirculated uint64
	Stages       []StageStats
}

// Snapshot collects per-stage and per-table counters for operators (the
// observability surface a real switch exposes via its driver).
func (pl *Pipeline) Snapshot() Telemetry {
	t := Telemetry{Processed: pl.Processed(), Recirculated: pl.Recirculated()}
	for _, st := range pl.Stages {
		ss := StageStats{
			Stage:           st.Index,
			BlocksUsed:      st.BlocksUsed(),
			BlockBudget:     pl.Cfg.BlocksPerStage,
			EntriesUsed:     st.EntriesUsed(),
			EntriesReserved: st.EntriesReserved(),
		}
		for _, tbl := range st.Tables {
			ss.Tables = append(ss.Tables, TableStats{
				Stage:    st.Index,
				Name:     tbl.Name,
				Capacity: tbl.Capacity,
				Used:     tbl.Used(),
				Hits:     tbl.Hits(),
				Misses:   tbl.Misses(),
			})
		}
		sort.Slice(ss.Tables, func(i, j int) bool { return ss.Tables[i].Name < ss.Tables[j].Name })
		t.Stages = append(t.Stages, ss)
	}
	return t
}

// WriteTo renders the snapshot as a human-readable report.
func (t Telemetry) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}
	if err := write("pipeline: %d processed, %d recirculated\n", t.Processed, t.Recirculated); err != nil {
		return n, err
	}
	for _, st := range t.Stages {
		if err := write("stage %d: %d/%d blocks, %d/%d entries\n",
			st.Stage, st.BlocksUsed, st.BlockBudget, st.EntriesUsed, st.EntriesReserved); err != nil {
			return n, err
		}
		for _, tbl := range st.Tables {
			if err := write("  %-28s %5d/%-5d entries  hits=%-8d misses=%-8d rate=%.2f\n",
				tbl.Name, tbl.Used, tbl.Capacity, tbl.Hits, tbl.Misses, tbl.HitRate()); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}
