package pipeline

import "fmt"

// RegisterFile models the stateful register arrays of one stage's MAU.
// Registers survive across packets (their lifetime is longer than any
// individual packet), which is what distinguishes stateful NFs such as rate
// limiters and monitors from purely rule-driven ones.
type RegisterFile struct {
	arrays map[string][]int64
}

// NewRegisterFile returns an empty register file.
func NewRegisterFile() *RegisterFile {
	return &RegisterFile{arrays: make(map[string][]int64)}
}

// Alloc reserves a named register array of the given size. Re-allocating an
// existing name is an error — register layout is fixed at compile time on
// real hardware.
func (rf *RegisterFile) Alloc(name string, size int) error {
	if _, ok := rf.arrays[name]; ok {
		return fmt.Errorf("register %q already allocated", name)
	}
	if size <= 0 {
		return fmt.Errorf("register %q: size %d must be positive", name, size)
	}
	rf.arrays[name] = make([]int64, size)
	return nil
}

// Free releases a named register array (used when a physical NF is removed
// during full reconfiguration).
func (rf *RegisterFile) Free(name string) {
	delete(rf.arrays, name)
}

// Read returns the value at arrays[name][idx]; out-of-range reads return 0,
// matching hardware's wrap-free saturating behavior in the simulator.
func (rf *RegisterFile) Read(name string, idx int) int64 {
	a := rf.arrays[name]
	if idx < 0 || idx >= len(a) {
		return 0
	}
	return a[idx]
}

// Write stores v at arrays[name][idx]; out-of-range writes are dropped.
func (rf *RegisterFile) Write(name string, idx int, v int64) {
	a := rf.arrays[name]
	if idx < 0 || idx >= len(a) {
		return
	}
	a[idx] = v
}

// Add atomically adds delta at arrays[name][idx] and returns the new value.
func (rf *RegisterFile) Add(name string, idx int, delta int64) int64 {
	a := rf.arrays[name]
	if idx < 0 || idx >= len(a) {
		return 0
	}
	a[idx] += delta
	return a[idx]
}

// Size returns the length of the named array (0 if absent).
func (rf *RegisterFile) Size(name string) int { return len(rf.arrays[name]) }
