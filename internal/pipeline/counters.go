package pipeline

import "sync/atomic"

// cacheLine is the assumed coherence-line size. 64 bytes matches every
// x86-64 and most arm64 parts; on chips with 128-byte lines the padding
// merely halves, which degrades gracefully (adjacent counters may share a
// line again but are never split across one).
const cacheLine = 64

// counter is an atomic uint64 padded out to its own cache line. The
// pipeline's hot telemetry counters (processed/recirculated, per-table
// hits/misses) are declared as adjacent struct fields; without padding they
// share a line, so parallel replay workers bouncing one counter invalidate
// the others too (false sharing). Padding keeps each counter's RMW traffic
// on its own line.
type counter struct {
	n atomic.Uint64
	_ [cacheLine - 8]byte
}

// Add atomically adds d and returns the new value.
func (c *counter) Add(d uint64) uint64 { return c.n.Add(d) }

// Load atomically reads the value.
func (c *counter) Load() uint64 { return c.n.Load() }
