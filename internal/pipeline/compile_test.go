package pipeline

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sfp/internal/packet"
)

// The tests in this file prove the compiled pipeline (compile.go) is
// bit-identical to the interpreter (Process/ProcessCtx): same Result fields,
// same recirculation passes, same register side effects, same telemetry
// counts — on golden traces, on randomized configs × packet streams, and
// under rule churn mid-stream.

// equivActions registers the test action vocabulary on a table. The bodies
// exercise every observable channel: packet metadata, drop, recirculation
// (via Rule.Rec), and register reads/writes that depend on ctx.NowNs and
// ctx.StageIndex so any divergence in context plumbing shows up in state.
func equivActions(t *Table) {
	t.RegisterAction("set_port", func(ctx *Context, p *packet.Packet, params []uint64) {
		p.Meta.EgressPort = uint16(params[0])
	})
	t.RegisterAction("mark", func(ctx *Context, p *packet.Packet, params []uint64) {
		p.Meta.ClassID = uint16(params[0])
	})
	t.RegisterAction("drop", func(ctx *Context, p *packet.Packet, params []uint64) {
		p.Meta.Drop = true
	})
	t.RegisterAction("noop", func(ctx *Context, p *packet.Packet, params []uint64) {})
	t.RegisterAction("count", func(ctx *Context, p *packet.Packet, params []uint64) {
		ctx.Regs.Add("ctr", int(params[0]%8), 1)
	})
	t.RegisterAction("stamp", func(ctx *Context, p *packet.Packet, params []uint64) {
		ctx.Regs.Write("ctr", int(params[0]%8), int64(ctx.NowNs)+int64(ctx.StageIndex))
	})
}

var equivActionNames = []string{"set_port", "mark", "noop", "count", "stamp"}

// buildEquivPipeline deterministically builds a random pipeline from the
// seed: random table shapes (exact-indexed, tenant-sharded, generic scan)
// spread over the stages, random rules over a small value domain so random
// packets actually hit, a sprinkling of REC rules and rare drop rules.
// Calling it twice with the same seed yields two independent but identical
// pipelines.
func buildEquivPipeline(seed int64, cfg Config) *Pipeline {
	rng := rand.New(rand.NewSource(seed))
	pl := New(cfg)
	for si, st := range pl.Stages {
		st.Regs.Alloc("ctr", 8)
		nTables := 1 + rng.Intn(2)
		for ti := 0; ti < nTables; ti++ {
			name := fmt.Sprintf("s%d.t%d", si, ti)
			var keys []Key
			switch rng.Intn(3) {
			case 0: // all-exact: FNV hash index
				keys = []Key{{FieldTenantID, MatchExact}, {FieldDstPort, MatchExact}}
			case 1: // tenant-sharded: exact (tenant, pass) prefix + ternary
				keys = []Key{{FieldTenantID, MatchExact}, {FieldPass, MatchExact}, {FieldIPv4Dst, MatchTernary}}
			default: // generic scan: LPM + range
				keys = []Key{{FieldIPv4Dst, MatchLPM}, {FieldDstPort, MatchRange}}
			}
			tbl := NewTable(name, keys, 64)
			equivActions(tbl)
			if rng.Intn(2) == 0 {
				tbl.SetDefault("noop")
			}
			nRules := 2 + rng.Intn(6)
			for ri := 0; ri < nRules; ri++ {
				action := equivActionNames[rng.Intn(len(equivActionNames))]
				if rng.Intn(16) == 0 {
					action = "drop"
				}
				r := &Rule{
					Priority: rng.Intn(4),
					Action:   action,
					Params:   []uint64{uint64(rng.Intn(64))},
					Tenant:   uint32(1 + rng.Intn(4)),
					// REC only on late stages so recirculation decisions
					// resemble the vswitch's pass-tail steering.
					Rec: si == len(pl.Stages)-1 && rng.Intn(3) == 0,
				}
				for _, k := range keys {
					switch k.Kind {
					case MatchExact:
						switch k.Field {
						case FieldTenantID:
							r.Matches = append(r.Matches, Eq(uint64(r.Tenant)))
						case FieldPass:
							r.Matches = append(r.Matches, Eq(uint64(rng.Intn(3))))
						default:
							r.Matches = append(r.Matches, Eq(uint64(1+rng.Intn(8))))
						}
					case MatchTernary:
						if rng.Intn(3) == 0 {
							r.Matches = append(r.Matches, Wildcard())
						} else {
							r.Matches = append(r.Matches, Masked(uint64(packet.IPv4Addr(10, 0, 0, byte(rng.Intn(8)))), 0xffffffff))
						}
					case MatchLPM:
						r.Matches = append(r.Matches, Prefix(uint64(packet.IPv4Addr(10, 0, 0, 0)), 8+rng.Intn(17)))
					case MatchRange:
						lo := uint64(rng.Intn(8))
						r.Matches = append(r.Matches, Between(lo, lo+uint64(rng.Intn(8))))
					}
				}
				tbl.Insert(r) // duplicate exacts rejected; identical on both twins
			}
			if st.AddTable(tbl) != nil {
				break
			}
		}
	}
	return pl
}

// genEquivPackets deterministically draws n packets over the small value
// domain the random rules cover.
func genEquivPackets(seed int64, n int) []*packet.Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]*packet.Packet, n)
	for i := range pkts {
		pkts[i] = packet.NewBuilder().
			WithTenant(uint32(1 + rng.Intn(4))).
			WithIPv4(packet.IPv4Addr(10, 0, 0, byte(rng.Intn(8))), packet.IPv4Addr(10, 0, 0, byte(rng.Intn(8)))).
			WithTCP(uint16(1000+rng.Intn(8)), uint16(1+rng.Intn(8))).
			Build()
	}
	return pkts
}

// comparePipelines asserts the two twins agree on every observable:
// telemetry counters (processed/recirculated, per-table hits/misses) and
// register file contents.
func comparePipelines(t *testing.T, ref, got *Pipeline) {
	t.Helper()
	if ref.Processed() != got.Processed() {
		t.Errorf("processed: interpreter %d, compiled %d", ref.Processed(), got.Processed())
	}
	if ref.Recirculated() != got.Recirculated() {
		t.Errorf("recirculated: interpreter %d, compiled %d", ref.Recirculated(), got.Recirculated())
	}
	for si := range ref.Stages {
		sa, sb := ref.Stages[si], got.Stages[si]
		if !reflect.DeepEqual(sa.Regs.arrays, sb.Regs.arrays) {
			t.Errorf("stage %d: register files diverge: %v vs %v", si, sa.Regs.arrays, sb.Regs.arrays)
		}
		for ti := range sa.Tables {
			ta, tb := sa.Tables[ti], sb.Tables[ti]
			if ta.Hits() != tb.Hits() || ta.Misses() != tb.Misses() {
				t.Errorf("table %s: hits/misses %d/%d vs %d/%d",
					ta.Name, ta.Hits(), ta.Misses(), tb.Hits(), tb.Misses())
			}
		}
	}
}

// runEquivStream replays the same packet stream through the interpreter
// (ref) and the compiled twin (comp), asserting bit-identical results and
// packet metadata per packet.
func runEquivStream(t *testing.T, ref *Pipeline, comp *Compiled, seed int64, n int) {
	t.Helper()
	pktsA := genEquivPackets(seed, n)
	pktsB := genEquivPackets(seed, n)
	var ctx Context
	for i := 0; i < n; i++ {
		now := float64(i) * 100
		ra := ref.ProcessCtx(pktsA[i], now, &ctx)
		rb := comp.Process(pktsB[i], now)
		if ra != rb {
			t.Fatalf("packet %d: Result diverges:\ninterpreter %+v\ncompiled    %+v", i, ra, rb)
		}
		if pktsA[i].Meta != pktsB[i].Meta {
			t.Fatalf("packet %d: Meta diverges:\ninterpreter %+v\ncompiled    %+v", i, pktsA[i].Meta, pktsB[i].Meta)
		}
	}
}

// TestCompiledGoldenTrace pins the compiled path to a hand-built pipeline
// exercising recirculation, drops, defaults, and registers under both
// DefaultConfig and TofinoConfig.
func TestCompiledGoldenTrace(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig()}, {"tofino", TofinoConfig()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			build := func() *Pipeline {
				pl := New(tc.cfg)
				last := len(pl.Stages) - 1

				fw := NewTable("fw", []Key{{FieldTenantID, MatchExact}, {FieldDstPort, MatchExact}}, 16)
				equivActions(fw)
				fw.SetDefault("noop")
				mustInsert(t, fw, &Rule{Matches: []Match{Eq(1), Eq(80)}, Action: "set_port", Params: []uint64{3}})
				mustInsert(t, fw, &Rule{Matches: []Match{Eq(2), Eq(80)}, Action: "drop", Params: []uint64{0}})
				pl.Stages[0].AddTable(fw)

				pl.Stages[1].Regs.Alloc("ctr", 8)
				cnt := NewTable("cnt", []Key{{FieldIPv4Dst, MatchLPM}}, 16)
				equivActions(cnt)
				mustInsert(t, cnt, &Rule{Matches: []Match{Prefix(uint64(packet.IPv4Addr(10, 0, 0, 0)), 8)}, Action: "count", Params: []uint64{2}})
				pl.Stages[1].AddTable(cnt)

				tail := NewTable("tail", []Key{{FieldTenantID, MatchExact}, {FieldPass, MatchExact}}, 16)
				equivActions(tail)
				// Tenant 1 folds: pass 0 recirculates, pass 1 terminates.
				mustInsert(t, tail, &Rule{Matches: []Match{Eq(1), Eq(0)}, Action: "noop", Params: []uint64{0}, Rec: true})
				mustInsert(t, tail, &Rule{Matches: []Match{Eq(1), Eq(1)}, Action: "mark", Params: []uint64{7}})
				pl.Stages[last].AddTable(tail)
				return pl
			}
			ref, twin := build(), build()
			comp := twin.Compile()

			mk := func(tenant uint32, dport uint16) *packet.Packet {
				return packet.NewBuilder().WithTenant(tenant).
					WithIPv4(packet.IPv4Addr(10, 1, 2, 3), packet.IPv4Addr(10, 0, 0, 5)).
					WithTCP(4000, dport).Build()
			}
			var ctx Context
			for i, tcase := range []struct {
				tenant uint32
				dport  uint16
			}{{1, 80}, {2, 80}, {3, 443}, {1, 22}} {
				pa, pb := mk(tcase.tenant, tcase.dport), mk(tcase.tenant, tcase.dport)
				ra := ref.ProcessCtx(pa, float64(i)*50, &ctx)
				rb := comp.Process(pb, float64(i)*50)
				if ra != rb {
					t.Fatalf("case %d: Result %+v vs %+v", i, ra, rb)
				}
				if pa.Meta != pb.Meta {
					t.Fatalf("case %d: Meta %+v vs %+v", i, pa.Meta, pb.Meta)
				}
			}
			// Pin the interesting facts so the trace stays golden: both
			// tenant-1 packets recirculated once each, tenant 2 dropped.
			if ref.Recirculated() != 2 {
				t.Errorf("recirculated = %d, want 2", ref.Recirculated())
			}
			comparePipelines(t, ref, twin)
		})
	}
}

// TestCompiledEquivalenceRandom is the property test: across random seeds,
// random pipeline structures × random packet streams behave bit-identically
// under interpreter and compiled execution.
func TestCompiledEquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cfg := DefaultConfig()
		cfg.Stages = 2 + int(seed%4)
		cfg.MaxPasses = 1 + int(seed%4)
		ref := buildEquivPipeline(seed, cfg)
		twin := buildEquivPipeline(seed, cfg)
		comp := twin.Compile()
		runEquivStream(t, ref, comp, seed*7+1, 300)
		comparePipelines(t, ref, twin)
	}
}

// TestCompiledEquivalenceChurn interleaves rule churn (Insert and
// DeleteTenant, applied identically to both twins) with packet processing:
// a Compiled must track table contents live.
func TestCompiledEquivalenceChurn(t *testing.T) {
	seed := int64(42)
	cfg := DefaultConfig()
	cfg.Stages = 4
	ref := buildEquivPipeline(seed, cfg)
	twin := buildEquivPipeline(seed, cfg)
	comp := twin.Compile()

	churn := func(round int64) {
		for _, pl := range []*Pipeline{ref, twin} {
			// Delete one tenant's rules everywhere, then add a fresh
			// exact rule to every all-exact table.
			for _, st := range pl.Stages {
				for _, tbl := range st.Tables {
					tbl.DeleteTenant(uint32(1 + round%4))
					if len(tbl.Keys) == 2 && tbl.Keys[1].Field == FieldDstPort {
						tbl.Insert(&Rule{
							Matches: []Match{Eq(uint64(1 + round%4)), Eq(uint64(1 + round%8))},
							Action:  "set_port", Params: []uint64{uint64(10 + round)},
							Tenant: uint32(1 + round%4),
						})
					}
				}
			}
		}
	}
	for round := int64(0); round < 6; round++ {
		runEquivStream(t, ref, comp, seed+round, 100)
		churn(round)
	}
	runEquivStream(t, ref, comp, seed+99, 100)
	comparePipelines(t, ref, twin)
}

// TestCompiledBatchMatchesSingle proves the batched entry point (local
// scratch telemetry, one flush) equals per-packet compiled processing:
// identical Results and identical final counters.
func TestCompiledBatchMatchesSingle(t *testing.T) {
	seed := int64(7)
	cfg := DefaultConfig()
	cfg.Stages = 3
	single := buildEquivPipeline(seed, cfg)
	batched := buildEquivPipeline(seed, cfg)
	cs, cb := single.Compile(), batched.Compile()

	const n, chunk = 256, 16
	pktsA, pktsB := genEquivPackets(seed, n), genEquivPackets(seed, n)
	itemsB := make([]Item, n)
	for i := range itemsB {
		itemsB[i] = Item{Pkt: pktsB[i], NowNs: float64(i) * 100}
	}

	var ctx Context
	resA := make([]Result, n)
	for i := range pktsA {
		resA[i] = cs.ProcessCtx(pktsA[i], float64(i)*100, &ctx)
	}
	scratch := cb.NewScratch()
	var resB []Result
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		resB = cb.ProcessBatch(itemsB[lo:hi], resB, scratch)
	}
	for i := range resA {
		if resA[i] != resB[i] {
			t.Fatalf("packet %d: single %+v vs batch %+v", i, resA[i], resB[i])
		}
		if pktsA[i].Meta != pktsB[i].Meta {
			t.Fatalf("packet %d: Meta diverges", i)
		}
	}
	comparePipelines(t, single, batched)
}

// TestCompiledBatchNilScratch covers the convenience path.
func TestCompiledBatchNilScratch(t *testing.T) {
	pl := buildEquivPipeline(3, DefaultConfig())
	comp := pl.Compile()
	pkts := genEquivPackets(3, 8)
	items := make([]Item, len(pkts))
	for i := range items {
		items[i] = Item{Pkt: pkts[i], NowNs: float64(i)}
	}
	res := comp.ProcessBatch(items, nil, nil)
	if len(res) != len(items) {
		t.Fatalf("got %d results, want %d", len(res), len(items))
	}
	if pl.Processed() != uint64(len(items)) {
		t.Fatalf("processed = %d, want %d", pl.Processed(), len(items))
	}
}

// TestCompiledProcessZeroAlloc pins the hot-path allocation budget: the
// compiled single-packet and batched paths must not allocate.
func TestCompiledProcessZeroAlloc(t *testing.T) {
	pl := buildEquivPipeline(11, DefaultConfig())
	comp := pl.Compile()
	p := genEquivPackets(11, 1)[0]
	var ctx Context
	if n := testing.AllocsPerRun(200, func() {
		p.Meta.Pass = 0
		comp.ProcessCtx(p, 0, &ctx)
	}); n != 0 {
		t.Errorf("compiled ProcessCtx allocates %v/op, want 0", n)
	}
	items := []Item{{Pkt: p, NowNs: 0}}
	out := make([]Result, 0, 1)
	s := comp.NewScratch()
	if n := testing.AllocsPerRun(200, func() {
		p.Meta.Pass = 0
		out = comp.ProcessBatch(items, out[:0], s)
	}); n != 0 {
		t.Errorf("compiled ProcessBatch allocates %v/op, want 0", n)
	}
}
