package pipeline

import "sfp/internal/packet"

// This file is the data plane's compile step: Pipeline.Compile freezes the
// pipeline's stage/table structure into a flat, specialized jump table
// (Compiled) that replaces the generic interpreter loop on the hot path.
//
// What compilation buys over the interpreter (Process/ProcessCtx):
//
//   - the stage/table walk runs over contiguous value slices instead of
//     chasing *Stage/*Table pointers;
//   - each table's lookup discipline (exact-index / tenant-sharded /
//     generic scan) is selected once at compile time instead of per packet;
//   - per-key field IDs, match kinds, and bit widths are flattened into
//     parallel arrays, so matching skips the Field.Bits() switch per key;
//   - action bodies are resolved at rule-insert/compile time (Rule.fn,
//     ctable.defaultFn), skipping the per-packet action-map lookups;
//   - the batch entry point (ProcessBatch) accumulates telemetry in
//     per-worker Scratch counters and folds them into the shared atomics
//     once per batch, so multicore replay stops bouncing counter cache
//     lines on every packet.
//
// A Compiled is a snapshot of the pipeline's STRUCTURE, not its rules: rule
// churn (Table.Insert / Table.DeleteTenant) is visible immediately because
// lookups read the live table indexes. Structural changes — adding or
// removing tables, registering actions, changing a default action — are NOT
// visible; callers must recompile after them (internal/vswitch invalidates
// its cached Compiled on physical-NF install/remove).
//
// The compiled path is proved bit-identical to the interpreter — Result
// fields, recirculation passes, register side effects, and telemetry
// counts — by the golden and randomized property tests in compile_test.go.

// Item is one packet of a replay workload together with its arrival
// timestamp: the unit of the batched processing path. internal/traffic
// aliases this type for workload generation.
type Item struct {
	Pkt   *packet.Packet
	NowNs float64
}

// Lookup disciplines, fixed per table at compile time (mirroring the
// classification NewTable derives from the key spec).
const (
	ckExact   = iota // all-exact keys: FNV-1a hash index
	ckSharded        // exact (tenant, pass) prefix: per-tenant bucket scan
	ckScan           // generic: priority-ordered linear scan
)

// ctable is one table's compiled form. It keeps a pointer to the live
// Table for the rule indexes (so churn stays visible) but caches everything
// derivable from the frozen structure.
type ctable struct {
	t    *Table
	slot int // index into Scratch.hits/misses
	kind uint8

	// Parallel per-key arrays replacing t.Keys field/kind/width derivation.
	fields []FieldID
	kinds  []MatchKind
	bits   []int

	defaultFn     ActionFunc
	defaultParams []uint64
}

// cstage is one stage's compiled form.
type cstage struct {
	index  int
	regs   *RegisterFile
	tables []ctable
}

// Compiled is a pipeline specialized for packet processing. It is immutable
// after Compile and safe for concurrent use by any number of workers
// (single-packet entry points share the pipeline's atomic counters; batch
// workers each own a Scratch).
type Compiled struct {
	pl        *Pipeline
	maxPasses int
	parserNs  float64
	perStage  float64
	perTable  float64
	deparser  float64
	recirc    float64
	stages    []cstage
	tabs      []*Table // slot -> table, for Scratch folding
}

// Compile freezes the pipeline's current structure into a specialized
// processor. The receiver stays fully usable (and remains the reference
// interpreter); rule churn after Compile is honored by the compiled form,
// structural changes require recompiling.
func (pl *Pipeline) Compile() *Compiled {
	c := &Compiled{
		pl:        pl,
		maxPasses: pl.Cfg.MaxPasses,
		parserNs:  pl.Cfg.ParserNs,
		perStage:  pl.Cfg.PerStageNs,
		perTable:  pl.Cfg.PerTableNs,
		deparser:  pl.Cfg.DeparserNs,
		recirc:    pl.Cfg.RecircNs,
	}
	if c.maxPasses <= 0 {
		c.maxPasses = 1
	}
	c.stages = make([]cstage, 0, len(pl.Stages))
	for _, st := range pl.Stages {
		cs := cstage{index: st.Index, regs: st.Regs}
		for _, t := range st.Tables {
			ct := ctable{
				t:             t,
				slot:          len(c.tabs),
				kind:          ckScan,
				defaultParams: t.DefaultParams,
			}
			switch {
			case t.allExact:
				ct.kind = ckExact
			case t.sharded:
				ct.kind = ckSharded
			}
			for _, k := range t.Keys {
				ct.fields = append(ct.fields, k.Field)
				ct.kinds = append(ct.kinds, k.Kind)
				ct.bits = append(ct.bits, k.Field.Bits())
			}
			if t.DefaultAction != "" {
				ct.defaultFn = t.actions[t.DefaultAction]
			}
			cs.tables = append(cs.tables, ct)
			c.tabs = append(c.tabs, t)
		}
		c.stages = append(c.stages, cs)
	}
	return c
}

// Pipeline returns the pipeline this Compiled was built from.
func (c *Compiled) Pipeline() *Pipeline { return c.pl }

// Scratch is one worker's private batch state: the reusable action Context
// plus local telemetry counters that ProcessBatch folds into the pipeline's
// shared atomics once per batch. A Scratch must not be shared between
// concurrent workers.
type Scratch struct {
	c            *Compiled
	ctx          Context
	processed    uint64
	recirculated uint64
	hits         []uint64
	misses       []uint64
}

// NewScratch allocates batch scratch state sized for this pipeline.
func (c *Compiled) NewScratch() *Scratch {
	return &Scratch{
		c:      c,
		hits:   make([]uint64, len(c.tabs)),
		misses: make([]uint64, len(c.tabs)),
	}
}

// flush folds the local counters into the shared atomics and zeroes them.
func (s *Scratch) flush() {
	if s.processed != 0 {
		s.c.pl.processed.Add(s.processed)
		s.processed = 0
	}
	if s.recirculated != 0 {
		s.c.pl.recirculated.Add(s.recirculated)
		s.recirculated = 0
	}
	for i, t := range s.c.tabs {
		if s.hits[i] != 0 {
			t.hits.Add(s.hits[i])
			s.hits[i] = 0
		}
		if s.misses[i] != 0 {
			t.misses.Add(s.misses[i])
			s.misses[i] = 0
		}
	}
}

// Process runs one packet through the compiled pipeline, charging telemetry
// directly to the shared atomic counters. It is the drop-in counterpart of
// Pipeline.Process and returns bit-identical results.
func (c *Compiled) Process(p *packet.Packet, nowNs float64) Result {
	ctx := ctxPool.Get().(*Context)
	res := c.run(p, nowNs, ctx, nil)
	ctxPool.Put(ctx)
	return res
}

// ProcessCtx is Process with a caller-owned scratch Context (the
// zero-allocation entry point for tight single-packet loops). The scratch
// must not be shared between concurrent callers.
func (c *Compiled) ProcessCtx(p *packet.Packet, nowNs float64, ctx *Context) Result {
	return c.run(p, nowNs, ctx, nil)
}

// ProcessBatch runs a chunk of packets through the compiled path,
// appending each packet's Result to out (returned re-sliced), with ONE
// telemetry flush for the whole batch: counters accumulate in the worker's
// Scratch and fold into the shared atomics at the end, so per-packet atomic
// RMWs — and their cross-core cache-line traffic — are amortized away.
// Passing a nil Scratch allocates a throwaway one.
func (c *Compiled) ProcessBatch(items []Item, out []Result, s *Scratch) []Result {
	if s == nil {
		s = c.NewScratch()
	}
	for i := range items {
		out = append(out, c.run(items[i].Pkt, items[i].NowNs, &s.ctx, s))
	}
	s.flush()
	return out
}

// run is the compiled per-packet loop. It mirrors Pipeline.ProcessCtx
// operation for operation (same float accumulation order, same counter
// semantics) so results are bit-identical; s selects batched (local) vs
// direct (atomic) telemetry.
func (c *Compiled) run(p *packet.Packet, nowNs float64, ctx *Context, s *Scratch) Result {
	res := Result{LatencyNs: c.parserNs}
	if s != nil {
		s.processed++
	} else {
		c.pl.processed.Add(1)
	}
	for pass := 0; pass < c.maxPasses; pass++ {
		res.Passes++
		p.Meta.Recirculate = false
		for si := range c.stages {
			st := &c.stages[si]
			ctx.StageIndex = st.index
			ctx.Regs = st.regs
			ctx.NowNs = nowNs + res.LatencyNs
			for ti := range st.tables {
				ct := &st.tables[ti]
				if r := ct.apply(ctx, p, s); r != nil {
					res.TablesApplied++
					res.LatencyNs += c.perTable
				}
			}
			res.LatencyNs += c.perStage
			if p.Meta.Drop {
				res.Dropped = true
				res.LatencyNs += c.deparser
				return res
			}
		}
		if !p.Meta.Recirculate {
			break
		}
		p.Meta.Pass++
		if s != nil {
			s.recirculated++
		} else {
			c.pl.recirculated.Add(1)
		}
		res.LatencyNs += c.recirc
	}
	res.LatencyNs += c.deparser
	res.EgressPort = p.Meta.EgressPort
	res.Dropped = p.Meta.Drop
	return res
}

// apply is the compiled Table.Apply: lookup via the precompiled discipline,
// count the hit/miss, run the cached action body.
func (ct *ctable) apply(ctx *Context, p *packet.Packet, s *Scratch) *Rule {
	r := ct.lookup(p)
	if r != nil {
		if s != nil {
			s.hits[ct.slot]++
		} else {
			ct.t.hits.Add(1)
		}
		fn := r.fn
		if fn == nil {
			// Rules always enter via Insert, which caches fn; this fallback
			// only covers rules predating a (re-)registration of the action.
			fn = ct.t.actions[r.Action]
		}
		if fn != nil {
			fn(ctx, p, r.Params)
		}
		if r.Rec {
			p.Meta.Recirculate = true
		}
		return r
	}
	if s != nil {
		s.misses[ct.slot]++
	} else {
		ct.t.misses.Add(1)
	}
	if ct.defaultFn != nil {
		ct.defaultFn(ctx, p, ct.defaultParams)
	}
	return nil
}

// lookup finds the highest-priority matching rule, or nil, without touching
// the table's counters (the caller charges them batched or direct).
func (ct *ctable) lookup(p *packet.Packet) *Rule {
	switch ct.kind {
	case ckExact:
		h := uint64(fnvOffset64)
		for _, f := range ct.fields {
			h = hashVal(h, Extract(p, f))
		}
		for _, r := range ct.t.exactIdx[h] {
			if ct.exactMatches(r, p) {
				return r
			}
		}
	case ckSharded:
		k := shardKey(Extract(p, ct.fields[0]), Extract(p, ct.fields[1]))
		for _, r := range ct.t.shards[k] {
			if ct.ruleMatches(r, p) {
				return r
			}
		}
	default:
		for _, r := range ct.t.scan {
			if ct.ruleMatches(r, p) {
				return r
			}
		}
	}
	return nil
}

// exactMatches verifies an exact-index candidate against the packet.
func (ct *ctable) exactMatches(r *Rule, p *packet.Packet) bool {
	for i, f := range ct.fields {
		if Extract(p, f) != r.Matches[i].Value {
			return false
		}
	}
	return true
}

// ruleMatches evaluates every key of r against the packet using the
// precompiled kind/width arrays.
func (ct *ctable) ruleMatches(r *Rule, p *packet.Packet) bool {
	for i, f := range ct.fields {
		if !r.Matches[i].matches(Extract(p, f), ct.kinds[i], ct.bits[i]) {
			return false
		}
	}
	return true
}
