// Package pipeline models a programmable switch packet-processing pipeline
// in the style of a Tofino-class RMT chip: a fixed sequence of physical
// stages, each holding match-action tables backed by block-granular memory,
// with per-packet metadata, stateful registers, and recirculation.
//
// The SFP data plane (internal/vswitch) installs physical NFs as tables on
// these stages and copies tenant rules into them; the control-plane model
// (internal/model) constrains placements by the same stage/block/entry
// resources this package accounts for.
package pipeline

import (
	"fmt"

	"sfp/internal/packet"
)

// FieldID names a matchable header or metadata field, the post-parser view
// a P4 match key refers to.
type FieldID int

// Matchable fields.
const (
	FieldTenantID FieldID = iota // metadata: tenant identifier
	FieldPass                    // metadata: recirculation pass counter
	FieldEtherType
	FieldVLANID
	FieldIPv4Src
	FieldIPv4Dst
	FieldIPProto
	FieldSrcPort
	FieldDstPort
	FieldTCPFlags
	FieldClassID // metadata: class assigned by the traffic classifier
	FieldL4Hash  // metadata: flow hash computed by a hash action
	FieldIngressPort
	numFields
)

var fieldNames = [...]string{
	FieldTenantID:    "tenant_id",
	FieldPass:        "pass",
	FieldEtherType:   "ether_type",
	FieldVLANID:      "vlan_id",
	FieldIPv4Src:     "ipv4_src",
	FieldIPv4Dst:     "ipv4_dst",
	FieldIPProto:     "ip_proto",
	FieldSrcPort:     "l4_src_port",
	FieldDstPort:     "l4_dst_port",
	FieldTCPFlags:    "tcp_flags",
	FieldClassID:     "class_id",
	FieldL4Hash:      "l4_hash",
	FieldIngressPort: "ingress_port",
}

// String returns the P4-style field name.
func (f FieldID) String() string {
	if f >= 0 && int(f) < len(fieldNames) {
		return fieldNames[f]
	}
	return fmt.Sprintf("field(%d)", int(f))
}

// Bits returns the field width in bits, used for rule-width accounting
// (the constant b in the placement model).
func (f FieldID) Bits() int {
	switch f {
	case FieldIPv4Src, FieldIPv4Dst, FieldTenantID, FieldL4Hash:
		return 32
	case FieldEtherType, FieldSrcPort, FieldDstPort, FieldClassID, FieldIngressPort:
		return 16
	case FieldVLANID:
		return 12
	case FieldIPProto, FieldTCPFlags, FieldPass:
		return 8
	default:
		return 32
	}
}

// Extract reads the field's current value from a packet. Invalid headers
// read as zero, matching P4 semantics for reads of invalid headers under
// the simulator's initialize-to-zero convention.
func Extract(p *packet.Packet, f FieldID) uint64 {
	switch f {
	case FieldTenantID:
		return uint64(p.Meta.TenantID)
	case FieldPass:
		return uint64(p.Meta.Pass)
	case FieldEtherType:
		return uint64(p.Eth.EtherType)
	case FieldVLANID:
		if p.HasVLAN {
			return uint64(p.VLAN.VID)
		}
	case FieldIPv4Src:
		if p.HasIPv4 {
			return uint64(p.IPv4.Src)
		}
	case FieldIPv4Dst:
		if p.HasIPv4 {
			return uint64(p.IPv4.Dst)
		}
	case FieldIPProto:
		if p.HasIPv4 {
			return uint64(p.IPv4.Protocol)
		}
	case FieldSrcPort:
		if p.HasTCP {
			return uint64(p.TCP.SrcPort)
		}
		if p.HasUDP {
			return uint64(p.UDP.SrcPort)
		}
	case FieldDstPort:
		if p.HasTCP {
			return uint64(p.TCP.DstPort)
		}
		if p.HasUDP {
			return uint64(p.UDP.DstPort)
		}
	case FieldTCPFlags:
		if p.HasTCP {
			return uint64(p.TCP.Flags)
		}
	case FieldClassID:
		return uint64(p.Meta.ClassID)
	case FieldL4Hash:
		return uint64(p.Meta.L4Hash)
	case FieldIngressPort:
		return uint64(p.Meta.IngressPort)
	}
	return 0
}

// MatchKind is the lookup discipline of one match key field.
type MatchKind int

// Match kinds supported by the MAU model.
const (
	MatchExact MatchKind = iota
	MatchTernary
	MatchLPM
	MatchRange
)

// String names the kind as in a P4 table declaration.
func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchTernary:
		return "ternary"
	case MatchLPM:
		return "lpm"
	case MatchRange:
		return "range"
	}
	return fmt.Sprintf("matchkind(%d)", int(k))
}

// Key is one field of a table's match specification.
type Key struct {
	Field FieldID
	Kind  MatchKind
}

// Match is one field of a rule's match value, interpreted per the table's
// corresponding Key kind:
//
//   - exact:   Value
//   - ternary: Value/Mask (bits outside Mask are wildcards)
//   - lpm:     Value with PrefixLen leading bits significant (of Field.Bits())
//   - range:   [Lo, Hi] inclusive
type Match struct {
	Value     uint64
	Mask      uint64
	PrefixLen int
	Lo, Hi    uint64
}

// Wildcard returns a ternary match-anything value.
func Wildcard() Match { return Match{Mask: 0} }

// Eq returns an exact (or fully-masked ternary) match on v.
func Eq(v uint64) Match { return Match{Value: v, Mask: ^uint64(0)} }

// Masked returns a ternary match of v under mask m.
func Masked(v, m uint64) Match { return Match{Value: v & m, Mask: m} }

// Prefix returns an LPM match on the top plen bits of v.
func Prefix(v uint64, plen int) Match { return Match{Value: v, PrefixLen: plen} }

// Between returns a range match on [lo, hi].
func Between(lo, hi uint64) Match { return Match{Lo: lo, Hi: hi} }

// matches reports whether value v satisfies this match under kind k for a
// field of the given bit width.
func (m Match) matches(v uint64, k MatchKind, bits int) bool {
	switch k {
	case MatchExact:
		return v == m.Value
	case MatchTernary:
		return v&m.Mask == m.Value&m.Mask
	case MatchLPM:
		if m.PrefixLen <= 0 {
			return true
		}
		if m.PrefixLen >= bits {
			return v == m.Value
		}
		shift := uint(bits - m.PrefixLen)
		return v>>shift == m.Value>>shift
	case MatchRange:
		return v >= m.Lo && v <= m.Hi
	}
	return false
}
