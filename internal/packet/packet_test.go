package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseDeparseTCP(t *testing.T) {
	p := NewBuilder().
		WithEth(MAC{1, 2, 3, 4, 5, 6}, MAC{7, 8, 9, 10, 11, 12}).
		WithVLAN(42).
		WithIPv4(IPv4Addr(10, 0, 0, 1), IPv4Addr(192, 168, 1, 2)).
		WithTCP(12345, 80).
		WithTCPFlags(TCPSyn | TCPAck).
		WithPayload(100).
		Build()
	wire := Deparse(p)
	got, err := Parse(wire, true)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.Meta.TenantID != 42 {
		t.Errorf("tenant ID from VLAN = %d, want 42", got.Meta.TenantID)
	}
	if !got.HasTCP || got.TCP.SrcPort != 12345 || got.TCP.DstPort != 80 {
		t.Errorf("TCP header mismatch: %+v", got.TCP)
	}
	if got.TCP.Flags != TCPSyn|TCPAck {
		t.Errorf("TCP flags = %x, want %x", got.TCP.Flags, TCPSyn|TCPAck)
	}
	if got.PayloadLen != 100 {
		t.Errorf("payload = %d, want 100", got.PayloadLen)
	}
	if got.WireLen() != len(wire) {
		t.Errorf("WireLen = %d, wire bytes = %d", got.WireLen(), len(wire))
	}
}

func TestParseDeparseUDPNoVLAN(t *testing.T) {
	p := NewBuilder().
		WithIPv4(IPv4Addr(172, 16, 0, 9), IPv4Addr(8, 8, 8, 8)).
		WithUDP(5353, 53).
		WithWireLen(128).
		Build()
	wire := Deparse(p)
	if len(wire) != 128 {
		t.Fatalf("wire len = %d, want 128", len(wire))
	}
	got, err := Parse(wire, true)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !got.HasUDP || got.HasTCP || got.HasVLAN {
		t.Errorf("header validity wrong: %+v", got)
	}
	if got.UDP.DstPort != 53 {
		t.Errorf("UDP dst port = %d", got.UDP.DstPort)
	}
}

func TestParseTruncated(t *testing.T) {
	p := NewBuilder().WithIPv4(1, 2).WithTCP(1, 2).Build()
	wire := Deparse(p)
	for _, n := range []int{0, 5, 13, 20, 33, 40, 53} {
		if n >= len(wire) {
			continue
		}
		if _, err := Parse(wire[:n], false); err == nil {
			t.Errorf("Parse of %d-byte prefix succeeded, want error", n)
		}
	}
}

func TestParseBadChecksum(t *testing.T) {
	p := NewBuilder().WithIPv4(1, 2).WithTCP(1, 2).Build()
	wire := Deparse(p)
	wire[24] ^= 0xff // corrupt an IPv4 header byte
	if _, err := Parse(wire, true); err == nil {
		t.Error("Parse accepted corrupted IPv4 header")
	}
	if _, err := Parse(wire, false); err != nil {
		t.Errorf("Parse without verification rejected packet: %v", err)
	}
}

func TestParseNonIP(t *testing.T) {
	wire := make([]byte, 60)
	wire[12], wire[13] = 0x08, 0x06 // ARP
	p, err := Parse(wire, true)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.HasIPv4 || p.HasTCP || p.HasUDP {
		t.Errorf("non-IP packet parsed L3/L4: %+v", p)
	}
	if p.PayloadLen != 46 {
		t.Errorf("payload = %d, want 46", p.PayloadLen)
	}
}

// TestRoundTripProperty checks parse(deparse(p)) preserves every field the
// deparser emits, over randomized packets.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(srcIP, dstIP uint32, sport, dport uint16, vid uint16, tcp bool, payload uint16) bool {
		b := NewBuilder().WithIPv4(srcIP, dstIP).WithPayload(int(payload % 1400))
		if vid%2 == 0 {
			b = b.WithVLAN(vid)
		}
		if tcp {
			b = b.WithTCP(sport, dport).WithTCPFlags(uint8(rng.Intn(64)))
		} else {
			b = b.WithUDP(sport, dport)
		}
		want := b.Build()
		got, err := Parse(Deparse(want), true)
		if err != nil {
			return false
		}
		// The deparser fills derived fields; align them before comparing.
		want.IPv4.TotalLen = got.IPv4.TotalLen
		want.IPv4.Checksum = got.IPv4.Checksum
		if want.HasUDP {
			want.UDP.Length = got.UDP.Length
		}
		return *got == *want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestFiveTupleHashStable(t *testing.T) {
	p1 := NewBuilder().WithIPv4(10, 20).WithTCP(1000, 80).Build()
	p2 := NewBuilder().WithIPv4(10, 20).WithTCP(1000, 80).WithPayload(512).Build()
	if p1.FiveTuple().Hash() != p2.FiveTuple().Hash() {
		t.Error("hash depends on payload")
	}
	p3 := NewBuilder().WithIPv4(10, 20).WithTCP(1001, 80).Build()
	if p1.FiveTuple().Hash() == p3.FiveTuple().Hash() {
		t.Error("hash collision on different src ports (suspicious for FNV)")
	}
}

func TestFiveTupleNonIP(t *testing.T) {
	p := &Packet{}
	if ft := p.FiveTuple(); ft != (FiveTuple{}) {
		t.Errorf("non-IP five-tuple = %+v, want zero", ft)
	}
}

func TestWireLenAccounting(t *testing.T) {
	cases := []struct {
		name string
		p    *Packet
		want int
	}{
		{"eth only", &Packet{}, 14},
		{"eth+ipv4", NewBuilder().WithIPv4(1, 2).Build(), 34},
		{"eth+vlan+ipv4+tcp", NewBuilder().WithVLAN(5).WithIPv4(1, 2).WithTCP(1, 2).Build(), 58},
		{"eth+ipv4+udp", NewBuilder().WithIPv4(1, 2).WithUDP(1, 2).Build(), 42},
	}
	for _, c := range cases {
		if got := c.p.WireLen(); got != c.want {
			t.Errorf("%s: WireLen = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("MAC.String = %q", got)
	}
}

func TestFormatIPv4(t *testing.T) {
	if got := FormatIPv4(IPv4Addr(10, 1, 2, 3)); got != "10.1.2.3" {
		t.Errorf("FormatIPv4 = %q", got)
	}
}

func BenchmarkParse(b *testing.B) {
	wire := Deparse(NewBuilder().WithVLAN(7).WithIPv4(1, 2).WithTCP(100, 200).WithWireLen(256).Build())
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(wire, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeparse(b *testing.B) {
	p := NewBuilder().WithVLAN(7).WithIPv4(1, 2).WithTCP(100, 200).WithWireLen(256).Build()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Deparse(p)
	}
}
