package packet

import (
	"bytes"
	"testing"
)

// FuzzParse hammers the wire parser with arbitrary bytes: it must never
// panic, and any packet it accepts must re-serialize to something it
// accepts again with identical header fields (idempotent round-trip).
func FuzzParse(f *testing.F) {
	f.Add(Deparse(NewBuilder().WithVLAN(9).WithIPv4(1, 2).WithTCP(80, 443).WithWireLen(96).Build()))
	f.Add(Deparse(NewBuilder().WithIPv4(3, 4).WithUDP(53, 53).Build()))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, wire []byte) {
		p, err := Parse(wire, false)
		if err != nil {
			return
		}
		again, err := Parse(Deparse(p), false)
		if err != nil {
			t.Fatalf("re-parse of deparsed packet failed: %v", err)
		}
		if again.Eth != p.Eth || again.HasVLAN != p.HasVLAN || again.HasIPv4 != p.HasIPv4 ||
			again.HasTCP != p.HasTCP || again.HasUDP != p.HasUDP {
			t.Fatalf("round-trip changed header validity: %+v vs %+v", p, again)
		}
		if p.HasIPv4 && (again.IPv4.Src != p.IPv4.Src || again.IPv4.Dst != p.IPv4.Dst || again.IPv4.Protocol != p.IPv4.Protocol) {
			t.Fatalf("round-trip changed IPv4: %+v vs %+v", p.IPv4, again.IPv4)
		}
		if p.HasTCP && again.TCP != p.TCP {
			t.Fatalf("round-trip changed TCP: %+v vs %+v", p.TCP, again.TCP)
		}
	})
}
