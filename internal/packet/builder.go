package packet

// Builder assembles packets fluently for examples, tests, and the traffic
// generator. The zero value produces a bare Ethernet frame; each With method
// returns the builder for chaining and Build returns an independent Packet.
type Builder struct {
	p Packet
}

// NewBuilder returns a builder pre-populated with sane defaults: an IPv4
// ethertype and a TTL of 64.
func NewBuilder() *Builder {
	b := &Builder{}
	b.p.Eth.EtherType = EtherTypeIPv4
	b.p.IPv4.TTL = 64
	return b
}

// WithEth sets the Ethernet addresses.
func (b *Builder) WithEth(src, dst MAC) *Builder {
	b.p.Eth.Src, b.p.Eth.Dst = src, dst
	return b
}

// WithVLAN inserts an 802.1Q tag carrying vid; the tenant ID metadata is set
// to match, as the parser would.
func (b *Builder) WithVLAN(vid uint16) *Builder {
	b.p.HasVLAN = true
	b.p.VLAN.VID = vid & 0x0fff
	b.p.VLAN.EtherType = EtherTypeIPv4
	b.p.Eth.EtherType = EtherTypeVLAN
	b.p.Meta.TenantID = uint32(vid & 0x0fff)
	return b
}

// WithIPv4 sets the network header endpoints.
func (b *Builder) WithIPv4(src, dst uint32) *Builder {
	b.p.HasIPv4 = true
	b.p.IPv4.Src, b.p.IPv4.Dst = src, dst
	if b.p.IPv4.TTL == 0 {
		b.p.IPv4.TTL = 64
	}
	return b
}

// WithTCP sets a TCP header (clearing any UDP header).
func (b *Builder) WithTCP(srcPort, dstPort uint16) *Builder {
	b.p.HasTCP, b.p.HasUDP = true, false
	b.p.TCP.SrcPort, b.p.TCP.DstPort = srcPort, dstPort
	b.p.IPv4.Protocol = ProtoTCP
	return b
}

// WithTCPFlags sets the TCP flag bits.
func (b *Builder) WithTCPFlags(flags uint8) *Builder {
	b.p.TCP.Flags = flags
	return b
}

// WithUDP sets a UDP header (clearing any TCP header).
func (b *Builder) WithUDP(srcPort, dstPort uint16) *Builder {
	b.p.HasUDP, b.p.HasTCP = true, false
	b.p.UDP.SrcPort, b.p.UDP.DstPort = srcPort, dstPort
	b.p.IPv4.Protocol = ProtoUDP
	return b
}

// WithTenant sets the tenant ID metadata directly (for deployments that
// classify tenants by fields other than VLAN).
func (b *Builder) WithTenant(id uint32) *Builder {
	b.p.Meta.TenantID = id
	return b
}

// WithWireLen pads the payload so the frame's total on-wire size (headers +
// payload) equals n bytes; sizes smaller than the header stack leave an
// empty payload.
func (b *Builder) WithWireLen(n int) *Builder {
	b.p.PayloadLen = 0
	if hdr := b.p.WireLen(); n > hdr {
		b.p.PayloadLen = n - hdr
	}
	return b
}

// WithPayload sets the payload length directly.
func (b *Builder) WithPayload(n int) *Builder {
	b.p.PayloadLen = n
	return b
}

// Build returns a copy of the assembled packet.
func (b *Builder) Build() *Packet {
	p := b.p
	return &p
}
