package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Parsing errors.
var (
	ErrTruncated   = errors.New("packet: truncated header")
	ErrBadIHL      = errors.New("packet: IPv4 IHL != 5 not supported")
	ErrBadChecksum = errors.New("packet: bad IPv4 header checksum")
)

// Parse decodes a wire-format packet into the structured representation,
// mirroring the fixed parse graph of the SFP switch program:
//
//	ethernet -> [vlan] -> ipv4 -> {tcp | udp | other}
//
// Unknown ethertypes stop parsing after Ethernet (the payload length then
// covers everything after the last parsed header). The IPv4 checksum is
// verified when verifyChecksum is true.
func Parse(wire []byte, verifyChecksum bool) (*Packet, error) {
	p := &Packet{}
	if len(wire) < 14 {
		return nil, fmt.Errorf("%w: ethernet needs 14 bytes, have %d", ErrTruncated, len(wire))
	}
	copy(p.Eth.Dst[:], wire[0:6])
	copy(p.Eth.Src[:], wire[6:12])
	p.Eth.EtherType = binary.BigEndian.Uint16(wire[12:14])
	off := 14
	etherType := p.Eth.EtherType

	if etherType == EtherTypeVLAN {
		if len(wire) < off+4 {
			return nil, fmt.Errorf("%w: vlan tag", ErrTruncated)
		}
		tci := binary.BigEndian.Uint16(wire[off : off+2])
		p.HasVLAN = true
		p.VLAN.PCP = uint8(tci >> 13)
		p.VLAN.DEI = tci&0x1000 != 0
		p.VLAN.VID = tci & 0x0fff
		p.VLAN.EtherType = binary.BigEndian.Uint16(wire[off+2 : off+4])
		etherType = p.VLAN.EtherType
		off += 4
		// Tenant identification by VLAN ID (§III assumption 1).
		p.Meta.TenantID = uint32(p.VLAN.VID)
	}

	if etherType != EtherTypeIPv4 {
		p.PayloadLen = len(wire) - off
		return p, nil
	}
	if len(wire) < off+20 {
		return nil, fmt.Errorf("%w: ipv4", ErrTruncated)
	}
	ihl := wire[off] & 0x0f
	if version := wire[off] >> 4; version != 4 {
		return nil, fmt.Errorf("packet: unsupported IP version %d", version)
	}
	if ihl != 5 {
		return nil, ErrBadIHL
	}
	p.HasIPv4 = true
	p.IPv4.TOS = wire[off+1]
	p.IPv4.TotalLen = binary.BigEndian.Uint16(wire[off+2 : off+4])
	p.IPv4.ID = binary.BigEndian.Uint16(wire[off+4 : off+6])
	fo := binary.BigEndian.Uint16(wire[off+6 : off+8])
	p.IPv4.Flags = uint8(fo >> 13)
	p.IPv4.FragOff = fo & 0x1fff
	p.IPv4.TTL = wire[off+8]
	p.IPv4.Protocol = wire[off+9]
	p.IPv4.Checksum = binary.BigEndian.Uint16(wire[off+10 : off+12])
	p.IPv4.Src = binary.BigEndian.Uint32(wire[off+12 : off+16])
	p.IPv4.Dst = binary.BigEndian.Uint32(wire[off+16 : off+20])
	if verifyChecksum {
		if got := ipv4Checksum(wire[off : off+20]); got != 0 {
			return nil, ErrBadChecksum
		}
	}
	off += 20

	switch p.IPv4.Protocol {
	case ProtoTCP:
		if len(wire) < off+20 {
			return nil, fmt.Errorf("%w: tcp", ErrTruncated)
		}
		p.HasTCP = true
		p.TCP.SrcPort = binary.BigEndian.Uint16(wire[off : off+2])
		p.TCP.DstPort = binary.BigEndian.Uint16(wire[off+2 : off+4])
		p.TCP.Seq = binary.BigEndian.Uint32(wire[off+4 : off+8])
		p.TCP.Ack = binary.BigEndian.Uint32(wire[off+8 : off+12])
		p.TCP.Flags = wire[off+13] & 0x3f
		p.TCP.Window = binary.BigEndian.Uint16(wire[off+14 : off+16])
		off += 20
	case ProtoUDP:
		if len(wire) < off+8 {
			return nil, fmt.Errorf("%w: udp", ErrTruncated)
		}
		p.HasUDP = true
		p.UDP.SrcPort = binary.BigEndian.Uint16(wire[off : off+2])
		p.UDP.DstPort = binary.BigEndian.Uint16(wire[off+2 : off+4])
		p.UDP.Length = binary.BigEndian.Uint16(wire[off+4 : off+6])
		off += 8
	}
	p.PayloadLen = len(wire) - off
	return p, nil
}

// Deparse serializes the packet back to wire format, recomputing the IPv4
// total length and header checksum, exactly as the switch deparser does.
// Payload bytes are emitted as zeros (the simulator does not carry payload
// contents, only lengths).
func Deparse(p *Packet) []byte {
	wire := make([]byte, 0, p.WireLen())
	wire = append(wire, p.Eth.Dst[:]...)
	wire = append(wire, p.Eth.Src[:]...)
	wire = binary.BigEndian.AppendUint16(wire, p.Eth.EtherType)
	if p.HasVLAN {
		tci := uint16(p.VLAN.PCP)<<13 | p.VLAN.VID&0x0fff
		if p.VLAN.DEI {
			tci |= 0x1000
		}
		wire = binary.BigEndian.AppendUint16(wire, tci)
		wire = binary.BigEndian.AppendUint16(wire, p.VLAN.EtherType)
	}
	if p.HasIPv4 {
		l4 := 0
		switch {
		case p.HasTCP:
			l4 = 20
		case p.HasUDP:
			l4 = 8
		}
		total := uint16(20 + l4 + p.PayloadLen)
		hdr := make([]byte, 20)
		hdr[0] = 0x45
		hdr[1] = p.IPv4.TOS
		binary.BigEndian.PutUint16(hdr[2:], total)
		binary.BigEndian.PutUint16(hdr[4:], p.IPv4.ID)
		binary.BigEndian.PutUint16(hdr[6:], uint16(p.IPv4.Flags)<<13|p.IPv4.FragOff&0x1fff)
		hdr[8] = p.IPv4.TTL
		hdr[9] = p.IPv4.Protocol
		binary.BigEndian.PutUint32(hdr[12:], p.IPv4.Src)
		binary.BigEndian.PutUint32(hdr[16:], p.IPv4.Dst)
		binary.BigEndian.PutUint16(hdr[10:], ipv4Checksum(hdr))
		wire = append(wire, hdr...)
	}
	switch {
	case p.HasTCP:
		tcp := make([]byte, 20)
		binary.BigEndian.PutUint16(tcp[0:], p.TCP.SrcPort)
		binary.BigEndian.PutUint16(tcp[2:], p.TCP.DstPort)
		binary.BigEndian.PutUint32(tcp[4:], p.TCP.Seq)
		binary.BigEndian.PutUint32(tcp[8:], p.TCP.Ack)
		tcp[12] = 5 << 4 // data offset
		tcp[13] = p.TCP.Flags
		binary.BigEndian.PutUint16(tcp[14:], p.TCP.Window)
		wire = append(wire, tcp...)
	case p.HasUDP:
		udp := make([]byte, 8)
		binary.BigEndian.PutUint16(udp[0:], p.UDP.SrcPort)
		binary.BigEndian.PutUint16(udp[2:], p.UDP.DstPort)
		length := p.UDP.Length
		if length == 0 {
			length = uint16(8 + p.PayloadLen)
		}
		binary.BigEndian.PutUint16(udp[4:], length)
		wire = append(wire, udp...)
	}
	wire = append(wire, make([]byte, p.PayloadLen)...)
	return wire
}

// ipv4Checksum computes the ones-complement checksum over a 20-byte header.
// Computing it over a header whose checksum field is already filled yields 0
// iff the checksum is valid.
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
