// Package packet models the packets that traverse the SFP data plane.
//
// The SFP switch simulator operates on structured header representations
// (the post-parser view a P4 program sees) rather than on raw bytes, but the
// package also provides a byte-level parser and deparser so that packets can
// round-trip through wire format exactly as they would through a Tofino
// parser/deparser pair. Per-packet metadata carries the two fields the SFP
// data plane virtualization depends on: the tenant ID and the recirculation
// pass counter (§IV of the paper).
package packet

import (
	"encoding/binary"
	"fmt"
)

// EtherType values understood by the parser.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeVLAN uint16 = 0x8100
)

// IP protocol numbers understood by the parser.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the address in the canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is the outermost header of every packet.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// VLAN is an optional 802.1Q tag. SFP uses the VLAN ID as one of the
// supported tenant-identification fields (§III assumption 1).
type VLAN struct {
	PCP       uint8  // 3-bit priority
	DEI       bool   // drop-eligible indicator
	VID       uint16 // 12-bit VLAN / tenant identifier
	EtherType uint16 // encapsulated ethertype
}

// IPv4 is the network header. Options are not modeled; IHL is fixed at 5.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      uint32
	Dst      uint32
}

// TCP carries the subset of TCP fields NFs match or rewrite.
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8 // FIN/SYN/RST/PSH/ACK/URG in the low 6 bits
	Window  uint16
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << 0
	TCPSyn uint8 = 1 << 1
	TCPRst uint8 = 1 << 2
	TCPPsh uint8 = 1 << 3
	TCPAck uint8 = 1 << 4
	TCPUrg uint8 = 1 << 5
)

// UDP is the UDP header.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Length  uint16
}

// Metadata is the per-packet scratch state that exists only inside the
// switch (the P4 "metadata" bus). It is initialized by the parser and
// consumed by the match-action pipeline.
type Metadata struct {
	// TenantID identifies the owning tenant. The SFP data plane prepends a
	// tenant-ID match to every rule copied from a logical NF (§IV).
	TenantID uint32
	// Pass is the recirculation pass counter, starting at 0 for the first
	// traversal and incremented by the recirculation action.
	Pass uint8
	// IngressPort is the port the packet arrived on.
	IngressPort uint16
	// EgressPort is the forwarding decision; 0 means undecided.
	EgressPort uint16
	// Drop marks the packet for discard at the end of the pipeline.
	Drop bool
	// Recirculate requests another pipeline pass (the REC action argument).
	Recirculate bool
	// L4Hash caches the flow hash computed by hash tables (e.g. tab_lbhash).
	L4Hash uint32
	// ClassID is the traffic class assigned by the traffic classifier NF.
	ClassID uint16
}

// Packet is the post-parser representation of one packet. Optional headers
// use the HasX validity bits, mirroring P4 header validity.
type Packet struct {
	Eth     Ethernet
	HasVLAN bool
	VLAN    VLAN
	HasIPv4 bool
	IPv4    IPv4
	HasTCP  bool
	TCP     TCP
	HasUDP  bool
	UDP     UDP
	// PayloadLen is the number of payload bytes after the parsed headers.
	// The simulator does not materialize payload bytes for performance;
	// only the length matters to the timing model.
	PayloadLen int
	Meta       Metadata
}

// WireLen returns the total on-wire length in bytes (headers + payload),
// excluding the 20 bytes of Ethernet preamble and inter-frame gap that the
// throughput model adds separately.
func (p *Packet) WireLen() int {
	n := 14 // Ethernet
	if p.HasVLAN {
		n += 4
	}
	if p.HasIPv4 {
		n += 20
	}
	if p.HasTCP {
		n += 20
	}
	if p.HasUDP {
		n += 8
	}
	return n + p.PayloadLen
}

// FiveTuple is the classic flow key.
type FiveTuple struct {
	SrcIP   uint32
	DstIP   uint32
	Proto   uint8
	SrcPort uint16
	DstPort uint16
}

// FiveTuple extracts the flow key; ports are zero for non-TCP/UDP packets.
func (p *Packet) FiveTuple() FiveTuple {
	ft := FiveTuple{}
	if p.HasIPv4 {
		ft.SrcIP = p.IPv4.Src
		ft.DstIP = p.IPv4.Dst
		ft.Proto = p.IPv4.Protocol
	}
	switch {
	case p.HasTCP:
		ft.SrcPort, ft.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.HasUDP:
		ft.SrcPort, ft.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	return ft
}

// Hash returns a 32-bit hash of the five-tuple using the FNV-1a function,
// the same hash the load balancer's tab_lbhash stage computes.
func (ft FiveTuple) Hash() uint32 {
	var buf [13]byte
	binary.BigEndian.PutUint32(buf[0:], ft.SrcIP)
	binary.BigEndian.PutUint32(buf[4:], ft.DstIP)
	buf[8] = ft.Proto
	binary.BigEndian.PutUint16(buf[9:], ft.SrcPort)
	binary.BigEndian.PutUint16(buf[11:], ft.DstPort)
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range buf {
		h ^= uint32(b)
		h *= prime32
	}
	return h
}

// IPv4Addr packs four octets into the uint32 representation used throughout
// the simulator.
func IPv4Addr(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// FormatIPv4 renders a packed address in dotted-quad form.
func FormatIPv4(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}
