package lifecycle

import (
	"testing"

	"sfp/internal/core"
	"sfp/internal/pipeline"
)

// shrunk returns a fast config for unit tests: small population, few
// ticks, still enough churn to exercise every path.
func shrunk() Config {
	cfg := Smoke()
	cfg.TargetLive = 600
	cfg.FillBatch = 200
	cfg.WarmTicks = 2
	cfg.MeasureTicks = 8
	return cfg
}

// TestTraceDeterminism: a fixed seed reproduces the identical admission
// and departure trace — across runs, and across solver worker counts.
func TestTraceDeterminism(t *testing.T) {
	a, err := Run(shrunk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shrunk())
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("same seed, different traces: %x vs %x", a.TraceHash, b.TraceHash)
	}
	if a.Accepted != b.Accepted || a.Offered != b.Offered || a.LiveAtEnd != b.LiveAtEnd {
		t.Fatalf("same seed, different counters: %+v vs %+v", a, b)
	}

	workers := shrunk()
	workers.Workers = 4
	w, err := Run(workers)
	if err != nil {
		t.Fatal(err)
	}
	if w.TraceHash != a.TraceHash {
		t.Fatalf("worker count changed the trace: %x vs %x", w.TraceHash, a.TraceHash)
	}

	other := shrunk()
	other.Seed = 99
	o, err := Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if o.TraceHash == a.TraceHash {
		t.Fatal("different seeds produced the same trace hash")
	}
}

// TestLifecycleSmoke is the steady-state check: the population reaches
// and holds the target, the acceptance ratio stays high at Load = 1, and
// the journal the durable run leaves behind replays clean.
func TestLifecycleSmoke(t *testing.T) {
	cfg := shrunk()
	cfg.Dir = t.TempDir()
	cfg.SnapshotEvery = 8 // force several off-lock rotations during the run
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SteadyState {
		t.Fatalf("steady state not reached: mean live %.1f, target %d", rep.MeanLive, cfg.TargetLive)
	}
	if rep.AcceptanceRatio < 0.9 {
		t.Fatalf("acceptance ratio %.3f at load 1", rep.AcceptanceRatio)
	}
	if rep.CapRejected != 0 {
		t.Fatalf("capacity rejections at load 1: %d", rep.CapRejected)
	}
	if rep.Departed == 0 || rep.Accepted == 0 {
		t.Fatalf("no churn measured: %+v", rep)
	}

	// The run closed its controller; the journal must replay to exactly
	// the live population the report claims, with zero reconcile drift.
	r, err := core.Recover(cfg.Dir, cfg.ControllerOptions())
	if err != nil {
		t.Fatalf("journal replay: %v", err)
	}
	defer r.Close()
	if got := len(r.PlacedTenants()); got != rep.LiveAtEnd {
		t.Fatalf("recovered %d placed tenants, run ended with %d live", got, rep.LiveAtEnd)
	}
	if _, err := r.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if rep2, err := r.Reconcile(); err != nil || !rep2.Clean() {
		t.Fatalf("drift after reconcile: %+v, %v", rep2, err)
	}
}

// TestOverloadRejects: at Load well above 1 the switch saturates and the
// engine starts rejecting on capacity — the loss model at work.
func TestOverloadRejects(t *testing.T) {
	cfg := shrunk()
	// Cap the backplane so the target population does not fit: ~600
	// tenants demand ~1.5 Gbps at the default per-user rates.
	cfg.Pipeline = SizedPipeline(cfg.TargetLive, 3, 3)
	cfg.Pipeline.CapacityGbps = 1
	cfg.Load = 2
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CapRejected == 0 {
		t.Fatalf("overloaded run rejected nothing on capacity: %+v", rep)
	}
	if rep.AcceptanceRatio >= 1 {
		t.Fatalf("acceptance ratio %.3f under overload", rep.AcceptanceRatio)
	}
}

// TestMinLatency pins the admission model: latency grows with chain
// length, and recirculation kicks in past one full pipeline of tables.
func TestMinLatency(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	short := MinLatencyNs(cfg, 1)
	long := MinLatencyNs(cfg, cfg.Stages)
	wrapped := MinLatencyNs(cfg, cfg.Stages+1)
	if !(short < long && long < wrapped) {
		t.Fatalf("latency not monotone: %v %v %v", short, long, wrapped)
	}
	if want := cfg.ParserNs + cfg.DeparserNs + cfg.PerTableNs; short != want {
		t.Fatalf("1-table chain latency %v, want %v", short, want)
	}
	if diff := wrapped - long - cfg.PerTableNs - cfg.RecircNs - float64(cfg.Stages)*cfg.PerStageNs; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("recirculation step off by %v", diff)
	}
}

// TestGenDeterminism: the workload generator alone (shared with sfpload's
// live-switch mode) is reproducible and produces valid shapes.
func TestGenDeterminism(t *testing.T) {
	cfg := shrunk().WithDefaults()
	a, b := NewGen(cfg), NewGen(cfg)
	for i := 0; i < 200; i++ {
		x, y := a.Next(), b.Next()
		if x.SFC.Tenant != y.SFC.Tenant || x.SLONs != y.SLONs || x.TTL != y.TTL {
			t.Fatalf("draw %d diverged", i)
		}
		if n := len(x.SFC.NFs); n < cfg.ChainLenMin || n > cfg.ChainLenMax {
			t.Fatalf("chain length %d outside [%d,%d]", n, cfg.ChainLenMin, cfg.ChainLenMax)
		}
		if x.Users < cfg.UsersMin || x.Users > cfg.UsersMax {
			t.Fatalf("users %d outside [%d,%d]", x.Users, cfg.UsersMin, cfg.UsersMax)
		}
		if x.TTL <= 0 {
			t.Fatalf("non-positive TTL %v", x.TTL)
		}
	}
}

// BenchmarkLifecycleChurn100k is the headline gate: fill to 100k live
// tenants on a durable (group-commit journal) controller and sustain
// continuous churn at Load 1. Metrics: live population at end, mean
// population error, p99 arrival-batch latency, acceptance ratio.
func BenchmarkLifecycleChurn100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := Bench100k()
		cfg.Dir = b.TempDir()
		rep, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.LiveAtEnd), "live")
		b.ReportMetric(rep.MeanLive, "mean_live")
		b.ReportMetric(float64(rep.ArriveP99.Milliseconds()), "p99_arrive_ms")
		b.ReportMetric(float64(rep.DepartP99.Milliseconds()), "p99_depart_ms")
		b.ReportMetric(rep.AcceptanceRatio, "accept_ratio")
		if !rep.SteadyState {
			b.Fatalf("steady state not reached: mean live %.1f", rep.MeanLive)
		}
	}
}
