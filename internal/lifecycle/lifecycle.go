// Package lifecycle is the online tenant-churn engine: a deterministic,
// seeded simulation of tenants arriving (Poisson), living (exponential
// TTLs in a timer heap), and departing, driving a real core.Controller
// through its batched write path (ArriveMany / DepartMany) and measuring
// what the paper's §VI never does — steady-state behaviour under
// continuous churn: acceptance ratio, switch utilization, and the
// wall-clock latency of each arrival and departure batch.
//
// The engine follows an Erlang loss model: an arrival the replan cannot
// place is rejected immediately (departed from the waiting set) rather
// than queued, so the live set equals the placed set and the acceptance
// ratio is well-defined. Admission is two-staged, as a real tenant portal
// would be: a latency-SLO check first (is the chain's best achievable
// in-switch latency within the tenant's SLO at all?), then the placement
// itself (do memory and backplane capacity admit it?).
//
// Everything is driven by one seeded RNG on one goroutine against a
// virtual clock, so a fixed seed reproduces the identical admission and
// departure trace — across runs and across solver worker counts — which
// Report.TraceHash fingerprints.
package lifecycle

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"sfp/internal/core"
	"sfp/internal/model"
	"sfp/internal/nf"
	"sfp/internal/pipeline"
	"sfp/internal/traffic"
	"sfp/internal/vswitch"
)

// Config tunes one churn run. The zero value is not runnable; start from
// Smoke() or Bench100k() and override.
type Config struct {
	// Seed drives every random draw (arrivals, TTLs, chain shapes, SLOs).
	Seed int64
	// TargetLive is the steady-state live-tenant population the run fills
	// to and then holds.
	TargetLive int
	// MeanTTL is the mean tenant lifetime in virtual seconds
	// (exponentially distributed).
	MeanTTL float64
	// Tick is the virtual seconds each churn step advances; departures
	// due within a tick batch into one DepartMany, arrivals into one
	// ArriveMany.
	Tick float64
	// Load is the offered-load multiplier: the arrival rate is
	// Load × TargetLive / MeanTTL, so Load = 1 holds the population at
	// TargetLive (Little's law) and Load > 1 overdrives it into the
	// switch's admission limit.
	Load float64
	// FillBatch is the ArriveMany batch size of the initial fill phase.
	FillBatch int
	// WarmTicks churn without measuring (population settling); then
	// MeasureTicks churn with counters and latency recording on.
	WarmTicks, MeasureTicks int

	// Tenant shape: each tenant has users ∈ [UsersMin, UsersMax] and each
	// user a fixed datarate, so demanded bandwidth = users × UserRateGbps
	// (the per-tenant bandwidth model of the paper's §III).
	UsersMin, UsersMax int
	UserRateGbps       float64
	// Chains are uniform in [ChainLenMin, ChainLenMax] NFs with
	// [RuleMin, RuleMax] rules per NF.
	ChainLenMin, ChainLenMax int
	RuleMin, RuleMax         int
	// Each tenant draws a latency SLO uniform in [SLOMinNs, SLOMaxNs];
	// a chain whose best achievable in-switch latency exceeds it is
	// rejected before placement.
	SLOMinNs, SLOMaxNs float64

	// Pipeline sizes the switch. Zero value → scaled DefaultConfig with
	// enough memory blocks for TargetLive tenants of the configured shape.
	Pipeline pipeline.Config
	// Workers is the controller's SolverWorkers knob. The greedy replan
	// path is deterministic at any worker count; the trace hash must not
	// change with it.
	Workers int
	// Dir, when non-empty, makes the controller durable: a write-ahead
	// journal (group commit) in this directory. Empty runs in-memory.
	Dir string
	// SnapshotEvery is the controller's journal rotation threshold
	// (committed records between snapshots). Zero keeps the core default.
	SnapshotEvery int
	// Logf, when set, receives progress lines. Nil is silent.
	Logf func(format string, args ...any)
}

// Smoke is a small configuration for tests and CI: a ~1.5k-tenant
// population with enough churn ticks to reach and hold steady state in
// well under a minute.
func Smoke() Config {
	return Config{
		Seed:         1,
		TargetLive:   1500,
		MeanTTL:      1000,
		Tick:         10,
		Load:         1,
		FillBatch:    500,
		WarmTicks:    5,
		MeasureTicks: 15,
	}
}

// Bench100k is the headline configuration: hold one hundred thousand live
// tenants under continuous churn. The switch is scaled up (more memory
// blocks, same latency model) so that memory, not the experiment harness,
// is the binding constraint.
func Bench100k() Config {
	c := Smoke()
	c.TargetLive = 100_000
	c.FillBatch = 5000
	c.WarmTicks = 2
	c.MeasureTicks = 10
	// Rotate the journal several times during the run so the off-lock
	// snapshot path is part of what the benchmark measures.
	c.SnapshotEvery = 8
	return c
}

// ControllerOptions returns the core.Options a Run with this config uses,
// so callers can Recover the journal a durable run left behind.
func (c Config) ControllerOptions() core.Options {
	c = c.WithDefaults()
	return core.Options{
		Pipeline:      c.Pipeline,
		Consolidate:   true,
		Recirc:        c.Pipeline.MaxPasses - 1,
		Algorithm:     core.AlgoGreedy,
		Seed:          c.Seed,
		SolverWorkers: c.Workers,
		SnapshotEvery: c.SnapshotEvery,
	}
}

// WithDefaults returns the config with every zero field replaced by its
// default, exactly as Run resolves it.
func (c Config) WithDefaults() Config {
	if c.TargetLive == 0 {
		c.TargetLive = 1500
	}
	if c.MeanTTL == 0 {
		c.MeanTTL = 1000
	}
	if c.Tick == 0 {
		c.Tick = 10
	}
	if c.Load == 0 {
		c.Load = 1
	}
	if c.FillBatch == 0 {
		c.FillBatch = 500
	}
	if c.MeasureTicks == 0 {
		c.MeasureTicks = 15
	}
	if c.UsersMin == 0 {
		c.UsersMin = 1
	}
	if c.UsersMax == 0 {
		c.UsersMax = 4
	}
	if c.UserRateGbps == 0 {
		c.UserRateGbps = 0.001 // 1 Mbps per user
	}
	if c.ChainLenMin == 0 {
		c.ChainLenMin = 1
	}
	if c.ChainLenMax == 0 {
		c.ChainLenMax = 3
	}
	if c.RuleMin == 0 {
		c.RuleMin = 1
	}
	if c.RuleMax == 0 {
		c.RuleMax = 3
	}
	if c.SLOMinNs == 0 {
		c.SLOMinNs = 300
	}
	if c.SLOMaxNs == 0 {
		c.SLOMaxNs = 500
	}
	if c.Pipeline.Stages == 0 {
		c.Pipeline = SizedPipeline(c.TargetLive, c.ChainLenMax, c.RuleMax)
	}
	return c
}

// SizedPipeline scales DefaultConfig's memory so that n tenants of the
// given worst-case shape fit with headroom: same 8-stage latency model,
// larger blocks-per-stage budget. Bandwidth capacity is left at the
// 400 Gbps default — with per-user megabit rates that admits well over
// 100k tenants, leaving table memory as the contended resource.
func SizedPipeline(n, chainLen, rules int) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	// Worst-case entries: every tenant maxes chain length and rule count,
	// plus 50% block-rounding slack, spread across the stages.
	need := n * chainLen * rules
	perStage := (need + need/2) / cfg.Stages
	blocks := (perStage + cfg.EntriesPerBlock - 1) / cfg.EntriesPerBlock
	if blocks > cfg.BlocksPerStage {
		cfg.BlocksPerStage = blocks
	}
	return cfg
}

// Gen deterministically synthesizes the tenant stream: chain shapes, user
// counts, SLOs, and TTLs, from its own seeded RNG. It is shared by the
// in-process engine and sfpload's live-switch churn mode so both replay
// the identical workload for a given seed.
type Gen struct {
	cfg  Config
	rng  *rand.Rand
	next uint32
}

// Tenant is one synthesized arrival: the runnable SFC, its latency SLO,
// and its lifetime.
type Tenant struct {
	SFC   *vswitch.SFC
	SLONs float64
	// TTL is the tenant's lifetime in virtual seconds.
	TTL float64
	// Users is the drawn user count (bandwidth = Users × UserRateGbps).
	Users int
}

// NewGen creates the generator for a config. Tenant IDs start at 1.
func NewGen(cfg Config) *Gen {
	cfg = cfg.WithDefaults()
	return &Gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Next synthesizes the next tenant.
func (g *Gen) Next() *Tenant {
	g.next++
	c := g.cfg
	users := c.UsersMin + g.rng.Intn(c.UsersMax-c.UsersMin+1)
	chainLen := c.ChainLenMin + g.rng.Intn(c.ChainLenMax-c.ChainLenMin+1)
	ch := &model.Chain{
		ID:            int(g.next),
		BandwidthGbps: float64(users) * c.UserRateGbps,
	}
	for j := 0; j < chainLen; j++ {
		ch.NFs = append(ch.NFs, model.ChainNF{
			Type:  1 + g.rng.Intn(nf.TypeCount),
			Rules: c.RuleMin + g.rng.Intn(c.RuleMax-c.RuleMin+1),
		})
	}
	return &Tenant{
		SFC:   traffic.ToSFC(g.rng, ch, 0),
		SLONs: c.SLOMinNs + g.rng.Float64()*(c.SLOMaxNs-c.SLOMinNs),
		TTL:   expDraw(g.rng, c.MeanTTL),
		Users: users,
	}
}

// Batch synthesizes n tenants.
func (g *Gen) Batch(n int) []*Tenant {
	out := make([]*Tenant, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}

// Poisson draws the tick's arrival count (Knuth's method; mean is small
// per tick, so the multiplication loop is cheap).
func (g *Gen) Poisson(mean float64) int {
	return poissonDraw(g.rng, mean)
}

func poissonDraw(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// For large means, split to keep exp(-mean) representable.
	if mean > 500 {
		half := mean / 2
		return poissonDraw(rng, half) + poissonDraw(rng, mean-half)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func expDraw(rng *rand.Rand, mean float64) float64 {
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// MinLatencyNs is the best in-switch latency any placement of an n-table
// chain can achieve on the configured pipeline: the fixed parser/deparser
// cost, every table applied once, full-pipeline traversal per pass, and
// the minimum recirculation count (a pass applies at most one table per
// stage).
func MinLatencyNs(cfg pipeline.Config, chainLen int) float64 {
	passes := (chainLen + cfg.Stages - 1) / cfg.Stages
	if passes < 1 {
		passes = 1
	}
	return cfg.ParserNs + cfg.DeparserNs +
		float64(chainLen)*cfg.PerTableNs +
		float64(passes*cfg.Stages)*cfg.PerStageNs +
		float64(passes-1)*cfg.RecircNs
}

// expiry is one scheduled departure in the timer heap.
type expiry struct {
	at     float64
	tenant uint32
}

type expiryHeap []expiry

func (h expiryHeap) Len() int { return len(h) }
func (h expiryHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].tenant < h[j].tenant // deterministic tie-break
}
func (h expiryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x any)        { *h = append(*h, x.(expiry)) }
func (h *expiryHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h expiryHeap) peek() expiry       { return h[0] }

// Report is what one churn run measured.
type Report struct {
	// Config echo (after defaults) for reproducibility.
	Seed       int64
	TargetLive int
	Load       float64
	Workers    int

	// Population.
	LiveAtEnd int
	MeanLive  float64
	// SteadyState: the measured mean population stayed within 5% of
	// TargetLive (only meaningful at Load ≥ 1).
	SteadyState bool

	// Admission counters over the measurement window.
	Offered     int
	Accepted    int
	SLORejected int
	CapRejected int
	// AcceptanceRatio = Accepted / Offered.
	AcceptanceRatio float64

	// Switch utilization at the end of the run.
	BandwidthUtil float64
	MemoryUtil    float64

	// Wall-clock latency of each ArriveMany / DepartMany batch call
	// during the measurement window.
	ArriveP50, ArriveP99 time.Duration
	DepartP50, DepartP99 time.Duration

	// Departure totals over the measurement window.
	Departed int

	// TraceHash fingerprints the full admission/departure trace (fill and
	// churn, warm ticks included). Identical seed + config ⇒ identical
	// hash, at any Workers count.
	TraceHash uint64

	// Ticks actually churned (warm + measured).
	Ticks int
	// WallSeconds is the total run time (fill + churn).
	WallSeconds float64
}

// Engine drives one controller through the configured churn.
type Engine struct {
	cfg   Config
	gen   *Gen
	ctrl  *core.Controller
	heap  expiryHeap
	now   float64
	trace *traceHasher
	live  int
}

// traceHasher folds the admission/departure trace into an FNV-64a hash.
type traceHasher struct{ h uint64 }

func newTraceHasher() *traceHasher {
	f := fnv.New64a()
	return &traceHasher{h: f.Sum64()}
}

func (t *traceHasher) u64(vs ...uint64) {
	var b [8]byte
	for _, v := range vs {
		binary.BigEndian.PutUint64(b[:], v)
		for _, c := range b {
			t.h ^= uint64(c)
			t.h *= 1099511628211
		}
	}
}

// Run executes the configured churn and reports. The controller is
// created (durable if cfg.Dir is set), filled to TargetLive, churned for
// WarmTicks+MeasureTicks, and closed.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	e := &Engine{cfg: cfg, gen: NewGen(cfg), trace: newTraceHasher()}

	opts := cfg.ControllerOptions()
	var err error
	if cfg.Dir != "" {
		e.ctrl, err = core.Recover(cfg.Dir, opts)
		if err != nil {
			return nil, err
		}
	} else {
		e.ctrl = core.New(opts)
	}
	defer e.ctrl.Close()

	start := time.Now()
	rep := &Report{Seed: cfg.Seed, TargetLive: cfg.TargetLive, Load: cfg.Load, Workers: cfg.Workers}
	if err := e.fill(rep); err != nil {
		return nil, err
	}
	if err := e.churn(rep); err != nil {
		return nil, err
	}

	rep.LiveAtEnd = e.live
	rep.TraceHash = e.trace.h
	rep.WallSeconds = time.Since(start).Seconds()
	rep.BandwidthUtil = e.ctrl.VSwitch().BandwidthUsed() / cfg.Pipeline.CapacityGbps
	rep.MemoryUtil = memoryUtil(e.ctrl.VSwitch(), cfg.Pipeline)
	if rep.Offered > 0 {
		rep.AcceptanceRatio = float64(rep.Accepted) / float64(rep.Offered)
	}
	rep.SteadyState = math.Abs(rep.MeanLive-float64(cfg.TargetLive)) <= 0.05*float64(cfg.TargetLive)
	return rep, nil
}

func memoryUtil(v *vswitch.VSwitch, cfg pipeline.Config) float64 {
	total := cfg.Stages * cfg.BlocksPerStage
	if total == 0 {
		return 0
	}
	used := 0
	for _, s := range v.Pipe.Stages {
		used += s.BlocksUsed()
	}
	return float64(used) / float64(total)
}

// fill pumps arrival batches until the live population reaches
// TargetLive (or the switch refuses an entire batch — capacity bound
// below target). Fill arrivals happen at virtual time 0; their TTLs
// schedule the initial departure wave.
func (e *Engine) fill(rep *Report) error {
	cfg := e.cfg
	first := true
	for e.live < cfg.TargetLive {
		n := cfg.FillBatch
		if left := cfg.TargetLive - e.live; n > left {
			n = left
		}
		batch := e.gen.Batch(n)
		admitted, sloRejected := e.sloFilter(batch)
		placed, err := e.offer(admitted, first)
		if err != nil {
			return err
		}
		first = false
		e.traceBatch(math.MaxUint64, batch, placed, sloRejected)
		if len(placed) == 0 {
			// Nothing admitted (the switch is full below the target, or a
			// pathological SLO config rejects everything): stop filling
			// rather than spinning.
			e.logf("lifecycle: fill saturated at %d live (target %d)", e.live, cfg.TargetLive)
			break
		}
	}
	e.logf("lifecycle: filled to %d live tenants", e.live)
	return nil
}

// sloFilter splits a batch into placement candidates and SLO rejections.
func (e *Engine) sloFilter(batch []*Tenant) (admitted []*Tenant, rejected int) {
	for _, t := range batch {
		if MinLatencyNs(e.cfg.Pipeline, len(t.SFC.NFs)) > t.SLONs {
			rejected++
			continue
		}
		admitted = append(admitted, t)
	}
	return admitted, rejected
}

// offer pushes one admitted batch at the controller: Provision for the
// very first batch of a fresh controller, ArriveMany after. Placed
// tenants get their departure scheduled; refused ones are departed
// immediately (loss model). Returns the placed tenant set.
func (e *Engine) offer(admitted []*Tenant, first bool) (map[uint32]bool, error) {
	placed := make(map[uint32]bool)
	if len(admitted) == 0 {
		return placed, nil
	}
	sfcs := make([]*vswitch.SFC, len(admitted))
	byTenant := make(map[uint32]*Tenant, len(admitted))
	for i, t := range admitted {
		sfcs[i] = t.SFC
		byTenant[t.SFC.Tenant] = t
	}
	if first && !e.ctrl.Provisioned() {
		if _, err := e.ctrl.Provision(sfcs); err != nil {
			return nil, fmt.Errorf("lifecycle: provision: %w", err)
		}
		for _, t := range e.ctrl.PlacedTenants() {
			placed[t] = true
		}
	} else {
		ts, err := e.ctrl.ArriveMany(sfcs)
		if err != nil {
			return nil, fmt.Errorf("lifecycle: arrive: %w", err)
		}
		for _, t := range ts {
			placed[t] = true
		}
	}
	var refused []uint32
	for _, t := range admitted {
		tn := t.SFC.Tenant
		if placed[tn] {
			heap.Push(&e.heap, expiry{at: e.now + t.TTL, tenant: tn})
			e.live++
		} else {
			refused = append(refused, tn)
		}
	}
	if len(refused) > 0 {
		sort.Slice(refused, func(i, j int) bool { return refused[i] < refused[j] })
		if err := e.ctrl.DepartMany(refused); err != nil {
			return nil, fmt.Errorf("lifecycle: reject departure: %w", err)
		}
	}
	return placed, nil
}

// churn advances the virtual clock tick by tick: expire due tenants in
// one DepartMany, then offer the tick's Poisson arrivals in one
// ArriveMany. Counters and batch latencies are recorded only during the
// measurement window; the trace hash covers everything.
func (e *Engine) churn(rep *Report) error {
	cfg := e.cfg
	rate := cfg.Load * float64(cfg.TargetLive) / cfg.MeanTTL
	var arriveNs, departNs []float64
	var liveSum float64
	total := cfg.WarmTicks + cfg.MeasureTicks

	for tick := 0; tick < total; tick++ {
		e.now += cfg.Tick
		measuring := tick >= cfg.WarmTicks

		// Departures due this tick, in deterministic heap order.
		var due []uint32
		for len(e.heap) > 0 && e.heap.peek().at <= e.now {
			due = append(due, heap.Pop(&e.heap).(expiry).tenant)
		}
		if len(due) > 0 {
			t0 := time.Now()
			if err := e.ctrl.DepartMany(due); err != nil {
				return fmt.Errorf("lifecycle: depart tick %d: %w", tick, err)
			}
			dt := time.Since(t0)
			e.live -= len(due)
			if measuring {
				departNs = append(departNs, float64(dt.Nanoseconds()))
				rep.Departed += len(due)
			}
		}

		// Arrivals.
		n := e.gen.Poisson(rate * cfg.Tick)
		batch := e.gen.Batch(n)
		admitted, sloRejected := e.sloFilter(batch)
		t0 := time.Now()
		placed, err := e.offer(admitted, false)
		if err != nil {
			return fmt.Errorf("lifecycle: tick %d: %w", tick, err)
		}
		dt := time.Since(t0)
		e.traceBatch(uint64(tick), batch, placed, sloRejected)
		e.traceDepartures(due)

		if measuring {
			if len(batch) > 0 {
				arriveNs = append(arriveNs, float64(dt.Nanoseconds()))
			}
			rep.Offered += len(batch)
			rep.Accepted += len(placed)
			rep.SLORejected += sloRejected
			rep.CapRejected += len(admitted) - len(placed)
			liveSum += float64(e.live)
		}
		rep.Ticks++
	}
	if cfg.MeasureTicks > 0 {
		rep.MeanLive = liveSum / float64(cfg.MeasureTicks)
	}
	rep.ArriveP50, rep.ArriveP99 = percentile(arriveNs, 0.50), percentile(arriveNs, 0.99)
	rep.DepartP50, rep.DepartP99 = percentile(departNs, 0.50), percentile(departNs, 0.99)
	return nil
}

// traceBatch folds one offered batch into the trace hash: tick, each
// tenant's ID, and its admission outcome (0 placed, 1 SLO-rejected by
// construction of the admitted set, 2 capacity-rejected).
func (e *Engine) traceBatch(tick uint64, batch []*Tenant, placed map[uint32]bool, sloRejected int) {
	e.trace.u64(tick, uint64(len(batch)), uint64(sloRejected))
	for _, t := range batch {
		tn := t.SFC.Tenant
		outcome := uint64(2)
		if placed[tn] {
			outcome = 0
		} else if MinLatencyNs(e.cfg.Pipeline, len(t.SFC.NFs)) > t.SLONs {
			outcome = 1
		}
		e.trace.u64(uint64(tn), outcome)
	}
}

func (e *Engine) traceDepartures(due []uint32) {
	e.trace.u64(uint64(len(due)))
	for _, t := range due {
		e.trace.u64(uint64(t))
	}
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// percentile returns the p-quantile (nearest-rank) of the samples as a
// duration; zero for an empty set.
func percentile(samples []float64, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return time.Duration(s[idx])
}
