// Package lp implements a linear-programming solver: a bounded-variable
// revised primal simplex with a dense explicit basis inverse, two phases
// (artificial-variable feasibility, then the real objective), Bland's-rule
// anti-cycling fallback, and periodic refactorization for numerical hygiene.
//
// It plays the role Gurobi plays in the paper: the LP relaxations of the
// SFC-placement integer program (§V-B) are solved here, and internal/ilp
// builds branch-and-bound on top for the exact "SFP-IP" runs.
//
// Problems are stated as
//
//	maximize  c·x
//	subject to  row_i:  a_i·x  {≤,=,≥}  b_i
//	            lower_j ≤ x_j ≤ upper_j
//
// with sparse rows. Every variable must have a finite lower or upper bound
// (free variables are not needed by the SFP model and are rejected).
package lp

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// RowOp is a row's comparison operator.
type RowOp int

// Row operators.
const (
	LE RowOp = iota // a·x ≤ b
	GE              // a·x ≥ b
	EQ              // a·x = b
)

// Coef is one sparse coefficient.
type Coef struct {
	Var int
	Val float64
}

// Row is one linear constraint.
type Row struct {
	Coeffs []Coef
	Op     RowOp
	RHS    float64
	// Name is optional, for diagnostics.
	Name string
}

// Problem is a linear program under construction. The zero value is not
// usable; create with NewProblem.
type Problem struct {
	n     int
	c     []float64
	lower []float64
	upper []float64
	rows  []Row
	// sparse caches the CSC form of rows; shared across Clones so the many
	// bound-only re-solves of branch and bound build it exactly once.
	sparse *sparseCache
}

// NewProblem creates a problem with n variables, all with zero objective
// coefficient and bounds [0, +inf).
func NewProblem(n int) *Problem {
	p := &Problem{
		n:      n,
		c:      make([]float64, n),
		lower:  make([]float64, n),
		upper:  make([]float64, n),
		sparse: &sparseCache{},
	}
	for i := range p.upper {
		p.upper[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the variable count.
func (p *Problem) NumVars() int { return p.n }

// NumRows returns the constraint count.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObjective sets the maximization coefficient of one variable.
func (p *Problem) SetObjective(v int, coef float64) { p.c[v] = coef }

// Objective returns the maximization coefficient of one variable.
func (p *Problem) Objective(v int) float64 { return p.c[v] }

// Eval computes the objective value of a point.
func (p *Problem) Eval(x []float64) float64 {
	obj := 0.0
	for j := 0; j < p.n && j < len(x); j++ {
		obj += p.c[j] * x[j]
	}
	return obj
}

// Feasible reports whether x satisfies every bound and constraint within
// tolerance tol.
func (p *Problem) Feasible(x []float64, tol float64) bool {
	if len(x) < p.n {
		return false
	}
	for j := 0; j < p.n; j++ {
		if x[j] < p.lower[j]-tol || x[j] > p.upper[j]+tol {
			return false
		}
	}
	for _, row := range p.rows {
		lhs := 0.0
		for _, cf := range row.Coeffs {
			lhs += cf.Val * x[cf.Var]
		}
		switch row.Op {
		case LE:
			if lhs > row.RHS+tol {
				return false
			}
		case GE:
			if lhs < row.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-row.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// Violations returns human-readable descriptions of every bound or
// constraint x violates beyond tol (empty for a feasible point). Useful for
// the rounding verifier's diagnostics.
func (p *Problem) Violations(x []float64, tol float64) []string {
	var out []string
	for j := 0; j < p.n && j < len(x); j++ {
		if x[j] < p.lower[j]-tol || x[j] > p.upper[j]+tol {
			out = append(out, fmt.Sprintf("var %d = %g outside [%g, %g]", j, x[j], p.lower[j], p.upper[j]))
		}
	}
	for i, row := range p.rows {
		lhs := 0.0
		for _, cf := range row.Coeffs {
			lhs += cf.Val * x[cf.Var]
		}
		bad := false
		switch row.Op {
		case LE:
			bad = lhs > row.RHS+tol
		case GE:
			bad = lhs < row.RHS-tol
		case EQ:
			bad = math.Abs(lhs-row.RHS) > tol
		}
		if bad {
			name := row.Name
			if name == "" {
				name = fmt.Sprintf("row %d", i)
			}
			out = append(out, fmt.Sprintf("%s: lhs %g vs rhs %g", name, lhs, row.RHS))
		}
	}
	return out
}

// SetBounds sets a variable's bounds.
func (p *Problem) SetBounds(v int, lo, hi float64) {
	p.lower[v], p.upper[v] = lo, hi
}

// Bounds returns a variable's bounds.
func (p *Problem) Bounds(v int) (lo, hi float64) { return p.lower[v], p.upper[v] }

// AddRow appends a constraint and returns its index.
func (p *Problem) AddRow(r Row) int {
	p.rows = append(p.rows, r)
	return len(p.rows) - 1
}

// AddVars appends k new variables with zero objective coefficient and
// bounds [0, +inf), returning the index of the first. Like the other
// delta-patch mutators (SetRHS, ExtendRow) it must only be called on a
// problem the caller solely owns — mutating a problem while Clones of it
// are still being solved corrupts the shared row storage.
func (p *Problem) AddVars(k int) int {
	first := p.n
	p.n += k
	p.c = append(p.c, make([]float64, k)...)
	p.lower = append(p.lower, make([]float64, k)...)
	for i := 0; i < k; i++ {
		p.upper = append(p.upper, math.Inf(1))
	}
	p.invalidateSparse()
	return first
}

// SetRHS resets one row's right-hand side (runtime update releases a
// departed tenant's folded resource consumption this way). Sole-owner
// mutator: see AddVars.
func (p *Problem) SetRHS(row int, rhs float64) {
	p.rows[row].RHS = rhs
	// RHS is not part of the CSC cache; no invalidation needed.
}

// RHS returns one row's right-hand side.
func (p *Problem) RHS(row int) float64 { return p.rows[row].RHS }

// ExtendRow appends coefficients to an existing row (delta encoding adds a
// new chain's variables to the shared resource rows). Sole-owner mutator:
// see AddVars.
func (p *Problem) ExtendRow(row int, coeffs ...Coef) {
	r := &p.rows[row]
	r.Coeffs = append(r.Coeffs, coeffs...)
	p.invalidateSparse()
}

// invalidateSparse discards the cached CSC form by installing a fresh
// cache struct: clones sharing the old pointer keep their (still valid for
// their shape) build, while this problem rebuilds on next solve.
func (p *Problem) invalidateSparse() { p.sparse = &sparseCache{} }

// Clone deep-copies the problem, so branch-and-bound can tighten bounds on
// child nodes without interference.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		n:      p.n,
		c:      append([]float64(nil), p.c...),
		lower:  append([]float64(nil), p.lower...),
		upper:  append([]float64(nil), p.upper...),
		rows:   p.rows,   // rows are immutable after AddRow; share the slice
		sparse: p.sparse, // share the CSC cache with the parent
	}
	return q
}

// Status is a solve outcome.
type Status int

// Solve statuses.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Solution is a solve result. X has one entry per original variable.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	Iters     int
	// Basis is the optimal basis snapshot (nil unless Status is Optimal, and
	// nil for some degenerate optima). Pass it as Options.WarmBasis to a
	// re-solve of the same rows with changed bounds.
	Basis *Basis
	// Warm reports that the warm-start path produced this solution (false
	// when Options.WarmBasis was absent, rejected, or fell back cold).
	Warm bool
}

// Options tunes the solver. Zero values select defaults.
type Options struct {
	// MaxIters bounds total simplex pivots (default 50000 + 50·(rows+vars)).
	MaxIters int
	// Tol is the feasibility/optimality tolerance (default 1e-9).
	Tol float64
	// WarmBasis warm-starts the solve from a prior Solution.Basis of a
	// problem with identical rows after bound-only changes: dual simplex
	// restores feasibility in a few pivots instead of a cold two-phase
	// solve. Incompatible or numerically troubled warm starts silently fall
	// back to the cold path, so correctness never depends on the basis.
	WarmBasis *Basis
	// ForceDense routes refactorization and the B⁻¹ update kernels through
	// the dense reference implementations (the pre-sparse behavior), for
	// cross-checking the zero-skipping kernels.
	ForceDense bool
	// Deadline, when nonzero, aborts the solve with IterLimit once the wall
	// clock passes it (checked every pivot; overshoot is bounded by one
	// pivot plus one basis refactorization). Callers with a wall-clock
	// budget — branch and bound under a TimeLimit — rely on it so one huge
	// node LP cannot silently blow through the whole budget; at placement
	// scale a single cold LP can otherwise run for minutes uninterrupted.
	Deadline time.Time
}

func (o Options) withDefaults(p *Problem) Options {
	if o.MaxIters == 0 {
		o.MaxIters = 50000 + 50*(len(p.rows)+p.n)
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	return o
}

// ErrFreeVariable reports a variable with no finite bound.
var ErrFreeVariable = errors.New("lp: free variables are not supported")

// Solve solves the problem.
func (p *Problem) Solve(opts Options) (*Solution, error) {
	opts = opts.withDefaults(p)
	for j := 0; j < p.n; j++ {
		if math.IsInf(p.lower[j], -1) && math.IsInf(p.upper[j], 1) {
			return nil, fmt.Errorf("%w: variable %d", ErrFreeVariable, j)
		}
		if p.lower[j] > p.upper[j] {
			return &Solution{Status: Infeasible, X: make([]float64, p.n)}, nil
		}
	}
	if wb := opts.WarmBasis; wb != nil && wb.nVars == p.n && wb.nRows == len(p.rows) {
		// Warm path: bypass presolve (the basis indexes the full problem)
		// and re-optimize with dual simplex. The shape gate above keeps a
		// stale basis from allocating a full simplex only to be rejected by
		// installBasis. Any trouble — singular basis, iteration budget, or
		// a claimed infeasibility — falls through to the cold path below.
		s := newSimplex(p, opts)
		if sol, ok := s.solveWarm(wb); ok {
			sol.Warm = true
			return sol, nil
		}
		opts.WarmBasis = nil
	}
	if m, ok := presolve(p); !ok {
		return &Solution{Status: Infeasible, X: make([]float64, p.n)}, nil
	} else if m != nil {
		sol, err := m.reduced.Solve(opts)
		if err != nil {
			return nil, err
		}
		return m.inflate(p, sol), nil
	}
	s := newSimplex(p, opts)
	return s.solve()
}
