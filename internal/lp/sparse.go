package lp

import "sync"

// cscMatrix is the structural constraint matrix in compressed-sparse-column
// form: column j's entries live at [colPtr[j], colPtr[j+1]) of rowIdx/val,
// in row-append order (the same order the dense engine iterated, so sparse
// dot products sum in the identical sequence and reproduce its arithmetic
// bit for bit). Slack and artificial columns are unit vectors and are never
// stored — the simplex special-cases them.
type cscMatrix struct {
	nVars, nRows int
	colPtr       []int32
	rowIdx       []int32
	val          []float64
}

// sparseCache holds a problem's CSC form. Clones share the cache pointer
// (rows are immutable and shared after Clone), so branch-and-bound node LPs
// and the recirculation-sweep trials all reuse one build.
type sparseCache struct {
	mu  sync.Mutex
	csc *cscMatrix
}

// ensureCSC returns the cached CSC form, building it on first use. The
// cache is invalidated by shape: a clone that grew extra rows builds its
// own copy rather than corrupting siblings.
func (p *Problem) ensureCSC() *cscMatrix {
	if p.sparse == nil {
		p.sparse = &sparseCache{}
	}
	p.sparse.mu.Lock()
	defer p.sparse.mu.Unlock()
	if c := p.sparse.csc; c != nil && c.nRows == len(p.rows) && c.nVars == p.n {
		return c
	}
	c := buildCSC(p)
	p.sparse.csc = c
	return c
}

// Presparse eagerly builds and caches the compressed-sparse form so that
// concurrent solvers cloning this problem (parallel branch and bound, the
// recirculation sweep) share one build instead of racing to create their
// own. Safe to call from multiple goroutines.
func (p *Problem) Presparse() { p.ensureCSC() }

func buildCSC(p *Problem) *cscMatrix {
	nnz := 0
	for _, row := range p.rows {
		nnz += len(row.Coeffs)
	}
	c := &cscMatrix{
		nVars:  p.n,
		nRows:  len(p.rows),
		colPtr: make([]int32, p.n+1),
		rowIdx: make([]int32, nnz),
		val:    make([]float64, nnz),
	}
	counts := make([]int32, p.n)
	for _, row := range p.rows {
		for _, cf := range row.Coeffs {
			counts[cf.Var]++
		}
	}
	for j := 0; j < p.n; j++ {
		c.colPtr[j+1] = c.colPtr[j] + counts[j]
	}
	next := make([]int32, p.n)
	copy(next, c.colPtr[:p.n])
	for i, row := range p.rows {
		for _, cf := range row.Coeffs {
			t := next[cf.Var]
			c.rowIdx[t] = int32(i)
			c.val[t] = cf.Val
			next[cf.Var] = t + 1
		}
	}
	return c
}
