package lp

import (
	"math"
	"math/rand"
	"testing"
)

// growProblem builds a random bounded LP, solves it cold, then appends
// variables and rows through the sole-owner mutators, mimicking what
// model.Residual.Append does to the retained replan program.
func growProblem(rng *rand.Rand) *Problem {
	n := 4 + rng.Intn(4)
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetBounds(j, 0, 1+float64(rng.Intn(3)))
		p.SetObjective(j, float64(rng.Intn(9)-2))
	}
	for i := 0; i < 3+rng.Intn(3); i++ {
		var coeffs []Coef
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				coeffs = append(coeffs, Coef{Var: j, Val: float64(1 + rng.Intn(4))})
			}
		}
		if coeffs == nil {
			coeffs = []Coef{{Var: 0, Val: 1}}
		}
		p.AddRow(Row{Coeffs: coeffs, Op: LE, RHS: float64(2 + rng.Intn(6))})
	}
	return p
}

// TestBasisExtendWarmResolve pins the cross-replan warm-start mechanics:
// grow a solved problem with AddVars / AddRow / ExtendRow / SetRHS, grow
// the retained basis with Basis.Extend, and the re-solve must come back
// warm with the same optimum a cold solve finds.
func TestBasisExtendWarmResolve(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(900 + seed))
		p := growProblem(rng)
		sol := solveOK(t, p)
		if sol.Status != Optimal || sol.Basis == nil {
			continue // degenerate optimum without a snapshot; nothing to extend
		}

		// Grow: one new variable entering an existing row, one new row over
		// old and new variables, and a slackened RHS on an old row.
		v := p.AddVars(1)
		p.SetBounds(v, 0, 2)
		p.SetObjective(v, 3)
		p.ExtendRow(0, Coef{Var: v, Val: 1})
		p.AddRow(Row{Coeffs: []Coef{{Var: 0, Val: 1}, {Var: v, Val: 2}}, Op: LE, RHS: 3})
		p.SetRHS(1, p.RHS(1)+1)

		nb := sol.Basis.Extend(1, 1)
		if nv, nr := nb.Dims(); nv != p.NumVars() || nr != p.NumRows() {
			t.Fatalf("seed %d: extended basis dims %d×%d, problem %d×%d", seed, nv, nr, p.NumVars(), p.NumRows())
		}
		warm, err := p.Solve(Options{WarmBasis: nb})
		if err != nil {
			t.Fatalf("seed %d: warm solve: %v", seed, err)
		}
		cold := solveOK(t, p)
		if warm.Status != cold.Status {
			t.Fatalf("seed %d: warm status %v, cold %v", seed, warm.Status, cold.Status)
		}
		if cold.Status == Optimal {
			if math.Abs(warm.Objective-cold.Objective) > eps {
				t.Errorf("seed %d: warm objective %v, cold %v", seed, warm.Objective, cold.Objective)
			}
			checkFeasible(t, p, warm.X)
		}
	}
}

// TestWarmBasisShapeMismatchFallsBackCold: a stale basis whose shape no
// longer matches the problem must be ignored — the solve completes cold and
// reports Warm = false.
func TestWarmBasisShapeMismatchFallsBackCold(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	p := growProblem(rng)
	sol := solveOK(t, p)
	if sol.Basis == nil {
		t.Skip("no basis snapshot on this instance")
	}
	p.AddVars(1) // shape changes; the old basis is stale
	p.SetBounds(p.NumVars()-1, 0, 1)
	got, err := p.Solve(Options{WarmBasis: sol.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if got.Warm {
		t.Error("stale basis reported Warm")
	}
	if got.Status != Optimal {
		t.Errorf("cold fallback status = %v", got.Status)
	}
}

// TestBasisExtendRejectsNegative documents the nil contract on bad growth.
func TestBasisExtendRejectsNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := growProblem(rng)
	sol := solveOK(t, p)
	if sol.Basis == nil {
		t.Skip("no basis snapshot on this instance")
	}
	if sol.Basis.Extend(-1, 0) != nil || sol.Basis.Extend(0, -1) != nil {
		t.Error("negative growth accepted")
	}
}
