package lp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

const eps = 1e-6

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func checkFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.Bounds(j)
		if x[j] < lo-eps || x[j] > hi+eps {
			t.Errorf("x[%d] = %v outside [%v, %v]", j, x[j], lo, hi)
		}
	}
	for i, row := range p.rows {
		lhs := 0.0
		for _, cf := range row.Coeffs {
			lhs += cf.Val * x[cf.Var]
		}
		switch row.Op {
		case LE:
			if lhs > row.RHS+eps {
				t.Errorf("row %d (%s): %v > %v", i, row.Name, lhs, row.RHS)
			}
		case GE:
			if lhs < row.RHS-eps {
				t.Errorf("row %d (%s): %v < %v", i, row.Name, lhs, row.RHS)
			}
		case EQ:
			if math.Abs(lhs-row.RHS) > eps {
				t.Errorf("row %d (%s): %v != %v", i, row.Name, lhs, row.RHS)
			}
		}
	}
}

func TestSimple2D(t *testing.T) {
	// max 3x + 2y  s.t.  x+y ≤ 4, x+3y ≤ 6 → (4,0), obj 12.
	p := NewProblem(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 1}}, Op: LE, RHS: 4})
	p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 3}}, Op: LE, RHS: 6})
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-12) > eps {
		t.Errorf("objective = %v, want 12", sol.Objective)
	}
	checkFeasible(t, p, sol.X)
}

func TestBoundFlip(t *testing.T) {
	// max x  s.t. x ≤ 10, 0 ≤ x ≤ 5 → 5 via a pure bound flip.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.SetBounds(0, 0, 5)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}}, Op: LE, RHS: 10})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > eps {
		t.Errorf("got %v obj %v, want optimal 5", sol.Status, sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}}, Op: GE, RHS: 5})
	p.AddRow(Row{Coeffs: []Coef{{0, 1}}, Op: LE, RHS: 3})
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, 3, 1)
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddRow(Row{Coeffs: []Coef{{1, 1}}, Op: LE, RHS: 1})
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestEqualityRows(t *testing.T) {
	// max x+y  s.t. x+y = 3, x ≤ 2 → 3.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 1}}, Op: EQ, RHS: 3})
	p.AddRow(Row{Coeffs: []Coef{{0, 1}}, Op: LE, RHS: 2})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-3) > eps {
		t.Fatalf("got %v obj %v, want optimal 3", sol.Status, sol.Objective)
	}
	checkFeasible(t, p, sol.X)
}

func TestGERows(t *testing.T) {
	// max -x (minimize x) s.t. x ≥ 2.5 → obj -2.5.
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}}, Op: GE, RHS: 2.5})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective+2.5) > eps {
		t.Errorf("got %v obj %v, want optimal -2.5", sol.Status, sol.Objective)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// max x + y with -2 ≤ x ≤ -1, y ≤ 1 and x + y ≤ 0 → x=-1, y=1.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.SetBounds(0, -2, -1)
	p.SetBounds(1, 0, 1)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 1}}, Op: LE, RHS: 0})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-0) > eps {
		t.Errorf("got %v obj %v, want optimal 0", sol.Status, sol.Objective)
	}
	checkFeasible(t, p, sol.X)
}

func TestFreeVariableRejected(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, math.Inf(-1), math.Inf(1))
	if _, err := p.Solve(Options{}); err == nil {
		t.Error("free variable accepted")
	}
}

func TestTransportation(t *testing.T) {
	// Classic 2-supply, 3-demand transportation problem (minimize cost).
	// supplies: 20, 30; demands: 10, 25, 15.
	// costs: [2 3 1; 5 4 8] → known optimum cost 20·? compute:
	// x13=15 (cost 1), x11=5? Let's let the solver find it and only verify
	// feasibility + optimality against a brute-forced corner enumeration
	// value computed by hand: min cost = 10*2 + ... easier: verify against
	// an independently computed value of 180? Instead, validate with a
	// weaker but exact check: the solution is feasible and its cost is no
	// worse than a good hand-built feasible plan.
	cost := []float64{2, 3, 1, 5, 4, 8}
	supply := []float64{20, 30}
	demand := []float64{10, 25, 15}
	p := NewProblem(6)
	for j, c := range cost {
		p.SetObjective(j, -c) // maximize -cost
	}
	for i := 0; i < 2; i++ {
		coeffs := make([]Coef, 3)
		for k := 0; k < 3; k++ {
			coeffs[k] = Coef{i*3 + k, 1}
		}
		p.AddRow(Row{Coeffs: coeffs, Op: LE, RHS: supply[i]})
	}
	for k := 0; k < 3; k++ {
		p.AddRow(Row{Coeffs: []Coef{{k, 1}, {3 + k, 1}}, Op: EQ, RHS: demand[k]})
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	checkFeasible(t, p, sol.X)
	// Hand plan: x11=5, x13=15 (supply1=20), x21=5, x22=25 (supply2=30).
	// cost = 5·2+15·1+5·5+25·4 = 10+15+25+100 = 150.
	if -sol.Objective > 150+eps {
		t.Errorf("cost %v worse than hand plan 150", -sol.Objective)
	}
	// LP optimum for this instance is exactly 150 (x12 would cost 3 vs
	// shifting; verified by enumerating bases offline).
	if math.Abs(-sol.Objective-150) > 1e-4 {
		t.Errorf("cost = %v, want 150", -sol.Objective)
	}
}

// TestFractionalKnapsackProperty: max Σ v_i x_i, Σ w_i x_i ≤ W, 0 ≤ x ≤ 1
// has the classic greedy-by-density optimum. The solver must match it.
func TestFractionalKnapsackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		v := make([]float64, n)
		w := make([]float64, n)
		for i := range v {
			v[i] = 1 + rng.Float64()*9
			w[i] = 1 + rng.Float64()*9
		}
		W := rng.Float64() * 0.6 * sum(w)

		p := NewProblem(n)
		coeffs := make([]Coef, n)
		for i := 0; i < n; i++ {
			p.SetObjective(i, v[i])
			p.SetBounds(i, 0, 1)
			coeffs[i] = Coef{i, w[i]}
		}
		p.AddRow(Row{Coeffs: coeffs, Op: LE, RHS: W})
		sol, err := p.Solve(Options{})
		if err != nil || sol.Status != Optimal {
			return false
		}

		// Greedy optimum.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return v[idx[a]]/w[idx[a]] > v[idx[b]]/w[idx[b]]
		})
		remaining, want := W, 0.0
		for _, i := range idx {
			take := math.Min(1, remaining/w[i])
			if take <= 0 {
				break
			}
			want += take * v[i]
			remaining -= take * w[i]
		}
		return math.Abs(sol.Objective-want) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestRandomFeasibleProperty: problems constructed around a known interior
// point must solve to optimality with a feasible solution at least as good
// as that point.
func TestRandomFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		m := 1 + rng.Intn(10)
		x0 := make([]float64, n)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			x0[j] = rng.Float64()
			p.SetBounds(j, 0, 1)
			p.SetObjective(j, rng.Float64()*4-2)
		}
		base := 0.0
		for j := 0; j < n; j++ {
			base += p.c[j] * x0[j]
		}
		for i := 0; i < m; i++ {
			var coeffs []Coef
			lhs := 0.0
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					val := rng.Float64()*4 - 2
					coeffs = append(coeffs, Coef{j, val})
					lhs += val * x0[j]
				}
			}
			if len(coeffs) == 0 {
				continue
			}
			switch rng.Intn(3) {
			case 0:
				p.AddRow(Row{Coeffs: coeffs, Op: LE, RHS: lhs + rng.Float64()})
			case 1:
				p.AddRow(Row{Coeffs: coeffs, Op: GE, RHS: lhs - rng.Float64()})
			case 2:
				p.AddRow(Row{Coeffs: coeffs, Op: EQ, RHS: lhs})
			}
		}
		sol, err := p.Solve(Options{})
		if err != nil || sol.Status != Optimal {
			return false
		}
		// Solution must be feasible and at least as good as x0.
		for i, row := range p.rows {
			lhs := 0.0
			for _, cf := range row.Coeffs {
				lhs += cf.Val * sol.X[cf.Var]
			}
			switch row.Op {
			case LE:
				if lhs > row.RHS+eps {
					return false
				}
			case GE:
				if lhs < row.RHS-eps {
					return false
				}
			case EQ:
				if math.Abs(lhs-row.RHS) > eps {
					return false
				}
			}
			_ = i
		}
		return sol.Objective >= base-1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classic degenerate vertex: multiple constraints through one point.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}}, Op: LE, RHS: 1})
	p.AddRow(Row{Coeffs: []Coef{{1, 1}}, Op: LE, RHS: 1})
	p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 1}}, Op: LE, RHS: 2})
	p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 2}}, Op: LE, RHS: 3})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > eps {
		t.Errorf("got %v obj %v, want optimal 2", sol.Status, sol.Objective)
	}
}

func TestCloneIsolation(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 1}}, Op: LE, RHS: 2})
	q := p.Clone()
	q.SetBounds(0, 0, 0.5)
	solP := solveOK(t, p)
	solQ := solveOK(t, q)
	if math.Abs(solP.Objective-2) > eps {
		t.Errorf("parent objective = %v, want 2", solP.Objective)
	}
	if math.Abs(solQ.Objective-0.5) > eps {
		t.Errorf("clone objective = %v, want 0.5", solQ.Objective)
	}
}

func TestMediumRandomScale(t *testing.T) {
	// A moderately sized LP exercising refactorization (more pivots than
	// refactEvery).
	rng := rand.New(rand.NewSource(99))
	n, m := 120, 60
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetBounds(j, 0, 1)
		p.SetObjective(j, rng.Float64())
	}
	for i := 0; i < m; i++ {
		coeffs := make([]Coef, 0, n/3)
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				coeffs = append(coeffs, Coef{j, rng.Float64()})
			}
		}
		p.AddRow(Row{Coeffs: coeffs, Op: LE, RHS: 0.25 * float64(len(coeffs)) * 0.5})
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v after %d iters", sol.Status, sol.Iters)
	}
	checkFeasible(t, p, sol.X)
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestInvertKnown(t *testing.T) {
	a := [][]float64{{2, 0}, {0, 4}}
	inv, ok := invert(a)
	if !ok {
		t.Fatal("invert failed")
	}
	if math.Abs(inv[0][0]-0.5) > eps || math.Abs(inv[1][1]-0.25) > eps {
		t.Errorf("inverse = %v", inv)
	}
	if _, ok := invert([][]float64{{1, 2}, {2, 4}}); ok {
		t.Error("singular matrix inverted")
	}
}

func BenchmarkSolveMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n, m := 200, 80
	for i := 0; i < b.N; i++ {
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetBounds(j, 0, 1)
			p.SetObjective(j, rng.Float64())
		}
		for r := 0; r < m; r++ {
			coeffs := make([]Coef, 0, n/4)
			for j := 0; j < n; j++ {
				if rng.Intn(4) == 0 {
					coeffs = append(coeffs, Coef{j, rng.Float64()})
				}
			}
			p.AddRow(Row{Coeffs: coeffs, Op: LE, RHS: float64(len(coeffs)) / 8})
		}
		if _, err := p.Solve(Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPresolveFixedVariables(t *testing.T) {
	// max x+y+z with y fixed at 2; x+y ≤ 5, z ≤ y.
	p := NewProblem(3)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.SetObjective(2, 1)
	p.SetBounds(0, 0, 10)
	p.SetBounds(1, 2, 2) // fixed
	p.SetBounds(2, 0, 10)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 1}}, Op: LE, RHS: 5})
	p.AddRow(Row{Coeffs: []Coef{{2, 1}, {1, -1}}, Op: LE, RHS: 0})
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// x = 3, y = 2, z = 2 → 7.
	if math.Abs(sol.Objective-7) > eps {
		t.Errorf("objective = %v, want 7", sol.Objective)
	}
	if math.Abs(sol.X[1]-2) > eps {
		t.Errorf("fixed variable moved: %v", sol.X[1])
	}
	checkFeasible(t, p, sol.X)
}

func TestPresolveDetectsInfeasibleFixedRow(t *testing.T) {
	// Both variables fixed such that their equality row cannot hold.
	p := NewProblem(2)
	p.SetBounds(0, 1, 1)
	p.SetBounds(1, 1, 1)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 1}}, Op: EQ, RHS: 5})
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestPresolveAllFixedFeasible(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 3)
	p.SetBounds(0, 2, 2)
	p.SetBounds(1, 1, 1)
	p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 1}}, Op: LE, RHS: 4})
	sol := solveOK(t, p)
	if sol.Status != Optimal || math.Abs(sol.Objective-6) > eps {
		t.Errorf("got %v obj %v, want optimal 6", sol.Status, sol.Objective)
	}
	if sol.X[0] != 2 || sol.X[1] != 1 {
		t.Errorf("X = %v", sol.X)
	}
}

// Property: presolve never changes the optimum — solve random LPs twice,
// once as-is and once with a random subset of variables pinned to a
// feasible interior value in both copies.
func TestPresolveEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetBounds(j, 0, 1)
			p.SetObjective(j, rng.Float64())
		}
		coeffs := make([]Coef, n)
		for j := 0; j < n; j++ {
			coeffs[j] = Coef{j, 0.5 + rng.Float64()}
		}
		p.AddRow(Row{Coeffs: coeffs, Op: LE, RHS: float64(n) / 3})
		// Pin one variable to 0 in a clone both via bounds (presolve path)
		// and via a zero-width range on a fresh build (no-presolve path
		// comparison is the unpinned solve minus the pinned contribution —
		// instead compare two pinned formulations).
		pin := rng.Intn(n)
		a := p.Clone()
		a.SetBounds(pin, 0, 0)
		b := NewProblem(n + 1) // same model with an extra dead variable
		for j := 0; j < n; j++ {
			lo, hi := a.Bounds(j)
			b.SetBounds(j, lo, hi)
			b.SetObjective(j, p.c[j])
		}
		b.SetBounds(n, 0, 1)
		b.AddRow(Row{Coeffs: coeffs, Op: LE, RHS: float64(n) / 3})
		solA, errA := a.Solve(Options{})
		solB, errB := b.Solve(Options{})
		if errA != nil || errB != nil {
			return false
		}
		return solA.Status == Optimal && solB.Status == Optimal &&
			math.Abs(solA.Objective-solB.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
