package lp

import "math"

// Basis is a reusable snapshot of an optimal simplex basis: which variable
// (structural or slack) is basic in each row, and which bound every
// nonbasic variable rests at. Branch-and-bound hands a parent node's basis
// to its children via Options.WarmBasis; since a child differs from its
// parent only in variable bounds, the parent basis stays dual feasible and
// the child re-optimizes with a handful of dual-simplex pivots instead of a
// cold two-phase solve.
//
// A Basis is immutable after creation and safe to share across goroutines.
type Basis struct {
	nVars, nRows int
	basic        []int  // basic[i] = variable basic in row i (< nVars+nRows)
	atUpper      []bool // per structural+slack variable
}

// Dims returns the (variables, rows) shape the basis was snapshot from.
// Callers can compare against a problem's NumVars/NumRows to predict
// whether installBasis would accept it, without constructing a simplex.
func (b *Basis) Dims() (nVars, nRows int) { return b.nVars, b.nRows }

// Extend adapts a basis to a problem that grew by addVars structural
// variables and addRows rows, both appended after the snapshot was taken
// (the delta-encoded replan appends a new chain's variables and chain-local
// rows to the retained program). Old slack indices shift by addVars; new
// structural variables enter nonbasic at their lower bound; each new row's
// own slack becomes basic. Provided the new rows reference only new
// variables, the extended basis matrix is block-diagonal with the old basis
// and an identity, so it is exactly as nonsingular as the original and the
// dual-simplex re-entry starts from the previous optimum with the new block
// at its trivial corner. Returns a new Basis; the receiver is unchanged.
func (b *Basis) Extend(addVars, addRows int) *Basis {
	if addVars < 0 || addRows < 0 {
		return nil
	}
	nb := &Basis{
		nVars:   b.nVars + addVars,
		nRows:   b.nRows + addRows,
		basic:   make([]int, b.nRows+addRows),
		atUpper: make([]bool, b.nVars+addVars+b.nRows+addRows),
	}
	for i, j := range b.basic {
		if j >= b.nVars {
			j += addVars // slack: keep pointing at the same row's slack
		}
		nb.basic[i] = j
	}
	for i := 0; i < addRows; i++ {
		nb.basic[b.nRows+i] = nb.nVars + b.nRows + i
	}
	for j := 0; j < b.nVars; j++ {
		nb.atUpper[j] = b.atUpper[j]
	}
	for i := 0; i < b.nRows; i++ {
		nb.atUpper[nb.nVars+i] = b.atUpper[b.nVars+i]
	}
	// New structural variables rest at their lower bound (atUpper false);
	// installBasis flips any whose lower bound turns out to be -inf.
	return nb
}

// snapshotBasis captures the current basis, or nil if any artificial is
// still basic (such a basis cannot be reinstalled on a problem whose
// artificials are gone).
func (s *simplex) snapshotBasis() *Basis {
	for _, j := range s.basis {
		if j >= s.n+s.m {
			return nil
		}
	}
	return &Basis{
		nVars:   s.n,
		nRows:   s.m,
		basic:   append([]int(nil), s.basis...),
		atUpper: append([]bool(nil), s.atUpper[:s.n+s.m]...),
	}
}

// installBasis loads a snapshot into a fresh simplex: basis assignment,
// nonbasic resting sides, frozen artificials, then a refactorization to
// rebuild B⁻¹ and the basic values. It reports false (leaving the caller
// to cold-solve) on any structural mismatch or a singular basis.
func (s *simplex) installBasis(wb *Basis) bool {
	if wb == nil || wb.nVars != s.n || wb.nRows != s.m {
		return false
	}
	for i, j := range wb.basic {
		if j < 0 || j >= s.n+s.m || s.inBasis[j] >= 0 {
			return false // out of range or duplicated
		}
		s.basis[i] = j
		s.inBasis[j] = i
	}
	copy(s.atUpper[:s.n+s.m], wb.atUpper)
	for j := 0; j < s.n+s.m; j++ {
		if s.inBasis[j] >= 0 {
			continue
		}
		// The stored resting side may have become infinite if bounds
		// changed shape; fall back to the finite side.
		if s.atUpper[j] && math.IsInf(s.upper[j], 1) {
			if math.IsInf(s.lower[j], -1) {
				return false
			}
			s.atUpper[j] = false
		} else if !s.atUpper[j] && math.IsInf(s.lower[j], -1) {
			if math.IsInf(s.upper[j], 1) {
				return false
			}
			s.atUpper[j] = true
		}
	}
	for i := 0; i < s.m; i++ {
		art := s.n + s.m + i
		s.lower[art], s.upper[art] = 0, 0
	}
	return s.refactor() == nil
}

// solveWarm re-optimizes from a prior basis: install, dual simplex to
// restore primal feasibility (bound changes leave the basis dual feasible),
// then primal cleanup. ok=false means the caller should cold-solve instead —
// installation failed, iteration budget ran out, or the dual pass claims
// infeasibility (cheap to reconfirm cold, and a false prune would silently
// cost branch-and-bound optimality).
func (s *simplex) solveWarm(wb *Basis) (sol *Solution, ok bool) {
	if !s.installBasis(wb) {
		return nil, false
	}
	s.setPhase2()
	st, err := s.dualIterate()
	if err != nil || st != Optimal {
		return nil, false
	}
	s.bland = false
	s.degenRun = 0
	st, err = s.iterate()
	if err != nil || st == IterLimit {
		return nil, false
	}
	return s.finish(st), true
}

// dualIterate runs dual simplex pivots until primal feasibility (returned
// as Optimal), primal infeasibility (dual unbounded), or the iteration cap.
// Each pivot picks the most-violated basic variable to leave and the
// entering column by the dual ratio test over reduced costs.
func (s *simplex) dualIterate() (Status, error) {
	tol := s.opts.Tol * 10
	for {
		if s.iters >= s.opts.MaxIters || s.pastDeadline() {
			return IterLimit, nil
		}

		// Leaving row: most-violated basic variable.
		leave, below := -1, false
		worst := tol
		for i := 0; i < s.m; i++ {
			bi := s.basis[i]
			if d := s.lower[bi] - s.xB[i]; d > worst {
				worst, leave, below = d, i, true
			}
			if d := s.xB[i] - s.upper[bi]; d > worst {
				worst, leave, below = d, i, false
			}
		}
		if leave == -1 {
			return Optimal, nil
		}
		s.iters++

		s.computeY()
		rho := s.binv[leave]

		// Entering column: dual ratio test. Eligibility is the sign of
		// alpha = e_leave^T B⁻¹ A_j needed to move xB[leave] toward its
		// violated bound given which side j rests at.
		enter := -1
		bestRatio, bestAlpha := math.Inf(1), 0.0
		for j := 0; j < s.n+s.m; j++ {
			if s.inBasis[j] >= 0 || s.lower[j] == s.upper[j] {
				continue
			}
			var alpha float64
			if j < s.n {
				c := s.csc
				for t := c.colPtr[j]; t < c.colPtr[j+1]; t++ {
					if rv := rho[c.rowIdx[t]]; rv != 0 {
						alpha += rv * c.val[t]
					}
				}
			} else {
				alpha = rho[j-s.n]
			}
			var eligible bool
			if below {
				eligible = (!s.atUpper[j] && alpha < -pivotTol) || (s.atUpper[j] && alpha > pivotTol)
			} else {
				eligible = (!s.atUpper[j] && alpha > pivotTol) || (s.atUpper[j] && alpha < -pivotTol)
			}
			if !eligible {
				continue
			}
			if s.bland {
				enter, bestAlpha = j, alpha
				break
			}
			ratio := math.Abs(s.reducedCost(j)) / math.Abs(alpha)
			if ratio < bestRatio-1e-12 || (ratio < bestRatio+1e-12 && math.Abs(alpha) > math.Abs(bestAlpha)) {
				bestRatio, bestAlpha, enter = ratio, alpha, j
			}
		}
		if enter == -1 {
			// Dual unbounded: no column can repair the violation.
			return Infeasible, nil
		}

		s.ftran(enter)
		wr := s.w[leave]
		if math.Abs(wr) < pivotTol {
			if err := s.refactor(); err != nil {
				return 0, err
			}
			continue
		}

		bi := s.basis[leave]
		target, leaveAtUpper := s.upper[bi], true
		if below {
			target, leaveAtUpper = s.lower[bi], false
		}
		t := (s.xB[leave] - target) / wr
		for i := 0; i < s.m; i++ {
			s.xB[i] -= t * s.w[i]
		}
		enterVal := s.nonbasicValue(enter) + t

		s.basis[leave] = enter
		s.inBasis[enter] = leave
		s.inBasis[bi] = -1
		s.atUpper[bi] = leaveAtUpper
		s.xB[leave] = enterVal
		s.etaUpdate(leave)

		if math.Abs(t) <= s.opts.Tol {
			s.degenRun++
			if s.degenRun > degenLimit {
				s.bland = true
			}
		} else {
			s.degenRun = 0
		}
		s.sincePivot++
		if s.sincePivot >= refactEvery {
			if err := s.refactor(); err != nil {
				return 0, err
			}
		}
	}
}
