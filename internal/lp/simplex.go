package lp

import (
	"errors"
	"math"
	"time"
)

// simplex is the bounded-variable revised primal/dual simplex engine.
// Variables are the structural variables, one slack per row (a·x + s = b
// with slack bounds encoding ≤/≥/=), and one artificial per row used only
// in Phase 1.
//
// Structural columns come from the problem's shared CSC matrix; slack and
// artificial columns are unit vectors handled implicitly. All hot kernels
// (pricing, ftran, eta update, refactorization) skip zero entries but sum
// in the same order as the dense reference kernels, so for any sequence of
// comparisons the two paths agree bit for bit (the only representational
// difference is the sign of zeros, which no comparison observes). The dense
// kernels are kept behind Options.ForceDense for cross-checking.
type simplex struct {
	p    *Problem
	opts Options

	m, n   int // rows, structural vars
	nTotal int // structural + slacks + artificials

	csc     *cscMatrix // structural columns, shared across clones
	artSign []float64  // artificial column sign per row (+1 or -1)
	b       []float64  // row RHS
	lower   []float64  // per total variable
	upper   []float64
	obj     []float64 // current-phase objective

	basis   []int     // basis[i] = variable basic in row i
	inBasis []int     // var -> row position or -1
	atUpper []bool    // nonbasic at upper bound?
	xB      []float64 // basic variable values
	binv    [][]float64

	iters      int
	degenRun   int  // consecutive degenerate pivots
	bland      bool // Bland's rule engaged
	sincePivot int  // pivots since last refactorization

	// scratch buffers
	y, w  []float64
	nzIdx []int // pivot-row nonzero positions for the sparse eta update
}

const (
	pivotTol    = 1e-8
	degenLimit  = 400
	refactEvery = 120
)

func newSimplex(p *Problem, opts Options) *simplex {
	m, n := len(p.rows), p.n
	s := &simplex{
		p: p, opts: opts,
		m: m, n: n, nTotal: n + 2*m,
		csc:     p.ensureCSC(),
		artSign: make([]float64, m),
		b:       make([]float64, m),
		lower:   make([]float64, n+2*m),
		upper:   make([]float64, n+2*m),
		obj:     make([]float64, n+2*m),
		basis:   make([]int, m),
		inBasis: make([]int, n+2*m),
		atUpper: make([]bool, n+2*m),
		xB:      make([]float64, m),
		y:       make([]float64, m),
		w:       make([]float64, m),
		nzIdx:   make([]int, 0, m),
	}
	for j := 0; j < n; j++ {
		s.lower[j], s.upper[j] = p.lower[j], p.upper[j]
	}
	for i, row := range p.rows {
		s.b[i] = row.RHS
		s.artSign[i] = 1
		slack := n + i
		switch row.Op {
		case LE:
			s.lower[slack], s.upper[slack] = 0, math.Inf(1)
		case GE:
			s.lower[slack], s.upper[slack] = math.Inf(-1), 0
		case EQ:
			s.lower[slack], s.upper[slack] = 0, 0
		}
		art := n + m + i
		s.lower[art], s.upper[art] = 0, math.Inf(1)
	}
	for j := range s.inBasis {
		s.inBasis[j] = -1
	}
	return s
}

// nonbasicValue returns the resting value of a nonbasic variable.
func (s *simplex) nonbasicValue(j int) float64 {
	if s.atUpper[j] {
		return s.upper[j]
	}
	return s.lower[j]
}

// init places every structural and slack variable at its finite bound
// nearest zero, sizes the artificials to absorb the residuals, and seeds
// the basis with the artificials (identity basis).
func (s *simplex) init() {
	for j := 0; j < s.n+s.m; j++ {
		lo, hi := s.lower[j], s.upper[j]
		switch {
		case !math.IsInf(lo, -1):
			s.atUpper[j] = false
		case !math.IsInf(hi, 1):
			s.atUpper[j] = true
		}
	}
	// Residuals r_i = b_i - A_i·x at the resting point. (Slacks rest at 0
	// under every row type, so they contribute nothing here whether they
	// end up basic or not.)
	r := append([]float64(nil), s.b...)
	c := s.csc
	for j := 0; j < s.n; j++ {
		v := s.nonbasicValue(j)
		if v == 0 {
			continue
		}
		for t := c.colPtr[j]; t < c.colPtr[j+1]; t++ {
			r[c.rowIdx[t]] -= c.val[t] * v
		}
	}
	// Slack crash basis: a row whose residual already fits its slack's
	// bounds starts with the slack basic — no artificial, no Phase-1 work
	// for it. Only the remaining rows get artificials. On SFP's placement
	// LPs this removes nearly every artificial (most rows have zero
	// residual at the all-zero resting point) and cuts Phase 1 from
	// thousands of pivots to a handful.
	s.binv = identity(s.m)
	for i := 0; i < s.m; i++ {
		slack := s.n + i
		art := s.n + s.m + i
		if r[i] >= s.lower[slack]-1e-12 && r[i] <= s.upper[slack]+1e-12 {
			s.basis[i] = slack
			s.inBasis[slack] = i
			s.xB[i] = r[i]
			// The artificial is never needed: freeze it.
			s.lower[art], s.upper[art] = 0, 0
			continue
		}
		if r[i] < 0 {
			s.artSign[i] = -1
			s.binv[i][i] = -1
			s.xB[i] = -r[i]
		} else {
			s.xB[i] = r[i]
		}
		s.basis[i] = art
		s.inBasis[art] = i
	}
}

func (s *simplex) solve() (*Solution, error) {
	s.init()

	// Phase 1: drive artificial infeasibility to zero.
	for i := 0; i < s.m; i++ {
		s.obj[s.n+s.m+i] = -1
	}
	st, err := s.iterate()
	if err != nil {
		return nil, err
	}
	if st == IterLimit {
		return &Solution{Status: IterLimit, X: s.extractX(), Iters: s.iters}, nil
	}
	infeas := 0.0
	for i := 0; i < s.m; i++ {
		if s.basis[i] >= s.n+s.m {
			infeas += s.xB[i]
		}
	}
	feasTol := math.Max(s.opts.Tol*1e3, 1e-7)
	if infeas > feasTol {
		return &Solution{Status: Infeasible, X: s.extractX(), Iters: s.iters}, nil
	}

	// Phase 2: real objective; artificials are frozen at zero. A singular
	// refactorization here is survivable: the pre-refactor B⁻¹ is kept and
	// iteration continues (the periodic refactor will retry).
	s.setPhase2()
	s.bland = false
	s.degenRun = 0
	_ = s.refactor()
	st, err = s.iterate()
	if err != nil {
		return nil, err
	}
	return s.finish(st), nil
}

// setPhase2 installs the real objective and freezes the artificials at zero.
func (s *simplex) setPhase2() {
	for j := range s.obj {
		s.obj[j] = 0
	}
	for j := 0; j < s.n; j++ {
		s.obj[j] = s.p.c[j]
	}
	for i := 0; i < s.m; i++ {
		art := s.n + s.m + i
		s.lower[art], s.upper[art] = 0, 0
		if s.inBasis[art] == -1 {
			s.atUpper[art] = false
		}
	}
}

// finish packages the Phase-2 outcome, attaching a reusable basis snapshot
// on optimality.
func (s *simplex) finish(st Status) *Solution {
	x := s.extractX()
	objVal := 0.0
	for j := 0; j < s.n; j++ {
		objVal += s.p.c[j] * x[j]
	}
	sol := &Solution{Status: st, Objective: objVal, X: x, Iters: s.iters}
	if st == Optimal {
		sol.Basis = s.snapshotBasis()
	}
	return sol
}

// extractX reads the structural variable values from the current basis.
func (s *simplex) extractX() []float64 {
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		if pos := s.inBasis[j]; pos >= 0 {
			x[j] = s.xB[pos]
		} else {
			x[j] = s.nonbasicValue(j)
		}
	}
	return x
}

// computeY forms the dual prices y = c_B^T · B⁻¹ for the current objective.
func (s *simplex) computeY() {
	for i := range s.y {
		s.y[i] = 0
	}
	for k := 0; k < s.m; k++ {
		cb := s.obj[s.basis[k]]
		if cb == 0 {
			continue
		}
		row := s.binv[k]
		if s.opts.ForceDense {
			for i := 0; i < s.m; i++ {
				s.y[i] += cb * row[i]
			}
			continue
		}
		for i, rv := range row {
			if rv != 0 {
				s.y[i] += cb * rv
			}
		}
	}
}

// reducedCost returns obj_j - y·A_j for any total-variable column.
func (s *simplex) reducedCost(j int) float64 {
	d := s.obj[j]
	switch {
	case j < s.n:
		c := s.csc
		for t := c.colPtr[j]; t < c.colPtr[j+1]; t++ {
			d -= s.y[c.rowIdx[t]] * c.val[t]
		}
	case j < s.n+s.m:
		d -= s.y[j-s.n]
	default:
		r := j - s.n - s.m
		d -= s.y[r] * s.artSign[r]
	}
	return d
}

// ftran computes w = B⁻¹ · A_enter into s.w.
func (s *simplex) ftran(enter int) {
	m := s.m
	switch {
	case enter < s.n:
		c := s.csc
		lo, hi := c.colPtr[enter], c.colPtr[enter+1]
		for i := 0; i < m; i++ {
			row := s.binv[i]
			acc := 0.0
			if s.opts.ForceDense {
				for t := lo; t < hi; t++ {
					acc += row[c.rowIdx[t]] * c.val[t]
				}
			} else {
				for t := lo; t < hi; t++ {
					if bv := row[c.rowIdx[t]]; bv != 0 {
						acc += bv * c.val[t]
					}
				}
			}
			s.w[i] = acc
		}
	case enter < s.n+s.m:
		r := enter - s.n
		for i := 0; i < m; i++ {
			s.w[i] = s.binv[i][r]
		}
	default:
		r := enter - s.n - s.m
		sg := s.artSign[r]
		for i := 0; i < m; i++ {
			s.w[i] = sg * s.binv[i][r]
		}
	}
}

// etaUpdate applies the eta transformation for a pivot in row leave with
// direction s.w, updating B⁻¹ in place. The pivot row is scaled once and
// its nonzero positions gathered, so every other row's update touches only
// those positions.
func (s *simplex) etaUpdate(leave int) {
	pivRow := s.binv[leave]
	inv := 1 / s.w[leave]
	if s.opts.ForceDense {
		for k := 0; k < s.m; k++ {
			pivRow[k] *= inv
		}
		for i := 0; i < s.m; i++ {
			if i == leave {
				continue
			}
			f := s.w[i]
			if f == 0 {
				continue
			}
			row := s.binv[i]
			for k := 0; k < s.m; k++ {
				row[k] -= f * pivRow[k]
			}
		}
		return
	}
	s.nzIdx = s.nzIdx[:0]
	for k, v := range pivRow {
		if v == 0 {
			continue
		}
		pivRow[k] = v * inv
		s.nzIdx = append(s.nzIdx, k)
	}
	for i := 0; i < s.m; i++ {
		if i == leave {
			continue
		}
		f := s.w[i]
		if f == 0 {
			continue
		}
		row := s.binv[i]
		for _, k := range s.nzIdx {
			row[k] -= f * pivRow[k]
		}
	}
}

// pastDeadline reports whether the optional wall-clock budget is spent.
// Checked every pivot: on placement-scale models one pivot costs seconds —
// far more than the clock read — so coarser sampling lets an interrupted
// solve overshoot its budget by minutes.
func (s *simplex) pastDeadline() bool {
	return !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline)
}

// iterate runs primal simplex pivots until optimal, unbounded, the
// iteration cap, or the wall-clock deadline.
func (s *simplex) iterate() (Status, error) {
	for {
		if s.iters >= s.opts.MaxIters || s.pastDeadline() {
			return IterLimit, nil
		}
		s.iters++

		s.computeY()

		// Pricing: pick the entering variable.
		enter := -1
		bestScore := s.opts.Tol * 10
		for j := 0; j < s.nTotal; j++ {
			if s.inBasis[j] >= 0 {
				continue
			}
			if s.lower[j] == s.upper[j] {
				continue // fixed variable can never improve
			}
			d := s.reducedCost(j)
			var score float64
			if !s.atUpper[j] && d > s.opts.Tol*10 {
				score = d
			} else if s.atUpper[j] && d < -s.opts.Tol*10 {
				score = -d
			} else {
				continue
			}
			if s.bland {
				enter = j
				break
			}
			if score > bestScore {
				bestScore, enter = score, j
			}
		}
		if enter == -1 {
			return Optimal, nil
		}

		s.ftran(enter)

		sgn := 1.0
		if s.atUpper[enter] {
			sgn = -1
		}

		// Ratio test with bound flips.
		tBest := s.upper[enter] - s.lower[enter] // may be +inf
		leave := -1
		leaveAtUpper := false
		for i := 0; i < s.m; i++ {
			wi := sgn * s.w[i]
			bi := s.basis[i]
			var limit float64
			var hitsUpper bool
			switch {
			case wi > pivotTol:
				if math.IsInf(s.lower[bi], -1) {
					continue
				}
				limit = (s.xB[i] - s.lower[bi]) / wi
				hitsUpper = false
			case wi < -pivotTol:
				if math.IsInf(s.upper[bi], 1) {
					continue
				}
				limit = (s.upper[bi] - s.xB[i]) / (-wi)
				hitsUpper = true
			default:
				continue
			}
			if limit < 0 {
				limit = 0
			}
			if limit < tBest-1e-12 || (limit < tBest+1e-12 && leave >= 0 && math.Abs(s.w[i]) > math.Abs(s.w[leave])) {
				tBest, leave, leaveAtUpper = limit, i, hitsUpper
			}
		}
		if math.IsInf(tBest, 1) {
			return Unbounded, nil
		}

		if tBest <= s.opts.Tol {
			s.degenRun++
			if s.degenRun > degenLimit {
				s.bland = true
			}
		} else {
			s.degenRun = 0
		}

		// Move.
		for i := 0; i < s.m; i++ {
			s.xB[i] -= sgn * tBest * s.w[i]
		}
		if leave == -1 {
			// Bound flip: the entering variable runs to its other bound.
			s.atUpper[enter] = !s.atUpper[enter]
			continue
		}

		leavingVar := s.basis[leave]
		enterVal := s.nonbasicValue(enter) + sgn*tBest
		s.basis[leave] = enter
		s.inBasis[enter] = leave
		s.inBasis[leavingVar] = -1
		s.atUpper[leavingVar] = leaveAtUpper
		s.xB[leave] = enterVal

		// Update B⁻¹ with the eta transformation for the pivot row.
		if math.Abs(s.w[leave]) < pivotTol {
			// Numerically unreliable pivot: refactorize and retry.
			if err := s.refactor(); err != nil {
				return 0, err
			}
			continue
		}
		s.etaUpdate(leave)

		s.sincePivot++
		if s.sincePivot >= refactEvery {
			if err := s.refactor(); err != nil {
				return 0, err
			}
		}
	}
}

// refactor recomputes B⁻¹ from scratch and re-derives the basic values,
// discarding accumulated floating-point drift.
func (s *simplex) refactor() error {
	s.sincePivot = 0
	B := make([][]float64, s.m)
	for i := range B {
		B[i] = make([]float64, s.m)
	}
	for pos, j := range s.basis {
		switch {
		case j < s.n:
			c := s.csc
			for t := c.colPtr[j]; t < c.colPtr[j+1]; t++ {
				B[c.rowIdx[t]][pos] = c.val[t]
			}
		case j < s.n+s.m:
			B[j-s.n][pos] = 1
		default:
			r := j - s.n - s.m
			B[r][pos] = s.artSign[r]
		}
	}
	var inv [][]float64
	var ok bool
	if s.opts.ForceDense {
		inv, ok = invert(B)
	} else {
		inv, ok = invertSparse(B)
	}
	if !ok {
		return errors.New("lp: singular basis during refactorization")
	}
	s.binv = inv
	// xB = B⁻¹ (b - Σ_nonbasic A_j·x_j)
	r := append([]float64(nil), s.b...)
	for j := 0; j < s.nTotal; j++ {
		if s.inBasis[j] >= 0 {
			continue
		}
		v := s.nonbasicValue(j)
		if v == 0 {
			continue
		}
		switch {
		case j < s.n:
			c := s.csc
			for t := c.colPtr[j]; t < c.colPtr[j+1]; t++ {
				r[c.rowIdx[t]] -= c.val[t] * v
			}
		case j < s.n+s.m:
			r[j-s.n] -= v
		default:
			r[j-s.n-s.m] -= s.artSign[j-s.n-s.m] * v
		}
	}
	for i := 0; i < s.m; i++ {
		sum := 0.0
		row := s.binv[i]
		for k := 0; k < s.m; k++ {
			if rv := r[k]; rv != 0 {
				sum += row[k] * rv
			}
		}
		s.xB[i] = sum
	}
	return nil
}

// identity returns an m×m identity matrix.
func identity(m int) [][]float64 {
	I := make([][]float64, m)
	for i := range I {
		I[i] = make([]float64, m)
		I[i][i] = 1
	}
	return I
}

// invert computes the inverse of a dense square matrix by Gauss-Jordan
// elimination with partial pivoting. It reports false if the matrix is
// singular to working precision.
func invert(a [][]float64) ([][]float64, bool) {
	m := len(a)
	// Work on a copy augmented with the identity.
	w := make([][]float64, m)
	for i := range w {
		w[i] = make([]float64, 2*m)
		copy(w[i], a[i])
		w[i][m+i] = 1
	}
	for col := 0; col < m; col++ {
		// Partial pivot.
		piv, best := -1, pivotTol
		for i := col; i < m; i++ {
			if v := math.Abs(w[i][col]); v > best {
				best, piv = v, i
			}
		}
		if piv == -1 {
			return nil, false
		}
		w[col], w[piv] = w[piv], w[col]
		inv := 1 / w[col][col]
		for k := col; k < 2*m; k++ {
			w[col][k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == col {
				continue
			}
			f := w[i][col]
			if f == 0 {
				continue
			}
			for k := col; k < 2*m; k++ {
				w[i][k] -= f * w[col][k]
			}
		}
	}
	out := make([][]float64, m)
	for i := range out {
		out[i] = w[i][m:]
	}
	return out, true
}

// invertSparse is Gauss-Jordan elimination with the same partial-pivot
// order as invert but with zero entries skipped: the pivot row's nonzero
// positions are gathered once per column, and each elimination touches only
// those. Basis matrices here are extremely sparse (unit slack columns,
// few-nonzero structural columns), so the early columns' pivot rows carry a
// handful of nonzeros and the classic O(m³) sweep collapses toward the fill
// that elimination actually creates. Pivot choices and the surviving
// arithmetic are identical to invert, so both produce the same inverse bit
// for bit.
func invertSparse(a [][]float64) ([][]float64, bool) {
	m := len(a)
	w := make([][]float64, m)
	backing := make([]float64, m*2*m)
	for i := range w {
		w[i] = backing[i*2*m : (i+1)*2*m]
		copy(w[i], a[i])
		w[i][m+i] = 1
	}
	nz := make([]int, 0, 2*m)
	for col := 0; col < m; col++ {
		piv, best := -1, pivotTol
		for i := col; i < m; i++ {
			if v := math.Abs(w[i][col]); v > best {
				best, piv = v, i
			}
		}
		if piv == -1 {
			return nil, false
		}
		w[col], w[piv] = w[piv], w[col]
		pr := w[col]
		inv := 1 / pr[col]
		nz = nz[:0]
		for k := col; k < 2*m; k++ {
			if v := pr[k]; v != 0 {
				pr[k] = v * inv
				nz = append(nz, k)
			}
		}
		for i := 0; i < m; i++ {
			if i == col {
				continue
			}
			f := w[i][col]
			if f == 0 {
				continue
			}
			row := w[i]
			for _, k := range nz {
				row[k] -= f * pr[k]
			}
		}
	}
	out := make([][]float64, m)
	for i := range out {
		out[i] = w[i][m:]
	}
	return out, true
}
