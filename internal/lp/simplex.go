package lp

import (
	"errors"
	"math"
)

// simplex is the bounded-variable revised primal simplex engine. Variables
// are the structural variables, one slack per row (a·x + s = b with slack
// bounds encoding ≤/≥/=), and one artificial per row used only in Phase 1.
type simplex struct {
	p    *Problem
	opts Options

	m, n   int // rows, structural vars
	nTotal int // structural + slacks + artificials

	cols  [][]Coef  // column-wise sparse matrix, per variable
	b     []float64 // row RHS
	lower []float64 // per total variable
	upper []float64
	obj   []float64 // current-phase objective

	basis   []int     // basis[i] = variable basic in row i
	inBasis []int     // var -> row position or -1
	atUpper []bool    // nonbasic at upper bound?
	xB      []float64 // basic variable values
	binv    [][]float64

	iters      int
	degenRun   int  // consecutive degenerate pivots
	bland      bool // Bland's rule engaged
	sincePivot int  // pivots since last refactorization

	// scratch buffers
	y, w []float64
}

const (
	pivotTol    = 1e-8
	degenLimit  = 400
	refactEvery = 120
)

func newSimplex(p *Problem, opts Options) *simplex {
	m, n := len(p.rows), p.n
	s := &simplex{
		p: p, opts: opts,
		m: m, n: n, nTotal: n + 2*m,
		b:       make([]float64, m),
		lower:   make([]float64, n+2*m),
		upper:   make([]float64, n+2*m),
		obj:     make([]float64, n+2*m),
		basis:   make([]int, m),
		inBasis: make([]int, n+2*m),
		atUpper: make([]bool, n+2*m),
		xB:      make([]float64, m),
		y:       make([]float64, m),
		w:       make([]float64, m),
	}
	s.cols = make([][]Coef, s.nTotal)
	for j := 0; j < n; j++ {
		s.lower[j], s.upper[j] = p.lower[j], p.upper[j]
	}
	for i, row := range p.rows {
		s.b[i] = row.RHS
		for _, cf := range row.Coeffs {
			s.cols[cf.Var] = append(s.cols[cf.Var], Coef{Var: i, Val: cf.Val})
		}
		slack := n + i
		s.cols[slack] = []Coef{{Var: i, Val: 1}}
		switch row.Op {
		case LE:
			s.lower[slack], s.upper[slack] = 0, math.Inf(1)
		case GE:
			s.lower[slack], s.upper[slack] = math.Inf(-1), 0
		case EQ:
			s.lower[slack], s.upper[slack] = 0, 0
		}
		art := n + m + i
		s.cols[art] = []Coef{{Var: i, Val: 1}} // sign fixed in init()
		s.lower[art], s.upper[art] = 0, math.Inf(1)
	}
	for j := range s.inBasis {
		s.inBasis[j] = -1
	}
	return s
}

// nonbasicValue returns the resting value of a nonbasic variable.
func (s *simplex) nonbasicValue(j int) float64 {
	if s.atUpper[j] {
		return s.upper[j]
	}
	return s.lower[j]
}

// init places every structural and slack variable at its finite bound
// nearest zero, sizes the artificials to absorb the residuals, and seeds
// the basis with the artificials (identity basis).
func (s *simplex) init() {
	for j := 0; j < s.n+s.m; j++ {
		lo, hi := s.lower[j], s.upper[j]
		switch {
		case !math.IsInf(lo, -1):
			s.atUpper[j] = false
		case !math.IsInf(hi, 1):
			s.atUpper[j] = true
		}
	}
	// Residuals r_i = b_i - A_i·x at the resting point. (Slacks rest at 0
	// under every row type, so they contribute nothing here whether they
	// end up basic or not.)
	r := append([]float64(nil), s.b...)
	for j := 0; j < s.n; j++ {
		v := s.nonbasicValue(j)
		if v == 0 {
			continue
		}
		for _, cf := range s.cols[j] {
			r[cf.Var] -= cf.Val * v
		}
	}
	// Slack crash basis: a row whose residual already fits its slack's
	// bounds starts with the slack basic — no artificial, no Phase-1 work
	// for it. Only the remaining rows get artificials. On SFP's placement
	// LPs this removes nearly every artificial (most rows have zero
	// residual at the all-zero resting point) and cuts Phase 1 from
	// thousands of pivots to a handful.
	s.binv = identity(s.m)
	for i := 0; i < s.m; i++ {
		slack := s.n + i
		art := s.n + s.m + i
		if r[i] >= s.lower[slack]-1e-12 && r[i] <= s.upper[slack]+1e-12 {
			s.basis[i] = slack
			s.inBasis[slack] = i
			s.xB[i] = r[i]
			// The artificial is never needed: freeze it.
			s.lower[art], s.upper[art] = 0, 0
			continue
		}
		if r[i] < 0 {
			s.cols[art][0].Val = -1
			s.binv[i][i] = -1
			s.xB[i] = -r[i]
		} else {
			s.xB[i] = r[i]
		}
		s.basis[i] = art
		s.inBasis[art] = i
	}
}

func (s *simplex) solve() (*Solution, error) {
	s.init()

	// Phase 1: drive artificial infeasibility to zero.
	for i := 0; i < s.m; i++ {
		s.obj[s.n+s.m+i] = -1
	}
	st, err := s.iterate()
	if err != nil {
		return nil, err
	}
	if st == IterLimit {
		return &Solution{Status: IterLimit, X: s.extractX(), Iters: s.iters}, nil
	}
	infeas := 0.0
	for i := 0; i < s.m; i++ {
		if s.basis[i] >= s.n+s.m {
			infeas += s.xB[i]
		}
	}
	feasTol := math.Max(s.opts.Tol*1e3, 1e-7)
	if infeas > feasTol {
		return &Solution{Status: Infeasible, X: s.extractX(), Iters: s.iters}, nil
	}

	// Phase 2: real objective; artificials are frozen at zero.
	for j := range s.obj {
		s.obj[j] = 0
	}
	for j := 0; j < s.n; j++ {
		s.obj[j] = s.p.c[j]
	}
	for i := 0; i < s.m; i++ {
		art := s.n + s.m + i
		s.lower[art], s.upper[art] = 0, 0
		if s.inBasis[art] == -1 {
			s.atUpper[art] = false
		}
	}
	s.bland = false
	s.degenRun = 0
	s.refactor()
	st, err = s.iterate()
	if err != nil {
		return nil, err
	}
	x := s.extractX()
	objVal := 0.0
	for j := 0; j < s.n; j++ {
		objVal += s.p.c[j] * x[j]
	}
	return &Solution{Status: st, Objective: objVal, X: x, Iters: s.iters}, nil
}

// extractX reads the structural variable values from the current basis.
func (s *simplex) extractX() []float64 {
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		if pos := s.inBasis[j]; pos >= 0 {
			x[j] = s.xB[pos]
		} else {
			x[j] = s.nonbasicValue(j)
		}
	}
	return x
}

// iterate runs simplex pivots until optimal, unbounded, or the iteration cap.
func (s *simplex) iterate() (Status, error) {
	for {
		if s.iters >= s.opts.MaxIters {
			return IterLimit, nil
		}
		s.iters++

		// y = c_B^T · B⁻¹
		for i := range s.y {
			s.y[i] = 0
		}
		for k := 0; k < s.m; k++ {
			cb := s.obj[s.basis[k]]
			if cb == 0 {
				continue
			}
			row := s.binv[k]
			for i := 0; i < s.m; i++ {
				s.y[i] += cb * row[i]
			}
		}

		// Pricing: pick the entering variable.
		enter := -1
		bestScore := s.opts.Tol * 10
		for j := 0; j < s.nTotal; j++ {
			if s.inBasis[j] >= 0 {
				continue
			}
			if s.lower[j] == s.upper[j] {
				continue // fixed variable can never improve
			}
			d := s.obj[j]
			for _, cf := range s.cols[j] {
				d -= s.y[cf.Var] * cf.Val
			}
			var score float64
			if !s.atUpper[j] && d > s.opts.Tol*10 {
				score = d
			} else if s.atUpper[j] && d < -s.opts.Tol*10 {
				score = -d
			} else {
				continue
			}
			if s.bland {
				enter = j
				break
			}
			if score > bestScore {
				bestScore, enter = score, j
			}
		}
		if enter == -1 {
			return Optimal, nil
		}

		// Direction w = B⁻¹ · A_enter.
		for i := range s.w {
			s.w[i] = 0
		}
		for _, cf := range s.cols[enter] {
			v := cf.Val
			for i := 0; i < s.m; i++ {
				s.w[i] += s.binv[i][cf.Var] * v
			}
		}

		sgn := 1.0
		if s.atUpper[enter] {
			sgn = -1
		}

		// Ratio test with bound flips.
		tBest := s.upper[enter] - s.lower[enter] // may be +inf
		leave := -1
		leaveAtUpper := false
		for i := 0; i < s.m; i++ {
			wi := sgn * s.w[i]
			bi := s.basis[i]
			var limit float64
			var hitsUpper bool
			switch {
			case wi > pivotTol:
				if math.IsInf(s.lower[bi], -1) {
					continue
				}
				limit = (s.xB[i] - s.lower[bi]) / wi
				hitsUpper = false
			case wi < -pivotTol:
				if math.IsInf(s.upper[bi], 1) {
					continue
				}
				limit = (s.upper[bi] - s.xB[i]) / (-wi)
				hitsUpper = true
			default:
				continue
			}
			if limit < 0 {
				limit = 0
			}
			if limit < tBest-1e-12 || (limit < tBest+1e-12 && leave >= 0 && math.Abs(s.w[i]) > math.Abs(s.w[leave])) {
				tBest, leave, leaveAtUpper = limit, i, hitsUpper
			}
		}
		if math.IsInf(tBest, 1) {
			return Unbounded, nil
		}

		if tBest <= s.opts.Tol {
			s.degenRun++
			if s.degenRun > degenLimit {
				s.bland = true
			}
		} else {
			s.degenRun = 0
		}

		// Move.
		for i := 0; i < s.m; i++ {
			s.xB[i] -= sgn * tBest * s.w[i]
		}
		if leave == -1 {
			// Bound flip: the entering variable runs to its other bound.
			s.atUpper[enter] = !s.atUpper[enter]
			continue
		}

		leavingVar := s.basis[leave]
		enterVal := s.nonbasicValue(enter) + sgn*tBest
		s.basis[leave] = enter
		s.inBasis[enter] = leave
		s.inBasis[leavingVar] = -1
		s.atUpper[leavingVar] = leaveAtUpper
		s.xB[leave] = enterVal

		// Update B⁻¹ with the eta transformation for the pivot row.
		wr := s.w[leave]
		if math.Abs(wr) < pivotTol {
			// Numerically unreliable pivot: refactorize and retry.
			if err := s.refactor(); err != nil {
				return 0, err
			}
			continue
		}
		pivRow := s.binv[leave]
		inv := 1 / wr
		for k := 0; k < s.m; k++ {
			pivRow[k] *= inv
		}
		for i := 0; i < s.m; i++ {
			if i == leave {
				continue
			}
			f := s.w[i]
			if f == 0 {
				continue
			}
			row := s.binv[i]
			for k := 0; k < s.m; k++ {
				row[k] -= f * pivRow[k]
			}
		}

		s.sincePivot++
		if s.sincePivot >= refactEvery {
			if err := s.refactor(); err != nil {
				return 0, err
			}
		}
	}
}

// refactor recomputes B⁻¹ from scratch and re-derives the basic values,
// discarding accumulated floating-point drift.
func (s *simplex) refactor() error {
	s.sincePivot = 0
	B := make([][]float64, s.m)
	for i := range B {
		B[i] = make([]float64, s.m)
	}
	for pos, j := range s.basis {
		for _, cf := range s.cols[j] {
			B[cf.Var][pos] = cf.Val
		}
	}
	inv, ok := invert(B)
	if !ok {
		return errors.New("lp: singular basis during refactorization")
	}
	s.binv = inv
	// xB = B⁻¹ (b - Σ_nonbasic A_j·x_j)
	r := append([]float64(nil), s.b...)
	for j := 0; j < s.nTotal; j++ {
		if s.inBasis[j] >= 0 {
			continue
		}
		v := s.nonbasicValue(j)
		if v == 0 {
			continue
		}
		for _, cf := range s.cols[j] {
			r[cf.Var] -= cf.Val * v
		}
	}
	for i := 0; i < s.m; i++ {
		sum := 0.0
		row := s.binv[i]
		for k := 0; k < s.m; k++ {
			sum += row[k] * r[k]
		}
		s.xB[i] = sum
	}
	return nil
}

// identity returns an m×m identity matrix.
func identity(m int) [][]float64 {
	I := make([][]float64, m)
	for i := range I {
		I[i] = make([]float64, m)
		I[i][i] = 1
	}
	return I
}

// invert computes the inverse of a dense square matrix by Gauss-Jordan
// elimination with partial pivoting. It reports false if the matrix is
// singular to working precision.
func invert(a [][]float64) ([][]float64, bool) {
	m := len(a)
	// Work on a copy augmented with the identity.
	w := make([][]float64, m)
	for i := range w {
		w[i] = make([]float64, 2*m)
		copy(w[i], a[i])
		w[i][m+i] = 1
	}
	for col := 0; col < m; col++ {
		// Partial pivot.
		piv, best := -1, pivotTol
		for i := col; i < m; i++ {
			if v := math.Abs(w[i][col]); v > best {
				best, piv = v, i
			}
		}
		if piv == -1 {
			return nil, false
		}
		w[col], w[piv] = w[piv], w[col]
		inv := 1 / w[col][col]
		for k := col; k < 2*m; k++ {
			w[col][k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == col {
				continue
			}
			f := w[i][col]
			if f == 0 {
				continue
			}
			for k := col; k < 2*m; k++ {
				w[i][k] -= f * w[col][k]
			}
		}
	}
	out := make([][]float64, m)
	for i := range out {
		out[i] = w[i][m:]
	}
	return out, true
}
