package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestRegressionPhase1ArtificialSign pins the seed that exposed the
// Phase-1 bug where the initial basis inverse ignored the sign of
// artificial columns (B = diag(±1) but B⁻¹ was set to I), making feasible
// problems report infeasible.
func TestRegressionPhase1ArtificialSign(t *testing.T) {
	seed := int64(-2194725355859542381)
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(12)
	m := 1 + rng.Intn(10)
	x0 := make([]float64, n)
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		x0[j] = rng.Float64()
		p.SetBounds(j, 0, 1)
		p.SetObjective(j, rng.Float64()*4-2)
	}
	base := 0.0
	for j := 0; j < n; j++ {
		base += p.c[j] * x0[j]
	}
	for i := 0; i < m; i++ {
		var coeffs []Coef
		lhs := 0.0
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				val := rng.Float64()*4 - 2
				coeffs = append(coeffs, Coef{j, val})
				lhs += val * x0[j]
			}
		}
		if len(coeffs) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			p.AddRow(Row{Coeffs: coeffs, Op: LE, RHS: lhs + rng.Float64()})
		case 1:
			p.AddRow(Row{Coeffs: coeffs, Op: GE, RHS: lhs - rng.Float64()})
		case 2:
			p.AddRow(Row{Coeffs: coeffs, Op: EQ, RHS: lhs})
		}
	}
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("err: %v", err)
	}
	t.Logf("n=%d m=%d status=%v obj=%v base=%v iters=%d", n, m, sol.Status, sol.Objective, base, sol.Iters)
	for i, row := range p.rows {
		lhs := 0.0
		for _, cf := range row.Coeffs {
			lhs += cf.Val * sol.X[cf.Var]
		}
		t.Logf("row %d op=%v lhs=%v rhs=%v viol=%v", i, row.Op, lhs, row.RHS, lhs-row.RHS)
	}
	if sol.Status != Optimal {
		t.Errorf("status = %v", sol.Status)
	}
	if sol.Objective < base-1e-5 {
		t.Errorf("obj %v < base %v", sol.Objective, base)
	}
	_ = math.Abs
}
