package lp

import "math"

// presolve folds fixed variables (lower == upper) into the row constants
// and drops rows that become empty, returning a reduced problem plus the
// mapping needed to reinflate solutions. Branch-and-bound nodes and pinned
// runtime-update replans fix large fractions of the variables, so this
// routinely shrinks the simplex by an order of magnitude.
//
// It returns (nil, _, false) when presolve already proves infeasibility
// (an empty row whose residual constant violates its operator).
type presolveMap struct {
	// toReduced[j] is the reduced index of original variable j, or -1 if
	// the variable was fixed.
	toReduced []int
	// fixedVal[j] holds the value of fixed variable j.
	fixedVal []float64
	reduced  *Problem
}

func presolve(p *Problem) (*presolveMap, bool) {
	m := &presolveMap{
		toReduced: make([]int, p.n),
		fixedVal:  make([]float64, p.n),
	}
	nReduced := 0
	anyFixed := false
	for j := 0; j < p.n; j++ {
		if p.lower[j] == p.upper[j] {
			m.toReduced[j] = -1
			m.fixedVal[j] = p.lower[j]
			anyFixed = true
		} else {
			m.toReduced[j] = nReduced
			nReduced++
		}
	}
	if !anyFixed {
		return nil, true // nothing to do; caller solves the original
	}

	q := NewProblem(nReduced)
	for j := 0; j < p.n; j++ {
		if r := m.toReduced[j]; r >= 0 {
			q.SetBounds(r, p.lower[j], p.upper[j])
			q.SetObjective(r, p.c[j])
		}
	}
	const tol = 1e-9
	for _, row := range p.rows {
		rhs := row.RHS
		var coeffs []Coef
		for _, cf := range row.Coeffs {
			if r := m.toReduced[cf.Var]; r >= 0 {
				coeffs = append(coeffs, Coef{Var: r, Val: cf.Val})
			} else {
				rhs -= cf.Val * m.fixedVal[cf.Var]
			}
		}
		if len(coeffs) == 0 {
			// Fully determined row: check it instead of keeping it.
			switch row.Op {
			case LE:
				if rhs < -tol {
					return nil, false
				}
			case GE:
				if rhs > tol {
					return nil, false
				}
			case EQ:
				if math.Abs(rhs) > tol {
					return nil, false
				}
			}
			continue
		}
		q.AddRow(Row{Coeffs: coeffs, Op: row.Op, RHS: rhs, Name: row.Name})
	}
	m.reduced = q
	return m, true
}

// inflate expands a reduced solution back to the original variable space.
func (m *presolveMap) inflate(p *Problem, sol *Solution) *Solution {
	x := make([]float64, p.n)
	for j := 0; j < p.n; j++ {
		if r := m.toReduced[j]; r >= 0 {
			if r < len(sol.X) {
				x[j] = sol.X[r]
			}
		} else {
			x[j] = m.fixedVal[j]
		}
	}
	obj := 0.0
	for j := 0; j < p.n; j++ {
		obj += p.c[j] * x[j]
	}
	return &Solution{Status: sol.Status, Objective: obj, X: x, Iters: sol.Iters}
}
