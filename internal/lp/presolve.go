package lp

import "math"

// presolve folds fixed variables (lower == upper) into the row constants
// and drops rows that become empty, returning a reduced problem plus the
// mapping needed to reinflate solutions. Branch-and-bound nodes and pinned
// runtime-update replans fix large fractions of the variables, so this
// routinely shrinks the simplex by an order of magnitude.
//
// It returns (nil, _, false) when presolve already proves infeasibility
// (an empty row whose residual constant violates its operator).
type presolveMap struct {
	// toReduced[j] is the reduced index of original variable j, or -1 if
	// the variable was fixed.
	toReduced []int
	// fixedVal[j] holds the value of fixed variable j.
	fixedVal []float64
	// rowMap[r] is the original index of reduced row r (fully-determined
	// rows are dropped, so the mapping is not the identity).
	rowMap  []int
	reduced *Problem
}

func presolve(p *Problem) (*presolveMap, bool) {
	m := &presolveMap{
		toReduced: make([]int, p.n),
		fixedVal:  make([]float64, p.n),
	}
	nReduced := 0
	anyFixed := false
	for j := 0; j < p.n; j++ {
		if p.lower[j] == p.upper[j] {
			m.toReduced[j] = -1
			m.fixedVal[j] = p.lower[j]
			anyFixed = true
		} else {
			m.toReduced[j] = nReduced
			nReduced++
		}
	}
	if !anyFixed {
		return nil, true // nothing to do; caller solves the original
	}

	q := NewProblem(nReduced)
	for j := 0; j < p.n; j++ {
		if r := m.toReduced[j]; r >= 0 {
			q.SetBounds(r, p.lower[j], p.upper[j])
			q.SetObjective(r, p.c[j])
		}
	}
	const tol = 1e-9
	for i, row := range p.rows {
		rhs := row.RHS
		var coeffs []Coef
		for _, cf := range row.Coeffs {
			if r := m.toReduced[cf.Var]; r >= 0 {
				coeffs = append(coeffs, Coef{Var: r, Val: cf.Val})
			} else {
				rhs -= cf.Val * m.fixedVal[cf.Var]
			}
		}
		if len(coeffs) == 0 {
			// Fully determined row: check it instead of keeping it.
			switch row.Op {
			case LE:
				if rhs < -tol {
					return nil, false
				}
			case GE:
				if rhs > tol {
					return nil, false
				}
			case EQ:
				if math.Abs(rhs) > tol {
					return nil, false
				}
			}
			continue
		}
		q.AddRow(Row{Coeffs: coeffs, Op: row.Op, RHS: rhs, Name: row.Name})
		m.rowMap = append(m.rowMap, i)
	}
	m.reduced = q
	return m, true
}

// inflate expands a reduced solution back to the original variable space.
func (m *presolveMap) inflate(p *Problem, sol *Solution) *Solution {
	x := make([]float64, p.n)
	for j := 0; j < p.n; j++ {
		if r := m.toReduced[j]; r >= 0 {
			if r < len(sol.X) {
				x[j] = sol.X[r]
			}
		} else {
			x[j] = m.fixedVal[j]
		}
	}
	obj := 0.0
	for j := 0; j < p.n; j++ {
		obj += p.c[j] * x[j]
	}
	out := &Solution{Status: sol.Status, Objective: obj, X: x, Iters: sol.Iters}
	if sol.Basis != nil {
		out.Basis = m.inflateBasis(p, sol.Basis)
	}
	return out
}

// inflateBasis expands a reduced-problem basis to the original variable and
// row space, so presolved solves still export a warm-startable basis.
// Surviving rows keep their reduced basic variable (remapped); dropped rows
// get their own slack basic. The expanded basis stays dual feasible for
// bound-only re-solves: dropped rows' dual prices are zero, and the basis
// matrix is block-diagonal with an identity over the dropped rows.
func (m *presolveMap) inflateBasis(p *Problem, rb *Basis) *Basis {
	nOrig, mOrig := p.n, len(p.rows)
	q := m.reduced
	fromReduced := make([]int, q.n)
	for j, r := range m.toReduced {
		if r >= 0 {
			fromReduced[r] = j
		}
	}
	b := &Basis{
		nVars:   nOrig,
		nRows:   mOrig,
		basic:   make([]int, mOrig),
		atUpper: make([]bool, nOrig+mOrig),
	}
	surviving := make([]bool, mOrig)
	for r, i := range m.rowMap {
		surviving[i] = true
		rj := rb.basic[r]
		if rj < q.n {
			b.basic[i] = fromReduced[rj]
		} else {
			b.basic[i] = nOrig + m.rowMap[rj-q.n]
		}
	}
	for i := 0; i < mOrig; i++ {
		if !surviving[i] {
			b.basic[i] = nOrig + i
		}
	}
	for j := 0; j < nOrig; j++ {
		if r := m.toReduced[j]; r >= 0 {
			b.atUpper[j] = rb.atUpper[r]
		}
	}
	for r, i := range m.rowMap {
		b.atUpper[nOrig+i] = rb.atUpper[q.n+r]
	}
	return b
}
