package lp

import (
	"math"
	"math/rand"
	"testing"
)

// fixedSuite returns named LPs covering the simplex's edge regimes:
// degenerate vertices (redundant constraints), Beale's classic cycling
// example (the standard Bland's-rule trigger), bound flips, and mixed
// operator rows. The cross-check below solves each with the sparse kernels
// and with ForceDense and requires bit-identical results.
func fixedSuite() map[string]func() *Problem {
	return map[string]func() *Problem{
		"degenerate-vertex": func() *Problem {
			p := NewProblem(2)
			p.SetObjective(0, 1)
			p.SetObjective(1, 1)
			p.AddRow(Row{Coeffs: []Coef{{0, 1}}, Op: LE, RHS: 1})
			p.AddRow(Row{Coeffs: []Coef{{1, 1}}, Op: LE, RHS: 1})
			p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 1}}, Op: LE, RHS: 2})
			p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 2}}, Op: LE, RHS: 3})
			return p
		},
		"beale-cycling": func() *Problem {
			// Beale (1955): cycles under naive Dantzig pricing without an
			// anti-cycling rule. Stated as a maximization; optimum 0.05 at
			// x = (0.04, 0, 1, 0).
			p := NewProblem(4)
			p.SetObjective(0, 0.75)
			p.SetObjective(1, -150)
			p.SetObjective(2, 0.02)
			p.SetObjective(3, -6)
			p.AddRow(Row{Coeffs: []Coef{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, Op: LE, RHS: 0})
			p.AddRow(Row{Coeffs: []Coef{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, Op: LE, RHS: 0})
			p.AddRow(Row{Coeffs: []Coef{{2, 1}}, Op: LE, RHS: 1})
			return p
		},
		"degenerate-origin": func() *Problem {
			// Every constraint passes through the phase-1 starting vertex:
			// all pivots at the origin are degenerate.
			p := NewProblem(3)
			for j := 0; j < 3; j++ {
				p.SetObjective(j, float64(3-j))
			}
			p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, -1}}, Op: LE, RHS: 0})
			p.AddRow(Row{Coeffs: []Coef{{1, 1}, {2, -1}}, Op: LE, RHS: 0})
			p.AddRow(Row{Coeffs: []Coef{{0, 1}, {2, -1}}, Op: LE, RHS: 0})
			p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 1}, {2, 1}}, Op: LE, RHS: 3})
			return p
		},
		"mixed-ops-bounded": func() *Problem {
			p := NewProblem(3)
			p.SetObjective(0, 2)
			p.SetObjective(1, -1)
			p.SetObjective(2, 3)
			p.SetBounds(0, 0, 4)
			p.SetBounds(1, 1, 5)
			p.SetBounds(2, 0, 2)
			p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, 1}, {2, 1}}, Op: LE, RHS: 7})
			p.AddRow(Row{Coeffs: []Coef{{0, 1}, {1, -1}}, Op: GE, RHS: -2})
			p.AddRow(Row{Coeffs: []Coef{{1, 1}, {2, 2}}, Op: EQ, RHS: 5})
			return p
		},
	}
}

func randomLP(rng *rand.Rand) *Problem {
	n := 3 + rng.Intn(10)
	m := 2 + rng.Intn(8)
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObjective(j, rng.NormFloat64())
		p.SetBounds(j, 0, 1+4*rng.Float64())
	}
	for i := 0; i < m; i++ {
		var coeffs []Coef
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				coeffs = append(coeffs, Coef{j, rng.NormFloat64()})
			}
		}
		if len(coeffs) == 0 {
			coeffs = append(coeffs, Coef{rng.Intn(n), 1})
		}
		op := LE
		rhs := 1 + 3*rng.Float64()
		if rng.Float64() < 0.25 {
			op = GE
			rhs = -rhs
		}
		if rng.Float64() < 0.2 { // degenerate: RHS exactly at the origin
			rhs = 0
		}
		p.AddRow(Row{Coeffs: coeffs, Op: op, RHS: rhs, Name: "r"})
	}
	return p
}

// requireBitIdentical asserts two solutions of the same problem are equal
// bit for bit — the sparse kernels skip arithmetic only where an operand is
// exactly zero, so they must reproduce the dense reference exactly, not
// merely within tolerance.
func requireBitIdentical(t *testing.T, sparse, dense *Solution) {
	t.Helper()
	if sparse.Status != dense.Status {
		t.Fatalf("status: sparse %v, dense %v", sparse.Status, dense.Status)
	}
	if sparse.Objective != dense.Objective {
		t.Fatalf("objective: sparse %v, dense %v (diff %g)",
			sparse.Objective, dense.Objective, sparse.Objective-dense.Objective)
	}
	if sparse.Iters != dense.Iters {
		t.Fatalf("pivot count: sparse %d, dense %d", sparse.Iters, dense.Iters)
	}
	for j := range sparse.X {
		if sparse.X[j] != dense.X[j] {
			t.Fatalf("x[%d]: sparse %v, dense %v", j, sparse.X[j], dense.X[j])
		}
	}
}

func TestSparseMatchesDenseFixedSuite(t *testing.T) {
	for name, build := range fixedSuite() {
		t.Run(name, func(t *testing.T) {
			sp, err := build().Solve(Options{})
			if err != nil {
				t.Fatalf("sparse: %v", err)
			}
			dn, err := build().Solve(Options{ForceDense: true})
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			requireBitIdentical(t, sp, dn)
			if sp.Status == Optimal {
				checkFeasible(t, build(), sp.X)
			}
		})
	}
}

func TestSparseMatchesDenseRandom(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomLP(rng)
		sp, errS := p.Clone().Solve(Options{})
		dn, errD := p.Clone().Solve(Options{ForceDense: true})
		if (errS != nil) != (errD != nil) {
			t.Fatalf("seed %d: sparse err %v, dense err %v", seed, errS, errD)
		}
		if errS != nil {
			continue
		}
		requireBitIdentical(t, sp, dn)
	}
}

// TestWarmMatchesColdProperty re-solves random LPs after a bound
// perturbation, once cold and once warm-started from the original basis:
// both must reach the same optimal value.
func TestWarmMatchesColdProperty(t *testing.T) {
	checked := 0
	for seed := int64(100); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomLP(rng)
		sol, err := p.Solve(Options{})
		if err != nil || sol.Status != Optimal || sol.Basis == nil {
			continue
		}
		q := p.Clone()
		j := rng.Intn(q.NumVars())
		lo, hi := q.Bounds(j)
		q.SetBounds(j, lo, lo+(hi-lo)*rng.Float64())
		cold, err := q.Clone().Solve(Options{})
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}
		warm, err := q.Solve(Options{WarmBasis: sol.Basis})
		if err != nil {
			t.Fatalf("seed %d: warm: %v", seed, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("seed %d: warm %v, cold %v", seed, warm.Status, cold.Status)
		}
		if cold.Status == Optimal {
			if math.Abs(warm.Objective-cold.Objective) > 1e-6 {
				t.Fatalf("seed %d: warm obj %v, cold obj %v", seed, warm.Objective, cold.Objective)
			}
			checkFeasible(t, q, warm.X)
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d warm/cold pairs compared; generator too restrictive", checked)
	}
}
